// The enclave runtime: the simulated EENTER/EEXIT boundary.
//
// Trusted NEXUS code (src/enclave) only ever talks to the outside world
// through an EnclaveRuntime. The runtime provides the services real SGX
// provides — sealing keys, quoting, in-enclave randomness — and enforces the
// transition discipline (no re-entry; ocalls only from inside). It is a
// *simulated* privilege boundary: it reproduces the programming model and
// protocol-visible semantics, not hardware memory isolation (DESIGN.md §2).
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "crypto/rng.hpp"
#include "sgx/attestation.hpp"
#include "sgx/measurement.hpp"

namespace nexus::sgx {

class EnclaveRuntime {
 public:
  /// Loads `image` on `cpu`. The CPU must outlive the runtime. `rng_seed`
  /// seeds the enclave's DRBG (stands in for RDRAND) so simulations are
  /// reproducible.
  EnclaveRuntime(const SgxCpu& cpu, const EnclaveImage& image,
                 ByteSpan rng_seed);

  EnclaveRuntime(const EnclaveRuntime&) = delete;
  EnclaveRuntime& operator=(const EnclaveRuntime&) = delete;

  [[nodiscard]] const Measurement& measurement() const noexcept {
    return image_->measurement();
  }
  [[nodiscard]] const ByteArray<kCpuIdSize>& cpu_id() const noexcept {
    return cpu_->cpu_id();
  }

  // --- services available to trusted code (inside an EcallScope) ---------

  /// Seals `plaintext` to this CPU. With kMrEnclave (the default, and what
  /// NEXUS uses for rootkeys) only the exact same enclave build can unseal;
  /// with kMrSigner any enclave from the same vendor can — the upgrade
  /// path for migrating sealed state to a newer enclave version. Output:
  /// policy byte || IV || AES-GCM(ct || tag) with the identity as AAD.
  Result<Bytes> Seal(ByteSpan plaintext,
                     SgxCpu::SealPolicy policy = SgxCpu::SealPolicy::kMrEnclave);
  Result<Bytes> Unseal(ByteSpan sealed);

  /// Asks the local Quoting Enclave to sign `report_data` for this enclave.
  [[nodiscard]] Quote CreateQuote(const ByteArray<kReportDataSize>& report_data) const;

  /// In-enclave randomness (RDRAND stand-in).
  [[nodiscard]] crypto::Rng& rng() noexcept { return rng_; }

  // --- transition discipline ---------------------------------------------

  /// RAII guard entered at the top of every ecall. Asserts the enclave is
  /// not already entered (the NEXUS enclave is single-threaded, like the
  /// paper's prototype) and counts transitions for the profiler.
  class EcallScope {
   public:
    explicit EcallScope(EnclaveRuntime& rt) noexcept : rt_(rt) {
      assert(!rt_.inside_ && "enclave re-entry");
      rt_.inside_ = true;
      ++rt_.ecall_count_;
    }
    ~EcallScope() { rt_.inside_ = false; }
    EcallScope(const EcallScope&) = delete;
    EcallScope& operator=(const EcallScope&) = delete;

   private:
    EnclaveRuntime& rt_;
  };

  /// RAII guard wrapped around every ocall (untrusted callback). Legal only
  /// while inside the enclave.
  class OcallScope {
   public:
    explicit OcallScope(EnclaveRuntime& rt) noexcept : rt_(rt) {
      assert(rt_.inside_ && "ocall from outside the enclave");
      rt_.inside_ = false; // execution leaves the enclave for the callback
      ++rt_.ocall_count_;
    }
    ~OcallScope() { rt_.inside_ = true; }
    OcallScope(const OcallScope&) = delete;
    OcallScope& operator=(const OcallScope&) = delete;

   private:
    EnclaveRuntime& rt_;
  };

  [[nodiscard]] std::uint64_t ecall_count() const noexcept { return ecall_count_; }
  [[nodiscard]] std::uint64_t ocall_count() const noexcept { return ocall_count_; }
  [[nodiscard]] bool inside() const noexcept { return inside_; }

 private:
  const SgxCpu* cpu_;
  const EnclaveImage* image_;
  crypto::HmacDrbg rng_;
  bool inside_ = false;
  std::uint64_t ecall_count_ = 0;
  std::uint64_t ocall_count_ = 0;
};

} // namespace nexus::sgx
