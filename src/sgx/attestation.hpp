// Simulated Intel attestation infrastructure: provisioning and quotes.
//
// Real SGX: a CPU-fused key lets the Quoting Enclave sign reports; Intel's
// Attestation Service (IAS) vouches for genuine CPUs. Simulation: an
// IntelAttestationService owns an Ed25519 root key, provisions each SgxCpu
// with a certified per-CPU attestation key, and quotes are Ed25519
// signatures over (measurement || report_data || cpu_id). Verifiers hold
// only Intel's root public key — exactly the trust chain of EPID quotes.
#pragma once

#include <memory>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "crypto/ed25519.hpp"
#include "sgx/measurement.hpp"

namespace nexus::sgx {

inline constexpr std::size_t kReportDataSize = 64;
inline constexpr std::size_t kCpuIdSize = 16;

/// An attestation quote: proves that an enclave with `measurement`, running
/// on the genuine CPU `cpu_id`, produced `report_data` inside the enclave.
struct Quote {
  Measurement measurement;
  ByteArray<kReportDataSize> report_data{};
  ByteArray<kCpuIdSize> cpu_id{};
  ByteArray<32> attestation_public_key{}; // per-CPU QE key
  ByteArray<64> cpu_certificate{};        // Intel root's signature over the QE key
  ByteArray<64> signature{};              // QE signature over the quote body

  [[nodiscard]] Bytes Serialize() const;
  static Result<Quote> Deserialize(ByteSpan data);

  /// The signed portion: measurement || report_data || cpu_id.
  [[nodiscard]] Bytes SignedBody() const;
};

class IntelAttestationService; // below

/// One machine's SGX-enabled processor: secret fuse key (for sealing-key
/// derivation) plus the provisioned attestation identity.
class SgxCpu {
 public:
  [[nodiscard]] const ByteArray<kCpuIdSize>& cpu_id() const noexcept {
    return cpu_id_;
  }

  enum class SealPolicy {
    kMrEnclave, // bound to the exact enclave build
    kMrSigner,  // bound to the vendor: survives enclave upgrades
  };

  /// Derives a sealing key: unique per (CPU, identity), never exposed
  /// outside key derivation. With kMrEnclave pass the enclave measurement;
  /// with kMrSigner pass the signer measurement.
  [[nodiscard]] ByteArray<32> DeriveSealKey(const Measurement& m,
                                            SealPolicy policy) const noexcept;

  /// Quoting Enclave: signs a report produced by a local enclave.
  [[nodiscard]] Quote GenerateQuote(
      const Measurement& m, const ByteArray<kReportDataSize>& report_data) const;

 private:
  friend class IntelAttestationService;
  SgxCpu() = default;

  ByteArray<kCpuIdSize> cpu_id_{};
  ByteArray<32> fuse_key_{};
  crypto::Ed25519KeyPair attestation_key_{};
  ByteArray<64> cpu_certificate_{};
};

/// The simulated Intel root of trust. Tests may instantiate a second,
/// independent service to model a forged ("non-genuine") trust chain.
class IntelAttestationService {
 public:
  /// Creates a service with a deterministic root key derived from `seed`.
  explicit IntelAttestationService(ByteSpan seed);

  /// Manufactures a new SGX CPU: random fuse key + certified QE key.
  [[nodiscard]] std::unique_ptr<SgxCpu> ProvisionCpu(ByteSpan cpu_seed) const;

  /// Root public key, distributed to all verifiers.
  [[nodiscard]] const ByteArray<32>& root_public_key() const noexcept {
    return root_key_.public_key;
  }

 private:
  crypto::Ed25519KeyPair root_key_;
};

/// Client-side quote verification against Intel's root public key and an
/// expected enclave measurement. This is what a NEXUS enclave runs before
/// trusting a peer's ECDH public key (paper §IV-B1).
Status VerifyQuote(const Quote& quote, const ByteArray<32>& intel_root_public_key,
                   const Measurement& expected_measurement);

} // namespace nexus::sgx
