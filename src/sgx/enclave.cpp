#include "sgx/enclave.hpp"

#include "crypto/aes.hpp"
#include "crypto/gcm.hpp"

namespace nexus::sgx {

EnclaveRuntime::EnclaveRuntime(const SgxCpu& cpu, const EnclaveImage& image,
                               ByteSpan rng_seed)
    : cpu_(&cpu),
      image_(&image),
      rng_(Concat(AsBytes("enclave-rdrand"), rng_seed, cpu.cpu_id())) {}

Result<Bytes> EnclaveRuntime::Seal(ByteSpan plaintext,
                                   SgxCpu::SealPolicy policy) {
  const Measurement& identity = policy == SgxCpu::SealPolicy::kMrEnclave
                                    ? measurement()
                                    : image_->signer_measurement();
  const ByteArray<32> seal_key = cpu_->DeriveSealKey(identity, policy);
  NEXUS_ASSIGN_OR_RETURN(crypto::Aes aes, crypto::Aes::Create(seal_key));
  const Bytes iv = rng_.Generate(crypto::kGcmIvSize);
  NEXUS_ASSIGN_OR_RETURN(Bytes ct,
                         crypto::GcmSeal(aes, iv, identity.digest, plaintext));
  const std::uint8_t policy_byte =
      policy == SgxCpu::SealPolicy::kMrEnclave ? 0 : 1;
  return Concat(ByteSpan(&policy_byte, 1), iv, ct);
}

Result<Bytes> EnclaveRuntime::Unseal(ByteSpan sealed) {
  if (sealed.size() < 1 + crypto::kGcmIvSize + crypto::kGcmTagSize) {
    return Error(ErrorCode::kIntegrityViolation, "sealed blob too short");
  }
  // The (authenticated) policy byte selects the key-derivation path, as the
  // key-policy field in a real SGX sealed blob header does.
  if (sealed[0] > 1) {
    return Error(ErrorCode::kIntegrityViolation, "bad sealed blob policy");
  }
  const auto policy = sealed[0] == 0 ? SgxCpu::SealPolicy::kMrEnclave
                                     : SgxCpu::SealPolicy::kMrSigner;
  const Measurement& identity = policy == SgxCpu::SealPolicy::kMrEnclave
                                    ? measurement()
                                    : image_->signer_measurement();
  const ByteArray<32> seal_key = cpu_->DeriveSealKey(identity, policy);
  NEXUS_ASSIGN_OR_RETURN(crypto::Aes aes, crypto::Aes::Create(seal_key));
  sealed = sealed.subspan(1);
  auto result = crypto::GcmOpen(aes, sealed.first(crypto::kGcmIvSize),
                                identity.digest,
                                sealed.subspan(crypto::kGcmIvSize));
  if (!result.ok()) {
    // Wrong CPU, wrong enclave/vendor, or tampering — indistinguishable by
    // design.
    return Error(ErrorCode::kIntegrityViolation,
                 "unseal failed: blob was not sealed by this enclave on this CPU");
  }
  return result;
}

Quote EnclaveRuntime::CreateQuote(
    const ByteArray<kReportDataSize>& report_data) const {
  return cpu_->GenerateQuote(measurement(), report_data);
}

} // namespace nexus::sgx
