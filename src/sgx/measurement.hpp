// Enclave identity (MRENCLAVE analogue).
//
// Real SGX measures enclave pages as they are loaded into the EPC and
// hashes them into MRENCLAVE. In the simulator an EnclaveImage carries a
// "code identity" (name + version + build digest) and the measurement is
// the SHA-256 of that identity — deterministic, so the same image measured
// on two machines yields the same MRENCLAVE, exactly like real SGX.
#pragma once

#include <compare>
#include <string>

#include "common/bytes.hpp"

namespace nexus::sgx {

struct Measurement {
  ByteArray<32> digest{};

  friend auto operator<=>(const Measurement&, const Measurement&) = default;
  [[nodiscard]] std::string ToString() const;
};

/// A loadable enclave binary. `code_identity` stands in for the page
/// contents of a real enclave; two images with the same identity measure
/// identically. `signer` is the vendor signing key identity (MRSIGNER):
/// different versions of the same product share it.
class EnclaveImage {
 public:
  EnclaveImage(std::string name, std::uint32_t version,
               std::string build_digest, std::string signer = "nexus-vendor");

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::uint32_t version() const noexcept { return version_; }
  [[nodiscard]] const Measurement& measurement() const noexcept {
    return measurement_;
  }
  /// MRSIGNER: hash of the vendor identity, shared across versions.
  [[nodiscard]] const Measurement& signer_measurement() const noexcept {
    return signer_measurement_;
  }

 private:
  std::string name_;
  std::uint32_t version_;
  Measurement measurement_;
  Measurement signer_measurement_;
};

/// The image of the production NEXUS enclave that ships with this library.
const EnclaveImage& NexusEnclaveImage();

} // namespace nexus::sgx
