#include "sgx/measurement.hpp"

#include "common/hex.hpp"
#include "common/serial.hpp"
#include "crypto/sha256.hpp"

namespace nexus::sgx {

std::string Measurement::ToString() const {
  return HexEncode(ByteSpan(digest.data(), 8)) + "...";
}

EnclaveImage::EnclaveImage(std::string name, std::uint32_t version,
                           std::string build_digest, std::string signer)
    : name_(std::move(name)), version_(version) {
  Writer w;
  w.Str(name_);
  w.U32(version_);
  w.Str(build_digest);
  measurement_.digest = crypto::Sha256::Hash(w.bytes());
  signer_measurement_.digest = crypto::Sha256::Hash(AsBytes(signer));
}

const EnclaveImage& NexusEnclaveImage() {
  static const EnclaveImage image("nexus-enclave", 1,
                                  "nexus-enclave-build-2019-dsn");
  return image;
}

} // namespace nexus::sgx
