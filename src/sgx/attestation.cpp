#include "sgx/attestation.hpp"

#include "common/serial.hpp"
#include "crypto/hmac.hpp"
#include "crypto/rng.hpp"

namespace nexus::sgx {

Bytes Quote::SignedBody() const {
  Writer w;
  w.Raw(measurement.digest);
  w.Raw(report_data);
  w.Raw(cpu_id);
  return std::move(w).Take();
}

Bytes Quote::Serialize() const {
  Writer w;
  w.Raw(measurement.digest);
  w.Raw(report_data);
  w.Raw(cpu_id);
  w.Raw(attestation_public_key);
  w.Raw(cpu_certificate);
  w.Raw(signature);
  return std::move(w).Take();
}

Result<Quote> Quote::Deserialize(ByteSpan data) {
  Reader r(data);
  Quote q;
  NEXUS_ASSIGN_OR_RETURN(Bytes m, r.Raw(32));
  q.measurement.digest = ToArray<32>(m);
  NEXUS_ASSIGN_OR_RETURN(Bytes rd, r.Raw(kReportDataSize));
  q.report_data = ToArray<kReportDataSize>(rd);
  NEXUS_ASSIGN_OR_RETURN(Bytes id, r.Raw(kCpuIdSize));
  q.cpu_id = ToArray<kCpuIdSize>(id);
  NEXUS_ASSIGN_OR_RETURN(Bytes apk, r.Raw(32));
  q.attestation_public_key = ToArray<32>(apk);
  NEXUS_ASSIGN_OR_RETURN(Bytes cert, r.Raw(64));
  q.cpu_certificate = ToArray<64>(cert);
  NEXUS_ASSIGN_OR_RETURN(Bytes sig, r.Raw(64));
  q.signature = ToArray<64>(sig);
  if (!r.AtEnd()) {
    return Error(ErrorCode::kInvalidArgument, "trailing bytes in quote");
  }
  return q;
}

ByteArray<32> SgxCpu::DeriveSealKey(const Measurement& m,
                                    SealPolicy policy) const noexcept {
  // KDF tree rooted in the fuse key; the label separates policies (and
  // sealing keys from any other derived material).
  crypto::HmacSha256Stream mac(fuse_key_);
  mac.Update(AsBytes(policy == SealPolicy::kMrEnclave ? "sgx-seal-mrenclave"
                                                      : "sgx-seal-mrsigner"));
  mac.Update(m.digest);
  return mac.Finish();
}

Quote SgxCpu::GenerateQuote(
    const Measurement& m, const ByteArray<kReportDataSize>& report_data) const {
  Quote q;
  q.measurement = m;
  q.report_data = report_data;
  q.cpu_id = cpu_id_;
  q.attestation_public_key = attestation_key_.public_key;
  q.cpu_certificate = cpu_certificate_;
  q.signature = crypto::Ed25519Sign(attestation_key_, q.SignedBody());
  return q;
}

IntelAttestationService::IntelAttestationService(ByteSpan seed) {
  crypto::HmacDrbg drbg(Concat(AsBytes("intel-root"), seed));
  root_key_ = crypto::Ed25519FromSeed(drbg.Array<32>());
}

std::unique_ptr<SgxCpu> IntelAttestationService::ProvisionCpu(
    ByteSpan cpu_seed) const {
  crypto::HmacDrbg drbg(Concat(AsBytes("sgx-cpu"), cpu_seed));
  auto cpu = std::unique_ptr<SgxCpu>(new SgxCpu());
  cpu->cpu_id_ = drbg.Array<kCpuIdSize>();
  cpu->fuse_key_ = drbg.Array<32>();
  cpu->attestation_key_ = crypto::Ed25519FromSeed(drbg.Array<32>());

  // The certificate binds (cpu_id, QE public key) under the Intel root.
  Writer w;
  w.Raw(cpu->cpu_id_);
  w.Raw(cpu->attestation_key_.public_key);
  cpu->cpu_certificate_ = crypto::Ed25519Sign(root_key_, w.bytes());
  return cpu;
}

Status VerifyQuote(const Quote& quote,
                   const ByteArray<32>& intel_root_public_key,
                   const Measurement& expected_measurement) {
  // 1. The per-CPU attestation key must be certified by Intel.
  Writer w;
  w.Raw(quote.cpu_id);
  w.Raw(quote.attestation_public_key);
  if (!crypto::Ed25519Verify(intel_root_public_key, w.bytes(),
                             quote.cpu_certificate)) {
    return Error(ErrorCode::kIntegrityViolation,
                 "quote: CPU certificate not signed by Intel root");
  }
  // 2. The quote body must be signed by that certified key.
  if (!crypto::Ed25519Verify(quote.attestation_public_key, quote.SignedBody(),
                             quote.signature)) {
    return Error(ErrorCode::kIntegrityViolation,
                 "quote: signature invalid");
  }
  // 3. The attested enclave must be the one we expect (MRENCLAVE match).
  if (quote.measurement != expected_measurement) {
    return Error(ErrorCode::kIntegrityViolation,
                 "quote: enclave measurement mismatch");
  }
  return Status::Ok();
}

} // namespace nexus::sgx
