// Work-stealing thread pool for the enclave's chunk-crypto engine.
//
// The NEXUS data path is embarrassingly parallel: every file chunk carries
// its own AES-GCM key and an independent tag (§IV-A1), so chunks can be
// sealed/opened concurrently with no shared cryptographic state. This pool
// provides the fixed worker set that EcallEncrypt/EcallDecrypt dispatch
// per-chunk tasks onto, plus the ordered join primitive the pipelined
// store path needs (consume chunk i's ciphertext while chunk j > i is
// still encrypting).
//
// Threading model (matters for the simulated SGX boundary): worker threads
// execute pure compute closures only. They never issue ecalls or ocalls —
// sgx::EnclaveRuntime is single-threaded by design and its scope guards
// assert non-reentrancy. All storage traffic stays on the submitting
// (ecall) thread, which is also the only thread that touches enclave
// caches, the RNG and the filenode being updated.
//
// Scheduling: one deque per worker, submissions round-robined across them;
// a worker pops its own deque from the back (LIFO, cache-warm) and steals
// from the front of a victim's deque (FIFO, oldest first). A single mutex
// guards all deques — tasks are coarse (a 1 MiB AES-GCM pass each, ~ms),
// so queue operations are noise and the simplicity buys straightforward
// TSan-clean shutdown and statistics.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/bytes.hpp"

namespace nexus::parallel {

/// Per-worker state handed to every task: the worker's index and a scratch
/// buffer that persists across tasks on the same worker (avoids per-task
/// allocation for round-key serialization and similar staging).
struct WorkerContext {
  std::size_t worker_index = 0;
  Bytes scratch;

  /// Returns scratch resized to at least `n` bytes (contents unspecified).
  MutableByteSpan Scratch(std::size_t n) {
    if (scratch.size() < n) scratch.resize(n);
    return MutableByteSpan(scratch.data(), n);
  }
};

/// Aggregate counters, snapshot via ThreadPool::stats().
struct PoolStats {
  std::uint64_t tasks_executed = 0;
  std::uint64_t tasks_stolen = 0; // executed from another worker's deque
  std::uint64_t peak_queue_depth = 0;
  std::size_t workers = 0;
};

class TaskGroup;

class ThreadPool {
 public:
  using Task = std::function<void(WorkerContext&)>;

  /// Spawns `workers` threads (at least 1).
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return contexts_.size();
  }
  [[nodiscard]] PoolStats stats() const;

  /// Fire-and-forget: schedules `fn` with no join group. The caller owns
  /// completion tracking (the event-driven nexusd keeps its own in-flight
  /// counters — a per-connection TaskGroup would grow its done-bitmap
  /// without bound over a long-lived connection and force a blocking
  /// WaitAll on the event loop).
  void Post(Task fn);

 private:
  friend class TaskGroup;

  struct Submission {
    Task fn;
    TaskGroup* group;
    std::size_t slot;
  };

  void Enqueue(Submission s);
  void WorkerMain(std::size_t index);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::deque<Submission>> queues_; // one per worker
  std::size_t next_queue_ = 0;                 // round-robin target
  std::size_t queued_ = 0;
  bool stop_ = false;
  PoolStats stats_;
  std::vector<WorkerContext> contexts_;
  std::vector<std::thread> threads_; // last member: joins before the rest dies
};

/// A join group of tasks with in-order completion tracking — the pipelining
/// primitive. Submit() returns a slot index; Wait(slot) blocks until that
/// task (and only that task) finished, so the submitting thread can consume
/// results in submission order while later tasks still run. With a null
/// pool every Submit executes inline on the calling thread: the serial and
/// parallel data paths share one code shape.
///
/// The group measures each task's thread-CPU time and attributes it to the
/// executing worker. After WaitAll():
///   busy_seconds()          — total CPU seconds across all tasks,
///   critical_path_seconds() — max per-worker CPU seconds, i.e. the batch's
///                             wall time on an unloaded machine with this
///                             many cores. The virtual-clock profiler uses
///                             (wall - critical_path) to model multi-core
///                             scaling even on a single-core CI host.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool);
  ~TaskGroup() { WaitAll(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Schedules `fn`; returns its slot for Wait().
  std::size_t Submit(ThreadPool::Task fn);
  /// Blocks until the task in `slot` completed.
  void Wait(std::size_t slot);
  /// Blocks until every submitted task completed.
  void WaitAll();

  [[nodiscard]] std::size_t size() const noexcept { return submitted_; }
  /// Valid after WaitAll().
  [[nodiscard]] double busy_seconds() const noexcept { return busy_seconds_; }
  [[nodiscard]] double critical_path_seconds() const noexcept {
    return critical_path_seconds_;
  }

 private:
  friend class ThreadPool;
  void OnComplete(std::size_t slot, std::size_t worker, double cpu_seconds);

  ThreadPool* pool_; // null => inline execution
  WorkerContext inline_context_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::uint8_t> done_;
  std::size_t submitted_ = 0;
  std::size_t completed_ = 0;
  std::vector<double> worker_busy_; // [workers] + one slot for inline
  double busy_seconds_ = 0;
  double critical_path_seconds_ = 0;
};

/// CPU time consumed by the calling thread (CLOCK_THREAD_CPUTIME_ID).
/// Unlike a wall clock it excludes time the thread spent descheduled, so
/// per-worker sums measure the real division of work even when the host
/// has fewer cores than the pool has workers.
double ThreadCpuSeconds() noexcept;

} // namespace nexus::parallel
