#include "parallel/thread_pool.hpp"

#include <time.h>

#include <algorithm>

#include "trace/trace.hpp"

namespace nexus::parallel {

double ThreadCpuSeconds() noexcept {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }
#endif
  return 0.0;
}

// ---- ThreadPool -------------------------------------------------------------

ThreadPool::ThreadPool(std::size_t workers) {
  const std::size_t n = std::max<std::size_t>(1, workers);
  queues_.resize(n);
  contexts_.resize(n);
  for (std::size_t i = 0; i < n; ++i) contexts_[i].worker_index = i;
  stats_.workers = n;
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { WorkerMain(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

PoolStats ThreadPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ThreadPool::Post(Task fn) {
  Enqueue(Submission{std::move(fn), nullptr, 0});
}

void ThreadPool::Enqueue(Submission s) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queues_[next_queue_].push_back(std::move(s));
    next_queue_ = (next_queue_ + 1) % queues_.size();
    ++queued_;
    stats_.peak_queue_depth = std::max<std::uint64_t>(stats_.peak_queue_depth,
                                                      queued_);
  }
  cv_.notify_one();
}

void ThreadPool::WorkerMain(std::size_t index) {
  WorkerContext& ctx = contexts_[index];
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    Submission task;
    bool found = false;
    // Own deque from the back (most recently queued: cache-warm)...
    if (!queues_[index].empty()) {
      task = std::move(queues_[index].back());
      queues_[index].pop_back();
      found = true;
    } else {
      // ...else steal the oldest task from the first non-empty victim.
      for (std::size_t off = 1; off < queues_.size(); ++off) {
        auto& victim = queues_[(index + off) % queues_.size()];
        if (!victim.empty()) {
          task = std::move(victim.front());
          victim.pop_front();
          found = true;
          ++stats_.tasks_stolen;
          break;
        }
      }
    }
    if (found) {
      --queued_;
      ++stats_.tasks_executed;
      lock.unlock();
      const double cpu0 = ThreadCpuSeconds();
      {
        trace::Span task_span("parallel:task", "parallel");
        task.fn(ctx);
      }
      const double cpu = ThreadCpuSeconds() - cpu0;
      if (task.group != nullptr) {
        task.group->OnComplete(task.slot, index, cpu);
      }
      lock.lock();
      continue;
    }
    if (stop_) return;
    cv_.wait(lock);
  }
}

// ---- TaskGroup --------------------------------------------------------------

TaskGroup::TaskGroup(ThreadPool* pool) : pool_(pool) {
  const std::size_t workers = pool_ != nullptr ? pool_->worker_count() : 0;
  worker_busy_.assign(workers + 1, 0.0); // last slot: inline execution
  inline_context_.worker_index = workers;
}

std::size_t TaskGroup::Submit(ThreadPool::Task fn) {
  std::size_t slot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    slot = submitted_++;
    done_.push_back(0);
  }
  if (pool_ == nullptr) {
    // Inline: the serial configuration runs the identical code path, minus
    // the threads. CPU accounting still happens so busy == critical path
    // and the profiler reports zero modeled savings.
    const double cpu0 = ThreadCpuSeconds();
    {
      trace::Span task_span("parallel:task", "parallel");
      fn(inline_context_);
    }
    OnComplete(slot, inline_context_.worker_index, ThreadCpuSeconds() - cpu0);
    return slot;
  }
  pool_->Enqueue(ThreadPool::Submission{std::move(fn), this, slot});
  return slot;
}

void TaskGroup::OnComplete(std::size_t slot, std::size_t worker,
                           double cpu_seconds) {
  // Notify while holding the lock: the moment the final completion is
  // observable a waiter may return from WaitAll and destroy this group, so
  // no member (the condition variable included) may be touched after the
  // mutex is released.
  std::lock_guard<std::mutex> lock(mu_);
  done_[slot] = 1;
  ++completed_;
  worker_busy_[worker] += cpu_seconds;
  busy_seconds_ += cpu_seconds;
  critical_path_seconds_ =
      std::max(critical_path_seconds_, worker_busy_[worker]);
  cv_.notify_all();
}

void TaskGroup::Wait(std::size_t slot) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return done_[slot] != 0; });
}

void TaskGroup::WaitAll() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return completed_ == submitted_; });
}

} // namespace nexus::parallel
