// Raw object-store backends.
//
// The AFS server persists its objects through this interface. MemBackend
// backs simulations and tests; DiskBackend persists volumes across runs
// (used by the examples). Neither charges simulated cost — that is the
// server's job.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"

namespace nexus::storage {

// Thread-safety contract. A StorageBackend may be shared by concurrent
// callers (nexusd serves one backend to many connections off a thread
// pool), so implementations MUST make the whole-object operations (Get /
// Put / Delete / Exists / List / OpenPutStream) safe to call from any
// thread, including concurrently on the same object name — last writer
// wins, and readers observe some previously committed whole object, never
// a torn one. A PutStream instance, by contrast, is NOT thread-safe: it
// belongs to the single caller that opened it (Append/Commit/Abort must
// be externally serialized), though distinct PutStreams — even for the
// same name — may be driven from different threads concurrently.
class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  virtual Result<Bytes> Get(const std::string& name) = 0;
  virtual Status Put(const std::string& name, ByteSpan data) = 0;
  virtual Status Delete(const std::string& name) = 0;
  [[nodiscard]] virtual bool Exists(const std::string& name) = 0;
  /// All object names with the given prefix, sorted.
  [[nodiscard]] virtual std::vector<std::string> List(const std::string& prefix) = 0;

  /// An in-progress segmented Put. Append() receives the object's bytes in
  /// order; the object becomes visible under its name only at Commit(),
  /// atomically — readers see the old content or the new content, never a
  /// prefix. Dropping the stream without Commit (or calling Abort) leaves
  /// the store untouched.
  class PutStream {
   public:
    virtual ~PutStream() = default;
    virtual Status Append(ByteSpan data) = 0;
    virtual Status Commit() = 0;
    virtual void Abort() = 0;
  };

  /// Opens a segmented Put of `name`. The default implementation buffers
  /// and delegates to Put() at commit (atomic for in-memory stores);
  /// DiskBackend overrides it to spill segments straight to its temp file
  /// so a large streamed object never needs a second in-memory copy.
  virtual Result<std::unique_ptr<PutStream>> OpenPutStream(
      const std::string& name);

  /// Opens a segmented Put that does NOT retain already-sent segments for
  /// replay, so the caller's memory stays bounded by the in-flight window
  /// rather than the object size. The trade is weaker failure recovery: a
  /// transport-level failure mid-stream fails the stream permanently
  /// instead of transparently restarting it (callers with their own
  /// redundancy — a replicated cluster — prefer that). The default is the
  /// plain OpenPutStream; RemoteBackend overrides it with a pipelined
  /// multi-append stream over its RPC mux.
  virtual Result<std::unique_ptr<PutStream>> OpenUnbufferedPutStream(
      const std::string& name) {
    return OpenPutStream(name);
  }

  /// One bounded page of a listing: the first `limit` names greater than
  /// `start_after` (exclusive cursor) that carry `prefix`, sorted; `more`
  /// is set when the listing was truncated — pass the last returned name
  /// back as `start_after` to continue. The default materializes List()
  /// and slices it; backends with native paging (RemoteBackend over wire
  /// v6) override it so a million-object enumeration never materializes
  /// whole on either side.
  struct ListPage {
    std::vector<std::string> names;
    bool more = false;
  };
  virtual ListPage ListSome(const std::string& prefix,
                            const std::string& start_after, std::size_t limit);

  /// Batched Get: one result per name, same order. The default loops over
  /// Get(); RemoteBackend overrides it with a single MultiGet round trip
  /// when the peer speaks wire v3.
  virtual std::vector<Result<Bytes>> MultiGet(
      const std::vector<std::string>& names);
  /// Batched Get that also reports, per name, whether a read lease was
  /// granted (wire v5). `leased` may be null; when non-null it is resized
  /// to match `names` and filled alongside the results. The default
  /// delegates to MultiGet with every flag false.
  virtual std::vector<Result<Bytes>> MultiGetLeased(
      const std::vector<std::string>& names, std::vector<bool>* leased) {
    if (leased != nullptr) leased->assign(names.size(), false);
    return MultiGet(names);
  }
  /// Batched Exists, same shape.
  virtual std::vector<bool> MultiExists(const std::vector<std::string>& names);

  /// Non-binding readahead hint: `name` is likely to be Get() soon. The
  /// default does nothing; RemoteBackend speculatively fetches the object
  /// through its async window and delivers the result to the registered
  /// PrefetchSink (the cache layer) so the later Get is served locally.
  virtual void Prefetch(const std::string& name) { (void)name; }

  /// Where speculative Prefetch results land. `leased` mirrors GetLeased's
  /// flag for backends that grant read leases. May be invoked from a
  /// backend-internal thread (RemoteBackend delivers on its demux thread),
  /// so sinks must be thread-safe and must not call back into the backend.
  using PrefetchSink =
      std::function<void(const std::string& name, Result<Bytes> object,
                         bool leased)>;
  /// Registers the sink Prefetch deliveries flow into. Backends without
  /// async prefetch ignore it (their Prefetch is already a no-op).
  virtual void SetPrefetchSink(PrefetchSink sink) { (void)sink; }

  /// Get that also reports whether the backend granted a read lease on the
  /// object (server-pushed invalidation will arrive through the
  /// SubscribeInvalidations channel when another client mutates it). Plain
  /// stores are local and never grant leases.
  virtual Result<Bytes> GetLeased(const std::string& name,
                                  bool* lease_granted) {
    if (lease_granted != nullptr) *lease_granted = false;
    return Get(name);
  }

  /// Put that also reports whether the backend granted the writer a WRITE
  /// lease on the object (wire v5): the writer keeps its own copy cached
  /// and will NOT receive an invalidation for its own mutation, only for
  /// later mutations by others. Plain stores never grant leases.
  virtual Status PutLeased(const std::string& name, ByteSpan data,
                           bool* lease_granted) {
    if (lease_granted != nullptr) *lease_granted = false;
    return Put(name, data);
  }

  /// Durability/ordering barrier: drains any buffered writes into stable
  /// storage. Plain stores are synchronous already, so the default is a
  /// no-op; the client cache overrides it to flush its writeback queue.
  virtual Status Flush() { return Status::Ok(); }

  /// Multi-client coherence hooks. `on_invalidate` is called (from a
  /// backend-internal thread) with object names another client mutated;
  /// `on_channel_down` fires once if the invalidation channel dies, after
  /// which no further callbacks arrive and cached data must be aged out by
  /// TTL instead. Returns false when the backend (or its peer) cannot push
  /// invalidations — the caller falls back to write-through + TTL.
  using InvalidationListener =
      std::function<void(const std::vector<std::string>& names)>;
  using ChannelDownHandler = std::function<void()>;
  virtual bool SubscribeInvalidations(InvalidationListener on_invalidate,
                                      ChannelDownHandler on_channel_down) {
    (void)on_invalidate;
    (void)on_channel_down;
    return false;
  }
};

/// Volatile in-memory store. Thread-safe per the contract above (one
/// mutex around the object map).
class MemBackend final : public StorageBackend {
 public:
  Result<Bytes> Get(const std::string& name) override;
  Status Put(const std::string& name, ByteSpan data) override;
  Status Delete(const std::string& name) override;
  bool Exists(const std::string& name) override;
  std::vector<std::string> List(const std::string& prefix) override;

  [[nodiscard]] std::size_t object_count() const noexcept;
  [[nodiscard]] std::uint64_t total_bytes() const noexcept;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, Bytes> objects_;
};

/// Escapes an object name into a flat, filesystem-safe filename:
/// alphanumerics, '-', '_' and '.' pass through; everything else
/// (including '/') becomes %XX. Exposed for DiskBackend tests and tools.
std::string EscapeName(const std::string& name);
/// Inverse of EscapeName. Malformed escapes pass through verbatim.
std::string UnescapeName(const std::string& file);

/// Durable store: one file per object under `root`, object names
/// percent-escaped into filenames.
class DiskBackend final : public StorageBackend {
 public:
  /// Creates `root` if needed.
  static Result<DiskBackend> Open(const std::string& root);

  DiskBackend(DiskBackend&& other) noexcept
      : root_(std::move(other.root_)), temp_seq_(other.temp_seq_.load()) {}

  Result<Bytes> Get(const std::string& name) override;
  Status Put(const std::string& name, ByteSpan data) override;
  Status Delete(const std::string& name) override;
  bool Exists(const std::string& name) override;
  std::vector<std::string> List(const std::string& prefix) override;
  /// Streams segments into the ".%tmp-" file and renames at Commit — the
  /// same crash-atomicity as Put, applied at commit rather than per
  /// segment.
  Result<std::unique_ptr<PutStream>> OpenPutStream(
      const std::string& name) override;

 private:
  explicit DiskBackend(std::string root) : root_(std::move(root)) {}
  [[nodiscard]] std::string PathFor(const std::string& name) const;
  [[nodiscard]] std::string TempPathFor(const std::string& name);

  std::string root_;
  // Distinguishes concurrent in-flight writes to the same name so their
  // temp files never collide (thread-safety contract above).
  std::atomic<std::uint64_t> temp_seq_{0};
};

} // namespace nexus::storage
