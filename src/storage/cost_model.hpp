// Network/server cost model for the simulated AFS deployment.
//
// The evaluation (paper §VII) ran OpenAFS over a LAN. We charge each RPC a
// round-trip plus per-byte transfer time on a deterministic virtual clock.
// The defaults below are calibrated so the *unmodified OpenAFS baseline*
// lands near the paper's Table 5a/5b absolute numbers (see EXPERIMENTS.md);
// NEXUS-vs-baseline ratios are then a genuine output of the system, not an
// input.
#pragma once

#include <cstdint>

namespace nexus::storage {

struct CostModel {
  /// One network round trip, seconds (LAN).
  double rtt_seconds = 0.0005;
  /// Sustained transfer bandwidth in each direction, bytes/second.
  double bandwidth_bytes_per_sec = 6.0 * 1024 * 1024;
  /// Fixed server-side processing per RPC, seconds.
  double per_op_seconds = 0.0001;
  /// Additional per-entry cost of a directory listing RPC, seconds.
  double per_dirent_seconds = 0.000002;

  [[nodiscard]] double RpcSeconds(std::uint64_t payload_bytes) const noexcept {
    return rtt_seconds + per_op_seconds +
           static_cast<double>(payload_bytes) / bandwidth_bytes_per_sec;
  }
};

} // namespace nexus::storage
