// Deterministic virtual clock.
//
// All simulated I/O latency is accumulated here; enclave compute time is
// measured with a real clock and added by the profiler (DESIGN.md §5.1).
// Scoped accounts let callers attribute slices of virtual time to
// categories (e.g. "metadata I/O" vs "data I/O" in Table 5a).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>

namespace nexus::storage {

class SimClock {
 public:
  /// Advances virtual time; attributed to the active account, if any.
  /// Only the simulation's driving thread advances, but Now() is read
  /// concurrently (tracer spans on pool workers timestamp against the
  /// registered sim clock), so the counter itself is atomic.
  void Advance(double seconds) noexcept {
    now_seconds_.store(now_seconds_.load(std::memory_order_relaxed) + seconds,
                       std::memory_order_relaxed);
    if (active_account_ != nullptr) *active_account_ += seconds;
  }

  [[nodiscard]] double Now() const noexcept {
    return now_seconds_.load(std::memory_order_relaxed);
  }

  /// Named accumulator for attributing time.
  [[nodiscard]] double Account(const std::string& name) const {
    const auto it = accounts_.find(name);
    return it == accounts_.end() ? 0.0 : it->second;
  }

  void ResetAccounts() { accounts_.clear(); }

  /// While alive, all Advance() time is also credited to `name`.
  /// Non-nesting by design: metadata and data I/O never overlap in NEXUS.
  class Attribution {
   public:
    Attribution(SimClock& clock, const std::string& name) noexcept
        : clock_(clock), saved_(clock.active_account_) {
      clock_.active_account_ = &clock_.accounts_[name];
    }
    ~Attribution() { clock_.active_account_ = saved_; }
    Attribution(const Attribution&) = delete;
    Attribution& operator=(const Attribution&) = delete;

   private:
    SimClock& clock_;
    double* saved_;
  };

 private:
  std::atomic<double> now_seconds_{0.0};
  double* active_account_ = nullptr;
  std::unordered_map<std::string, double> accounts_;
};

} // namespace nexus::storage
