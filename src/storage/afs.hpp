// Simulated AFS deployment: a whole-file-caching distributed filesystem.
//
// Reproduces the OpenAFS behaviours the NEXUS evaluation depends on:
//  * whole-file fetch on first open, whole-file store on close
//    (open-to-close semantics; the VFS layer buffers in between),
//  * client-side persistent caches kept coherent by server callbacks
//    (a client's cached copy stays valid until another client writes),
//  * advisory per-file locks (flock), used by NEXUS for metadata updates,
//  * per-RPC network cost charged on a deterministic virtual clock.
//
// The server is *untrusted*: the Adversary interface manipulates stored
// objects directly (tamper / rollback / swap / replay) with no cost and no
// client involvement, modelling the paper's §III-A threat model.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "storage/backend.hpp"
#include "storage/cost_model.hpp"
#include "storage/sim_clock.hpp"

namespace nexus::storage {

class AfsServer {
 public:
  AfsServer(std::unique_ptr<StorageBackend> backend, SimClock& clock,
            CostModel cost = {});
  /// Unregisters this server's clock from the tracer's sim-time source.
  ~AfsServer();

  // ---- RPCs (cost charged on the virtual clock) -------------------------

  struct FetchResult {
    Bytes data;
    std::uint64_t version = 0;
  };

  Result<FetchResult> RpcFetch(const std::string& client, const std::string& path);
  /// Batched fetch: the whole set travels as ONE round-trip (the per-RPC
  /// overhead is charged once; transfer time covers the summed payload),
  /// riding the backend's MultiGet so a remote store coalesces the fan-out
  /// into one frame each way. Results are per-path — a missing object
  /// fails its own slot, never the batch.
  std::vector<Result<FetchResult>> RpcFetchMulti(
      const std::string& client, const std::vector<std::string>& paths);
  /// Readahead hint: asks the storage layer to start pulling `path` toward
  /// the client. Speculative traffic overlaps client computation, so it is
  /// free on the virtual clock and carries no reply; correctness never
  /// depends on it.
  void RpcPrefetchHint(const std::string& client, const std::string& path);
  Result<std::uint64_t> RpcStore(const std::string& client,
                                 const std::string& path, ByteSpan data);
  /// Store that only transfers `changed_bytes` over the wire (AFS fsync
  /// ships dirty chunks, not the whole file). Content still replaced whole.
  Result<std::uint64_t> RpcStorePartial(const std::string& client,
                                        const std::string& path, ByteSpan data,
                                        std::uint64_t changed_bytes);
  // ---- segmented store (pipelined writes) -------------------------------
  // One logical store RPC split into frames so the client can ship chunk
  // ciphertext while later chunks are still being produced. Begin charges
  // the control round-trip, each segment charges its transfer time, and
  // Commit charges the closing acknowledgement. Content, version bump and
  // callback breaks apply atomically at Commit via the backend's
  // PutStream (temp+rename on disk stores) — a crash or Abort mid-stream
  // leaves the stored object untouched.

  Result<std::uint64_t> RpcStoreBegin(const std::string& client,
                                      const std::string& path,
                                      std::uint64_t total_bytes);
  Status RpcStoreSegment(std::uint64_t handle, ByteSpan segment);
  Result<std::uint64_t> RpcStoreCommit(std::uint64_t handle);
  Status RpcStoreAbort(std::uint64_t handle);

  Status RpcRemove(const std::string& client, const std::string& path);
  /// Cheap existence probe (a FetchStatus RPC in AFS).
  Result<bool> RpcExists(const std::string& client, const std::string& path);
  struct StatResult {
    bool exists = false;
    std::uint64_t size = 0;
  };
  /// FetchStatus: size without transferring content.
  Result<StatResult> RpcStat(const std::string& client, const std::string& path);
  /// FetchStatus variant returning the version stamp; re-establishes the
  /// caller's callback promise (this is how AFS revalidates a cache entry
  /// without re-transferring the file).
  Result<std::uint64_t> RpcGetVersion(const std::string& client,
                                      const std::string& path);
  /// Names with the given prefix (directory enumeration).
  Result<std::vector<std::string>> RpcList(const std::string& client,
                                           const std::string& prefix);
  struct ChildEntry {
    std::string name;
    bool is_exact = false;     // an object named exactly prefix+name exists
    bool has_children = false; // objects exist under prefix+name+"/"
  };
  /// Immediate children under `prefix` (one path segment), deduplicated.
  Result<std::vector<ChildEntry>> RpcListDir(const std::string& client,
                                             const std::string& prefix);
  /// Server-side rename of `from` and (for directories) every object under
  /// `from + "/"`. One RPC regardless of subtree size.
  Status RpcRename(const std::string& client, const std::string& from,
                   const std::string& to);
  /// Advisory exclusive lock; kConflict if held by another client.
  Status RpcLock(const std::string& client, const std::string& path);
  Status RpcUnlock(const std::string& client, const std::string& path);

  /// True if `client` still holds a valid callback promise for `path`
  /// (no RPC: models the server-initiated callback channel).
  [[nodiscard]] bool CallbackValid(const std::string& client,
                                   const std::string& path) const;

  [[nodiscard]] SimClock& clock() noexcept { return clock_; }
  [[nodiscard]] const CostModel& cost() const noexcept { return cost_; }
  [[nodiscard]] std::uint64_t rpc_count() const noexcept { return rpc_count_; }

  // ---- Adversary interface (malicious server; free of charge) -----------

  /// Direct read of stored ciphertext.
  Result<Bytes> AdversaryRead(const std::string& path);
  /// Overwrites stored bytes without bumping callbacks or versions —
  /// clients cannot tell anything changed until they re-fetch.
  Status AdversaryWrite(const std::string& path, ByteSpan data);
  /// Swaps two objects' contents (file-swapping attack, paper §VI-C).
  Status AdversarySwap(const std::string& a, const std::string& b);
  /// Saves a copy of an object for a later rollback.
  Result<Bytes> AdversarySnapshot(const std::string& path);
  /// Restores a snapshot (rollback attack) — version is restored too, so
  /// the staleness is invisible at the transport layer.
  Status AdversaryRollback(const std::string& path, ByteSpan snapshot);
  /// Breaks every client's callback for `path`, forcing re-fetches.
  void AdversaryInvalidateCallbacks(const std::string& path);

 private:
  void ChargeRpc(std::uint64_t payload_bytes);
  void BreakCallbacksExcept(const std::string& path, const std::string& keep);

  std::unique_ptr<StorageBackend> backend_;
  SimClock& clock_;
  CostModel cost_;
  std::unordered_map<std::string, std::uint64_t> versions_;
  std::unordered_map<std::string, std::string> locks_; // path -> holder
  // path -> clients holding a callback promise
  std::unordered_map<std::string, std::unordered_set<std::string>> callbacks_;
  // In-flight segmented stores (handle -> stream state).
  struct PendingStore {
    std::string client;
    std::string path;
    std::unique_ptr<StorageBackend::PutStream> sink;
  };
  std::unordered_map<std::uint64_t, PendingStore> pending_stores_;
  std::uint64_t next_store_handle_ = 1;
  std::uint64_t rpc_count_ = 0;
};

/// A client machine's AFS cache manager.
class AfsClient {
 public:
  AfsClient(AfsServer& server, std::string client_id);

  /// Whole-file fetch. Served from the local cache when the callback is
  /// still valid (zero cost), otherwise fetched from the server.
  Result<Bytes> Fetch(const std::string& path);
  /// Batched fetch: cache-fresh paths are free local hits; all misses go
  /// to the server as one RpcFetchMulti round-trip and are installed in
  /// the cache. One result per input path, order preserved.
  std::vector<Result<Bytes>> FetchMany(const std::vector<std::string>& paths);
  /// Readahead hint. A no-op when the cached copy is still fresh;
  /// otherwise forwards the hint to the server (and on to the backend's
  /// async prefetch window). Never blocks, never charges the clock.
  void Prefetch(const std::string& path);
  /// Fetch that also reports the server version stamp of the bytes.
  Result<AfsServer::FetchResult> FetchVersioned(const std::string& path);
  /// Whole-file store (the close() flush in open-to-close semantics).
  Status Store(const std::string& path, ByteSpan data);
  /// Store that reports the new server version stamp.
  Result<std::uint64_t> StoreVersioned(const std::string& path, ByteSpan data);
  /// True if the locally cached copy is still callback-fresh *and* carries
  /// exactly `version`. Purely local — never issues an RPC.
  [[nodiscard]] bool CacheFresh(const std::string& path, std::uint64_t version) const;
  /// Like CacheFresh, but on a broken callback revalidates with a cheap
  /// FetchStatus RPC (re-establishing the callback if the version still
  /// matches) instead of giving up.
  Result<bool> Revalidate(const std::string& path, std::uint64_t version);
  /// Partial flush: replaces content but only charges `changed_bytes` of
  /// transfer (fsync of dirty chunks).
  Status StorePartial(const std::string& path, ByteSpan data,
                      std::uint64_t changed_bytes);

  // ---- segmented store (pipelined writes) --------------------------------
  // The client mirrors the streamed bytes into a pending buffer and
  // installs them in its cache at commit, exactly as a whole-file Store
  // would (AFS writeback semantics). `changed_bytes` at commit is the
  // transfer-accounting figure recorded in stats (segments already paid
  // their wire time on the virtual clock).
  Result<std::uint64_t> StoreStreamBegin(const std::string& path,
                                         std::uint64_t total_bytes);
  Status StoreStreamSegment(std::uint64_t handle, ByteSpan segment);
  Status StoreStreamCommit(std::uint64_t handle, std::uint64_t changed_bytes);
  Status StoreStreamAbort(std::uint64_t handle);

  /// Bytes [offset, offset+len) of an object plus its total size. AFS
  /// transfers whole files: the first access fetches (and caches) the full
  /// object at full cost; subsequent ranges are free cache slices.
  struct RangeResult {
    Bytes data;
    std::uint64_t object_size = 0;
    std::uint64_t version = 0;
  };
  Result<RangeResult> FetchRange(const std::string& path, std::uint64_t offset,
                                 std::uint64_t len);
  Status Remove(const std::string& path);
  Result<bool> Exists(const std::string& path);
  Result<AfsServer::StatResult> Stat(const std::string& path);
  Result<std::vector<std::string>> List(const std::string& prefix);
  Result<std::vector<AfsServer::ChildEntry>> ListDir(const std::string& prefix);
  Status RenameObject(const std::string& from, const std::string& to);
  Status Lock(const std::string& path);
  Status Unlock(const std::string& path);

  /// Drops the local cache (the evaluation's "flush the AFS cache").
  void FlushCache() { cache_.clear(); }

  /// Disables FetchStatus revalidation (ablation: every broken callback
  /// forces a full re-fetch, the naive pre-optimization behaviour).
  void set_revalidation_enabled(bool enabled) noexcept {
    revalidation_enabled_ = enabled;
  }

  [[nodiscard]] const std::string& id() const noexcept { return id_; }
  [[nodiscard]] AfsServer& server() noexcept { return server_; }

  struct Stats {
    std::uint64_t fetches = 0;        // RPC fetches (cache misses)
    std::uint64_t cache_hits = 0;
    std::uint64_t stores = 0;
    std::uint64_t bytes_fetched = 0;
    std::uint64_t bytes_stored = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  void ResetStats() { stats_ = {}; }

 private:
  struct CacheEntry {
    Bytes data;
    std::uint64_t version = 0;
  };

  /// Cached entry when fresh, else fetches (and caches) from the server.
  Result<const CacheEntry*> FetchCached(const std::string& path);

  struct PendingStream {
    std::string path;
    Bytes buffered;
  };

  AfsServer& server_;
  std::string id_;
  bool revalidation_enabled_ = true;
  std::unordered_map<std::string, CacheEntry> cache_;
  std::unordered_map<std::uint64_t, PendingStream> pending_streams_;
  Stats stats_;
};

} // namespace nexus::storage
