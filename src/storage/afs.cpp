#include "storage/afs.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "trace/trace.hpp"

namespace nexus::storage {

AfsServer::AfsServer(std::unique_ptr<StorageBackend> backend, SimClock& clock,
                     CostModel cost)
    : backend_(std::move(backend)), clock_(clock), cost_(cost) {
  // Publish this deployment's virtual clock to the tracer so spans carry
  // sim-time stamps alongside the monotonic clock. Last-constructed wins;
  // tests that run several Worlds trace against the newest one.
  trace::SetSimSource(
      [](const void* ctx) {
        return static_cast<const SimClock*>(ctx)->Now();
      },
      &clock_);
}

AfsServer::~AfsServer() { trace::ClearSimSource(&clock_); }

void AfsServer::ChargeRpc(std::uint64_t payload_bytes) {
  ++rpc_count_;
  clock_.Advance(cost_.RpcSeconds(payload_bytes));
}

void AfsServer::BreakCallbacksExcept(const std::string& path,
                                     const std::string& keep) {
  auto it = callbacks_.find(path);
  if (it == callbacks_.end()) return;
  std::unordered_set<std::string> kept;
  if (it->second.contains(keep)) kept.insert(keep);
  it->second = std::move(kept);
}

Result<AfsServer::FetchResult> AfsServer::RpcFetch(const std::string& client,
                                                   const std::string& path) {
  auto data = backend_->Get(path);
  if (!data.ok()) {
    ChargeRpc(0);
    return data.status();
  }
  ChargeRpc(data->size());
  callbacks_[path].insert(client);
  return FetchResult{std::move(data).value(), versions_[path]};
}

std::vector<Result<AfsServer::FetchResult>> AfsServer::RpcFetchMulti(
    const std::string& client, const std::vector<std::string>& paths) {
  // One round-trip for the batch: the backend's MultiGet coalesces the
  // fan-out (a remote store ships one frame each way), and ChargeRpc runs
  // once over the summed payload instead of once per object.
  std::vector<Result<Bytes>> fetched = backend_->MultiGet(paths);
  std::uint64_t payload = 0;
  for (const Result<Bytes>& result : fetched) {
    if (result.ok()) payload += result.value().size();
  }
  ChargeRpc(payload);
  std::vector<Result<FetchResult>> out;
  out.reserve(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (!fetched[i].ok()) {
      out.push_back(fetched[i].status());
      continue;
    }
    callbacks_[paths[i]].insert(client);
    out.push_back(
        FetchResult{std::move(fetched[i]).value(), versions_[paths[i]]});
  }
  return out;
}

void AfsServer::RpcPrefetchHint(const std::string& client,
                                const std::string& path) {
  (void)client;
  // Speculative readahead overlaps the client's computation, so it costs
  // nothing on the virtual clock and is not a counted RPC; the backend
  // decides whether (and how) to act on the hint.
  backend_->Prefetch(path);
}

Result<std::uint64_t> AfsServer::RpcStore(const std::string& client,
                                          const std::string& path,
                                          ByteSpan data) {
  ChargeRpc(data.size());
  NEXUS_RETURN_IF_ERROR(backend_->Put(path, data));
  const std::uint64_t version = ++versions_[path];
  BreakCallbacksExcept(path, client);
  callbacks_[path].insert(client);
  return version;
}

Result<std::uint64_t> AfsServer::RpcStorePartial(const std::string& client,
                                                 const std::string& path,
                                                 ByteSpan data,
                                                 std::uint64_t changed_bytes) {
  ChargeRpc(std::min<std::uint64_t>(changed_bytes, data.size()));
  NEXUS_RETURN_IF_ERROR(backend_->Put(path, data));
  const std::uint64_t version = ++versions_[path];
  BreakCallbacksExcept(path, client);
  callbacks_[path].insert(client);
  return version;
}

Result<std::uint64_t> AfsServer::RpcStoreBegin(const std::string& client,
                                               const std::string& path,
                                               std::uint64_t total_bytes) {
  (void)total_bytes; // advisory; the backend stream sizes itself
  ChargeRpc(0); // control round-trip
  NEXUS_ASSIGN_OR_RETURN(std::unique_ptr<StorageBackend::PutStream> sink,
                         backend_->OpenPutStream(path));
  const std::uint64_t handle = next_store_handle_++;
  pending_stores_.emplace(handle, PendingStore{client, path, std::move(sink)});
  return handle;
}

Status AfsServer::RpcStoreSegment(std::uint64_t handle, ByteSpan segment) {
  const auto it = pending_stores_.find(handle);
  if (it == pending_stores_.end()) {
    return Error(ErrorCode::kInvalidArgument, "unknown store stream");
  }
  // A frame of the open store RPC: transfer time only, no extra round trip.
  clock_.Advance(static_cast<double>(segment.size()) /
                 cost_.bandwidth_bytes_per_sec);
  const Status result = it->second.sink->Append(segment);
  if (!result.ok()) {
    it->second.sink->Abort();
    pending_stores_.erase(it);
  }
  return result;
}

Result<std::uint64_t> AfsServer::RpcStoreCommit(std::uint64_t handle) {
  const auto it = pending_stores_.find(handle);
  if (it == pending_stores_.end()) {
    return Error(ErrorCode::kInvalidArgument, "unknown store stream");
  }
  ChargeRpc(0); // closing acknowledgement
  PendingStore store = std::move(it->second);
  pending_stores_.erase(it);
  NEXUS_RETURN_IF_ERROR(store.sink->Commit());
  const std::uint64_t version = ++versions_[store.path];
  BreakCallbacksExcept(store.path, store.client);
  callbacks_[store.path].insert(store.client);
  return version;
}

Status AfsServer::RpcStoreAbort(std::uint64_t handle) {
  const auto it = pending_stores_.find(handle);
  if (it == pending_stores_.end()) {
    return Error(ErrorCode::kInvalidArgument, "unknown store stream");
  }
  it->second.sink->Abort();
  pending_stores_.erase(it);
  return Status::Ok();
}

Result<AfsServer::StatResult> AfsServer::RpcStat(const std::string& client,
                                                 const std::string& path) {
  (void)client;
  ChargeRpc(0);
  if (!backend_->Exists(path)) return StatResult{false, 0};
  NEXUS_ASSIGN_OR_RETURN(Bytes data, backend_->Get(path));
  return StatResult{true, data.size()};
}

Result<std::uint64_t> AfsServer::RpcGetVersion(const std::string& client,
                                               const std::string& path) {
  ChargeRpc(0);
  if (!backend_->Exists(path)) {
    return Error(ErrorCode::kNotFound, "object not found: " + path);
  }
  callbacks_[path].insert(client);
  return versions_[path];
}

Result<std::vector<AfsServer::ChildEntry>> AfsServer::RpcListDir(
    const std::string& client, const std::string& prefix) {
  (void)client;
  std::vector<ChildEntry> out;
  for (const std::string& name : backend_->List(prefix)) {
    std::string child = name.substr(prefix.size());
    const std::size_t slash = child.find('/');
    const bool nested = slash != std::string::npos;
    if (nested) child.resize(slash);
    if (out.empty() || out.back().name != child) {
      out.push_back(ChildEntry{child, false, false});
    }
    if (nested) {
      out.back().has_children = true;
    } else {
      out.back().is_exact = true;
    }
  }
  ++rpc_count_;
  clock_.Advance(cost_.RpcSeconds(0) +
                 cost_.per_dirent_seconds * static_cast<double>(out.size()));
  return out;
}

Status AfsServer::RpcRename(const std::string& client, const std::string& from,
                            const std::string& to) {
  ChargeRpc(0);
  bool moved_any = false;
  // Exact object.
  if (backend_->Exists(from)) {
    NEXUS_ASSIGN_OR_RETURN(Bytes data, backend_->Get(from));
    NEXUS_RETURN_IF_ERROR(backend_->Put(to, data));
    NEXUS_RETURN_IF_ERROR(backend_->Delete(from));
    versions_[to] = ++versions_[from];
    versions_.erase(from);
    BreakCallbacksExcept(from, "");
    BreakCallbacksExcept(to, "");
    moved_any = true;
  }
  // Subtree (directory rename): server-side, no extra transfer cost.
  for (const std::string& name : backend_->List(from + "/")) {
    const std::string target = to + name.substr(from.size());
    NEXUS_ASSIGN_OR_RETURN(Bytes data, backend_->Get(name));
    NEXUS_RETURN_IF_ERROR(backend_->Put(target, data));
    NEXUS_RETURN_IF_ERROR(backend_->Delete(name));
    versions_[target] = ++versions_[name];
    versions_.erase(name);
    BreakCallbacksExcept(name, "");
    BreakCallbacksExcept(target, "");
    moved_any = true;
  }
  (void)client;
  if (!moved_any) {
    return Error(ErrorCode::kNotFound, "rename source missing: " + from);
  }
  return Status::Ok();
}

Status AfsServer::RpcRemove(const std::string& client, const std::string& path) {
  ChargeRpc(0);
  NEXUS_RETURN_IF_ERROR(backend_->Delete(path));
  versions_.erase(path);
  BreakCallbacksExcept(path, /*keep=*/"");
  (void)client;
  return Status::Ok();
}

Result<bool> AfsServer::RpcExists(const std::string& client,
                                  const std::string& path) {
  (void)client;
  ChargeRpc(0);
  return backend_->Exists(path);
}

Result<std::vector<std::string>> AfsServer::RpcList(const std::string& client,
                                                    const std::string& prefix) {
  (void)client;
  auto names = backend_->List(prefix);
  ++rpc_count_;
  clock_.Advance(cost_.RpcSeconds(0) +
                 cost_.per_dirent_seconds * static_cast<double>(names.size()));
  return names;
}

Status AfsServer::RpcLock(const std::string& client, const std::string& path) {
  ChargeRpc(0);
  auto [it, inserted] = locks_.try_emplace(path, client);
  if (!inserted && it->second != client) {
    return Error(ErrorCode::kConflict,
                 "lock on " + path + " held by " + it->second);
  }
  it->second = client;
  // Acquiring the lock revalidates the file: the client must re-fetch
  // before mutating (OpenAFS semantics — a lock implies fresh status).
  const auto cb = callbacks_.find(path);
  if (cb != callbacks_.end()) cb->second.erase(client);
  return Status::Ok();
}

Status AfsServer::RpcUnlock(const std::string& client, const std::string& path) {
  ChargeRpc(0);
  const auto it = locks_.find(path);
  if (it == locks_.end() || it->second != client) {
    return Error(ErrorCode::kConflict, "lock on " + path + " not held");
  }
  locks_.erase(it);
  return Status::Ok();
}

bool AfsServer::CallbackValid(const std::string& client,
                              const std::string& path) const {
  const auto it = callbacks_.find(path);
  return it != callbacks_.end() && it->second.contains(client);
}

Result<Bytes> AfsServer::AdversaryRead(const std::string& path) {
  return backend_->Get(path);
}

Status AfsServer::AdversaryWrite(const std::string& path, ByteSpan data) {
  return backend_->Put(path, data);
}

Status AfsServer::AdversarySwap(const std::string& a, const std::string& b) {
  NEXUS_ASSIGN_OR_RETURN(Bytes da, backend_->Get(a));
  NEXUS_ASSIGN_OR_RETURN(Bytes db, backend_->Get(b));
  NEXUS_RETURN_IF_ERROR(backend_->Put(a, db));
  return backend_->Put(b, da);
}

Result<Bytes> AfsServer::AdversarySnapshot(const std::string& path) {
  return backend_->Get(path);
}

Status AfsServer::AdversaryRollback(const std::string& path, ByteSpan snapshot) {
  return backend_->Put(path, snapshot);
}

void AfsServer::AdversaryInvalidateCallbacks(const std::string& path) {
  callbacks_.erase(path);
}

// ---- AfsClient --------------------------------------------------------------

AfsClient::AfsClient(AfsServer& server, std::string client_id)
    : server_(server), id_(std::move(client_id)) {}

Result<const AfsClient::CacheEntry*> AfsClient::FetchCached(
    const std::string& path) {
  const auto cached = cache_.find(path);
  if (cached != cache_.end() && server_.CallbackValid(id_, path)) {
    ++stats_.cache_hits;
    return &cached->second;
  }
  NEXUS_ASSIGN_OR_RETURN(AfsServer::FetchResult result,
                         server_.RpcFetch(id_, path));
  ++stats_.fetches;
  stats_.bytes_fetched += result.data.size();
  CacheEntry& entry = cache_[path];
  entry = CacheEntry{std::move(result.data), result.version};
  return &entry;
}

Result<AfsServer::FetchResult> AfsClient::FetchVersioned(const std::string& path) {
  NEXUS_ASSIGN_OR_RETURN(const CacheEntry* entry, FetchCached(path));
  return AfsServer::FetchResult{entry->data, entry->version};
}

Result<AfsClient::RangeResult> AfsClient::FetchRange(const std::string& path,
                                                     std::uint64_t offset,
                                                     std::uint64_t len) {
  // Whole-file caching (OpenAFS): the first range of an uncached object
  // pays one full fetch; every further range is a free local slice.
  NEXUS_ASSIGN_OR_RETURN(const CacheEntry* entry, FetchCached(path));
  RangeResult out;
  out.object_size = entry->data.size();
  out.version = entry->version;
  if (offset < entry->data.size()) {
    const std::uint64_t take =
        std::min<std::uint64_t>(len, entry->data.size() - offset);
    out.data.assign(
        entry->data.begin() + static_cast<std::ptrdiff_t>(offset),
        entry->data.begin() + static_cast<std::ptrdiff_t>(offset + take));
  }
  return out;
}

Result<Bytes> AfsClient::Fetch(const std::string& path) {
  NEXUS_ASSIGN_OR_RETURN(AfsServer::FetchResult result, FetchVersioned(path));
  return std::move(result.data);
}

std::vector<Result<Bytes>> AfsClient::FetchMany(
    const std::vector<std::string>& paths) {
  std::vector<Result<Bytes>> out(
      paths.size(), Result<Bytes>(Error(ErrorCode::kInternal, "unfetched")));
  std::vector<std::string> misses;
  std::vector<std::size_t> miss_slots;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const auto cached = cache_.find(paths[i]);
    if (cached != cache_.end() && server_.CallbackValid(id_, paths[i])) {
      ++stats_.cache_hits;
      out[i] = cached->second.data;
      continue;
    }
    misses.push_back(paths[i]);
    miss_slots.push_back(i);
  }
  if (misses.empty()) return out;
  std::vector<Result<AfsServer::FetchResult>> fetched =
      server_.RpcFetchMulti(id_, misses);
  for (std::size_t j = 0; j < misses.size(); ++j) {
    if (!fetched[j].ok()) {
      out[miss_slots[j]] = fetched[j].status();
      continue;
    }
    AfsServer::FetchResult result = std::move(fetched[j]).value();
    ++stats_.fetches;
    stats_.bytes_fetched += result.data.size();
    CacheEntry& entry = cache_[misses[j]];
    entry = CacheEntry{std::move(result.data), result.version};
    out[miss_slots[j]] = entry.data;
  }
  return out;
}

void AfsClient::Prefetch(const std::string& path) {
  const auto cached = cache_.find(path);
  if (cached != cache_.end() && server_.CallbackValid(id_, path)) return;
  server_.RpcPrefetchHint(id_, path);
}

Result<std::uint64_t> AfsClient::StoreVersioned(const std::string& path,
                                                ByteSpan data) {
  NEXUS_ASSIGN_OR_RETURN(std::uint64_t version, server_.RpcStore(id_, path, data));
  ++stats_.stores;
  stats_.bytes_stored += data.size();
  cache_[path] = CacheEntry{ToBytes(data), version};
  return version;
}

Status AfsClient::Store(const std::string& path, ByteSpan data) {
  NEXUS_ASSIGN_OR_RETURN(std::uint64_t version, StoreVersioned(path, data));
  (void)version;
  return Status::Ok();
}

Status AfsClient::StorePartial(const std::string& path, ByteSpan data,
                               std::uint64_t changed_bytes) {
  NEXUS_ASSIGN_OR_RETURN(
      std::uint64_t version,
      server_.RpcStorePartial(id_, path, data, changed_bytes));
  ++stats_.stores;
  stats_.bytes_stored += changed_bytes;
  cache_[path] = CacheEntry{ToBytes(data), version};
  return Status::Ok();
}

Result<std::uint64_t> AfsClient::StoreStreamBegin(const std::string& path,
                                                  std::uint64_t total_bytes) {
  NEXUS_ASSIGN_OR_RETURN(std::uint64_t handle,
                         server_.RpcStoreBegin(id_, path, total_bytes));
  PendingStream& pending = pending_streams_[handle];
  pending.path = path;
  pending.buffered.reserve(total_bytes);
  return handle;
}

Status AfsClient::StoreStreamSegment(std::uint64_t handle, ByteSpan segment) {
  const auto it = pending_streams_.find(handle);
  if (it == pending_streams_.end()) {
    return Error(ErrorCode::kInvalidArgument, "unknown store stream");
  }
  const Status result = server_.RpcStoreSegment(handle, segment);
  if (!result.ok()) {
    pending_streams_.erase(it);
    return result;
  }
  Append(it->second.buffered, segment);
  return Status::Ok();
}

Status AfsClient::StoreStreamCommit(std::uint64_t handle,
                                    std::uint64_t changed_bytes) {
  const auto it = pending_streams_.find(handle);
  if (it == pending_streams_.end()) {
    return Error(ErrorCode::kInvalidArgument, "unknown store stream");
  }
  PendingStream pending = std::move(it->second);
  pending_streams_.erase(it);
  NEXUS_ASSIGN_OR_RETURN(std::uint64_t version,
                         server_.RpcStoreCommit(handle));
  ++stats_.stores;
  stats_.bytes_stored += changed_bytes;
  cache_[pending.path] = CacheEntry{std::move(pending.buffered), version};
  return Status::Ok();
}

Status AfsClient::StoreStreamAbort(std::uint64_t handle) {
  pending_streams_.erase(handle);
  return server_.RpcStoreAbort(handle);
}

Result<AfsServer::StatResult> AfsClient::Stat(const std::string& path) {
  const auto cached = cache_.find(path);
  if (cached != cache_.end() && server_.CallbackValid(id_, path)) {
    ++stats_.cache_hits;
    return AfsServer::StatResult{true, cached->second.data.size()};
  }
  return server_.RpcStat(id_, path);
}

Result<std::vector<AfsServer::ChildEntry>> AfsClient::ListDir(
    const std::string& prefix) {
  return server_.RpcListDir(id_, prefix);
}

Status AfsClient::RenameObject(const std::string& from, const std::string& to) {
  cache_.erase(from);
  cache_.erase(to);
  return server_.RpcRename(id_, from, to);
}

bool AfsClient::CacheFresh(const std::string& path, std::uint64_t version) const {
  const auto cached = cache_.find(path);
  return cached != cache_.end() && cached->second.version == version &&
         server_.CallbackValid(id_, path);
}

Result<bool> AfsClient::Revalidate(const std::string& path,
                                   std::uint64_t version) {
  const auto cached = cache_.find(path);
  if (cached == cache_.end() || cached->second.version != version) {
    return false;
  }
  if (server_.CallbackValid(id_, path)) return true;
  if (!revalidation_enabled_) return false;
  auto server_version = server_.RpcGetVersion(id_, path);
  if (!server_version.ok() || *server_version != version) {
    // Stale (or deleted): drop the local copy so the next Fetch really
    // goes to the server — RpcGetVersion re-promised a callback for the
    // *current* server version, not for our stale bytes.
    cache_.erase(path);
    return false;
  }
  return true;
}

Status AfsClient::Remove(const std::string& path) {
  cache_.erase(path);
  return server_.RpcRemove(id_, path);
}

Result<bool> AfsClient::Exists(const std::string& path) {
  if (cache_.contains(path) && server_.CallbackValid(id_, path)) return true;
  return server_.RpcExists(id_, path);
}

Result<std::vector<std::string>> AfsClient::List(const std::string& prefix) {
  return server_.RpcList(id_, prefix);
}

Status AfsClient::Lock(const std::string& path) {
  return server_.RpcLock(id_, path);
}

Status AfsClient::Unlock(const std::string& path) {
  return server_.RpcUnlock(id_, path);
}

} // namespace nexus::storage
