#include "storage/afs.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace nexus::storage {

AfsServer::AfsServer(std::unique_ptr<StorageBackend> backend, SimClock& clock,
                     CostModel cost)
    : backend_(std::move(backend)), clock_(clock), cost_(cost) {}

void AfsServer::ChargeRpc(std::uint64_t payload_bytes) {
  ++rpc_count_;
  clock_.Advance(cost_.RpcSeconds(payload_bytes));
}

void AfsServer::BreakCallbacksExcept(const std::string& path,
                                     const std::string& keep) {
  auto it = callbacks_.find(path);
  if (it == callbacks_.end()) return;
  std::unordered_set<std::string> kept;
  if (it->second.contains(keep)) kept.insert(keep);
  it->second = std::move(kept);
}

Result<AfsServer::FetchResult> AfsServer::RpcFetch(const std::string& client,
                                                   const std::string& path) {
  auto data = backend_->Get(path);
  if (!data.ok()) {
    ChargeRpc(0);
    return data.status();
  }
  ChargeRpc(data->size());
  callbacks_[path].insert(client);
  return FetchResult{std::move(data).value(), versions_[path]};
}

Result<std::uint64_t> AfsServer::RpcStore(const std::string& client,
                                          const std::string& path,
                                          ByteSpan data) {
  ChargeRpc(data.size());
  NEXUS_RETURN_IF_ERROR(backend_->Put(path, data));
  const std::uint64_t version = ++versions_[path];
  BreakCallbacksExcept(path, client);
  callbacks_[path].insert(client);
  return version;
}

Result<std::uint64_t> AfsServer::RpcStorePartial(const std::string& client,
                                                 const std::string& path,
                                                 ByteSpan data,
                                                 std::uint64_t changed_bytes) {
  ChargeRpc(std::min<std::uint64_t>(changed_bytes, data.size()));
  NEXUS_RETURN_IF_ERROR(backend_->Put(path, data));
  const std::uint64_t version = ++versions_[path];
  BreakCallbacksExcept(path, client);
  callbacks_[path].insert(client);
  return version;
}

Result<AfsServer::StatResult> AfsServer::RpcStat(const std::string& client,
                                                 const std::string& path) {
  (void)client;
  ChargeRpc(0);
  if (!backend_->Exists(path)) return StatResult{false, 0};
  NEXUS_ASSIGN_OR_RETURN(Bytes data, backend_->Get(path));
  return StatResult{true, data.size()};
}

Result<std::uint64_t> AfsServer::RpcGetVersion(const std::string& client,
                                               const std::string& path) {
  ChargeRpc(0);
  if (!backend_->Exists(path)) {
    return Error(ErrorCode::kNotFound, "object not found: " + path);
  }
  callbacks_[path].insert(client);
  return versions_[path];
}

Result<std::vector<AfsServer::ChildEntry>> AfsServer::RpcListDir(
    const std::string& client, const std::string& prefix) {
  (void)client;
  std::vector<ChildEntry> out;
  for (const std::string& name : backend_->List(prefix)) {
    std::string child = name.substr(prefix.size());
    const std::size_t slash = child.find('/');
    const bool nested = slash != std::string::npos;
    if (nested) child.resize(slash);
    if (out.empty() || out.back().name != child) {
      out.push_back(ChildEntry{child, false, false});
    }
    if (nested) {
      out.back().has_children = true;
    } else {
      out.back().is_exact = true;
    }
  }
  ++rpc_count_;
  clock_.Advance(cost_.RpcSeconds(0) +
                 cost_.per_dirent_seconds * static_cast<double>(out.size()));
  return out;
}

Status AfsServer::RpcRename(const std::string& client, const std::string& from,
                            const std::string& to) {
  ChargeRpc(0);
  bool moved_any = false;
  // Exact object.
  if (backend_->Exists(from)) {
    NEXUS_ASSIGN_OR_RETURN(Bytes data, backend_->Get(from));
    NEXUS_RETURN_IF_ERROR(backend_->Put(to, data));
    NEXUS_RETURN_IF_ERROR(backend_->Delete(from));
    versions_[to] = ++versions_[from];
    versions_.erase(from);
    BreakCallbacksExcept(from, "");
    BreakCallbacksExcept(to, "");
    moved_any = true;
  }
  // Subtree (directory rename): server-side, no extra transfer cost.
  for (const std::string& name : backend_->List(from + "/")) {
    const std::string target = to + name.substr(from.size());
    NEXUS_ASSIGN_OR_RETURN(Bytes data, backend_->Get(name));
    NEXUS_RETURN_IF_ERROR(backend_->Put(target, data));
    NEXUS_RETURN_IF_ERROR(backend_->Delete(name));
    versions_[target] = ++versions_[name];
    versions_.erase(name);
    BreakCallbacksExcept(name, "");
    BreakCallbacksExcept(target, "");
    moved_any = true;
  }
  (void)client;
  if (!moved_any) {
    return Error(ErrorCode::kNotFound, "rename source missing: " + from);
  }
  return Status::Ok();
}

Status AfsServer::RpcRemove(const std::string& client, const std::string& path) {
  ChargeRpc(0);
  NEXUS_RETURN_IF_ERROR(backend_->Delete(path));
  versions_.erase(path);
  BreakCallbacksExcept(path, /*keep=*/"");
  (void)client;
  return Status::Ok();
}

Result<bool> AfsServer::RpcExists(const std::string& client,
                                  const std::string& path) {
  (void)client;
  ChargeRpc(0);
  return backend_->Exists(path);
}

Result<std::vector<std::string>> AfsServer::RpcList(const std::string& client,
                                                    const std::string& prefix) {
  (void)client;
  auto names = backend_->List(prefix);
  ++rpc_count_;
  clock_.Advance(cost_.RpcSeconds(0) +
                 cost_.per_dirent_seconds * static_cast<double>(names.size()));
  return names;
}

Status AfsServer::RpcLock(const std::string& client, const std::string& path) {
  ChargeRpc(0);
  auto [it, inserted] = locks_.try_emplace(path, client);
  if (!inserted && it->second != client) {
    return Error(ErrorCode::kConflict,
                 "lock on " + path + " held by " + it->second);
  }
  it->second = client;
  // Acquiring the lock revalidates the file: the client must re-fetch
  // before mutating (OpenAFS semantics — a lock implies fresh status).
  const auto cb = callbacks_.find(path);
  if (cb != callbacks_.end()) cb->second.erase(client);
  return Status::Ok();
}

Status AfsServer::RpcUnlock(const std::string& client, const std::string& path) {
  ChargeRpc(0);
  const auto it = locks_.find(path);
  if (it == locks_.end() || it->second != client) {
    return Error(ErrorCode::kConflict, "lock on " + path + " not held");
  }
  locks_.erase(it);
  return Status::Ok();
}

bool AfsServer::CallbackValid(const std::string& client,
                              const std::string& path) const {
  const auto it = callbacks_.find(path);
  return it != callbacks_.end() && it->second.contains(client);
}

Result<Bytes> AfsServer::AdversaryRead(const std::string& path) {
  return backend_->Get(path);
}

Status AfsServer::AdversaryWrite(const std::string& path, ByteSpan data) {
  return backend_->Put(path, data);
}

Status AfsServer::AdversarySwap(const std::string& a, const std::string& b) {
  NEXUS_ASSIGN_OR_RETURN(Bytes da, backend_->Get(a));
  NEXUS_ASSIGN_OR_RETURN(Bytes db, backend_->Get(b));
  NEXUS_RETURN_IF_ERROR(backend_->Put(a, db));
  return backend_->Put(b, da);
}

Result<Bytes> AfsServer::AdversarySnapshot(const std::string& path) {
  return backend_->Get(path);
}

Status AfsServer::AdversaryRollback(const std::string& path, ByteSpan snapshot) {
  return backend_->Put(path, snapshot);
}

void AfsServer::AdversaryInvalidateCallbacks(const std::string& path) {
  callbacks_.erase(path);
}

// ---- AfsClient --------------------------------------------------------------

AfsClient::AfsClient(AfsServer& server, std::string client_id)
    : server_(server), id_(std::move(client_id)) {}

Result<AfsServer::FetchResult> AfsClient::FetchVersioned(const std::string& path) {
  const auto cached = cache_.find(path);
  if (cached != cache_.end() && server_.CallbackValid(id_, path)) {
    ++stats_.cache_hits;
    return AfsServer::FetchResult{cached->second.data, cached->second.version};
  }
  NEXUS_ASSIGN_OR_RETURN(AfsServer::FetchResult result,
                         server_.RpcFetch(id_, path));
  ++stats_.fetches;
  stats_.bytes_fetched += result.data.size();
  cache_[path] = CacheEntry{result.data, result.version};
  return result;
}

Result<Bytes> AfsClient::Fetch(const std::string& path) {
  NEXUS_ASSIGN_OR_RETURN(AfsServer::FetchResult result, FetchVersioned(path));
  return std::move(result.data);
}

Result<std::uint64_t> AfsClient::StoreVersioned(const std::string& path,
                                                ByteSpan data) {
  NEXUS_ASSIGN_OR_RETURN(std::uint64_t version, server_.RpcStore(id_, path, data));
  ++stats_.stores;
  stats_.bytes_stored += data.size();
  cache_[path] = CacheEntry{ToBytes(data), version};
  return version;
}

Status AfsClient::Store(const std::string& path, ByteSpan data) {
  NEXUS_ASSIGN_OR_RETURN(std::uint64_t version, StoreVersioned(path, data));
  (void)version;
  return Status::Ok();
}

Status AfsClient::StorePartial(const std::string& path, ByteSpan data,
                               std::uint64_t changed_bytes) {
  NEXUS_ASSIGN_OR_RETURN(
      std::uint64_t version,
      server_.RpcStorePartial(id_, path, data, changed_bytes));
  ++stats_.stores;
  stats_.bytes_stored += changed_bytes;
  cache_[path] = CacheEntry{ToBytes(data), version};
  return Status::Ok();
}

Result<AfsServer::StatResult> AfsClient::Stat(const std::string& path) {
  const auto cached = cache_.find(path);
  if (cached != cache_.end() && server_.CallbackValid(id_, path)) {
    ++stats_.cache_hits;
    return AfsServer::StatResult{true, cached->second.data.size()};
  }
  return server_.RpcStat(id_, path);
}

Result<std::vector<AfsServer::ChildEntry>> AfsClient::ListDir(
    const std::string& prefix) {
  return server_.RpcListDir(id_, prefix);
}

Status AfsClient::RenameObject(const std::string& from, const std::string& to) {
  cache_.erase(from);
  cache_.erase(to);
  return server_.RpcRename(id_, from, to);
}

bool AfsClient::CacheFresh(const std::string& path, std::uint64_t version) const {
  const auto cached = cache_.find(path);
  return cached != cache_.end() && cached->second.version == version &&
         server_.CallbackValid(id_, path);
}

Result<bool> AfsClient::Revalidate(const std::string& path,
                                   std::uint64_t version) {
  const auto cached = cache_.find(path);
  if (cached == cache_.end() || cached->second.version != version) {
    return false;
  }
  if (server_.CallbackValid(id_, path)) return true;
  if (!revalidation_enabled_) return false;
  auto server_version = server_.RpcGetVersion(id_, path);
  if (!server_version.ok() || *server_version != version) {
    // Stale (or deleted): drop the local copy so the next Fetch really
    // goes to the server — RpcGetVersion re-promised a callback for the
    // *current* server version, not for our stale bytes.
    cache_.erase(path);
    return false;
  }
  return true;
}

Status AfsClient::Remove(const std::string& path) {
  cache_.erase(path);
  return server_.RpcRemove(id_, path);
}

Result<bool> AfsClient::Exists(const std::string& path) {
  if (cache_.contains(path) && server_.CallbackValid(id_, path)) return true;
  return server_.RpcExists(id_, path);
}

Result<std::vector<std::string>> AfsClient::List(const std::string& prefix) {
  return server_.RpcList(id_, prefix);
}

Status AfsClient::Lock(const std::string& path) {
  return server_.RpcLock(id_, path);
}

Status AfsClient::Unlock(const std::string& path) {
  return server_.RpcUnlock(id_, path);
}

} // namespace nexus::storage
