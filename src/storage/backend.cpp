#include "storage/backend.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "common/hex.hpp"

namespace nexus::storage {

// ---- MemBackend ------------------------------------------------------------

Result<Bytes> MemBackend::Get(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = objects_.find(name);
  if (it == objects_.end()) {
    return Error(ErrorCode::kNotFound, "object not found: " + name);
  }
  return it->second;
}

Status MemBackend::Put(const std::string& name, ByteSpan data) {
  Bytes copy = ToBytes(data);
  const std::lock_guard<std::mutex> lock(mu_);
  objects_[name] = std::move(copy);
  return Status::Ok();
}

Status MemBackend::Delete(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (objects_.erase(name) == 0) {
    return Error(ErrorCode::kNotFound, "object not found: " + name);
  }
  return Status::Ok();
}

bool MemBackend::Exists(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  return objects_.contains(name);
}

std::vector<std::string> MemBackend::List(const std::string& prefix) {
  std::vector<std::string> out;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, data] : objects_) {
      if (name.starts_with(prefix)) out.push_back(name);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t MemBackend::object_count() const noexcept {
  const std::lock_guard<std::mutex> lock(mu_);
  return objects_.size();
}

std::uint64_t MemBackend::total_bytes() const noexcept {
  const std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [name, data] : objects_) total += data.size();
  return total;
}

// ---- default (buffered) PutStream ------------------------------------------

namespace {

// Accumulates segments in memory and forwards one whole-object Put at
// commit; inherits Put's atomicity. Abort (or a completed Commit) kills
// the stream: any later Append/Commit fails instead of silently
// committing an empty or partial object.
class BufferedPutStream final : public StorageBackend::PutStream {
 public:
  BufferedPutStream(StorageBackend& backend, std::string name)
      : backend_(backend), name_(std::move(name)) {}

  Status Append(ByteSpan data) override {
    if (finished_) {
      return Error(ErrorCode::kInvalidArgument,
                   "append on finished stream: " + name_);
    }
    nexus::Append(buffered_, data);
    return Status::Ok();
  }
  Status Commit() override {
    if (finished_) {
      return Error(ErrorCode::kInvalidArgument,
                   "commit on finished stream: " + name_);
    }
    finished_ = true;
    return backend_.Put(name_, buffered_);
  }
  void Abort() override {
    finished_ = true;
    buffered_.clear();
  }

 private:
  StorageBackend& backend_;
  std::string name_;
  Bytes buffered_;
  bool finished_ = false;
};

} // namespace

Result<std::unique_ptr<StorageBackend::PutStream>> StorageBackend::OpenPutStream(
    const std::string& name) {
  return std::unique_ptr<PutStream>(new BufferedPutStream(*this, name));
}

StorageBackend::ListPage StorageBackend::ListSome(
    const std::string& prefix, const std::string& start_after,
    std::size_t limit) {
  ListPage page;
  if (limit == 0) return page;
  const std::vector<std::string> all = List(prefix);
  auto it = std::upper_bound(all.begin(), all.end(), start_after);
  while (it != all.end() && page.names.size() < limit) {
    page.names.push_back(*it++);
  }
  page.more = it != all.end();
  return page;
}

std::vector<Result<Bytes>> StorageBackend::MultiGet(
    const std::vector<std::string>& names) {
  std::vector<Result<Bytes>> results;
  results.reserve(names.size());
  for (const std::string& name : names) results.push_back(Get(name));
  return results;
}

std::vector<bool> StorageBackend::MultiExists(
    const std::vector<std::string>& names) {
  std::vector<bool> results;
  results.reserve(names.size());
  for (const std::string& name : names) results.push_back(Exists(name));
  return results;
}

// ---- DiskBackend -----------------------------------------------------------

// Escapes object names into flat, safe filenames: alphanumerics, '-', '_'
// and '.' pass through; everything else (incl. '/') becomes %XX. A LEADING
// dot is escaped too, so "." and ".." can never alias the directory
// entries and no object file ever starts with '.' (the ".%tmp-" namespace
// stays reserved for in-flight writes).
std::string EscapeName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                      (c == '.' && i > 0);
    if (safe) {
      out.push_back(c);
    } else {
      const auto b = static_cast<std::uint8_t>(c);
      out.push_back('%');
      out += HexEncode(ByteSpan(&b, 1));
    }
  }
  return out;
}

std::string UnescapeName(const std::string& file) {
  std::string out;
  out.reserve(file.size());
  for (std::size_t i = 0; i < file.size(); ++i) {
    // A "%XX" escape occupies indices [i, i+2]; it fits (including one at
    // the very end of the name) exactly when i + 3 <= size. Anything that
    // is not a well-formed escape passes through verbatim.
    const bool escape_fits = file[i] == '%' && i + 3 <= file.size();
    if (escape_fits) {
      const auto decoded = HexDecode(file.substr(i + 1, 2));
      if (decoded.ok() && decoded.value().size() == 1) {
        out.push_back(static_cast<char>(decoded.value()[0]));
        i += 2;
        continue;
      }
    }
    out.push_back(file[i]);
  }
  return out;
}

Result<DiskBackend> DiskBackend::Open(const std::string& root) {
  std::error_code ec;
  std::filesystem::create_directories(root, ec);
  if (ec) {
    return Error(ErrorCode::kIOError,
                 "cannot create backend root: " + ec.message());
  }
  return DiskBackend(root);
}

std::string DiskBackend::PathFor(const std::string& name) const {
  return root_ + "/" + EscapeName(name);
}

std::string DiskBackend::TempPathFor(const std::string& name) {
  // The sequence number keeps concurrent writers of the SAME name on
  // distinct temp files; the final rename stays last-writer-wins. The
  // ".%tmp-" prefix cannot collide with any escaped object name:
  // EscapeName only emits '%' followed by two hex digits.
  const std::uint64_t seq = temp_seq_.fetch_add(1, std::memory_order_relaxed);
  return root_ + "/.%tmp-" + std::to_string(seq) + "-" + EscapeName(name);
}

Result<Bytes> DiskBackend::Get(const std::string& name) {
  std::ifstream in(PathFor(name), std::ios::binary);
  if (!in) return Error(ErrorCode::kNotFound, "object not found: " + name);
  Bytes data((std::istreambuf_iterator<char>(in)),
             std::istreambuf_iterator<char>());
  if (in.bad()) return Error(ErrorCode::kIOError, "read failed: " + name);
  return data;
}

Status DiskBackend::Put(const std::string& name, ByteSpan data) {
  // Write-to-temp + rename so a host crash mid-Put can never leave a
  // truncated object under the final name — readers see the old bytes or
  // the new bytes, nothing in between.
  const std::string final_path = PathFor(name);
  const std::string tmp_path = TempPathFor(name);
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Error(ErrorCode::kIOError, "cannot open for write: " + name);
    }
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
    out.flush();
    if (!out) {
      std::error_code ec;
      std::filesystem::remove(tmp_path, ec);
      return Error(ErrorCode::kIOError, "write failed: " + name);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path, final_path, ec); // atomic: same directory
  if (ec) {
    std::error_code rm;
    std::filesystem::remove(tmp_path, rm);
    return Error(ErrorCode::kIOError,
                 "rename failed: " + name + ": " + ec.message());
  }
  return Status::Ok();
}

namespace {

// Spills segments to the same ".%tmp-" file Put uses and publishes it with
// one rename at Commit. A crash (or Abort) at any point leaves only the
// temp file, which List hides and the next Put of the same name truncates.
class DiskPutStream final : public StorageBackend::PutStream {
 public:
  DiskPutStream(std::string tmp_path, std::string final_path)
      : tmp_path_(std::move(tmp_path)), final_path_(std::move(final_path)),
        out_(tmp_path_, std::ios::binary | std::ios::trunc) {}

  ~DiskPutStream() override {
    if (!finished_) Abort();
  }

  Status Append(ByteSpan data) override {
    if (finished_) {
      return Error(ErrorCode::kInvalidArgument,
                   "append on finished stream: " + final_path_);
    }
    if (!out_) {
      return Error(ErrorCode::kIOError, "stream not writable: " + final_path_);
    }
    out_.write(reinterpret_cast<const char*>(data.data()),
               static_cast<std::streamsize>(data.size()));
    if (!out_) return Error(ErrorCode::kIOError, "write failed: " + final_path_);
    return Status::Ok();
  }

  Status Commit() override {
    if (finished_) {
      return Error(ErrorCode::kInvalidArgument,
                   "commit on finished stream: " + final_path_);
    }
    out_.flush();
    const bool write_ok = static_cast<bool>(out_);
    out_.close();
    if (!write_ok) {
      Abort();
      return Error(ErrorCode::kIOError, "flush failed: " + final_path_);
    }
    finished_ = true;
    std::error_code ec;
    std::filesystem::rename(tmp_path_, final_path_, ec); // atomic: same dir
    if (ec) {
      std::error_code rm;
      std::filesystem::remove(tmp_path_, rm);
      return Error(ErrorCode::kIOError,
                   "rename failed: " + final_path_ + ": " + ec.message());
    }
    return Status::Ok();
  }

  void Abort() override {
    if (finished_) return;
    finished_ = true;
    out_.close();
    std::error_code ec;
    std::filesystem::remove(tmp_path_, ec);
  }

 private:
  std::string tmp_path_;
  std::string final_path_;
  std::ofstream out_;
  bool finished_ = false;
};

} // namespace

Result<std::unique_ptr<StorageBackend::PutStream>> DiskBackend::OpenPutStream(
    const std::string& name) {
  auto stream =
      std::make_unique<DiskPutStream>(TempPathFor(name), PathFor(name));
  return std::unique_ptr<PutStream>(std::move(stream));
}

Status DiskBackend::Delete(const std::string& name) {
  std::error_code ec;
  if (!std::filesystem::remove(PathFor(name), ec) || ec) {
    return Error(ErrorCode::kNotFound, "object not found: " + name);
  }
  return Status::Ok();
}

bool DiskBackend::Exists(const std::string& name) {
  std::error_code ec;
  return std::filesystem::exists(PathFor(name), ec);
}

std::vector<std::string> DiskBackend::List(const std::string& prefix) {
  // The store directory is not exclusively ours: crashed Puts leave
  // ".%tmp-" files, the client cache's disk tier keeps dot-prefixed
  // metadata beside a DiskBackend-backed store, and operators drop stray
  // files and directories in by hand. Anything that is not a regular file
  // holding a canonically escaped object name is skipped, never an error.
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(root_, ec)) {
    std::error_code stat_ec;
    if (!entry.is_regular_file(stat_ec) || stat_ec) continue;
    const std::string file = entry.path().filename().string();
    if (file.empty() || file.front() == '.') continue; // temp/cache/hidden
    const std::string name = UnescapeName(file);
    // A file EscapeName could not have produced (bad escapes, characters a
    // writer would have escaped) is foreign — listing it would fabricate an
    // object name Get() can't serve.
    if (EscapeName(name) != file) continue;
    if (name.starts_with(prefix)) out.push_back(name);
  }
  std::sort(out.begin(), out.end());
  return out;
}

} // namespace nexus::storage
