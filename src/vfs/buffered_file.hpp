// Shared open-file implementation: a local whole-file buffer with dirty
// extent tracking, flushed through a mount-specific callback. Models AFS
// open-to-close semantics for both the baseline and NEXUS mounts.
#pragma once

#include <functional>

#include "vfs/vfs.hpp"

namespace nexus::vfs {

class BufferedFile final : public OpenFile {
 public:
  /// Flush callback: (full content, dirty_offset, dirty_len). dirty_len ==
  /// content.size() with dirty_offset == 0 means "assume everything
  /// changed".
  using FlushFn =
      std::function<Status(ByteSpan, std::uint64_t, std::uint64_t)>;

  BufferedFile(Bytes initial_content, FlushFn flush, bool created)
      : buffer_(std::move(initial_content)),
        flush_(std::move(flush)),
        // Freshly created (or truncated) files must flush even when empty
        // so the object appears on the storage service.
        dirty_(created) {}

  ~BufferedFile() override {
    // Last-resort flush, mirroring close() on process exit. Errors are
    // swallowed here; call Close() to observe them.
    if (!closed_) (void)Close();
  }

  Result<std::size_t> Read(std::uint64_t offset, MutableByteSpan out) override {
    NEXUS_RETURN_IF_ERROR(CheckOpen());
    if (offset >= buffer_.size()) return std::size_t{0};
    const std::size_t n =
        std::min<std::size_t>(out.size(), buffer_.size() - offset);
    std::copy_n(buffer_.begin() + static_cast<std::ptrdiff_t>(offset), n,
                out.begin());
    return n;
  }

  Status Write(std::uint64_t offset, ByteSpan data) override {
    NEXUS_RETURN_IF_ERROR(CheckOpen());
    if (offset + data.size() > buffer_.size()) {
      buffer_.resize(offset + data.size());
    }
    std::copy(data.begin(), data.end(),
              buffer_.begin() + static_cast<std::ptrdiff_t>(offset));
    MarkDirty(offset, data.size());
    return Status::Ok();
  }

  Status Append(ByteSpan data) override { return Write(buffer_.size(), data); }

  Status Truncate(std::uint64_t new_size) override {
    NEXUS_RETURN_IF_ERROR(CheckOpen());
    if (new_size == buffer_.size()) return Status::Ok();
    buffer_.resize(new_size);
    MarkDirty(new_size, 0); // size change alone dirties the tail chunk
    dirty_ = true;
    return Status::Ok();
  }

  [[nodiscard]] std::uint64_t Size() const override { return buffer_.size(); }

  Status Sync() override {
    NEXUS_RETURN_IF_ERROR(CheckOpen());
    if (!dirty_) return Status::Ok();
    const std::uint64_t len = dirty_end_ > dirty_begin_ ? dirty_end_ - dirty_begin_
                                                        : 0;
    NEXUS_RETURN_IF_ERROR(flush_(buffer_, dirty_begin_, len));
    dirty_ = false;
    dirty_begin_ = 0;
    dirty_end_ = 0;
    return Status::Ok();
  }

  Status Close() override {
    if (closed_) return Error(ErrorCode::kInvalidArgument, "already closed");
    const Status s = dirty_ ? Sync() : Status::Ok();
    closed_ = true;
    return s;
  }

 private:
  Status CheckOpen() const {
    if (closed_) return Error(ErrorCode::kInvalidArgument, "file is closed");
    return Status::Ok();
  }

  void MarkDirty(std::uint64_t offset, std::uint64_t len) {
    if (!dirty_ || dirty_end_ == 0) {
      dirty_begin_ = offset;
      dirty_end_ = offset + len;
    } else {
      dirty_begin_ = std::min(dirty_begin_, offset);
      dirty_end_ = std::max(dirty_end_, offset + len);
    }
    dirty_ = true;
  }

  Bytes buffer_;
  FlushFn flush_;
  bool dirty_ = false;
  bool closed_ = false;
  std::uint64_t dirty_begin_ = 0;
  std::uint64_t dirty_end_ = 0;
};

} // namespace nexus::vfs
