#include "vfs/afs_passthrough_fs.hpp"

#include "vfs/buffered_file.hpp"

namespace nexus::vfs {
namespace {

// AFS ships dirty data at cache-chunk granularity.
constexpr std::uint64_t kAfsChunkSize = 1 << 20;

std::uint64_t RoundToChunks(std::uint64_t begin, std::uint64_t len,
                            std::uint64_t file_size) {
  if (len == 0) return std::min(kAfsChunkSize, file_size);
  const std::uint64_t first = begin / kAfsChunkSize;
  const std::uint64_t last = (begin + len - 1) / kAfsChunkSize;
  const std::uint64_t span = (last - first + 1) * kAfsChunkSize;
  return std::min(span, file_size);
}

} // namespace

Result<std::unique_ptr<OpenFile>> AfsPassthroughFs::Open(const std::string& path,
                                                         OpenMode mode) {
  const std::string obj = FilePath(path);
  Bytes content;
  bool created = false;
  if (mode == OpenMode::kRead) {
    NEXUS_ASSIGN_OR_RETURN(content, afs_.Fetch(obj));
  } else {
    NEXUS_ASSIGN_OR_RETURN(bool exists, afs_.Exists(obj));
    if (exists && mode == OpenMode::kReadWrite) {
      NEXUS_ASSIGN_OR_RETURN(content, afs_.Fetch(obj));
    } else {
      created = true; // new file, or truncation of an existing one
    }
  }

  auto flush = [this, obj](ByteSpan full, std::uint64_t dirty_offset,
                           std::uint64_t dirty_len) -> Status {
    const std::uint64_t changed =
        RoundToChunks(dirty_offset, dirty_len, full.size());
    if (changed >= full.size()) return afs_.Store(obj, full);
    return afs_.StorePartial(obj, full, changed);
  };
  return std::unique_ptr<OpenFile>(
      std::make_unique<BufferedFile>(std::move(content), flush, created));
}

Status AfsPassthroughFs::Mkdir(const std::string& path) {
  if (afs_.Exists(DirMark(path)).ok() && afs_.Exists(DirMark(path)).value()) {
    return Error(ErrorCode::kAlreadyExists, "directory exists: " + path);
  }
  return afs_.Store(DirMark(path), {});
}

Status AfsPassthroughFs::Remove(const std::string& path) {
  NEXUS_ASSIGN_OR_RETURN(bool is_file, afs_.Exists(FilePath(path)));
  if (is_file) return afs_.Remove(FilePath(path));

  NEXUS_ASSIGN_OR_RETURN(bool is_dir, afs_.Exists(DirMark(path)));
  if (is_dir) {
    NEXUS_ASSIGN_OR_RETURN(auto children, afs_.ListDir(FilePath(path) + "/"));
    for (const auto& c : children) {
      if (c.name != ".dirmark") {
        return Error(ErrorCode::kInvalidArgument, "directory not empty: " + path);
      }
    }
    return afs_.Remove(DirMark(path));
  }

  NEXUS_ASSIGN_OR_RETURN(bool is_sym, afs_.Exists(SymPath(path)));
  if (is_sym) return afs_.Remove(SymPath(path));
  return Error(ErrorCode::kNotFound, "no such entry: " + path);
}

Result<std::vector<Dirent>> AfsPassthroughFs::ReadDir(const std::string& path) {
  const std::string prefix =
      path.empty() ? std::string("afs/") : FilePath(path) + "/";
  if (!path.empty()) {
    NEXUS_ASSIGN_OR_RETURN(bool is_dir, afs_.Exists(DirMark(path)));
    if (!is_dir) return Error(ErrorCode::kNotFound, "no such directory: " + path);
  }
  NEXUS_ASSIGN_OR_RETURN(auto children, afs_.ListDir(prefix));
  std::vector<Dirent> out;
  out.reserve(children.size());
  for (const auto& c : children) {
    if (c.name == ".dirmark") continue;
    out.push_back(Dirent{
        c.name, c.has_children ? FileType::kDirectory : FileType::kFile});
  }
  // Symlinks live in a parallel namespace.
  const std::string sym_prefix =
      path.empty() ? std::string("afssym/") : SymPath(path) + "/";
  NEXUS_ASSIGN_OR_RETURN(auto sym_children, afs_.ListDir(sym_prefix));
  for (const auto& c : sym_children) {
    if (!c.is_exact) continue;
    out.push_back(Dirent{c.name, FileType::kSymlink});
  }
  return out;
}

Result<FileStat> AfsPassthroughFs::Stat(const std::string& path) {
  if (path.empty()) return FileStat{FileType::kDirectory, 0}; // the root
  NEXUS_ASSIGN_OR_RETURN(storage::AfsServer::StatResult st,
                         afs_.Stat(FilePath(path)));
  if (st.exists) return FileStat{FileType::kFile, st.size};
  NEXUS_ASSIGN_OR_RETURN(bool is_dir, afs_.Exists(DirMark(path)));
  if (is_dir) return FileStat{FileType::kDirectory, 0};
  NEXUS_ASSIGN_OR_RETURN(storage::AfsServer::StatResult sym,
                         afs_.Stat(SymPath(path)));
  if (sym.exists) return FileStat{FileType::kSymlink, sym.size};
  return Error(ErrorCode::kNotFound, "no such entry: " + path);
}

Status AfsPassthroughFs::Rename(const std::string& from, const std::string& to) {
  // One server-side RPC moves the object and (for directories) its subtree.
  const Status primary = afs_.RenameObject(FilePath(from), FilePath(to));
  if (primary.ok()) return primary;
  if (primary.code() != ErrorCode::kNotFound) return primary;
  // Pure symlink rename.
  return afs_.RenameObject(SymPath(from), SymPath(to));
}

Status AfsPassthroughFs::Symlink(const std::string& target,
                                 const std::string& linkpath) {
  NEXUS_ASSIGN_OR_RETURN(bool exists, afs_.Exists(SymPath(linkpath)));
  if (exists) {
    return Error(ErrorCode::kAlreadyExists, "symlink exists: " + linkpath);
  }
  return afs_.Store(SymPath(linkpath), AsBytes(target));
}

Result<std::string> AfsPassthroughFs::Readlink(const std::string& path) {
  NEXUS_ASSIGN_OR_RETURN(Bytes target, afs_.Fetch(SymPath(path)));
  return ToString(target);
}

} // namespace nexus::vfs
