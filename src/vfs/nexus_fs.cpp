#include "vfs/nexus_fs.hpp"

#include "vfs/buffered_file.hpp"

namespace nexus::vfs {
namespace {

FileType TypeOf(enclave::EntryType t) {
  switch (t) {
    case enclave::EntryType::kFile: return FileType::kFile;
    case enclave::EntryType::kDirectory: return FileType::kDirectory;
    case enclave::EntryType::kSymlink: return FileType::kSymlink;
  }
  return FileType::kFile;
}

} // namespace

Result<std::unique_ptr<OpenFile>> NexusFs::Open(const std::string& path,
                                                OpenMode mode) {
  Bytes content;
  bool created = false;
  auto attrs = client_.Lookup(path);
  if (attrs.ok() && attrs->type != enclave::EntryType::kFile) {
    return Error(ErrorCode::kInvalidArgument, "not a file: " + path);
  }
  if (mode == OpenMode::kRead) {
    NEXUS_ASSIGN_OR_RETURN(content, client_.ReadFile(path));
  } else {
    if (!attrs.ok()) {
      if (attrs.status().code() != ErrorCode::kNotFound) return attrs.status();
      NEXUS_RETURN_IF_ERROR(client_.Touch(path));
      created = true;
    } else if (mode == OpenMode::kReadWrite) {
      NEXUS_ASSIGN_OR_RETURN(content, client_.ReadFile(path));
    } else {
      created = attrs->size != 0; // truncate counts as a content change
    }
  }

  auto flush = [this, path](ByteSpan full, std::uint64_t dirty_offset,
                            std::uint64_t dirty_len) -> Status {
    return client_.WriteFileRange(path, full, dirty_offset, dirty_len);
  };
  return std::unique_ptr<OpenFile>(
      std::make_unique<BufferedFile>(std::move(content), flush, created));
}

Status NexusFs::Mkdir(const std::string& path) { return client_.Mkdir(path); }

Status NexusFs::Remove(const std::string& path) { return client_.Remove(path); }

Result<std::vector<Dirent>> NexusFs::ReadDir(const std::string& path) {
  NEXUS_ASSIGN_OR_RETURN(std::vector<enclave::DirEntry> entries,
                         client_.ListDir(path));
  std::vector<Dirent> out;
  out.reserve(entries.size());
  for (const auto& e : entries) {
    out.push_back(Dirent{e.name, TypeOf(e.type)});
  }
  return out;
}

Result<FileStat> NexusFs::Stat(const std::string& path) {
  NEXUS_ASSIGN_OR_RETURN(enclave::Attributes attrs, client_.Lookup(path));
  return FileStat{TypeOf(attrs.type), attrs.size};
}

Status NexusFs::Rename(const std::string& from, const std::string& to) {
  return client_.Rename(from, to);
}

Status NexusFs::Symlink(const std::string& target, const std::string& linkpath) {
  return client_.Symlink(target, linkpath);
}

Result<std::string> NexusFs::Readlink(const std::string& path) {
  return client_.Readlink(path);
}

} // namespace nexus::vfs
