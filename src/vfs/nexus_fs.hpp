// The NEXUS mount: the VFS interface backed by a NexusClient (and thus by
// the enclave + AFS). This is the layer unmodified "applications" (our
// workload implementations) run against — the paper's userspace daemon.
#pragma once

#include "core/nexus_client.hpp"
#include "vfs/vfs.hpp"

namespace nexus::vfs {

class NexusFs final : public FileSystem {
 public:
  /// The client must have a mounted volume.
  explicit NexusFs(core::NexusClient& client) : client_(client) {}

  Result<std::unique_ptr<OpenFile>> Open(const std::string& path,
                                         OpenMode mode) override;
  Status Mkdir(const std::string& path) override;
  Status Remove(const std::string& path) override;
  Result<std::vector<Dirent>> ReadDir(const std::string& path) override;
  Result<FileStat> Stat(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Symlink(const std::string& target, const std::string& linkpath) override;
  Result<std::string> Readlink(const std::string& path) override;
  Status BeginBatch() override { return client_.BeginBatch(); }
  Status CommitBatch() override { return client_.CommitBatch(); }

 private:
  core::NexusClient& client_;
};

} // namespace nexus::vfs
