#include "vfs/vfs.hpp"

namespace nexus::vfs {

Status FileSystem::WriteWholeFile(const std::string& path, ByteSpan content) {
  NEXUS_ASSIGN_OR_RETURN(std::unique_ptr<OpenFile> file,
                         Open(path, OpenMode::kWrite));
  NEXUS_RETURN_IF_ERROR(file->Write(0, content));
  return file->Close();
}

Result<Bytes> FileSystem::ReadWholeFile(const std::string& path) {
  NEXUS_ASSIGN_OR_RETURN(std::unique_ptr<OpenFile> file,
                         Open(path, OpenMode::kRead));
  Bytes out(file->Size());
  NEXUS_ASSIGN_OR_RETURN(std::size_t n, file->Read(0, out));
  out.resize(n);
  NEXUS_RETURN_IF_ERROR(file->Close());
  return out;
}

Status FileSystem::MkdirAll(const std::string& path) {
  std::string partial;
  std::size_t start = 0;
  while (start <= path.size()) {
    std::size_t end = path.find('/', start);
    if (end == std::string::npos) end = path.size();
    const std::string part = path.substr(start, end - start);
    start = end + 1;
    if (part.empty()) continue;
    partial = partial.empty() ? part : partial + "/" + part;
    auto st = Stat(partial);
    if (st.ok() && st->type == FileType::kDirectory) continue;
    if (st.ok()) {
      return Error(ErrorCode::kAlreadyExists, partial + " exists, not a dir");
    }
    NEXUS_RETURN_IF_ERROR(Mkdir(partial));
  }
  return Status::Ok();
}

bool FileSystem::Exists(const std::string& path) { return Stat(path).ok(); }

} // namespace nexus::vfs
