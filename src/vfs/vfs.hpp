// The POSIX-like VFS interface every workload and benchmark runs against.
//
// Two interchangeable mounts implement it:
//   * AfsPassthroughFs — bare AFS (the paper's unmodified-OpenAFS baseline),
//   * NexusFs          — NEXUS stacked on the same AFS deployment.
// Workloads therefore issue *identical* operation streams to both systems,
// so measured differences are exactly the NEXUS overhead (§VII).
//
// File handles follow AFS open-to-close semantics: content is buffered
// locally; Sync() flushes dirty bytes (fsync), Close() flushes the rest.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"

namespace nexus::vfs {

enum class FileType : std::uint8_t { kFile, kDirectory, kSymlink };

struct Dirent {
  std::string name;
  FileType type = FileType::kFile;
};

struct FileStat {
  FileType type = FileType::kFile;
  std::uint64_t size = 0;
};

enum class OpenMode {
  kRead,     // must exist
  kWrite,    // create or truncate
  kReadWrite // create if missing, keep contents
};

class FileSystem;

/// An open file: a local whole-file buffer (AFS-style) with dirty-range
/// tracking so Sync() ships only changed chunks.
class OpenFile {
 public:
  virtual ~OpenFile() = default;

  /// Reads up to out.size() bytes at `offset`; returns bytes read.
  virtual Result<std::size_t> Read(std::uint64_t offset, MutableByteSpan out) = 0;
  /// Writes at `offset`, extending the file as needed.
  virtual Status Write(std::uint64_t offset, ByteSpan data) = 0;
  virtual Status Append(ByteSpan data) = 0;
  virtual Status Truncate(std::uint64_t new_size) = 0;
  [[nodiscard]] virtual std::uint64_t Size() const = 0;
  /// fsync: pushes dirty bytes to the storage service now.
  virtual Status Sync() = 0;
  /// Flushes (if dirty) and invalidates the handle.
  virtual Status Close() = 0;
};

class FileSystem {
 public:
  virtual ~FileSystem() = default;

  virtual Result<std::unique_ptr<OpenFile>> Open(const std::string& path,
                                                 OpenMode mode) = 0;
  virtual Status Mkdir(const std::string& path) = 0;
  virtual Status Remove(const std::string& path) = 0; // file/empty dir/symlink
  virtual Result<std::vector<Dirent>> ReadDir(const std::string& path) = 0;
  virtual Result<FileStat> Stat(const std::string& path) = 0;
  virtual Status Rename(const std::string& from, const std::string& to) = 0;
  virtual Status Symlink(const std::string& target, const std::string& linkpath) = 0;
  virtual Result<std::string> Readlink(const std::string& path) = 0;

  // ---- group commit ---------------------------------------------------------
  // Mounts with a write-ahead journal can batch the metadata effects of
  // many operations into one commit. The base implementation is a no-op so
  // workloads can bracket phases unconditionally; the baseline passthrough
  // mount simply ignores the hints.
  virtual Status BeginBatch() { return Status::Ok(); }
  virtual Status CommitBatch() { return Status::Ok(); }

  // ---- whole-file conveniences (open/transfer/close) ----------------------
  Status WriteWholeFile(const std::string& path, ByteSpan content);
  Result<Bytes> ReadWholeFile(const std::string& path);
  /// mkdir -p
  Status MkdirAll(const std::string& path);
  [[nodiscard]] bool Exists(const std::string& path);
};

} // namespace nexus::vfs
