// The baseline mount: the VFS interface directly on the AFS client, with
// no NEXUS layer. This is the evaluation's "unmodified OpenAFS".
//
// Layout on the storage service (all plaintext — the baseline provides no
// confidentiality):
//   afs/<path>           file content
//   afs/<path>/.dirmark  directory marker
//   afssym/<path>        symlink target
//
// Simplification (documented): Stat() reports symlinks as files unless the
// caller uses Readlink; GNU-utility workloads in the evaluation do not
// depend on baseline symlink stat semantics.
#pragma once

#include "storage/afs.hpp"
#include "vfs/vfs.hpp"

namespace nexus::vfs {

class AfsPassthroughFs final : public FileSystem {
 public:
  explicit AfsPassthroughFs(storage::AfsClient& afs) : afs_(afs) {}

  Result<std::unique_ptr<OpenFile>> Open(const std::string& path,
                                         OpenMode mode) override;
  Status Mkdir(const std::string& path) override;
  Status Remove(const std::string& path) override;
  Result<std::vector<Dirent>> ReadDir(const std::string& path) override;
  Result<FileStat> Stat(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Symlink(const std::string& target, const std::string& linkpath) override;
  Result<std::string> Readlink(const std::string& path) override;

 private:
  [[nodiscard]] std::string FilePath(const std::string& path) const {
    return "afs/" + path;
  }
  [[nodiscard]] std::string DirMark(const std::string& path) const {
    return path.empty() ? "afs/.dirmark" : "afs/" + path + "/.dirmark";
  }
  [[nodiscard]] std::string SymPath(const std::string& path) const {
    return "afssym/" + path;
  }

  storage::AfsClient& afs_;
};

} // namespace nexus::vfs
