// Core enclave implementation: lifecycle, metadata caching, traversal and
// the Table I filesystem operations. Authentication, administration and the
// key-exchange protocol live in nexus_enclave_sharing.cpp.
#include "enclave/nexus_enclave.hpp"

#include <algorithm>
#include <cstdlib>
#include <thread>

#include "common/clock.hpp"
#include "trace/trace.hpp"
#include "common/serial.hpp"
#include "crypto/aes.hpp"
#include "crypto/aesni.hpp"
#include "crypto/gcm.hpp"
#include "crypto/sha256.hpp"
#include "crypto/x25519.hpp"

namespace nexus::enclave {

namespace {

// AAD binding a data chunk to its file and position, so ciphertext cannot
// be transplanted across files or shuffled within one. Lengths/truncation
// are enforced by the (authenticated) filenode's size and chunk table, and
// every content update re-keys the touched chunks, so a stale data object
// fails their tags. Deliberately excludes the file size: surviving chunks
// must stay decryptable across partial updates that change the size.
Bytes ChunkAad(const Uuid& file_uuid, std::uint32_t index) {
  Writer w;
  w.Id(file_uuid);
  w.U32(index);
  return std::move(w).Take();
}

// Crypto worker count: NEXUS_CRYPTO_WORKERS env override (0 = serial),
// default min(4, hardware threads). The paper's enclave runs on desktop
// SGX parts with 4 hyperthreads; more workers than that only adds queue
// contention for the 1 MiB-granular tasks.
std::size_t DefaultCryptoWorkers() {
  if (const char* env = std::getenv("NEXUS_CRYPTO_WORKERS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v <= 64) {
      return static_cast<std::size_t>(v);
    }
  }
  const std::size_t hw = std::thread::hardware_concurrency();
  return std::min<std::size_t>(4, hw == 0 ? 1 : hw);
}

} // namespace

NexusEnclave::NexusEnclave(sgx::EnclaveRuntime& runtime, StorageOcalls& storage,
                           const ByteArray<32>& intel_root_public_key)
    : runtime_(runtime),
      storage_(storage),
      intel_root_public_key_(intel_root_public_key),
      crypto_workers_(DefaultCryptoWorkers()) {
  // Enclave ECDH identity (key-exchange "Setup", §IV-B1). Generated fresh;
  // persisted across restarts via EcallSealIdentityKey.
  ecdh_private_ = crypto::X25519ClampScalar(runtime_.rng().Array<32>());
  ecdh_public_ = crypto::X25519BasePoint(ecdh_private_);
}

// ---- parallel chunk-crypto engine -------------------------------------------

Status NexusEnclave::EcallSetCryptoWorkers(std::size_t workers) {
  if (workers > 64) {
    return Error(ErrorCode::kInvalidArgument, "too many crypto workers");
  }
  if (workers != crypto_workers_) {
    pool_.reset(); // joins the old workers before the count changes
    crypto_workers_ = workers;
  }
  return Status::Ok();
}

parallel::ThreadPool* NexusEnclave::EnsurePool() {
  if (crypto_workers_ == 0) return nullptr;
  if (pool_ == nullptr) {
    // Resolve the AES-NI dispatch decision (a magic static guarding a
    // self-test KAT) and warm the AES key-schedule path on this thread,
    // so no worker ever races the one-time initialisation.
    (void)crypto::HasAesHardware();
    const ByteArray<16> warm_key{};
    if (auto aes = crypto::Aes::Create(warm_key); aes.ok()) {
      std::uint8_t block[16] = {};
      aes->EncryptBlock(block, block);
    }
    pool_ = std::make_unique<parallel::ThreadPool>(crypto_workers_);
  }
  return pool_.get();
}

void NexusEnclave::RecordParallelBatch(const parallel::TaskGroup& group,
                                       double batch_wall_seconds) {
  // The batch already ran; record it as a completed span ending now.
  if (trace::Enabled() && batch_wall_seconds > 0) {
    const auto wall_ns =
        static_cast<std::uint64_t>(batch_wall_seconds * 1e9 + 0.5);
    const std::uint64_t now = MonotonicNanos();
    trace::CompleteSpan("parallel:batch", "parallel",
                        now > wall_ns ? now - wall_ns : 0, wall_ns);
  }
  ++parallel_stats_.parallel_batches;
  parallel_stats_.worker_busy_seconds += group.busy_seconds();
  parallel_stats_.critical_path_seconds += group.critical_path_seconds();
  if (pool_ != nullptr) {
    // Modeled multi-core scaling: on a host with fewer cores than workers
    // the batch's wall time degenerates to the serial sum, but the
    // critical path (max per-worker CPU seconds) is what an unloaded
    // N-core machine would measure. The surplus is drained by the client
    // profiler from the measured ecall wall time. On a real N-core host
    // wall ≈ critical path and the surplus is ~0 — no double counting.
    const double saved = batch_wall_seconds - group.critical_path_seconds();
    if (saved > 0) {
      parallel_stats_.saved_seconds += saved;
      pending_saved_seconds_ += saved;
    }
    const parallel::PoolStats ps = pool_->stats();
    parallel_stats_.tasks_stolen = ps.tasks_stolen;
    parallel_stats_.peak_queue_depth =
        std::max(parallel_stats_.peak_queue_depth, ps.peak_queue_depth);
  }
}

// ---- ocall wrappers ---------------------------------------------------------
// When a journal session is engaged, metadata stores/removes are deferred
// into the pending transaction instead of crossing the enclave boundary;
// fetches are answered from the transaction buffers first so the enclave
// reads its own uncommitted writes. Bulk data and locks always pass through.

namespace {
// storage_version stamped on journaled (not yet checkpointed) objects.
// Real stamps start at 1 and increment, so this value is unreachable.
constexpr std::uint64_t kJournaledStorageVersion = ~0ull;
} // namespace

Result<ObjectBlob> NexusEnclave::FetchMetaO(const Uuid& uuid) {
  if (const journal::Op* op = JournalFind(uuid)) {
    if (op->kind == journal::OpKind::kRemove) {
      return Error(ErrorCode::kNotFound, "object removed in pending transaction");
    }
    return ObjectBlob{op->blob, kJournaledStorageVersion};
  }
  trace::Span ocall_span("ocall:fetch_meta", "ocall");
  sgx::EnclaveRuntime::OcallScope scope(runtime_);
  return storage_.FetchMeta(uuid);
}

Status NexusEnclave::StoreMetaO(const Uuid& uuid, ByteSpan data,
                                std::uint64_t* version_out) {
  if (journal_.has_value()) {
    journal_->pending.Put(uuid, ToBytes(data));
    if (version_out != nullptr) *version_out = kJournaledStorageVersion;
    return Status::Ok();
  }
  return StoreMetaDirect(uuid, data, version_out);
}

Status NexusEnclave::RemoveMetaO(const Uuid& uuid) {
  if (journal_.has_value()) {
    journal_->pending.Remove(uuid);
    return Status::Ok();
  }
  return RemoveMetaDirect(uuid);
}

Status NexusEnclave::StoreMetaDirect(const Uuid& uuid, ByteSpan data,
                                     std::uint64_t* version_out) {
  trace::Span ocall_span("ocall:store_meta", "ocall");
  sgx::EnclaveRuntime::OcallScope scope(runtime_);
  NEXUS_ASSIGN_OR_RETURN(std::uint64_t version, storage_.StoreMeta(uuid, data));
  if (version_out != nullptr) *version_out = version;
  return Status::Ok();
}

Status NexusEnclave::RemoveMetaDirect(const Uuid& uuid) {
  trace::Span ocall_span("ocall:remove_meta", "ocall");
  sgx::EnclaveRuntime::OcallScope scope(runtime_);
  return storage_.RemoveMeta(uuid);
}

Result<ObjectBlob> NexusEnclave::FetchDataO(const Uuid& uuid) {
  trace::Span ocall_span("ocall:fetch_data", "ocall");
  sgx::EnclaveRuntime::OcallScope scope(runtime_);
  return storage_.FetchData(uuid);
}

Status NexusEnclave::StoreDataO(const Uuid& uuid, ByteSpan data,
                                std::uint64_t changed_bytes) {
  trace::Span ocall_span("ocall:store_data", "ocall");
  sgx::EnclaveRuntime::OcallScope scope(runtime_);
  return storage_.StoreData(uuid, data, changed_bytes);
}

// Pipelined data-path ocalls. Only ever issued from the ecall thread —
// worker threads hand finished ciphertext back via the task group and the
// ecall thread crosses the boundary, preserving the single-threaded
// enclave transition model.

Result<std::uint64_t> NexusEnclave::BeginDataStreamO(const Uuid& uuid,
                                                     std::uint64_t total_bytes) {
  trace::Span ocall_span("ocall:begin_data_stream", "ocall");
  sgx::EnclaveRuntime::OcallScope scope(runtime_);
  return storage_.BeginDataStream(uuid, total_bytes);
}

Status NexusEnclave::StoreDataSegmentO(std::uint64_t handle, ByteSpan segment) {
  trace::Span ocall_span("ocall:store_data_segment", "ocall");
  sgx::EnclaveRuntime::OcallScope scope(runtime_);
  return storage_.StoreDataSegment(handle, segment);
}

Status NexusEnclave::CommitDataStreamO(std::uint64_t handle,
                                       std::uint64_t changed_bytes) {
  trace::Span ocall_span("ocall:commit_data_stream", "ocall");
  sgx::EnclaveRuntime::OcallScope scope(runtime_);
  return storage_.CommitDataStream(handle, changed_bytes);
}

Status NexusEnclave::AbortDataStreamO(std::uint64_t handle) {
  trace::Span ocall_span("ocall:abort_data_stream", "ocall");
  sgx::EnclaveRuntime::OcallScope scope(runtime_);
  return storage_.AbortDataStream(handle);
}

Result<RangeBlob> NexusEnclave::FetchDataRangeO(const Uuid& uuid,
                                                std::uint64_t offset,
                                                std::uint64_t len) {
  trace::Span ocall_span("ocall:fetch_data_range", "ocall");
  sgx::EnclaveRuntime::OcallScope scope(runtime_);
  return storage_.FetchDataRange(uuid, offset, len);
}

void NexusEnclave::PrefetchDataO(const Uuid& uuid, std::uint64_t offset,
                                 std::uint64_t len) {
  trace::Span ocall_span("ocall:prefetch_data", "ocall");
  sgx::EnclaveRuntime::OcallScope scope(runtime_);
  storage_.PrefetchData(uuid, offset, len);
}

Status NexusEnclave::RemoveDataO(const Uuid& uuid) {
  if (journal_.has_value()) {
    // Defer the delete until the transaction that stopped referencing the
    // object has committed: until then the on-store filenode still points
    // at it, and a crash must leave that state fully readable.
    journal_->deferred_data_removes.push_back(uuid);
    return Status::Ok();
  }
  trace::Span ocall_span("ocall:remove_data", "ocall");
  sgx::EnclaveRuntime::OcallScope scope(runtime_);
  return storage_.RemoveData(uuid);
}

Status NexusEnclave::LockMetaO(const Uuid& uuid) {
  trace::Span ocall_span("ocall:lock_meta", "ocall");
  sgx::EnclaveRuntime::OcallScope scope(runtime_);
  return storage_.LockMeta(uuid);
}

Status NexusEnclave::UnlockMetaO(const Uuid& uuid) {
  trace::Span ocall_span("ocall:unlock_meta", "ocall");
  sgx::EnclaveRuntime::OcallScope scope(runtime_);
  return storage_.UnlockMeta(uuid);
}

bool NexusEnclave::CacheFreshO(const Uuid& uuid, std::uint64_t storage_version) {
  if (const journal::Op* op = JournalFind(uuid)) {
    // A cached decrypt is fresh iff it was decoded from the journaled blob
    // (sentinel stamp). A pending remove can never validate a cache entry.
    return op->kind == journal::OpKind::kPut &&
           storage_version == kJournaledStorageVersion;
  }
  trace::Span ocall_span("ocall:cache_fresh", "ocall");
  sgx::EnclaveRuntime::OcallScope scope(runtime_);
  return storage_.CacheFresh(uuid, storage_version);
}

Result<Bytes> NexusEnclave::FetchJournalO(const std::string& name) {
  trace::Span ocall_span("ocall:fetch_journal", "ocall");
  sgx::EnclaveRuntime::OcallScope scope(runtime_);
  return storage_.FetchJournal(name);
}

Status NexusEnclave::StoreJournalO(const std::string& name, ByteSpan data) {
  trace::Span ocall_span("ocall:store_journal", "ocall");
  sgx::EnclaveRuntime::OcallScope scope(runtime_);
  return storage_.StoreJournal(name, data);
}

Status NexusEnclave::RemoveJournalO(const std::string& name) {
  trace::Span ocall_span("ocall:remove_journal", "ocall");
  sgx::EnclaveRuntime::OcallScope scope(runtime_);
  return storage_.RemoveJournal(name);
}

Result<std::vector<std::string>> NexusEnclave::ListJournalO() {
  trace::Span ocall_span("ocall:list_journal", "ocall");
  sgx::EnclaveRuntime::OcallScope scope(runtime_);
  return storage_.ListJournal();
}

std::vector<Result<Bytes>> NexusEnclave::FetchJournalBatchO(
    const std::vector<std::string>& names) {
  trace::Span ocall_span("ocall:fetch_journal_batch", "ocall");
  sgx::EnclaveRuntime::OcallScope scope(runtime_);
  return storage_.FetchJournalBatch(names);
}

// ---- write-ahead journal ----------------------------------------------------

const journal::Op* NexusEnclave::JournalFind(const Uuid& uuid) const {
  if (!journal_.has_value()) return nullptr;
  // Pending shadows committed: within one transaction the newest write wins.
  if (const journal::Op* op = journal_->pending.Find(uuid)) return op;
  return journal_->committed.Find(uuid);
}

void NexusEnclave::EngageJournal(std::uint64_t next_seq,
                                 const ByteArray<32>& chain_hash) {
  JournalState state;
  state.key = journal::DeriveJournalKey(session_->rootkey);
  state.next_seq = next_seq;
  state.chain_hash = chain_hash;
  journal_ = std::move(state);
}

Status NexusEnclave::CommitPending() {
  if (!journal_.has_value()) return Status::Ok();
  JournalState& j = *journal_;
  if (!j.pending.empty()) {
    trace::Span commit_span("journal:commit", "journal");
    const std::uint64_t commit_t0 = MonotonicNanos();
    NEXUS_ASSIGN_OR_RETURN(
        Bytes record,
        journal::EncodeRecord(j.next_seq, j.chain_hash, j.pending.ops(), j.key,
                              session_->volume_uuid, runtime_.rng()));
    // The single durability point of the whole transaction: one object
    // store. Until it succeeds everything stays pending (retryable).
    NEXUS_RETURN_IF_ERROR(StoreJournalO(journal::ObjectName(j.next_seq), record));
    // Encode -> durable-store wall time of the record (group commit cost).
    trace::GlobalHistogram("journal.commit")
        .Record(MonotonicNanos() - commit_t0);
    j.chain_hash = journal::ChainHash(record);
    j.committed_seqs.push_back(j.next_seq);
    ++j.next_seq;
    journal_stats_.ops_deduped += j.pending.deduped();
    journal_stats_.ops_committed += j.pending.size();
    ++journal_stats_.records_committed;
    for (journal::Op& op : j.pending.TakeOps()) j.committed.Apply(std::move(op));
  }
  // Data objects unreferenced by this transaction are now safe to delete.
  for (const Uuid& uuid : j.deferred_data_removes) {
    trace::Span ocall_span("ocall:remove_data", "ocall");
    sgx::EnclaveRuntime::OcallScope scope(runtime_);
    (void)storage_.RemoveData(uuid); // best effort: an orphan is harmless
  }
  j.deferred_data_removes.clear();
  if (j.committed.size() >= checkpoint_interval_ops_ ||
      checkpoint_interval_ops_ == 0) {
    return CheckpointJournal();
  }
  return Status::Ok();
}

Status NexusEnclave::CheckpointJournal() {
  if (!journal_.has_value()) return Status::Ok();
  JournalState& j = *journal_;
  if (j.committed.empty() && j.committed_seqs.empty()) return Status::Ok();
  trace::Span checkpoint_span("journal:checkpoint", "journal");

  // Apply committed ops onto the main objects. Order across objects is
  // irrelevant (each op carries the whole blob); a crash mid-apply is fine
  // because the records survive until the anchor below moves past them, so
  // mount-time recovery re-applies the remainder idempotently.
  for (const journal::Op& op : j.committed.ops()) {
    if (op.kind == journal::OpKind::kPut) {
      std::uint64_t version = 0;
      NEXUS_RETURN_IF_ERROR(StoreMetaDirect(op.uuid, op.blob, &version));
      PatchCachedStorageVersion(op.uuid, version);
    } else {
      const Status removed = RemoveMetaDirect(op.uuid);
      // Tolerated: the object may never have been checkpointed (created
      // and deleted within the journaled window) or a previous partial
      // checkpoint already removed it.
      if (!removed.ok() && removed.code() != ErrorCode::kNotFound) {
        return removed;
      }
    }
  }
  journal_stats_.ops_checkpointed += j.committed.size();
  j.committed.Clear();

  // Truncate: persist the new chain position FIRST, then drop the records
  // it supersedes. A crash in between leaves stale records below the
  // anchor, which recovery deletes without replaying.
  NEXUS_ASSIGN_OR_RETURN(
      Bytes anchor,
      journal::EncodeAnchor(journal::Anchor{j.next_seq, j.chain_hash}, j.key,
                            session_->volume_uuid, runtime_.rng()));
  NEXUS_RETURN_IF_ERROR(StoreJournalO(journal::kAnchorName, anchor));
  for (const std::uint64_t seq : j.committed_seqs) {
    (void)RemoveJournalO(journal::ObjectName(seq));
  }
  j.committed_seqs.clear();
  ++journal_stats_.checkpoints;
  return Status::Ok();
}

Status NexusEnclave::FinishMutation(Status result) {
  if (!journal_.has_value()) return result;
  if (journal_->explicit_batch) return result;
  // Commit even when the operation failed: whatever it already stored is
  // exactly what the non-journaled write-through path would have made
  // durable, and the version table has already recorded those writes.
  const Status committed = CommitPending();
  return result.ok() ? committed : result;
}

void NexusEnclave::PatchCachedStorageVersion(const Uuid& uuid,
                                             std::uint64_t version) {
  if (const auto it = dirnode_cache_.find(uuid); it != dirnode_cache_.end() &&
      it->second.storage_version == kJournaledStorageVersion) {
    it->second.storage_version = version;
  }
  if (const auto it = filenode_cache_.find(uuid); it != filenode_cache_.end() &&
      it->second.storage_version == kJournaledStorageVersion) {
    it->second.storage_version = version;
  }
  if (session_.has_value() && uuid == session_->volume_uuid &&
      session_->supernode_storage_version == kJournaledStorageVersion) {
    session_->supernode_storage_version = version;
  }
}

Result<journal::Anchor> NexusEnclave::RecoverJournal(
    const journal::JournalKey& key, const Uuid& volume_uuid) {
  journal::Anchor anchor; // default: chain starts at seq 0, zero hash
  auto anchor_blob = FetchJournalO(journal::kAnchorName);
  if (anchor_blob.ok()) {
    NEXUS_ASSIGN_OR_RETURN(anchor,
                           journal::DecodeAnchor(*anchor_blob, key, volume_uuid));
  } else if (anchor_blob.status().code() != ErrorCode::kNotFound) {
    return anchor_blob.status();
  }

  NEXUS_ASSIGN_OR_RETURN(std::vector<std::string> names, ListJournalO());
  std::vector<std::uint64_t> seqs;
  std::vector<std::string> stale;
  for (const std::string& name : names) {
    if (name == journal::kAnchorName) continue;
    const auto seq = journal::ParseObjectName(name);
    if (!seq.has_value() || *seq < anchor.next_seq) {
      // Foreign garbage, or a record a finished checkpoint superseded but
      // did not get to delete: drop it without replaying.
      stale.push_back(name);
      continue;
    }
    seqs.push_back(*seq);
  }
  std::sort(seqs.begin(), seqs.end());

  // One batched fetch for every candidate record: recovery latency is one
  // round-trip instead of one per record, and a remote store coalesces the
  // whole set into a single MultiGet frame. Each record still fails
  // independently — a missing blob is a chain break for ITS sequence, not
  // a fatal error for the batch.
  std::vector<std::string> record_names;
  record_names.reserve(seqs.size());
  for (const std::uint64_t seq : seqs) {
    record_names.push_back(journal::ObjectName(seq));
  }
  std::vector<Result<Bytes>> blobs = FetchJournalBatchO(record_names);

  // Replay the contiguous, authenticated chain extension; the first gap,
  // decode failure or chain break ends the committed prefix and everything
  // from there on is a torn tail to discard.
  std::vector<std::uint64_t> replayed;
  std::vector<std::uint64_t> torn;
  bool chain_ok = true;
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    const std::uint64_t seq = seqs[i];
    if (!chain_ok || seq != anchor.next_seq) {
      chain_ok = false;
      torn.push_back(seq);
      continue;
    }
    const Result<Bytes>& blob = blobs[i];
    if (!blob.ok()) {
      chain_ok = false;
      torn.push_back(seq);
      continue;
    }
    auto ops = journal::DecodeRecord(*blob, seq, anchor.chain_hash, key,
                                     volume_uuid);
    if (!ops.ok()) {
      chain_ok = false;
      torn.push_back(seq);
      continue;
    }
    for (const journal::Op& op : *ops) {
      if (op.kind == journal::OpKind::kPut) {
        NEXUS_RETURN_IF_ERROR(StoreMetaDirect(op.uuid, op.blob, nullptr));
      } else {
        const Status removed = RemoveMetaDirect(op.uuid);
        if (!removed.ok() && removed.code() != ErrorCode::kNotFound) {
          return removed;
        }
      }
      ++journal_stats_.ops_replayed;
    }
    anchor.chain_hash = journal::ChainHash(*blob);
    anchor.next_seq = seq + 1;
    replayed.push_back(seq);
    ++journal_stats_.records_replayed;
  }
  journal_stats_.torn_records_discarded += torn.size();

  // Truncate what we consumed: anchor first, then the record objects.
  if (!replayed.empty() || !torn.empty() || !stale.empty()) {
    NEXUS_ASSIGN_OR_RETURN(
        Bytes anchor_out,
        journal::EncodeAnchor(anchor, key, volume_uuid, runtime_.rng()));
    NEXUS_RETURN_IF_ERROR(StoreJournalO(journal::kAnchorName, anchor_out));
    for (const std::uint64_t seq : replayed) {
      (void)RemoveJournalO(journal::ObjectName(seq));
    }
    for (const std::uint64_t seq : torn) {
      (void)RemoveJournalO(journal::ObjectName(seq));
    }
    for (const std::string& name : stale) (void)RemoveJournalO(name);
  }
  return anchor;
}

Status NexusEnclave::EcallConfigureJournal(
    bool enabled, std::uint64_t checkpoint_interval_ops) {
  sgx::EnclaveRuntime::EcallScope scope(runtime_);
  if (journal_.has_value() && journal_->explicit_batch) {
    return Error(ErrorCode::kInvalidArgument,
                 "cannot reconfigure journal inside an open batch");
  }
  checkpoint_interval_ops_ = checkpoint_interval_ops;
  journal_enabled_ = enabled;
  if (!session_.has_value()) return Status::Ok(); // applies at next mount
  if (enabled && !journal_.has_value()) {
    // Engaging mid-session: fold any on-store journal leftovers in first
    // so the chain position is authoritative.
    const journal::JournalKey key =
        journal::DeriveJournalKey(session_->rootkey);
    NEXUS_ASSIGN_OR_RETURN(journal::Anchor anchor,
                           RecoverJournal(key, session_->volume_uuid));
    EngageJournal(anchor.next_seq, anchor.chain_hash);
  } else if (!enabled && journal_.has_value()) {
    // Disabling flushes everything through to the main objects.
    NEXUS_RETURN_IF_ERROR(CommitPending());
    NEXUS_RETURN_IF_ERROR(CheckpointJournal());
    journal_.reset();
  }
  return Status::Ok();
}

Status NexusEnclave::EcallBeginBatch() {
  sgx::EnclaveRuntime::EcallScope scope(runtime_);
  NEXUS_RETURN_IF_ERROR(RequireMounted());
  if (!journal_.has_value()) {
    return Error(ErrorCode::kInvalidArgument,
                 "journaling is disabled; no batch mode");
  }
  if (journal_->explicit_batch) {
    return Error(ErrorCode::kInvalidArgument, "a batch is already open");
  }
  journal_->explicit_batch = true;
  return Status::Ok();
}

Status NexusEnclave::EcallCommitBatch() {
  sgx::EnclaveRuntime::EcallScope scope(runtime_);
  NEXUS_RETURN_IF_ERROR(RequireMounted());
  if (!journal_.has_value() || !journal_->explicit_batch) {
    return Error(ErrorCode::kInvalidArgument, "no batch is open");
  }
  journal_->explicit_batch = false;
  return CommitPending();
}

// ---- internals ----------------------------------------------------------------

Status NexusEnclave::RequireMounted() const {
  if (!session_.has_value()) {
    return Error(ErrorCode::kPermissionDenied, "volume not mounted");
  }
  // Every mounted operation passes through here exactly once at its start:
  // advance the LRU clock so cache entries touched by *this* operation are
  // distinguishable from older ones (see EvictColdCacheEntries).
  ++op_tick_;
  return Status::Ok();
}

void NexusEnclave::EvictColdCacheEntries() {
  auto evict = [&](auto& cache, std::size_t limit) {
    while (cache.size() > limit) {
      auto victim = cache.end();
      for (auto it = cache.begin(); it != cache.end(); ++it) {
        if (it->second.last_used >= op_tick_) continue; // in use right now
        if (victim == cache.end() ||
            it->second.last_used < victim->second.last_used) {
          victim = it;
        }
      }
      if (victim == cache.end()) return; // everything is pinned
      cache.erase(victim);
    }
  };
  evict(dirnode_cache_, max_cached_dirnodes_);
  evict(filenode_cache_, max_cached_filenodes_);
}

void NexusEnclave::EcallSetCacheLimits(std::size_t max_dirnodes,
                                       std::size_t max_filenodes) {
  sgx::EnclaveRuntime::EcallScope scope(runtime_);
  max_cached_dirnodes_ = std::max<std::size_t>(1, max_dirnodes);
  max_cached_filenodes_ = std::max<std::size_t>(1, max_filenodes);
  ++op_tick_;
  EvictColdCacheEntries();
}

bool NexusEnclave::IsOwner() const {
  return session_.has_value() && session_->user == kOwnerUserId;
}

Status NexusEnclave::CheckDirAccess(const Dirnode& dir, std::uint8_t needed) const {
  // Owner retains full administrative control (§IV-C).
  if (IsOwner()) return Status::Ok();
  const AclEntry* entry = dir.FindAcl(session_->user);
  if (entry == nullptr || (entry->perms & needed) != needed) {
    return Error(ErrorCode::kPermissionDenied, "access denied by directory ACL");
  }
  return Status::Ok();
}

Status NexusEnclave::CheckAndRecordVersion(const Uuid& uuid,
                                           std::uint64_t version) {
  auto [it, inserted] = min_versions_.try_emplace(uuid, version);
  if (!inserted) {
    if (version < it->second) {
      return Error(ErrorCode::kIntegrityViolation,
                   "stale metadata version (rollback attack?)");
    }
    it->second = version;
  }
  return Status::Ok();
}

Result<Bytes> NexusEnclave::EncodeAndStoreMeta(MetaType type, const Uuid& uuid,
                                               std::uint64_t version,
                                               ByteSpan body,
                                               std::uint64_t* storage_version_out) {
  Preamble preamble{type, uuid, version};
  NEXUS_ASSIGN_OR_RETURN(
      Bytes blob, EncodeMetadata(preamble, body, session_->rootkey, runtime_.rng()));
  // Record the version locally *before* upload (§VI-C).
  NEXUS_RETURN_IF_ERROR(CheckAndRecordVersion(uuid, version));
  NEXUS_RETURN_IF_ERROR(StoreMetaO(uuid, blob, storage_version_out));
  return blob;
}

Result<NexusEnclave::DirnodeState*> NexusEnclave::LoadDirnode(
    const Uuid& uuid, const Uuid& expected_parent) {
  const auto cached = dirnode_cache_.find(uuid);
  if (cached != dirnode_cache_.end() &&
      CacheFreshO(uuid, cached->second.storage_version)) {
    ++cache_stats_.dirnode_hits;
    if (cached->second.main.parent != expected_parent) {
      return Error(ErrorCode::kIntegrityViolation,
                   "dirnode parent mismatch (file-swapping attack?)");
    }
    cached->second.last_used = op_tick_;
    return &cached->second;
  }
  ++cache_stats_.dirnode_misses;

  NEXUS_ASSIGN_OR_RETURN(ObjectBlob blob, FetchMetaO(uuid));
  NEXUS_ASSIGN_OR_RETURN(
      DecodedMeta meta,
      DecodeMetadata(blob.data, session_->rootkey, MetaType::kDirnodeMain, uuid));
  NEXUS_RETURN_IF_ERROR(CheckAndRecordVersion(uuid, meta.preamble.version));

  DirnodeState state;
  NEXUS_ASSIGN_OR_RETURN(state.main, Dirnode::Deserialize(meta.body));
  state.meta_version = meta.preamble.version;
  state.storage_version = blob.storage_version;

  if (state.main.uuid != uuid) {
    return Error(ErrorCode::kIntegrityViolation, "dirnode self-uuid mismatch");
  }
  if (state.main.parent != expected_parent) {
    // The §IV-A3 parent-pointer check: an authentic dirnode served at the
    // wrong place in the hierarchy is rejected.
    return Error(ErrorCode::kIntegrityViolation,
                 "dirnode parent mismatch (file-swapping attack?)");
  }

  // Load all buckets, verifying each against the MAC pinned in the main
  // object (bucket-level rollback defence, §V-B).
  state.buckets.reserve(state.main.buckets.size());
  for (const BucketRef& ref : state.main.buckets) {
    NEXUS_ASSIGN_OR_RETURN(ObjectBlob bucket_blob, FetchMetaO(ref.uuid));
    if (crypto::Sha256::Hash(bucket_blob.data) != ref.mac) {
      return Error(ErrorCode::kIntegrityViolation,
                   "dirnode bucket MAC mismatch (bucket rollback?)");
    }
    NEXUS_ASSIGN_OR_RETURN(
        DecodedMeta bucket_meta,
        DecodeMetadata(bucket_blob.data, session_->rootkey,
                       MetaType::kDirnodeBucket, ref.uuid));
    NEXUS_ASSIGN_OR_RETURN(DirBucket bucket,
                           DirBucket::Deserialize(bucket_meta.body, uuid));
    bucket.uuid = ref.uuid;
    if (bucket.entries.size() != ref.entry_count) {
      return Error(ErrorCode::kIntegrityViolation, "bucket entry count mismatch");
    }
    state.buckets.push_back(std::move(bucket));
  }

  state.last_used = op_tick_;
  auto [it, _] = dirnode_cache_.insert_or_assign(uuid, std::move(state));
  EvictColdCacheEntries();
  return &it->second;
}

Result<NexusEnclave::FilenodeState*> NexusEnclave::LoadFilenode(
    const Uuid& uuid, const Uuid& expected_parent) {
  const auto cached = filenode_cache_.find(uuid);
  if (cached != filenode_cache_.end() &&
      CacheFreshO(uuid, cached->second.storage_version)) {
    ++cache_stats_.filenode_hits;
    cached->second.last_used = op_tick_;
    return &cached->second;
  }
  ++cache_stats_.filenode_misses;

  NEXUS_ASSIGN_OR_RETURN(ObjectBlob blob, FetchMetaO(uuid));
  NEXUS_ASSIGN_OR_RETURN(
      DecodedMeta meta,
      DecodeMetadata(blob.data, session_->rootkey, MetaType::kFilenode, uuid));
  NEXUS_RETURN_IF_ERROR(CheckAndRecordVersion(uuid, meta.preamble.version));

  FilenodeState state;
  NEXUS_ASSIGN_OR_RETURN(state.node, Filenode::Deserialize(meta.body));
  state.meta_version = meta.preamble.version;
  state.storage_version = blob.storage_version;

  if (state.node.uuid != uuid) {
    return Error(ErrorCode::kIntegrityViolation, "filenode self-uuid mismatch");
  }
  // Hardlinked filenodes (link_count > 1) have a nil parent; otherwise the
  // parent pointer must match the directory we arrived from.
  if (!state.node.parent.IsNil() && state.node.parent != expected_parent) {
    return Error(ErrorCode::kIntegrityViolation,
                 "filenode parent mismatch (file-swapping attack?)");
  }

  state.last_used = op_tick_;
  auto [it, _] = filenode_cache_.insert_or_assign(uuid, std::move(state));
  EvictColdCacheEntries();
  return &it->second;
}

Status NexusEnclave::ReloadSupernode() {
  if (CacheFreshO(session_->volume_uuid, session_->supernode_storage_version)) {
    return Status::Ok();
  }
  NEXUS_ASSIGN_OR_RETURN(ObjectBlob blob, FetchMetaO(session_->volume_uuid));
  NEXUS_ASSIGN_OR_RETURN(
      DecodedMeta meta,
      DecodeMetadata(blob.data, session_->rootkey, MetaType::kSupernode,
                     session_->volume_uuid));
  NEXUS_RETURN_IF_ERROR(
      CheckAndRecordVersion(session_->volume_uuid, meta.preamble.version));
  NEXUS_ASSIGN_OR_RETURN(session_->supernode, Supernode::Deserialize(meta.body));
  session_->supernode_storage_version = blob.storage_version;

  // Revocation takes effect immediately: if our user was removed from the
  // user table, the session dies here.
  if (session_->supernode.FindUserById(session_->user) == nullptr) {
    const Status revoked =
        Error(ErrorCode::kPermissionDenied, "user revoked from volume");
    (void)EcallUnmount();
    return revoked;
  }
  return Status::Ok();
}

Status NexusEnclave::FlushDirnode(DirnodeState& state,
                                  const std::vector<std::size_t>& dirty_buckets) {
  // Crash-consistent update order: dirty buckets are written COPY-ON-WRITE
  // under fresh UUIDs, then the main object (whose bucket table carries the
  // new UUIDs + MACs) is stored, and only then are the superseded bucket
  // objects deleted. A crash at any point leaves either the old or the new
  // state fully readable — never a main/bucket MAC mismatch; at worst an
  // orphaned bucket object remains (found by EcallVerifyVolume).
  std::vector<Uuid> superseded;
  for (const std::size_t i : dirty_buckets) {
    DirBucket& bucket = state.buckets[i];
    BucketRef& ref = state.main.buckets[i];
    if (!ref.uuid.IsNil()) superseded.push_back(ref.uuid);
    const Uuid fresh_uuid = runtime_.rng().NewUuid();
    Preamble preamble{MetaType::kDirnodeBucket, fresh_uuid, /*version=*/1};
    NEXUS_ASSIGN_OR_RETURN(
        Bytes blob,
        EncodeMetadata(preamble, bucket.Serialize(state.main.uuid),
                       session_->rootkey, runtime_.rng()));
    NEXUS_RETURN_IF_ERROR(CheckAndRecordVersion(fresh_uuid, 1));
    NEXUS_RETURN_IF_ERROR(StoreMetaO(fresh_uuid, blob, nullptr));
    bucket.uuid = fresh_uuid;
    ref.uuid = fresh_uuid;
    ref.entry_count = static_cast<std::uint32_t>(bucket.entries.size());
    ref.mac = crypto::Sha256::Hash(blob);
  }
  ++state.meta_version;
  NEXUS_ASSIGN_OR_RETURN(
      Bytes main_blob,
      EncodeAndStoreMeta(MetaType::kDirnodeMain, state.main.uuid,
                         state.meta_version, state.main.Serialize(),
                         &state.storage_version));
  (void)main_blob;
  for (const Uuid& old : superseded) {
    (void)RemoveMetaO(old); // best effort: an orphan is harmless
    min_versions_.erase(old);
  }
  return Status::Ok();
}

Status NexusEnclave::FlushFilenode(FilenodeState& state) {
  ++state.meta_version;
  NEXUS_ASSIGN_OR_RETURN(
      Bytes blob,
      EncodeAndStoreMeta(MetaType::kFilenode, state.node.uuid,
                         state.meta_version, state.node.Serialize(),
                         &state.storage_version));
  (void)blob;
  return Status::Ok();
}

Result<std::vector<std::string>> NexusEnclave::SplitPath(const std::string& path) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= path.size()) {
    std::size_t end = path.find('/', start);
    if (end == std::string::npos) end = path.size();
    const std::string part = path.substr(start, end - start);
    if (!part.empty()) {
      if (part == "." || part == "..") {
        return Error(ErrorCode::kInvalidArgument,
                     "'.'/'..' path components not supported");
      }
      parts.push_back(part);
    }
    start = end + 1;
  }
  return parts;
}

Result<NexusEnclave::ResolvedDir> NexusEnclave::ResolveDir(
    const std::vector<std::string>& components) {
  Uuid current = session_->supernode.root_dir;
  Uuid parent; // root's parent is nil
  for (const std::string& name : components) {
    NEXUS_ASSIGN_OR_RETURN(DirnodeState* dir, LoadDirnode(current, parent));
    NEXUS_RETURN_IF_ERROR(CheckDirAccess(dir->main, kPermRead));
    const DirEntry* entry = FindEntry(*dir, name);
    if (entry == nullptr) {
      return Error(ErrorCode::kNotFound, "no such directory: " + name);
    }
    if (entry->type != EntryType::kDirectory) {
      return Error(ErrorCode::kInvalidArgument, "not a directory: " + name);
    }
    parent = current;
    current = entry->uuid;
  }
  return ResolvedDir{current, parent};
}

const DirEntry* NexusEnclave::FindEntry(const DirnodeState& dir,
                                        const std::string& name,
                                        EntryLocation* loc) {
  for (std::size_t b = 0; b < dir.buckets.size(); ++b) {
    const auto& entries = dir.buckets[b].entries;
    for (std::size_t e = 0; e < entries.size(); ++e) {
      if (entries[e].name == name) {
        if (loc != nullptr) {
          loc->bucket_index = b;
          loc->entry_index = e;
        }
        return &entries[e];
      }
    }
  }
  return nullptr;
}

// ---- volume creation -----------------------------------------------------------

Result<NexusEnclave::CreateVolumeResult> NexusEnclave::EcallCreateVolume(
    const std::string& owner_name, const ByteArray<32>& owner_public_key,
    const VolumeConfig& config) {
  sgx::EnclaveRuntime::EcallScope scope(runtime_);
  if (session_.has_value()) {
    return Error(ErrorCode::kInvalidArgument, "a volume is already mounted");
  }
  if (config.chunk_size == 0 || config.dirnode_bucket_size == 0) {
    return Error(ErrorCode::kInvalidArgument, "invalid volume config");
  }

  Session session;
  session.rootkey = runtime_.rng().Array<16>();
  session.user = kOwnerUserId;
  session.volume_uuid = runtime_.rng().NewUuid();

  Supernode supernode;
  supernode.volume_uuid = session.volume_uuid;
  supernode.root_dir = runtime_.rng().NewUuid();
  supernode.config = config;
  supernode.users.push_back(UserRecord{kOwnerUserId, owner_name, owner_public_key});
  supernode.next_user_id = 1;
  session.supernode = supernode;
  session_ = std::move(session);
  if (journal_enabled_) {
    // Fresh volume: the journal chain starts at sequence 0.
    EngageJournal(0, ByteArray<32>{});
  }

  // Empty root directory.
  Dirnode root;
  root.uuid = supernode.root_dir;
  root.parent = Uuid(); // nil
  auto root_stored = EncodeAndStoreMeta(MetaType::kDirnodeMain, root.uuid,
                                        /*version=*/1, root.Serialize(), nullptr);
  if (!root_stored.ok()) {
    session_.reset();
    journal_.reset();
    return root_stored.status();
  }
  DirnodeState root_state;
  root_state.main = root;
  root_state.meta_version = 1;
  dirnode_cache_.insert_or_assign(root.uuid, std::move(root_state));

  std::uint64_t supernode_sv = 0;
  auto super_stored =
      EncodeAndStoreMeta(MetaType::kSupernode, session_->volume_uuid,
                         /*version=*/1, supernode.Serialize(), &supernode_sv);
  if (!super_stored.ok()) {
    session_.reset();
    journal_.reset();
    return super_stored.status();
  }
  session_->supernode_storage_version = supernode_sv;

  // A new volume must exist concretely on the store before the sealed
  // rootkey is handed out: commit and fully checkpoint the creation.
  if (journal_.has_value()) {
    const Status flushed = [&] {
      NEXUS_RETURN_IF_ERROR(CommitPending());
      return CheckpointJournal();
    }();
    if (!flushed.ok()) {
      session_.reset();
      journal_.reset();
      return flushed;
    }
  }

  NEXUS_ASSIGN_OR_RETURN(Bytes sealed_rootkey, runtime_.Seal(session_->rootkey));
  return CreateVolumeResult{session_->volume_uuid, std::move(sealed_rootkey)};
}

// ---- Table I operations ----------------------------------------------------------

Status NexusEnclave::CreateEntry(const std::string& path, EntryType type,
                                 const std::string& symlink_target) {
  NEXUS_RETURN_IF_ERROR(RequireMounted());
  NEXUS_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  if (parts.empty()) {
    return Error(ErrorCode::kInvalidArgument, "cannot create the root");
  }
  const std::string name = parts.back();
  parts.pop_back();
  NEXUS_ASSIGN_OR_RETURN(ResolvedDir dir_uuid_rd, ResolveDir(parts));
  const Uuid dir_uuid = dir_uuid_rd.uuid;

  // Serialize concurrent updates through the storage service's lock (§V-A);
  // re-fetch under the lock so we mutate the latest version.
  NEXUS_RETURN_IF_ERROR(LockMetaO(dir_uuid));
  auto result = [&]() -> Status {
    NEXUS_ASSIGN_OR_RETURN(DirnodeState* dir,
                           LoadDirnode(dir_uuid, dir_uuid_rd.parent));
    NEXUS_RETURN_IF_ERROR(CheckDirAccess(dir->main, kPermWrite));
    if (FindEntry(*dir, name) != nullptr) {
      return Error(ErrorCode::kAlreadyExists, "entry exists: " + name);
    }

    DirEntry entry;
    entry.name = name;
    entry.type = type;
    entry.symlink_target = symlink_target;

    if (type == EntryType::kFile) {
      entry.uuid = runtime_.rng().NewUuid();
      Filenode node;
      node.uuid = entry.uuid;
      node.parent = dir_uuid;
      node.data_uuid = runtime_.rng().NewUuid();
      node.chunk_size = session_->supernode.config.chunk_size;
      NEXUS_ASSIGN_OR_RETURN(
          Bytes blob, EncodeAndStoreMeta(MetaType::kFilenode, node.uuid,
                                         /*version=*/1, node.Serialize(), nullptr));
      (void)blob;
      FilenodeState fstate;
      fstate.node = std::move(node);
      fstate.meta_version = 1;
      filenode_cache_.insert_or_assign(entry.uuid, std::move(fstate));
    } else if (type == EntryType::kDirectory) {
      entry.uuid = runtime_.rng().NewUuid();
      Dirnode child;
      child.uuid = entry.uuid;
      child.parent = dir_uuid;
      NEXUS_ASSIGN_OR_RETURN(
          Bytes blob, EncodeAndStoreMeta(MetaType::kDirnodeMain, child.uuid,
                                         /*version=*/1, child.Serialize(), nullptr));
      (void)blob;
      DirnodeState dstate;
      dstate.main = std::move(child);
      dstate.meta_version = 1;
      dirnode_cache_.insert_or_assign(entry.uuid, std::move(dstate));
    }
    // Symlinks live entirely in the dirent (no metadata object).

    // Append to the last bucket with room, or open a new one.
    const std::uint32_t bucket_cap = session_->supernode.config.dirnode_bucket_size;
    std::size_t target = dir->buckets.size();
    if (!dir->buckets.empty() &&
        dir->buckets.back().entries.size() < bucket_cap) {
      target = dir->buckets.size() - 1;
    }
    if (target == dir->buckets.size()) {
      DirBucket fresh;
      fresh.uuid = runtime_.rng().NewUuid();
      dir->buckets.push_back(std::move(fresh));
      BucketRef ref;
      ref.uuid = dir->buckets.back().uuid;
      dir->main.buckets.push_back(ref);
    }
    dir->buckets[target].entries.push_back(std::move(entry));
    return FlushDirnode(*dir, {target});
  }();
  // Commit the deferred metadata writes while still holding the directory
  // lock, so no other client can read-modify-write the pre-commit state.
  result = FinishMutation(result);
  const Status unlock = UnlockMetaO(dir_uuid);
  return result.ok() ? unlock : result;
}

Status NexusEnclave::EcallTouch(const std::string& path, EntryType type) {
  sgx::EnclaveRuntime::EcallScope scope(runtime_);
  if (type == EntryType::kSymlink) {
    return Error(ErrorCode::kInvalidArgument, "use EcallSymlink for symlinks");
  }
  return CreateEntry(path, type, "");
}

Status NexusEnclave::EcallSymlink(const std::string& target,
                                  const std::string& linkpath) {
  sgx::EnclaveRuntime::EcallScope scope(runtime_);
  return CreateEntry(linkpath, EntryType::kSymlink, target);
}

Status NexusEnclave::CheckRemovable(const DirEntry& entry,
                                    const Uuid& parent_uuid) {
  if (entry.type != EntryType::kDirectory) return Status::Ok();
  NEXUS_ASSIGN_OR_RETURN(DirnodeState* child,
                         LoadDirnode(entry.uuid, parent_uuid));
  if (child->main.TotalEntries() != 0) {
    return Error(ErrorCode::kInvalidArgument, "directory not empty");
  }
  return Status::Ok();
}

Status NexusEnclave::ReleaseEntryObjects(const DirEntry& entry,
                                         const Uuid& parent_uuid) {
  // Called AFTER the parent dirnode stopped referencing the entry: a crash
  // in here leaks orphaned objects (harmless, EcallVerifyVolume reports
  // them) but never leaves a dangling reference.
  switch (entry.type) {
    case EntryType::kFile: {
      NEXUS_ASSIGN_OR_RETURN(FilenodeState* file,
                             LoadFilenode(entry.uuid, parent_uuid));
      if (file->node.link_count > 1) {
        --file->node.link_count;
        return FlushFilenode(*file);
      }
      const Uuid data_uuid = file->node.data_uuid;
      filenode_cache_.erase(entry.uuid);
      min_versions_.erase(entry.uuid);
      NEXUS_RETURN_IF_ERROR(RemoveMetaO(entry.uuid));
      // A never-written file has no data object yet.
      (void)RemoveDataO(data_uuid);
      return Status::Ok();
    }
    case EntryType::kDirectory: {
      NEXUS_ASSIGN_OR_RETURN(DirnodeState* child,
                             LoadDirnode(entry.uuid, parent_uuid));
      std::vector<Uuid> buckets;
      for (const BucketRef& ref : child->main.buckets) buckets.push_back(ref.uuid);
      dirnode_cache_.erase(entry.uuid);
      min_versions_.erase(entry.uuid);
      NEXUS_RETURN_IF_ERROR(RemoveMetaO(entry.uuid));
      for (const Uuid& uuid : buckets) {
        (void)RemoveMetaO(uuid);
        min_versions_.erase(uuid);
      }
      return Status::Ok();
    }
    case EntryType::kSymlink:
      return Status::Ok();
  }
  return Error(ErrorCode::kInternal, "unknown entry type");
}

Status NexusEnclave::EcallRemove(const std::string& path) {
  sgx::EnclaveRuntime::EcallScope scope(runtime_);
  NEXUS_RETURN_IF_ERROR(RequireMounted());
  NEXUS_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  if (parts.empty()) {
    return Error(ErrorCode::kInvalidArgument, "cannot remove the root");
  }
  const std::string name = parts.back();
  parts.pop_back();
  NEXUS_ASSIGN_OR_RETURN(ResolvedDir dir_uuid_rd, ResolveDir(parts));
  const Uuid dir_uuid = dir_uuid_rd.uuid;

  NEXUS_RETURN_IF_ERROR(LockMetaO(dir_uuid));
  auto result = [&]() -> Status {
        const Uuid parent = dir_uuid_rd.parent;
    NEXUS_ASSIGN_OR_RETURN(DirnodeState* dir,
                           LoadDirnode(dir_uuid, parent));
    NEXUS_RETURN_IF_ERROR(CheckDirAccess(dir->main, kPermWrite));

    EntryLocation loc;
    const DirEntry* entry = FindEntry(*dir, name, &loc);
    if (entry == nullptr) {
      return Error(ErrorCode::kNotFound, "no such entry: " + name);
    }
    NEXUS_RETURN_IF_ERROR(CheckRemovable(*entry, dir_uuid));
    const DirEntry removed = *entry;

    auto& entries = dir->buckets[loc.bucket_index].entries;
    entries.erase(entries.begin() + static_cast<std::ptrdiff_t>(loc.entry_index));

    // Drop a now-empty trailing bucket to keep the main object compact;
    // the object itself is deleted only after the main flush commits.
    std::vector<std::size_t> dirty = {loc.bucket_index};
    Uuid dropped_bucket;
    if (entries.empty() && loc.bucket_index == dir->buckets.size() - 1) {
      dropped_bucket = dir->buckets.back().uuid;
      dir->buckets.pop_back();
      dir->main.buckets.pop_back();
      dirty.clear();
    }
    NEXUS_RETURN_IF_ERROR(FlushDirnode(*dir, dirty));
    if (!dropped_bucket.IsNil()) {
      (void)RemoveMetaO(dropped_bucket);
      min_versions_.erase(dropped_bucket);
    }
    return ReleaseEntryObjects(removed, dir_uuid);
  }();
  result = FinishMutation(result);
  const Status unlock = UnlockMetaO(dir_uuid);
  return result.ok() ? unlock : result;
}

Result<Attributes> NexusEnclave::EcallLookup(const std::string& path) {
  sgx::EnclaveRuntime::EcallScope scope(runtime_);
  NEXUS_RETURN_IF_ERROR(RequireMounted());
  NEXUS_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  if (parts.empty()) {
    return Attributes{EntryType::kDirectory, 0, session_->supernode.root_dir};
  }
  const std::string name = parts.back();
  parts.pop_back();
  NEXUS_ASSIGN_OR_RETURN(ResolvedDir dir_uuid_rd, ResolveDir(parts));
  const Uuid dir_uuid = dir_uuid_rd.uuid;

    const Uuid parent = dir_uuid_rd.parent;
  NEXUS_ASSIGN_OR_RETURN(DirnodeState* dir, LoadDirnode(dir_uuid, parent));
  NEXUS_RETURN_IF_ERROR(CheckDirAccess(dir->main, kPermRead));

  const DirEntry* entry = FindEntry(*dir, name);
  if (entry == nullptr) {
    return Error(ErrorCode::kNotFound, "no such entry: " + name);
  }
  Attributes attrs;
  attrs.type = entry->type;
  attrs.uuid = entry->uuid;
  if (entry->type == EntryType::kFile) {
    NEXUS_ASSIGN_OR_RETURN(FilenodeState* file, LoadFilenode(entry->uuid, dir_uuid));
    attrs.size = file->node.size;
  } else if (entry->type == EntryType::kSymlink) {
    attrs.size = entry->symlink_target.size();
  }
  return attrs;
}

Result<std::vector<DirEntry>> NexusEnclave::EcallFilldir(const std::string& path) {
  sgx::EnclaveRuntime::EcallScope scope(runtime_);
  NEXUS_RETURN_IF_ERROR(RequireMounted());
  NEXUS_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  NEXUS_ASSIGN_OR_RETURN(ResolvedDir dir_uuid_rd, ResolveDir(parts));
  const Uuid dir_uuid = dir_uuid_rd.uuid;

    const Uuid parent = dir_uuid_rd.parent;
  NEXUS_ASSIGN_OR_RETURN(DirnodeState* dir, LoadDirnode(dir_uuid, parent));
  NEXUS_RETURN_IF_ERROR(CheckDirAccess(dir->main, kPermRead));

  std::vector<DirEntry> out;
  out.reserve(dir->main.TotalEntries());
  for (const DirBucket& bucket : dir->buckets) {
    out.insert(out.end(), bucket.entries.begin(), bucket.entries.end());
  }
  return out;
}

Result<std::string> NexusEnclave::EcallReadlink(const std::string& path) {
  sgx::EnclaveRuntime::EcallScope scope(runtime_);
  NEXUS_RETURN_IF_ERROR(RequireMounted());
  NEXUS_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  if (parts.empty()) {
    return Error(ErrorCode::kInvalidArgument, "root is not a symlink");
  }
  const std::string name = parts.back();
  parts.pop_back();
  NEXUS_ASSIGN_OR_RETURN(ResolvedDir dir_uuid_rd, ResolveDir(parts));
  const Uuid dir_uuid = dir_uuid_rd.uuid;
    const Uuid parent = dir_uuid_rd.parent;
  NEXUS_ASSIGN_OR_RETURN(DirnodeState* dir, LoadDirnode(dir_uuid, parent));
  NEXUS_RETURN_IF_ERROR(CheckDirAccess(dir->main, kPermRead));
  const DirEntry* entry = FindEntry(*dir, name);
  if (entry == nullptr || entry->type != EntryType::kSymlink) {
    return Error(ErrorCode::kNotFound, "not a symlink: " + name);
  }
  return entry->symlink_target;
}

Status NexusEnclave::EcallHardlink(const std::string& existing,
                                   const std::string& linkpath) {
  sgx::EnclaveRuntime::EcallScope scope(runtime_);
  NEXUS_RETURN_IF_ERROR(RequireMounted());

  NEXUS_ASSIGN_OR_RETURN(std::vector<std::string> src_parts, SplitPath(existing));
  if (src_parts.empty()) {
    return Error(ErrorCode::kInvalidArgument, "cannot hardlink the root");
  }
  const std::string src_name = src_parts.back();
  src_parts.pop_back();
  NEXUS_ASSIGN_OR_RETURN(ResolvedDir src_dir_uuid_rd, ResolveDir(src_parts));
  const Uuid src_dir_uuid = src_dir_uuid_rd.uuid;
    const Uuid src_parent = src_dir_uuid_rd.parent;
  NEXUS_ASSIGN_OR_RETURN(DirnodeState* src_dir, LoadDirnode(src_dir_uuid, src_parent));
  NEXUS_RETURN_IF_ERROR(CheckDirAccess(src_dir->main, kPermRead));
  const DirEntry* src_entry = FindEntry(*src_dir, src_name);
  if (src_entry == nullptr) {
    return Error(ErrorCode::kNotFound, "no such entry: " + src_name);
  }
  if (src_entry->type != EntryType::kFile) {
    return Error(ErrorCode::kInvalidArgument, "hardlinks apply to files only");
  }
  const Uuid file_uuid = src_entry->uuid;

  NEXUS_ASSIGN_OR_RETURN(std::vector<std::string> dst_parts, SplitPath(linkpath));
  if (dst_parts.empty()) {
    return Error(ErrorCode::kInvalidArgument, "bad link path");
  }
  const std::string dst_name = dst_parts.back();
  dst_parts.pop_back();
  NEXUS_ASSIGN_OR_RETURN(ResolvedDir dst_dir_uuid_rd, ResolveDir(dst_parts));
  const Uuid dst_dir_uuid = dst_dir_uuid_rd.uuid;

  NEXUS_RETURN_IF_ERROR(LockMetaO(dst_dir_uuid));
  auto result = [&]() -> Status {
        const Uuid dst_parent = dst_dir_uuid_rd.parent;
    NEXUS_ASSIGN_OR_RETURN(DirnodeState* dst_dir,
                           LoadDirnode(dst_dir_uuid, dst_parent));
    NEXUS_RETURN_IF_ERROR(CheckDirAccess(dst_dir->main, kPermWrite));
    if (FindEntry(*dst_dir, dst_name) != nullptr) {
      return Error(ErrorCode::kAlreadyExists, "entry exists: " + dst_name);
    }

    // Bump the link count; the filenode becomes multi-parent (nil parent).
    NEXUS_ASSIGN_OR_RETURN(FilenodeState* file, LoadFilenode(file_uuid, src_dir_uuid));
    ++file->node.link_count;
    file->node.parent = Uuid();
    NEXUS_RETURN_IF_ERROR(FlushFilenode(*file));

    DirEntry entry;
    entry.name = dst_name;
    entry.uuid = file_uuid;
    entry.type = EntryType::kFile;

    const std::uint32_t bucket_cap = session_->supernode.config.dirnode_bucket_size;
    std::size_t target = dst_dir->buckets.size();
    if (!dst_dir->buckets.empty() &&
        dst_dir->buckets.back().entries.size() < bucket_cap) {
      target = dst_dir->buckets.size() - 1;
    }
    if (target == dst_dir->buckets.size()) {
      DirBucket fresh;
      fresh.uuid = runtime_.rng().NewUuid();
      dst_dir->buckets.push_back(std::move(fresh));
      BucketRef ref;
      ref.uuid = dst_dir->buckets.back().uuid;
      dst_dir->main.buckets.push_back(ref);
    }
    dst_dir->buckets[target].entries.push_back(std::move(entry));
    return FlushDirnode(*dst_dir, {target});
  }();
  result = FinishMutation(result);
  const Status unlock = UnlockMetaO(dst_dir_uuid);
  return result.ok() ? unlock : result;
}

Status NexusEnclave::EcallRename(const std::string& from, const std::string& to) {
  sgx::EnclaveRuntime::EcallScope scope(runtime_);
  NEXUS_RETURN_IF_ERROR(RequireMounted());

  NEXUS_ASSIGN_OR_RETURN(std::vector<std::string> from_parts, SplitPath(from));
  NEXUS_ASSIGN_OR_RETURN(std::vector<std::string> to_parts, SplitPath(to));
  if (from_parts.empty() || to_parts.empty()) {
    return Error(ErrorCode::kInvalidArgument, "cannot rename the root");
  }
  if (from_parts == to_parts) {
    // POSIX: renaming a path onto itself succeeds and does nothing.
    NEXUS_ASSIGN_OR_RETURN(std::vector<std::string> probe, SplitPath(from));
    probe.pop_back();
    NEXUS_ASSIGN_OR_RETURN(ResolvedDir rd, ResolveDir(probe));
    NEXUS_ASSIGN_OR_RETURN(DirnodeState* dir, LoadDirnode(rd.uuid, rd.parent));
    if (FindEntry(*dir, from_parts.back()) == nullptr) {
      return Error(ErrorCode::kNotFound, "no such entry: " + from_parts.back());
    }
    return Status::Ok();
  }
  const std::string from_name = from_parts.back();
  from_parts.pop_back();
  const std::string to_name = to_parts.back();
  to_parts.pop_back();

  NEXUS_ASSIGN_OR_RETURN(ResolvedDir src_uuid_rd, ResolveDir(from_parts));
  const Uuid src_uuid = src_uuid_rd.uuid;
  NEXUS_ASSIGN_OR_RETURN(ResolvedDir dst_uuid_rd, ResolveDir(to_parts));
  const Uuid dst_uuid = dst_uuid_rd.uuid;

  // Lock in UUID order so two concurrent renames cannot deadlock.
  std::vector<Uuid> locks = {src_uuid};
  if (dst_uuid != src_uuid) locks.push_back(dst_uuid);
  std::sort(locks.begin(), locks.end());
  for (const Uuid& u : locks) NEXUS_RETURN_IF_ERROR(LockMetaO(u));

  auto result = [&]() -> Status {
        const Uuid src_parent = src_uuid_rd.parent;
    NEXUS_ASSIGN_OR_RETURN(DirnodeState* src_dir,
                           LoadDirnode(src_uuid, src_parent));
    NEXUS_RETURN_IF_ERROR(CheckDirAccess(src_dir->main, kPermWrite));

    DirnodeState* dst_dir = src_dir;
    if (dst_uuid != src_uuid) {
            const Uuid dst_parent = dst_uuid_rd.parent;
      NEXUS_ASSIGN_OR_RETURN(dst_dir,
                             LoadDirnode(dst_uuid, dst_parent));
      NEXUS_RETURN_IF_ERROR(CheckDirAccess(dst_dir->main, kPermWrite));
    }

    EntryLocation src_loc;
    const DirEntry* src_entry_ptr = FindEntry(*src_dir, from_name, &src_loc);
    if (src_entry_ptr == nullptr) {
      return Error(ErrorCode::kNotFound, "no such entry: " + from_name);
    }
    DirEntry moved = *src_entry_ptr;

    // POSIX rename semantics: silently replace an existing target. Its
    // backing objects are released only after the dirnode flushes commit.
    EntryLocation dst_loc;
    std::vector<std::size_t> dst_dirty;
    std::optional<DirEntry> replaced;
    if (const DirEntry* existing = FindEntry(*dst_dir, to_name, &dst_loc)) {
      if (existing->type == EntryType::kDirectory && moved.type != EntryType::kDirectory) {
        return Error(ErrorCode::kInvalidArgument, "cannot replace directory");
      }
      NEXUS_RETURN_IF_ERROR(CheckRemovable(*existing, dst_uuid));
      replaced = *existing;
      auto& entries = dst_dir->buckets[dst_loc.bucket_index].entries;
      entries.erase(entries.begin() + static_cast<std::ptrdiff_t>(dst_loc.entry_index));
      dst_dirty.push_back(dst_loc.bucket_index);
      // Deleting may invalidate src_loc within the same directory: re-find.
      if (dst_dir == src_dir) {
        if (FindEntry(*src_dir, from_name, &src_loc) == nullptr) {
          return Error(ErrorCode::kInternal, "entry vanished during rename");
        }
      }
    }

    // Remove from source.
    auto& src_entries = src_dir->buckets[src_loc.bucket_index].entries;
    src_entries.erase(src_entries.begin() +
                      static_cast<std::ptrdiff_t>(src_loc.entry_index));

    // Re-pin the child's parent pointer when moving across directories.
    if (dst_uuid != src_uuid) {
      if (moved.type == EntryType::kDirectory) {
        NEXUS_ASSIGN_OR_RETURN(DirnodeState* child, LoadDirnode(moved.uuid, src_uuid));
        child->main.parent = dst_uuid;
        NEXUS_RETURN_IF_ERROR(FlushDirnode(*child, {}));
      } else if (moved.type == EntryType::kFile) {
        NEXUS_ASSIGN_OR_RETURN(FilenodeState* child, LoadFilenode(moved.uuid, src_uuid));
        if (!child->node.parent.IsNil()) {
          child->node.parent = dst_uuid;
          NEXUS_RETURN_IF_ERROR(FlushFilenode(*child));
        }
      }
    }

    // Insert into destination.
    moved.name = to_name;
    const std::uint32_t bucket_cap = session_->supernode.config.dirnode_bucket_size;
    std::size_t target = dst_dir->buckets.size();
    if (!dst_dir->buckets.empty() &&
        dst_dir->buckets.back().entries.size() < bucket_cap) {
      target = dst_dir->buckets.size() - 1;
    }
    if (target == dst_dir->buckets.size()) {
      DirBucket fresh;
      fresh.uuid = runtime_.rng().NewUuid();
      dst_dir->buckets.push_back(std::move(fresh));
      BucketRef ref;
      ref.uuid = dst_dir->buckets.back().uuid;
      dst_dir->main.buckets.push_back(ref);
    }
    dst_dir->buckets[target].entries.push_back(std::move(moved));
    dst_dirty.push_back(target);

    if (dst_dir == src_dir) {
      dst_dirty.push_back(src_loc.bucket_index);
      std::sort(dst_dirty.begin(), dst_dirty.end());
      dst_dirty.erase(std::unique(dst_dirty.begin(), dst_dirty.end()),
                      dst_dirty.end());
      NEXUS_RETURN_IF_ERROR(FlushDirnode(*dst_dir, dst_dirty));
    } else {
      NEXUS_RETURN_IF_ERROR(FlushDirnode(*src_dir, {src_loc.bucket_index}));
      std::sort(dst_dirty.begin(), dst_dirty.end());
      dst_dirty.erase(std::unique(dst_dirty.begin(), dst_dirty.end()),
                      dst_dirty.end());
      NEXUS_RETURN_IF_ERROR(FlushDirnode(*dst_dir, dst_dirty));
    }
    if (replaced.has_value()) {
      NEXUS_RETURN_IF_ERROR(ReleaseEntryObjects(*replaced, dst_uuid));
    }
    return Status::Ok();
  }();
  result = FinishMutation(result);

  for (const Uuid& u : locks) (void)UnlockMetaO(u);
  return result;
}

// ---- file content (encrypt/decrypt) -----------------------------------------------

Status NexusEnclave::EcallEncrypt(const std::string& path, ByteSpan plaintext) {
  return EcallEncryptRange(path, plaintext, 0, plaintext.size());
}

Status NexusEnclave::EcallEncryptRange(const std::string& path,
                                       ByteSpan plaintext,
                                       std::uint64_t dirty_offset,
                                       std::uint64_t dirty_len) {
  sgx::EnclaveRuntime::EcallScope scope(runtime_);
  NEXUS_RETURN_IF_ERROR(RequireMounted());
  NEXUS_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  if (parts.empty()) {
    return Error(ErrorCode::kInvalidArgument, "not a file");
  }
  const std::string name = parts.back();
  parts.pop_back();
  NEXUS_ASSIGN_OR_RETURN(ResolvedDir rd, ResolveDir(parts));
  NEXUS_ASSIGN_OR_RETURN(DirnodeState* dir, LoadDirnode(rd.uuid, rd.parent));
  NEXUS_RETURN_IF_ERROR(CheckDirAccess(dir->main, kPermWrite));
  const DirEntry* entry = FindEntry(*dir, name);
  if (entry == nullptr || entry->type != EntryType::kFile) {
    return Error(ErrorCode::kNotFound, "no such file: " + name);
  }
  const Uuid file_uuid = entry->uuid;
  const Uuid dir_uuid = rd.uuid;

  NEXUS_RETURN_IF_ERROR(LockMetaO(file_uuid));
  auto result = [&]() -> Status {
    NEXUS_ASSIGN_OR_RETURN(FilenodeState* file,
                           LoadFilenode(file_uuid, dir_uuid));
    Filenode& node = file->node;
    const Uuid old_data_uuid = node.data_uuid;
    const std::uint64_t old_size = node.size;
    const std::size_t old_chunk_count = node.chunks.size();
    const std::size_t cs = node.chunk_size;
    node.size = plaintext.size();
    const std::size_t chunk_count = node.ChunkCount();

    // Which chunks must be re-keyed and re-encrypted (SVI-A: fresh keys on
    // every content update, at chunk granularity)?
    //  * chunks overlapping the caller's dirty byte range,
    //  * brand-new chunks past the old end,
    //  * everything from the old final (possibly short) chunk onward when
    //    the file size changed - their plaintext extents shifted.
    auto needs_reencrypt = [&](std::size_t i) {
      const std::uint64_t chunk_begin = static_cast<std::uint64_t>(i) * cs;
      const std::uint64_t chunk_end = chunk_begin + cs;
      if (i >= old_chunk_count) return true;
      // On any size change the final chunk of BOTH layouts shifts extent:
      // the old short tail (growth) or the new short tail (shrink).
      if (node.size != old_size && old_chunk_count > 0 && chunk_count > 0 &&
          i >= std::min(old_chunk_count, chunk_count) - 1) {
        return true;
      }
      return dirty_len > 0 && dirty_offset < chunk_end &&
             dirty_offset + dirty_len > chunk_begin;
    };

    // Untouched chunks keep their ciphertext: splice it from the current
    // data object (a cache hit on the AFS client in the common case).
    std::size_t surviving = 0;
    for (std::size_t i = 0; i < chunk_count; ++i) {
      if (!needs_reencrypt(i)) ++surviving;
    }
    Bytes old_ciphertext;
    bool have_old = false;
    if (surviving > 0) {
      NEXUS_ASSIGN_OR_RETURN(ObjectBlob blob, FetchDataO(old_data_uuid));
      old_ciphertext = std::move(blob.data);
      have_old = true;
    }

    node.chunks.resize(chunk_count);

    // Ciphertext layout: chunk i at offset i*(cs+tag), so slices are
    // disjoint and chunk tasks can write them concurrently.
    const std::size_t ct_stride = cs + crypto::kGcmTagSize;
    Bytes ciphertext(plaintext.size() + chunk_count * crypto::kGcmTagSize);

    // Draw fresh key material serially, in ascending chunk order. RNG draw
    // order is part of the deterministic contract: parallel and serial
    // schedules must produce byte-identical filenodes and ciphertext for a
    // fixed seed, so nothing key-related may depend on task timing.
    std::vector<std::size_t> rekey;
    rekey.reserve(chunk_count);
    std::uint64_t changed_bytes = 0;
    for (std::size_t i = 0; i < chunk_count; ++i) {
      const std::size_t pt_len =
          std::min<std::size_t>(cs, plaintext.size() - i * cs);
      const std::size_t ct_len = pt_len + crypto::kGcmTagSize;

      if (!needs_reencrypt(i) && have_old) {
        // Untouched chunk: identical plaintext extent, identical layout
        // offset (every preceding chunk is full-sized).
        const std::size_t old_off = i * ct_stride;
        if (old_off + ct_len > old_ciphertext.size()) {
          return Error(ErrorCode::kIntegrityViolation,
                       "data object shorter than filenode describes");
        }
        std::copy_n(old_ciphertext.data() + old_off, ct_len,
                    ciphertext.data() + i * ct_stride);
        continue;
      }

      ChunkContext ctx;
      ctx.key = runtime_.rng().Array<16>();
      ctx.iv = runtime_.rng().Array<12>();
      node.chunks[i] = ctx;
      rekey.push_back(i);
      changed_bytes += ct_len;
    }

    // Full rewrites are copy-on-write: the new ciphertext goes to a fresh
    // UUID, the filenode flips to it atomically (journaled with everything
    // else this operation touched), and the superseded object is deleted
    // only after that commit — a crash at any prefix leaves the on-store
    // filenode pointing at a data object that still fully matches it.
    // Partial updates stay in place so only the dirty chunks ship (§VII's
    // bandwidth property); their torn-write window is confined to the
    // rewritten chunks and the old keys stay valid until commit.
    const bool full_rewrite = (surviving == 0);
    if (full_rewrite) {
      node.data_uuid = runtime_.rng().NewUuid();
    }

    // Seal the re-keyed chunks: one task per chunk, each writing a
    // disjoint ciphertext slice. Workers are pure compute — every ocall
    // below stays on this thread.
    parallel::ThreadPool* pool = EnsurePool();
    std::vector<Status> seal_status(rekey.size(), Status::Ok());
    const std::uint64_t batch_t0 = MonotonicNanos();
    parallel::TaskGroup group(pool);
    for (std::size_t r = 0; r < rekey.size(); ++r) {
      const std::size_t i = rekey[r];
      const std::size_t pt_len =
          std::min<std::size_t>(cs, plaintext.size() - i * cs);
      const ChunkContext ctx = node.chunks[i];
      Bytes aad = ChunkAad(node.uuid, static_cast<std::uint32_t>(i));
      const ByteSpan pt = plaintext.subspan(i * cs, pt_len);
      const MutableByteSpan out(ciphertext.data() + i * ct_stride,
                                pt_len + crypto::kGcmTagSize);
      group.Submit([r, ctx, aad = std::move(aad), pt, out,
                    &seal_status](parallel::WorkerContext&) {
        auto aes = crypto::Aes::Create(ctx.key);
        if (!aes.ok()) {
          seal_status[r] = aes.status();
          return;
        }
        seal_status[r] = crypto::GcmSealInto(*aes, ctx.iv, aad, pt, out);
      });
    }
    parallel_stats_.chunks_encrypted += rekey.size();

    // Ship the ciphertext. With a pool and a full rewrite the store is
    // pipelined: chunks are consumed in submission order as they finish
    // and streamed to the backend while later chunks still encrypt; the
    // object becomes visible atomically at commit. Partial updates (and
    // the serial configuration) keep the whole-object store.
    Status store_result = Status::Ok();
    if (pool != nullptr && full_rewrite && !rekey.empty()) {
      store_result = [&]() -> Status {
        NEXUS_ASSIGN_OR_RETURN(
            std::uint64_t handle,
            BeginDataStreamO(node.data_uuid, ciphertext.size()));
        for (std::size_t r = 0; r < rekey.size(); ++r) {
          group.Wait(r);
          if (!seal_status[r].ok()) {
            (void)AbortDataStreamO(handle);
            return seal_status[r];
          }
          const std::size_t i = rekey[r];
          const std::size_t seg_len = std::min<std::size_t>(
              ct_stride, ciphertext.size() - i * ct_stride);
          const Status seg = StoreDataSegmentO(
              handle, ByteSpan(ciphertext.data() + i * ct_stride, seg_len));
          if (!seg.ok()) {
            group.WaitAll();
            (void)AbortDataStreamO(handle);
            return seg;
          }
          ++parallel_stats_.segments_streamed;
        }
        return CommitDataStreamO(handle, changed_bytes);
      }();
      group.WaitAll(); // error paths may leave tasks in flight
      RecordParallelBatch(
          group, static_cast<double>(MonotonicNanos() - batch_t0) * 1e-9);
    } else {
      group.WaitAll();
      RecordParallelBatch(
          group, static_cast<double>(MonotonicNanos() - batch_t0) * 1e-9);
      for (const Status& s : seal_status) {
        if (!s.ok()) return s;
      }
      store_result = StoreDataO(node.data_uuid, ciphertext, changed_bytes);
    }
    NEXUS_RETURN_IF_ERROR(store_result);
    NEXUS_RETURN_IF_ERROR(FlushFilenode(*file));
    if (full_rewrite && (have_old || old_size > 0)) {
      (void)RemoveDataO(old_data_uuid); // deferred until commit when journaled
    }
    return Status::Ok();
  }();
  result = FinishMutation(result);
  const Status unlock = UnlockMetaO(file_uuid);
  return result.ok() ? unlock : result;
}

Result<Bytes> NexusEnclave::EcallDecrypt(const std::string& path) {
  sgx::EnclaveRuntime::EcallScope scope(runtime_);
  NEXUS_RETURN_IF_ERROR(RequireMounted());
  NEXUS_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  if (parts.empty()) {
    return Error(ErrorCode::kInvalidArgument, "not a file");
  }
  const std::string name = parts.back();
  parts.pop_back();
  NEXUS_ASSIGN_OR_RETURN(ResolvedDir dir_uuid_rd, ResolveDir(parts));
  const Uuid dir_uuid = dir_uuid_rd.uuid;
    const Uuid parent = dir_uuid_rd.parent;
  NEXUS_ASSIGN_OR_RETURN(DirnodeState* dir, LoadDirnode(dir_uuid, parent));
  NEXUS_RETURN_IF_ERROR(CheckDirAccess(dir->main, kPermRead));
  const DirEntry* entry = FindEntry(*dir, name);
  if (entry == nullptr || entry->type != EntryType::kFile) {
    return Error(ErrorCode::kNotFound, "no such file: " + name);
  }

  NEXUS_ASSIGN_OR_RETURN(FilenodeState* file, LoadFilenode(entry->uuid, dir_uuid));
  const Filenode& node = file->node;
  if (node.size == 0) return Bytes{};
  if (node.chunks.size() != node.ChunkCount()) {
    return Error(ErrorCode::kIntegrityViolation,
                 "filenode chunk table inconsistent with size");
  }

  const std::size_t cs = node.chunk_size;
  const std::size_t chunk_count = node.chunks.size();
  const std::size_t ct_stride = cs + crypto::kGcmTagSize;
  // The (authenticated) chunk table pins the exact data-object size, so
  // the output buffer is sized once up front and every chunk decrypts
  // straight into its slice — no quadratic append-and-regrow.
  const std::uint64_t expected_ct =
      node.size + chunk_count * crypto::kGcmTagSize;
  Bytes plaintext(node.size);

  auto open_chunk = [&](std::size_t i, const std::uint8_t* ct,
                        std::size_t ct_len, std::size_t pt_len) -> Status {
    const ChunkContext& ctx = node.chunks[i];
    auto aes = crypto::Aes::Create(ctx.key);
    if (!aes.ok()) return aes.status();
    return crypto::GcmOpenInto(
        *aes, ctx.iv, ChunkAad(node.uuid, static_cast<std::uint32_t>(i)),
        ByteSpan(ct, ct_len),
        MutableByteSpan(plaintext.data() + i * cs, pt_len));
  };

  parallel::ThreadPool* pool = EnsurePool();
  if (pool == nullptr) {
    // Serial configuration: whole-object fetch, chunks verified in place.
    NEXUS_ASSIGN_OR_RETURN(ObjectBlob blob, FetchDataO(node.data_uuid));
    if (blob.data.size() < expected_ct) {
      return Error(ErrorCode::kIntegrityViolation, "data object truncated");
    }
    if (blob.data.size() > expected_ct) {
      return Error(ErrorCode::kIntegrityViolation,
                   "data object has trailing bytes");
    }
    for (std::size_t i = 0; i < chunk_count; ++i) {
      const std::size_t pt_len = std::min<std::size_t>(cs, node.size - i * cs);
      const Status s = open_chunk(i, blob.data.data() + i * ct_stride,
                                  pt_len + crypto::kGcmTagSize, pt_len);
      if (!s.ok()) {
        return Error(ErrorCode::kIntegrityViolation,
                     "file chunk verification failed (tampering?)");
      }
    }
    return plaintext;
  }

  // Parallel configuration: ranged fetches overlap GCM verification — a
  // segment's chunks are dispatched to the pool while the next segment is
  // still in the (ocall) transfer. Segment boundaries align to whole
  // chunks; sized to keep every worker fed without degenerating to one
  // fetch per chunk on large files.
  std::size_t seg_chunks =
      std::max<std::size_t>(1, (std::size_t{4} << 20) / ct_stride);
  const std::size_t spread =
      (chunk_count + 2 * pool->worker_count() - 1) /
      (2 * pool->worker_count());
  seg_chunks = std::max<std::size_t>(1, std::min(seg_chunks, spread));

  // Announce the sequential scan before the first blocking fetch: the
  // transport can start pulling ciphertext through its async readahead
  // window while the enclave is still decrypting earlier segments.
  PrefetchDataO(node.data_uuid, 0, expected_ct);

  std::vector<Status> open_status(chunk_count, Status::Ok());
  std::vector<RangeBlob> segments; // keeps ciphertext alive until WaitAll
  segments.reserve((chunk_count + seg_chunks - 1) / seg_chunks);
  const std::uint64_t batch_t0 = MonotonicNanos();
  Status fetch_result = Status::Ok();
  {
    parallel::TaskGroup group(pool);
    for (std::size_t c = 0; c < chunk_count && fetch_result.ok();
         c += seg_chunks) {
      const std::size_t n = std::min(seg_chunks, chunk_count - c);
      const std::uint64_t seg_off = static_cast<std::uint64_t>(c) * ct_stride;
      const std::uint64_t seg_end =
          std::min<std::uint64_t>(expected_ct,
                                  static_cast<std::uint64_t>(c + n) * ct_stride);
      auto range = FetchDataRangeO(node.data_uuid, seg_off, seg_end - seg_off);
      if (!range.ok()) {
        fetch_result = range.status();
        break;
      }
      if (range->object_size != expected_ct) {
        fetch_result = Error(ErrorCode::kIntegrityViolation,
                             range->object_size < expected_ct
                                 ? "data object truncated"
                                 : "data object has trailing bytes");
        break;
      }
      if (range->data.size() != seg_end - seg_off) {
        fetch_result =
            Error(ErrorCode::kIntegrityViolation, "data object truncated");
        break;
      }
      segments.push_back(std::move(*range));
      const std::uint8_t* base = segments.back().data.data();
      for (std::size_t j = 0; j < n; ++j) {
        const std::size_t i = c + j;
        const std::size_t pt_len =
            std::min<std::size_t>(cs, node.size - i * cs);
        const std::uint8_t* ct = base + j * ct_stride;
        group.Submit([&open_chunk, &open_status, i, ct,
                      pt_len](parallel::WorkerContext&) {
          open_status[i] =
              open_chunk(i, ct, pt_len + crypto::kGcmTagSize, pt_len);
        });
      }
      ++parallel_stats_.segments_streamed;
    }
    group.WaitAll();
    parallel_stats_.chunks_decrypted += chunk_count;
    RecordParallelBatch(
        group, static_cast<double>(MonotonicNanos() - batch_t0) * 1e-9);
  }
  NEXUS_RETURN_IF_ERROR(fetch_result);
  for (const Status& s : open_status) {
    if (!s.ok()) {
      return Error(ErrorCode::kIntegrityViolation,
                   "file chunk verification failed (tampering?)");
    }
  }
  return plaintext;
}


// ---- volume audit (fsck) -----------------------------------------------------

Status NexusEnclave::AuditDirectory(const Uuid& dir_uuid, const Uuid& parent,
                                    bool deep, VolumeAudit& audit) {
  NEXUS_ASSIGN_OR_RETURN(DirnodeState* dir, LoadDirnode(dir_uuid, parent));
  ++audit.directories;
  audit.reachable_meta.push_back(dir_uuid);
  audit.buckets += dir->buckets.size();
  for (const BucketRef& ref : dir->main.buckets) {
    audit.reachable_meta.push_back(ref.uuid);
  }

  // Copy the listing: recursion below may evict `dir` from the cache.
  std::vector<DirEntry> entries;
  for (const DirBucket& bucket : dir->buckets) {
    entries.insert(entries.end(), bucket.entries.begin(), bucket.entries.end());
  }

  for (const DirEntry& entry : entries) {
    switch (entry.type) {
      case EntryType::kDirectory:
        NEXUS_RETURN_IF_ERROR(
            AuditDirectory(entry.uuid, dir_uuid, deep, audit));
        break;
      case EntryType::kSymlink:
        ++audit.symlinks;
        break;
      case EntryType::kFile: {
        NEXUS_ASSIGN_OR_RETURN(FilenodeState* file,
                               LoadFilenode(entry.uuid, dir_uuid));
        ++audit.files;
        audit.plaintext_bytes += file->node.size;
        audit.reachable_meta.push_back(entry.uuid);
        audit.reachable_data.push_back(file->node.data_uuid);
        if (deep && file->node.size > 0) {
          const Filenode node = file->node; // stable copy across the fetch
          NEXUS_ASSIGN_OR_RETURN(ObjectBlob blob, FetchDataO(node.data_uuid));
          std::size_t pos = 0;
          for (std::size_t i = 0; i < node.chunks.size(); ++i) {
            const std::size_t pt_len = std::min<std::size_t>(
                node.chunk_size, node.size - i * node.chunk_size);
            const std::size_t ct_len = pt_len + crypto::kGcmTagSize;
            if (pos + ct_len > blob.data.size()) {
              return Error(ErrorCode::kIntegrityViolation,
                           "audit: data object truncated");
            }
            NEXUS_ASSIGN_OR_RETURN(crypto::Aes aes,
                                   crypto::Aes::Create(node.chunks[i].key));
            auto chunk = crypto::GcmOpen(
                aes, node.chunks[i].iv,
                ChunkAad(node.uuid, static_cast<std::uint32_t>(i)),
                ByteSpan(blob.data.data() + pos, ct_len));
            if (!chunk.ok()) {
              return Error(ErrorCode::kIntegrityViolation,
                           "audit: file chunk verification failed");
            }
            pos += ct_len;
          }
          if (pos != blob.data.size()) {
            return Error(ErrorCode::kIntegrityViolation,
                         "audit: data object has trailing bytes");
          }
        }
        break;
      }
    }
  }
  return Status::Ok();
}

Result<NexusEnclave::VolumeAudit> NexusEnclave::EcallVerifyVolume(bool deep) {
  sgx::EnclaveRuntime::EcallScope scope(runtime_);
  NEXUS_RETURN_IF_ERROR(RequireMounted());
  NEXUS_RETURN_IF_ERROR(ReloadSupernode());
  VolumeAudit audit;
  audit.reachable_meta.push_back(session_->volume_uuid);
  NEXUS_RETURN_IF_ERROR(AuditDirectory(session_->supernode.root_dir, Uuid(),
                                       deep, audit));
  return audit;
}

// ---- maintenance -----------------------------------------------------------------

void NexusEnclave::EcallDropCaches() {
  sgx::EnclaveRuntime::EcallScope scope(runtime_);
  dirnode_cache_.clear();
  filenode_cache_.clear();
}

Status NexusEnclave::EcallUnmount() {
  if (!session_.has_value()) {
    return Error(ErrorCode::kInvalidArgument, "not mounted");
  }
  // Called both as a top-level ecall and internally (revocation path, where
  // we are already inside the enclave) — enter only if not already in.
  std::optional<sgx::EnclaveRuntime::EcallScope> scope;
  if (!runtime_.inside()) scope.emplace(runtime_);
  if (journal_.has_value()) {
    // Best-effort flush: commit whatever is pending and checkpoint it all.
    // On failure the journal records stay behind and the next mount's
    // recovery finishes the job.
    journal_->explicit_batch = false;
    (void)CommitPending();
    (void)CheckpointJournal();
    journal_.reset();
  }
  SecureZero(session_->rootkey);
  session_.reset();
  dirnode_cache_.clear();
  filenode_cache_.clear();
  return Status::Ok();
}

Result<UserId> NexusEnclave::EcallCurrentUser() const {
  NEXUS_RETURN_IF_ERROR(RequireMounted());
  return session_->user;
}

} // namespace nexus::enclave
