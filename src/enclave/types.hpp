// Shared trusted-code types: users, permissions, directory entries.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/uuid.hpp"

namespace nexus::enclave {

using UserId = std::uint32_t;
inline constexpr UserId kOwnerUserId = 0;

/// Access rights, directory-granular (paper §IV-C). Bitmask.
enum Perm : std::uint8_t {
  kPermNone = 0,
  kPermRead = 1 << 0,
  kPermWrite = 1 << 1,
};

struct AclEntry {
  UserId user = 0;
  std::uint8_t perms = kPermNone;
};

/// An authorized identity stored in the supernode: (name, public key).
struct UserRecord {
  UserId id = 0;
  std::string name;
  ByteArray<32> public_key{}; // Ed25519
};

enum class EntryType : std::uint8_t {
  kFile = 0,
  kDirectory = 1,
  kSymlink = 2,
};

/// One name->object mapping inside a dirnode bucket.
struct DirEntry {
  std::string name;
  Uuid uuid;                  // metadata object of the child (nil for symlinks)
  EntryType type = EntryType::kFile;
  std::string symlink_target; // only for kSymlink
};

/// Volume-wide tunables, fixed at volume creation and stored in the
/// supernode.
struct VolumeConfig {
  std::uint32_t chunk_size = 1 << 20;       // 1 MB, as in the evaluation
  std::uint32_t dirnode_bucket_size = 128;  // entries per bucket (§V-B)
};

/// Basic attributes returned by lookup.
struct Attributes {
  EntryType type = EntryType::kFile;
  std::uint64_t size = 0; // plaintext bytes; 0 for directories
  Uuid uuid;
};

} // namespace nexus::enclave
