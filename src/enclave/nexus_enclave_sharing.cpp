// Authentication (§IV-B), access-control administration (§IV-C) and the
// attested rootkey-exchange protocol (§IV-B1, Fig. 4).
#include <algorithm>

#include "common/serial.hpp"
#include "crypto/aes.hpp"
#include "crypto/gcm.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "crypto/x25519.hpp"
#include "enclave/nexus_enclave.hpp"

namespace nexus::enclave {
namespace {

// Derives the rootkey-wrapping AEAD key from an ECDH shared secret.
Key128 KeyFromSharedSecret(const ByteArray<32>& shared) {
  const Bytes okm = crypto::Hkdf({}, shared, AsBytes("nexus-rootkey-exchange"), 16);
  return ToArray<16>(okm);
}

} // namespace

// ---- authentication ---------------------------------------------------------

Result<ByteArray<16>> NexusEnclave::EcallAuthChallenge(
    const ByteArray<32>& user_public_key, ByteSpan sealed_rootkey,
    const Uuid& volume_uuid) {
  sgx::EnclaveRuntime::EcallScope scope(runtime_);
  if (session_.has_value()) {
    return Error(ErrorCode::kInvalidArgument, "a volume is already mounted");
  }
  // Unsealing proves the rootkey was sealed by this enclave on this CPU.
  NEXUS_ASSIGN_OR_RETURN(Bytes rootkey, runtime_.Unseal(sealed_rootkey));
  if (rootkey.size() != 16) {
    return Error(ErrorCode::kIntegrityViolation, "sealed rootkey has bad size");
  }

  PendingAuth pending;
  pending.user_public_key = user_public_key;
  pending.rootkey = ToArray<16>(rootkey);
  SecureZero(rootkey);
  pending.volume_uuid = volume_uuid;
  pending.nonce = runtime_.rng().Array<16>();

  // Crash recovery happens here — after the rootkey is proven, before the
  // supernode is fetched — so an uncheckpointed supernode update from a
  // crashed session is replayed onto the store before authentication reads
  // it. Recovery is unconditional (even with write-journaling configured
  // off): committed transactions must never be lost.
  auto recovered = RecoverJournal(journal::DeriveJournalKey(pending.rootkey),
                                  pending.volume_uuid);
  if (!recovered.ok()) return recovered.status();
  pending.journal_next_seq = recovered->next_seq;
  pending.journal_chain_hash = recovered->chain_hash;

  pending_auth_ = pending;
  return pending.nonce;
}

Status NexusEnclave::EcallAuthResponse(const ByteArray<64>& signature) {
  sgx::EnclaveRuntime::EcallScope scope(runtime_);
  if (!pending_auth_.has_value()) {
    return Error(ErrorCode::kInvalidArgument, "no authentication in progress");
  }
  PendingAuth pending = *pending_auth_;
  pending_auth_.reset();

  // Fetch the encrypted supernode; the user signed over exactly these bytes
  // (nonce || encrypted-supernode), binding the response to volume state.
  NEXUS_ASSIGN_OR_RETURN(ObjectBlob blob, FetchMetaO(pending.volume_uuid));
  const Bytes signed_payload = Concat(pending.nonce, blob.data);
  if (!crypto::Ed25519Verify(pending.user_public_key, signed_payload, signature)) {
    return Error(ErrorCode::kPermissionDenied, "authentication signature invalid");
  }

  NEXUS_ASSIGN_OR_RETURN(
      DecodedMeta meta,
      DecodeMetadata(blob.data, pending.rootkey, MetaType::kSupernode,
                     pending.volume_uuid));
  NEXUS_RETURN_IF_ERROR(
      CheckAndRecordVersion(pending.volume_uuid, meta.preamble.version));
  NEXUS_ASSIGN_OR_RETURN(Supernode supernode, Supernode::Deserialize(meta.body));

  // The key must belong to an authorized user of this volume.
  const UserRecord* user = supernode.FindUserByKey(pending.user_public_key);
  if (user == nullptr) {
    return Error(ErrorCode::kPermissionDenied,
                 "public key not in the volume user table");
  }

  Session session;
  session.rootkey = pending.rootkey;
  session.user = user->id;
  session.volume_uuid = pending.volume_uuid;
  session.supernode = std::move(supernode);
  session.supernode_storage_version = blob.storage_version;
  session_ = std::move(session);
  if (journal_enabled_) {
    EngageJournal(pending.journal_next_seq, pending.journal_chain_hash);
  }
  return Status::Ok();
}

// ---- administration (§IV-C) ----------------------------------------------------

Status NexusEnclave::EcallAddUser(const std::string& name,
                                  const ByteArray<32>& public_key) {
  sgx::EnclaveRuntime::EcallScope scope(runtime_);
  NEXUS_RETURN_IF_ERROR(RequireMounted());
  if (!IsOwner()) {
    return Error(ErrorCode::kPermissionDenied, "only the owner manages users");
  }
  NEXUS_RETURN_IF_ERROR(LockMetaO(session_->volume_uuid));
  auto result = [&]() -> Status {
    NEXUS_RETURN_IF_ERROR(ReloadSupernode());
    Supernode& sn = session_->supernode;
    if (sn.FindUserByName(name) != nullptr || sn.FindUserByKey(public_key) != nullptr) {
      return Error(ErrorCode::kAlreadyExists, "user already present: " + name);
    }
    sn.users.push_back(UserRecord{sn.next_user_id++, name, public_key});
    const std::uint64_t version = ++min_versions_[session_->volume_uuid];
    NEXUS_ASSIGN_OR_RETURN(
        Bytes blob,
        EncodeAndStoreMeta(MetaType::kSupernode, session_->volume_uuid, version,
                           sn.Serialize(), &session_->supernode_storage_version));
    (void)blob;
    return Status::Ok();
  }();
  result = FinishMutation(result);
  const Status unlock = UnlockMetaO(session_->volume_uuid);
  return result.ok() ? unlock : result;
}

Status NexusEnclave::EcallRemoveUser(const std::string& name) {
  sgx::EnclaveRuntime::EcallScope scope(runtime_);
  NEXUS_RETURN_IF_ERROR(RequireMounted());
  if (!IsOwner()) {
    return Error(ErrorCode::kPermissionDenied, "only the owner manages users");
  }
  NEXUS_RETURN_IF_ERROR(LockMetaO(session_->volume_uuid));
  auto result = [&]() -> Status {
    NEXUS_RETURN_IF_ERROR(ReloadSupernode());
    Supernode& sn = session_->supernode;
    const UserRecord* user = sn.FindUserByName(name);
    if (user == nullptr) {
      return Error(ErrorCode::kNotFound, "no such user: " + name);
    }
    if (user->id == kOwnerUserId) {
      return Error(ErrorCode::kInvalidArgument, "the owner is immutable");
    }
    // Revocation = one metadata re-encryption (§IV-C). The removed user's
    // sealed rootkey becomes useless: mounting re-checks the user table.
    sn.users.erase(std::remove_if(sn.users.begin(), sn.users.end(),
                                  [&](const UserRecord& u) { return u.name == name; }),
                   sn.users.end());
    const std::uint64_t version = ++min_versions_[session_->volume_uuid];
    NEXUS_ASSIGN_OR_RETURN(
        Bytes blob,
        EncodeAndStoreMeta(MetaType::kSupernode, session_->volume_uuid, version,
                           sn.Serialize(), &session_->supernode_storage_version));
    (void)blob;
    return Status::Ok();
  }();
  result = FinishMutation(result);
  const Status unlock = UnlockMetaO(session_->volume_uuid);
  return result.ok() ? unlock : result;
}

Result<std::vector<UserRecord>> NexusEnclave::EcallListUsers() {
  sgx::EnclaveRuntime::EcallScope scope(runtime_);
  NEXUS_RETURN_IF_ERROR(RequireMounted());
  NEXUS_RETURN_IF_ERROR(ReloadSupernode());
  return session_->supernode.users;
}

Status NexusEnclave::EcallSetAcl(const std::string& dirpath,
                                 const std::string& username,
                                 std::uint8_t perms) {
  sgx::EnclaveRuntime::EcallScope scope(runtime_);
  NEXUS_RETURN_IF_ERROR(RequireMounted());
  if (!IsOwner()) {
    return Error(ErrorCode::kPermissionDenied, "only the owner manages ACLs");
  }
  NEXUS_RETURN_IF_ERROR(ReloadSupernode());
  const UserRecord* user = session_->supernode.FindUserByName(username);
  if (user == nullptr) {
    return Error(ErrorCode::kNotFound, "no such user: " + username);
  }

  NEXUS_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(dirpath));
  NEXUS_ASSIGN_OR_RETURN(ResolvedDir dir_uuid_rd, ResolveDir(parts));
  const Uuid dir_uuid = dir_uuid_rd.uuid;

  NEXUS_RETURN_IF_ERROR(LockMetaO(dir_uuid));
  auto result = [&]() -> Status {
        const Uuid parent = dir_uuid_rd.parent;
    NEXUS_ASSIGN_OR_RETURN(DirnodeState* dir,
                           LoadDirnode(dir_uuid, parent));
    dir->main.SetAcl(user->id, perms);
    // Only the main object is re-encrypted: revocation cost is independent
    // of the amount of file data underneath (§VII-E).
    return FlushDirnode(*dir, {});
  }();
  result = FinishMutation(result);
  const Status unlock = UnlockMetaO(dir_uuid);
  return result.ok() ? unlock : result;
}

// ---- attested rootkey exchange (Fig. 4) ------------------------------------------

// Identity blob layout: [quote(var)] [ecdh_public(32)]
// Grant blob layout:    [recipient_ecdh_pub(32)] [eph_pub(32)] [iv(12)]
//                       [wrapped_rootkey(var)]

Result<Bytes> NexusEnclave::EcallExportIdentity() {
  sgx::EnclaveRuntime::EcallScope scope(runtime_);
  // The quote binds the enclave ECDH public key as report data: a verifier
  // learns "this exact key lives inside a genuine NEXUS enclave".
  ByteArray<sgx::kReportDataSize> report{};
  std::copy(ecdh_public_.begin(), ecdh_public_.end(), report.begin());
  const sgx::Quote quote = runtime_.CreateQuote(report);

  Writer w;
  w.Var(quote.Serialize());
  w.Raw(ecdh_public_);
  return std::move(w).Take();
}

Result<Bytes> NexusEnclave::EcallGrantRootkey(
    ByteSpan peer_identity_blob, const ByteArray<64>& peer_signature,
    const ByteArray<32>& peer_identity_key) {
  sgx::EnclaveRuntime::EcallScope scope(runtime_);
  NEXUS_RETURN_IF_ERROR(RequireMounted());

  // The peer signed their identity blob with their (externally trusted)
  // user key — SSH-style key distribution (§IV-B1).
  if (!crypto::Ed25519Verify(peer_identity_key, peer_identity_blob,
                             peer_signature)) {
    return Error(ErrorCode::kPermissionDenied,
                 "peer identity signature invalid");
  }

  Reader r(peer_identity_blob);
  NEXUS_ASSIGN_OR_RETURN(Bytes quote_bytes, r.Var(4096));
  NEXUS_ASSIGN_OR_RETURN(Bytes peer_pub_raw, r.Raw(32));
  if (!r.AtEnd()) {
    return Error(ErrorCode::kInvalidArgument, "trailing identity bytes");
  }
  const auto peer_ecdh_pub = ToArray<32>(peer_pub_raw);

  // Remote attestation: only a genuine NEXUS enclave may receive the key.
  NEXUS_ASSIGN_OR_RETURN(sgx::Quote quote, sgx::Quote::Deserialize(quote_bytes));
  NEXUS_RETURN_IF_ERROR(
      sgx::VerifyQuote(quote, intel_root_public_key_, runtime_.measurement()));
  // The quoted report data must bind exactly the ECDH key we were handed.
  if (!std::equal(peer_ecdh_pub.begin(), peer_ecdh_pub.end(),
                  quote.report_data.begin())) {
    return Error(ErrorCode::kIntegrityViolation,
                 "ECDH key not bound by the quote");
  }

  // Ephemeral ECDH: the private half never leaves this scope.
  ByteArray<32> eph_private = crypto::X25519ClampScalar(runtime_.rng().Array<32>());
  const ByteArray<32> eph_public = crypto::X25519BasePoint(eph_private);
  const ByteArray<32> shared = crypto::X25519(eph_private, peer_ecdh_pub);
  SecureZero(eph_private);

  Key128 wrap_key = KeyFromSharedSecret(shared);
  NEXUS_ASSIGN_OR_RETURN(crypto::Aes aes, crypto::Aes::Create(wrap_key));
  SecureZero(wrap_key);
  const Bytes iv = runtime_.rng().Generate(crypto::kGcmIvSize);
  // AAD ties the grant to the exact recipient key and volume.
  const Bytes aad = Concat(peer_ecdh_pub, session_->volume_uuid.span());
  NEXUS_ASSIGN_OR_RETURN(Bytes wrapped,
                         crypto::GcmSeal(aes, iv, aad, session_->rootkey));

  Writer w;
  w.Raw(peer_ecdh_pub);
  w.Id(session_->volume_uuid);
  w.Raw(eph_public);
  w.Raw(iv);
  w.Var(wrapped);
  return std::move(w).Take();
}

Result<Bytes> NexusEnclave::EcallAcceptRootkey(
    ByteSpan grant_blob, const ByteArray<64>& grant_signature,
    const ByteArray<32>& granter_identity_key) {
  sgx::EnclaveRuntime::EcallScope scope(runtime_);

  if (!crypto::Ed25519Verify(granter_identity_key, grant_blob, grant_signature)) {
    return Error(ErrorCode::kPermissionDenied, "grant signature invalid");
  }

  Reader r(grant_blob);
  NEXUS_ASSIGN_OR_RETURN(Bytes recipient_raw, r.Raw(32));
  NEXUS_ASSIGN_OR_RETURN(Uuid volume_uuid, r.Id());
  NEXUS_ASSIGN_OR_RETURN(Bytes eph_raw, r.Raw(32));
  NEXUS_ASSIGN_OR_RETURN(Bytes iv, r.Raw(crypto::kGcmIvSize));
  NEXUS_ASSIGN_OR_RETURN(Bytes wrapped, r.Var(256));
  if (!r.AtEnd()) {
    return Error(ErrorCode::kInvalidArgument, "trailing grant bytes");
  }

  // The grant must be addressed to *this* enclave's ECDH key.
  const auto recipient = ToArray<32>(recipient_raw);
  if (recipient != ecdh_public_) {
    return Error(ErrorCode::kPermissionDenied,
                 "grant addressed to a different enclave");
  }

  // Only this enclave holds the matching private key (quote-bound), so
  // only genuine NEXUS enclaves can reach this derivation.
  const ByteArray<32> shared = crypto::X25519(ecdh_private_, ToArray<32>(eph_raw));
  Key128 wrap_key = KeyFromSharedSecret(shared);
  NEXUS_ASSIGN_OR_RETURN(crypto::Aes aes, crypto::Aes::Create(wrap_key));
  SecureZero(wrap_key);
  const Bytes aad = Concat(ecdh_public_, volume_uuid.span());
  auto rootkey = crypto::GcmOpen(aes, iv, aad, wrapped);
  if (!rootkey.ok() || rootkey->size() != 16) {
    return Error(ErrorCode::kIntegrityViolation, "grant decryption failed");
  }

  // Seal to the local machine; the caller stores it and mounts via the
  // normal authentication protocol.
  NEXUS_ASSIGN_OR_RETURN(Bytes sealed, runtime_.Seal(*rootkey));
  SecureZero(*rootkey);
  return sealed;
}


// ---- synchronous mutual-attestation exchange (SVI-B, PFS variant) -------------

// Offer blob:  [quote(var)] [eph_pub_r(32)]
// Grant blob:  [recipient_eph_pub(32)] [volume(16)] [quote(var)]
//              [eph_pub_g(32)] [iv(12)] [wrapped_rootkey(var)]

Result<Bytes> NexusEnclave::EcallEphemeralOffer() {
  sgx::EnclaveRuntime::EcallScope scope(runtime_);
  ByteArray<32> eph_priv = crypto::X25519ClampScalar(runtime_.rng().Array<32>());
  const ByteArray<32> eph_pub = crypto::X25519BasePoint(eph_priv);
  ephemeral_private_ = eph_priv;
  SecureZero(eph_priv);

  ByteArray<sgx::kReportDataSize> report{};
  std::copy(eph_pub.begin(), eph_pub.end(), report.begin());
  const sgx::Quote quote = runtime_.CreateQuote(report);

  Writer w;
  w.Var(quote.Serialize());
  w.Raw(eph_pub);
  return std::move(w).Take();
}

Result<Bytes> NexusEnclave::EcallEphemeralGrant(
    ByteSpan offer_blob, const ByteArray<64>& offer_signature,
    const ByteArray<32>& peer_identity_key) {
  sgx::EnclaveRuntime::EcallScope scope(runtime_);
  NEXUS_RETURN_IF_ERROR(RequireMounted());

  if (!crypto::Ed25519Verify(peer_identity_key, offer_blob, offer_signature)) {
    return Error(ErrorCode::kPermissionDenied, "offer signature invalid");
  }
  Reader r(offer_blob);
  NEXUS_ASSIGN_OR_RETURN(Bytes quote_bytes, r.Var(4096));
  NEXUS_ASSIGN_OR_RETURN(Bytes peer_pub_raw, r.Raw(32));
  if (!r.AtEnd()) {
    return Error(ErrorCode::kInvalidArgument, "trailing offer bytes");
  }
  const auto peer_eph_pub = ToArray<32>(peer_pub_raw);

  NEXUS_ASSIGN_OR_RETURN(sgx::Quote quote, sgx::Quote::Deserialize(quote_bytes));
  NEXUS_RETURN_IF_ERROR(
      sgx::VerifyQuote(quote, intel_root_public_key_, runtime_.measurement()));
  if (!std::equal(peer_eph_pub.begin(), peer_eph_pub.end(),
                  quote.report_data.begin())) {
    return Error(ErrorCode::kIntegrityViolation,
                 "ephemeral key not bound by the quote");
  }

  // Our own fresh ephemeral key, quoted for mutual attestation, destroyed
  // as soon as the shared secret is derived -- this is what buys PFS.
  ByteArray<32> eph_priv = crypto::X25519ClampScalar(runtime_.rng().Array<32>());
  const ByteArray<32> eph_pub = crypto::X25519BasePoint(eph_priv);
  ByteArray<sgx::kReportDataSize> report{};
  std::copy(eph_pub.begin(), eph_pub.end(), report.begin());
  const sgx::Quote own_quote = runtime_.CreateQuote(report);

  const ByteArray<32> shared = crypto::X25519(eph_priv, peer_eph_pub);
  SecureZero(eph_priv);

  Key128 wrap_key = KeyFromSharedSecret(shared);
  NEXUS_ASSIGN_OR_RETURN(crypto::Aes aes, crypto::Aes::Create(wrap_key));
  SecureZero(wrap_key);
  const Bytes iv = runtime_.rng().Generate(crypto::kGcmIvSize);
  const Bytes aad = Concat(peer_eph_pub, session_->volume_uuid.span());
  NEXUS_ASSIGN_OR_RETURN(Bytes wrapped,
                         crypto::GcmSeal(aes, iv, aad, session_->rootkey));

  Writer w;
  w.Raw(peer_eph_pub);
  w.Id(session_->volume_uuid);
  w.Var(own_quote.Serialize());
  w.Raw(eph_pub);
  w.Raw(iv);
  w.Var(wrapped);
  return std::move(w).Take();
}

Result<Bytes> NexusEnclave::EcallEphemeralAccept(
    ByteSpan grant_blob, const ByteArray<64>& grant_signature,
    const ByteArray<32>& granter_identity_key) {
  sgx::EnclaveRuntime::EcallScope scope(runtime_);
  if (!ephemeral_private_.has_value()) {
    return Error(ErrorCode::kInvalidArgument, "no ephemeral offer pending");
  }

  if (!crypto::Ed25519Verify(granter_identity_key, grant_blob, grant_signature)) {
    return Error(ErrorCode::kPermissionDenied, "grant signature invalid");
  }
  Reader r(grant_blob);
  NEXUS_ASSIGN_OR_RETURN(Bytes recipient_raw, r.Raw(32));
  NEXUS_ASSIGN_OR_RETURN(Uuid volume_uuid, r.Id());
  NEXUS_ASSIGN_OR_RETURN(Bytes quote_bytes, r.Var(4096));
  NEXUS_ASSIGN_OR_RETURN(Bytes granter_pub_raw, r.Raw(32));
  NEXUS_ASSIGN_OR_RETURN(Bytes iv, r.Raw(crypto::kGcmIvSize));
  NEXUS_ASSIGN_OR_RETURN(Bytes wrapped, r.Var(256));
  if (!r.AtEnd()) {
    return Error(ErrorCode::kInvalidArgument, "trailing grant bytes");
  }

  const ByteArray<32> my_eph_pub = crypto::X25519BasePoint(*ephemeral_private_);
  if (ToArray<32>(recipient_raw) != my_eph_pub) {
    return Error(ErrorCode::kPermissionDenied,
                 "grant addressed to a different offer");
  }

  // Mutual attestation: the granter's ephemeral key must also come from a
  // genuine NEXUS enclave.
  const auto granter_eph_pub = ToArray<32>(granter_pub_raw);
  NEXUS_ASSIGN_OR_RETURN(sgx::Quote quote, sgx::Quote::Deserialize(quote_bytes));
  NEXUS_RETURN_IF_ERROR(
      sgx::VerifyQuote(quote, intel_root_public_key_, runtime_.measurement()));
  if (!std::equal(granter_eph_pub.begin(), granter_eph_pub.end(),
                  quote.report_data.begin())) {
    return Error(ErrorCode::kIntegrityViolation,
                 "granter key not bound by the quote");
  }

  const ByteArray<32> shared =
      crypto::X25519(*ephemeral_private_, granter_eph_pub);
  // One-shot: the offer is consumed whatever happens next.
  SecureZero(*ephemeral_private_);
  ephemeral_private_.reset();

  Key128 wrap_key = KeyFromSharedSecret(shared);
  NEXUS_ASSIGN_OR_RETURN(crypto::Aes aes, crypto::Aes::Create(wrap_key));
  SecureZero(wrap_key);
  const Bytes aad = Concat(my_eph_pub, volume_uuid.span());
  auto rootkey = crypto::GcmOpen(aes, iv, aad, wrapped);
  if (!rootkey.ok() || rootkey->size() != 16) {
    return Error(ErrorCode::kIntegrityViolation, "grant decryption failed");
  }
  NEXUS_ASSIGN_OR_RETURN(Bytes sealed, runtime_.Seal(*rootkey));
  SecureZero(*rootkey);
  return sealed;
}

// ---- sealed version table (SVI-C) ---------------------------------------------

Result<Bytes> NexusEnclave::EcallSealVersionTable() {
  sgx::EnclaveRuntime::EcallScope scope(runtime_);
  Writer w;
  w.U32(static_cast<std::uint32_t>(min_versions_.size()));
  for (const auto& [uuid, version] : min_versions_) {
    w.Id(uuid);
    w.U64(version);
  }
  return runtime_.Seal(w.bytes());
}

Status NexusEnclave::EcallLoadVersionTable(ByteSpan sealed) {
  sgx::EnclaveRuntime::EcallScope scope(runtime_);
  NEXUS_ASSIGN_OR_RETURN(Bytes raw, runtime_.Unseal(sealed));
  Reader r(raw);
  NEXUS_ASSIGN_OR_RETURN(std::uint32_t n, r.U32());
  for (std::uint32_t i = 0; i < n; ++i) {
    NEXUS_ASSIGN_OR_RETURN(Uuid uuid, r.Id());
    NEXUS_ASSIGN_OR_RETURN(std::uint64_t version, r.U64());
    auto [it, inserted] = min_versions_.try_emplace(uuid, version);
    if (!inserted) it->second = std::max(it->second, version);
  }
  if (!r.AtEnd()) {
    return Error(ErrorCode::kIntegrityViolation, "trailing version-table bytes");
  }
  return Status::Ok();
}

Result<Bytes> NexusEnclave::EcallSealIdentityKey() {
  sgx::EnclaveRuntime::EcallScope scope(runtime_);
  return runtime_.Seal(ecdh_private_);
}

Status NexusEnclave::EcallLoadIdentityKey(ByteSpan sealed) {
  sgx::EnclaveRuntime::EcallScope scope(runtime_);
  NEXUS_ASSIGN_OR_RETURN(Bytes priv, runtime_.Unseal(sealed));
  if (priv.size() != 32) {
    return Error(ErrorCode::kIntegrityViolation, "bad sealed identity key");
  }
  ecdh_private_ = ToArray<32>(priv);
  SecureZero(priv);
  ecdh_public_ = crypto::X25519BasePoint(ecdh_private_);
  return Status::Ok();
}

} // namespace nexus::enclave
