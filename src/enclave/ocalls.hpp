// The enclave's view of the untrusted world (ocall interface).
//
// Mirrors the paper's design (§V): ~10 ocalls that let the enclave read and
// write opaque objects on the underlying storage service. Everything that
// crosses this boundary is ciphertext (or object names, which are UUIDs).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "common/uuid.hpp"

namespace nexus::enclave {

/// An opaque stored object plus the storage service's version stamp (used
/// only as a cache-freshness hint; it is untrusted).
struct ObjectBlob {
  Bytes data;
  std::uint64_t storage_version = 0;
};

class StorageOcalls {
 public:
  virtual ~StorageOcalls() = default;

  /// Fetches a metadata object by UUID.
  virtual Result<ObjectBlob> FetchMeta(const Uuid& uuid) = 0;
  /// Stores (creates or replaces) a metadata object; returns the storage
  /// service's new version stamp.
  virtual Result<std::uint64_t> StoreMeta(const Uuid& uuid, ByteSpan data) = 0;
  virtual Status RemoveMeta(const Uuid& uuid) = 0;

  /// Fetches/stores a bulk data object (encrypted file contents).
  /// `changed_bytes` lets the transport ship only dirty chunks on partial
  /// updates (pass data.size() for a full rewrite).
  virtual Result<ObjectBlob> FetchData(const Uuid& uuid) = 0;
  virtual Status StoreData(const Uuid& uuid, ByteSpan data,
                           std::uint64_t changed_bytes) = 0;
  virtual Status RemoveData(const Uuid& uuid) = 0;

  /// Advisory lock on a metadata object (flock on the backing file, §V-A).
  virtual Status LockMeta(const Uuid& uuid) = 0;
  virtual Status UnlockMeta(const Uuid& uuid) = 0;

  /// True if the locally cached copy of the object is still known-fresh
  /// (AFS callback held). The enclave uses it only to decide whether its
  /// *decrypted* cache can be reused — a lie cannot forge content, only
  /// serve stale-but-authentic state within a session.
  virtual bool CacheFresh(const Uuid& uuid, std::uint64_t storage_version) = 0;

  /// Journal objects: sealed write-ahead records named inside a flat
  /// journal namespace ("nxj/<name>" on the store). Names are chosen by
  /// the enclave (journal::ObjectName / journal::kAnchorName); contents
  /// are ciphertext chained and authenticated under the journal key, so
  /// the store can at worst drop or roll back whole suffixes.
  virtual Result<Bytes> FetchJournal(const std::string& name) = 0;
  virtual Status StoreJournal(const std::string& name, ByteSpan data) = 0;
  virtual Status RemoveJournal(const std::string& name) = 0;
  /// Lists journal object names (relative to the journal namespace).
  virtual Result<std::vector<std::string>> ListJournal() = 0;
};

} // namespace nexus::enclave
