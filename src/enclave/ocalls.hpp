// The enclave's view of the untrusted world (ocall interface).
//
// Mirrors the paper's design (§V): ~10 ocalls that let the enclave read and
// write opaque objects on the underlying storage service. Everything that
// crosses this boundary is ciphertext (or object names, which are UUIDs).
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "common/uuid.hpp"

namespace nexus::enclave {

/// An opaque stored object plus the storage service's version stamp (used
/// only as a cache-freshness hint; it is untrusted).
struct ObjectBlob {
  Bytes data;
  std::uint64_t storage_version = 0;
};

/// A slice of a stored object plus the object's (untrusted) total size —
/// the enclave cross-checks it against the authenticated filenode, so a
/// lying transport is caught as an integrity violation, not silently
/// truncated data.
struct RangeBlob {
  Bytes data;
  std::uint64_t object_size = 0;
  std::uint64_t storage_version = 0;
};

class StorageOcalls {
 public:
  virtual ~StorageOcalls() = default;

  /// Fetches a metadata object by UUID.
  virtual Result<ObjectBlob> FetchMeta(const Uuid& uuid) = 0;
  /// Stores (creates or replaces) a metadata object; returns the storage
  /// service's new version stamp.
  virtual Result<std::uint64_t> StoreMeta(const Uuid& uuid, ByteSpan data) = 0;
  virtual Status RemoveMeta(const Uuid& uuid) = 0;

  /// Fetches/stores a bulk data object (encrypted file contents).
  /// `changed_bytes` lets the transport ship only dirty chunks on partial
  /// updates (pass data.size() for a full rewrite).
  virtual Result<ObjectBlob> FetchData(const Uuid& uuid) = 0;
  virtual Status StoreData(const Uuid& uuid, ByteSpan data,
                           std::uint64_t changed_bytes) = 0;
  virtual Status RemoveData(const Uuid& uuid) = 0;

  /// Advisory lock on a metadata object (flock on the backing file, §V-A).
  virtual Status LockMeta(const Uuid& uuid) = 0;
  virtual Status UnlockMeta(const Uuid& uuid) = 0;

  /// True if the locally cached copy of the object is still known-fresh
  /// (AFS callback held). The enclave uses it only to decide whether its
  /// *decrypted* cache can be reused — a lie cannot forge content, only
  /// serve stale-but-authentic state within a session.
  virtual bool CacheFresh(const Uuid& uuid, std::uint64_t storage_version) = 0;

  // ---- pipelined (segmented) data transfer --------------------------------
  // The parallel chunk-crypto engine overlaps backend I/O with in-enclave
  // crypto: on writes it hands each completed run of chunk ciphertext to
  // the transport while later chunks are still encrypting, and on reads it
  // verifies already-fetched ranges while the rest of the object is in
  // flight. Segments of one stream arrive in order; NOTHING becomes
  // visible under the object's name until CommitDataStream — transports
  // must apply the atomicity at commit (temp+rename for disk-backed
  // stores), never per segment. The default implementations buffer and
  // delegate to the whole-object calls, so existing StorageOcalls
  // implementations (test fakes included) keep working unchanged.

  /// Opens a segmented store of `total_bytes` to `uuid`; returns a stream
  /// handle.
  virtual Result<std::uint64_t> BeginDataStream(const Uuid& uuid,
                                                std::uint64_t total_bytes);
  /// Appends the next `segment` of the stream (segments are contiguous).
  virtual Status StoreDataSegment(std::uint64_t handle, ByteSpan segment);
  /// Atomically publishes the streamed object. `changed_bytes` mirrors
  /// StoreData's transfer-accounting contract.
  virtual Status CommitDataStream(std::uint64_t handle,
                                  std::uint64_t changed_bytes);
  /// Discards the stream; the stored object (if any) is untouched.
  virtual Status AbortDataStream(std::uint64_t handle);

  /// Fetches bytes [offset, offset+len) of a data object (clamped to the
  /// object's end) plus its total size. Default: whole fetch + slice.
  virtual Result<RangeBlob> FetchDataRange(const Uuid& uuid,
                                           std::uint64_t offset,
                                           std::uint64_t len);

  /// Readahead hint: the enclave expects to read bytes around
  /// [offset, offset+len) of `uuid`'s data object soon (it detected a
  /// sequential scan, or is about to start one). Purely advisory — the
  /// transport may start pulling ciphertext toward the client through its
  /// async window, or ignore it entirely. Never blocks; correctness never
  /// depends on it, only latency. Default: no-op.
  virtual void PrefetchData(const Uuid& uuid, std::uint64_t offset,
                            std::uint64_t len) {
    (void)uuid;
    (void)offset;
    (void)len;
  }

  /// Journal objects: sealed write-ahead records named inside a flat
  /// journal namespace ("nxj/<name>" on the store). Names are chosen by
  /// the enclave (journal::ObjectName / journal::kAnchorName); contents
  /// are ciphertext chained and authenticated under the journal key, so
  /// the store can at worst drop or roll back whole suffixes.
  virtual Result<Bytes> FetchJournal(const std::string& name) = 0;
  virtual Status StoreJournal(const std::string& name, ByteSpan data) = 0;
  virtual Status RemoveJournal(const std::string& name) = 0;
  /// Lists journal object names (relative to the journal namespace).
  virtual Result<std::vector<std::string>> ListJournal() = 0;
  /// Fetches several journal objects in one trip: one result per name,
  /// order preserved, each failing independently (recovery replay treats
  /// a missing record as a chain break, not a fatal error). Default: a
  /// loop of FetchJournal, so existing implementations keep working.
  virtual std::vector<Result<Bytes>> FetchJournalBatch(
      const std::vector<std::string>& names) {
    std::vector<Result<Bytes>> out;
    out.reserve(names.size());
    for (const std::string& name : names) out.push_back(FetchJournal(name));
    return out;
  }

 private:
  // State for the default (buffered) streaming implementations. Overriding
  // transports never touch it.
  struct PendingStream {
    Uuid uuid;
    Bytes buffered;
  };
  std::map<std::uint64_t, PendingStream> default_streams_;
  std::uint64_t next_stream_handle_ = 1;
};

inline Result<std::uint64_t> StorageOcalls::BeginDataStream(
    const Uuid& uuid, std::uint64_t total_bytes) {
  const std::uint64_t handle = next_stream_handle_++;
  PendingStream& stream = default_streams_[handle];
  stream.uuid = uuid;
  stream.buffered.reserve(total_bytes);
  return handle;
}

inline Status StorageOcalls::StoreDataSegment(std::uint64_t handle,
                                              ByteSpan segment) {
  const auto it = default_streams_.find(handle);
  if (it == default_streams_.end()) {
    return Error(ErrorCode::kInvalidArgument, "unknown data stream handle");
  }
  Append(it->second.buffered, segment);
  return Status::Ok();
}

inline Status StorageOcalls::CommitDataStream(std::uint64_t handle,
                                              std::uint64_t changed_bytes) {
  const auto it = default_streams_.find(handle);
  if (it == default_streams_.end()) {
    return Error(ErrorCode::kInvalidArgument, "unknown data stream handle");
  }
  const Status result =
      StoreData(it->second.uuid, it->second.buffered, changed_bytes);
  default_streams_.erase(it);
  return result;
}

inline Status StorageOcalls::AbortDataStream(std::uint64_t handle) {
  default_streams_.erase(handle);
  return Status::Ok();
}

inline Result<RangeBlob> StorageOcalls::FetchDataRange(const Uuid& uuid,
                                                       std::uint64_t offset,
                                                       std::uint64_t len) {
  NEXUS_ASSIGN_OR_RETURN(ObjectBlob blob, FetchData(uuid));
  RangeBlob out;
  out.object_size = blob.data.size();
  out.storage_version = blob.storage_version;
  if (offset < blob.data.size()) {
    const std::uint64_t take =
        std::min<std::uint64_t>(len, blob.data.size() - offset);
    out.data.assign(blob.data.begin() + static_cast<std::ptrdiff_t>(offset),
                    blob.data.begin() + static_cast<std::ptrdiff_t>(offset + take));
  }
  return out;
}

} // namespace nexus::enclave
