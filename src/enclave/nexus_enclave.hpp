// The trusted NEXUS enclave (paper §IV).
//
// All cryptographic material — the volume rootkey, metadata body keys,
// file chunk keys, the enclave ECDH identity — lives only inside this
// class, behind the simulated EENTER boundary (sgx::EnclaveRuntime). The
// public Ecall* methods are the enclave interface: Table I's filesystem
// API plus volume lifecycle, the §IV-B authentication protocol, the
// §IV-B1 attested key exchange, and §IV-C access control administration.
//
// Paths are '/'-separated and relative to the volume root ("docs/a.txt").
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "common/uuid.hpp"
#include "crypto/ed25519.hpp"
#include "enclave/metadata.hpp"
#include "enclave/metadata_codec.hpp"
#include "enclave/ocalls.hpp"
#include "enclave/types.hpp"
#include "journal/journal.hpp"
#include "parallel/thread_pool.hpp"
#include "sgx/enclave.hpp"

namespace nexus::enclave {

class NexusEnclave {
 public:
  /// `intel_root_public_key` is the attestation root baked into the enclave
  /// image (used to verify peers' quotes during key exchange).
  NexusEnclave(sgx::EnclaveRuntime& runtime, StorageOcalls& storage,
               const ByteArray<32>& intel_root_public_key);

  NexusEnclave(const NexusEnclave&) = delete;
  NexusEnclave& operator=(const NexusEnclave&) = delete;

  // ---- volume lifecycle ---------------------------------------------------

  struct CreateVolumeResult {
    Uuid volume_uuid;
    Bytes sealed_rootkey;
  };

  /// Creates a new volume owned by `owner_name`/`owner_public_key`: fresh
  /// rootkey, supernode and empty root directory, all stored via ocalls.
  /// The enclave is left mounted as the owner.
  Result<CreateVolumeResult> EcallCreateVolume(
      const std::string& owner_name, const ByteArray<32>& owner_public_key,
      const VolumeConfig& config);

  // ---- authentication (§IV-B challenge-response) --------------------------

  /// Step 1-2: caller presents a public key and the sealed rootkey; the
  /// enclave unseals and returns a fresh nonce.
  Result<ByteArray<16>> EcallAuthChallenge(const ByteArray<32>& user_public_key,
                                           ByteSpan sealed_rootkey,
                                           const Uuid& volume_uuid);

  /// Steps 3-5: caller signs (nonce || encrypted-supernode-blob) with the
  /// private key; on success the volume is mounted as that user.
  Status EcallAuthResponse(const ByteArray<64>& signature);

  [[nodiscard]] bool mounted() const noexcept { return session_.has_value(); }
  [[nodiscard]] Result<UserId> EcallCurrentUser() const;

  /// Drops session state and zeroizes the rootkey.
  Status EcallUnmount();

  // ---- Table I filesystem API ---------------------------------------------

  Status EcallTouch(const std::string& path, EntryType type);
  Status EcallRemove(const std::string& path);
  Result<Attributes> EcallLookup(const std::string& path);
  Result<std::vector<DirEntry>> EcallFilldir(const std::string& path);
  Status EcallSymlink(const std::string& target, const std::string& linkpath);
  Status EcallHardlink(const std::string& existing, const std::string& linkpath);
  Status EcallRename(const std::string& from, const std::string& to);
  Result<std::string> EcallReadlink(const std::string& path);

  /// Whole-file content store: encrypts `plaintext` in chunks with fresh
  /// keys and uploads data + filenode. When the caller knows only
  /// [dirty_offset, dirty_offset+dirty_len) changed (plus any size change),
  /// only the affected chunks are re-keyed, re-encrypted and shipped —
  /// this is what makes fsync-heavy workloads pay per dirty chunk, not per
  /// file (§IV-A1 chunking).
  Status EcallEncrypt(const std::string& path, ByteSpan plaintext);
  Status EcallEncryptRange(const std::string& path, ByteSpan plaintext,
                           std::uint64_t dirty_offset, std::uint64_t dirty_len);
  /// Whole-file content load: fetches, verifies and decrypts.
  Result<Bytes> EcallDecrypt(const std::string& path);

  // ---- access-control administration (§IV-C, owner only) ------------------

  Status EcallAddUser(const std::string& name, const ByteArray<32>& public_key);
  Status EcallRemoveUser(const std::string& name);
  Result<std::vector<UserRecord>> EcallListUsers();
  /// perms == kPermNone removes the entry (revocation); costs one metadata
  /// re-encryption, never file re-encryption.
  Status EcallSetAcl(const std::string& dirpath, const std::string& username,
                     std::uint8_t perms);

  // ---- attested rootkey exchange (§IV-B1, Fig. 4) --------------------------

  /// Setup: exports this enclave's identity blob (SGX quote binding the
  /// enclave ECDH public key). The *caller* signs it with the user's
  /// identity key before publishing, as in the paper.
  Result<Bytes> EcallExportIdentity();

  /// Exchange (run by the granter): verifies the peer's signed identity
  /// blob (signature + quote + measurement), then returns a grant blob
  /// containing the rootkey encrypted under an ephemeral ECDH secret.
  /// The caller signs the grant blob with the granter's identity key.
  Result<Bytes> EcallGrantRootkey(ByteSpan peer_identity_blob,
                                  const ByteArray<64>& peer_signature,
                                  const ByteArray<32>& peer_identity_key);

  /// Extraction (run by the recipient): verifies the granter's signature,
  /// derives the ECDH secret, recovers the rootkey and returns it sealed
  /// to this machine. Mount afterwards via the normal auth protocol.
  Result<Bytes> EcallAcceptRootkey(ByteSpan grant_blob,
                                   const ByteArray<64>& grant_signature,
                                   const ByteArray<32>& granter_identity_key);

  /// Persists / restores the enclave ECDH identity across enclave restarts
  /// (sealed; only this enclave on this CPU can load it).
  Result<Bytes> EcallSealIdentityKey();
  Status EcallLoadIdentityKey(ByteSpan sealed);

  // ---- synchronous mutual-attestation exchange (SVI-B) ---------------------
  // The asynchronous protocol above keeps long-term enclave ECDH keys on
  // the store and therefore lacks perfect forward secrecy. This variant --
  // the mitigation SVI-B proposes -- has both parties online: each side
  // generates a fresh ephemeral ECDH key per exchange, quoted and then
  // discarded, so a future compromise of any long-term key cannot decrypt
  // a recorded grant.

  /// Recipient, step 1: produce an ephemeral offer (quote-bound fresh ECDH
  /// key). The ephemeral private key lives only until Accept or the next
  /// Offer. Caller signs the blob with the user identity key.
  Result<Bytes> EcallEphemeralOffer();

  /// Granter, step 2: verify the signed offer (signature, quote,
  /// measurement), then return a grant blob carrying our own quoted
  /// ephemeral key and the rootkey encrypted under the ECDH secret. Our
  /// ephemeral private key is destroyed before returning.
  Result<Bytes> EcallEphemeralGrant(ByteSpan offer_blob,
                                    const ByteArray<64>& offer_signature,
                                    const ByteArray<32>& peer_identity_key);

  /// Recipient, step 3: verify the signed grant (signature, quote,
  /// measurement), derive the secret with the pending ephemeral key,
  /// recover the rootkey and return it sealed. Consumes the pending offer.
  Result<Bytes> EcallEphemeralAccept(ByteSpan grant_blob,
                                     const ByteArray<64>& grant_signature,
                                     const ByteArray<32>& granter_identity_key);

  // ---- sealed version table (SVI-C rollback defence, persistent) ----------
  // The enclave records every metadata object's highest seen version; these
  // calls seal/restore that table across enclave restarts, extending
  // rollback detection beyond a single session.

  Result<Bytes> EcallSealVersionTable();
  /// Merges (taking the max per object) -- safe to load an older table.
  Status EcallLoadVersionTable(ByteSpan sealed);

  // ---- volume audit (fsck) --------------------------------------------------

  struct VolumeAudit {
    std::uint64_t directories = 0; // including the root
    std::uint64_t files = 0;
    std::uint64_t symlinks = 0;
    std::uint64_t buckets = 0;
    std::uint64_t plaintext_bytes = 0;
    /// Every object the volume references (for orphan detection outside).
    std::vector<Uuid> reachable_meta;
    std::vector<Uuid> reachable_data;
  };

  /// Walks the entire volume from the supernode, verifying every metadata
  /// object (decryption, parent pointers, bucket MACs, versions). With
  /// `deep`, additionally fetches and verifies every file's data chunks.
  /// Fails with kIntegrityViolation at the first inconsistency.
  Result<VolumeAudit> EcallVerifyVolume(bool deep);

  // ---- maintenance ---------------------------------------------------------

  /// Drops the in-enclave decrypted metadata caches (used by benchmarks to
  /// measure cold paths, and by tests after adversarial server edits).
  void EcallDropCaches();

  struct CacheStats {
    std::uint64_t dirnode_hits = 0;
    std::uint64_t dirnode_misses = 0;
    std::uint64_t filenode_hits = 0;
    std::uint64_t filenode_misses = 0;
  };
  [[nodiscard]] const CacheStats& cache_stats() const noexcept {
    return cache_stats_;
  }

  /// Bounds the decrypted metadata caches (the EPC is small — the paper's
  /// enclave fits in ~96 MB of reserved memory, so cached state must be
  /// bounded). Entries least recently used by a *previous* operation are
  /// evicted; state touched by the current operation is never dropped.
  void EcallSetCacheLimits(std::size_t max_dirnodes, std::size_t max_filenodes);

  [[nodiscard]] std::size_t cached_dirnodes() const noexcept {
    return dirnode_cache_.size();
  }
  [[nodiscard]] std::size_t cached_filenodes() const noexcept {
    return filenode_cache_.size();
  }

  // ---- write-ahead metadata journal (group commit + crash recovery) --------
  // When journaling is on (the default), every metadata store/remove an
  // operation performs is deferred into an in-enclave pending transaction
  // and made durable by ONE sealed journal record per operation — or per
  // explicit batch — before being checkpointed back onto the main "nx/"
  // objects. Mount-time recovery replays committed records and discards
  // torn tails, so a crash can never leave a half-applied operation.

  /// Reconfigures journaling. `checkpoint_interval_ops` bounds how many
  /// committed (journaled but not yet checkpointed) ops may accumulate
  /// before an automatic checkpoint; 0 checkpoints right after every
  /// commit, which preserves cross-client visibility through the store.
  /// Disabling while mounted flushes (commit + checkpoint) first.
  Status EcallConfigureJournal(bool enabled,
                               std::uint64_t checkpoint_interval_ops);

  /// Opens an explicit batch: subsequent operations accumulate in the
  /// pending transaction instead of committing individually. Single-writer
  /// only — other clients do not see batched updates until CommitBatch.
  Status EcallBeginBatch();
  /// Seals the whole batch into one journal record (atomic group commit),
  /// then checkpoints per the configured interval.
  Status EcallCommitBatch();

  [[nodiscard]] bool journal_enabled() const noexcept {
    return journal_enabled_;
  }
  [[nodiscard]] const journal::Stats& journal_stats() const noexcept {
    return journal_stats_;
  }

  // ---- parallel chunk-crypto engine ----------------------------------------
  // Per-chunk AES-GCM with independent keys (§IV-A1) makes the data path
  // embarrassingly parallel: EcallEncrypt/EcallDecrypt dispatch one task
  // per chunk onto a work-stealing pool and the ecall thread pipelines
  // completed ciphertext to the storage ocalls while later chunks are
  // still in flight. Worker threads run pure compute only — they never
  // cross the (single-threaded) enclave boundary and never touch enclave
  // state beyond their disjoint ciphertext slices. For a fixed RNG seed
  // the output is byte-identical to the serial path: key/IV draws happen
  // serially in ascending chunk order before any task is dispatched.

  /// Sets the crypto worker count. 0 = serial (no pool, inline crypto,
  /// whole-object stores — the pre-pool behaviour). Takes effect on the
  /// next encrypt/decrypt; an existing pool of a different size is torn
  /// down first.
  Status EcallSetCryptoWorkers(std::size_t workers);
  [[nodiscard]] std::size_t crypto_workers() const noexcept {
    return crypto_workers_;
  }

  struct ParallelStats {
    std::uint64_t chunks_encrypted = 0;
    std::uint64_t chunks_decrypted = 0;
    std::uint64_t parallel_batches = 0;  // dispatched chunk batches
    std::uint64_t segments_streamed = 0; // pipelined store/fetch segments
    std::uint64_t tasks_stolen = 0;
    std::uint64_t peak_queue_depth = 0;
    double worker_busy_seconds = 0;   // CPU seconds across all workers
    double critical_path_seconds = 0; // max per-worker CPU seconds per batch
    double saved_seconds = 0;         // modeled wall time removed by workers
  };
  [[nodiscard]] const ParallelStats& parallel_stats() const noexcept {
    return parallel_stats_;
  }

  /// Drains the not-yet-consumed modeled savings: real seconds by which
  /// parallel execution shortens the batch relative to the wall time this
  /// (possibly core-starved) host measured. NexusClient subtracts it from
  /// the measured ecall wall time so the virtual clock reflects the
  /// critical path — on a machine with enough cores the wall time already
  /// is the critical path and the drained value is ~0.
  [[nodiscard]] double TakeParallelSavedSeconds() noexcept {
    const double saved = pending_saved_seconds_;
    pending_saved_seconds_ = 0;
    return saved;
  }

 private:
  // ---- in-enclave decrypted caches ---------------------------------------

  struct DirnodeState {
    Dirnode main;
    std::vector<DirBucket> buckets; // parallel to main.buckets
    std::uint64_t meta_version = 0;
    std::uint64_t storage_version = 0;
    std::uint64_t last_used = 0; // op tick, for LRU eviction
  };

  struct FilenodeState {
    Filenode node;
    std::uint64_t meta_version = 0;
    std::uint64_t storage_version = 0;
    std::uint64_t last_used = 0;
  };

  struct Session {
    RootKey rootkey{};
    UserId user = kOwnerUserId;
    Uuid volume_uuid;
    Supernode supernode;
    std::uint64_t supernode_storage_version = 0;
  };

  struct PendingAuth {
    ByteArray<32> user_public_key{};
    RootKey rootkey{};
    Uuid volume_uuid;
    ByteArray<16> nonce{};
    // Journal chain state recovered during the challenge, handed to the
    // session once authentication completes.
    std::uint64_t journal_next_seq = 0;
    ByteArray<32> journal_chain_hash{};
  };

  /// Per-session journal state: the sealing key, the chain position, the
  /// pending (uncommitted) transaction and the committed-but-not-yet-
  /// checkpointed set, plus data objects whose removal is deferred until
  /// the transaction that stops referencing them has committed.
  struct JournalState {
    journal::JournalKey key{};
    std::uint64_t next_seq = 0;
    ByteArray<32> chain_hash{};
    journal::TxnBuffer pending;
    journal::TxnBuffer committed;
    std::vector<std::uint64_t> committed_seqs;
    std::vector<Uuid> deferred_data_removes;
    bool explicit_batch = false;
  };

  // ---- ocall wrappers (transition accounting) -----------------------------
  Result<ObjectBlob> FetchMetaO(const Uuid& uuid);
  Status StoreMetaO(const Uuid& uuid, ByteSpan data, std::uint64_t* version_out);
  Status RemoveMetaO(const Uuid& uuid);
  Result<ObjectBlob> FetchDataO(const Uuid& uuid);
  Status StoreDataO(const Uuid& uuid, ByteSpan data,
                    std::uint64_t changed_bytes);
  Result<std::uint64_t> BeginDataStreamO(const Uuid& uuid,
                                         std::uint64_t total_bytes);
  Status StoreDataSegmentO(std::uint64_t handle, ByteSpan segment);
  Status CommitDataStreamO(std::uint64_t handle, std::uint64_t changed_bytes);
  Status AbortDataStreamO(std::uint64_t handle);
  Result<RangeBlob> FetchDataRangeO(const Uuid& uuid, std::uint64_t offset,
                                    std::uint64_t len);
  void PrefetchDataO(const Uuid& uuid, std::uint64_t offset,
                     std::uint64_t len);
  Status RemoveDataO(const Uuid& uuid);
  Status LockMetaO(const Uuid& uuid);
  Status UnlockMetaO(const Uuid& uuid);
  bool CacheFreshO(const Uuid& uuid, std::uint64_t storage_version);
  Result<Bytes> FetchJournalO(const std::string& name);
  Status StoreJournalO(const std::string& name, ByteSpan data);
  Status RemoveJournalO(const std::string& name);
  Result<std::vector<std::string>> ListJournalO();
  std::vector<Result<Bytes>> FetchJournalBatchO(
      const std::vector<std::string>& names);

  // Journal-bypassing variants used by checkpoint apply and recovery
  // replay; everything else must go through StoreMetaO/RemoveMetaO.
  Status StoreMetaDirect(const Uuid& uuid, ByteSpan data,
                         std::uint64_t* version_out);
  Status RemoveMetaDirect(const Uuid& uuid);

  // ---- journal internals ---------------------------------------------------

  /// Looks up `uuid` in the pending then committed buffers.
  [[nodiscard]] const journal::Op* JournalFind(const Uuid& uuid) const;

  /// Engages journaling for the current session at a given chain position.
  void EngageJournal(std::uint64_t next_seq, const ByteArray<32>& chain_hash);

  /// Seals the pending transaction into one journal record, merges it into
  /// the committed set and executes deferred data removes; checkpoints per
  /// the configured interval. No-op when the transaction is empty.
  Status CommitPending();

  /// Applies the committed set onto the main objects, writes the anchor and
  /// truncates the journal records it covers.
  Status CheckpointJournal();

  /// Per-operation epilogue for every mutating ecall: in auto mode commits
  /// (and per config checkpoints) what the operation deferred; in explicit
  /// batch mode leaves it pending. Partial state from a failed operation is
  /// still committed — exactly the durability the non-journaled write-through
  /// path had — so the version table never runs ahead of the store.
  Status FinishMutation(Status result);

  /// After a checkpoint stored `uuid` for real, stamps the true storage
  /// version into any cache entry still carrying the journal sentinel.
  void PatchCachedStorageVersion(const Uuid& uuid, std::uint64_t version);

  /// Mount-time recovery: replays every complete record past the anchor,
  /// discards the torn tail (if any) and truncates the journal. Returns
  /// the chain position a new session should continue from.
  Result<journal::Anchor> RecoverJournal(const journal::JournalKey& key,
                                         const Uuid& volume_uuid);

  // ---- internals -----------------------------------------------------------
  Status RequireMounted() const;
  [[nodiscard]] bool IsOwner() const;
  Status CheckDirAccess(const Dirnode& dir, std::uint8_t needed) const;

  /// Rollback defence: rejects metadata older than the locally recorded
  /// version; records the newest seen/written version.
  Status CheckAndRecordVersion(const Uuid& uuid, std::uint64_t version);

  Result<Bytes> EncodeAndStoreMeta(MetaType type, const Uuid& uuid,
                                   std::uint64_t version, ByteSpan body,
                                   std::uint64_t* storage_version_out);

  /// Loads (with caching) a dirnode + all its buckets; verifies the parent
  /// pointer and bucket MACs.
  Result<DirnodeState*> LoadDirnode(const Uuid& uuid, const Uuid& expected_parent);
  Result<FilenodeState*> LoadFilenode(const Uuid& uuid, const Uuid& expected_parent);
  Status ReloadSupernode();

  /// Writes back a mutated dirnode: dirty buckets first (recomputing MACs),
  /// then the main object.
  Status FlushDirnode(DirnodeState& state, const std::vector<std::size_t>& dirty_buckets);
  Status FlushFilenode(FilenodeState& state);

  /// Splits `path` into components; rejects empty/'.'/'..' components.
  static Result<std::vector<std::string>> SplitPath(const std::string& path);

  /// A resolved directory: its own UUID plus its parent's (needed for the
  /// §IV-A3 parent-pointer verification when (re)loading it).
  struct ResolvedDir {
    Uuid uuid;
    Uuid parent;
  };

  /// Walks from the root to the directory identified by `components`,
  /// enforcing read access at every level.
  Result<ResolvedDir> ResolveDir(const std::vector<std::string>& components);

  struct EntryLocation {
    DirnodeState* dir = nullptr; // parent directory state
    std::size_t bucket_index = 0;
    std::size_t entry_index = 0;
  };
  /// Finds `name` within the (already loaded) directory.
  static const DirEntry* FindEntry(const DirnodeState& dir, const std::string& name,
                                   EntryLocation* loc = nullptr);

  /// Shared implementation of touch/symlink.
  Status CreateEntry(const std::string& path, EntryType type,
                     const std::string& symlink_target);
  Status AuditDirectory(const Uuid& dir_uuid, const Uuid& parent, bool deep,
                        VolumeAudit& audit);

  /// Evicts LRU cache entries above the limits; never touches entries used
  /// by the operation currently in flight (their last_used == op_tick_).
  void EvictColdCacheEntries();

  // ---- parallel crypto internals -------------------------------------------

  /// The worker pool, created lazily on the first parallel batch (and after
  /// every EcallSetCryptoWorkers change). Null when crypto_workers_ == 0.
  /// Pre-warms the AES-NI dispatch decision and the AES sbox tables on the
  /// calling thread so workers never race a magic-static initialisation.
  parallel::ThreadPool* EnsurePool();

  /// Folds one finished TaskGroup batch into parallel_stats_ and the
  /// modeled-savings accumulator. `batch_wall_seconds` is the measured wall
  /// time of dispatch+join on this host.
  void RecordParallelBatch(const parallel::TaskGroup& group,
                           double batch_wall_seconds);

  /// Pre-checks removability (directory emptiness) without mutating state.
  Status CheckRemovable(const DirEntry& entry, const Uuid& parent_uuid);
  /// Deletes/updates an entry's backing objects; must only run after the
  /// parent dirnode no longer references the entry (crash => orphans, not
  /// dangling references).
  Status ReleaseEntryObjects(const DirEntry& entry, const Uuid& parent_uuid);

  sgx::EnclaveRuntime& runtime_;
  StorageOcalls& storage_;
  ByteArray<32> intel_root_public_key_{};

  // Enclave ECDH identity for the key-exchange protocol.
  ByteArray<32> ecdh_private_{};
  ByteArray<32> ecdh_public_{};
  // Pending ephemeral key for the synchronous (PFS) exchange variant.
  std::optional<ByteArray<32>> ephemeral_private_;

  std::optional<PendingAuth> pending_auth_;
  std::optional<Session> session_;

  std::unordered_map<Uuid, DirnodeState> dirnode_cache_;
  std::unordered_map<Uuid, FilenodeState> filenode_cache_;
  std::unordered_map<Uuid, std::uint64_t> min_versions_;

  std::optional<JournalState> journal_;
  bool journal_enabled_ = true;
  std::uint64_t checkpoint_interval_ops_ = 0;
  journal::Stats journal_stats_;

  CacheStats cache_stats_;
  std::size_t max_cached_dirnodes_ = 4096;
  std::size_t max_cached_filenodes_ = 16384;
  mutable std::uint64_t op_tick_ = 0;

  // Parallel chunk-crypto engine (0 workers = serial path, no pool).
  std::size_t crypto_workers_;
  std::unique_ptr<parallel::ThreadPool> pool_;
  ParallelStats parallel_stats_;
  double pending_saved_seconds_ = 0;
};

} // namespace nexus::enclave
