#include "enclave/metadata.hpp"

#include <algorithm>

#include "common/serial.hpp"

namespace nexus::enclave {
namespace {

constexpr std::size_t kMaxUsers = 1 << 16;
constexpr std::size_t kMaxAclEntries = 1 << 16;
constexpr std::size_t kMaxBuckets = 1 << 20;
constexpr std::size_t kMaxEntriesPerBucket = 1 << 16;
constexpr std::size_t kMaxChunks = 1 << 20;
constexpr std::size_t kMaxNameLen = 4096;

} // namespace

// ---- Supernode --------------------------------------------------------------

Bytes Supernode::Serialize() const {
  Writer w;
  w.Id(volume_uuid);
  w.Id(root_dir);
  w.U32(config.chunk_size);
  w.U32(config.dirnode_bucket_size);
  w.U32(next_user_id);
  w.U32(static_cast<std::uint32_t>(users.size()));
  for (const UserRecord& u : users) {
    w.U32(u.id);
    w.Str(u.name);
    w.Raw(u.public_key);
  }
  return std::move(w).Take();
}

Result<Supernode> Supernode::Deserialize(ByteSpan body) {
  Reader r(body);
  Supernode s;
  NEXUS_ASSIGN_OR_RETURN(s.volume_uuid, r.Id());
  NEXUS_ASSIGN_OR_RETURN(s.root_dir, r.Id());
  NEXUS_ASSIGN_OR_RETURN(s.config.chunk_size, r.U32());
  NEXUS_ASSIGN_OR_RETURN(s.config.dirnode_bucket_size, r.U32());
  if (s.config.chunk_size == 0 || s.config.dirnode_bucket_size == 0) {
    return Error(ErrorCode::kIntegrityViolation, "invalid volume config");
  }
  NEXUS_ASSIGN_OR_RETURN(s.next_user_id, r.U32());
  NEXUS_ASSIGN_OR_RETURN(std::uint32_t n, r.U32());
  if (n > kMaxUsers) {
    return Error(ErrorCode::kIntegrityViolation, "user table too large");
  }
  s.users.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    UserRecord u;
    NEXUS_ASSIGN_OR_RETURN(u.id, r.U32());
    NEXUS_ASSIGN_OR_RETURN(u.name, r.Str(kMaxNameLen));
    NEXUS_ASSIGN_OR_RETURN(Bytes pk, r.Raw(32));
    u.public_key = ToArray<32>(pk);
    s.users.push_back(std::move(u));
  }
  if (!r.AtEnd()) {
    return Error(ErrorCode::kIntegrityViolation, "trailing supernode bytes");
  }
  return s;
}

const UserRecord* Supernode::FindUserByKey(const ByteArray<32>& pk) const {
  for (const UserRecord& u : users) {
    if (u.public_key == pk) return &u;
  }
  return nullptr;
}

const UserRecord* Supernode::FindUserByName(const std::string& name) const {
  for (const UserRecord& u : users) {
    if (u.name == name) return &u;
  }
  return nullptr;
}

const UserRecord* Supernode::FindUserById(UserId id) const {
  for (const UserRecord& u : users) {
    if (u.id == id) return &u;
  }
  return nullptr;
}

// ---- DirBucket --------------------------------------------------------------

Bytes DirBucket::Serialize(const Uuid& dirnode_uuid) const {
  Writer w;
  w.Id(dirnode_uuid);
  w.U32(static_cast<std::uint32_t>(entries.size()));
  for (const DirEntry& e : entries) {
    w.Str(e.name);
    w.Id(e.uuid);
    w.U8(static_cast<std::uint8_t>(e.type));
    w.Str(e.symlink_target);
  }
  return std::move(w).Take();
}

Result<DirBucket> DirBucket::Deserialize(ByteSpan body,
                                         const Uuid& dirnode_uuid) {
  Reader r(body);
  DirBucket b;
  NEXUS_ASSIGN_OR_RETURN(Uuid owner, r.Id());
  if (owner != dirnode_uuid) {
    // Bucket transplanted from another directory.
    return Error(ErrorCode::kIntegrityViolation,
                 "bucket does not belong to this dirnode");
  }
  NEXUS_ASSIGN_OR_RETURN(std::uint32_t n, r.U32());
  if (n > kMaxEntriesPerBucket) {
    return Error(ErrorCode::kIntegrityViolation, "bucket too large");
  }
  b.entries.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    DirEntry e;
    NEXUS_ASSIGN_OR_RETURN(e.name, r.Str(kMaxNameLen));
    NEXUS_ASSIGN_OR_RETURN(e.uuid, r.Id());
    NEXUS_ASSIGN_OR_RETURN(std::uint8_t type, r.U8());
    if (type > 2) {
      return Error(ErrorCode::kIntegrityViolation, "bad entry type");
    }
    e.type = static_cast<EntryType>(type);
    NEXUS_ASSIGN_OR_RETURN(e.symlink_target, r.Str(kMaxNameLen));
    b.entries.push_back(std::move(e));
  }
  if (!r.AtEnd()) {
    return Error(ErrorCode::kIntegrityViolation, "trailing bucket bytes");
  }
  return b;
}

// ---- Dirnode ----------------------------------------------------------------

Bytes Dirnode::Serialize() const {
  Writer w;
  w.Id(uuid);
  w.Id(parent);
  w.U32(static_cast<std::uint32_t>(acl.size()));
  for (const AclEntry& a : acl) {
    w.U32(a.user);
    w.U8(a.perms);
  }
  w.U32(static_cast<std::uint32_t>(buckets.size()));
  for (const BucketRef& b : buckets) {
    w.Id(b.uuid);
    w.U32(b.entry_count);
    w.Raw(b.mac);
  }
  return std::move(w).Take();
}

Result<Dirnode> Dirnode::Deserialize(ByteSpan body) {
  Reader r(body);
  Dirnode d;
  NEXUS_ASSIGN_OR_RETURN(d.uuid, r.Id());
  NEXUS_ASSIGN_OR_RETURN(d.parent, r.Id());
  NEXUS_ASSIGN_OR_RETURN(std::uint32_t na, r.U32());
  if (na > kMaxAclEntries) {
    return Error(ErrorCode::kIntegrityViolation, "ACL too large");
  }
  d.acl.reserve(na);
  for (std::uint32_t i = 0; i < na; ++i) {
    AclEntry a;
    NEXUS_ASSIGN_OR_RETURN(a.user, r.U32());
    NEXUS_ASSIGN_OR_RETURN(a.perms, r.U8());
    d.acl.push_back(a);
  }
  NEXUS_ASSIGN_OR_RETURN(std::uint32_t nb, r.U32());
  if (nb > kMaxBuckets) {
    return Error(ErrorCode::kIntegrityViolation, "bucket table too large");
  }
  d.buckets.reserve(nb);
  for (std::uint32_t i = 0; i < nb; ++i) {
    BucketRef b;
    NEXUS_ASSIGN_OR_RETURN(b.uuid, r.Id());
    NEXUS_ASSIGN_OR_RETURN(b.entry_count, r.U32());
    NEXUS_ASSIGN_OR_RETURN(Bytes mac, r.Raw(32));
    b.mac = ToArray<32>(mac);
    d.buckets.push_back(b);
  }
  if (!r.AtEnd()) {
    return Error(ErrorCode::kIntegrityViolation, "trailing dirnode bytes");
  }
  return d;
}

std::uint64_t Dirnode::TotalEntries() const noexcept {
  std::uint64_t total = 0;
  for (const BucketRef& b : buckets) total += b.entry_count;
  return total;
}

const AclEntry* Dirnode::FindAcl(UserId user) const {
  for (const AclEntry& a : acl) {
    if (a.user == user) return &a;
  }
  return nullptr;
}

void Dirnode::SetAcl(UserId user, std::uint8_t perms) {
  const auto it = std::find_if(acl.begin(), acl.end(),
                               [&](const AclEntry& a) { return a.user == user; });
  if (perms == kPermNone) {
    if (it != acl.end()) acl.erase(it);
    return;
  }
  if (it != acl.end()) {
    it->perms = perms;
  } else {
    acl.push_back(AclEntry{user, perms});
  }
}

// ---- Filenode ---------------------------------------------------------------

Bytes Filenode::Serialize() const {
  Writer w;
  w.Id(uuid);
  w.Id(parent);
  w.Id(data_uuid);
  w.U64(size);
  w.U32(chunk_size);
  w.U32(link_count);
  w.U32(static_cast<std::uint32_t>(chunks.size()));
  for (const ChunkContext& c : chunks) {
    w.Raw(c.key);
    w.Raw(c.iv);
  }
  return std::move(w).Take();
}

Result<Filenode> Filenode::Deserialize(ByteSpan body) {
  Reader r(body);
  Filenode f;
  NEXUS_ASSIGN_OR_RETURN(f.uuid, r.Id());
  NEXUS_ASSIGN_OR_RETURN(f.parent, r.Id());
  NEXUS_ASSIGN_OR_RETURN(f.data_uuid, r.Id());
  NEXUS_ASSIGN_OR_RETURN(f.size, r.U64());
  NEXUS_ASSIGN_OR_RETURN(f.chunk_size, r.U32());
  if (f.chunk_size == 0) {
    return Error(ErrorCode::kIntegrityViolation, "zero chunk size");
  }
  NEXUS_ASSIGN_OR_RETURN(f.link_count, r.U32());
  NEXUS_ASSIGN_OR_RETURN(std::uint32_t n, r.U32());
  if (n > kMaxChunks) {
    return Error(ErrorCode::kIntegrityViolation, "chunk table too large");
  }
  if (n != f.ChunkCount()) {
    return Error(ErrorCode::kIntegrityViolation,
                 "chunk table inconsistent with file size");
  }
  f.chunks.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    ChunkContext c;
    NEXUS_ASSIGN_OR_RETURN(Bytes key, r.Raw(16));
    c.key = ToArray<16>(key);
    NEXUS_ASSIGN_OR_RETURN(Bytes iv, r.Raw(12));
    c.iv = ToArray<12>(iv);
    f.chunks.push_back(c);
  }
  if (!r.AtEnd()) {
    return Error(ErrorCode::kIntegrityViolation, "trailing filenode bytes");
  }
  return f;
}

} // namespace nexus::enclave
