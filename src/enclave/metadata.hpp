// In-enclave metadata structures: supernode, dirnode (bucketed), filenode.
//
// These correspond to the paper's Figure 3. Only their *bodies* are defined
// here (plain serialization); encryption framing is metadata_codec.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "common/uuid.hpp"
#include "enclave/types.hpp"

namespace nexus::enclave {

/// Supernode: one per volume. Holds the root directory pointer, the owner
/// identity and the table of authorized users (paper §IV-A1).
struct Supernode {
  Uuid volume_uuid;   // == the supernode object's uuid
  Uuid root_dir;
  VolumeConfig config;
  std::vector<UserRecord> users; // users[0] is the immutable owner
  UserId next_user_id = 1;

  [[nodiscard]] Bytes Serialize() const;
  static Result<Supernode> Deserialize(ByteSpan body);

  [[nodiscard]] const UserRecord* FindUserByKey(const ByteArray<32>& pk) const;
  [[nodiscard]] const UserRecord* FindUserByName(const std::string& name) const;
  [[nodiscard]] const UserRecord* FindUserById(UserId id) const;
};

/// One overflow bucket of directory entries; an independent metadata object.
struct DirBucket {
  Uuid uuid;
  std::vector<DirEntry> entries;

  [[nodiscard]] Bytes Serialize(const Uuid& dirnode_uuid) const;
  static Result<DirBucket> Deserialize(ByteSpan body, const Uuid& dirnode_uuid);
};

/// Descriptor of a bucket as recorded in the dirnode main object: identity,
/// entry count and a MAC (SHA-256 of the bucket's encrypted blob) that
/// pins the exact bucket version (bucket-level rollback defence, §V-B).
struct BucketRef {
  Uuid uuid;
  std::uint32_t entry_count = 0;
  ByteArray<32> mac{};
};

/// Dirnode main object: parent pointer, ACLs and the bucket table.
struct Dirnode {
  Uuid uuid;
  Uuid parent; // nil for the root directory
  std::vector<AclEntry> acl;
  std::vector<BucketRef> buckets;

  [[nodiscard]] Bytes Serialize() const;
  static Result<Dirnode> Deserialize(ByteSpan body);

  [[nodiscard]] std::uint64_t TotalEntries() const noexcept;
  [[nodiscard]] const AclEntry* FindAcl(UserId user) const;
  /// Sets (or removes, when perms == kPermNone) a user's ACL entry.
  void SetAcl(UserId user, std::uint8_t perms);
};

/// Per-chunk cryptographic context (fresh key + IV per content update).
struct ChunkContext {
  Key128 key{};
  ByteArray<12> iv{};
};

/// Filenode: everything needed to decrypt one file's data object.
struct Filenode {
  Uuid uuid;
  Uuid parent;
  Uuid data_uuid;         // the bulk ciphertext object
  std::uint64_t size = 0; // plaintext size
  std::uint32_t chunk_size = 1 << 20;
  std::uint32_t link_count = 1; // hardlinks referencing this filenode
  std::vector<ChunkContext> chunks;

  [[nodiscard]] Bytes Serialize() const;
  static Result<Filenode> Deserialize(ByteSpan body);

  [[nodiscard]] std::size_t ChunkCount() const noexcept {
    return (size + chunk_size - 1) / chunk_size;
  }
};

} // namespace nexus::enclave
