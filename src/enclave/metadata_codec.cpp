#include "enclave/metadata_codec.hpp"

#include "common/serial.hpp"
#include "crypto/aes.hpp"
#include "crypto/gcm.hpp"
#include "crypto/gcm_siv.hpp"

namespace nexus::enclave {
namespace {

constexpr std::uint32_t kMagic = 0x4e585553; // "NXUS"
constexpr std::size_t kBodyKeySize = 16;
// GCM-SIV wrap of a 16-byte key: 16 bytes ct + 16 bytes tag.
constexpr std::size_t kWrappedKeySize = kBodyKeySize + crypto::kGcmSivTagSize;

Bytes SerializePreamble(const Preamble& p) {
  Writer w;
  w.U32(kMagic);
  w.U8(static_cast<std::uint8_t>(p.type));
  w.Id(p.uuid);
  w.U64(p.version);
  return std::move(w).Take();
}

Result<Preamble> ParsePreamble(Reader& r) {
  NEXUS_ASSIGN_OR_RETURN(std::uint32_t magic, r.U32());
  if (magic != kMagic) {
    return Error(ErrorCode::kIntegrityViolation, "bad metadata magic");
  }
  Preamble p;
  NEXUS_ASSIGN_OR_RETURN(std::uint8_t type, r.U8());
  if (type < 1 || type > 5) {
    return Error(ErrorCode::kIntegrityViolation, "bad metadata type");
  }
  p.type = static_cast<MetaType>(type);
  NEXUS_ASSIGN_OR_RETURN(p.uuid, r.Id());
  NEXUS_ASSIGN_OR_RETURN(p.version, r.U64());
  return p;
}

} // namespace

Result<Bytes> EncodeMetadata(const Preamble& preamble, ByteSpan body,
                             const RootKey& rootkey, crypto::Rng& rng) {
  const Bytes preamble_bytes = SerializePreamble(preamble);

  // Fresh cryptographic context for this update.
  const auto body_key = rng.Array<kBodyKeySize>();
  const auto body_iv = rng.Array<crypto::kGcmIvSize>();
  const auto wrap_nonce = rng.Array<crypto::kGcmSivNonceSize>();

  // Wrap the body key under the rootkey, binding it to this object's
  // preamble so a context transplanted onto another object fails to open.
  NEXUS_ASSIGN_OR_RETURN(
      Bytes wrapped_key,
      crypto::GcmSivSeal(rootkey, wrap_nonce, preamble_bytes, body_key));

  // Section 3: encrypt the body; preamble || crypto-context are AAD.
  const Bytes aad = Concat(preamble_bytes, wrap_nonce, wrapped_key, body_iv);
  NEXUS_ASSIGN_OR_RETURN(crypto::Aes aes, crypto::Aes::Create(body_key));
  NEXUS_ASSIGN_OR_RETURN(Bytes sealed_body,
                         crypto::GcmSeal(aes, body_iv, aad, body));

  Writer w;
  w.Raw(preamble_bytes);
  w.Raw(wrap_nonce);
  w.Raw(wrapped_key);
  w.Raw(body_iv);
  w.Var(sealed_body);
  return std::move(w).Take();
}

Result<DecodedMeta> DecodeMetadata(ByteSpan blob, const RootKey& rootkey,
                                   MetaType expected_type,
                                   const Uuid& expected_uuid) {
  Reader r(blob);
  NEXUS_ASSIGN_OR_RETURN(Preamble preamble, ParsePreamble(r));
  const Bytes preamble_bytes = SerializePreamble(preamble);

  NEXUS_ASSIGN_OR_RETURN(Bytes wrap_nonce, r.Raw(crypto::kGcmSivNonceSize));
  NEXUS_ASSIGN_OR_RETURN(Bytes wrapped_key, r.Raw(kWrappedKeySize));
  NEXUS_ASSIGN_OR_RETURN(Bytes body_iv, r.Raw(crypto::kGcmIvSize));
  NEXUS_ASSIGN_OR_RETURN(Bytes sealed_body, r.Var(1 << 26));
  if (!r.AtEnd()) {
    return Error(ErrorCode::kIntegrityViolation, "trailing metadata bytes");
  }

  // Unwrap the body key; tampering with the preamble breaks this (AAD).
  auto body_key =
      crypto::GcmSivOpen(rootkey, wrap_nonce, preamble_bytes, wrapped_key);
  if (!body_key.ok()) {
    return Error(ErrorCode::kIntegrityViolation,
                 "metadata keywrap verification failed");
  }

  const Bytes aad = Concat(preamble_bytes, wrap_nonce, wrapped_key, body_iv);
  NEXUS_ASSIGN_OR_RETURN(crypto::Aes aes, crypto::Aes::Create(*body_key));
  auto body = crypto::GcmOpen(aes, body_iv, aad, sealed_body);
  SecureZero(*body_key);
  if (!body.ok()) {
    return Error(ErrorCode::kIntegrityViolation,
                 "metadata body verification failed");
  }

  if (preamble.type != expected_type) {
    return Error(ErrorCode::kIntegrityViolation, "metadata type mismatch");
  }
  if (!expected_uuid.IsNil() && preamble.uuid != expected_uuid) {
    // File-swapping: an authentic object served under the wrong name.
    return Error(ErrorCode::kIntegrityViolation, "metadata uuid mismatch");
  }
  return DecodedMeta{preamble, std::move(body).value()};
}

Result<Preamble> PeekPreamble(ByteSpan blob) {
  Reader r(blob);
  return ParsePreamble(r);
}

} // namespace nexus::enclave
