// The three-section encrypted metadata format (paper §IV-A2).
//
//   [ preamble ]              plaintext, integrity-protected as AAD
//   [ crypto context ]        fresh per update; key GCM-SIV-wrapped under
//                             the volume rootkey; integrity-protected
//   [ encrypted body ]        AES-GCM(fresh key) over the serialized body
//
// Every update generates a fresh body key and IV, so revoking a user only
// requires re-encrypting metadata — never file contents (§IV-C).
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "common/uuid.hpp"
#include "crypto/rng.hpp"

namespace nexus::enclave {

enum class MetaType : std::uint8_t {
  kSupernode = 1,
  kDirnodeMain = 2,
  kDirnodeBucket = 3,
  kFilenode = 4,
  kUserIdentity = 5, // key-exchange identity blobs (§IV-B1 "Setup")
};

/// The plaintext, authenticated header of every metadata object.
struct Preamble {
  MetaType type = MetaType::kSupernode;
  Uuid uuid;                  // the object's own identity
  std::uint64_t version = 0;  // bumped on every update (rollback defence)
};

struct DecodedMeta {
  Preamble preamble;
  Bytes body;
};

/// Volume rootkey: a 128-bit AES key, generated inside the enclave at
/// volume creation and never exposed outside enclave/sealed storage.
using RootKey = Key128;

/// Serializes and encrypts a metadata body. A fresh body key and IV are
/// drawn from `rng` on every call.
Result<Bytes> EncodeMetadata(const Preamble& preamble, ByteSpan body,
                             const RootKey& rootkey, crypto::Rng& rng);

/// Verifies and decrypts a metadata object. Fails with
/// kIntegrityViolation on any tampering, wrong rootkey, or type/uuid
/// mismatch against `expected_type`/`expected_uuid` (pass nil Uuid to skip
/// the uuid check, e.g. when discovering the supernode).
Result<DecodedMeta> DecodeMetadata(ByteSpan blob, const RootKey& rootkey,
                                   MetaType expected_type,
                                   const Uuid& expected_uuid);

/// Reads just the (unauthenticated!) preamble — used by tooling/tests to
/// inspect ciphertext the way the server sees it. Trusted code must use
/// DecodeMetadata.
Result<Preamble> PeekPreamble(ByteSpan blob);

} // namespace nexus::enclave
