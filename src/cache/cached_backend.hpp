// Persistent client-side object cache (DESIGN.md §9).
//
// CachedBackend layers under the StorageBackend interface and wraps any
// inner backend (Mem/Disk/Remote). Reads are served from a two-tier cache
// keyed by object name: a memory LRU tier plus an optional on-disk tier
// that survives process restart. Everything the cache holds is the inner
// store's bytes verbatim — for NEXUS volumes that is ciphertext sealed by
// the enclave — so the cache sits OUTSIDE the TCB: a corrupted or stale
// cache file is caught by the enclave's MACs exactly like a corrupted
// server reply, never trusted.
//
// Writes go through a writeback queue when the inner backend can push
// invalidations (wire-v4 leases): dirty objects coalesce in memory and
// flush in oldest-first batches, with a write barrier ahead of any
// journal-namespace mutation ("nxj/" by default) so the PR 1 write-ahead
// ordering — record before data, truncate after checkpoint — still holds
// through the cache. Without leases (v3 peer, local inner) the cache falls
// back to write-through and bounds staleness by a TTL.
//
// Freshness model per entry:
//   dirty  — locally written, not yet flushed; always valid (local truth).
//   leased — served under a server read lease; valid until the server
//            pushes an invalidation or the lease channel dies.
//   clean  — TTL-stamped (prefetch deliveries, MultiGet fills, disk-tier
//            loads, lease-less mode); valid for ttl_ms after the stamp.
//
// The disk tier keeps one file per object (names percent-escaped like
// DiskBackend) plus a MAC'd ".cache-index" base image updated crash-safely
// via temp+rename, and a ".cache-log" of per-record-MAC'd insert/remove
// mutations appended between base rewrites. A full rewrite (compaction)
// happens only every kLogCompactEvery mutations or at Flush; in between,
// each mutation costs one O(record) append instead of an O(index) rewrite.
// On load the base is replayed first, then the log in order (a corrupt or
// torn record ends the replay — everything before it stands); entries
// whose file is missing/short and files neither base nor log name are
// discarded — after a crash between a data write and the log append, the
// inner store is the source of truth. The MAC (key in ".cache-key" beside
// the index) only detects corruption; it carries no authority. `disk_dir`
// must be a directory dedicated to this cache: recovery deletes files it
// cannot account for.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/cache_counters.hpp"
#include "common/bytes.hpp"
#include "common/result.hpp"
#include "storage/backend.hpp"

namespace nexus::cache {

struct CacheOptions {
  /// Memory-tier budget; 0 means NEXUS_CACHE_MEM_BUDGET or 64 MiB.
  std::size_t mem_budget_bytes = 0;
  /// Disk-tier budget; 0 means NEXUS_CACHE_DISK_BUDGET or 256 MiB.
  std::size_t disk_budget_bytes = 0;
  /// Disk-tier directory (created if needed). Empty disables the tier.
  std::string disk_dir;
  /// Clean-entry validity window; 0 means NEXUS_CACHE_TTL_MS or 5000.
  std::uint64_t ttl_ms = 0;

  /// kAuto enables writeback exactly when the inner backend can push
  /// invalidations (leases); kOn/kOff force it either way.
  enum class Writeback { kAuto, kOn, kOff };
  Writeback writeback = Writeback::kAuto;
  /// Dirty bytes above which Put flushes oldest-first batches inline.
  std::size_t writeback_high_water_bytes = 8u << 20;
  /// Objects per writeback flush batch.
  std::size_t writeback_batch_objects = 16;

  /// Names with these prefixes are write barriers: all dirty objects drain
  /// to the inner store BEFORE the mutation goes through (write-through).
  /// Defaults to the journal namespace so PR 1 ordering survives.
  std::vector<std::string> write_through_prefixes = {"nxj/"};

  /// Test clock (milliseconds); null uses monotonic time.
  std::function<std::uint64_t()> now_ms;
};

class CachedBackend final : public storage::StorageBackend {
 public:
  /// Wraps `inner`, loads the disk tier, registers the prefetch sink and
  /// subscribes to invalidations (falling back to TTL mode if the inner
  /// backend cannot push them).
  explicit CachedBackend(std::unique_ptr<storage::StorageBackend> inner,
                         CacheOptions options = {});
  /// Drains the writeback queue and persists the disk index.
  ~CachedBackend() override;

  Result<Bytes> Get(const std::string& name) override;
  Status Put(const std::string& name, ByteSpan data) override;
  Status Delete(const std::string& name) override;
  bool Exists(const std::string& name) override;
  std::vector<std::string> List(const std::string& prefix) override;
  Result<std::unique_ptr<PutStream>> OpenPutStream(
      const std::string& name) override;
  std::vector<Result<Bytes>> MultiGet(
      const std::vector<std::string>& names) override;
  std::vector<Result<Bytes>> MultiGetLeased(
      const std::vector<std::string>& names,
      std::vector<bool>* leased) override;
  std::vector<bool> MultiExists(const std::vector<std::string>& names) override;
  /// Forwards the hint unless the object is already cached.
  void Prefetch(const std::string& name) override;
  /// Write barrier: flushes every dirty object and persists the disk
  /// index. The cache's "close" in open-to-close consistency.
  Status Flush() override;

  [[nodiscard]] CacheCounters counters() const;
  /// True when the inner backend pushes invalidations (leases active at
  /// subscription time; a later channel loss demotes entries to TTL but
  /// does not flip this back).
  [[nodiscard]] bool lease_mode() const noexcept { return lease_mode_; }
  [[nodiscard]] std::size_t mem_bytes() const;
  [[nodiscard]] std::size_t dirty_bytes() const;

  /// Test/bench hook: drops every non-dirty entry from both tiers so the
  /// next read round is cold without losing pending writes.
  void DropCleanEntries();

 private:
  struct Entry {
    Bytes data;
    enum class State : std::uint8_t { kClean, kLeased, kDirty } state =
        State::kClean;
    std::uint64_t stamp_ms = 0; // TTL base for kClean
    std::uint64_t dirty_gen = 0;
    bool prefetched = false;       // origin was a speculative fetch
    bool prefetch_consumed = false;
    bool flushing = false; // in an in-flight writeback batch
    std::list<std::string>::iterator lru_it;
    std::list<std::string>::iterator dirty_it; // valid iff state == kDirty
  };
  struct DiskEntry {
    std::uint64_t size = 0;
    std::uint64_t stamp_ms = 0;
    std::list<std::string>::iterator lru_it;
  };

  [[nodiscard]] std::uint64_t NowMs() const;
  [[nodiscard]] bool WritebackEnabled() const noexcept;
  [[nodiscard]] bool IsWriteThroughName(const std::string& name) const;
  [[nodiscard]] bool EntryValidLocked(const Entry& entry) const;

  void TouchLocked(const std::string& name, Entry& entry);
  void CountPrefetchReadLocked(Entry& entry);
  /// Removes a memory entry; `demote` spills clean bytes to the disk tier.
  void RemoveEntryLocked(const std::string& name, bool demote);
  void EvictOverMemBudgetLocked();
  void InsertCleanLocked(const std::string& name, Bytes data,
                         Entry::State state, std::uint64_t stamp_ms,
                         bool prefetched);

  // Disk tier.
  void LoadDiskTierLocked();
  void PersistDiskIndexLocked();
  /// Appends one MAC'd insert/remove record to ".cache-log"; triggers a
  /// compaction (full base rewrite + log truncate) every kLogCompactEvery.
  void AppendDiskLogLocked(std::uint8_t op, const std::string& name,
                           std::uint64_t size);
  void DiskInsertLocked(const std::string& name, ByteSpan data,
                        std::uint64_t stamp_ms);
  void DiskRemoveLocked(const std::string& name);
  [[nodiscard]] Result<Bytes> DiskReadLocked(const std::string& name);
  [[nodiscard]] std::string DiskPathFor(const std::string& name) const;

  // Writeback. FlushOneBatch releases mu_ around the inner Puts; callers
  // must NOT hold mu_. Returns kNotFound (sentinel) when nothing is dirty.
  Status FlushOneBatch();
  Status DrainDirty();
  /// Barrier for mutations of write-through names; no-op otherwise.
  Status BarrierFor(const std::string& name);

  // Coherence callbacks (inner backend threads).
  void OnInvalidate(const std::vector<std::string>& names);
  void OnChannelDown();
  void OnPrefetchDelivered(const std::string& name, Result<Bytes> object);
  /// Stream commit published bytes the cache never saw: drop the entry.
  void OnStreamCommitted(const std::string& name);
  [[nodiscard]] std::optional<Bytes> TryDiskHitLocked(const std::string& name);

  void AddGlobal(const CacheCounters& delta) const;
  void NoteDirtyHighWaterLocked();

  friend class CachedPutStream;

  CacheOptions options_;
  bool lease_mode_ = false;

  mutable std::mutex mu_;
  bool channel_up_ = false; // guarded by mu_
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;         // MRU at front
  std::list<std::string> dirty_queue_; // oldest first
  std::size_t mem_bytes_ = 0;
  std::size_t dirty_bytes_ = 0;
  /// Per-name invalidation sequence: bumped on every invalidation (and on
  /// local Delete/stream commit) so a demand fetch that raced a concurrent
  /// mutation never installs the stale bytes it read.
  std::unordered_map<std::string, std::uint64_t> inval_seq_;

  bool disk_enabled_ = false;
  std::unordered_map<std::string, DiskEntry> disk_entries_;
  std::list<std::string> disk_lru_; // MRU at front
  std::size_t disk_bytes_ = 0;
  Bytes disk_mac_key_;
  unsigned disk_log_records_ = 0; // appended since the last compaction
  std::uint64_t disk_temp_seq_ = 0;

  CacheCounters counters_;

  // Declared last so it is destroyed FIRST: the inner backend joins its
  // demux/lease threads in its destructor, guaranteeing no sink or
  // invalidation callback runs against a partially-destroyed cache.
  std::unique_ptr<storage::StorageBackend> inner_;
};

} // namespace nexus::cache
