#include "cache/cache_counters.hpp"

#include <algorithm>
#include <mutex>

namespace nexus::cache {

namespace {

struct GlobalCounters {
  std::mutex mu;
  CacheCounters totals;
};

GlobalCounters& Globals() {
  static GlobalCounters g;
  return g;
}

} // namespace

CacheCounters GlobalCacheSnapshot() {
  GlobalCounters& g = Globals();
  const std::lock_guard<std::mutex> lock(g.mu);
  return g.totals;
}

void ResetGlobalCacheCounters() {
  GlobalCounters& g = Globals();
  const std::lock_guard<std::mutex> lock(g.mu);
  g.totals = CacheCounters{};
}

void AccumulateCacheCounters(CacheCounters& into, const CacheCounters& delta) {
  into.mem_hits += delta.mem_hits;
  into.disk_hits += delta.disk_hits;
  into.misses += delta.misses;
  into.evictions_mem += delta.evictions_mem;
  into.evictions_disk += delta.evictions_disk;
  into.writeback_batches += delta.writeback_batches;
  into.writeback_objects += delta.writeback_objects;
  into.dirty_bytes_high_water =
      std::max(into.dirty_bytes_high_water, delta.dirty_bytes_high_water);
  into.invalidations_received += delta.invalidations_received;
  into.prefetch_issued += delta.prefetch_issued;
  into.prefetch_hits += delta.prefetch_hits;
  into.prefetch_wasted_bytes += delta.prefetch_wasted_bytes;
  into.prefetch_joined += delta.prefetch_joined;
}

void GlobalCacheAdd(const CacheCounters& delta) {
  GlobalCounters& g = Globals();
  const std::lock_guard<std::mutex> lock(g.mu);
  AccumulateCacheCounters(g.totals, delta);
}

} // namespace nexus::cache
