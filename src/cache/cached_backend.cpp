#include "cache/cached_backend.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <random>

#include "common/clock.hpp"
#include "crypto/hmac.hpp"
#include "trace/trace.hpp"

namespace nexus::cache {

namespace {

constexpr std::uint32_t kIndexMagic = 0x4e584331; // "NXC1"
constexpr std::size_t kMacBytes = 32;
constexpr std::uint32_t kMaxIndexEntries = 1u << 20;
// Log records between full-index compactions. Every mutation in between
// costs one O(record) append instead of an O(index) rewrite.
constexpr unsigned kLogCompactEvery = 1024;
// Log record ops.
constexpr std::uint8_t kLogInsert = 1;
constexpr std::uint8_t kLogRemove = 2;

std::uint64_t EnvU64(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw, &end, 10);
  if (end == raw) return fallback;
  return static_cast<std::uint64_t>(v);
}

Result<Bytes> ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Error(ErrorCode::kNotFound, "no such file: " + path);
  Bytes data((std::istreambuf_iterator<char>(in)),
             std::istreambuf_iterator<char>());
  if (in.bad()) return Error(ErrorCode::kIOError, "read failed: " + path);
  return data;
}

// Tiny little-endian serializer for the disk index. The cache sits BELOW
// the net layer in the dependency graph, so it cannot borrow the wire
// codec; the index never crosses a trust boundary anyway (the MAC covers
// corruption, not hostility).
struct IndexWriter {
  Bytes out;
  void U32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back((v >> (8 * i)) & 0xff);
  }
  void U64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out.push_back((v >> (8 * i)) & 0xff);
  }
  void Str(const std::string& s) {
    U32(static_cast<std::uint32_t>(s.size()));
    for (const char c : s) out.push_back(static_cast<std::uint8_t>(c));
  }
};

struct IndexReader {
  ByteSpan in;
  std::size_t pos = 0;
  bool failed = false;
  std::uint32_t U32() {
    if (failed || in.size() - pos < 4) {
      failed = true;
      return 0;
    }
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{in[pos++]} << (8 * i);
    return v;
  }
  std::uint64_t U64() {
    if (failed || in.size() - pos < 8) {
      failed = true;
      return 0;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{in[pos++]} << (8 * i);
    return v;
  }
  std::string Str() {
    const std::uint32_t len = U32();
    if (failed || in.size() - pos < len) {
      failed = true;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(in.data()) + pos, len);
    pos += len;
    return s;
  }
};

bool WriteFileAtomic(const std::string& tmp_path, const std::string& final_path,
                     ByteSpan data) {
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
    out.flush();
    if (!out) {
      std::error_code rm;
      std::filesystem::remove(tmp_path, rm);
      return false;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path, final_path, ec);
  if (ec) {
    std::error_code rm;
    std::filesystem::remove(tmp_path, rm);
    return false;
  }
  return true;
}

} // namespace

// ---- construction / teardown ------------------------------------------------

CachedBackend::CachedBackend(std::unique_ptr<storage::StorageBackend> inner,
                             CacheOptions options)
    : options_(std::move(options)), inner_(std::move(inner)) {
  if (options_.mem_budget_bytes == 0) {
    options_.mem_budget_bytes = EnvU64("NEXUS_CACHE_MEM_BUDGET", 64u << 20);
  }
  if (options_.disk_budget_bytes == 0) {
    options_.disk_budget_bytes = EnvU64("NEXUS_CACHE_DISK_BUDGET", 256u << 20);
  }
  if (options_.ttl_ms == 0) {
    options_.ttl_ms = EnvU64("NEXUS_CACHE_TTL_MS", 5000);
  }
  if (!options_.disk_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options_.disk_dir, ec);
    if (!ec) {
      disk_enabled_ = true;
      const std::lock_guard<std::mutex> lock(mu_);
      LoadDiskTierLocked();
    }
  }
  inner_->SetPrefetchSink(
      [this](const std::string& name, Result<Bytes> object, bool /*leased*/) {
        OnPrefetchDelivered(name, std::move(object));
      });
  lease_mode_ = inner_->SubscribeInvalidations(
      [this](const std::vector<std::string>& names) { OnInvalidate(names); },
      [this] { OnChannelDown(); });
  {
    const std::lock_guard<std::mutex> lock(mu_);
    channel_up_ = lease_mode_;
  }
}

CachedBackend::~CachedBackend() {
  // Drain pending writes and persist the index; inner_ is declared last so
  // it is destroyed first afterwards, joining its callback threads while
  // the rest of the cache is still alive.
  (void)Flush();
}

// ---- small helpers ----------------------------------------------------------

std::uint64_t CachedBackend::NowMs() const {
  if (options_.now_ms) return options_.now_ms();
  return MonotonicNanos() / 1000000u;
}

bool CachedBackend::WritebackEnabled() const noexcept {
  switch (options_.writeback) {
    case CacheOptions::Writeback::kOn: return true;
    case CacheOptions::Writeback::kOff: return false;
    case CacheOptions::Writeback::kAuto: return lease_mode_;
  }
  return false;
}

bool CachedBackend::IsWriteThroughName(const std::string& name) const {
  for (const std::string& prefix : options_.write_through_prefixes) {
    if (name.starts_with(prefix)) return true;
  }
  return false;
}

bool CachedBackend::EntryValidLocked(const Entry& entry) const {
  switch (entry.state) {
    case Entry::State::kDirty: return true; // local truth until flushed
    case Entry::State::kLeased: return channel_up_;
    case Entry::State::kClean:
      return NowMs() < entry.stamp_ms + options_.ttl_ms;
  }
  return false;
}

void CachedBackend::TouchLocked(const std::string& /*name*/, Entry& entry) {
  lru_.splice(lru_.begin(), lru_, entry.lru_it);
}

void CachedBackend::CountPrefetchReadLocked(Entry& entry) {
  if (!entry.prefetched || entry.prefetch_consumed) return;
  entry.prefetch_consumed = true;
  CacheCounters d;
  d.prefetch_hits = 1;
  AccumulateCacheCounters(counters_, d);
  GlobalCacheAdd(d);
}

void CachedBackend::AddGlobal(const CacheCounters& delta) const {
  GlobalCacheAdd(delta);
}

void CachedBackend::NoteDirtyHighWaterLocked() {
  if (dirty_bytes_ <= counters_.dirty_bytes_high_water) return;
  counters_.dirty_bytes_high_water = dirty_bytes_;
  CacheCounters d;
  d.dirty_bytes_high_water = dirty_bytes_;
  GlobalCacheAdd(d);
}

void CachedBackend::RemoveEntryLocked(const std::string& name, bool demote) {
  const auto it = entries_.find(name);
  if (it == entries_.end()) return;
  Entry& entry = it->second;
  if (entry.state == Entry::State::kDirty) {
    dirty_queue_.erase(entry.dirty_it);
    dirty_bytes_ -= entry.data.size();
  } else if (entry.prefetched && !entry.prefetch_consumed) {
    CacheCounters d;
    d.prefetch_wasted_bytes = entry.data.size();
    AccumulateCacheCounters(counters_, d);
    GlobalCacheAdd(d);
  }
  mem_bytes_ -= entry.data.size();
  lru_.erase(entry.lru_it);
  if (demote && disk_enabled_ && entry.state != Entry::State::kDirty) {
    // A leased entry was valid this very moment, so its TTL restarts now;
    // a clean entry keeps its original stamp.
    const std::uint64_t stamp =
        entry.state == Entry::State::kLeased ? NowMs() : entry.stamp_ms;
    DiskInsertLocked(name, entry.data, stamp);
  }
  entries_.erase(it);
}

void CachedBackend::EvictOverMemBudgetLocked() {
  while (mem_bytes_ > options_.mem_budget_bytes && !lru_.empty()) {
    // Oldest evictable entry: dirty (and in-flight writeback) objects are
    // pinned until their bytes reach the inner store.
    std::string victim;
    for (auto it = std::prev(lru_.end());; --it) {
      const Entry& entry = entries_.at(*it);
      if (entry.state != Entry::State::kDirty && !entry.flushing) {
        victim = *it;
        break;
      }
      if (it == lru_.begin()) break;
    }
    if (victim.empty()) return; // everything left is pinned
    trace::Span span("cache.evict", "cache");
    CacheCounters d;
    d.evictions_mem = 1;
    AccumulateCacheCounters(counters_, d);
    GlobalCacheAdd(d);
    RemoveEntryLocked(victim, /*demote=*/true);
  }
}

void CachedBackend::InsertCleanLocked(const std::string& name, Bytes data,
                                      Entry::State state,
                                      std::uint64_t stamp_ms, bool prefetched) {
  lru_.push_front(name);
  Entry entry;
  entry.state = state;
  entry.stamp_ms = stamp_ms;
  entry.prefetched = prefetched;
  entry.lru_it = lru_.begin();
  entry.dirty_it = dirty_queue_.end();
  mem_bytes_ += data.size();
  entry.data = std::move(data);
  entries_.emplace(name, std::move(entry));
  EvictOverMemBudgetLocked();
}

// ---- read path --------------------------------------------------------------

std::optional<Bytes> CachedBackend::TryDiskHitLocked(const std::string& name) {
  if (!disk_enabled_) return std::nullopt;
  const auto it = disk_entries_.find(name);
  if (it == disk_entries_.end()) return std::nullopt;
  if (NowMs() >= it->second.stamp_ms + options_.ttl_ms) {
    DiskRemoveLocked(name);
    return std::nullopt;
  }
  auto data = DiskReadLocked(name);
  if (!data.ok()) {
    DiskRemoveLocked(name);
    return std::nullopt;
  }
  trace::Span span("cache.hit_disk", "cache");
  CacheCounters d;
  d.disk_hits = 1;
  AccumulateCacheCounters(counters_, d);
  GlobalCacheAdd(d);
  // Promote to the memory tier, TTL continuing from the disk stamp.
  InsertCleanLocked(name, data.value(), Entry::State::kClean,
                    it->second.stamp_ms, /*prefetched=*/false);
  return std::move(data.value());
}

Result<Bytes> CachedBackend::Get(const std::string& name) {
  std::uint64_t seq_before = 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(name);
    if (it != entries_.end()) {
      if (EntryValidLocked(it->second)) {
        trace::Span span("cache.hit_mem", "cache");
        TouchLocked(name, it->second);
        CountPrefetchReadLocked(it->second);
        CacheCounters d;
        d.mem_hits = 1;
        AccumulateCacheCounters(counters_, d);
        GlobalCacheAdd(d);
        return it->second.data;
      }
      RemoveEntryLocked(name, /*demote=*/false); // expired
    }
    if (auto disk = TryDiskHitLocked(name)) return std::move(*disk);
    CacheCounters d;
    d.misses = 1;
    AccumulateCacheCounters(counters_, d);
    GlobalCacheAdd(d);
    seq_before = inval_seq_[name];
  }
  trace::Span span("cache.miss", "cache");
  bool leased = false;
  Result<Bytes> fetched = inner_->GetLeased(name, &leased);
  if (!fetched.ok()) return fetched;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(name);
    const bool dirty_meanwhile =
        it != entries_.end() && it->second.state == Entry::State::kDirty;
    // Only install what we read if no invalidation (or local write) arrived
    // while the fetch was in flight — otherwise the bytes are already stale.
    if (inval_seq_[name] == seq_before && !dirty_meanwhile) {
      if (it != entries_.end()) RemoveEntryLocked(name, /*demote=*/false);
      InsertCleanLocked(name, fetched.value(),
                        leased && channel_up_ ? Entry::State::kLeased
                                              : Entry::State::kClean,
                        NowMs(), /*prefetched=*/false);
    }
  }
  return fetched;
}

std::vector<Result<Bytes>> CachedBackend::MultiGetLeased(
    const std::vector<std::string>& names, std::vector<bool>* leased) {
  // The cache is the lease tracker; callers above it get plain results.
  if (leased != nullptr) leased->assign(names.size(), false);
  return MultiGet(names);
}

std::vector<Result<Bytes>> CachedBackend::MultiGet(
    const std::vector<std::string>& names) {
  std::unordered_map<std::size_t, Bytes> served;
  std::vector<std::size_t> miss_idx;
  std::vector<std::uint64_t> miss_seq;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < names.size(); ++i) {
      const std::string& name = names[i];
      const auto it = entries_.find(name);
      if (it != entries_.end() && EntryValidLocked(it->second)) {
        TouchLocked(name, it->second);
        CountPrefetchReadLocked(it->second);
        CacheCounters d;
        d.mem_hits = 1;
        AccumulateCacheCounters(counters_, d);
        GlobalCacheAdd(d);
        served.emplace(i, it->second.data);
        continue;
      }
      if (auto disk = TryDiskHitLocked(name)) {
        served.emplace(i, std::move(*disk));
        continue;
      }
      CacheCounters d;
      d.misses = 1;
      AccumulateCacheCounters(counters_, d);
      GlobalCacheAdd(d);
      miss_idx.push_back(i);
      miss_seq.push_back(inval_seq_[name]);
    }
  }
  std::vector<Result<Bytes>> fetched;
  if (!miss_idx.empty()) {
    std::vector<std::string> missing;
    missing.reserve(miss_idx.size());
    for (const std::size_t i : miss_idx) missing.push_back(names[i]);
    // One batched round for the whole miss set, asking for leases (wire
    // v5 grants them per entry; older peers leave every flag false).
    std::vector<bool> lease_flags;
    fetched = inner_->MultiGetLeased(missing, &lease_flags);
    const std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t j = 0; j < miss_idx.size() && j < fetched.size(); ++j) {
      if (!fetched[j].ok()) continue;
      const std::string& name = names[miss_idx[j]];
      const auto it = entries_.find(name);
      const bool dirty_meanwhile =
          it != entries_.end() && it->second.state == Entry::State::kDirty;
      if (inval_seq_[name] != miss_seq[j] || dirty_meanwhile) continue;
      if (it != entries_.end()) RemoveEntryLocked(name, /*demote=*/false);
      const bool entry_leased =
          j < lease_flags.size() && lease_flags[j] && channel_up_;
      InsertCleanLocked(name, fetched[j].value(),
                        entry_leased ? Entry::State::kLeased
                                     : Entry::State::kClean,
                        NowMs(), /*prefetched=*/false);
    }
  }
  std::vector<Result<Bytes>> out;
  out.reserve(names.size());
  std::size_t next_miss = 0;
  for (std::size_t i = 0; i < names.size(); ++i) {
    const auto hit = served.find(i);
    if (hit != served.end()) {
      out.push_back(std::move(hit->second));
    } else if (next_miss < fetched.size()) {
      out.push_back(std::move(fetched[next_miss++]));
    } else {
      out.push_back(Error(ErrorCode::kInternal, "multi-get result missing"));
    }
  }
  return out;
}

bool CachedBackend::Exists(const std::string& name) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(name);
    if (it != entries_.end() && EntryValidLocked(it->second)) return true;
    if (disk_enabled_) {
      const auto dit = disk_entries_.find(name);
      if (dit != disk_entries_.end() &&
          NowMs() < dit->second.stamp_ms + options_.ttl_ms) {
        return true;
      }
    }
  }
  return inner_->Exists(name);
}

std::vector<bool> CachedBackend::MultiExists(
    const std::vector<std::string>& names) {
  std::vector<bool> out(names.size(), false);
  std::vector<std::size_t> unknown_idx;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < names.size(); ++i) {
      const auto it = entries_.find(names[i]);
      if (it != entries_.end() && EntryValidLocked(it->second)) {
        out[i] = true;
      } else {
        unknown_idx.push_back(i);
      }
    }
  }
  if (!unknown_idx.empty()) {
    std::vector<std::string> unknown;
    unknown.reserve(unknown_idx.size());
    for (const std::size_t i : unknown_idx) unknown.push_back(names[i]);
    const std::vector<bool> inner_out = inner_->MultiExists(unknown);
    for (std::size_t j = 0; j < unknown_idx.size() && j < inner_out.size();
         ++j) {
      out[unknown_idx[j]] = inner_out[j];
    }
  }
  return out;
}

std::vector<std::string> CachedBackend::List(const std::string& prefix) {
  // Dirty objects must be visible to a listing, so drain first.
  (void)DrainDirty();
  return inner_->List(prefix);
}

void CachedBackend::Prefetch(const std::string& name) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(name);
    if (it != entries_.end() && EntryValidLocked(it->second)) return;
    if (disk_enabled_) {
      const auto dit = disk_entries_.find(name);
      if (dit != disk_entries_.end() &&
          NowMs() < dit->second.stamp_ms + options_.ttl_ms) {
        return;
      }
    }
  }
  inner_->Prefetch(name);
}

// ---- write path -------------------------------------------------------------

Status CachedBackend::Put(const std::string& name, ByteSpan data) {
  if (WritebackEnabled() && !IsWriteThroughName(name)) {
    bool over_high_water = false;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      DiskRemoveLocked(name); // any demoted copy is stale now
      const auto it = entries_.find(name);
      if (it == entries_.end()) {
        lru_.push_front(name);
        Entry entry;
        entry.state = Entry::State::kDirty;
        entry.stamp_ms = NowMs();
        entry.lru_it = lru_.begin();
        dirty_queue_.push_back(name);
        entry.dirty_it = std::prev(dirty_queue_.end());
        entry.data = ToBytes(data);
        mem_bytes_ += entry.data.size();
        dirty_bytes_ += entry.data.size();
        entries_.emplace(name, std::move(entry));
      } else {
        Entry& entry = it->second;
        if (entry.state == Entry::State::kDirty) {
          dirty_bytes_ -= entry.data.size();
        } else {
          if (entry.prefetched && !entry.prefetch_consumed) {
            CacheCounters d;
            d.prefetch_wasted_bytes = entry.data.size();
            AccumulateCacheCounters(counters_, d);
            GlobalCacheAdd(d);
          }
          dirty_queue_.push_back(name);
          entry.dirty_it = std::prev(dirty_queue_.end());
        }
        mem_bytes_ -= entry.data.size();
        entry.data = ToBytes(data);
        mem_bytes_ += entry.data.size();
        dirty_bytes_ += entry.data.size();
        entry.state = Entry::State::kDirty;
        ++entry.dirty_gen;
        entry.prefetched = false;
        TouchLocked(name, entry);
      }
      NoteDirtyHighWaterLocked();
      EvictOverMemBudgetLocked();
      over_high_water = dirty_bytes_ > options_.writeback_high_water_bytes;
    }
    while (over_high_water) {
      const Status st = FlushOneBatch();
      if (!st.ok()) {
        // kNotFound is the "nothing left to flush" sentinel; anything else
        // is a real inner-store failure the next barrier will surface too.
        if (st.code() == ErrorCode::kNotFound) break;
        return st;
      }
      const std::lock_guard<std::mutex> lock(mu_);
      over_high_water = dirty_bytes_ > options_.writeback_high_water_bytes;
    }
    return Status::Ok();
  }

  // Write-through (journal namespace, or no-lease fallback). Barrier
  // first: a journal record or truncation must never reach the inner
  // store ahead of data writes it assumes are durable.
  if (IsWriteThroughName(name)) {
    NEXUS_RETURN_IF_ERROR(DrainDirty());
  }
  std::uint64_t seq_before = 0;
  if (lease_mode_) {
    const std::lock_guard<std::mutex> lock(mu_);
    seq_before = inval_seq_[name];
  }
  bool write_lease = false;
  const Status st = lease_mode_ ? inner_->PutLeased(name, data, &write_lease)
                                : inner_->Put(name, data);
  if (!st.ok()) return st;
  const std::lock_guard<std::mutex> lock(mu_);
  DiskRemoveLocked(name);
  RemoveEntryLocked(name, /*demote=*/false);
  const bool fresh = inval_seq_[name] == seq_before;
  ++inval_seq_[name];
  if (!lease_mode_) {
    // TTL mode: our own write is the freshest value we can know; cache it
    // for the staleness window.
    InsertCleanLocked(name, ToBytes(data), Entry::State::kClean, NowMs(),
                      /*prefetched=*/false);
  } else if (write_lease && channel_up_ && fresh) {
    // The server granted a WRITE lease (wire v5): we keep our own bytes
    // and will be invalidated only when ANOTHER client mutates the name —
    // not by our own write. `fresh` guards the race where a concurrent
    // writer's invalidation arrived between our Put and this insert: the
    // grant was already broken, so installing would retain stale bytes.
    InsertCleanLocked(name, ToBytes(data), Entry::State::kLeased, NowMs(),
                      /*prefetched=*/false);
  }
  return Status::Ok();
}

Status CachedBackend::Delete(const std::string& name) {
  if (IsWriteThroughName(name)) {
    NEXUS_RETURN_IF_ERROR(DrainDirty());
  }
  bool was_dirty = false;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(name);
    was_dirty = it != entries_.end() && it->second.state == Entry::State::kDirty;
    RemoveEntryLocked(name, /*demote=*/false);
    DiskRemoveLocked(name);
    ++inval_seq_[name];
  }
  const Status st = inner_->Delete(name);
  if (!st.ok() && st.code() == ErrorCode::kNotFound && was_dirty) {
    // The object only ever existed in our writeback queue.
    return Status::Ok();
  }
  return st;
}

class CachedPutStream final : public storage::StorageBackend::PutStream {
 public:
  CachedPutStream(CachedBackend& cache, std::string name,
                  std::unique_ptr<storage::StorageBackend::PutStream> inner)
      : cache_(cache), name_(std::move(name)), inner_(std::move(inner)) {}

  Status Append(ByteSpan data) override { return inner_->Append(data); }

  Status Commit() override {
    if (cache_.IsWriteThroughName(name_)) {
      const Status barrier = cache_.DrainDirty();
      if (!barrier.ok()) {
        inner_->Abort();
        return barrier;
      }
    }
    const Status st = inner_->Commit();
    if (st.ok()) cache_.OnStreamCommitted(name_);
    return st;
  }

  void Abort() override { inner_->Abort(); }

 private:
  CachedBackend& cache_;
  std::string name_;
  std::unique_ptr<storage::StorageBackend::PutStream> inner_;
};

Result<std::unique_ptr<storage::StorageBackend::PutStream>>
CachedBackend::OpenPutStream(const std::string& name) {
  auto inner_stream = inner_->OpenPutStream(name);
  if (!inner_stream.ok()) return inner_stream.status();
  return std::unique_ptr<PutStream>(new CachedPutStream(
      *this, name, std::move(inner_stream.value())));
}

void CachedBackend::OnStreamCommitted(const std::string& name) {
  // The stream's bytes went straight to the inner store; whatever the
  // cache holds for that name is stale now.
  const std::lock_guard<std::mutex> lock(mu_);
  ++inval_seq_[name];
  RemoveEntryLocked(name, /*demote=*/false);
  DiskRemoveLocked(name);
}

// ---- writeback --------------------------------------------------------------

Status CachedBackend::FlushOneBatch() {
  struct Item {
    std::string name;
    Bytes data;
    std::uint64_t gen = 0;
    std::uint64_t seq = 0;
    bool flushed = false;
    bool leased = false;
  };
  std::vector<Item> batch;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const std::string& name : dirty_queue_) {
      if (batch.size() >= options_.writeback_batch_objects) break;
      Entry& entry = entries_.at(name);
      if (entry.flushing) continue; // another flusher owns it
      entry.flushing = true;
      batch.push_back(
          Item{name, entry.data, entry.dirty_gen, inval_seq_[name], false,
               false});
    }
  }
  if (batch.empty()) {
    return Error(ErrorCode::kNotFound, "writeback queue drained");
  }
  trace::Span span("cache.writeback_flush", "cache");
  Status first_error = Status::Ok();
  for (Item& item : batch) {
    const Status st = lease_mode_
                          ? inner_->PutLeased(item.name, item.data,
                                              &item.leased)
                          : inner_->Put(item.name, item.data);
    if (st.ok()) {
      item.flushed = true;
    } else if (first_error.ok()) {
      first_error = st;
    }
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    CacheCounters d;
    d.writeback_batches = 1;
    for (Item& item : batch) {
      const auto it = entries_.find(item.name);
      if (it == entries_.end()) continue;
      Entry& entry = it->second;
      entry.flushing = false;
      // A re-dirty during the flush (gen mismatch) keeps the entry queued;
      // a failed Put leaves it dirty for the next barrier to retry.
      if (!item.flushed || entry.state != Entry::State::kDirty ||
          entry.dirty_gen != item.gen) {
        continue;
      }
      ++d.writeback_objects;
      dirty_queue_.erase(entry.dirty_it);
      dirty_bytes_ -= entry.data.size();
      if (!lease_mode_) {
        entry.state = Entry::State::kClean;
        entry.stamp_ms = NowMs();
        entry.dirty_it = dirty_queue_.end();
      } else if (item.leased && channel_up_ &&
                 inval_seq_[item.name] == item.seq) {
        // The flush earned a WRITE lease (wire v5): the entry stays
        // resident under it. The seq check rejects the race where another
        // writer's invalidation landed mid-flush — the grant is already
        // broken then, and keeping the copy would retain stale bytes.
        entry.state = Entry::State::kLeased;
        entry.stamp_ms = NowMs();
        entry.dirty_it = dirty_queue_.end();
      } else {
        // No write lease (v4 peer, channel down, or broken mid-flush): a
        // retained copy could go stale silently. Drop it; the next read
        // re-fetches under a lease.
        mem_bytes_ -= entry.data.size();
        lru_.erase(entry.lru_it);
        entries_.erase(it);
      }
    }
    AccumulateCacheCounters(counters_, d);
    GlobalCacheAdd(d);
  }
  return first_error;
}

Status CachedBackend::DrainDirty() {
  while (true) {
    const Status st = FlushOneBatch();
    if (st.code() == ErrorCode::kNotFound) return Status::Ok(); // drained
    if (!st.ok()) return st;
  }
}

Status CachedBackend::Flush() {
  const Status st = DrainDirty();
  const std::lock_guard<std::mutex> lock(mu_);
  PersistDiskIndexLocked();
  return st;
}

// ---- coherence callbacks ----------------------------------------------------

void CachedBackend::OnInvalidate(const std::vector<std::string>& names) {
  trace::Span span("cache.invalidate", "cache");
  const std::lock_guard<std::mutex> lock(mu_);
  CacheCounters d;
  for (const std::string& name : names) {
    ++inval_seq_[name];
    ++d.invalidations_received;
    const auto it = entries_.find(name);
    // Dirty entries survive: our pending write supersedes the remote one
    // under last-writer-wins, and dropping it would lose data.
    if (it != entries_.end() && it->second.state != Entry::State::kDirty) {
      RemoveEntryLocked(name, /*demote=*/false);
    }
    DiskRemoveLocked(name);
  }
  AccumulateCacheCounters(counters_, d);
  GlobalCacheAdd(d);
}

void CachedBackend::OnChannelDown() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (!channel_up_) return;
  channel_up_ = false;
  // No more invalidations will arrive: every lease degrades to a TTL
  // stamped now, bounding staleness at ttl_ms like lease-less mode.
  const std::uint64_t now = NowMs();
  for (auto& [name, entry] : entries_) {
    if (entry.state == Entry::State::kLeased) {
      entry.state = Entry::State::kClean;
      entry.stamp_ms = now;
    }
  }
}

void CachedBackend::OnPrefetchDelivered(const std::string& name,
                                        Result<Bytes> object) {
  if (!object.ok()) return; // negative results are not cached
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(name);
  if (it != entries_.end()) {
    if (EntryValidLocked(it->second)) return; // demand path won the race
    RemoveEntryLocked(name, /*demote=*/false);
  }
  // Deliveries race invalidation pushes on a different connection, so a
  // prefetched object is never trusted as leased — TTL bounds its life.
  InsertCleanLocked(name, std::move(object.value()), Entry::State::kClean,
                    NowMs(), /*prefetched=*/true);
}

// ---- observability / test hooks ---------------------------------------------

CacheCounters CachedBackend::counters() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

std::size_t CachedBackend::mem_bytes() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return mem_bytes_;
}

std::size_t CachedBackend::dirty_bytes() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return dirty_bytes_;
}

void CachedBackend::DropCleanEntries() {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> victims;
  for (const auto& [name, entry] : entries_) {
    if (entry.state != Entry::State::kDirty && !entry.flushing) {
      victims.push_back(name);
    }
  }
  for (const std::string& name : victims) {
    RemoveEntryLocked(name, /*demote=*/false);
  }
  std::vector<std::string> disk_victims;
  for (const auto& [name, entry] : disk_entries_) disk_victims.push_back(name);
  for (const std::string& name : disk_victims) DiskRemoveLocked(name);
}

// ---- disk tier --------------------------------------------------------------

std::string CachedBackend::DiskPathFor(const std::string& name) const {
  return options_.disk_dir + "/" + storage::EscapeName(name);
}

void CachedBackend::DiskInsertLocked(const std::string& name, ByteSpan data,
                                     std::uint64_t stamp_ms) {
  if (!disk_enabled_ || data.size() > options_.disk_budget_bytes) return;
  const std::string tmp = options_.disk_dir + "/.ctmp-" +
                          std::to_string(disk_temp_seq_++);
  if (!WriteFileAtomic(tmp, DiskPathFor(name), data)) return;
  const auto it = disk_entries_.find(name);
  if (it != disk_entries_.end()) {
    disk_bytes_ -= it->second.size;
    disk_lru_.erase(it->second.lru_it);
    disk_entries_.erase(it);
  }
  disk_lru_.push_front(name);
  DiskEntry entry;
  entry.size = data.size();
  entry.stamp_ms = stamp_ms;
  entry.lru_it = disk_lru_.begin();
  disk_bytes_ += entry.size;
  disk_entries_.emplace(name, entry);
  while (disk_bytes_ > options_.disk_budget_bytes && !disk_lru_.empty()) {
    const std::string victim = disk_lru_.back();
    CacheCounters d;
    d.evictions_disk = 1;
    AccumulateCacheCounters(counters_, d);
    GlobalCacheAdd(d);
    DiskRemoveLocked(victim);
  }
  AppendDiskLogLocked(kLogInsert, name, data.size());
}

void CachedBackend::DiskRemoveLocked(const std::string& name) {
  if (!disk_enabled_) return;
  const auto it = disk_entries_.find(name);
  if (it == disk_entries_.end()) return;
  disk_bytes_ -= it->second.size;
  disk_lru_.erase(it->second.lru_it);
  disk_entries_.erase(it);
  std::error_code ec;
  std::filesystem::remove(DiskPathFor(name), ec);
  AppendDiskLogLocked(kLogRemove, name, 0);
}

void CachedBackend::AppendDiskLogLocked(std::uint8_t op,
                                        const std::string& name,
                                        std::uint64_t size) {
  // One record: [u32 body length][body][32-byte HMAC(body)]. A torn or
  // corrupt record ends the load-time replay — everything before it
  // stands, and any data file past it is swept as an orphan.
  IndexWriter body;
  body.out.push_back(op);
  body.U64(size);
  body.Str(name);
  const auto mac = crypto::HmacSha256(disk_mac_key_, body.out);
  IndexWriter record;
  record.U32(static_cast<std::uint32_t>(body.out.size()));
  Append(record.out, body.out);
  Append(record.out, ByteSpan(mac.data(), mac.size()));
  {
    std::ofstream log(options_.disk_dir + "/.cache-log",
                      std::ios::binary | std::ios::app);
    if (log) {
      log.write(reinterpret_cast<const char*>(record.out.data()),
                static_cast<std::streamsize>(record.out.size()));
      log.flush();
    }
  }
  if (++disk_log_records_ >= kLogCompactEvery) {
    PersistDiskIndexLocked(); // compaction: full base rewrite + log reset
  }
}

Result<Bytes> CachedBackend::DiskReadLocked(const std::string& name) {
  const auto it = disk_entries_.find(name);
  if (it == disk_entries_.end()) {
    return Error(ErrorCode::kNotFound, "not in disk tier: " + name);
  }
  auto data = ReadWholeFile(DiskPathFor(name));
  if (data.ok() && data.value().size() != it->second.size) {
    return Error(ErrorCode::kIntegrityViolation,
                 "disk tier size mismatch: " + name);
  }
  if (data.ok()) disk_lru_.splice(disk_lru_.begin(), disk_lru_, it->second.lru_it);
  return data;
}

void CachedBackend::PersistDiskIndexLocked() {
  if (!disk_enabled_) return;
  IndexWriter payload;
  payload.U32(kIndexMagic);
  payload.U32(static_cast<std::uint32_t>(disk_entries_.size()));
  // LRU order (MRU first) so a reload preserves eviction priority.
  for (const std::string& name : disk_lru_) {
    payload.Str(name);
    payload.U64(disk_entries_.at(name).size);
  }
  const auto mac = crypto::HmacSha256(disk_mac_key_, payload.out);
  Bytes file;
  Append(file, ByteSpan(mac.data(), mac.size()));
  Append(file, payload.out);
  WriteFileAtomic(options_.disk_dir + "/.cache-index.tmp",
                  options_.disk_dir + "/.cache-index", file);
  // The base image now covers every mutation the log recorded: truncate
  // it. (Order matters: a crash between rename and truncate replays log
  // records that are already in the base, which is idempotent.)
  std::ofstream(options_.disk_dir + "/.cache-log",
                std::ios::binary | std::ios::trunc);
  disk_log_records_ = 0;
}

void CachedBackend::LoadDiskTierLocked() {
  // MAC key: created on first use, persisted beside the index. It detects
  // corruption only — the cache holds ciphertext and sits outside the TCB,
  // so a forged index can at worst cause misses or enclave-detected junk.
  const std::string key_path = options_.disk_dir + "/.cache-key";
  if (auto key = ReadWholeFile(key_path); key.ok() && key.value().size() == 32) {
    disk_mac_key_ = std::move(key.value());
  } else {
    disk_mac_key_.resize(32);
    std::random_device rd;
    for (auto& b : disk_mac_key_) b = static_cast<std::uint8_t>(rd());
    WriteFileAtomic(options_.disk_dir + "/.cache-key.tmp", key_path,
                    disk_mac_key_);
  }

  const std::uint64_t now = NowMs();
  auto index = ReadWholeFile(options_.disk_dir + "/.cache-index");
  if (index.ok() && index.value().size() >= kMacBytes) {
    const ByteSpan whole(index.value());
    const ByteSpan mac = whole.subspan(0, kMacBytes);
    const ByteSpan payload = whole.subspan(kMacBytes);
    const auto expect = crypto::HmacSha256(disk_mac_key_, payload);
    if (std::equal(mac.begin(), mac.end(), expect.begin(), expect.end())) {
      IndexReader reader{payload};
      const std::uint32_t magic = reader.U32();
      const std::uint32_t count = reader.U32();
      if (!reader.failed && magic == kIndexMagic && count <= kMaxIndexEntries) {
        for (std::uint32_t i = 0; i < count; ++i) {
          const std::string name = reader.Str();
          const std::uint64_t size = reader.U64();
          if (reader.failed) break; // truncated index: stop here
          std::error_code ec;
          const auto on_disk = std::filesystem::file_size(DiskPathFor(name), ec);
          if (ec || on_disk != size) continue; // discarded below
          disk_lru_.push_back(name); // index is MRU-first
          DiskEntry entry;
          entry.size = size;
          // Entries inherit a fresh TTL at load: coherence while we were
          // down is unknowable, so staleness is bounded the same way as
          // lease-less mode.
          entry.stamp_ms = now;
          entry.lru_it = std::prev(disk_lru_.end());
          disk_bytes_ += entry.size;
          disk_entries_.emplace(name, entry);
        }
      }
    }
  }

  // Replay the mutation log on top of the base image, in order. Each
  // record carries its own MAC; the first torn or corrupt record ends the
  // replay (everything past it is unaccounted and swept below). Inserts
  // move the name to the MRU front — the log is chronological, so the
  // final order is the true recency order.
  if (auto log = ReadWholeFile(options_.disk_dir + "/.cache-log"); log.ok()) {
    const ByteSpan raw(log.value());
    std::size_t pos = 0;
    while (pos + 4 <= raw.size()) {
      IndexReader len_reader{raw.subspan(pos, 4)};
      const std::uint32_t body_len = len_reader.U32();
      if (body_len == 0 || body_len > (1u << 16) ||
          pos + 4 + body_len + kMacBytes > raw.size()) {
        break; // torn tail
      }
      const ByteSpan body = raw.subspan(pos + 4, body_len);
      const ByteSpan mac = raw.subspan(pos + 4 + body_len, kMacBytes);
      const auto expect = crypto::HmacSha256(disk_mac_key_, body);
      if (!std::equal(mac.begin(), mac.end(), expect.begin(), expect.end())) {
        break; // corrupt record: nothing after it can be trusted
      }
      pos += 4 + body_len + kMacBytes;
      if (body.empty()) break;
      const std::uint8_t op = body[0];
      IndexReader body_reader{body.subspan(1)};
      const std::uint64_t size = body_reader.U64();
      const std::string name = body_reader.Str();
      if (body_reader.failed) break;
      const auto it = disk_entries_.find(name);
      if (it != disk_entries_.end()) {
        disk_bytes_ -= it->second.size;
        disk_lru_.erase(it->second.lru_it);
        disk_entries_.erase(it);
      }
      if (op == kLogInsert) {
        std::error_code ec;
        const auto on_disk = std::filesystem::file_size(DiskPathFor(name), ec);
        if (ec || on_disk != size) continue; // file lost or torn: skip
        disk_lru_.push_front(name);
        DiskEntry entry;
        entry.size = size;
        entry.stamp_ms = now; // same fresh-TTL rule as base entries
        entry.lru_it = disk_lru_.begin();
        disk_bytes_ += entry.size;
        disk_entries_.emplace(name, entry);
      }
      // kLogRemove (and unknown ops): the erase above is the whole effect.
    }
  }

  // Crash recovery: delete any data file the (MAC-verified) index cannot
  // account for — a crash between a data write and the index update means
  // the inner store is the source of truth for those objects.
  std::error_code ec;
  for (const auto& dirent :
       std::filesystem::directory_iterator(options_.disk_dir, ec)) {
    std::error_code stat_ec;
    if (!dirent.is_regular_file(stat_ec) || stat_ec) continue;
    const std::string file = dirent.path().filename().string();
    if (file.empty() || file.front() == '.') continue; // our metadata
    if (disk_entries_.contains(storage::UnescapeName(file))) continue;
    std::error_code rm;
    std::filesystem::remove(dirent.path(), rm);
  }

  while (disk_bytes_ > options_.disk_budget_bytes && !disk_lru_.empty()) {
    DiskRemoveLocked(disk_lru_.back());
  }
}

} // namespace nexus::cache
