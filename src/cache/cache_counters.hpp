// Client object-cache traffic counters.
//
// Same shape as net::NetCounters: a plain aggregate with PR 4 delta
// semantics (counters subtract, gauges keep the later snapshot) plus a
// process-global mirror so ProfileSnapshot can report cache behavior
// without threading a CachedBackend pointer through every layer. The PR 5
// readahead counters (prefetch_issued/hits/wasted_bytes) live here now —
// RemoteBackend's private FIFO is gone and speculative fetches land in the
// cache — but ProfileSnapshot keeps the old net.* names alive as aliases.
#pragma once

#include <cstdint>

namespace nexus::cache {

struct CacheCounters {
  // Read path.
  std::uint64_t mem_hits = 0;
  std::uint64_t disk_hits = 0;
  std::uint64_t misses = 0;

  // Capacity management.
  std::uint64_t evictions_mem = 0;
  std::uint64_t evictions_disk = 0;

  // Write path.
  std::uint64_t writeback_batches = 0;
  std::uint64_t writeback_objects = 0;
  std::uint64_t dirty_bytes_high_water = 0; // gauge

  // Coherence.
  std::uint64_t invalidations_received = 0;

  // Speculative readahead (owned here since the cache unification; issued
  // is counted by RemoteBackend when a speculative Get actually departs,
  // hits/wasted by the cache when the prefetched entry is consumed or
  // evicted unread).
  std::uint64_t prefetch_issued = 0;
  std::uint64_t prefetch_hits = 0;
  std::uint64_t prefetch_wasted_bytes = 0;
  // Demand Gets that joined an in-flight prefetch RPC instead of
  // re-issuing it (counted by RemoteBackend at the join).
  std::uint64_t prefetch_joined = 0;

  /// Delta between two snapshots: counters subtract; the high-water gauge
  /// keeps the later snapshot's value.
  friend CacheCounters operator-(const CacheCounters& a,
                                 const CacheCounters& b) {
    CacheCounters out;
    out.mem_hits = a.mem_hits - b.mem_hits;
    out.disk_hits = a.disk_hits - b.disk_hits;
    out.misses = a.misses - b.misses;
    out.evictions_mem = a.evictions_mem - b.evictions_mem;
    out.evictions_disk = a.evictions_disk - b.evictions_disk;
    out.writeback_batches = a.writeback_batches - b.writeback_batches;
    out.writeback_objects = a.writeback_objects - b.writeback_objects;
    out.dirty_bytes_high_water = a.dirty_bytes_high_water;
    out.invalidations_received =
        a.invalidations_received - b.invalidations_received;
    out.prefetch_issued = a.prefetch_issued - b.prefetch_issued;
    out.prefetch_hits = a.prefetch_hits - b.prefetch_hits;
    out.prefetch_wasted_bytes =
        a.prefetch_wasted_bytes - b.prefetch_wasted_bytes;
    out.prefetch_joined = a.prefetch_joined - b.prefetch_joined;
    return out;
  }
};

/// Folds `delta` into `into`: counters accumulate, the high-water gauge
/// takes the maximum. Shared by instance counters and the global mirror.
void AccumulateCacheCounters(CacheCounters& into, const CacheCounters& delta);

/// Process-wide totals across every cache instance (and RemoteBackend's
/// prefetch submissions). Thread-safe.
[[nodiscard]] CacheCounters GlobalCacheSnapshot();
void ResetGlobalCacheCounters();
/// Folds `delta` into the global totals; the high-water gauge takes the
/// maximum instead of accumulating.
void GlobalCacheAdd(const CacheCounters& delta);

} // namespace nexus::cache
