#include "crypto/gcm.hpp"

#include <cstring>

#include "crypto/aesni.hpp"
#include "crypto/ct.hpp"

namespace nexus::crypto {
namespace {

// Reduction constants for the 4-bit table method: last4[r] = r * x^-4 high
// bits folded through the GCM polynomial (Shoup's method, as in mbedTLS).
constexpr std::uint64_t kLast4[16] = {
    0x0000, 0x1c20, 0x3840, 0x2460, 0x7080, 0x6ca0, 0x48c0, 0x54e0,
    0xe100, 0xfd20, 0xd940, 0xc560, 0x9180, 0x8da0, 0xa9c0, 0xb5e0,
};

std::uint64_t LoadBe64(const std::uint8_t* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | p[i];
  return v;
}

void StoreBe64(std::uint64_t v, std::uint8_t* p) noexcept {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (56 - 8 * i));
}

} // namespace

Ghash::Ghash(const std::uint8_t h[16], bool force_portable) noexcept {
  std::memcpy(h_, h, 16);
  // force_portable is checked FIRST: the AES-NI dispatch self-test builds
  // its reference with a forced-portable Ghash while HasAesHardware()'s
  // own initialization is in flight — short-circuiting here keeps that
  // from recursing into the in-progress static.
  use_pclmul_ = !force_portable && HasAesHardware();

  std::uint64_t vh = LoadBe64(h);
  std::uint64_t vl = LoadBe64(h + 8);

  hh_[8] = vh;
  hl_[8] = vl;
  hh_[0] = 0;
  hl_[0] = 0;

  for (int i = 4; i > 0; i >>= 1) {
    // Divide by x (shift right one bit) with reduction.
    const std::uint32_t t = static_cast<std::uint32_t>(vl & 1) * 0xe1000000U;
    vl = (vh << 63) | (vl >> 1);
    vh = (vh >> 1) ^ (static_cast<std::uint64_t>(t) << 32);
    hh_[i] = vh;
    hl_[i] = vl;
  }
  for (int i = 2; i <= 8; i *= 2) {
    for (int j = 1; j < i; ++j) {
      hh_[i + j] = hh_[i] ^ hh_[j];
      hl_[i + j] = hl_[i] ^ hl_[j];
    }
  }
}

void Ghash::MulY() noexcept {
  if (use_pclmul_) {
    static constexpr std::uint8_t kZero[16] = {};
    PclmulGhashBlock(y_, kZero, h_);
    return;
  }
  std::uint8_t lo = y_[15] & 0xf;
  std::uint64_t zh = hh_[lo];
  std::uint64_t zl = hl_[lo];

  for (int i = 15; i >= 0; --i) {
    lo = y_[i] & 0xf;
    const std::uint8_t hi = (y_[i] >> 4) & 0xf;
    if (i != 15) {
      const std::uint8_t rem = static_cast<std::uint8_t>(zl & 0xf);
      zl = (zh << 60) | (zl >> 4);
      zh = zh >> 4;
      zh ^= kLast4[rem] << 48;
      zh ^= hh_[lo];
      zl ^= hl_[lo];
    }
    const std::uint8_t rem = static_cast<std::uint8_t>(zl & 0xf);
    zl = (zh << 60) | (zl >> 4);
    zh = zh >> 4;
    zh ^= kLast4[rem] << 48;
    zh ^= hh_[hi];
    zl ^= hl_[hi];
  }
  StoreBe64(zh, y_);
  StoreBe64(zl, y_ + 8);
}

void Ghash::Update(ByteSpan data) noexcept {
  std::size_t pos = 0;
  while (pos < data.size()) {
    const std::size_t take =
        std::min<std::size_t>(16 - pending_len_, data.size() - pos);
    std::memcpy(pending_ + pending_len_, data.data() + pos, take);
    pending_len_ += take;
    pos += take;
    if (pending_len_ == 16) {
      for (int i = 0; i < 16; ++i) y_[i] ^= pending_[i];
      MulY();
      pending_len_ = 0;
    }
  }
}

void Ghash::FlushBlock() noexcept {
  if (pending_len_ > 0) {
    std::memset(pending_ + pending_len_, 0, 16 - pending_len_);
    for (int i = 0; i < 16; ++i) y_[i] ^= pending_[i];
    MulY();
    pending_len_ = 0;
  }
}

void Ghash::FinishLengths(std::uint64_t aad_bytes, std::uint64_t ct_bytes,
                          std::uint8_t out[16]) noexcept {
  FlushBlock();
  std::uint8_t len_block[16];
  StoreBe64(aad_bytes * 8, len_block);
  StoreBe64(ct_bytes * 8, len_block + 8);
  for (int i = 0; i < 16; ++i) y_[i] ^= len_block[i];
  MulY();
  std::memcpy(out, y_, 16);
}

ByteArray<16> Ghash::State() noexcept {
  FlushBlock();
  ByteArray<16> out;
  std::memcpy(out.data(), y_, 16);
  return out;
}

namespace {

// Computes the GCM tag over aad/ct and writes it to `tag`.
void ComputeTag(const Aes& aes, ByteSpan iv, ByteSpan aad, ByteSpan ct,
                std::uint8_t tag[16]) noexcept {
  std::uint8_t h[16] = {};
  aes.EncryptBlock(h, h);
  Ghash ghash(h);
  ghash.Update(aad);
  ghash.FlushBlock();
  ghash.Update(ct);
  std::uint8_t s[16];
  ghash.FinishLengths(aad.size(), ct.size(), s);

  // E(K, J0) where J0 = IV || 0^31 || 1 for 12-byte IVs.
  std::uint8_t j0[16] = {};
  std::memcpy(j0, iv.data(), kGcmIvSize);
  j0[15] = 1;
  std::uint8_t ekj0[16];
  aes.EncryptBlock(j0, ekj0);
  for (int i = 0; i < 16; ++i) tag[i] = s[i] ^ ekj0[i];
}

} // namespace

Status GcmSealInto(const Aes& aes, ByteSpan iv, ByteSpan aad,
                   ByteSpan plaintext, MutableByteSpan out) {
  if (iv.size() != kGcmIvSize) {
    return Error(ErrorCode::kCryptoFailure, "GCM IV must be 12 bytes");
  }
  if (out.size() != plaintext.size() + kGcmTagSize) {
    return Error(ErrorCode::kCryptoFailure, "GCM output buffer size mismatch");
  }

  // CTR starts at J0 + 1.
  std::uint8_t ctr[16] = {};
  std::memcpy(ctr, iv.data(), kGcmIvSize);
  ctr[15] = 2;
  AesCtrXor(aes, ctr, plaintext, MutableByteSpan(out.data(), plaintext.size()));

  ComputeTag(aes, iv, aad, ByteSpan(out.data(), plaintext.size()),
             out.data() + plaintext.size());
  return Status::Ok();
}

Result<Bytes> GcmSeal(const Aes& aes, ByteSpan iv, ByteSpan aad,
                      ByteSpan plaintext) {
  Bytes out(plaintext.size() + kGcmTagSize);
  NEXUS_RETURN_IF_ERROR(GcmSealInto(aes, iv, aad, plaintext, out));
  return out;
}

Status GcmOpenInto(const Aes& aes, ByteSpan iv, ByteSpan aad, ByteSpan sealed,
                   MutableByteSpan out) {
  if (iv.size() != kGcmIvSize) {
    return Error(ErrorCode::kCryptoFailure, "GCM IV must be 12 bytes");
  }
  if (sealed.size() < kGcmTagSize) {
    return Error(ErrorCode::kIntegrityViolation, "GCM ciphertext too short");
  }
  const ByteSpan ct = sealed.first(sealed.size() - kGcmTagSize);
  const ByteSpan tag = sealed.last(kGcmTagSize);
  if (out.size() != ct.size()) {
    return Error(ErrorCode::kCryptoFailure, "GCM output buffer size mismatch");
  }

  std::uint8_t expected[16];
  ComputeTag(aes, iv, aad, ct, expected);
  if (!ConstantTimeEqual(ByteSpan(expected, 16), tag)) {
    return Error(ErrorCode::kIntegrityViolation, "GCM tag mismatch");
  }

  std::uint8_t ctr[16] = {};
  std::memcpy(ctr, iv.data(), kGcmIvSize);
  ctr[15] = 2;
  AesCtrXor(aes, ctr, ct, out);
  return Status::Ok();
}

Result<Bytes> GcmOpen(const Aes& aes, ByteSpan iv, ByteSpan aad,
                      ByteSpan sealed) {
  if (sealed.size() < kGcmTagSize) {
    return Error(ErrorCode::kIntegrityViolation, "GCM ciphertext too short");
  }
  Bytes out(sealed.size() - kGcmTagSize);
  NEXUS_RETURN_IF_ERROR(GcmOpenInto(aes, iv, aad, sealed, out));
  return out;
}

} // namespace nexus::crypto
