#include "crypto/x25519.hpp"

#include "crypto/fe25519.hpp"

namespace nexus::crypto {

using namespace fe;

namespace {
constexpr Gf k121665{{0xDB41, 1}};
} // namespace

ByteArray<32> X25519ClampScalar(ByteArray<32> scalar) noexcept {
  scalar[0] &= 248;
  scalar[31] &= 127;
  scalar[31] |= 64;
  return scalar;
}

ByteArray<32> X25519(const ByteArray<32>& scalar,
                     const ByteArray<32>& point) noexcept {
  const ByteArray<32> z = X25519ClampScalar(scalar);

  Gf x;
  Unpack(x, point.data());

  // Montgomery ladder.
  Gf a = kOne, b = x, c = kZero, d = kOne, e, f;
  for (int i = 254; i >= 0; --i) {
    const int r = (z[i >> 3] >> (i & 7)) & 1;
    Sel(a, b, r);
    Sel(c, d, r);
    Add(e, a, c);
    Sub(a, a, c);
    Add(c, b, d);
    Sub(b, b, d);
    Sqr(d, e);
    Sqr(f, a);
    Mul(a, c, a);
    Mul(c, b, e);
    Add(e, a, c);
    Sub(a, a, c);
    Sqr(b, a);
    Sub(c, d, f);
    Mul(a, c, k121665);
    Add(a, a, d);
    Mul(c, c, a);
    Mul(a, d, f);
    Mul(d, b, x);
    Sqr(b, e);
    Sel(a, b, r);
    Sel(c, d, r);
  }

  Gf inv_c;
  Inv(inv_c, c);
  Mul(a, a, inv_c);
  ByteArray<32> out;
  Pack(out.data(), a);
  return out;
}

ByteArray<32> X25519BasePoint(const ByteArray<32>& scalar) noexcept {
  ByteArray<32> base{};
  base[0] = 9;
  return X25519(scalar, base);
}

} // namespace nexus::crypto
