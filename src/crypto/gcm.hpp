// AES-GCM authenticated encryption (NIST SP 800-38D).
//
// This is NEXUS's workhorse AEAD: every metadata body, file chunk and sealed
// blob is protected with AES-GCM. GHASH uses Shoup's 4-bit table method
// (~16x faster than bit-by-bit), validated against the NIST test vectors.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "crypto/aes.hpp"

namespace nexus::crypto {

inline constexpr std::size_t kGcmIvSize = 12;
inline constexpr std::size_t kGcmTagSize = 16;

/// GHASH over GF(2^128) keyed by H = AES_K(0^128).
class Ghash {
 public:
  /// `force_portable` disables the PCLMUL fast path (used by equivalence
  /// tests; production callers leave the default).
  explicit Ghash(const std::uint8_t h[16], bool force_portable = false) noexcept;

  void Update(ByteSpan data) noexcept;
  /// Zero-pads any buffered partial block and absorbs it. Called between the
  /// AAD and ciphertext sections (GCM pads each section independently).
  void FlushBlock() noexcept;
  /// Appends the standard [len(aad)]64 || [len(ct)]64 block and returns Y.
  void FinishLengths(std::uint64_t aad_bytes, std::uint64_t ct_bytes,
                     std::uint8_t out[16]) noexcept;

  /// Current accumulator Y after flushing any buffered block. POLYVAL
  /// (GCM-SIV) reads the raw state because it appends its own length block.
  [[nodiscard]] ByteArray<16> State() noexcept;

 private:
  void MulY() noexcept; // Y <- Y * H

  std::uint64_t hh_[16];
  std::uint64_t hl_[16];
  std::uint8_t h_[16] = {}; // raw hash key, for the PCLMUL fast path
  bool use_pclmul_ = false;
  std::uint8_t y_[16] = {};
  std::uint8_t pending_[16] = {};
  std::size_t pending_len_ = 0;
};

/// Encrypts `plaintext` with AES-GCM. Returns ciphertext || 16-byte tag.
/// `iv` must be 12 bytes (the only length NEXUS uses).
Result<Bytes> GcmSeal(const Aes& aes, ByteSpan iv, ByteSpan aad,
                      ByteSpan plaintext);

/// Verifies the tag then decrypts. `sealed` is ciphertext || tag.
/// Fails with kIntegrityViolation on any mismatch (tamper evidence).
Result<Bytes> GcmOpen(const Aes& aes, ByteSpan iv, ByteSpan aad,
                      ByteSpan sealed);

/// In-place variant for the parallel chunk engine: seals into `out`, which
/// must be exactly plaintext.size() + kGcmTagSize bytes (a disjoint slice
/// of a shared ciphertext buffer — no allocation, no copies). Produces
/// bytes identical to GcmSeal. `out` must not alias `plaintext`.
Status GcmSealInto(const Aes& aes, ByteSpan iv, ByteSpan aad,
                   ByteSpan plaintext, MutableByteSpan out);

/// In-place open: verifies then decrypts into `out`, which must be exactly
/// sealed.size() - kGcmTagSize bytes. `out` must not alias `sealed`.
Status GcmOpenInto(const Aes& aes, ByteSpan iv, ByteSpan aad, ByteSpan sealed,
                   MutableByteSpan out);

} // namespace nexus::crypto
