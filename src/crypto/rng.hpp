// Random number generation.
//
// All NEXUS randomness (UUIDs, keys, IVs, nonces) flows through the Rng
// interface so tests and benchmarks can run fully deterministically from a
// seed while examples use OS entropy. The generator is HMAC-DRBG with
// SHA-256 (NIST SP 800-90A).
#pragma once

#include <cstdint>
#include <memory>

#include "common/bytes.hpp"
#include "common/uuid.hpp"

namespace nexus::crypto {

class Rng {
 public:
  virtual ~Rng() = default;

  virtual void Fill(MutableByteSpan out) noexcept = 0;

  Bytes Generate(std::size_t n) {
    Bytes out(n);
    Fill(out);
    return out;
  }

  template <std::size_t N>
  ByteArray<N> Array() noexcept {
    ByteArray<N> out;
    Fill(out);
    return out;
  }

  Uuid NewUuid() noexcept { return Uuid(Array<Uuid::kSize>()); }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t Below(std::uint64_t bound) noexcept;
};

/// Deterministic HMAC-DRBG. Same seed => same stream, for reproducible
/// simulations and tests.
class HmacDrbg final : public Rng {
 public:
  explicit HmacDrbg(ByteSpan seed) noexcept;

  void Fill(MutableByteSpan out) noexcept override;

  /// Mixes additional entropy into the state.
  void Reseed(ByteSpan seed) noexcept;

 private:
  void Update(ByteSpan provided) noexcept;

  ByteArray<32> key_{};
  ByteArray<32> value_{};
};

/// Process-wide RNG seeded from std::random_device; used by examples.
Rng& SystemRng();

} // namespace nexus::crypto
