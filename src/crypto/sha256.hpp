// SHA-256 (FIPS 180-4). Used for enclave measurements, HMAC-DRBG, HKDF and
// metadata MAC composition. Validated against NIST vectors in tests.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace nexus::crypto {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;

  Sha256() noexcept { Reset(); }

  void Reset() noexcept;
  void Update(ByteSpan data) noexcept;

  /// Finalizes and returns the digest. The object must be Reset() before
  /// further use.
  [[nodiscard]] ByteArray<kDigestSize> Finish() noexcept;

  /// One-shot convenience.
  static ByteArray<kDigestSize> Hash(ByteSpan data) noexcept;

 private:
  void Compress(const std::uint8_t* block) noexcept;

  std::uint32_t state_[8];
  std::uint64_t total_len_ = 0;
  std::uint8_t buffer_[kBlockSize];
  std::size_t buffer_len_ = 0;
};

} // namespace nexus::crypto
