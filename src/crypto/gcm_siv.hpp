// AES-GCM-SIV (RFC 8452), the nonce-misuse-resistant AEAD NEXUS uses for
// key wrapping (paper §IV-A2): each metadata object's fresh AES-GCM key is
// wrapped under the volume rootkey with GCM-SIV, following Gueron & Lindell.
//
// POLYVAL is implemented through its RFC 8452 Appendix A relation to GHASH:
//   POLYVAL(H, X_1..X_n) =
//     ByteReverse(GHASH(mulX_GHASH(ByteReverse(H)), ByteReverse(X_1)..))
#pragma once

#include "common/bytes.hpp"
#include "common/result.hpp"

namespace nexus::crypto {

inline constexpr std::size_t kGcmSivNonceSize = 12;
inline constexpr std::size_t kGcmSivTagSize = 16;

/// POLYVAL(H, padded data) over whole 16-byte blocks (zero-pads the tail).
/// Exposed for test vectors.
ByteArray<16> Polyval(const ByteArray<16>& h, ByteSpan data);

/// Encrypts with AES-GCM-SIV. `key` is 16 or 32 bytes; returns ct || tag.
Result<Bytes> GcmSivSeal(ByteSpan key, ByteSpan nonce, ByteSpan aad,
                         ByteSpan plaintext);

/// Authenticated decryption; kIntegrityViolation on tag mismatch.
Result<Bytes> GcmSivOpen(ByteSpan key, ByteSpan nonce, ByteSpan aad,
                         ByteSpan sealed);

} // namespace nexus::crypto
