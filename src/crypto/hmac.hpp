// HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869).
//
// Used for the SGX simulator's key-derivation tree (fuse key -> sealing keys)
// and for the HMAC-DRBG random generator.
#pragma once

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"

namespace nexus::crypto {

/// One-shot HMAC-SHA256.
ByteArray<32> HmacSha256(ByteSpan key, ByteSpan message) noexcept;

/// Incremental HMAC-SHA256 for multi-part messages.
class HmacSha256Stream {
 public:
  explicit HmacSha256Stream(ByteSpan key) noexcept;
  void Update(ByteSpan data) noexcept { inner_.Update(data); }
  [[nodiscard]] ByteArray<32> Finish() noexcept;

 private:
  Sha256 inner_;
  ByteArray<64> opad_key_{};
};

/// HKDF-Extract: PRK = HMAC(salt, ikm).
ByteArray<32> HkdfExtract(ByteSpan salt, ByteSpan ikm) noexcept;

/// HKDF-Expand: derive `length` (<= 255*32) bytes from PRK and info.
Bytes HkdfExpand(ByteSpan prk, ByteSpan info, std::size_t length);

/// Extract-then-expand convenience.
Bytes Hkdf(ByteSpan salt, ByteSpan ikm, ByteSpan info, std::size_t length);

} // namespace nexus::crypto
