#include "crypto/aes.hpp"

#include <cstring>

#include "crypto/aesni.hpp"

namespace nexus::crypto {
namespace {

// ---- table generation -----------------------------------------------------
// The S-box is the GF(2^8) multiplicative inverse (poly 0x11b) followed by
// the FIPS-197 affine transform. Computing it once at startup avoids any
// chance of a typo in a 256-entry literal table.

std::uint8_t GfMul(std::uint8_t a, std::uint8_t b) noexcept {
  std::uint8_t p = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1) p ^= a;
    const bool hi = a & 0x80;
    a = static_cast<std::uint8_t>(a << 1);
    if (hi) a ^= 0x1b;
    b >>= 1;
  }
  return p;
}

struct Tables {
  std::uint8_t sbox[256];
  std::uint32_t te[4][256]; // te[j] = rotr32(te0, 8*j)

  Tables() noexcept {
    // Multiplicative inverses by brute force; 64K multiplies at startup.
    std::uint8_t inv[256] = {};
    for (int a = 1; a < 256; ++a) {
      for (int b = 1; b < 256; ++b) {
        if (GfMul(static_cast<std::uint8_t>(a),
                  static_cast<std::uint8_t>(b)) == 1) {
          inv[a] = static_cast<std::uint8_t>(b);
          break;
        }
      }
    }
    for (int x = 0; x < 256; ++x) {
      const std::uint8_t y = inv[x];
      auto rol = [](std::uint8_t v, int n) {
        return static_cast<std::uint8_t>((v << n) | (v >> (8 - n)));
      };
      sbox[x] = static_cast<std::uint8_t>(y ^ rol(y, 1) ^ rol(y, 2) ^
                                          rol(y, 3) ^ rol(y, 4) ^ 0x63);
    }
    for (int x = 0; x < 256; ++x) {
      const std::uint8_t s = sbox[x];
      const std::uint8_t s2 = GfMul(s, 2);
      const std::uint8_t s3 = static_cast<std::uint8_t>(s2 ^ s);
      const std::uint32_t t0 = (static_cast<std::uint32_t>(s2) << 24) |
                               (static_cast<std::uint32_t>(s) << 16) |
                               (static_cast<std::uint32_t>(s) << 8) | s3;
      te[0][x] = t0;
      te[1][x] = (t0 >> 8) | (t0 << 24);
      te[2][x] = (t0 >> 16) | (t0 << 16);
      te[3][x] = (t0 >> 24) | (t0 << 8);
    }
  }
};

const Tables& T() noexcept {
  static const Tables tables;
  return tables;
}

std::uint32_t LoadBe32(const std::uint8_t* p) noexcept {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) | p[3];
}

void StoreBe32(std::uint32_t v, std::uint8_t* p) noexcept {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

std::uint32_t SubWord(std::uint32_t w) noexcept {
  const auto& s = T().sbox;
  return (static_cast<std::uint32_t>(s[(w >> 24) & 0xff]) << 24) |
         (static_cast<std::uint32_t>(s[(w >> 16) & 0xff]) << 16) |
         (static_cast<std::uint32_t>(s[(w >> 8) & 0xff]) << 8) |
         s[w & 0xff];
}

} // namespace

Result<Aes> Aes::Create(ByteSpan key) {
  if (key.size() != 16 && key.size() != 32) {
    return Error(ErrorCode::kCryptoFailure, "AES key must be 16 or 32 bytes");
  }
  Aes aes;
  aes.key_size_ = key.size();
  aes.rounds_ = key.size() == 16 ? 10 : 14;
  aes.ExpandKey(key);
  return aes;
}

void Aes::ExpandKey(ByteSpan key) noexcept {
  const int nk = static_cast<int>(key.size() / 4);
  const int total = 4 * (rounds_ + 1);
  for (int i = 0; i < nk; ++i) {
    round_keys_[i] = LoadBe32(key.data() + 4 * i);
  }
  std::uint32_t rcon = 0x01000000;
  for (int i = nk; i < total; ++i) {
    std::uint32_t temp = round_keys_[i - 1];
    if (i % nk == 0) {
      temp = SubWord((temp << 8) | (temp >> 24)) ^ rcon;
      rcon = static_cast<std::uint32_t>(GfMul(
                 static_cast<std::uint8_t>(rcon >> 24), 2))
             << 24;
    } else if (nk == 8 && i % nk == 4) {
      temp = SubWord(temp);
    }
    round_keys_[i] = round_keys_[i - nk] ^ temp;
  }
}

void Aes::EncryptBlock(const std::uint8_t in[16],
                       std::uint8_t out[16]) const noexcept {
  const auto& t = T();
  std::uint32_t s0 = LoadBe32(in) ^ round_keys_[0];
  std::uint32_t s1 = LoadBe32(in + 4) ^ round_keys_[1];
  std::uint32_t s2 = LoadBe32(in + 8) ^ round_keys_[2];
  std::uint32_t s3 = LoadBe32(in + 12) ^ round_keys_[3];

  for (int r = 1; r < rounds_; ++r) {
    const std::uint32_t* rk = &round_keys_[4 * r];
    const std::uint32_t t0 = t.te[0][s0 >> 24] ^ t.te[1][(s1 >> 16) & 0xff] ^
                             t.te[2][(s2 >> 8) & 0xff] ^ t.te[3][s3 & 0xff] ^
                             rk[0];
    const std::uint32_t t1 = t.te[0][s1 >> 24] ^ t.te[1][(s2 >> 16) & 0xff] ^
                             t.te[2][(s3 >> 8) & 0xff] ^ t.te[3][s0 & 0xff] ^
                             rk[1];
    const std::uint32_t t2 = t.te[0][s2 >> 24] ^ t.te[1][(s3 >> 16) & 0xff] ^
                             t.te[2][(s0 >> 8) & 0xff] ^ t.te[3][s1 & 0xff] ^
                             rk[2];
    const std::uint32_t t3 = t.te[0][s3 >> 24] ^ t.te[1][(s0 >> 16) & 0xff] ^
                             t.te[2][(s1 >> 8) & 0xff] ^ t.te[3][s2 & 0xff] ^
                             rk[3];
    s0 = t0;
    s1 = t1;
    s2 = t2;
    s3 = t3;
  }

  const std::uint32_t* rk = &round_keys_[4 * rounds_];
  const auto& s = t.sbox;
  const std::uint32_t o0 =
      ((static_cast<std::uint32_t>(s[s0 >> 24]) << 24) |
       (static_cast<std::uint32_t>(s[(s1 >> 16) & 0xff]) << 16) |
       (static_cast<std::uint32_t>(s[(s2 >> 8) & 0xff]) << 8) |
       s[s3 & 0xff]) ^
      rk[0];
  const std::uint32_t o1 =
      ((static_cast<std::uint32_t>(s[s1 >> 24]) << 24) |
       (static_cast<std::uint32_t>(s[(s2 >> 16) & 0xff]) << 16) |
       (static_cast<std::uint32_t>(s[(s3 >> 8) & 0xff]) << 8) |
       s[s0 & 0xff]) ^
      rk[1];
  const std::uint32_t o2 =
      ((static_cast<std::uint32_t>(s[s2 >> 24]) << 24) |
       (static_cast<std::uint32_t>(s[(s3 >> 16) & 0xff]) << 16) |
       (static_cast<std::uint32_t>(s[(s0 >> 8) & 0xff]) << 8) |
       s[s1 & 0xff]) ^
      rk[2];
  const std::uint32_t o3 =
      ((static_cast<std::uint32_t>(s[s3 >> 24]) << 24) |
       (static_cast<std::uint32_t>(s[(s0 >> 16) & 0xff]) << 16) |
       (static_cast<std::uint32_t>(s[(s1 >> 8) & 0xff]) << 8) |
       s[s2 & 0xff]) ^
      rk[3];

  StoreBe32(o0, out);
  StoreBe32(o1, out + 4);
  StoreBe32(o2, out + 8);
  StoreBe32(o3, out + 12);
}

void Aes::ExportRoundKeyBytes(std::uint8_t* out) const noexcept {
  for (int i = 0; i < 4 * (rounds_ + 1); ++i) {
    StoreBe32(round_keys_[i], out + 4 * i);
  }
}

void AesCtrXor(const Aes& aes, const std::uint8_t counter_block[16],
               ByteSpan in, MutableByteSpan out) noexcept {
  if (HasAesHardware() && in.size() >= 64) {
    std::uint8_t round_keys[240];
    aes.ExportRoundKeyBytes(round_keys);
    AesNiCtrXor(round_keys, aes.rounds(), counter_block, in, out);
    return;
  }
  std::uint8_t ctr[16];
  std::memcpy(ctr, counter_block, 16);
  std::uint8_t keystream[16];
  std::size_t pos = 0;
  while (pos < in.size()) {
    aes.EncryptBlock(ctr, keystream);
    const std::size_t n = std::min<std::size_t>(16, in.size() - pos);
    for (std::size_t i = 0; i < n; ++i) {
      out[pos + i] = in[pos + i] ^ keystream[i];
    }
    pos += n;
    // Increment the final 32 bits big-endian (GCM convention).
    for (int i = 15; i >= 12; --i) {
      if (++ctr[i] != 0) break;
    }
  }
}

} // namespace nexus::crypto
