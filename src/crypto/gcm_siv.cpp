#include "crypto/gcm_siv.hpp"

#include <cstring>

#include "crypto/aes.hpp"
#include "crypto/ct.hpp"
#include "crypto/gcm.hpp"

namespace nexus::crypto {
namespace {

ByteArray<16> ByteReverse(ByteSpan b) noexcept {
  ByteArray<16> out;
  for (int i = 0; i < 16; ++i) out[i] = b[15 - i];
  return out;
}

// Multiply by x in the GHASH field: one-bit right shift of the 128-bit
// string (MSB of byte 0 first) with the 0xe1 reduction.
ByteArray<16> MulXGhash(const ByteArray<16>& v) noexcept {
  ByteArray<16> out;
  const bool carry = v[15] & 1;
  std::uint8_t prev = 0;
  for (int i = 0; i < 16; ++i) {
    out[i] = static_cast<std::uint8_t>((v[i] >> 1) | (prev << 7));
    prev = v[i] & 1;
  }
  if (carry) out[0] ^= 0xe1;
  return out;
}

// Derives the per-nonce message-authentication and message-encryption keys
// (RFC 8452 §4).
struct DerivedKeys {
  ByteArray<16> auth_key;
  Bytes enc_key; // 16 or 32 bytes
};

Result<DerivedKeys> DeriveKeys(ByteSpan key, ByteSpan nonce) {
  NEXUS_ASSIGN_OR_RETURN(Aes aes, Aes::Create(key));
  auto derive_half = [&](std::uint32_t counter, std::uint8_t* out8) {
    std::uint8_t block[16] = {};
    block[0] = static_cast<std::uint8_t>(counter);
    block[1] = static_cast<std::uint8_t>(counter >> 8);
    block[2] = static_cast<std::uint8_t>(counter >> 16);
    block[3] = static_cast<std::uint8_t>(counter >> 24);
    std::memcpy(block + 4, nonce.data(), kGcmSivNonceSize);
    std::uint8_t enc[16];
    aes.EncryptBlock(block, enc);
    std::memcpy(out8, enc, 8);
  };

  DerivedKeys keys;
  derive_half(0, keys.auth_key.data());
  derive_half(1, keys.auth_key.data() + 8);
  keys.enc_key.resize(key.size());
  derive_half(2, keys.enc_key.data());
  derive_half(3, keys.enc_key.data() + 8);
  if (key.size() == 32) {
    derive_half(4, keys.enc_key.data() + 16);
    derive_half(5, keys.enc_key.data() + 24);
  }
  return keys;
}

// The SIV tag: POLYVAL over padded AAD || padded PT || length block, XORed
// with the nonce, masked, then encrypted.
ByteArray<16> ComputeTag(const Aes& enc, const ByteArray<16>& auth_key,
                         ByteSpan nonce, ByteSpan aad,
                         ByteSpan plaintext) noexcept {
  Bytes input;
  input.reserve(((aad.size() + 15) & ~15ULL) +
                ((plaintext.size() + 15) & ~15ULL) + 16);
  Append(input, aad);
  input.resize((input.size() + 15) & ~15ULL, 0);
  Append(input, plaintext);
  input.resize((input.size() + 15) & ~15ULL, 0);
  std::uint8_t len_block[16];
  const std::uint64_t aad_bits = aad.size() * 8;
  const std::uint64_t pt_bits = plaintext.size() * 8;
  for (int i = 0; i < 8; ++i) {
    len_block[i] = static_cast<std::uint8_t>(aad_bits >> (8 * i));
    len_block[8 + i] = static_cast<std::uint8_t>(pt_bits >> (8 * i));
  }
  Append(input, ByteSpan(len_block, 16));

  ByteArray<16> s = Polyval(auth_key, input);
  for (std::size_t i = 0; i < kGcmSivNonceSize; ++i) s[i] ^= nonce[i];
  s[15] &= 0x7f;

  ByteArray<16> tag;
  enc.EncryptBlock(s.data(), tag.data());
  return tag;
}

// GCM-SIV CTR mode: 32-bit little-endian counter in the first 4 bytes,
// initial block = tag with the top bit of the last byte forced on.
void SivCtrXor(const Aes& enc, const ByteArray<16>& tag, ByteSpan in,
               MutableByteSpan out) noexcept {
  ByteArray<16> ctr = tag;
  ctr[15] |= 0x80;
  std::uint8_t keystream[16];
  std::size_t pos = 0;
  while (pos < in.size()) {
    enc.EncryptBlock(ctr.data(), keystream);
    const std::size_t n = std::min<std::size_t>(16, in.size() - pos);
    for (std::size_t i = 0; i < n; ++i) out[pos + i] = in[pos + i] ^ keystream[i];
    pos += n;
    for (int i = 0; i < 4; ++i) {
      if (++ctr[i] != 0) break;
    }
  }
}

} // namespace

ByteArray<16> Polyval(const ByteArray<16>& h, ByteSpan data) {
  const ByteArray<16> ghash_key = MulXGhash(ByteReverse(h));
  Ghash ghash(ghash_key.data());
  ByteArray<16> block{};
  std::size_t pos = 0;
  while (pos < data.size()) {
    const std::size_t n = std::min<std::size_t>(16, data.size() - pos);
    block.fill(0);
    std::memcpy(block.data(), data.data() + pos, n);
    ghash.Update(ByteReverse(block));
    pos += n;
  }
  // Extract the raw GHASH state: FinishLengths would append a length block,
  // so instead absorb nothing further and read Y via a zero-length trick.
  ByteArray<16> y = ghash.State();
  return ByteReverse(y);
}

Result<Bytes> GcmSivSeal(ByteSpan key, ByteSpan nonce, ByteSpan aad,
                         ByteSpan plaintext) {
  if (nonce.size() != kGcmSivNonceSize) {
    return Error(ErrorCode::kCryptoFailure, "GCM-SIV nonce must be 12 bytes");
  }
  NEXUS_ASSIGN_OR_RETURN(DerivedKeys keys, DeriveKeys(key, nonce));
  NEXUS_ASSIGN_OR_RETURN(Aes enc, Aes::Create(keys.enc_key));

  const ByteArray<16> tag =
      ComputeTag(enc, keys.auth_key, nonce, aad, plaintext);

  Bytes out(plaintext.size() + kGcmSivTagSize);
  SivCtrXor(enc, tag, plaintext, MutableByteSpan(out.data(), plaintext.size()));
  std::memcpy(out.data() + plaintext.size(), tag.data(), kGcmSivTagSize);
  return out;
}

Result<Bytes> GcmSivOpen(ByteSpan key, ByteSpan nonce, ByteSpan aad,
                         ByteSpan sealed) {
  if (nonce.size() != kGcmSivNonceSize) {
    return Error(ErrorCode::kCryptoFailure, "GCM-SIV nonce must be 12 bytes");
  }
  if (sealed.size() < kGcmSivTagSize) {
    return Error(ErrorCode::kIntegrityViolation, "GCM-SIV ciphertext too short");
  }
  NEXUS_ASSIGN_OR_RETURN(DerivedKeys keys, DeriveKeys(key, nonce));
  NEXUS_ASSIGN_OR_RETURN(Aes enc, Aes::Create(keys.enc_key));

  const ByteSpan ct = sealed.first(sealed.size() - kGcmSivTagSize);
  const ByteSpan tag = sealed.last(kGcmSivTagSize);

  Bytes plaintext(ct.size());
  SivCtrXor(enc, ToArray<16>(tag), ct, plaintext);

  const ByteArray<16> expected =
      ComputeTag(enc, keys.auth_key, nonce, aad, plaintext);
  if (!ConstantTimeEqual(expected, tag)) {
    SecureZero(plaintext);
    return Error(ErrorCode::kIntegrityViolation, "GCM-SIV tag mismatch");
  }
  return plaintext;
}

} // namespace nexus::crypto
