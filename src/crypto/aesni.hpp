// Hardware fast paths for AES-CTR (AES-NI) and GHASH (PCLMULQDQ),
// dispatched at runtime. The paper's enclave used mbedTLS with AES-NI;
// without this the simulated enclave's crypto throughput — and thus the
// Table 5a "Enclave" column and the read-heavy Table II rows — would be
// bottlenecked by the portable table implementation rather than by
// anything NEXUS-related. The portable code remains the reference and the
// fallback; both paths satisfy the same NIST vectors.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace nexus::crypto {

/// True when both AES-NI and PCLMULQDQ are available.
bool HasAesHardware() noexcept;

/// CTR keystream XOR using AES-NI. `round_key_bytes` is (rounds+1)*16
/// bytes of standard-serialized round keys; `counter` uses the GCM
/// convention (big-endian increment of the final 32 bits).
void AesNiCtrXor(const std::uint8_t* round_key_bytes, int rounds,
                 const std::uint8_t counter[16], ByteSpan in,
                 MutableByteSpan out) noexcept;

/// GHASH block step via carry-less multiply: y <- (y ^ x) * h in GF(2^128)
/// with the GCM bit order.
void PclmulGhashBlock(std::uint8_t y[16], const std::uint8_t x[16],
                      const std::uint8_t h[16]) noexcept;

} // namespace nexus::crypto
