// Hardware fast paths for AES-CTR (AES-NI) and GHASH (PCLMULQDQ),
// dispatched at runtime. The paper's enclave used mbedTLS with AES-NI;
// without this the simulated enclave's crypto throughput — and thus the
// Table 5a "Enclave" column and the read-heavy Table II rows — would be
// bottlenecked by the portable table implementation rather than by
// anything NEXUS-related. The portable code remains the reference and the
// fallback; both paths satisfy the same NIST vectors.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace nexus::crypto {

/// True when the AES-NI/PCLMUL fast paths are in use. Evaluated once:
///  1. CPUID must report aes + pclmul + ssse3,
///  2. NEXUS_NO_AESNI must not be set (non-empty, != "0") in the
///     environment — the CI knob that keeps the scalar path tested,
///  3. a known-answer self-test must pass: the hardware CTR keystream and
///     PCLMUL GHASH step are checked against the portable reference, so a
///     mis-dispatched or miscompiled fast path degrades to the (correct)
///     scalar code instead of producing wrong ciphertext.
/// The result is cached; ForceAesFallbackForTesting overrides it at runtime.
bool HasAesHardware() noexcept;

/// Runtime override for equivalence tests: while `disabled` is true,
/// HasAesHardware() reports false and every GCM/CTR call takes the
/// portable path. Thread-safe; affects only subsequently-created Ghash
/// instances and future AesCtrXor calls.
void ForceAesFallbackForTesting(bool disabled) noexcept;

/// Re-runs the dispatch-verification KAT (the check HasAesHardware caches).
/// False on non-x86 builds or when the CPU lacks the instructions.
bool AesniSelfTest() noexcept;

/// CTR keystream XOR using AES-NI. `round_key_bytes` is (rounds+1)*16
/// bytes of standard-serialized round keys; `counter` uses the GCM
/// convention (big-endian increment of the final 32 bits).
void AesNiCtrXor(const std::uint8_t* round_key_bytes, int rounds,
                 const std::uint8_t counter[16], ByteSpan in,
                 MutableByteSpan out) noexcept;

/// GHASH block step via carry-less multiply: y <- (y ^ x) * h in GF(2^128)
/// with the GCM bit order.
void PclmulGhashBlock(std::uint8_t y[16], const std::uint8_t x[16],
                      const std::uint8_t h[16]) noexcept;

} // namespace nexus::crypto
