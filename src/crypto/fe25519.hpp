// GF(2^255 - 19) field arithmetic shared by X25519 and Ed25519.
//
// Representation: 16 signed 64-bit limbs of 16 bits each (TweetNaCl style).
// Compact and easy to audit; performance is more than adequate for NEXUS's
// handful of exchanges per volume operation.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace nexus::crypto::fe {

using i64 = std::int64_t;
struct Gf {
  i64 v[16];
};

inline constexpr Gf kZero{{0}};
inline constexpr Gf kOne{{1}};

void Car(Gf& o) noexcept;                           // carry propagation
void Sel(Gf& p, Gf& q, int b) noexcept;             // constant-time swap
void Pack(std::uint8_t o[32], const Gf& n) noexcept; // fully reduce + encode
void Unpack(Gf& o, const std::uint8_t n[32]) noexcept;
void Add(Gf& o, const Gf& a, const Gf& b) noexcept;
void Sub(Gf& o, const Gf& a, const Gf& b) noexcept;
void Mul(Gf& o, const Gf& a, const Gf& b) noexcept;
void Sqr(Gf& o, const Gf& a) noexcept;
void Inv(Gf& o, const Gf& i) noexcept;      // a^(p-2)
void Pow2523(Gf& o, const Gf& i) noexcept;  // a^((p-5)/8), for sqrt
int Par(const Gf& a) noexcept;              // parity of the canonical form
int Neq(const Gf& a, const Gf& b) noexcept; // 0 if equal

} // namespace nexus::crypto::fe
