// X25519 Diffie-Hellman (RFC 7748).
//
// NEXUS uses ECDH for the attested rootkey-exchange protocol (paper §IV-B1):
// enclave keypairs whose public halves are bound into SGX quotes, plus an
// ephemeral keypair per exchange.
#pragma once

#include "common/bytes.hpp"
#include "common/result.hpp"

namespace nexus::crypto {

inline constexpr std::size_t kX25519KeySize = 32;

/// Computes scalar * point. `scalar` and `point` are 32 bytes each.
ByteArray<32> X25519(const ByteArray<32>& scalar, const ByteArray<32>& point) noexcept;

/// Computes the public key scalar * basepoint(9).
ByteArray<32> X25519BasePoint(const ByteArray<32>& scalar) noexcept;

/// Clamps a 32-byte random string into a valid X25519 private scalar.
ByteArray<32> X25519ClampScalar(ByteArray<32> scalar) noexcept;

} // namespace nexus::crypto
