// AES-128/256 block cipher (FIPS 197), encryption direction only.
//
// Every mode NEXUS uses (CTR, GCM, GCM-SIV) is built from the forward
// transform, so the inverse cipher is deliberately not implemented. The
// S-box is generated from the GF(2^8) inverse + affine map at first use,
// eliminating table-transcription errors; NIST known-answer tests pin the
// result.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/result.hpp"

namespace nexus::crypto {

class Aes {
 public:
  static constexpr std::size_t kBlockSize = 16;

  /// Key must be 16 (AES-128) or 32 (AES-256) bytes.
  static Result<Aes> Create(ByteSpan key);

  /// Encrypts exactly one 16-byte block, in != out allowed to alias.
  void EncryptBlock(const std::uint8_t in[16], std::uint8_t out[16]) const
      noexcept;

  [[nodiscard]] std::size_t key_size() const noexcept { return key_size_; }
  [[nodiscard]] int rounds() const noexcept { return rounds_; }

  /// Serializes the round keys in standard byte order ((rounds+1)*16
  /// bytes) for the AES-NI fast path. `out` must hold 240 bytes.
  void ExportRoundKeyBytes(std::uint8_t* out) const noexcept;

 private:
  Aes() = default;
  void ExpandKey(ByteSpan key) noexcept;

  // Up to 15 round keys of 16 bytes (AES-256: 14 rounds + initial).
  std::uint32_t round_keys_[60] = {};
  int rounds_ = 0;
  std::size_t key_size_ = 0;
};

/// AES-CTR keystream XOR: encrypt and decrypt are the same operation.
/// `counter_block` is the initial 16-byte counter; the final 4 bytes are
/// interpreted as a big-endian counter (NIST/GCM convention).
void AesCtrXor(const Aes& aes, const std::uint8_t counter_block[16],
               ByteSpan in, MutableByteSpan out) noexcept;

} // namespace nexus::crypto
