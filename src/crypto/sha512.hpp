// SHA-512 (FIPS 180-4). Required by Ed25519 (RFC 8032).
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace nexus::crypto {

class Sha512 {
 public:
  static constexpr std::size_t kDigestSize = 64;
  static constexpr std::size_t kBlockSize = 128;

  Sha512() noexcept { Reset(); }

  void Reset() noexcept;
  void Update(ByteSpan data) noexcept;
  [[nodiscard]] ByteArray<kDigestSize> Finish() noexcept;

  static ByteArray<kDigestSize> Hash(ByteSpan data) noexcept;

 private:
  void Compress(const std::uint8_t* block) noexcept;

  std::uint64_t state_[8];
  std::uint64_t total_len_ = 0; // bytes; 2^64-1 bytes is plenty here
  std::uint8_t buffer_[kBlockSize];
  std::size_t buffer_len_ = 0;
};

} // namespace nexus::crypto
