// Ed25519 signatures (RFC 8032).
//
// NEXUS identities are public keys (paper §IV-B): the volume supernode binds
// usernames to Ed25519 public keys; the challenge-response login, the quote
// signatures in the key-exchange protocol, and the simulated Intel
// attestation root all sign with Ed25519.
#pragma once

#include "common/bytes.hpp"
#include "common/result.hpp"

namespace nexus::crypto {

inline constexpr std::size_t kEd25519PublicKeySize = 32;
inline constexpr std::size_t kEd25519SeedSize = 32;
inline constexpr std::size_t kEd25519SignatureSize = 64;

struct Ed25519KeyPair {
  ByteArray<32> public_key;
  ByteArray<32> seed; // RFC 8032 private seed; expanded on demand
};

/// Derives the keypair from a 32-byte uniformly random seed.
Ed25519KeyPair Ed25519FromSeed(const ByteArray<32>& seed) noexcept;

/// Detached signature over `message`.
ByteArray<64> Ed25519Sign(const Ed25519KeyPair& key, ByteSpan message) noexcept;

/// True iff `signature` is valid for `message` under `public_key`.
[[nodiscard]] bool Ed25519Verify(const ByteArray<32>& public_key,
                                 ByteSpan message,
                                 const ByteArray<64>& signature) noexcept;

} // namespace nexus::crypto
