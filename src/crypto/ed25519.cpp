#include "crypto/ed25519.hpp"

#include <cstring>

#include "crypto/ct.hpp"
#include "crypto/fe25519.hpp"
#include "crypto/sha512.hpp"

namespace nexus::crypto {

using namespace fe;

namespace {

// Edwards curve constants (TweetNaCl encoding: 16 limbs of 16 bits).
constexpr Gf kD{{0x78a3, 0x1359, 0x4dca, 0x75eb, 0xd8ab, 0x4141, 0x0a4d,
                 0x0070, 0xe898, 0x7779, 0x4079, 0x8cc7, 0xfe73, 0x2b6f,
                 0x6cee, 0x5203}};
constexpr Gf kD2{{0xf159, 0x26b2, 0x9b94, 0xebd6, 0xb156, 0x8283, 0x149a,
                  0x00e0, 0xd130, 0xeef3, 0x80f2, 0x198e, 0xfce7, 0x56df,
                  0xd9dc, 0x2406}};
constexpr Gf kX{{0xd51a, 0x8f25, 0x2d60, 0xc956, 0xa7b2, 0x9525, 0xc760,
                 0x692c, 0xdc5c, 0xfdd6, 0xe231, 0xc0a4, 0x53fe, 0xcd6e,
                 0x36d3, 0x2169}};
constexpr Gf kY{{0x6658, 0x6666, 0x6666, 0x6666, 0x6666, 0x6666, 0x6666,
                 0x6666, 0x6666, 0x6666, 0x6666, 0x6666, 0x6666, 0x6666,
                 0x6666, 0x6666}};
// sqrt(-1)
constexpr Gf kI{{0xa0b0, 0x4a0e, 0x1b27, 0xc4ee, 0xe478, 0xad2f, 0x1806,
                 0x2f43, 0xd7a7, 0x3dfb, 0x0099, 0x2b4d, 0xdf0b, 0x4fc1,
                 0x2480, 0x2b83}};

// Group order L (little-endian bytes), 2^252 + 27742...
constexpr std::uint64_t kL[32] = {0xed, 0xd3, 0xf5, 0x5c, 0x1a, 0x63, 0x12,
                                  0x58, 0xd6, 0x9c, 0xf7, 0xa2, 0xde, 0xf9,
                                  0xde, 0x14, 0,    0,    0,    0,    0,
                                  0,    0,    0,    0,    0,    0,    0,
                                  0,    0,    0,    0x10};

struct Point {
  Gf x, y, z, t; // extended coordinates
};

// Unified Edwards addition, p += q.
void PointAdd(Point& p, const Point& q) noexcept {
  Gf a, b, c, d, t, e, f, g, h;
  Sub(a, p.y, p.x);
  Sub(t, q.y, q.x);
  Mul(a, a, t);
  Add(b, p.x, p.y);
  Add(t, q.x, q.y);
  Mul(b, b, t);
  Mul(c, p.t, q.t);
  Mul(c, c, kD2);
  Mul(d, p.z, q.z);
  Add(d, d, d);
  Sub(e, b, a);
  Sub(f, d, c);
  Add(g, d, c);
  Add(h, b, a);
  Mul(p.x, e, f);
  Mul(p.y, h, g);
  Mul(p.z, g, f);
  Mul(p.t, e, h);
}

void CSwap(Point& p, Point& q, int b) noexcept {
  Sel(p.x, q.x, b);
  Sel(p.y, q.y, b);
  Sel(p.z, q.z, b);
  Sel(p.t, q.t, b);
}

void PackPoint(std::uint8_t r[32], const Point& p) noexcept {
  Gf zi, tx, ty;
  Inv(zi, p.z);
  Mul(tx, p.x, zi);
  Mul(ty, p.y, zi);
  Pack(r, ty);
  r[31] ^= static_cast<std::uint8_t>(Par(tx) << 7);
}

// p = s * q, constant-time double-and-add over the 256-bit scalar.
void ScalarMult(Point& p, Point q, const std::uint8_t s[32]) noexcept {
  p.x = kZero;
  p.y = kOne;
  p.z = kOne;
  p.t = kZero;
  for (int i = 255; i >= 0; --i) {
    const int b = (s[i / 8] >> (i & 7)) & 1;
    CSwap(p, q, b);
    PointAdd(q, p);
    PointAdd(p, p);
    CSwap(p, q, b);
  }
}

void ScalarBase(Point& p, const std::uint8_t s[32]) noexcept {
  Point q;
  q.x = kX;
  q.y = kY;
  q.z = kOne;
  Mul(q.t, kX, kY);
  ScalarMult(p, q, s);
}

// r = x mod L, where x is a 64-byte little-endian integer (destroyed).
void ModL(std::uint8_t r[32], std::int64_t x[64]) noexcept {
  std::int64_t carry;
  for (int i = 63; i >= 32; --i) {
    carry = 0;
    int j;
    for (j = i - 32; j < i - 12; ++j) {
      x[j] += carry - 16 * x[i] * static_cast<std::int64_t>(kL[j - (i - 32)]);
      carry = (x[j] + 128) >> 8;
      x[j] -= carry << 8;
    }
    x[j] += carry;
    x[i] = 0;
  }
  carry = 0;
  for (int j = 0; j < 32; ++j) {
    x[j] += carry - (x[31] >> 4) * static_cast<std::int64_t>(kL[j]);
    carry = x[j] >> 8;
    x[j] &= 255;
  }
  for (int j = 0; j < 32; ++j) x[j] -= carry * static_cast<std::int64_t>(kL[j]);
  for (int i = 0; i < 32; ++i) {
    x[i + 1] += x[i] >> 8;
    r[i] = static_cast<std::uint8_t>(x[i] & 255);
  }
}

// Reduce a 64-byte hash mod L in place (result in the first 32 bytes).
void Reduce(std::uint8_t r[64]) noexcept {
  std::int64_t x[64];
  for (int i = 0; i < 64; ++i) x[i] = r[i];
  std::memset(r, 0, 64);
  ModL(r, x);
}

// Decompresses a public key into -A (negated, as used by verification).
int UnpackNeg(Point& r, const std::uint8_t p[32]) noexcept {
  Gf t, chk, num, den, den2, den4, den6;
  r.z = kOne;
  Unpack(r.y, p);
  Sqr(num, r.y);
  Mul(den, num, kD);
  Sub(num, num, r.z);
  Add(den, r.z, den);

  Sqr(den2, den);
  Sqr(den4, den2);
  Mul(den6, den4, den2);
  Mul(t, den6, num);
  Mul(t, t, den);

  Pow2523(t, t);
  Mul(t, t, num);
  Mul(t, t, den);
  Mul(t, t, den);
  Mul(r.x, t, den);

  Sqr(chk, r.x);
  Mul(chk, chk, den);
  if (Neq(chk, num)) Mul(r.x, r.x, kI);

  Sqr(chk, r.x);
  Mul(chk, chk, den);
  if (Neq(chk, num)) return -1;

  if (Par(r.x) == (p[31] >> 7)) Sub(r.x, kZero, r.x);

  Mul(r.t, r.x, r.y);
  return 0;
}

// The RFC 8032 expanded secret: SHA-512(seed), clamped.
void ExpandSeed(const ByteArray<32>& seed, std::uint8_t d[64]) noexcept {
  const auto h = Sha512::Hash(seed);
  std::memcpy(d, h.data(), 64);
  d[0] &= 248;
  d[31] &= 127;
  d[31] |= 64;
}

} // namespace

Ed25519KeyPair Ed25519FromSeed(const ByteArray<32>& seed) noexcept {
  std::uint8_t d[64];
  ExpandSeed(seed, d);

  Point p;
  ScalarBase(p, d);

  Ed25519KeyPair key;
  key.seed = seed;
  PackPoint(key.public_key.data(), p);
  SecureZero(MutableByteSpan(d, 64));
  return key;
}

ByteArray<64> Ed25519Sign(const Ed25519KeyPair& key, ByteSpan message) noexcept {
  std::uint8_t d[64];
  ExpandSeed(key.seed, d);

  // r = SHA-512(prefix || M) mod L
  Sha512 hasher;
  hasher.Update(ByteSpan(d + 32, 32));
  hasher.Update(message);
  auto r_hash = hasher.Finish();
  std::uint8_t r[64];
  std::memcpy(r, r_hash.data(), 64);
  Reduce(r);

  Point p;
  ScalarBase(p, r);
  ByteArray<64> sig{};
  PackPoint(sig.data(), p);

  // k = SHA-512(R || A || M) mod L
  hasher.Reset();
  hasher.Update(ByteSpan(sig.data(), 32));
  hasher.Update(key.public_key);
  hasher.Update(message);
  auto k_hash = hasher.Finish();
  std::uint8_t k[64];
  std::memcpy(k, k_hash.data(), 64);
  Reduce(k);

  // S = (r + k * s) mod L
  std::int64_t x[64] = {};
  for (int i = 0; i < 32; ++i) x[i] = r[i];
  for (int i = 0; i < 32; ++i) {
    for (int j = 0; j < 32; ++j) {
      x[i + j] += static_cast<std::int64_t>(k[i]) * d[j];
    }
  }
  ModL(sig.data() + 32, x);
  SecureZero(MutableByteSpan(d, 64));
  return sig;
}

bool Ed25519Verify(const ByteArray<32>& public_key, ByteSpan message,
                   const ByteArray<64>& signature) noexcept {
  Point q;
  if (UnpackNeg(q, public_key.data()) != 0) return false;

  // k = SHA-512(R || A || M) mod L
  Sha512 hasher;
  hasher.Update(ByteSpan(signature.data(), 32));
  hasher.Update(public_key);
  hasher.Update(message);
  auto h = hasher.Finish();
  std::uint8_t k[64];
  std::memcpy(k, h.data(), 64);
  Reduce(k);

  // R' = k * (-A) + S * B ; valid iff R' == R.
  Point p;
  ScalarMult(p, q, k);
  Point sb;
  ScalarBase(sb, signature.data() + 32);
  PointAdd(p, sb);

  std::uint8_t t[32];
  PackPoint(t, p);
  return ConstantTimeEqual(ByteSpan(t, 32), ByteSpan(signature.data(), 32));
}

} // namespace nexus::crypto
