#include "crypto/fe25519.hpp"

#include "crypto/ct.hpp"

namespace nexus::crypto::fe {

void Car(Gf& o) noexcept {
  for (int i = 0; i < 16; ++i) {
    o.v[i] += (1LL << 16);
    const i64 c = o.v[i] >> 16;
    o.v[(i + 1) * (i < 15)] += c - 1 + 37 * (c - 1) * (i == 15);
    o.v[i] -= c << 16;
  }
}

void Sel(Gf& p, Gf& q, int b) noexcept {
  const i64 c = ~static_cast<i64>(b - 1);
  for (int i = 0; i < 16; ++i) {
    const i64 t = c & (p.v[i] ^ q.v[i]);
    p.v[i] ^= t;
    q.v[i] ^= t;
  }
}

void Pack(std::uint8_t o[32], const Gf& n) noexcept {
  Gf t = n;
  Car(t);
  Car(t);
  Car(t);
  Gf m;
  for (int j = 0; j < 2; ++j) {
    m.v[0] = t.v[0] - 0xffed;
    for (int i = 1; i < 15; ++i) {
      m.v[i] = t.v[i] - 0xffff - ((m.v[i - 1] >> 16) & 1);
      m.v[i - 1] &= 0xffff;
    }
    m.v[15] = t.v[15] - 0x7fff - ((m.v[14] >> 16) & 1);
    const int b = static_cast<int>((m.v[15] >> 16) & 1);
    m.v[14] &= 0xffff;
    Sel(t, m, 1 - b);
  }
  for (int i = 0; i < 16; ++i) {
    o[2 * i] = static_cast<std::uint8_t>(t.v[i] & 0xff);
    o[2 * i + 1] = static_cast<std::uint8_t>(t.v[i] >> 8);
  }
}

void Unpack(Gf& o, const std::uint8_t n[32]) noexcept {
  for (int i = 0; i < 16; ++i) {
    o.v[i] = n[2 * i] + (static_cast<i64>(n[2 * i + 1]) << 8);
  }
  o.v[15] &= 0x7fff;
}

void Add(Gf& o, const Gf& a, const Gf& b) noexcept {
  for (int i = 0; i < 16; ++i) o.v[i] = a.v[i] + b.v[i];
}

void Sub(Gf& o, const Gf& a, const Gf& b) noexcept {
  for (int i = 0; i < 16; ++i) o.v[i] = a.v[i] - b.v[i];
}

void Mul(Gf& o, const Gf& a, const Gf& b) noexcept {
  i64 t[31] = {};
  for (int i = 0; i < 16; ++i) {
    for (int j = 0; j < 16; ++j) t[i + j] += a.v[i] * b.v[j];
  }
  for (int i = 0; i < 15; ++i) t[i] += 38 * t[i + 16];
  for (int i = 0; i < 16; ++i) o.v[i] = t[i];
  Car(o);
  Car(o);
}

void Sqr(Gf& o, const Gf& a) noexcept { Mul(o, a, a); }

void Inv(Gf& o, const Gf& in) noexcept {
  Gf c = in;
  for (int a = 253; a >= 0; --a) {
    Sqr(c, c);
    if (a != 2 && a != 4) Mul(c, c, in);
  }
  o = c;
}

void Pow2523(Gf& o, const Gf& in) noexcept {
  Gf c = in;
  for (int a = 250; a >= 0; --a) {
    Sqr(c, c);
    if (a != 1) Mul(c, c, in);
  }
  o = c;
}

int Par(const Gf& a) noexcept {
  std::uint8_t d[32];
  Pack(d, a);
  return d[0] & 1;
}

int Neq(const Gf& a, const Gf& b) noexcept {
  std::uint8_t c[32], d[32];
  Pack(c, a);
  Pack(d, b);
  return ConstantTimeEqual(ByteSpan(c, 32), ByteSpan(d, 32)) ? 0 : 1;
}

} // namespace nexus::crypto::fe
