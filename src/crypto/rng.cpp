#include "crypto/rng.hpp"

#include <cstring>
#include <random>

#include "crypto/hmac.hpp"

namespace nexus::crypto {

std::uint64_t Rng::Below(std::uint64_t bound) noexcept {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = bound * (UINT64_MAX / bound);
  for (;;) {
    ByteArray<8> raw = Array<8>();
    std::uint64_t v;
    std::memcpy(&v, raw.data(), 8);
    if (v < limit || limit == 0) return v % bound;
  }
}

HmacDrbg::HmacDrbg(ByteSpan seed) noexcept {
  key_.fill(0x00);
  value_.fill(0x01);
  Update(seed);
}

void HmacDrbg::Update(ByteSpan provided) noexcept {
  // K = HMAC(K, V || 0x00 || provided); V = HMAC(K, V)
  HmacSha256Stream mac1(key_);
  mac1.Update(value_);
  const std::uint8_t zero = 0x00;
  mac1.Update(ByteSpan(&zero, 1));
  mac1.Update(provided);
  key_ = mac1.Finish();
  value_ = HmacSha256(key_, value_);

  if (!provided.empty()) {
    HmacSha256Stream mac2(key_);
    mac2.Update(value_);
    const std::uint8_t one = 0x01;
    mac2.Update(ByteSpan(&one, 1));
    mac2.Update(provided);
    key_ = mac2.Finish();
    value_ = HmacSha256(key_, value_);
  }
}

void HmacDrbg::Fill(MutableByteSpan out) noexcept {
  std::size_t pos = 0;
  while (pos < out.size()) {
    value_ = HmacSha256(key_, value_);
    const std::size_t n = std::min(value_.size(), out.size() - pos);
    std::memcpy(out.data() + pos, value_.data(), n);
    pos += n;
  }
  Update({});
}

void HmacDrbg::Reseed(ByteSpan seed) noexcept { Update(seed); }

Rng& SystemRng() {
  static HmacDrbg* rng = [] {
    std::random_device rd;
    ByteArray<48> seed;
    for (std::size_t i = 0; i < seed.size(); i += 4) {
      const std::uint32_t v = rd();
      std::memcpy(seed.data() + i, &v, std::min<std::size_t>(4, seed.size() - i));
    }
    return new HmacDrbg(seed);
  }();
  return *rng;
}

} // namespace nexus::crypto
