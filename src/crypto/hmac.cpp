#include "crypto/hmac.hpp"

#include <cassert>
#include <cstring>

namespace nexus::crypto {
namespace {

// Normalizes the key to one hash block: hash if longer, zero-pad if shorter.
ByteArray<64> NormalizeKey(ByteSpan key) noexcept {
  ByteArray<64> block{};
  if (key.size() > 64) {
    const auto digest = Sha256::Hash(key);
    std::memcpy(block.data(), digest.data(), digest.size());
  } else {
    std::memcpy(block.data(), key.data(), key.size());
  }
  return block;
}

} // namespace

HmacSha256Stream::HmacSha256Stream(ByteSpan key) noexcept {
  const ByteArray<64> k = NormalizeKey(key);
  ByteArray<64> ipad;
  for (int i = 0; i < 64; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad_key_[i] = k[i] ^ 0x5c;
  }
  inner_.Update(ipad);
}

ByteArray<32> HmacSha256Stream::Finish() noexcept {
  const auto inner_digest = inner_.Finish();
  Sha256 outer;
  outer.Update(opad_key_);
  outer.Update(inner_digest);
  return outer.Finish();
}

ByteArray<32> HmacSha256(ByteSpan key, ByteSpan message) noexcept {
  HmacSha256Stream mac(key);
  mac.Update(message);
  return mac.Finish();
}

ByteArray<32> HkdfExtract(ByteSpan salt, ByteSpan ikm) noexcept {
  static constexpr ByteArray<32> kZeroSalt{};
  return HmacSha256(salt.empty() ? ByteSpan(kZeroSalt) : salt, ikm);
}

Bytes HkdfExpand(ByteSpan prk, ByteSpan info, std::size_t length) {
  assert(length <= 255 * 32 && "HKDF-Expand length limit");
  Bytes out;
  out.reserve(length);
  ByteArray<32> t{};
  std::size_t t_len = 0;
  std::uint8_t counter = 1;
  while (out.size() < length) {
    HmacSha256Stream mac(prk);
    mac.Update(ByteSpan(t.data(), t_len));
    mac.Update(info);
    mac.Update(ByteSpan(&counter, 1));
    t = mac.Finish();
    t_len = t.size();
    const std::size_t take = std::min(t_len, length - out.size());
    Append(out, ByteSpan(t.data(), take));
    ++counter;
  }
  return out;
}

Bytes Hkdf(ByteSpan salt, ByteSpan ikm, ByteSpan info, std::size_t length) {
  const auto prk = HkdfExtract(salt, ikm);
  return HkdfExpand(prk, info, length);
}

} // namespace nexus::crypto
