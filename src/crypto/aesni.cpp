// Compiled with -maes -mpclmul -mssse3 (see CMakeLists); callers must gate
// on HasAesHardware().
#include "crypto/aesni.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "crypto/aes.hpp"
#include "crypto/gcm.hpp"

#if defined(__x86_64__)
#include <immintrin.h>
#include <wmmintrin.h>
#endif

namespace nexus::crypto {

namespace {

std::atomic<bool> g_force_fallback{false};

// NEXUS_NO_AESNI set (non-empty, not "0") disables the fast paths — used
// by CI to keep the scalar implementations exercised on AES-NI machines.
bool DisabledByEnv() noexcept {
  const char* v = std::getenv("NEXUS_NO_AESNI");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

bool CpuidSupportsAesni() noexcept {
#if defined(__x86_64__)
  return __builtin_cpu_supports("aes") && __builtin_cpu_supports("pclmul") &&
         __builtin_cpu_supports("ssse3");
#else
  return false;
#endif
}

} // namespace

bool AesniSelfTest() noexcept {
  if (!CpuidSupportsAesni()) return false;

  // CTR keystream: 80 bytes so both the 4-wide pipeline (64) and the
  // scalar tail (16) run, with the counter placed just below a multi-byte
  // carry so the big-endian increment is verified too. The reference is
  // built directly from the portable Aes::EncryptBlock — NOT AesCtrXor,
  // whose dispatch consults the HasAesHardware() static this self-test
  // initializes.
  static constexpr std::uint8_t kKey[16] = {
      0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
      0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
  auto aes = Aes::Create(ByteSpan(kKey, 16));
  if (!aes.ok()) return false;

  std::uint8_t counter[16] = {0xca, 0xfe, 0xba, 0xbe, 0xfa, 0xce,
                              0xdb, 0xad, 0xde, 0xca, 0xf8, 0x88,
                              0x00, 0x00, 0xff, 0xfd};
  std::uint8_t input[80];
  for (std::size_t i = 0; i < sizeof(input); ++i) {
    input[i] = static_cast<std::uint8_t>(i * 7 + 1);
  }

  std::uint8_t rk[240];
  aes->ExportRoundKeyBytes(rk);
  std::uint8_t got[80];
  AesNiCtrXor(rk, aes->rounds(), counter, ByteSpan(input, sizeof(input)),
              MutableByteSpan(got, sizeof(got)));

  std::uint8_t want[80];
  std::uint8_t ctr[16];
  std::memcpy(ctr, counter, 16);
  for (std::size_t pos = 0; pos < sizeof(input); pos += 16) {
    std::uint8_t keystream[16];
    aes->EncryptBlock(ctr, keystream);
    for (int i = 15; i >= 12; --i) {
      if (++ctr[i] != 0) break;
    }
    for (std::size_t i = 0; i < 16; ++i) {
      want[pos + i] = input[pos + i] ^ keystream[i];
    }
  }
  if (std::memcmp(got, want, sizeof(want)) != 0) return false;

  // GHASH block step: y <- (0 ^ x) * h, PCLMUL vs the forced-portable
  // table implementation (force_portable short-circuits its dispatch, so
  // this cannot recurse into HasAesHardware()).
  std::uint8_t h[16];
  std::uint8_t x[16];
  for (std::size_t i = 0; i < 16; ++i) {
    h[i] = static_cast<std::uint8_t>(0xa3 ^ (i * 29));
    x[i] = static_cast<std::uint8_t>(0x5c + i * 13);
  }
  Ghash reference(h, /*force_portable=*/true);
  reference.Update(ByteSpan(x, 16));
  const ByteArray<16> want_y = reference.State();
  std::uint8_t y[16] = {};
  PclmulGhashBlock(y, x, h);
  return std::memcmp(y, want_y.data(), 16) == 0;
}

bool HasAesHardware() noexcept {
  // Detection runs once: CPUID gate, env knob, then the known-answer
  // verification — a fast path that cannot prove it matches the portable
  // reference is never dispatched to.
  static const bool enabled = !DisabledByEnv() && AesniSelfTest();
  return enabled && !g_force_fallback.load(std::memory_order_relaxed);
}

void ForceAesFallbackForTesting(bool disabled) noexcept {
  g_force_fallback.store(disabled, std::memory_order_relaxed);
}

#if defined(__x86_64__)

namespace {

// Encrypts one block with pre-loaded round keys.
inline __m128i EncryptBlockNi(__m128i block, const __m128i* rk,
                              int rounds) noexcept {
  block = _mm_xor_si128(block, rk[0]);
  for (int r = 1; r < rounds; ++r) block = _mm_aesenc_si128(block, rk[r]);
  return _mm_aesenclast_si128(block, rk[rounds]);
}

// GHASH operands are bit-reflected for CLMUL (Intel white paper layout).
inline __m128i Reflect(__m128i v) noexcept {
  const __m128i mask =
      _mm_set_epi8(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15);
  return _mm_shuffle_epi8(v, mask);
}

// GF(2^128) multiply of reflected operands (Intel CLMUL white paper,
// "gfmul" with the shift-left-1 + reduction sequence).
inline __m128i GfMulReflected(__m128i a, __m128i b) noexcept {
  __m128i tmp3 = _mm_clmulepi64_si128(a, b, 0x00);
  __m128i tmp4 = _mm_clmulepi64_si128(a, b, 0x10);
  __m128i tmp5 = _mm_clmulepi64_si128(a, b, 0x01);
  __m128i tmp6 = _mm_clmulepi64_si128(a, b, 0x11);

  tmp4 = _mm_xor_si128(tmp4, tmp5);
  tmp5 = _mm_slli_si128(tmp4, 8);
  tmp4 = _mm_srli_si128(tmp4, 8);
  tmp3 = _mm_xor_si128(tmp3, tmp5);
  tmp6 = _mm_xor_si128(tmp6, tmp4);

  __m128i tmp7 = _mm_srli_epi32(tmp3, 31);
  __m128i tmp8 = _mm_srli_epi32(tmp6, 31);
  tmp3 = _mm_slli_epi32(tmp3, 1);
  tmp6 = _mm_slli_epi32(tmp6, 1);

  __m128i tmp9 = _mm_srli_si128(tmp7, 12);
  tmp8 = _mm_slli_si128(tmp8, 4);
  tmp7 = _mm_slli_si128(tmp7, 4);
  tmp3 = _mm_or_si128(tmp3, tmp7);
  tmp6 = _mm_or_si128(tmp6, tmp8);
  tmp6 = _mm_or_si128(tmp6, tmp9);

  tmp7 = _mm_slli_epi32(tmp3, 31);
  tmp8 = _mm_slli_epi32(tmp3, 30);
  tmp9 = _mm_slli_epi32(tmp3, 25);
  tmp7 = _mm_xor_si128(tmp7, tmp8);
  tmp7 = _mm_xor_si128(tmp7, tmp9);
  tmp8 = _mm_srli_si128(tmp7, 4);
  tmp7 = _mm_slli_si128(tmp7, 12);
  tmp3 = _mm_xor_si128(tmp3, tmp7);

  __m128i tmp2 = _mm_srli_epi32(tmp3, 1);
  tmp4 = _mm_srli_epi32(tmp3, 2);
  tmp5 = _mm_srli_epi32(tmp3, 7);
  tmp2 = _mm_xor_si128(tmp2, tmp4);
  tmp2 = _mm_xor_si128(tmp2, tmp5);
  tmp2 = _mm_xor_si128(tmp2, tmp8);
  tmp3 = _mm_xor_si128(tmp3, tmp2);
  return _mm_xor_si128(tmp6, tmp3);
}

} // namespace

void AesNiCtrXor(const std::uint8_t* round_key_bytes, int rounds,
                 const std::uint8_t counter[16], ByteSpan in,
                 MutableByteSpan out) noexcept {
  __m128i rk[15];
  for (int i = 0; i <= rounds; ++i) {
    rk[i] = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(round_key_bytes + 16 * i));
  }

  std::uint8_t ctr[16];
  __builtin_memcpy(ctr, counter, 16);
  auto bump = [&ctr]() noexcept {
    for (int i = 15; i >= 12; --i) {
      if (++ctr[i] != 0) break;
    }
  };

  std::size_t pos = 0;
  // 4-wide pipeline for the bulk.
  while (pos + 64 <= in.size()) {
    __m128i blocks[4];
    for (auto& b : blocks) {
      b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(ctr));
      bump();
    }
    for (auto& b : blocks) b = _mm_xor_si128(b, rk[0]);
    for (int r = 1; r < rounds; ++r) {
      for (auto& b : blocks) b = _mm_aesenc_si128(b, rk[r]);
    }
    for (auto& b : blocks) b = _mm_aesenclast_si128(b, rk[rounds]);
    for (int j = 0; j < 4; ++j) {
      const __m128i data = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(in.data() + pos + 16 * j));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out.data() + pos + 16 * j),
                       _mm_xor_si128(data, blocks[j]));
    }
    pos += 64;
  }
  // Tail.
  while (pos < in.size()) {
    const __m128i ks = EncryptBlockNi(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ctr)), rk, rounds);
    bump();
    std::uint8_t keystream[16];
    _mm_storeu_si128(reinterpret_cast<__m128i*>(keystream), ks);
    const std::size_t n = std::min<std::size_t>(16, in.size() - pos);
    for (std::size_t i = 0; i < n; ++i) out[pos + i] = in[pos + i] ^ keystream[i];
    pos += n;
  }
}

void PclmulGhashBlock(std::uint8_t y[16], const std::uint8_t x[16],
                      const std::uint8_t h[16]) noexcept {
  const __m128i yv = _mm_loadu_si128(reinterpret_cast<const __m128i*>(y));
  const __m128i xv = _mm_loadu_si128(reinterpret_cast<const __m128i*>(x));
  const __m128i hv = _mm_loadu_si128(reinterpret_cast<const __m128i*>(h));
  const __m128i product = GfMulReflected(Reflect(_mm_xor_si128(yv, xv)),
                                         Reflect(hv));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(y), Reflect(product));
}

#else // !__x86_64__

void AesNiCtrXor(const std::uint8_t*, int, const std::uint8_t*, ByteSpan,
                 MutableByteSpan) noexcept {}
void PclmulGhashBlock(std::uint8_t*, const std::uint8_t*,
                      const std::uint8_t*) noexcept {}

#endif

} // namespace nexus::crypto
