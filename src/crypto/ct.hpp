// Constant-time helpers for secret-dependent comparisons.
#pragma once

#include "common/bytes.hpp"

namespace nexus::crypto {

/// Constant-time equality; returns false if sizes differ (size is public).
inline bool ConstantTimeEqual(ByteSpan a, ByteSpan b) noexcept {
  if (a.size() != b.size()) return false;
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

} // namespace nexus::crypto
