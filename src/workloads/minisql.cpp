#include "workloads/minisql.hpp"

#include <algorithm>
#include <cstring>

#include "common/serial.hpp"

namespace nexus::workloads::minisql {
namespace {

constexpr std::uint8_t kLeaf = 1;
constexpr std::uint8_t kInterior = 2;
constexpr std::uint32_t kMagic = 0x4d534c51; // "MSLQ"

// ---- page codecs -------------------------------------------------------------
// Leaf:     [u8 kLeaf][u16 n][(u16 klen, u16 vlen, key, value) * n]
// Interior: [u8 kInterior][u16 n][u32 child0][(u16 klen, key, u32 child) * n]

struct LeafView {
  std::vector<std::pair<Bytes, Bytes>> entries;

  [[nodiscard]] std::size_t SerializedSize() const {
    std::size_t size = 3;
    for (const auto& [k, v] : entries) size += 4 + k.size() + v.size();
    return size;
  }

  void Encode(Bytes& page) const {
    Writer w;
    w.U8(kLeaf);
    w.U16(static_cast<std::uint16_t>(entries.size()));
    for (const auto& [k, v] : entries) {
      w.U16(static_cast<std::uint16_t>(k.size()));
      w.U16(static_cast<std::uint16_t>(v.size()));
      w.Raw(k);
      w.Raw(v);
    }
    page.assign(kPageSize, 0);
    std::memcpy(page.data(), w.bytes().data(), w.bytes().size());
  }

  static Result<LeafView> Decode(const Bytes& page) {
    Reader r(page);
    NEXUS_ASSIGN_OR_RETURN(std::uint8_t type, r.U8());
    if (type != kLeaf) return Error(ErrorCode::kInternal, "not a leaf page");
    NEXUS_ASSIGN_OR_RETURN(std::uint16_t n, r.U16());
    LeafView view;
    view.entries.reserve(n);
    for (std::uint16_t i = 0; i < n; ++i) {
      NEXUS_ASSIGN_OR_RETURN(std::uint16_t klen, r.U16());
      NEXUS_ASSIGN_OR_RETURN(std::uint16_t vlen, r.U16());
      NEXUS_ASSIGN_OR_RETURN(Bytes k, r.Raw(klen));
      NEXUS_ASSIGN_OR_RETURN(Bytes v, r.Raw(vlen));
      view.entries.emplace_back(std::move(k), std::move(v));
    }
    return view;
  }
};

struct InteriorView {
  std::uint32_t child0 = 0;
  std::vector<std::pair<Bytes, std::uint32_t>> entries; // key -> right child

  [[nodiscard]] std::size_t SerializedSize() const {
    std::size_t size = 3 + 4;
    for (const auto& [k, c] : entries) size += 2 + k.size() + 4;
    return size;
  }

  void Encode(Bytes& page) const {
    Writer w;
    w.U8(kInterior);
    w.U16(static_cast<std::uint16_t>(entries.size()));
    w.U32(child0);
    for (const auto& [k, c] : entries) {
      w.U16(static_cast<std::uint16_t>(k.size()));
      w.Raw(k);
      w.U32(c);
    }
    page.assign(kPageSize, 0);
    std::memcpy(page.data(), w.bytes().data(), w.bytes().size());
  }

  static Result<InteriorView> Decode(const Bytes& page) {
    Reader r(page);
    NEXUS_ASSIGN_OR_RETURN(std::uint8_t type, r.U8());
    if (type != kInterior) {
      return Error(ErrorCode::kInternal, "not an interior page");
    }
    NEXUS_ASSIGN_OR_RETURN(std::uint16_t n, r.U16());
    InteriorView view;
    NEXUS_ASSIGN_OR_RETURN(view.child0, r.U32());
    view.entries.reserve(n);
    for (std::uint16_t i = 0; i < n; ++i) {
      NEXUS_ASSIGN_OR_RETURN(std::uint16_t klen, r.U16());
      NEXUS_ASSIGN_OR_RETURN(Bytes k, r.Raw(klen));
      NEXUS_ASSIGN_OR_RETURN(std::uint32_t c, r.U32());
      view.entries.emplace_back(std::move(k), c);
    }
    return view;
  }

  /// Child to descend into for `key`.
  [[nodiscard]] std::uint32_t ChildFor(ByteSpan key) const {
    std::uint32_t child = child0;
    for (const auto& [k, c] : entries) {
      if (ByteSpan(k).size() == 0) break;
      if (std::lexicographical_compare(key.begin(), key.end(), k.begin(),
                                       k.end())) {
        break;
      }
      child = c;
    }
    return child;
  }
};

bool Less(ByteSpan a, ByteSpan b) {
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
}

} // namespace

// ---- lifecycle ----------------------------------------------------------------

Result<std::unique_ptr<Table>> Table::Open(vfs::FileSystem& fs,
                                           const std::string& dir,
                                           Options options) {
  auto table = std::unique_ptr<Table>(new Table(fs, dir, options));
  if (!fs.Exists(dir)) {
    NEXUS_RETURN_IF_ERROR(fs.MkdirAll(dir));
  }
  NEXUS_RETURN_IF_ERROR(table->Recover());
  NEXUS_RETURN_IF_ERROR(table->LoadOrInit());
  table->open_ = true;
  return table;
}

Table::~Table() {
  if (open_) (void)Close();
}

Status Table::Recover() {
  // A leftover journal means a crash mid-commit: restore the pre-images.
  if (!fs_.Exists(JournalPath())) return Status::Ok();
  NEXUS_ASSIGN_OR_RETURN(Bytes journal, fs_.ReadWholeFile(JournalPath()));
  if (!journal.empty() && fs_.Exists(DbPath())) {
    NEXUS_ASSIGN_OR_RETURN(Bytes db, fs_.ReadWholeFile(DbPath()));
    Reader r(journal);
    NEXUS_ASSIGN_OR_RETURN(std::uint32_t n, r.U32());
    for (std::uint32_t i = 0; i < n; ++i) {
      NEXUS_ASSIGN_OR_RETURN(std::uint32_t page_id, r.U32());
      NEXUS_ASSIGN_OR_RETURN(Bytes image, r.Raw(kPageSize));
      const std::size_t offset = static_cast<std::size_t>(page_id) * kPageSize;
      if (offset + kPageSize <= db.size()) {
        std::memcpy(db.data() + offset, image.data(), kPageSize);
      }
    }
    // Pages appended by the aborted txn beyond the journalled extent are
    // trimmed on next header read (page_count is part of page 0).
    NEXUS_RETURN_IF_ERROR(fs_.WriteWholeFile(DbPath(), db));
  }
  return fs_.Remove(JournalPath());
}

void Table::WriteHeader() {
  Writer w;
  w.U32(kMagic);
  w.U32(root_);
  w.U32(static_cast<std::uint32_t>(pages_.size()));
  pages_[0].data.assign(kPageSize, 0);
  std::memcpy(pages_[0].data.data(), w.bytes().data(), w.bytes().size());
}

Status Table::ReadHeader() {
  Reader r(pages_[0].data);
  NEXUS_ASSIGN_OR_RETURN(std::uint32_t magic, r.U32());
  if (magic != kMagic) {
    return Error(ErrorCode::kIOError, "bad minisql database header");
  }
  NEXUS_ASSIGN_OR_RETURN(root_, r.U32());
  NEXUS_ASSIGN_OR_RETURN(std::uint32_t page_count, r.U32());
  if (page_count < pages_.size()) pages_.resize(page_count);
  return Status::Ok();
}

Status Table::LoadOrInit() {
  const bool fresh = !fs_.Exists(DbPath());
  NEXUS_ASSIGN_OR_RETURN(
      db_file_, fs_.Open(DbPath(), fresh ? vfs::OpenMode::kWrite
                                         : vfs::OpenMode::kReadWrite));
  if (fresh) {
    pages_.resize(2);
    root_ = 1;
    LeafView empty;
    empty.Encode(pages_[1].data);
    WriteHeader();
    NEXUS_RETURN_IF_ERROR(db_file_->Write(0, pages_[0].data));
    NEXUS_RETURN_IF_ERROR(db_file_->Write(kPageSize, pages_[1].data));
    return db_file_->Sync();
  }
  const std::uint64_t size = db_file_->Size();
  pages_.resize(size / kPageSize);
  for (std::size_t i = 0; i < pages_.size(); ++i) {
    pages_[i].data.resize(kPageSize);
    NEXUS_ASSIGN_OR_RETURN(std::size_t n,
                           db_file_->Read(i * kPageSize, pages_[i].data));
    if (n != kPageSize) {
      return Error(ErrorCode::kIOError, "short page read");
    }
  }
  return ReadHeader();
}

// ---- pager --------------------------------------------------------------------

Table::PageId Table::AllocatePage() {
  pages_.emplace_back();
  pages_.back().data.assign(kPageSize, 0);
  const auto id = static_cast<PageId>(pages_.size() - 1);
  dirty_.push_back(id);
  return id;
}

void Table::TouchPage(PageId id) {
  if (options_.sync == SyncMode::kFull && !preimages_.contains(id)) {
    preimages_[id] = pages_[id].data;
  }
  dirty_.push_back(id);
}

Status Table::CommitTxn() {
  // 1. Rollback journal (sync mode only; async trusts the cache, as
  //    SQLite synchronous=OFF does).
  if (options_.sync == SyncMode::kFull && !preimages_.empty()) {
    Writer w;
    w.U32(static_cast<std::uint32_t>(preimages_.size()));
    for (const auto& [id, image] : preimages_) {
      w.U32(id);
      w.Raw(image);
    }
    NEXUS_RETURN_IF_ERROR(fs_.WriteWholeFile(JournalPath(), w.bytes()));
  }

  // 2. Dirty pages into the database file.
  std::sort(dirty_.begin(), dirty_.end());
  dirty_.erase(std::unique(dirty_.begin(), dirty_.end()), dirty_.end());
  WriteHeader();
  NEXUS_RETURN_IF_ERROR(db_file_->Write(0, pages_[0].data));
  for (const PageId id : dirty_) {
    NEXUS_RETURN_IF_ERROR(
        db_file_->Write(static_cast<std::uint64_t>(id) * kPageSize,
                        pages_[id].data));
  }

  // 3. fsync + journal delete (sync mode).
  if (options_.sync == SyncMode::kFull) {
    NEXUS_RETURN_IF_ERROR(db_file_->Sync());
    if (!preimages_.empty()) {
      NEXUS_RETURN_IF_ERROR(fs_.Remove(JournalPath()));
    }
  }

  preimages_.clear();
  dirty_.clear();
  in_txn_ = false;
  return Status::Ok();
}

// ---- B+tree -------------------------------------------------------------------

Result<Table::SplitResult> Table::InsertInto(PageId node, ByteSpan key,
                                             ByteSpan value) {
  const std::uint8_t type = pages_[node].data[0];
  if (type == kLeaf) {
    NEXUS_ASSIGN_OR_RETURN(LeafView leaf, LeafView::Decode(pages_[node].data));
    const auto it = std::lower_bound(
        leaf.entries.begin(), leaf.entries.end(), key,
        [](const auto& entry, ByteSpan target) { return Less(entry.first, target); });
    if (it != leaf.entries.end() && ByteSpan(it->first).size() == key.size() &&
        std::equal(key.begin(), key.end(), it->first.begin())) {
      it->second = ToBytes(value);
    } else {
      leaf.entries.insert(it, {ToBytes(key), ToBytes(value)});
    }

    TouchPage(node);
    if (leaf.SerializedSize() <= kPageSize) {
      leaf.Encode(pages_[node].data);
      return SplitResult{};
    }
    // Split: right half moves to a fresh page.
    const std::size_t mid = leaf.entries.size() / 2;
    LeafView right;
    right.entries.assign(leaf.entries.begin() + static_cast<std::ptrdiff_t>(mid),
                         leaf.entries.end());
    leaf.entries.resize(mid);
    const PageId right_id = AllocatePage();
    leaf.Encode(pages_[node].data);
    right.Encode(pages_[right_id].data);
    return SplitResult{true, right.entries.front().first, right_id};
  }

  NEXUS_ASSIGN_OR_RETURN(InteriorView interior,
                         InteriorView::Decode(pages_[node].data));
  const std::uint32_t child = interior.ChildFor(key);
  NEXUS_ASSIGN_OR_RETURN(SplitResult child_split, InsertInto(child, key, value));
  if (!child_split.split) return SplitResult{};

  const auto it = std::lower_bound(
      interior.entries.begin(), interior.entries.end(), child_split.separator,
      [](const auto& entry, const Bytes& target) {
        return Less(entry.first, target);
      });
  interior.entries.insert(it, {child_split.separator, child_split.right});

  TouchPage(node);
  if (interior.SerializedSize() <= kPageSize) {
    interior.Encode(pages_[node].data);
    return SplitResult{};
  }
  const std::size_t mid = interior.entries.size() / 2;
  InteriorView right;
  right.child0 = interior.entries[mid].second;
  right.entries.assign(
      interior.entries.begin() + static_cast<std::ptrdiff_t>(mid) + 1,
      interior.entries.end());
  Bytes separator = interior.entries[mid].first;
  interior.entries.resize(mid);
  const PageId right_id = AllocatePage();
  interior.Encode(pages_[node].data);
  right.Encode(pages_[right_id].data);
  return SplitResult{true, std::move(separator), right_id};
}

Result<std::optional<Bytes>> Table::FindIn(PageId node, ByteSpan key) {
  const std::uint8_t type = pages_[node].data[0];
  if (type == kLeaf) {
    NEXUS_ASSIGN_OR_RETURN(LeafView leaf, LeafView::Decode(pages_[node].data));
    const auto it = std::lower_bound(
        leaf.entries.begin(), leaf.entries.end(), key,
        [](const auto& entry, ByteSpan target) { return Less(entry.first, target); });
    if (it != leaf.entries.end() && it->first.size() == key.size() &&
        std::equal(key.begin(), key.end(), it->first.begin())) {
      return std::optional<Bytes>(it->second);
    }
    return std::optional<Bytes>();
  }
  NEXUS_ASSIGN_OR_RETURN(InteriorView interior,
                         InteriorView::Decode(pages_[node].data));
  return FindIn(interior.ChildFor(key), key);
}

// ---- public API ----------------------------------------------------------------

Status Table::Begin() {
  if (explicit_txn_) return Error(ErrorCode::kInvalidArgument, "txn active");
  explicit_txn_ = true;
  in_txn_ = true;
  return Status::Ok();
}

Status Table::Commit() {
  if (!explicit_txn_) return Error(ErrorCode::kInvalidArgument, "no txn");
  explicit_txn_ = false;
  return CommitTxn();
}

Status Table::Put(ByteSpan key, ByteSpan value) {
  if (!open_) return Error(ErrorCode::kInvalidArgument, "table closed");
  if (key.size() > 512 || value.size() > 2048) {
    return Error(ErrorCode::kInvalidArgument, "key/value too large for page");
  }
  in_txn_ = true;
  NEXUS_ASSIGN_OR_RETURN(SplitResult split, InsertInto(root_, key, value));
  if (split.split) {
    InteriorView new_root;
    new_root.child0 = root_;
    new_root.entries.emplace_back(split.separator, split.right);
    const PageId id = AllocatePage();
    new_root.Encode(pages_[id].data);
    root_ = id;
  }
  if (!explicit_txn_) return CommitTxn();
  return Status::Ok();
}

Result<Bytes> Table::Get(ByteSpan key) {
  if (!open_) return Error(ErrorCode::kInvalidArgument, "table closed");
  NEXUS_ASSIGN_OR_RETURN(std::optional<Bytes> value, FindIn(root_, key));
  if (!value.has_value()) {
    return Error(ErrorCode::kNotFound, "key not found");
  }
  return *value;
}

Status Table::Close() {
  if (!open_) return Error(ErrorCode::kInvalidArgument, "table closed");
  open_ = false;
  if (in_txn_ || !dirty_.empty()) {
    NEXUS_RETURN_IF_ERROR(CommitTxn());
  }
  return db_file_->Close();
}

} // namespace nexus::workloads::minisql
