// minisql: a SQLite-style single-table storage engine for Table II.
//
// What matters for the evaluation is SQLite's I/O pattern, which this
// reproduces faithfully: a fixed-size-page file updated through a page
// cache, a rollback journal holding pre-images, and per-transaction
// flush/fsync behaviour that differs across the benchmark's sync / async /
// batch modes:
//   * sync  — per txn: journal written + fsync, pages written + fsync,
//             journal deleted (SQLite journal_mode=DELETE, synchronous=FULL)
//   * async — pages written to the open handle, flushed on close
//             (synchronous=OFF: the OS/AFS cache absorbs writes)
//   * batch — explicit Begin/Commit around many ops, no fsync
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/result.hpp"
#include "vfs/vfs.hpp"

namespace nexus::workloads::minisql {

inline constexpr std::size_t kPageSize = 4096;

enum class SyncMode { kOff, kFull };

struct Options {
  SyncMode sync = SyncMode::kOff;
};

class Table {
 public:
  static Result<std::unique_ptr<Table>> Open(vfs::FileSystem& fs,
                                             const std::string& dir,
                                             Options options);
  ~Table();

  /// Insert-or-replace. Auto-commits unless inside Begin()/Commit().
  Status Put(ByteSpan key, ByteSpan value);
  Result<Bytes> Get(ByteSpan key);

  /// Explicit transaction (batch mode).
  Status Begin();
  Status Commit();

  Status Close();

  [[nodiscard]] std::size_t page_count() const noexcept {
    return pages_.size();
  }

 private:
  Table(vfs::FileSystem& fs, std::string dir, Options options)
      : fs_(fs), dir_(std::move(dir)), options_(options) {}

  using PageId = std::uint32_t;
  struct Page {
    Bytes data;
  };

  [[nodiscard]] std::string DbPath() const { return dir_ + "/table.db"; }
  [[nodiscard]] std::string JournalPath() const { return dir_ + "/journal"; }

  Status LoadOrInit();
  Status Recover();

  PageId AllocatePage();
  Bytes& PageData(PageId id) { return pages_[id].data; }
  /// Records the pre-image (once per txn) and marks the page dirty.
  void TouchPage(PageId id);

  Status CommitTxn();

  // ---- B+tree ----------------------------------------------------------
  struct LeafEntry {
    Bytes key;
    Bytes value;
  };
  struct SplitResult {
    bool split = false;
    Bytes separator;
    PageId right = 0;
  };
  Result<SplitResult> InsertInto(PageId node, ByteSpan key, ByteSpan value);
  Result<std::optional<Bytes>> FindIn(PageId node, ByteSpan key);

  void WriteHeader();
  Status ReadHeader();

  vfs::FileSystem& fs_;
  std::string dir_;
  Options options_;
  std::unique_ptr<vfs::OpenFile> db_file_;
  std::vector<Page> pages_; // page cache: entire file (4 MB default cache
                            // in the benchmark; our tables stay within it)
  PageId root_ = 0;
  bool in_txn_ = false;
  bool explicit_txn_ = false;
  std::unordered_map<PageId, Bytes> preimages_; // journal content
  std::vector<PageId> dirty_;
  bool open_ = false;
};

} // namespace nexus::workloads::minisql
