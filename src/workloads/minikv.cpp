#include "workloads/minikv.hpp"

#include <algorithm>

#include "common/serial.hpp"

namespace nexus::workloads::minikv {
namespace {

// Cheap per-record checksum so a torn WAL tail is detected during replay.
std::uint32_t RecordSum(bool is_delete, ByteSpan key, ByteSpan value) {
  std::uint32_t sum = is_delete ? 0x9e3779b9u : 0x85ebca6bu;
  for (const std::uint8_t b : key) sum = sum * 31 + b;
  for (const std::uint8_t b : value) sum = sum * 31 + b;
  return sum;
}

} // namespace

Result<std::unique_ptr<DB>> DB::Open(vfs::FileSystem& fs,
                                     const std::string& dir, Options options) {
  auto db = std::unique_ptr<DB>(new DB(fs, dir, options));
  if (!fs.Exists(dir)) {
    NEXUS_RETURN_IF_ERROR(fs.MkdirAll(dir));
  }
  NEXUS_RETURN_IF_ERROR(db->LoadManifest());
  NEXUS_RETURN_IF_ERROR(db->ReplayWal());
  NEXUS_ASSIGN_OR_RETURN(
      db->wal_, fs.Open(db->WalPath(), db->memtable_.empty()
                                           ? vfs::OpenMode::kWrite
                                           : vfs::OpenMode::kReadWrite));
  db->open_ = true;
  return db;
}

DB::~DB() {
  if (open_) (void)Close();
}

Status DB::LoadManifest() {
  if (!fs_.Exists(ManifestPath())) return Status::Ok();
  NEXUS_ASSIGN_OR_RETURN(Bytes raw, fs_.ReadWholeFile(ManifestPath()));
  Reader r(raw);
  NEXUS_ASSIGN_OR_RETURN(next_run_id_, r.U64());
  NEXUS_ASSIGN_OR_RETURN(std::uint32_t n, r.U32());
  runs_.clear();
  for (std::uint32_t i = 0; i < n; ++i) {
    NEXUS_ASSIGN_OR_RETURN(std::string name, r.Str());
    runs_.push_back(std::move(name));
  }
  run_cache_.assign(runs_.size(), std::nullopt);
  return Status::Ok();
}

Status DB::StoreManifest() {
  Writer w;
  w.U64(next_run_id_);
  w.U32(static_cast<std::uint32_t>(runs_.size()));
  for (const std::string& name : runs_) w.Str(name);
  return fs_.WriteWholeFile(ManifestPath(), w.bytes());
}

Status DB::ReplayWal() {
  if (!fs_.Exists(WalPath())) return Status::Ok();
  NEXUS_ASSIGN_OR_RETURN(Bytes raw, fs_.ReadWholeFile(WalPath()));
  Reader r(raw);
  while (!r.AtEnd()) {
    // A torn tail (crash mid-append) simply ends replay.
    auto sum = r.U32();
    if (!sum.ok()) break;
    auto is_delete = r.U8();
    if (!is_delete.ok()) break;
    auto key = r.Var(1 << 20);
    if (!key.ok()) break;
    auto value = r.Var(1 << 26);
    if (!value.ok()) break;
    if (RecordSum(*is_delete != 0, *key, *value) != *sum) break;

    memtable_bytes_ += key->size() + value->size();
    if (*is_delete != 0) {
      memtable_[*key] = std::nullopt;
    } else {
      memtable_[*key] = *value;
    }
  }
  return Status::Ok();
}

Status DB::AppendWalRecord(bool is_delete, ByteSpan key, ByteSpan value) {
  Writer w;
  w.U32(RecordSum(is_delete, key, value));
  w.U8(is_delete ? 1 : 0);
  w.Var(key);
  w.Var(value);
  NEXUS_RETURN_IF_ERROR(wal_->Append(w.bytes()));
  if (options_.sync_writes) {
    NEXUS_RETURN_IF_ERROR(wal_->Sync());
  }
  return Status::Ok();
}

Status DB::Put(ByteSpan key, ByteSpan value) {
  if (!open_) return Error(ErrorCode::kInvalidArgument, "db closed");
  NEXUS_RETURN_IF_ERROR(AppendWalRecord(false, key, value));
  memtable_bytes_ += key.size() + value.size();
  memtable_[ToBytes(key)] = ToBytes(value);
  if (memtable_bytes_ >= options_.write_buffer_size) {
    return Flush();
  }
  return Status::Ok();
}

Status DB::Delete(ByteSpan key) {
  if (!open_) return Error(ErrorCode::kInvalidArgument, "db closed");
  NEXUS_RETURN_IF_ERROR(AppendWalRecord(true, key, {}));
  memtable_bytes_ += key.size();
  memtable_[ToBytes(key)] = std::nullopt;
  if (memtable_bytes_ >= options_.write_buffer_size) {
    return Flush();
  }
  return Status::Ok();
}

Status DB::Flush() {
  if (memtable_.empty()) return Status::Ok();

  // Serialize the sorted memtable into an immutable run.
  Writer w;
  w.U32(static_cast<std::uint32_t>(memtable_.size()));
  for (const auto& [key, value] : memtable_) {
    w.U8(value.has_value() ? 0 : 1);
    w.Var(key);
    w.Var(value.has_value() ? *value : Bytes{});
  }
  const std::string name = "run-" + std::to_string(next_run_id_++) + ".sst";
  NEXUS_RETURN_IF_ERROR(fs_.WriteWholeFile(RunPath(name), w.bytes()));
  runs_.push_back(name);
  run_cache_.emplace_back(std::nullopt);
  NEXUS_RETURN_IF_ERROR(StoreManifest());

  // The WAL's contents are now durable in the run: start a fresh log.
  NEXUS_RETURN_IF_ERROR(wal_->Close());
  NEXUS_ASSIGN_OR_RETURN(wal_, fs_.Open(WalPath(), vfs::OpenMode::kWrite));
  NEXUS_RETURN_IF_ERROR(wal_->Sync());
  memtable_.clear();
  memtable_bytes_ = 0;

  if (runs_.size() > options_.max_runs) {
    return Compact();
  }
  return Status::Ok();
}

Status DB::Compact() {
  if (runs_.size() <= 1) return Status::Ok();

  // Full compaction: newest version wins; tombstones can be dropped
  // because no older run survives to resurrect the key.
  std::map<Bytes, std::optional<Bytes>> merged;
  for (std::size_t i = 0; i < runs_.size(); ++i) {
    NEXUS_ASSIGN_OR_RETURN(const auto* entries, LoadRun(i));
    for (const auto& [key, value] : *entries) merged[key] = value;
  }

  Writer w;
  std::uint32_t live = 0;
  for (const auto& [key, value] : merged) {
    if (value.has_value()) ++live;
  }
  w.U32(live);
  for (const auto& [key, value] : merged) {
    if (!value.has_value()) continue;
    w.U8(0);
    w.Var(key);
    w.Var(*value);
  }

  const std::string name = "run-" + std::to_string(next_run_id_++) + ".sst";
  NEXUS_RETURN_IF_ERROR(fs_.WriteWholeFile(RunPath(name), w.bytes()));

  // Commit point: the manifest switches to the compacted run before the
  // inputs are deleted (a crash in between leaves reclaimable garbage,
  // never a broken database).
  const std::vector<std::string> old_runs = std::move(runs_);
  runs_ = {name};
  run_cache_.clear();
  run_cache_.emplace_back(std::nullopt);
  NEXUS_RETURN_IF_ERROR(StoreManifest());
  for (const std::string& old : old_runs) {
    (void)fs_.Remove(RunPath(old));
  }
  return Status::Ok();
}

Result<const std::vector<std::pair<Bytes, std::optional<Bytes>>>*> DB::LoadRun(
    std::size_t index) {
  if (run_cache_[index].has_value()) return &*run_cache_[index];
  NEXUS_ASSIGN_OR_RETURN(Bytes raw, fs_.ReadWholeFile(RunPath(runs_[index])));
  Reader r(raw);
  NEXUS_ASSIGN_OR_RETURN(std::uint32_t n, r.U32());
  std::vector<std::pair<Bytes, std::optional<Bytes>>> entries;
  entries.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    NEXUS_ASSIGN_OR_RETURN(std::uint8_t tombstone, r.U8());
    NEXUS_ASSIGN_OR_RETURN(Bytes key, r.Var(1 << 20));
    NEXUS_ASSIGN_OR_RETURN(Bytes value, r.Var(1 << 26));
    entries.emplace_back(std::move(key),
                         tombstone != 0 ? std::nullopt
                                        : std::optional<Bytes>(std::move(value)));
  }
  run_cache_[index] = std::move(entries);
  return &*run_cache_[index];
}

Result<Bytes> DB::Get(ByteSpan key) {
  if (!open_) return Error(ErrorCode::kInvalidArgument, "db closed");
  const Bytes k = ToBytes(key);
  const auto hit = memtable_.find(k);
  if (hit != memtable_.end()) {
    if (!hit->second.has_value()) {
      return Error(ErrorCode::kNotFound, "key deleted");
    }
    return *hit->second;
  }
  for (std::size_t i = runs_.size(); i-- > 0;) {
    NEXUS_ASSIGN_OR_RETURN(const auto* entries, LoadRun(i));
    const auto it = std::lower_bound(
        entries->begin(), entries->end(), k,
        [](const auto& entry, const Bytes& target) { return entry.first < target; });
    if (it != entries->end() && it->first == k) {
      if (!it->second.has_value()) {
        return Error(ErrorCode::kNotFound, "key deleted");
      }
      return *it->second;
    }
  }
  return Error(ErrorCode::kNotFound, "key not found");
}

Status DB::CollectMerged(Memtable& merged) {
  // Oldest runs first so newer versions overwrite.
  for (std::size_t i = 0; i < runs_.size(); ++i) {
    NEXUS_ASSIGN_OR_RETURN(const auto* entries, LoadRun(i));
    for (const auto& [key, value] : *entries) merged[key] = value;
  }
  for (const auto& [key, value] : memtable_) merged[key] = value;
  return Status::Ok();
}

Status DB::ScanForward(const Visitor& visit) {
  Memtable merged;
  NEXUS_RETURN_IF_ERROR(CollectMerged(merged));
  for (const auto& [key, value] : merged) {
    if (value.has_value()) visit(key, *value);
  }
  return Status::Ok();
}

Status DB::ScanBackward(const Visitor& visit) {
  Memtable merged;
  NEXUS_RETURN_IF_ERROR(CollectMerged(merged));
  for (auto it = merged.rbegin(); it != merged.rend(); ++it) {
    if (it->second.has_value()) visit(it->first, *it->second);
  }
  return Status::Ok();
}

Status DB::Close() {
  if (!open_) return Error(ErrorCode::kInvalidArgument, "db closed");
  open_ = false;
  return wal_->Close();
}

} // namespace nexus::workloads::minikv
