// Deterministic synthetic file trees for the evaluation workloads.
//
// Fig. 5c clones real repositories; we reproduce their published shape
// characteristics (file count, directory depth, hot directories) with
// deterministic synthetic trees. Table III's LFSD/MFMD/SFLD workloads are
// generated directly (sizes scaled down ~10x from the paper to keep the
// simulation in memory; the cost model is linear in bytes so ratios are
// unaffected — see EXPERIMENTS.md).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "crypto/rng.hpp"
#include "vfs/vfs.hpp"

namespace nexus::workloads {

struct TreeSpec {
  std::string name;
  std::uint32_t file_count = 0;
  std::uint32_t dir_count = 1; // including the root of the tree
  std::uint32_t max_depth = 1;
  /// File counts pinned to the largest directories (e.g. nodejs's
  /// 1458/762/783); remaining files spread uniformly.
  std::vector<std::uint32_t> hot_dir_files;
  std::uint64_t total_bytes = 0; // approximate, log-uniform sizes
};

struct TreeStats {
  std::uint64_t files = 0;
  std::uint64_t dirs = 0;
  std::uint64_t total_bytes = 0;
  std::uint32_t max_depth = 0;
};

/// Creates the tree under `root` (must already exist or be ""). Contents
/// are ASCII text with occasional "javascript" tokens so grep finds
/// matches, as in §VII-D.
Result<TreeStats> GenerateTree(vfs::FileSystem& fs, const std::string& root,
                               const TreeSpec& spec, crypto::Rng& rng);

// ---- Fig. 5c repository shapes (file counts from §VII-C) --------------------
TreeSpec RedisSpec();  // 618 files
TreeSpec JuliaSpec();  // 1096 files
TreeSpec NodeJsSpec(); // 19912 files, depth 13, top dirs 1458/762/783

// ---- Table III workloads (sizes scaled; see EXPERIMENTS.md) ------------------
TreeSpec LfsdSpec(); // Large Files, Small Directory: 32 files, flat
TreeSpec MfmdSpec(); // Medium Files, Medium Directory: 256 files
TreeSpec SfldSpec(); // Small Files, Large Directory: 1024 files, 10 MB total

} // namespace nexus::workloads
