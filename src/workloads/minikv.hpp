// minikv: a LevelDB-style embedded key-value store used to drive the
// paper's Table II database benchmarks on top of the VFS.
//
// Architecture mirrors LevelDB's write path, which is what stresses the
// filesystem: a write-ahead log (appended, optionally fsync'd per write),
// an in-memory memtable, and immutable sorted run files flushed when the
// memtable exceeds the write buffer. Reads consult the memtable then runs
// newest-to-oldest.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "vfs/vfs.hpp"

namespace nexus::workloads::minikv {

struct Options {
  std::size_t write_buffer_size = 4 << 20; // memtable flush threshold
  bool sync_writes = false;                // fsync the WAL on every write
  std::size_t max_runs = 8;                // compaction trigger
};

class DB {
 public:
  /// Opens (or creates) a database in directory `dir`, replaying any WAL
  /// left by a crash.
  static Result<std::unique_ptr<DB>> Open(vfs::FileSystem& fs,
                                          const std::string& dir,
                                          Options options);
  ~DB();

  Status Put(ByteSpan key, ByteSpan value);
  Status Delete(ByteSpan key);
  /// kNotFound when absent or deleted.
  Result<Bytes> Get(ByteSpan key);

  /// Ordered iteration over live entries (newest version wins).
  using Visitor = std::function<void(ByteSpan key, ByteSpan value)>;
  Status ScanForward(const Visitor& visit);
  Status ScanBackward(const Visitor& visit);

  /// Forces the memtable out to a sorted run.
  Status Flush();
  /// Merges all runs into one, dropping tombstones and stale versions.
  Status Compact();
  Status Close();

  [[nodiscard]] std::size_t run_count() const noexcept { return runs_.size(); }

 private:
  DB(vfs::FileSystem& fs, std::string dir, Options options)
      : fs_(fs), dir_(std::move(dir)), options_(options) {}

  using Memtable = std::map<Bytes, std::optional<Bytes>>; // nullopt=tombstone

  Status ReplayWal();
  Status AppendWalRecord(bool is_delete, ByteSpan key, ByteSpan value);
  Status LoadManifest();
  Status StoreManifest();
  Result<const std::vector<std::pair<Bytes, std::optional<Bytes>>>*> LoadRun(
      std::size_t index);
  Status CollectMerged(Memtable& merged);

  [[nodiscard]] std::string WalPath() const { return dir_ + "/wal.log"; }
  [[nodiscard]] std::string ManifestPath() const { return dir_ + "/MANIFEST"; }
  [[nodiscard]] std::string RunPath(const std::string& name) const {
    return dir_ + "/" + name;
  }

  vfs::FileSystem& fs_;
  std::string dir_;
  Options options_;
  Memtable memtable_;
  std::size_t memtable_bytes_ = 0;
  std::unique_ptr<vfs::OpenFile> wal_;
  std::vector<std::string> runs_; // oldest first
  // Loaded run cache (block-cache stand-in): sorted entries per run.
  std::vector<std::optional<std::vector<std::pair<Bytes, std::optional<Bytes>>>>>
      run_cache_;
  std::uint64_t next_run_id_ = 1;
  bool open_ = false;
};

} // namespace nexus::workloads::minikv
