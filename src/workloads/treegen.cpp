#include "workloads/treegen.hpp"

#include <algorithm>
#include <cmath>

namespace nexus::workloads {
namespace {

// Deterministic filler text with "javascript" tokens sprinkled in (~every
// 40 lines) so the grep workload has realistic hit rates.
Bytes MakeContent(std::uint64_t size, std::uint32_t seed) {
  static constexpr std::string_view kWords[] = {
      "static", "return", "include", "buffer", "packet", "stream",
      "config", "module", "javascript", "handler", "object", "render",
  };
  Bytes out;
  out.reserve(size);
  std::uint32_t state = seed * 2654435761u + 1;
  while (out.size() < size) {
    state = state * 1664525u + 1013904223u;
    const std::string_view word = kWords[(state >> 16) % std::size(kWords)];
    for (const char c : word) {
      if (out.size() >= size) break;
      out.push_back(static_cast<std::uint8_t>(c));
    }
    if (out.size() < size) {
      out.push_back(state % 13 == 0 ? '\n' : ' ');
    }
  }
  return out;
}

} // namespace

Result<TreeStats> GenerateTree(vfs::FileSystem& fs, const std::string& root,
                               const TreeSpec& spec, crypto::Rng& rng) {
  TreeStats stats;

  auto join = [&](const std::string& dir, const std::string& name) {
    if (dir.empty()) return name;
    return dir + "/" + name;
  };

  // 1. Directory skeleton: grow by attaching subdirectories to random
  //    existing directories, preferring deeper parents until max_depth is
  //    reached so the requested depth actually materializes.
  std::vector<std::string> dirs = {root};
  std::vector<std::uint32_t> depth = {0};
  std::uint32_t created_dirs = 1;
  while (created_dirs < spec.dir_count) {
    std::size_t parent;
    if (stats.max_depth < spec.max_depth) {
      // Extend the deepest chain first.
      parent = static_cast<std::size_t>(
          std::max_element(depth.begin(), depth.end()) - depth.begin());
      if (depth[parent] >= spec.max_depth) parent = rng.Below(dirs.size());
    } else {
      parent = rng.Below(dirs.size());
    }
    if (depth[parent] >= spec.max_depth) continue;
    const std::string path =
        join(dirs[parent], "dir" + std::to_string(created_dirs));
    NEXUS_RETURN_IF_ERROR(fs.Mkdir(path));
    dirs.push_back(path);
    depth.push_back(depth[parent] + 1);
    stats.max_depth = std::max(stats.max_depth, depth.back());
    ++created_dirs;
  }
  stats.dirs = dirs.size();

  // 2. Assign per-directory file counts: hot directories first, the rest
  //    spread uniformly.
  std::vector<std::uint32_t> files_in(dirs.size(), 0);
  std::uint32_t assigned = 0;
  for (std::size_t h = 0; h < spec.hot_dir_files.size() && h + 1 < dirs.size();
       ++h) {
    files_in[h + 1] = spec.hot_dir_files[h];
    assigned += spec.hot_dir_files[h];
  }
  while (assigned < spec.file_count) {
    ++files_in[rng.Below(dirs.size())];
    ++assigned;
  }

  // 3. File sizes: log-uniform, scaled to hit total_bytes.
  std::vector<std::uint64_t> sizes;
  sizes.reserve(spec.file_count);
  long double sum = 0;
  const double lo = std::log(64.0);
  const double hi =
      std::log(std::max<double>(128.0, static_cast<double>(spec.total_bytes) /
                                           std::max(1u, spec.file_count) * 8));
  for (std::uint32_t i = 0; i < spec.file_count; ++i) {
    const double u = static_cast<double>(rng.Below(1u << 20)) / (1u << 20);
    const auto size =
        static_cast<std::uint64_t>(std::exp(lo + u * (hi - lo)));
    sizes.push_back(size);
    sum += static_cast<long double>(size);
  }
  if (sum > 0 && spec.total_bytes > 0) {
    const long double scale = static_cast<long double>(spec.total_bytes) / sum;
    for (auto& s : sizes) {
      s = std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(static_cast<long double>(s) * scale));
    }
  }

  // 4. Write the files.
  std::size_t file_index = 0;
  for (std::size_t d = 0; d < dirs.size(); ++d) {
    for (std::uint32_t i = 0; i < files_in[d]; ++i, ++file_index) {
      const std::string path =
          join(dirs[d], "file" + std::to_string(file_index) + ".c");
      const Bytes content = MakeContent(
          sizes[std::min(file_index, sizes.size() - 1)],
          static_cast<std::uint32_t>(file_index));
      NEXUS_RETURN_IF_ERROR(fs.WriteWholeFile(path, content));
      ++stats.files;
      stats.total_bytes += content.size();
    }
  }
  return stats;
}

TreeSpec RedisSpec() {
  return TreeSpec{"redis", 618, 60, 4, {}, 8ull << 20};
}

TreeSpec JuliaSpec() {
  return TreeSpec{"julia", 1096, 110, 6, {}, 14ull << 20};
}

TreeSpec NodeJsSpec() {
  return TreeSpec{"nodejs", 19912, 1600, 13, {1458, 762, 783}, 96ull << 20};
}

TreeSpec LfsdSpec() {
  // Paper: 32 files / 3.2 GB. Scaled 10x down: 32 x ~10 MB = 320 MB.
  return TreeSpec{"LFSD", 32, 1, 1, {}, 320ull << 20};
}

TreeSpec MfmdSpec() {
  // Paper: 256 files / 2.5 GB. Scaled 10x down: 256 x ~1 MB = 250 MB.
  return TreeSpec{"MFMD", 256, 1, 1, {}, 250ull << 20};
}

TreeSpec SfldSpec() {
  // Paper-exact: 1024 files / 10 MB, one flat directory.
  return TreeSpec{"SFLD", 1024, 1, 1, {}, 10ull << 20};
}

} // namespace nexus::workloads
