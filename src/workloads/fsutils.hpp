// Reimplementations of the Linux utilities from §VII-D, operating on the
// VFS so they issue the same operation streams to the baseline and NEXUS
// mounts: tar -x / tar -c (real ustar format), du, recursive grep, cp, mv.
#pragma once

#include <cstdint>
#include <string>

#include "common/result.hpp"
#include "vfs/vfs.hpp"

namespace nexus::workloads {

/// tar -c: packs `src_dir` (recursively) into a ustar archive at
/// `archive_path`. Directories and regular files are archived; symlinks
/// are stored as type '2' entries.
Status TarCreate(vfs::FileSystem& fs, const std::string& src_dir,
                 const std::string& archive_path);

/// tar -x: unpacks a ustar archive into `dst_dir` (created if missing).
Status TarExtract(vfs::FileSystem& fs, const std::string& archive_path,
                  const std::string& dst_dir);

/// du -s: total file bytes under `path` (recursive stat walk).
Result<std::uint64_t> Du(vfs::FileSystem& fs, const std::string& path);

/// grep -r: number of files under `path` whose content contains `term`.
Result<std::uint64_t> GrepCount(vfs::FileSystem& fs, const std::string& path,
                                const std::string& term);

/// cp: duplicate one file.
Status Cp(vfs::FileSystem& fs, const std::string& src, const std::string& dst);

/// mv: rename.
Status Mv(vfs::FileSystem& fs, const std::string& src, const std::string& dst);

} // namespace nexus::workloads
