#include "workloads/fsutils.hpp"

#include <cstdio>
#include <cstring>

namespace nexus::workloads {
namespace {

constexpr std::size_t kBlock = 512;

// ---- ustar header (POSIX.1-1988) --------------------------------------------

struct UstarHeader {
  char name[100];
  char mode[8];
  char uid[8];
  char gid[8];
  char size[12];
  char mtime[12];
  char chksum[8];
  char typeflag;
  char linkname[100];
  char magic[6];
  char version[2];
  char uname[32];
  char gname[32];
  char devmajor[8];
  char devminor[8];
  char prefix[155];
  char pad[12];
};
static_assert(sizeof(UstarHeader) == kBlock, "ustar header must be 512 bytes");

void Octal(char* field, std::size_t len, std::uint64_t value) {
  std::snprintf(field, len, "%0*llo", static_cast<int>(len - 1),
                static_cast<unsigned long long>(value));
}

Result<std::uint64_t> ParseOctal(const char* field, std::size_t len) {
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < len && field[i] != '\0' && field[i] != ' '; ++i) {
    if (field[i] < '0' || field[i] > '7') {
      return Error(ErrorCode::kInvalidArgument, "bad octal field in tar header");
    }
    value = value * 8 + static_cast<std::uint64_t>(field[i] - '0');
  }
  return value;
}

UstarHeader MakeHeader(const std::string& name, std::uint64_t size,
                       char typeflag, const std::string& linkname) {
  UstarHeader h;
  std::memset(&h, 0, sizeof(h));
  std::snprintf(h.name, sizeof(h.name), "%s", name.c_str());
  Octal(h.mode, sizeof(h.mode), typeflag == '5' ? 0755 : 0644);
  Octal(h.uid, sizeof(h.uid), 1000);
  Octal(h.gid, sizeof(h.gid), 1000);
  Octal(h.size, sizeof(h.size), typeflag == '0' ? size : 0);
  Octal(h.mtime, sizeof(h.mtime), 1546300800); // fixed epoch: deterministic
  h.typeflag = typeflag;
  std::snprintf(h.linkname, sizeof(h.linkname), "%s", linkname.c_str());
  std::memcpy(h.magic, "ustar", 6);
  std::memcpy(h.version, "00", 2);
  std::snprintf(h.uname, sizeof(h.uname), "nexus");
  std::snprintf(h.gname, sizeof(h.gname), "nexus");

  // Checksum: sum of all header bytes with chksum itself read as spaces.
  std::memset(h.chksum, ' ', sizeof(h.chksum));
  const auto* bytes = reinterpret_cast<const unsigned char*>(&h);
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < sizeof(h); ++i) sum += bytes[i];
  Octal(h.chksum, 7, sum);
  h.chksum[7] = ' ';
  return h;
}

Result<bool> VerifyChecksum(const UstarHeader& h) {
  NEXUS_ASSIGN_OR_RETURN(std::uint64_t stored, ParseOctal(h.chksum, 8));
  UstarHeader copy = h;
  std::memset(copy.chksum, ' ', sizeof(copy.chksum));
  const auto* bytes = reinterpret_cast<const unsigned char*>(&copy);
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < sizeof(copy); ++i) sum += bytes[i];
  return sum == stored;
}

Status ArchiveTree(vfs::FileSystem& fs, const std::string& dir,
                   const std::string& rel, vfs::OpenFile& archive) {
  NEXUS_ASSIGN_OR_RETURN(std::vector<vfs::Dirent> entries, fs.ReadDir(dir));
  for (const vfs::Dirent& e : entries) {
    const std::string full = dir.empty() ? e.name : dir + "/" + e.name;
    const std::string arc = rel.empty() ? e.name : rel + "/" + e.name;
    switch (e.type) {
      case vfs::FileType::kDirectory: {
        const UstarHeader h = MakeHeader(arc + "/", 0, '5', "");
        NEXUS_RETURN_IF_ERROR(
            archive.Append(ByteSpan(reinterpret_cast<const std::uint8_t*>(&h),
                                    sizeof(h))));
        NEXUS_RETURN_IF_ERROR(ArchiveTree(fs, full, arc, archive));
        break;
      }
      case vfs::FileType::kSymlink: {
        NEXUS_ASSIGN_OR_RETURN(std::string target, fs.Readlink(full));
        const UstarHeader h = MakeHeader(arc, 0, '2', target);
        NEXUS_RETURN_IF_ERROR(
            archive.Append(ByteSpan(reinterpret_cast<const std::uint8_t*>(&h),
                                    sizeof(h))));
        break;
      }
      case vfs::FileType::kFile: {
        NEXUS_ASSIGN_OR_RETURN(Bytes content, fs.ReadWholeFile(full));
        const UstarHeader h = MakeHeader(arc, content.size(), '0', "");
        NEXUS_RETURN_IF_ERROR(
            archive.Append(ByteSpan(reinterpret_cast<const std::uint8_t*>(&h),
                                    sizeof(h))));
        NEXUS_RETURN_IF_ERROR(archive.Append(content));
        const std::size_t partial = content.size() % kBlock;
        if (partial != 0) {
          NEXUS_RETURN_IF_ERROR(archive.Append(Bytes(kBlock - partial, 0)));
        }
        break;
      }
    }
  }
  return Status::Ok();
}

} // namespace

Status TarCreate(vfs::FileSystem& fs, const std::string& src_dir,
                 const std::string& archive_path) {
  NEXUS_ASSIGN_OR_RETURN(std::unique_ptr<vfs::OpenFile> archive,
                         fs.Open(archive_path, vfs::OpenMode::kWrite));
  NEXUS_RETURN_IF_ERROR(ArchiveTree(fs, src_dir, "", *archive));
  // End-of-archive: two zero blocks.
  NEXUS_RETURN_IF_ERROR(archive->Append(Bytes(2 * kBlock, 0)));
  return archive->Close();
}

Status TarExtract(vfs::FileSystem& fs, const std::string& archive_path,
                  const std::string& dst_dir) {
  NEXUS_ASSIGN_OR_RETURN(Bytes archive, fs.ReadWholeFile(archive_path));
  if (!dst_dir.empty() && !fs.Exists(dst_dir)) {
    NEXUS_RETURN_IF_ERROR(fs.MkdirAll(dst_dir));
  }

  std::size_t pos = 0;
  while (pos + kBlock <= archive.size()) {
    UstarHeader h;
    std::memcpy(&h, archive.data() + pos, kBlock);
    pos += kBlock;

    // Two zero blocks terminate the archive; one suffices to stop.
    bool all_zero = true;
    for (std::size_t i = 0; i < kBlock && all_zero; ++i) {
      all_zero = reinterpret_cast<const std::uint8_t*>(&h)[i] == 0;
    }
    if (all_zero) break;

    if (std::memcmp(h.magic, "ustar", 5) != 0) {
      return Error(ErrorCode::kInvalidArgument, "not a ustar archive");
    }
    NEXUS_ASSIGN_OR_RETURN(bool checksum_ok, VerifyChecksum(h));
    if (!checksum_ok) {
      return Error(ErrorCode::kInvalidArgument, "tar header checksum mismatch");
    }

    std::string name(h.name, strnlen(h.name, sizeof(h.name)));
    if (!name.empty() && name.back() == '/') name.pop_back();
    const std::string out =
        dst_dir.empty() ? name : dst_dir + "/" + name;

    switch (h.typeflag) {
      case '5':
        NEXUS_RETURN_IF_ERROR(fs.MkdirAll(out));
        break;
      case '2': {
        const std::string target(h.linkname,
                                 strnlen(h.linkname, sizeof(h.linkname)));
        NEXUS_RETURN_IF_ERROR(fs.Symlink(target, out));
        break;
      }
      case '0':
      case '\0': {
        NEXUS_ASSIGN_OR_RETURN(std::uint64_t size,
                               ParseOctal(h.size, sizeof(h.size)));
        if (pos + size > archive.size()) {
          return Error(ErrorCode::kInvalidArgument, "tar archive truncated");
        }
        NEXUS_RETURN_IF_ERROR(
            fs.WriteWholeFile(out, ByteSpan(archive.data() + pos, size)));
        pos += (size + kBlock - 1) / kBlock * kBlock;
        break;
      }
      default:
        return Error(ErrorCode::kUnimplemented,
                     std::string("tar entry type not supported: ") + h.typeflag);
    }
  }
  return Status::Ok();
}

Result<std::uint64_t> Du(vfs::FileSystem& fs, const std::string& path) {
  std::uint64_t total = 0;
  NEXUS_ASSIGN_OR_RETURN(std::vector<vfs::Dirent> entries, fs.ReadDir(path));
  for (const vfs::Dirent& e : entries) {
    const std::string full = path.empty() ? e.name : path + "/" + e.name;
    if (e.type == vfs::FileType::kDirectory) {
      NEXUS_ASSIGN_OR_RETURN(std::uint64_t sub, Du(fs, full));
      total += sub;
    } else if (e.type == vfs::FileType::kFile) {
      NEXUS_ASSIGN_OR_RETURN(vfs::FileStat st, fs.Stat(full));
      total += st.size;
    }
  }
  return total;
}

Result<std::uint64_t> GrepCount(vfs::FileSystem& fs, const std::string& path,
                                const std::string& term) {
  std::uint64_t hits = 0;
  NEXUS_ASSIGN_OR_RETURN(std::vector<vfs::Dirent> entries, fs.ReadDir(path));
  for (const vfs::Dirent& e : entries) {
    const std::string full = path.empty() ? e.name : path + "/" + e.name;
    if (e.type == vfs::FileType::kDirectory) {
      NEXUS_ASSIGN_OR_RETURN(std::uint64_t sub, GrepCount(fs, full, term));
      hits += sub;
    } else if (e.type == vfs::FileType::kFile) {
      NEXUS_ASSIGN_OR_RETURN(Bytes content, fs.ReadWholeFile(full));
      const std::string_view haystack(
          reinterpret_cast<const char*>(content.data()), content.size());
      if (haystack.find(term) != std::string_view::npos) ++hits;
    }
  }
  return hits;
}

Status Cp(vfs::FileSystem& fs, const std::string& src, const std::string& dst) {
  NEXUS_ASSIGN_OR_RETURN(Bytes content, fs.ReadWholeFile(src));
  return fs.WriteWholeFile(dst, content);
}

Status Mv(vfs::FileSystem& fs, const std::string& src, const std::string& dst) {
  return fs.Rename(src, dst);
}

} // namespace nexus::workloads
