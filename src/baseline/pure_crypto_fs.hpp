// The pure-cryptography baseline NEXUS is compared against in §VII-E.
//
// SiRiUS/Plutus-style client-side encryption *without* trusted hardware:
// each file is encrypted under its own file key, and the file key is
// wrapped (hybrid X25519 + AES-GCM "sealed box") to every authorized
// reader's public key in a keyblock stored next to the ciphertext.
//
// The crucial difference from NEXUS: once a reader has decrypted a file,
// nothing stops them from caching the file key. Revoking a reader
// therefore requires generating a fresh file key, RE-ENCRYPTING THE WHOLE
// FILE, and re-wrapping to the remaining readers — cost proportional to
// the data size and the number of readers (Garrison et al. [15]).
#pragma once

#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "crypto/rng.hpp"
#include "storage/afs.hpp"

namespace nexus::baseline {

/// A user's long-term keywrap identity (X25519).
struct BoxKeyPair {
  std::string name;
  ByteArray<32> public_key{};
  ByteArray<32> private_key{};

  static BoxKeyPair Generate(std::string name, crypto::Rng& rng);
};

struct Reader {
  std::string name;
  ByteArray<32> public_key{};
};

class PureCryptoFs {
 public:
  PureCryptoFs(storage::AfsClient& afs, crypto::Rng& rng)
      : afs_(afs), rng_(rng) {}

  /// Encrypts `content` under a fresh file key wrapped to every reader.
  Status WriteFile(const std::string& path, ByteSpan content,
                   const std::vector<Reader>& readers);

  /// Decrypts with `name`'s private key (must be an authorized reader).
  Result<Bytes> ReadFile(const std::string& path, const std::string& name,
                         const ByteArray<32>& private_key);

  /// Revokes `revoked` from every file under `dir_prefix`: each affected
  /// file is re-encrypted under a fresh key by `actor` (who must be a
  /// reader) and re-wrapped to the remaining readers.
  Status Revoke(const std::string& dir_prefix, const std::string& revoked,
                const BoxKeyPair& actor);

  struct Stats {
    std::uint64_t files_reencrypted = 0;
    std::uint64_t bytes_reencrypted = 0;
    std::uint64_t keyblocks_rewritten = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  void ResetStats() { stats_ = {}; }

 private:
  [[nodiscard]] std::string DataPath(const std::string& path) const {
    return "pc/" + path;
  }
  [[nodiscard]] std::string KeyPath(const std::string& path) const {
    return "pck/" + path;
  }

  Status WriteEncrypted(const std::string& path, ByteSpan content,
                        const std::vector<Reader>& readers);
  Result<Key128> UnwrapFileKey(ByteSpan keyblock, const std::string& name,
                               const ByteArray<32>& private_key,
                               std::vector<Reader>* readers_out);

  storage::AfsClient& afs_;
  crypto::Rng& rng_;
  Stats stats_;
};

} // namespace nexus::baseline
