#include "baseline/pure_crypto_fs.hpp"

#include "common/serial.hpp"
#include "crypto/aes.hpp"
#include "crypto/gcm.hpp"
#include "crypto/hmac.hpp"
#include "crypto/x25519.hpp"

namespace nexus::baseline {
namespace {

Key128 BoxSharedKey(const ByteArray<32>& shared) {
  return ToArray<16>(crypto::Hkdf({}, shared, AsBytes("purecrypto-box"), 16));
}

// Sealed box: ephemeral X25519 + AES-GCM with a zero IV (key is unique).
struct WrappedKey {
  ByteArray<32> eph_public{};
  Bytes box; // ct || tag of the 16-byte file key
};

WrappedKey WrapKey(const Key128& file_key, const ByteArray<32>& reader_pub,
                   crypto::Rng& rng) {
  ByteArray<32> eph_priv = crypto::X25519ClampScalar(rng.Array<32>());
  WrappedKey out;
  out.eph_public = crypto::X25519BasePoint(eph_priv);
  const Key128 kek = BoxSharedKey(crypto::X25519(eph_priv, reader_pub));
  SecureZero(eph_priv);
  auto aes = crypto::Aes::Create(kek);
  const Bytes iv(crypto::kGcmIvSize, 0);
  out.box = crypto::GcmSeal(*aes, iv, reader_pub, file_key).value();
  return out;
}

Result<Key128> UnwrapKey(const WrappedKey& wrapped,
                         const ByteArray<32>& reader_pub,
                         const ByteArray<32>& reader_priv) {
  const Key128 kek =
      BoxSharedKey(crypto::X25519(reader_priv, wrapped.eph_public));
  NEXUS_ASSIGN_OR_RETURN(crypto::Aes aes, crypto::Aes::Create(kek));
  const Bytes iv(crypto::kGcmIvSize, 0);
  auto key = crypto::GcmOpen(aes, iv, reader_pub, wrapped.box);
  if (!key.ok() || key->size() != 16) {
    return Error(ErrorCode::kPermissionDenied, "keyblock unwrap failed");
  }
  return ToArray<16>(*key);
}

} // namespace

BoxKeyPair BoxKeyPair::Generate(std::string name, crypto::Rng& rng) {
  BoxKeyPair kp;
  kp.name = std::move(name);
  kp.private_key = crypto::X25519ClampScalar(rng.Array<32>());
  kp.public_key = crypto::X25519BasePoint(kp.private_key);
  return kp;
}

Status PureCryptoFs::WriteEncrypted(const std::string& path, ByteSpan content,
                                    const std::vector<Reader>& readers) {
  const Key128 file_key = rng_.Array<16>();
  const Bytes iv = rng_.Generate(crypto::kGcmIvSize);
  NEXUS_ASSIGN_OR_RETURN(crypto::Aes aes, crypto::Aes::Create(file_key));
  NEXUS_ASSIGN_OR_RETURN(Bytes sealed, crypto::GcmSeal(aes, iv, {}, content));

  Writer kb;
  kb.U32(static_cast<std::uint32_t>(readers.size()));
  for (const Reader& r : readers) {
    const WrappedKey wrapped = WrapKey(file_key, r.public_key, rng_);
    kb.Str(r.name);
    kb.Raw(r.public_key);
    kb.Raw(wrapped.eph_public);
    kb.Var(wrapped.box);
  }

  NEXUS_RETURN_IF_ERROR(afs_.Store(DataPath(path), Concat(iv, sealed)));
  return afs_.Store(KeyPath(path), kb.bytes());
}

Status PureCryptoFs::WriteFile(const std::string& path, ByteSpan content,
                               const std::vector<Reader>& readers) {
  return WriteEncrypted(path, content, readers);
}

Result<Key128> PureCryptoFs::UnwrapFileKey(ByteSpan keyblock,
                                           const std::string& name,
                                           const ByteArray<32>& private_key,
                                           std::vector<Reader>* readers_out) {
  Result<Key128> file_key =
      Error(ErrorCode::kPermissionDenied, "not an authorized reader");
  nexus::Reader rd(keyblock);
  NEXUS_ASSIGN_OR_RETURN(std::uint32_t n, rd.U32());
  for (std::uint32_t i = 0; i < n; ++i) {
    Reader entry;
    NEXUS_ASSIGN_OR_RETURN(entry.name, rd.Str());
    NEXUS_ASSIGN_OR_RETURN(Bytes pub, rd.Raw(32));
    entry.public_key = ToArray<32>(pub);
    WrappedKey w;
    NEXUS_ASSIGN_OR_RETURN(Bytes eph, rd.Raw(32));
    w.eph_public = ToArray<32>(eph);
    NEXUS_ASSIGN_OR_RETURN(w.box, rd.Var(256));
    if (readers_out != nullptr) readers_out->push_back(entry);
    if (entry.name == name) {
      file_key = UnwrapKey(w, entry.public_key, private_key);
    }
  }
  return file_key;
}

Result<Bytes> PureCryptoFs::ReadFile(const std::string& path,
                                     const std::string& name,
                                     const ByteArray<32>& private_key) {
  NEXUS_ASSIGN_OR_RETURN(Bytes keyblock, afs_.Fetch(KeyPath(path)));
  NEXUS_ASSIGN_OR_RETURN(Key128 file_key,
                         UnwrapFileKey(keyblock, name, private_key, nullptr));

  NEXUS_ASSIGN_OR_RETURN(Bytes blob, afs_.Fetch(DataPath(path)));
  if (blob.size() < crypto::kGcmIvSize + crypto::kGcmTagSize) {
    return Error(ErrorCode::kIntegrityViolation, "ciphertext too short");
  }
  NEXUS_ASSIGN_OR_RETURN(crypto::Aes aes, crypto::Aes::Create(file_key));
  return crypto::GcmOpen(aes, ByteSpan(blob.data(), crypto::kGcmIvSize), {},
                         ByteSpan(blob).subspan(crypto::kGcmIvSize));
}

Status PureCryptoFs::Revoke(const std::string& dir_prefix,
                            const std::string& revoked,
                            const BoxKeyPair& actor) {
  NEXUS_ASSIGN_OR_RETURN(std::vector<std::string> keyblocks,
                         afs_.List(KeyPath(dir_prefix)));
  for (const std::string& kb_path : keyblocks) {
    const std::string rel = kb_path.substr(4); // strip "pck/"
    NEXUS_ASSIGN_OR_RETURN(Bytes keyblock, afs_.Fetch(kb_path));

    std::vector<Reader> readers;
    NEXUS_ASSIGN_OR_RETURN(
        Key128 old_key,
        UnwrapFileKey(keyblock, actor.name, actor.private_key, &readers));

    std::vector<Reader> remaining;
    for (const Reader& r : readers) {
      if (r.name != revoked) remaining.push_back(r);
    }
    if (remaining.size() == readers.size()) continue; // not a reader here

    // The revoked reader may have cached the old file key: decrypt and
    // re-encrypt the whole file under a fresh key.
    NEXUS_ASSIGN_OR_RETURN(Bytes blob, afs_.Fetch(DataPath(rel)));
    NEXUS_ASSIGN_OR_RETURN(crypto::Aes aes, crypto::Aes::Create(old_key));
    NEXUS_ASSIGN_OR_RETURN(
        Bytes plaintext,
        crypto::GcmOpen(aes, ByteSpan(blob.data(), crypto::kGcmIvSize), {},
                        ByteSpan(blob).subspan(crypto::kGcmIvSize)));

    NEXUS_RETURN_IF_ERROR(WriteEncrypted(rel, plaintext, remaining));
    ++stats_.files_reencrypted;
    stats_.bytes_reencrypted += plaintext.size();
    ++stats_.keyblocks_rewritten;
  }
  return Status::Ok();
}

} // namespace nexus::baseline
