#include "trace/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

#include "common/clock.hpp"

namespace nexus::trace {

namespace {

// ---- span buffers -----------------------------------------------------------

/// Cap per thread: a runaway workload degrades to dropped spans (counted),
/// never unbounded memory. 1M spans ~= 72 MiB worst case across a process.
constexpr std::size_t kMaxSpansPerThread = 1u << 20;

struct ThreadBuffer {
  std::mutex mu; // uncontended except during Snapshot/Reset
  std::vector<SpanRecord> records;
  std::uint32_t thread_id = 0;
};

/// Owns every thread's buffer for the process lifetime. Buffers are never
/// erased (threads hold raw pointers); Reset only clears their contents.
struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  std::uint32_t next_thread_id = 1;
};

Registry& TheRegistry() {
  static Registry registry;
  return registry;
}

std::atomic<bool> g_enabled{false};
std::atomic<std::uint64_t> g_completed{0};
std::atomic<std::uint64_t> g_dropped{0};
std::atomic<SimNowFn> g_sim_fn{nullptr};
std::atomic<const void*> g_sim_ctx{nullptr};

thread_local std::uint32_t t_depth = 0;

ThreadBuffer& LocalBuffer() {
  thread_local ThreadBuffer* buffer = [] {
    Registry& registry = TheRegistry();
    const std::lock_guard<std::mutex> lock(registry.mu);
    registry.buffers.push_back(std::make_unique<ThreadBuffer>());
    registry.buffers.back()->thread_id = registry.next_thread_id++;
    return registry.buffers.back().get();
  }();
  return *buffer;
}

void AppendRecord(const SpanRecord& record) {
  ThreadBuffer& buffer = LocalBuffer();
  const std::lock_guard<std::mutex> lock(buffer.mu);
  if (buffer.records.size() >= kMaxSpansPerThread) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  SpanRecord stamped = record;
  stamped.thread_id = buffer.thread_id;
  buffer.records.push_back(stamped);
  g_completed.fetch_add(1, std::memory_order_relaxed);
}

double SimNow() noexcept {
  const SimNowFn fn = g_sim_fn.load(std::memory_order_acquire);
  if (fn == nullptr) return 0;
  return fn(g_sim_ctx.load(std::memory_order_acquire));
}

// ---- NEXUS_TRACE startup hook -----------------------------------------------

void DumpAtExit();

/// Constructed before main via the namespace-scope instance below; forces
/// the registry into existence FIRST so its destructor runs after the
/// atexit dump.
struct EnvInit {
  std::string path;
  EnvInit() {
    (void)TheRegistry();
    const char* env = std::getenv("NEXUS_TRACE");
    if (env != nullptr && env[0] != '\0') {
      path = env;
      g_enabled.store(true, std::memory_order_relaxed);
      std::atexit(DumpAtExit);
    }
  }
};

EnvInit& Env() {
  // Intentionally leaked: DumpAtExit runs during process exit, AFTER
  // function-local statics are destroyed (the atexit handler is
  // registered inside EnvInit's constructor, so it fires later than a
  // destructor registered when construction completes). A by-value
  // static here would hand DumpAtExit a destroyed std::string — which
  // HAPPENS to work for paths short enough for the small-string buffer
  // and silently drops the dump for anything longer.
  static EnvInit* env = new EnvInit;
  return *env;
}

[[maybe_unused]] const EnvInit& g_env_init = Env();

void DumpAtExit() {
  const Status written = WriteChromeTrace(Env().path);
  if (!written.ok()) {
    std::fprintf(stderr, "NEXUS_TRACE: dump to %s failed: %s\n",
                 Env().path.c_str(), written.ToString().c_str());
  }
}

// ---- minimal JSON -----------------------------------------------------------

void EscapeJson(std::string_view in, std::string& out) {
  for (const char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Tiny JSON DOM, enough to read back ChromeTraceJson output (and to
/// validate externally supplied trace files in the CI checker). Depth is
/// bounded; numbers are doubles.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] const JsonValue* Get(std::string_view key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    NEXUS_ASSIGN_OR_RETURN(JsonValue value, ParseValue(0));
    SkipWs();
    if (pos_ != text_.size()) {
      return Error(ErrorCode::kInvalidArgument, "trailing JSON bytes");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 32;

  void SkipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Eat(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Fail(const char* what) const {
    return Error(ErrorCode::kInvalidArgument,
                 std::string("bad JSON: ") + what + " at offset " +
                     std::to_string(pos_));
  }

  Result<JsonValue> ParseValue(int depth) { // NOLINT(misc-no-recursion)
    if (depth > kMaxDepth) return Fail("nesting too deep");
    SkipWs();
    if (pos_ >= text_.size()) return Fail("unexpected end");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(depth);
    if (c == '[') return ParseArray(depth);
    if (c == '"') return ParseString();
    if (c == 't' || c == 'f') return ParseBool();
    if (c == 'n') return ParseNull();
    return ParseNumber();
  }

  Result<JsonValue> ParseObject(int depth) { // NOLINT(misc-no-recursion)
    JsonValue out;
    out.kind = JsonValue::Kind::kObject;
    if (!Eat('{')) return Fail("expected '{'");
    if (Eat('}')) return out;
    for (;;) {
      NEXUS_ASSIGN_OR_RETURN(JsonValue key, ParseString());
      if (!Eat(':')) return Fail("expected ':'");
      NEXUS_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      out.object.emplace_back(std::move(key.str), std::move(value));
      if (Eat(',')) continue;
      if (Eat('}')) return out;
      return Fail("expected ',' or '}'");
    }
  }

  Result<JsonValue> ParseArray(int depth) { // NOLINT(misc-no-recursion)
    JsonValue out;
    out.kind = JsonValue::Kind::kArray;
    if (!Eat('[')) return Fail("expected '['");
    if (Eat(']')) return out;
    for (;;) {
      NEXUS_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      out.array.push_back(std::move(value));
      if (Eat(',')) continue;
      if (Eat(']')) return out;
      return Fail("expected ',' or ']'");
    }
  }

  Result<JsonValue> ParseString() {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Fail("expected string");
    }
    ++pos_;
    JsonValue out;
    out.kind = JsonValue::Kind::kString;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.str += c;
        continue;
      }
      if (pos_ >= text_.size()) return Fail("dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.str += '"'; break;
        case '\\': out.str += '\\'; break;
        case '/': out.str += '/'; break;
        case 'n': out.str += '\n'; break;
        case 't': out.str += '\t'; break;
        case 'r': out.str += '\r'; break;
        case 'b': out.str += '\b'; break;
        case 'f': out.str += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Fail("bad \\u escape");
          }
          // ASCII only — sufficient for span names; others pass through
          // as '?' rather than growing a full UTF-16 decoder here.
          out.str += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  Result<JsonValue> ParseBool() {
    JsonValue out;
    out.kind = JsonValue::Kind::kBool;
    if (text_.substr(pos_, 4) == "true") {
      pos_ += 4;
      out.boolean = true;
      return out;
    }
    if (text_.substr(pos_, 5) == "false") {
      pos_ += 5;
      return out;
    }
    return Fail("expected bool");
  }

  Result<JsonValue> ParseNull() {
    if (text_.substr(pos_, 4) != "null") return Fail("expected null");
    pos_ += 4;
    return JsonValue{};
  }

  Result<JsonValue> ParseNumber() {
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
          c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return Fail("expected number");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Fail("malformed number");
    JsonValue out;
    out.kind = JsonValue::Kind::kNumber;
    out.number = v;
    return out;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// ---- global histogram registry ----------------------------------------------

struct HistRegistry {
  std::mutex mu;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> map;
};

HistRegistry& Hists() {
  static HistRegistry registry;
  return registry;
}

} // namespace

// ---- enable / sim source ----------------------------------------------------

bool Enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void SetEnabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

void SetSimSource(SimNowFn fn, const void* ctx) noexcept {
  g_sim_ctx.store(ctx, std::memory_order_release);
  g_sim_fn.store(fn, std::memory_order_release);
}

void ClearSimSource(const void* ctx) noexcept {
  if (g_sim_ctx.load(std::memory_order_acquire) == ctx) {
    g_sim_fn.store(nullptr, std::memory_order_release);
    g_sim_ctx.store(nullptr, std::memory_order_release);
  }
}

// ---- spans ------------------------------------------------------------------

Span::Span(const char* name, const char* category) noexcept
    : name_(name), category_(category), active_(Enabled()) {
  if (!active_) return;
  ++t_depth;
  start_ns_ = MonotonicNanos();
  sim_start_ = SimNow();
}

Span::~Span() {
  if (!active_) return;
  SpanRecord record;
  record.name = name_;
  record.category = category_;
  record.start_ns = start_ns_;
  record.dur_ns = MonotonicNanos() - start_ns_;
  record.sim_start_s = sim_start_;
  record.sim_dur_s = SimNow() - sim_start_;
  record.correlation = correlation_;
  record.depth = --t_depth;
  AppendRecord(record);
}

void CompleteSpan(const char* name, const char* category,
                  std::uint64_t start_ns, std::uint64_t dur_ns,
                  std::uint64_t correlation) {
  if (!Enabled()) return;
  SpanRecord record;
  record.name = name;
  record.category = category;
  record.start_ns = start_ns;
  record.dur_ns = dur_ns;
  record.correlation = correlation;
  record.depth = t_depth;
  AppendRecord(record);
}

std::vector<SpanRecord> TraceSnapshot() {
  std::vector<SpanRecord> out;
  Registry& registry = TheRegistry();
  const std::lock_guard<std::mutex> lock(registry.mu);
  for (const auto& buffer : registry.buffers) {
    const std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    out.insert(out.end(), buffer->records.begin(), buffer->records.end());
  }
  return out;
}

void ResetTrace() {
  Registry& registry = TheRegistry();
  const std::lock_guard<std::mutex> lock(registry.mu);
  for (const auto& buffer : registry.buffers) {
    const std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    buffer->records.clear();
  }
  g_completed.store(0, std::memory_order_relaxed);
  g_dropped.store(0, std::memory_order_relaxed);
}

std::uint64_t CompletedSpanCount() noexcept {
  return g_completed.load(std::memory_order_relaxed);
}

std::uint64_t DroppedSpanCount() noexcept {
  return g_dropped.load(std::memory_order_relaxed);
}

// ---- Chrome trace-event JSON ------------------------------------------------

std::string ChromeTraceJson() {
  const std::vector<SpanRecord> spans = TraceSnapshot();
  std::uint64_t t0 = ~0ull;
  for (const SpanRecord& s : spans) t0 = std::min(t0, s.start_ns);
  if (spans.empty()) t0 = 0;

  std::string out = "{\"traceEvents\":[";
  char buf[192];
  bool first = true;
  for (const SpanRecord& s : spans) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    EscapeJson(s.name, out);
    out += "\",\"cat\":\"";
    EscapeJson(s.category, out);
    out += "\",\"ph\":\"X\",\"pid\":1";
    std::snprintf(buf, sizeof(buf),
                  ",\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f", s.thread_id,
                  static_cast<double>(s.start_ns - t0) * 1e-3,
                  static_cast<double>(s.dur_ns) * 1e-3);
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  ",\"args\":{\"sim_ts_us\":%.6f,\"sim_dur_us\":%.6f,"
                  "\"corr\":%llu,\"depth\":%u}}",
                  s.sim_start_s * 1e6, s.sim_dur_s * 1e6,
                  static_cast<unsigned long long>(s.correlation), s.depth);
    out += buf;
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

Status WriteChromeTrace(const std::string& path) {
  const std::string json = ChromeTraceJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Error(ErrorCode::kIOError, "cannot open trace file: " + path);
  }
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const int closed = std::fclose(f);
  if (written != json.size() || closed != 0) {
    return Error(ErrorCode::kIOError, "short write to trace file: " + path);
  }
  return Status::Ok();
}

Result<std::vector<ParsedSpan>> ParseChromeTrace(std::string_view json) {
  JsonParser parser(json);
  NEXUS_ASSIGN_OR_RETURN(JsonValue root, parser.Parse());
  if (root.kind != JsonValue::Kind::kObject) {
    return Error(ErrorCode::kInvalidArgument, "trace root is not an object");
  }
  const JsonValue* events = root.Get("traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
    return Error(ErrorCode::kInvalidArgument, "missing traceEvents array");
  }
  std::vector<ParsedSpan> out;
  out.reserve(events->array.size());
  for (const JsonValue& event : events->array) {
    if (event.kind != JsonValue::Kind::kObject) {
      return Error(ErrorCode::kInvalidArgument, "trace event is not an object");
    }
    const JsonValue* ph = event.Get("ph");
    if (ph != nullptr && ph->str != "X") continue; // tolerate metadata events
    ParsedSpan span;
    const JsonValue* name = event.Get("name");
    const JsonValue* cat = event.Get("cat");
    const JsonValue* ts = event.Get("ts");
    const JsonValue* dur = event.Get("dur");
    const JsonValue* tid = event.Get("tid");
    if (name == nullptr || name->kind != JsonValue::Kind::kString ||
        ts == nullptr || ts->kind != JsonValue::Kind::kNumber ||
        dur == nullptr || dur->kind != JsonValue::Kind::kNumber) {
      return Error(ErrorCode::kInvalidArgument,
                   "trace event missing name/ts/dur");
    }
    span.name = name->str;
    if (cat != nullptr) span.category = cat->str;
    span.ts_us = ts->number;
    span.dur_us = dur->number;
    if (tid != nullptr) span.thread_id = static_cast<std::uint32_t>(tid->number);
    if (const JsonValue* args = event.Get("args");
        args != nullptr && args->kind == JsonValue::Kind::kObject) {
      if (const JsonValue* v = args->Get("sim_ts_us")) span.sim_ts_us = v->number;
      if (const JsonValue* v = args->Get("sim_dur_us")) span.sim_dur_us = v->number;
      if (const JsonValue* v = args->Get("corr")) {
        span.correlation = static_cast<std::uint64_t>(v->number);
      }
      if (const JsonValue* v = args->Get("depth")) {
        span.depth = static_cast<std::uint32_t>(v->number);
      }
    }
    out.push_back(std::move(span));
  }
  return out;
}

// ---- named global histograms ------------------------------------------------

Histogram& GlobalHistogram(std::string_view name) {
  HistRegistry& registry = Hists();
  const std::lock_guard<std::mutex> lock(registry.mu);
  const auto it = registry.map.find(name);
  if (it != registry.map.end()) return *it->second;
  auto [inserted, _] =
      registry.map.emplace(std::string(name), std::make_unique<Histogram>());
  return *inserted->second;
}

void ResetGlobalHistograms() {
  HistRegistry& registry = Hists();
  const std::lock_guard<std::mutex> lock(registry.mu);
  for (const auto& [name, hist] : registry.map) hist->Reset();
}

HistogramSummary Summarize(std::string_view name, const Histogram& hist) {
  HistogramSummary out;
  out.name = std::string(name);
  out.count = hist.Count();
  out.p50_ms = hist.PercentileMs(0.50);
  out.p99_ms = hist.PercentileMs(0.99);
  return out;
}

std::vector<HistogramSummary> GlobalHistogramSummaries() {
  HistRegistry& registry = Hists();
  const std::lock_guard<std::mutex> lock(registry.mu);
  std::vector<HistogramSummary> out;
  out.reserve(registry.map.size());
  for (const auto& [name, hist] : registry.map) {
    out.push_back(Summarize(name, *hist));
  }
  return out;
}

} // namespace nexus::trace
