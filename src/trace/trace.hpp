// Low-overhead structured tracing (DESIGN.md §7).
//
// A span is one timed region on one thread, stamped with BOTH clock
// domains the evaluation uses: the real monotonic clock (enclave compute,
// network RPCs) and the virtual SimClock (simulated storage I/O). Spans
// nest: the per-thread depth counter records how deep each span sat, so a
// consumer can rebuild the ecall -> ocall -> storage timeline.
//
// Recording is designed to cost nothing when disabled (one relaxed atomic
// load, no TLS touch, no allocation — asserted by tests/trace_test.cpp)
// and little when enabled: completed spans append to a per-thread buffer
// behind an uncontended mutex. Buffers are owned by a process-wide
// registry and never deallocated mid-run, so thread-local pointers stay
// valid for the thread's lifetime.
//
// Enabling:
//  * NEXUS_TRACE=<path> in the environment enables tracing at startup and
//    dumps Chrome trace-event JSON to <path> at exit (open it in
//    chrome://tracing or Perfetto), or
//  * SetEnabled(true) + TraceSnapshot() / ChromeTraceJson() in-process.
//
// Span names are expected to be string literals (the tracer stores the
// pointers, not copies).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"
#include "trace/histogram.hpp"

namespace nexus::trace {

struct SpanRecord {
  const char* name = "";
  const char* category = "";
  std::uint64_t start_ns = 0; // MonotonicNanos at open
  std::uint64_t dur_ns = 0;
  double sim_start_s = 0; // SimClock at open (0 when no source registered)
  double sim_dur_s = 0;   // virtual time that elapsed inside the span
  std::uint64_t correlation = 0; // wire correlation id; 0 = none
  std::uint32_t thread_id = 0;   // small per-process id, 1-based
  std::uint32_t depth = 0;       // enclosing live spans on this thread
};

[[nodiscard]] bool Enabled() noexcept;
void SetEnabled(bool on) noexcept;

/// Virtual-clock source for sim timestamps. Registered by the storage
/// layer (AfsServer) for its SimClock; the tracer itself depends only on
/// common/. Not safe to swap while spans are concurrently opening — in
/// practice registration happens at deployment construction.
using SimNowFn = double (*)(const void* ctx);
void SetSimSource(SimNowFn fn, const void* ctx) noexcept;
/// Unregisters iff `ctx` is the current source (destructor discipline).
void ClearSimSource(const void* ctx) noexcept;

/// RAII span guard. When tracing is disabled, construction and destruction
/// are a single atomic load each — no buffer, no allocation.
class Span {
 public:
  Span(const char* name, const char* category) noexcept;
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Tags the span with a wire correlation id (client/server matching).
  void SetCorrelation(std::uint64_t id) noexcept { correlation_ = id; }

 private:
  const char* name_;
  const char* category_;
  std::uint64_t start_ns_ = 0;
  double sim_start_ = 0;
  std::uint64_t correlation_ = 0;
  bool active_ = false;
};

/// Records an already-timed region (e.g. a parallel crypto batch whose
/// wall time was measured externally). `start_ns` is MonotonicNanos.
void CompleteSpan(const char* name, const char* category,
                  std::uint64_t start_ns, std::uint64_t dur_ns,
                  std::uint64_t correlation = 0);

/// Copy of every completed span across all threads, in per-thread order.
[[nodiscard]] std::vector<SpanRecord> TraceSnapshot();
/// Drops all buffered spans and zeroes the completed/dropped counters.
void ResetTrace();
/// Spans appended since process start / last ResetTrace.
[[nodiscard]] std::uint64_t CompletedSpanCount() noexcept;
/// Spans discarded because a thread buffer hit its cap.
[[nodiscard]] std::uint64_t DroppedSpanCount() noexcept;

// ---- Chrome trace-event JSON ------------------------------------------------

/// Serializes the current snapshot as Chrome trace-event JSON ("X" phase
/// events; ts/dur in microseconds relative to the earliest span; sim-clock
/// stamps, correlation and depth in args).
[[nodiscard]] std::string ChromeTraceJson();
Status WriteChromeTrace(const std::string& path);

struct ParsedSpan {
  std::string name;
  std::string category;
  double ts_us = 0;
  double dur_us = 0;
  double sim_ts_us = 0;
  double sim_dur_us = 0;
  std::uint64_t correlation = 0;
  std::uint32_t thread_id = 0;
  std::uint32_t depth = 0;
};

/// Parses ChromeTraceJson output back (round-trip tests, the CI trace
/// checker). Bounds-checked; rejects structurally invalid JSON.
Result<std::vector<ParsedSpan>> ParseChromeTrace(std::string_view json);

// ---- named global histograms ------------------------------------------------

/// Process-wide histogram registry ("ecall", "journal.commit", ...). The
/// returned reference is valid for the process lifetime; Reset zeroes
/// contents but never invalidates references.
Histogram& GlobalHistogram(std::string_view name);
void ResetGlobalHistograms();

struct HistogramSummary {
  std::string name;
  std::uint64_t count = 0;
  double p50_ms = 0;
  double p99_ms = 0;
};
[[nodiscard]] HistogramSummary Summarize(std::string_view name,
                                         const Histogram& hist);
[[nodiscard]] std::vector<HistogramSummary> GlobalHistogramSummaries();

} // namespace nexus::trace
