#include "trace/histogram.hpp"

#include <algorithm>
#include <bit>

namespace nexus::trace {

namespace {

void AtomicMin(std::atomic<std::uint64_t>& slot, std::uint64_t v) noexcept {
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (v < cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<std::uint64_t>& slot, std::uint64_t v) noexcept {
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (v > cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

} // namespace

std::size_t Histogram::BucketIndex(std::uint64_t value_ns) noexcept {
  if (value_ns == 0) return 0;
  // bit_width(1) == 1, so value 1 lands in bucket 1 = [1, 2).
  return std::min<std::size_t>(std::bit_width(value_ns), kBuckets - 1);
}

std::uint64_t Histogram::BucketLo(std::size_t index) noexcept {
  return index == 0 ? 0 : std::uint64_t{1} << (index - 1);
}

std::uint64_t Histogram::BucketHi(std::size_t index) noexcept {
  if (index == 0) return 1;
  if (index >= kBuckets - 1) return ~0ull;
  return std::uint64_t{1} << index;
}

void Histogram::Record(std::uint64_t value_ns) noexcept {
  counts_[BucketIndex(value_ns)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value_ns, std::memory_order_relaxed);
  AtomicMin(min_, value_ns);
  AtomicMax(max_, value_ns);
}

void Histogram::RecordSeconds(double seconds) noexcept {
  Record(seconds <= 0 ? 0 : static_cast<std::uint64_t>(seconds * 1e9 + 0.5));
}

void Histogram::RecordMs(double ms) noexcept {
  Record(ms <= 0 ? 0 : static_cast<std::uint64_t>(ms * 1e6 + 0.5));
}

std::uint64_t Histogram::Count() const noexcept {
  return count_.load(std::memory_order_relaxed);
}

std::uint64_t Histogram::SumNs() const noexcept {
  return sum_.load(std::memory_order_relaxed);
}

std::uint64_t Histogram::MinNs() const noexcept {
  const std::uint64_t v = min_.load(std::memory_order_relaxed);
  return v == ~0ull ? 0 : v;
}

std::uint64_t Histogram::MaxNs() const noexcept {
  return max_.load(std::memory_order_relaxed);
}

double Histogram::MeanNs() const noexcept {
  const std::uint64_t n = Count();
  return n == 0 ? 0.0 : static_cast<double>(SumNs()) / static_cast<double>(n);
}

double Histogram::PercentileNs(double p) const noexcept {
  const std::uint64_t n = count_.load(std::memory_order_relaxed);
  if (n == 0) return 0.0;
  const auto mn = static_cast<double>(MinNs());
  const auto mx = static_cast<double>(MaxNs());
  if (p <= 0) return mn;
  if (p >= 1) return mx;
  const double rank = p * static_cast<double>(n - 1);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t c = counts_[i].load(std::memory_order_relaxed);
    if (c == 0) continue;
    if (rank < static_cast<double>(cum + c)) {
      // Spread the bucket's samples uniformly over [lo, hi), then clamp to
      // the observed range — a bucket holding every sample of one value
      // therefore reports that value exactly.
      const auto lo = static_cast<double>(BucketLo(i));
      const auto hi = static_cast<double>(BucketHi(i));
      const double frac =
          (rank - static_cast<double>(cum)) / static_cast<double>(c);
      return std::clamp(lo + (hi - lo) * frac, mn, mx);
    }
    cum += c;
  }
  return mx;
}

double Histogram::PercentileMs(double p) const noexcept {
  return PercentileNs(p) * 1e-6;
}

void Histogram::MergeFrom(const Histogram& other) noexcept {
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t c = other.counts_[i].load(std::memory_order_relaxed);
    if (c != 0) counts_[i].fetch_add(c, std::memory_order_relaxed);
  }
  const std::uint64_t n = other.count_.load(std::memory_order_relaxed);
  if (n == 0) return;
  count_.fetch_add(n, std::memory_order_relaxed);
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  AtomicMin(min_, other.min_.load(std::memory_order_relaxed));
  AtomicMax(max_, other.max_.load(std::memory_order_relaxed));
}

void Histogram::Reset() noexcept {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~0ull, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

// ---- Reservoir --------------------------------------------------------------

Reservoir::Reservoir(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {}

void Reservoir::Record(double sample) {
  ++recorded_;
  if (samples_.size() < capacity_) {
    samples_.push_back(sample);
    return;
  }
  samples_[next_slot_] = sample;
  next_slot_ = (next_slot_ + 1) % capacity_;
}

double Reservoir::Percentile(double p) const {
  return ExactPercentile(samples_, p);
}

void Reservoir::Reset() {
  samples_.clear();
  next_slot_ = 0;
  recorded_ = 0;
}

double ExactPercentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const double rank =
      std::clamp(p, 0.0, 1.0) * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1 - frac) + samples[hi] * frac;
}

} // namespace nexus::trace
