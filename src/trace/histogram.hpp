// Latency distributions for the observability layer (DESIGN.md §7).
//
// Two shapes, two jobs:
//
//  * Histogram — fixed log2-bucket counts over nanoseconds. Recording is a
//    handful of relaxed atomic increments (safe from any thread, no lock,
//    no allocation), so it can sit on hot paths: per-ecall timing, journal
//    commits, every nexusd RPC. Percentiles interpolate within a bucket
//    and clamp to the observed [min, max], which makes uniform sample sets
//    exact and bounds the error for mixed sets by one bucket (a factor of
//    two in value). Histograms merge associatively, so per-shard instances
//    can be summed into one distribution.
//
//  * Reservoir — the bounded sample buffer previously private to
//    net_counters.cpp, kept for callers that want EXACT percentiles over
//    recent samples. Not thread-safe; callers lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace nexus::trace {

class Histogram {
 public:
  /// Bucket 0 holds exactly {0}; bucket i >= 1 holds [2^(i-1), 2^i) ns;
  /// the last bucket is open-ended.
  static constexpr std::size_t kBuckets = 64;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(std::uint64_t value_ns) noexcept;
  void RecordSeconds(double seconds) noexcept;
  void RecordMs(double ms) noexcept;

  [[nodiscard]] std::uint64_t Count() const noexcept;
  [[nodiscard]] std::uint64_t SumNs() const noexcept;
  [[nodiscard]] std::uint64_t MinNs() const noexcept; // 0 when empty
  [[nodiscard]] std::uint64_t MaxNs() const noexcept;
  [[nodiscard]] double MeanNs() const noexcept;

  /// p in [0, 1]. Exact when every sample shares one value (clamped to the
  /// global min/max); otherwise within the sample's bucket.
  [[nodiscard]] double PercentileNs(double p) const noexcept;
  [[nodiscard]] double PercentileMs(double p) const noexcept;

  /// Adds `other`'s samples into this histogram. Associative and
  /// commutative over the resulting distribution.
  void MergeFrom(const Histogram& other) noexcept;
  void Reset() noexcept;

  static std::size_t BucketIndex(std::uint64_t value_ns) noexcept;
  static std::uint64_t BucketLo(std::size_t index) noexcept;
  static std::uint64_t BucketHi(std::size_t index) noexcept;

 private:
  std::atomic<std::uint64_t> counts_[kBuckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~0ull};
  std::atomic<std::uint64_t> max_{0};
};

/// Bounded buffer of recent samples: fills to capacity, then overwrites the
/// oldest retained slot (newest-overwrite wrap-around).
class Reservoir {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit Reservoir(std::size_t capacity = kDefaultCapacity);

  void Record(double sample);

  /// Exact percentile over the retained samples (sort + linear
  /// interpolation at rank p * (n - 1)); 0 when empty.
  [[nodiscard]] double Percentile(double p) const;

  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Total samples ever offered, overwritten ones included.
  [[nodiscard]] std::uint64_t recorded() const noexcept { return recorded_; }

  void Reset();

 private:
  std::size_t capacity_;
  std::vector<double> samples_;
  std::size_t next_slot_ = 0;
  std::uint64_t recorded_ = 0;
};

/// Exact percentile of an arbitrary sample set (same rank convention as
/// Reservoir::Percentile); 0 when empty.
double ExactPercentile(std::vector<double> samples, double p);

} // namespace nexus::trace
