// CI trace checker: validates a Chrome trace-event JSON file emitted via
// NEXUS_TRACE. Exits 0 iff the file parses, contains at least one span,
// and every span is structurally sane (nonempty name, nonnegative times).
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "trace/trace.hpp"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: trace_check <trace.json>\n");
    return 2;
  }
  std::ifstream in(argv[1], std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "trace_check: cannot open %s\n", argv[1]);
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();

  const auto parsed = nexus::trace::ParseChromeTrace(json);
  if (!parsed.ok()) {
    std::fprintf(stderr, "trace_check: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }
  if (parsed->empty()) {
    std::fprintf(stderr, "trace_check: no spans in %s\n", argv[1]);
    return 1;
  }
  std::map<std::string, std::size_t> per_category;
  for (const nexus::trace::ParsedSpan& span : *parsed) {
    if (span.name.empty()) {
      std::fprintf(stderr, "trace_check: span with empty name\n");
      return 1;
    }
    if (span.ts_us < 0 || span.dur_us < 0 || span.sim_dur_us < 0) {
      std::fprintf(stderr, "trace_check: span '%s' has negative time\n",
                   span.name.c_str());
      return 1;
    }
    ++per_category[span.category];
  }
  std::printf("trace_check: %zu spans OK in %s\n", parsed->size(), argv[1]);
  for (const auto& [category, count] : per_category) {
    std::printf("  %-12s %zu\n", category.c_str(), count);
  }
  return 0;
}
