// Volume check ("nexus-fsck"): in-enclave integrity audit of the entire
// tree plus an untrusted orphan scan — objects on the store that no
// metadata references (leftovers of crashed operations; harmless but worth
// reclaiming).
#pragma once

#include <string>
#include <vector>

#include "core/nexus_client.hpp"

namespace nexus::core {

struct FsckReport {
  enclave::NexusEnclave::VolumeAudit audit;
  /// Store object names (attacker-visible form) that exist but are not
  /// reachable from the volume. Safe to delete.
  std::vector<std::string> orphaned_objects;
  /// Write-ahead journal objects present on the store (records + anchor).
  /// These are reachable by construction — never orphans — but committed
  /// records awaiting checkpoint mean the main objects are behind the
  /// journal until the next mount replays them.
  std::vector<std::string> journal_objects;
  /// Journal *records* (anchor excluded) awaiting checkpoint.
  std::size_t uncheckpointed_records = 0;
};

/// Runs the audit on the mounted volume of `client`. With `deep`, every
/// file's ciphertext chunks are fetched and verified too.
Result<FsckReport> RunFsck(NexusClient& client, bool deep = false);

/// Deletes the orphans found by RunFsck. Returns how many were removed.
Result<std::size_t> ReclaimOrphans(NexusClient& client,
                                   const FsckReport& report);

} // namespace nexus::core
