// NexusClient: the untrusted host-side facade — the public API of the
// library.
//
// One NexusClient corresponds to the paper's userspace daemon on one
// machine: it owns the ocall bridge to the storage service, forwards
// requests into the enclave, orchestrates the out-of-enclave halves of the
// authentication and key-exchange protocols (the user's identity key never
// enters the enclave), and accounts enclave compute time on the virtual
// clock for the evaluation harness.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "core/metadata_store.hpp"
#include "core/profiler.hpp"
#include "core/user_key.hpp"
#include "enclave/nexus_enclave.hpp"
#include "storage/afs.hpp"
#include "trace/trace.hpp"

namespace nexus::core {

class NexusClient {
 public:
  /// `intel_root_public_key` — the attestation root used to verify peers'
  /// quotes (baked into the enclave in a real deployment).
  NexusClient(sgx::EnclaveRuntime& runtime, storage::AfsClient& afs,
              const ByteArray<32>& intel_root_public_key);

  // ---- volume lifecycle ----------------------------------------------------

  struct VolumeHandle {
    Uuid volume_uuid;
    Bytes sealed_rootkey; // machine-bound; persist locally
  };

  /// Creates a volume owned by `owner`; leaves it mounted.
  Result<VolumeHandle> CreateVolume(const UserKey& owner,
                                    const enclave::VolumeConfig& config = {});

  /// Runs the §IV-B challenge-response protocol and mounts the volume.
  Status Mount(const UserKey& user, const Uuid& volume_uuid,
               ByteSpan sealed_rootkey);
  Status Unmount();
  [[nodiscard]] bool mounted() const { return enclave_->mounted(); }

  // ---- filesystem operations (Table I) --------------------------------------

  Status Touch(const std::string& path);
  Status Mkdir(const std::string& path);
  Status Remove(const std::string& path);
  Result<enclave::Attributes> Lookup(const std::string& path);
  Result<std::vector<enclave::DirEntry>> ListDir(const std::string& path);
  Status Symlink(const std::string& target, const std::string& linkpath);
  Status Hardlink(const std::string& existing, const std::string& linkpath);
  Result<std::string> Readlink(const std::string& path);
  Status Rename(const std::string& from, const std::string& to);

  /// Whole-file write; creates the file if needed.
  Status WriteFile(const std::string& path, ByteSpan content);
  /// Write where only [dirty_offset, dirty_offset+dirty_len) changed:
  /// the enclave re-encrypts and ships only the affected chunks.
  Status WriteFileRange(const std::string& path, ByteSpan content,
                        std::uint64_t dirty_offset, std::uint64_t dirty_len);
  Result<Bytes> ReadFile(const std::string& path);

  // ---- access control --------------------------------------------------------

  Status AddUser(const std::string& name, const ByteArray<32>& public_key);
  Status RemoveUser(const std::string& name);
  Result<std::vector<enclave::UserRecord>> ListUsers();
  Status SetAcl(const std::string& dirpath, const std::string& username,
                std::uint8_t perms);

  // ---- write-ahead journal / group commit -------------------------------------

  /// Enables or disables write-ahead journaling of metadata stores, and
  /// sets the checkpoint threshold (committed ops buffered before they are
  /// applied to the main objects; 0 = checkpoint after every commit).
  /// Recovery of committed-but-uncheckpointed records still runs at every
  /// mount even when journaling is disabled.
  Status ConfigureJournal(bool enabled, std::uint64_t checkpoint_interval_ops);

  /// Opens an explicit batch: metadata writes from subsequent operations
  /// accumulate in the enclave and become durable as ONE journal record at
  /// CommitBatch (group commit). The batch is all-or-nothing under crashes.
  /// Requires journaling to be enabled; single writer per volume while a
  /// batch is open.
  Status BeginBatch();
  /// Seals and commits every metadata write since BeginBatch.
  Status CommitBatch();

  // ---- in-band attested key exchange (§IV-B1) --------------------------------
  // All blobs travel as files on the shared storage service; the two users
  // never need to be online simultaneously.

  /// Setup: publishes this enclave's signed identity (quote + ECDH key)
  /// at "keyx/<user>.id".
  Status PublishIdentity(const UserKey& user);

  /// Exchange: grants `recipient_name` (whose identity blob is on the
  /// store, and whose user public key the granter trusts out-of-band)
  /// access to the mounted volume. Writes the grant file and adds the user
  /// to the supernode.
  Status GrantAccess(const UserKey& granter, const std::string& recipient_name,
                     const ByteArray<32>& recipient_public_key);

  /// Extraction: consumes a grant addressed to `user`, returning the
  /// volume handle (sealed rootkey) to mount with.
  Result<VolumeHandle> AcceptGrant(const UserKey& user,
                                   const std::string& granter_name,
                                   const ByteArray<32>& granter_public_key,
                                   const Uuid& volume_uuid);

  // ---- synchronous PFS variant (§VI-B) --------------------------------------
  // Same in-band transport, but both parties are online and every exchange
  // uses fresh quoted ephemeral keys on both sides (forward secrecy).

  /// Recipient: publishes a one-shot signed ephemeral offer at
  /// "keyx/<user>.offer".
  Status PublishEphemeralOffer(const UserKey& user);
  /// Granter: consumes the recipient's offer, publishes the ephemeral
  /// grant and authorizes the user in the supernode.
  Status GrantAccessEphemeral(const UserKey& granter,
                              const std::string& recipient_name,
                              const ByteArray<32>& recipient_public_key);
  /// Recipient: consumes the granter's ephemeral grant.
  Result<VolumeHandle> AcceptEphemeralGrant(const UserKey& user,
                                            const std::string& granter_name,
                                            const ByteArray<32>& granter_public_key,
                                            const Uuid& volume_uuid);

  // ---- persistent local state (§VI-C) ----------------------------------------

  /// Seals the enclave's rollback-defence version table for local storage;
  /// reload it after a restart to extend rollback detection across
  /// sessions.
  Result<Bytes> ExportSealedVersionTable();
  Status ImportSealedVersionTable(ByteSpan sealed);

  // ---- instrumentation ---------------------------------------------------------

  [[nodiscard]] enclave::NexusEnclave& enclave() noexcept { return *enclave_; }
  [[nodiscard]] storage::AfsClient& afs() noexcept { return afs_; }
  [[nodiscard]] ProfileSnapshot Profile() const {
    const storage::SimClock& clock = afs_.server().clock();
    const journal::Stats& js = enclave_->journal_stats();
    ProfileSnapshot snap;
    snap.io_seconds = clock.Now();
    snap.enclave_seconds = enclave_seconds_;
    snap.metadata_io_seconds = clock.Account(kMetaIoAccount);
    snap.data_io_seconds = clock.Account(kDataIoAccount);
    snap.journal_io_seconds = clock.Account(kJournalIoAccount);
    snap.journal = JournalCounters{
        js.records_committed, js.ops_committed,   js.ops_deduped,
        js.checkpoints,       js.ops_checkpointed, js.records_replayed,
        js.ops_replayed,      js.torn_records_discarded};
    const enclave::NexusEnclave::ParallelStats& ps = enclave_->parallel_stats();
    snap.parallel = ParallelCounters{
        ps.chunks_encrypted,    ps.chunks_decrypted,
        ps.parallel_batches,    ps.segments_streamed,
        ps.tasks_stolen,        ps.peak_queue_depth,
        ps.worker_busy_seconds, ps.critical_path_seconds,
        ps.saved_seconds};
    snap.net = net::GlobalNetSnapshot();
    snap.cache = cache::GlobalCacheSnapshot();
    snap.cluster = cluster::GlobalClusterSnapshot();
    // PR 5 reported readahead effectiveness under net.*; the cache layer
    // owns those counters now, so keep the old names aliased.
    snap.net.prefetch_issued = snap.cache.prefetch_issued;
    snap.net.prefetch_hits = snap.cache.prefetch_hits;
    snap.net.prefetch_wasted_bytes = snap.cache.prefetch_wasted_bytes;
    snap.net.prefetch_joined = snap.cache.prefetch_joined;
    {
      const trace::Histogram& ecalls = trace::GlobalHistogram("ecall");
      snap.ecall_latency = LatencySummary{
          ecalls.Count(), ecalls.PercentileMs(0.50), ecalls.PercentileMs(0.99)};
      const trace::Histogram& commits =
          trace::GlobalHistogram("journal.commit");
      snap.journal_commit_latency =
          LatencySummary{commits.Count(), commits.PercentileMs(0.50),
                         commits.PercentileMs(0.99)};
    }
    snap.trace_spans = trace::CompletedSpanCount();
    return snap;
  }

  /// Reconfigures the enclave's crypto worker pool (0 = serial path).
  Status SetCryptoWorkers(std::size_t workers) {
    return enclave_->EcallSetCryptoWorkers(workers);
  }
  /// Drops the in-enclave and AFS caches (cold-start measurements).
  void DropAllCaches();

 private:
  /// Runs an ecall, folding its real compute time into the virtual clock
  /// under the "enclave" account, recording it in the per-ecall latency
  /// histograms, and opening a trace span named after the operation.
  template <typename F>
  auto TimedEcall(const char* name, F&& f);

  static std::string IdentityPath(const std::string& user);
  static std::string GrantPath(const std::string& granter,
                               const std::string& recipient);

  storage::AfsClient& afs_;
  AfsMetadataStore store_;
  std::unique_ptr<enclave::NexusEnclave> enclave_;
  sgx::EnclaveRuntime& runtime_;
  double enclave_seconds_ = 0;
};

} // namespace nexus::core
