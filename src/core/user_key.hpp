// Untrusted user identity: the Ed25519 keypair a user authenticates with.
//
// In NEXUS the user's private key lives *outside* the enclave (the enclave
// only ever sees public keys); the user signs the auth challenge and the
// key-exchange blobs locally (paper §IV-B).
#pragma once

#include <string>

#include "crypto/ed25519.hpp"
#include "crypto/rng.hpp"

namespace nexus::core {

struct UserKey {
  std::string name;
  crypto::Ed25519KeyPair key;

  static UserKey Generate(std::string name, crypto::Rng& rng) {
    return UserKey{std::move(name), crypto::Ed25519FromSeed(rng.Array<32>())};
  }

  [[nodiscard]] const ByteArray<32>& public_key() const noexcept {
    return key.public_key;
  }

  [[nodiscard]] ByteArray<64> Sign(ByteSpan message) const noexcept {
    return crypto::Ed25519Sign(key, message);
  }
};

} // namespace nexus::core
