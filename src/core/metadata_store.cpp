#include "core/metadata_store.hpp"

#include "trace/trace.hpp"

namespace nexus::core {

AfsMetadataStore::AfsMetadataStore(storage::AfsClient& afs, std::string prefix)
    : afs_(afs), prefix_(std::move(prefix)) {}

std::string AfsMetadataStore::MetaPath(const Uuid& uuid) const {
  return prefix_ + "/" + uuid.ToString();
}

std::string AfsMetadataStore::DataPath(const Uuid& uuid) const {
  return prefix_ + "d/" + uuid.ToString();
}

std::string AfsMetadataStore::JournalPath(const std::string& name) const {
  return prefix_ + "j/" + name;
}

Result<enclave::ObjectBlob> AfsMetadataStore::FetchMeta(const Uuid& uuid) {
  trace::Span io_span("io:fetch_meta", kMetaIoAccount);
  storage::SimClock::Attribution account(afs_.server().clock(), kMetaIoAccount);
  NEXUS_ASSIGN_OR_RETURN(storage::AfsServer::FetchResult result,
                         afs_.FetchVersioned(MetaPath(uuid)));
  return enclave::ObjectBlob{std::move(result.data), result.version};
}

Result<std::uint64_t> AfsMetadataStore::StoreMeta(const Uuid& uuid,
                                                  ByteSpan data) {
  trace::Span io_span("io:store_meta", kMetaIoAccount);
  storage::SimClock::Attribution account(afs_.server().clock(), kMetaIoAccount);
  return afs_.StoreVersioned(MetaPath(uuid), data);
}

Status AfsMetadataStore::RemoveMeta(const Uuid& uuid) {
  trace::Span io_span("io:remove_meta", kMetaIoAccount);
  storage::SimClock::Attribution account(afs_.server().clock(), kMetaIoAccount);
  return afs_.Remove(MetaPath(uuid));
}

Result<enclave::ObjectBlob> AfsMetadataStore::FetchData(const Uuid& uuid) {
  trace::Span io_span("io:fetch_data", kDataIoAccount);
  storage::SimClock::Attribution account(afs_.server().clock(), kDataIoAccount);
  NEXUS_ASSIGN_OR_RETURN(storage::AfsServer::FetchResult result,
                         afs_.FetchVersioned(DataPath(uuid)));
  return enclave::ObjectBlob{std::move(result.data), result.version};
}

Status AfsMetadataStore::StoreData(const Uuid& uuid, ByteSpan data,
                                   std::uint64_t changed_bytes) {
  trace::Span io_span("io:store_data", kDataIoAccount);
  storage::SimClock::Attribution account(afs_.server().clock(), kDataIoAccount);
  if (changed_bytes >= data.size()) {
    return afs_.Store(DataPath(uuid), data);
  }
  return afs_.StorePartial(DataPath(uuid), data, changed_bytes);
}

Result<std::uint64_t> AfsMetadataStore::BeginDataStream(
    const Uuid& uuid, std::uint64_t total_bytes) {
  trace::Span io_span("io:begin_data_stream", kDataIoAccount);
  storage::SimClock::Attribution account(afs_.server().clock(), kDataIoAccount);
  return afs_.StoreStreamBegin(DataPath(uuid), total_bytes);
}

Status AfsMetadataStore::StoreDataSegment(std::uint64_t handle,
                                          ByteSpan segment) {
  trace::Span io_span("io:store_data_segment", kDataIoAccount);
  storage::SimClock::Attribution account(afs_.server().clock(), kDataIoAccount);
  return afs_.StoreStreamSegment(handle, segment);
}

Status AfsMetadataStore::CommitDataStream(std::uint64_t handle,
                                          std::uint64_t changed_bytes) {
  trace::Span io_span("io:commit_data_stream", kDataIoAccount);
  storage::SimClock::Attribution account(afs_.server().clock(), kDataIoAccount);
  return afs_.StoreStreamCommit(handle, changed_bytes);
}

Status AfsMetadataStore::AbortDataStream(std::uint64_t handle) {
  trace::Span io_span("io:abort_data_stream", kDataIoAccount);
  storage::SimClock::Attribution account(afs_.server().clock(), kDataIoAccount);
  return afs_.StoreStreamAbort(handle);
}

Result<enclave::RangeBlob> AfsMetadataStore::FetchDataRange(
    const Uuid& uuid, std::uint64_t offset, std::uint64_t len) {
  trace::Span io_span("io:fetch_data_range", kDataIoAccount);
  storage::SimClock::Attribution account(afs_.server().clock(), kDataIoAccount);
  bool arm = false;
  {
    const std::lock_guard<std::mutex> lock(seq_mu_);
    SeqState& state = seq_[uuid.ToString()];
    if (offset == state.next_off && offset > 0) {
      arm = ++state.streak >= 1;
    } else {
      state.streak = 0;
    }
    state.next_off = offset + len;
  }
  if (arm) PrefetchData(uuid, offset + len, len);
  NEXUS_ASSIGN_OR_RETURN(storage::AfsClient::RangeResult range,
                         afs_.FetchRange(DataPath(uuid), offset, len));
  return enclave::RangeBlob{std::move(range.data), range.object_size,
                            range.version};
}

void AfsMetadataStore::PrefetchData(const Uuid& uuid, std::uint64_t offset,
                                    std::uint64_t len) {
  // Hints are free on the virtual clock — no Attribution scope. The span
  // still records them so traces show where readahead was armed.
  (void)offset;
  (void)len;
  trace::Span io_span("io:prefetch_data", kDataIoAccount);
  afs_.Prefetch(DataPath(uuid));
}

Status AfsMetadataStore::RemoveData(const Uuid& uuid) {
  trace::Span io_span("io:remove_data", kDataIoAccount);
  storage::SimClock::Attribution account(afs_.server().clock(), kDataIoAccount);
  return afs_.Remove(DataPath(uuid));
}

Status AfsMetadataStore::LockMeta(const Uuid& uuid) {
  trace::Span io_span("io:lock_meta", kMetaIoAccount);
  storage::SimClock::Attribution account(afs_.server().clock(), kMetaIoAccount);
  return afs_.Lock(MetaPath(uuid));
}

Status AfsMetadataStore::UnlockMeta(const Uuid& uuid) {
  trace::Span io_span("io:unlock_meta", kMetaIoAccount);
  storage::SimClock::Attribution account(afs_.server().clock(), kMetaIoAccount);
  return afs_.Unlock(MetaPath(uuid));
}

bool AfsMetadataStore::CacheFresh(const Uuid& uuid,
                                  std::uint64_t storage_version) {
  // Revalidation may issue a FetchStatus RPC — charge it as metadata I/O.
  trace::Span io_span("io:cache_fresh", kMetaIoAccount);
  storage::SimClock::Attribution account(afs_.server().clock(), kMetaIoAccount);
  auto fresh = afs_.Revalidate(MetaPath(uuid), storage_version);
  return fresh.ok() && *fresh;
}

Result<Bytes> AfsMetadataStore::FetchJournal(const std::string& name) {
  trace::Span io_span("io:fetch_journal", kJournalIoAccount);
  storage::SimClock::Attribution account(afs_.server().clock(),
                                         kJournalIoAccount);
  return afs_.Fetch(JournalPath(name));
}

Status AfsMetadataStore::StoreJournal(const std::string& name, ByteSpan data) {
  trace::Span io_span("io:store_journal", kJournalIoAccount);
  storage::SimClock::Attribution account(afs_.server().clock(),
                                         kJournalIoAccount);
  return afs_.Store(JournalPath(name), data);
}

Status AfsMetadataStore::RemoveJournal(const std::string& name) {
  trace::Span io_span("io:remove_journal", kJournalIoAccount);
  storage::SimClock::Attribution account(afs_.server().clock(),
                                         kJournalIoAccount);
  return afs_.Remove(JournalPath(name));
}

std::vector<Result<Bytes>> AfsMetadataStore::FetchJournalBatch(
    const std::vector<std::string>& names) {
  trace::Span io_span("io:fetch_journal_batch", kJournalIoAccount);
  storage::SimClock::Attribution account(afs_.server().clock(),
                                         kJournalIoAccount);
  std::vector<std::string> paths;
  paths.reserve(names.size());
  for (const std::string& name : names) paths.push_back(JournalPath(name));
  return afs_.FetchMany(paths);
}

Result<std::vector<std::string>> AfsMetadataStore::ListJournal() {
  trace::Span io_span("io:list_journal", kJournalIoAccount);
  storage::SimClock::Attribution account(afs_.server().clock(),
                                         kJournalIoAccount);
  const std::string prefix = prefix_ + "j/";
  NEXUS_ASSIGN_OR_RETURN(std::vector<std::string> names, afs_.List(prefix));
  for (std::string& name : names) name.erase(0, prefix.size());
  return names;
}

} // namespace nexus::core
