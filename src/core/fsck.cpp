#include "core/fsck.hpp"

#include <unordered_set>

#include "journal/journal.hpp"

namespace nexus::core {

Result<FsckReport> RunFsck(NexusClient& client, bool deep) {
  FsckReport report;
  NEXUS_ASSIGN_OR_RETURN(report.audit,
                         client.enclave().EcallVerifyVolume(deep));

  // Orphan scan (untrusted is fine: it only *finds garbage*, it cannot
  // make the enclave accept anything).
  std::unordered_set<std::string> reachable;
  for (const Uuid& uuid : report.audit.reachable_meta) {
    reachable.insert("nx/" + uuid.ToString());
  }
  for (const Uuid& uuid : report.audit.reachable_data) {
    reachable.insert("nxd/" + uuid.ToString());
  }

  NEXUS_ASSIGN_OR_RETURN(std::vector<std::string> meta_objects,
                         client.afs().List("nx/"));
  NEXUS_ASSIGN_OR_RETURN(std::vector<std::string> data_objects,
                         client.afs().List("nxd/"));
  for (const auto& name : meta_objects) {
    if (!reachable.contains(name)) report.orphaned_objects.push_back(name);
  }
  for (const auto& name : data_objects) {
    if (!reachable.contains(name)) report.orphaned_objects.push_back(name);
  }

  // Journal objects live under their own namespace and are reachable by
  // construction (the recovery pass consumes them) — report them, but never
  // as orphans. Record objects other than the anchor are committed
  // transactions awaiting checkpoint.
  NEXUS_ASSIGN_OR_RETURN(report.journal_objects, client.afs().List("nxj/"));
  for (const auto& name : report.journal_objects) {
    if (name != std::string("nxj/") + journal::kAnchorName) {
      ++report.uncheckpointed_records;
    }
  }
  return report;
}

Result<std::size_t> ReclaimOrphans(NexusClient& client,
                                   const FsckReport& report) {
  std::size_t removed = 0;
  for (const std::string& name : report.orphaned_objects) {
    NEXUS_RETURN_IF_ERROR(client.afs().Remove(name));
    ++removed;
  }
  return removed;
}

} // namespace nexus::core
