// Untrusted metadata/data store: implements the enclave's ocall interface
// on top of an AFS client.
//
// Objects are plain files on the storage service with obfuscated names
// ("nx/<uuid-hex>" for metadata, "nxd/<uuid-hex>" for bulk data), exactly
// the deployment model of §IV: the volume is just a directory of
// ciphertext objects. Virtual I/O time is attributed to the "meta-io" /
// "data-io" clock accounts so benchmarks can report the paper's breakdown.
#pragma once

#include <mutex>
#include <string>
#include <unordered_map>

#include "enclave/ocalls.hpp"
#include "storage/afs.hpp"

namespace nexus::core {

inline constexpr const char* kMetaIoAccount = "meta-io";
inline constexpr const char* kDataIoAccount = "data-io";
inline constexpr const char* kJournalIoAccount = "journal-io";

class AfsMetadataStore final : public enclave::StorageOcalls {
 public:
  /// `prefix` namespaces one volume's objects on the shared store.
  explicit AfsMetadataStore(storage::AfsClient& afs, std::string prefix = "nx");

  Result<enclave::ObjectBlob> FetchMeta(const Uuid& uuid) override;
  Result<std::uint64_t> StoreMeta(const Uuid& uuid, ByteSpan data) override;
  Status RemoveMeta(const Uuid& uuid) override;
  Result<enclave::ObjectBlob> FetchData(const Uuid& uuid) override;
  Status StoreData(const Uuid& uuid, ByteSpan data,
                   std::uint64_t changed_bytes) override;
  Status RemoveData(const Uuid& uuid) override;
  // Pipelined data-path ocalls, mapped onto the AFS segmented-store RPCs
  // and whole-file-cached ranged reads; all charged as data I/O.
  Result<std::uint64_t> BeginDataStream(const Uuid& uuid,
                                        std::uint64_t total_bytes) override;
  Status StoreDataSegment(std::uint64_t handle, ByteSpan segment) override;
  Status CommitDataStream(std::uint64_t handle,
                          std::uint64_t changed_bytes) override;
  Status AbortDataStream(std::uint64_t handle) override;
  Result<enclave::RangeBlob> FetchDataRange(const Uuid& uuid,
                                            std::uint64_t offset,
                                            std::uint64_t len) override;
  void PrefetchData(const Uuid& uuid, std::uint64_t offset,
                    std::uint64_t len) override;
  Status LockMeta(const Uuid& uuid) override;
  Status UnlockMeta(const Uuid& uuid) override;
  bool CacheFresh(const Uuid& uuid, std::uint64_t storage_version) override;
  Result<Bytes> FetchJournal(const std::string& name) override;
  Status StoreJournal(const std::string& name, ByteSpan data) override;
  Status RemoveJournal(const std::string& name) override;
  Result<std::vector<std::string>> ListJournal() override;
  std::vector<Result<Bytes>> FetchJournalBatch(
      const std::vector<std::string>& names) override;

  [[nodiscard]] std::string MetaPath(const Uuid& uuid) const;
  [[nodiscard]] std::string DataPath(const Uuid& uuid) const;
  [[nodiscard]] std::string JournalPath(const std::string& name) const;

 private:
  storage::AfsClient& afs_;
  std::string prefix_;

  // Sequential-scan detector: a range read that starts exactly where the
  // previous one on the same object ended arms a readahead hint for that
  // object (cheap no-op while the whole-file cache is warm; re-warms the
  // transport's async window after an invalidation mid-scan).
  struct SeqState {
    std::uint64_t next_off = 0;
    std::uint32_t streak = 0;
  };
  std::mutex seq_mu_;
  std::unordered_map<std::string, SeqState> seq_;
};

} // namespace nexus::core
