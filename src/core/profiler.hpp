// Latency accounting for the evaluation's overhead breakdown (§VII-A):
//
//   Enclave runtime  — real compute time spent inside ecalls, measured with
//                      a monotonic clock (accumulated by NexusClient)
//   Metadata I/O     — virtual time of metadata fetch/store/lock RPCs
//   Data I/O         — virtual time of bulk data RPCs
//   Journal I/O      — virtual time of commit-journal record/anchor RPCs
//
// A workload's end-to-end latency is (virtual I/O time) + (real compute
// time); benchmarks combine the two explicitly so nothing double-counts.
// The journal counters come from the enclave's own statistics and let
// benchmarks report the group-commit batching factor (ops per record).
#pragma once

#include <cstdint>

#include "cache/cache_counters.hpp"
#include "cluster/cluster_counters.hpp"
#include "net/net_counters.hpp"
#include "storage/sim_clock.hpp"

namespace nexus::core {

/// Count + percentiles of one latency distribution (from a
/// trace::Histogram). The count is a counter; percentiles are gauges, so a
/// delta keeps the later snapshot's values.
struct LatencySummary {
  std::uint64_t count = 0;
  double p50_ms = 0;
  double p99_ms = 0;

  friend LatencySummary operator-(const LatencySummary& a,
                                  const LatencySummary& b) {
    return LatencySummary{a.count - b.count, a.p50_ms, a.p99_ms};
  }
};

struct JournalCounters {
  std::uint64_t records_committed = 0;
  std::uint64_t ops_committed = 0;
  std::uint64_t ops_deduped = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t ops_checkpointed = 0;
  std::uint64_t records_replayed = 0;
  std::uint64_t ops_replayed = 0;
  std::uint64_t torn_records_discarded = 0;

  friend JournalCounters operator-(const JournalCounters& a,
                                   const JournalCounters& b) {
    return JournalCounters{
        a.records_committed - b.records_committed,
        a.ops_committed - b.ops_committed,
        a.ops_deduped - b.ops_deduped,
        a.checkpoints - b.checkpoints,
        a.ops_checkpointed - b.ops_checkpointed,
        a.records_replayed - b.records_replayed,
        a.ops_replayed - b.ops_replayed,
        a.torn_records_discarded - b.torn_records_discarded,
    };
  }
};

/// Counters from the enclave's parallel chunk-crypto engine. The timing
/// fields are thread-CPU seconds: `worker_busy_seconds` sums every crypto
/// task, `critical_path_seconds` sums each batch's slowest worker — the
/// batch wall time an unloaded machine with as many cores as workers would
/// observe. `saved_seconds` is the surplus (measured wall − critical path)
/// already subtracted from `enclave_seconds`, i.e. how much the worker
/// pool shortened the modeled enclave runtime.
struct ParallelCounters {
  std::uint64_t chunks_encrypted = 0;
  std::uint64_t chunks_decrypted = 0;
  std::uint64_t parallel_batches = 0;
  std::uint64_t segments_streamed = 0;
  std::uint64_t tasks_stolen = 0;
  std::uint64_t peak_queue_depth = 0;
  double worker_busy_seconds = 0;
  double critical_path_seconds = 0;
  double saved_seconds = 0;

  friend ParallelCounters operator-(const ParallelCounters& a,
                                    const ParallelCounters& b) {
    return ParallelCounters{
        a.chunks_encrypted - b.chunks_encrypted,
        a.chunks_decrypted - b.chunks_decrypted,
        a.parallel_batches - b.parallel_batches,
        a.segments_streamed - b.segments_streamed,
        a.tasks_stolen - b.tasks_stolen,
        // Gauge, not a counter: deltas keep the later sample's peak.
        a.peak_queue_depth,
        a.worker_busy_seconds - b.worker_busy_seconds,
        a.critical_path_seconds - b.critical_path_seconds,
        a.saved_seconds - b.saved_seconds,
    };
  }
};

struct ProfileSnapshot {
  double io_seconds = 0; // total virtual (simulated network/server) time
  double enclave_seconds = 0;
  double metadata_io_seconds = 0;
  double data_io_seconds = 0;
  double journal_io_seconds = 0;
  JournalCounters journal;
  ParallelCounters parallel;
  /// Real-network RPC counters (process-global, nonzero only when the run
  /// talks to nexusd through a RemoteBackend). Percentiles are gauges.
  net::NetCounters net;
  /// Object-cache counters (process-global, nonzero only when a
  /// cache::CachedBackend fronts the storage). `dirty_bytes_high_water`
  /// is a gauge.
  cache::CacheCounters cache;
  /// Cluster-client quorum/replication counters (process-global, nonzero
  /// only when a cluster::ClusterBackend fans writes across shards). The
  /// latency fields are gauges.
  cluster::ClusterCounters cluster;
  /// Wall-time distribution of every timed ecall (process-global
  /// trace::GlobalHistogram("ecall")).
  LatencySummary ecall_latency;
  /// Wall-time distribution of durable journal record commits
  /// (trace::GlobalHistogram("journal.commit")).
  LatencySummary journal_commit_latency;
  /// Spans completed by the tracer (0 unless tracing is enabled).
  std::uint64_t trace_spans = 0;

  friend ProfileSnapshot operator-(const ProfileSnapshot& a,
                                   const ProfileSnapshot& b) {
    return ProfileSnapshot{
        a.io_seconds - b.io_seconds,
        a.enclave_seconds - b.enclave_seconds,
        a.metadata_io_seconds - b.metadata_io_seconds,
        a.data_io_seconds - b.data_io_seconds,
        a.journal_io_seconds - b.journal_io_seconds,
        a.journal - b.journal,
        a.parallel - b.parallel,
        a.net - b.net,
        a.cache - b.cache,
        a.cluster - b.cluster,
        a.ecall_latency - b.ecall_latency,
        a.journal_commit_latency - b.journal_commit_latency,
        a.trace_spans - b.trace_spans,
    };
  }
};

} // namespace nexus::core
