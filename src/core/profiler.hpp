// Latency accounting for the evaluation's overhead breakdown (§VII-A):
//
//   Enclave runtime  — real compute time spent inside ecalls, measured with
//                      a monotonic clock (accumulated by NexusClient)
//   Metadata I/O     — virtual time of metadata fetch/store/lock RPCs
//   Data I/O         — virtual time of bulk data RPCs
//
// A workload's end-to-end latency is (virtual I/O time) + (real compute
// time); benchmarks combine the two explicitly so nothing double-counts.
#pragma once

#include <cstdint>

#include "storage/sim_clock.hpp"

namespace nexus::core {

struct ProfileSnapshot {
  double io_seconds = 0; // total virtual (simulated network/server) time
  double enclave_seconds = 0;
  double metadata_io_seconds = 0;
  double data_io_seconds = 0;

  friend ProfileSnapshot operator-(const ProfileSnapshot& a,
                                   const ProfileSnapshot& b) {
    return ProfileSnapshot{
        a.io_seconds - b.io_seconds,
        a.enclave_seconds - b.enclave_seconds,
        a.metadata_io_seconds - b.metadata_io_seconds,
        a.data_io_seconds - b.data_io_seconds,
    };
  }
};

} // namespace nexus::core
