// Latency accounting for the evaluation's overhead breakdown (§VII-A):
//
//   Enclave runtime  — real compute time spent inside ecalls, measured with
//                      a monotonic clock (accumulated by NexusClient)
//   Metadata I/O     — virtual time of metadata fetch/store/lock RPCs
//   Data I/O         — virtual time of bulk data RPCs
//   Journal I/O      — virtual time of commit-journal record/anchor RPCs
//
// A workload's end-to-end latency is (virtual I/O time) + (real compute
// time); benchmarks combine the two explicitly so nothing double-counts.
// The journal counters come from the enclave's own statistics and let
// benchmarks report the group-commit batching factor (ops per record).
#pragma once

#include <cstdint>

#include "storage/sim_clock.hpp"

namespace nexus::core {

struct JournalCounters {
  std::uint64_t records_committed = 0;
  std::uint64_t ops_committed = 0;
  std::uint64_t ops_deduped = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t ops_checkpointed = 0;
  std::uint64_t records_replayed = 0;
  std::uint64_t ops_replayed = 0;
  std::uint64_t torn_records_discarded = 0;

  friend JournalCounters operator-(const JournalCounters& a,
                                   const JournalCounters& b) {
    return JournalCounters{
        a.records_committed - b.records_committed,
        a.ops_committed - b.ops_committed,
        a.ops_deduped - b.ops_deduped,
        a.checkpoints - b.checkpoints,
        a.ops_checkpointed - b.ops_checkpointed,
        a.records_replayed - b.records_replayed,
        a.ops_replayed - b.ops_replayed,
        a.torn_records_discarded - b.torn_records_discarded,
    };
  }
};

struct ProfileSnapshot {
  double io_seconds = 0; // total virtual (simulated network/server) time
  double enclave_seconds = 0;
  double metadata_io_seconds = 0;
  double data_io_seconds = 0;
  double journal_io_seconds = 0;
  JournalCounters journal;

  friend ProfileSnapshot operator-(const ProfileSnapshot& a,
                                   const ProfileSnapshot& b) {
    return ProfileSnapshot{
        a.io_seconds - b.io_seconds,
        a.enclave_seconds - b.enclave_seconds,
        a.metadata_io_seconds - b.metadata_io_seconds,
        a.data_io_seconds - b.data_io_seconds,
        a.journal_io_seconds - b.journal_io_seconds,
        a.journal - b.journal,
    };
  }
};

} // namespace nexus::core
