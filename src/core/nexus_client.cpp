#include "core/nexus_client.hpp"

#include "common/clock.hpp"
#include "common/serial.hpp"

namespace nexus::core {

NexusClient::NexusClient(sgx::EnclaveRuntime& runtime,
                         storage::AfsClient& afs,
                         const ByteArray<32>& intel_root_public_key)
    : afs_(afs),
      store_(afs),
      enclave_(std::make_unique<enclave::NexusEnclave>(runtime, store_,
                                                       intel_root_public_key)),
      runtime_(runtime) {}

template <typename F>
auto NexusClient::TimedEcall(const char* name, F&& f) {
  trace::Span span(name, "ecall");
  const std::uint64_t t0 = MonotonicNanos();
  auto result = f();
  // Enclave runtime is *real* compute time, accumulated separately from
  // the virtual I/O clock so a benchmark can combine wall time and
  // simulated I/O without double counting (§VII-A breakdown).
  double seconds = static_cast<double>(MonotonicNanos() - t0) * 1e-9;
  // When the chunk-crypto pool ran on a host with fewer cores than
  // workers, the wall time above serialized work that an adequately
  // provisioned machine would overlap. The enclave reports that surplus
  // (wall − per-batch critical path, measured via thread-CPU time); on a
  // host with enough cores it is ~0 and this is a no-op.
  seconds -= enclave_->TakeParallelSavedSeconds();
  const double adjusted = seconds > 0 ? seconds : 0;
  enclave_seconds_ += adjusted;
  // Per-ecall latency distributions, cheap enough to be always on. The
  // aggregate feeds ProfileSnapshot.ecall_latency; the named one lets
  // tests and tools drill into a single operation.
  static trace::Histogram& all_ecalls = trace::GlobalHistogram("ecall");
  all_ecalls.RecordSeconds(adjusted);
  trace::GlobalHistogram(name).RecordSeconds(adjusted);
  return result;
}

// ---- lifecycle -----------------------------------------------------------------

Result<NexusClient::VolumeHandle> NexusClient::CreateVolume(
    const UserKey& owner, const enclave::VolumeConfig& config) {
  NEXUS_ASSIGN_OR_RETURN(
      enclave::NexusEnclave::CreateVolumeResult result,
      TimedEcall("ecall:create_volume", [&] {
        return enclave_->EcallCreateVolume(owner.name, owner.public_key(), config);
      }));
  return VolumeHandle{result.volume_uuid, std::move(result.sealed_rootkey)};
}

Status NexusClient::Mount(const UserKey& user, const Uuid& volume_uuid,
                          ByteSpan sealed_rootkey) {
  // Step 1-2: present key + sealed rootkey, receive nonce.
  NEXUS_ASSIGN_OR_RETURN(ByteArray<16> nonce, TimedEcall("ecall:auth_challenge", [&] {
    return enclave_->EcallAuthChallenge(user.public_key(), sealed_rootkey,
                                        volume_uuid);
  }));
  // Step 3 (outside the enclave): the user signs nonce || encrypted
  // supernode with their private key.
  NEXUS_ASSIGN_OR_RETURN(Bytes supernode_blob,
                         afs_.Fetch(store_.MetaPath(volume_uuid)));
  const ByteArray<64> signature = user.Sign(Concat(nonce, supernode_blob));
  // Steps 4-5: the enclave verifies and mounts.
  return TimedEcall("ecall:auth_response", [&] { return enclave_->EcallAuthResponse(signature); });
}

Status NexusClient::Unmount() {
  return TimedEcall("ecall:unmount", [&] { return enclave_->EcallUnmount(); });
}

// ---- filesystem ------------------------------------------------------------------

Status NexusClient::Touch(const std::string& path) {
  return TimedEcall("ecall:touch", [&] {
    return enclave_->EcallTouch(path, enclave::EntryType::kFile);
  });
}

Status NexusClient::Mkdir(const std::string& path) {
  return TimedEcall("ecall:mkdir", [&] {
    return enclave_->EcallTouch(path, enclave::EntryType::kDirectory);
  });
}

Status NexusClient::Remove(const std::string& path) {
  return TimedEcall("ecall:remove", [&] { return enclave_->EcallRemove(path); });
}

Result<enclave::Attributes> NexusClient::Lookup(const std::string& path) {
  return TimedEcall("ecall:lookup", [&] { return enclave_->EcallLookup(path); });
}

Result<std::vector<enclave::DirEntry>> NexusClient::ListDir(
    const std::string& path) {
  return TimedEcall("ecall:filldir", [&] { return enclave_->EcallFilldir(path); });
}

Status NexusClient::Symlink(const std::string& target,
                            const std::string& linkpath) {
  return TimedEcall("ecall:symlink", [&] { return enclave_->EcallSymlink(target, linkpath); });
}

Status NexusClient::Hardlink(const std::string& existing,
                             const std::string& linkpath) {
  return TimedEcall("ecall:hardlink", [&] { return enclave_->EcallHardlink(existing, linkpath); });
}

Result<std::string> NexusClient::Readlink(const std::string& path) {
  return TimedEcall("ecall:readlink", [&] { return enclave_->EcallReadlink(path); });
}

Status NexusClient::Rename(const std::string& from, const std::string& to) {
  return TimedEcall("ecall:rename", [&] { return enclave_->EcallRename(from, to); });
}

Status NexusClient::WriteFile(const std::string& path, ByteSpan content) {
  auto attrs = TimedEcall("ecall:lookup", [&] { return enclave_->EcallLookup(path); });
  if (!attrs.ok()) {
    if (attrs.status().code() != ErrorCode::kNotFound) return attrs.status();
    NEXUS_RETURN_IF_ERROR(Touch(path));
  } else if (attrs->type != enclave::EntryType::kFile) {
    return Error(ErrorCode::kInvalidArgument, "not a file: " + path);
  }
  return TimedEcall("ecall:encrypt", [&] { return enclave_->EcallEncrypt(path, content); });
}

Status NexusClient::WriteFileRange(const std::string& path, ByteSpan content,
                                   std::uint64_t dirty_offset,
                                   std::uint64_t dirty_len) {
  return TimedEcall("ecall:encrypt_range", [&] {
    return enclave_->EcallEncryptRange(path, content, dirty_offset, dirty_len);
  });
}

Result<Bytes> NexusClient::ReadFile(const std::string& path) {
  return TimedEcall("ecall:decrypt", [&] { return enclave_->EcallDecrypt(path); });
}

// ---- access control ---------------------------------------------------------------

Status NexusClient::AddUser(const std::string& name,
                            const ByteArray<32>& public_key) {
  return TimedEcall("ecall:add_user", [&] { return enclave_->EcallAddUser(name, public_key); });
}

Status NexusClient::RemoveUser(const std::string& name) {
  return TimedEcall("ecall:remove_user", [&] { return enclave_->EcallRemoveUser(name); });
}

Result<std::vector<enclave::UserRecord>> NexusClient::ListUsers() {
  return TimedEcall("ecall:list_users", [&] { return enclave_->EcallListUsers(); });
}

Status NexusClient::SetAcl(const std::string& dirpath,
                           const std::string& username, std::uint8_t perms) {
  return TimedEcall("ecall:set_acl", [&] {
    return enclave_->EcallSetAcl(dirpath, username, perms);
  });
}

// ---- write-ahead journal ------------------------------------------------------------

Status NexusClient::ConfigureJournal(bool enabled,
                                     std::uint64_t checkpoint_interval_ops) {
  return TimedEcall("ecall:configure_journal", [&] {
    return enclave_->EcallConfigureJournal(enabled, checkpoint_interval_ops);
  });
}

Status NexusClient::BeginBatch() {
  return TimedEcall("ecall:begin_batch", [&] { return enclave_->EcallBeginBatch(); });
}

Status NexusClient::CommitBatch() {
  return TimedEcall("ecall:commit_batch", [&] { return enclave_->EcallCommitBatch(); });
}

// ---- key exchange -------------------------------------------------------------------

std::string NexusClient::IdentityPath(const std::string& user) {
  return "keyx/" + user + ".id";
}

std::string NexusClient::GrantPath(const std::string& granter,
                                   const std::string& recipient) {
  return "keyx/" + granter + "~" + recipient + ".grant";
}

Status NexusClient::PublishIdentity(const UserKey& user) {
  NEXUS_ASSIGN_OR_RETURN(Bytes identity,
                         TimedEcall("ecall:export_identity", [&] { return enclave_->EcallExportIdentity(); }));
  // m1 = SIGN(sk_user, quote-blob) | blob — the signature is produced
  // outside the enclave with the user's identity key.
  const ByteArray<64> signature = user.Sign(identity);
  Writer w;
  w.Var(identity);
  w.Raw(signature);
  return afs_.Store(IdentityPath(user.name), w.bytes());
}

Status NexusClient::GrantAccess(const UserKey& granter,
                                const std::string& recipient_name,
                                const ByteArray<32>& recipient_public_key) {
  // Pull the recipient's published identity off the shared store.
  NEXUS_ASSIGN_OR_RETURN(Bytes published, afs_.Fetch(IdentityPath(recipient_name)));
  Reader r(published);
  NEXUS_ASSIGN_OR_RETURN(Bytes identity, r.Var(8192));
  NEXUS_ASSIGN_OR_RETURN(Bytes sig_raw, r.Raw(64));
  if (!r.AtEnd()) {
    return Error(ErrorCode::kInvalidArgument, "trailing identity-file bytes");
  }

  // The enclave verifies signature + quote and produces the wrapped key.
  NEXUS_ASSIGN_OR_RETURN(Bytes grant, TimedEcall("ecall:grant_rootkey", [&] {
    return enclave_->EcallGrantRootkey(identity, ToArray<64>(sig_raw),
                                       recipient_public_key);
  }));

  const ByteArray<64> grant_sig = granter.Sign(grant);
  Writer w;
  w.Var(grant);
  w.Raw(grant_sig);
  NEXUS_RETURN_IF_ERROR(afs_.Store(GrantPath(granter.name, recipient_name),
                                   w.bytes()));

  // Authorize the identity in the supernode user table.
  return AddUser(recipient_name, recipient_public_key);
}

Result<NexusClient::VolumeHandle> NexusClient::AcceptGrant(
    const UserKey& user, const std::string& granter_name,
    const ByteArray<32>& granter_public_key, const Uuid& volume_uuid) {
  NEXUS_ASSIGN_OR_RETURN(Bytes published,
                         afs_.Fetch(GrantPath(granter_name, user.name)));
  Reader r(published);
  NEXUS_ASSIGN_OR_RETURN(Bytes grant, r.Var(8192));
  NEXUS_ASSIGN_OR_RETURN(Bytes sig_raw, r.Raw(64));
  if (!r.AtEnd()) {
    return Error(ErrorCode::kInvalidArgument, "trailing grant-file bytes");
  }

  NEXUS_ASSIGN_OR_RETURN(Bytes sealed_rootkey, TimedEcall("ecall:accept_rootkey", [&] {
    return enclave_->EcallAcceptRootkey(grant, ToArray<64>(sig_raw),
                                        granter_public_key);
  }));
  return VolumeHandle{volume_uuid, std::move(sealed_rootkey)};
}

// ---- synchronous PFS exchange (§VI-B) ----------------------------------------

namespace {
std::string OfferPath(const std::string& user) { return "keyx/" + user + ".offer"; }
std::string EphemeralGrantPath(const std::string& granter,
                               const std::string& recipient) {
  return "keyx/" + granter + "~" + recipient + ".pfs-grant";
}
} // namespace

Status NexusClient::PublishEphemeralOffer(const UserKey& user) {
  NEXUS_ASSIGN_OR_RETURN(Bytes offer,
                         TimedEcall("ecall:ephemeral_offer", [&] { return enclave_->EcallEphemeralOffer(); }));
  const ByteArray<64> signature = user.Sign(offer);
  Writer w;
  w.Var(offer);
  w.Raw(signature);
  return afs_.Store(OfferPath(user.name), w.bytes());
}

Status NexusClient::GrantAccessEphemeral(
    const UserKey& granter, const std::string& recipient_name,
    const ByteArray<32>& recipient_public_key) {
  NEXUS_ASSIGN_OR_RETURN(Bytes published, afs_.Fetch(OfferPath(recipient_name)));
  Reader r(published);
  NEXUS_ASSIGN_OR_RETURN(Bytes offer, r.Var(8192));
  NEXUS_ASSIGN_OR_RETURN(Bytes sig_raw, r.Raw(64));
  if (!r.AtEnd()) {
    return Error(ErrorCode::kInvalidArgument, "trailing offer-file bytes");
  }

  NEXUS_ASSIGN_OR_RETURN(Bytes grant, TimedEcall("ecall:ephemeral_grant", [&] {
    return enclave_->EcallEphemeralGrant(offer, ToArray<64>(sig_raw),
                                         recipient_public_key);
  }));
  const ByteArray<64> grant_sig = granter.Sign(grant);
  Writer w;
  w.Var(grant);
  w.Raw(grant_sig);
  NEXUS_RETURN_IF_ERROR(
      afs_.Store(EphemeralGrantPath(granter.name, recipient_name), w.bytes()));
  return AddUser(recipient_name, recipient_public_key);
}

Result<NexusClient::VolumeHandle> NexusClient::AcceptEphemeralGrant(
    const UserKey& user, const std::string& granter_name,
    const ByteArray<32>& granter_public_key, const Uuid& volume_uuid) {
  NEXUS_ASSIGN_OR_RETURN(Bytes published,
                         afs_.Fetch(EphemeralGrantPath(granter_name, user.name)));
  Reader r(published);
  NEXUS_ASSIGN_OR_RETURN(Bytes grant, r.Var(8192));
  NEXUS_ASSIGN_OR_RETURN(Bytes sig_raw, r.Raw(64));
  if (!r.AtEnd()) {
    return Error(ErrorCode::kInvalidArgument, "trailing grant-file bytes");
  }
  NEXUS_ASSIGN_OR_RETURN(Bytes sealed_rootkey, TimedEcall("ecall:ephemeral_accept", [&] {
    return enclave_->EcallEphemeralAccept(grant, ToArray<64>(sig_raw),
                                          granter_public_key);
  }));
  return VolumeHandle{volume_uuid, std::move(sealed_rootkey)};
}

Result<Bytes> NexusClient::ExportSealedVersionTable() {
  return TimedEcall("ecall:seal_version_table", [&] { return enclave_->EcallSealVersionTable(); });
}

Status NexusClient::ImportSealedVersionTable(ByteSpan sealed) {
  return TimedEcall("ecall:load_version_table", [&] { return enclave_->EcallLoadVersionTable(sealed); });
}

void NexusClient::DropAllCaches() {
  enclave_->EcallDropCaches();
  afs_.FlushCache();
}

} // namespace nexus::core
