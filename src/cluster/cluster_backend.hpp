// ClusterBackend: a sharded, replicated StorageBackend over N nexusd
// shards (DESIGN.md §11).
//
// This is a CLIENT-side subsystem, in keeping with the NeXUS thesis:
// shards are plain untrusted nexusd object stores that never learn the
// placement or replication policy; all coordination logic runs in the
// client, below the crypto layer, so every replicated byte is already
// ciphertext by the time it fans out. The layering is unchanged —
// ClusterBackend IS a StorageBackend, so CachedBackend, the journal and
// NexusClient compose over it exactly as they do over one RemoteBackend.
//
//   * Placement — a consistent-hash ring with virtual nodes (ring.hpp).
//     An object's REPLICA SET is the first R distinct shards clockwise
//     from its point; membership change moves only the arcs the changed
//     shard covered.
//   * Quorums — Put writes a versioned envelope to the replica set and
//     needs W acks (default majority of R); Get reads until R_q shards
//     answered and returns the envelope with the highest (version,
//     writer) order. Writes that cannot reach an owner SLIDE DOWN the
//     successor list (sloppy quorum): the next healthy successor absorbs
//     the replica, a failover is counted, and read-repair / rebalancing
//     drain it back once the owner returns. This is what lets a 3-shard
//     R=2 cluster keep committing with W=2 while one shard is dead.
//   * Versions — envelopes carry a hybrid logical clock (drawn from an
//     atomic counter seeded with wall time, advanced past every version
//     observed) plus a per-client writer id as tiebreak. Deletes are
//     TOMBSTONE envelopes written through the same quorum path, so a
//     resurrecting replica cannot undo a delete.
//   * Repair — when a quorum read sees divergent replicas, the newest
//     envelope is copied to the stale/missing ones under the object's
//     stripe lock (checking again under the lock, never drawing a new
//     version). A background rebalancer runs the same convergence over
//     the whole keyspace after membership changes, then purges replicas
//     from shards that no longer own them.
//   * Health — consecutive transport failures (server verdicts do not
//     count) eject a shard from candidate sets; a backoff-gated
//     half-open probe reinstates it on the first success.
//
// Thread-safety: full StorageBackend contract. Mutations, read-repair and
// the rebalancer serialize per object name on a stripe-lock array, so
// last-writer-wins is decided by envelope order, not interleaving luck.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster_counters.hpp"
#include "cluster/ring.hpp"
#include "common/bytes.hpp"
#include "common/result.hpp"
#include "net/remote_backend.hpp"
#include "storage/backend.hpp"

namespace nexus::cluster {

// ---- versioned replica envelope ---------------------------------------------

/// What actually lands in a shard's object store: the caller's payload
/// wrapped with the metadata replica convergence needs.
struct Envelope {
  bool tombstone = false;    // a quorum-committed delete marker
  std::uint64_t version = 0; // hybrid logical clock draw
  std::uint64_t writer = 0;  // writer id, total-order tiebreak
  Bytes payload;             // empty for tombstones
};

Bytes EncodeEnvelope(const Envelope& env);
/// Header-only encoding for STREAMED envelopes: same fields, but the
/// payload is "all remaining bytes" (flagged, no length prefix), so the
/// header can hit the wire before the payload length is known. An object
/// streamed as header + raw appends decodes through the same
/// DecodeEnvelope as a buffered one. `env.payload` is ignored.
Bytes EncodeEnvelopeStreamHeader(const Envelope& env);
Result<Envelope> DecodeEnvelope(ByteSpan data);
/// Strict "a supersedes b" in last-writer-wins order: lexicographic on
/// (version, writer).
[[nodiscard]] bool EnvelopeNewer(const Envelope& a, const Envelope& b);

/// Name prefix under which handoff hint markers are stored on shards.
/// Lives in the control-plane namespace (leading 0x01 byte) that List
/// and the rebalancer never treat as data; exposed so nexus-stat can
/// report pending hints per shard.
inline constexpr char kHandoffHintPrefix[] = "\x01nxh/";

// ---- configuration ----------------------------------------------------------

/// One shard: a stable id (hashes onto the ring — reuse the id to reuse
/// the placement) and a factory producing its backend. Production shards
/// are RemoteBackends to nexusd daemons; tests inject MemBackends or
/// fault-wrapped ones.
struct ShardSpec {
  std::string id;
  std::function<Result<std::unique_ptr<storage::StorageBackend>>()> factory;
  /// Optional health-restore hook, run on the maintenance thread after
  /// the shard's first successful RPC ends an eject episode. Connect()
  /// points this at RemoteBackend::Ping so a shard that was down when the
  /// client started renegotiates the protocol on reinstatement instead of
  /// speaking v2 lock-step forever.
  std::function<Status(storage::StorageBackend&)> revive;
};

struct ClusterOptions {
  /// Replicas per object. 0 = NEXUS_REPLICATION env (default 2). Clamped
  /// to the shard count at placement time.
  std::size_t replication = 0;
  /// Write acks required. 0 = majority of replication (R/2 + 1).
  std::size_t write_quorum = 0;
  /// Shard answers required per read. 0 = majority of replication.
  std::size_t read_quorum = 0;
  /// Virtual nodes per shard on the ring.
  std::size_t vnodes = 64;
  /// Consecutive transport failures before a shard is ejected.
  int eject_after = 3;
  /// Reinstatement probe backoff: base * 2^episode, capped.
  int reinstate_backoff_base_ms = 100;
  int reinstate_backoff_cap_ms = 5000;
  /// Version tiebreak identity. 0 = random per instance.
  std::uint64_t writer_id = 0;
  /// Injectable clock (ms, monotone-ish) for the health backoff and the
  /// version-clock seed. Null = wall clock.
  std::function<std::uint64_t()> now_ms;
  /// Run the background rebalance thread (membership changes trigger
  /// passes). Tests that want deterministic passes set false and call
  /// RebalanceNow().
  bool background_rebalance = true;
};

// ---- the backend ------------------------------------------------------------

class ClusterBackend final : public storage::StorageBackend {
 public:
  /// Builds every shard via its factory. Fails if any factory fails or
  /// fewer shards than the write quorum exist.
  static Result<std::unique_ptr<ClusterBackend>> Create(
      std::vector<ShardSpec> shards, ClusterOptions options = {});

  /// TCP convenience: `endpoints` is "host:port,host:port,..."; empty
  /// falls back to the NEXUS_CLUSTER env var. Each endpoint becomes a
  /// RemoteBackend shard (the endpoint string is the shard id).
  static Result<std::unique_ptr<ClusterBackend>> Connect(
      const std::string& endpoints, ClusterOptions options = {},
      net::RemoteBackendOptions remote = {});

  ~ClusterBackend() override;

  // StorageBackend surface. Leases and invalidation push are not offered
  // at cluster level (every read already consults a quorum), so the cache
  // tier above falls back to write-through + TTL exactly as it would over
  // a pre-v4 server.
  Result<Bytes> Get(const std::string& name) override;
  Status Put(const std::string& name, ByteSpan data) override;
  Status Delete(const std::string& name) override;
  bool Exists(const std::string& name) override;
  std::vector<std::string> List(const std::string& prefix) override;
  std::vector<Result<Bytes>> MultiGet(
      const std::vector<std::string>& names) override;
  Result<std::unique_ptr<PutStream>> OpenPutStream(
      const std::string& name) override;
  /// Streaming replicated put: each appended segment fans out to every
  /// replica's pipelined wire stream immediately, so client memory stays
  /// O(in-flight window) instead of O(object) and upload overlaps the
  /// producer. Quorum is evaluated at Commit (straggler replica streams
  /// are aborted); an owner that missed the stream gets a handoff hint.
  Result<std::unique_ptr<PutStream>> OpenUnbufferedPutStream(
      const std::string& name) override;

  // ---- membership -----------------------------------------------------------

  /// Adds a shard: the ring changes immediately (new writes place onto
  /// it) and a DELTA rebalance pass — bounded to the ring arcs whose
  /// owner set changed — is scheduled to migrate them.
  Status AddShard(ShardSpec spec);
  /// Removes a shard from the ring (its backend is dropped). Objects it
  /// held survive on their other replicas; the scheduled delta pass
  /// restores full replication for the moved arcs.
  Status RemoveShard(const std::string& id);

  /// One synchronous rebalance pass. Pending membership deltas are
  /// consumed first (each pass bounded to the moved arcs); with no delta
  /// queued, a full pass converges every object on any shard onto its
  /// ring owners and purges non-owner replicas. Idempotent; safe under
  /// concurrent writes (per-name stripe locks).
  void RebalanceNow();

  /// One synchronous hinted-handoff drain: replays every durable hint
  /// marker whose target owner is reachable, then deletes the hint.
  /// Runs automatically on the maintenance thread after a shard is
  /// reinstated; exposed for deterministic tests.
  void DrainHandoffNow();

  // ---- observability --------------------------------------------------------

  [[nodiscard]] ClusterCounters counters() const;
  [[nodiscard]] std::vector<std::string> ShardIds() const;

  struct ShardHealth {
    std::string id;
    bool ejected = false;
    int consecutive_failures = 0;
    std::uint64_t eject_episodes = 0;
  };
  [[nodiscard]] std::vector<ShardHealth> Health() const;

  [[nodiscard]] std::size_t replication() const noexcept { return replication_; }
  [[nodiscard]] std::size_t write_quorum() const noexcept { return write_quorum_; }
  [[nodiscard]] std::size_t read_quorum() const noexcept { return read_quorum_; }

 private:
  friend class BufferedClusterPutStream;
  friend class StreamingClusterPutStream;

  struct Shard {
    std::string id;
    std::shared_ptr<storage::StorageBackend> backend;
    std::function<Status(storage::StorageBackend&)> revive;
    mutable std::mutex mu; // guards the health fields below
    int consecutive_failures = 0;
    bool ejected = false;
    bool probing = false;  // a half-open probe is in flight
    int backoff_level = 0; // consecutive failed probes this episode
    bool needs_revive = false; // reinstated; revive hook not yet run
    std::uint64_t eject_until_ms = 0;
    std::uint64_t eject_episodes = 0;
  };
  using ShardPtr = std::shared_ptr<Shard>;

  /// One shard's contribution to a quorum read: transport-ok response,
  /// with the decoded envelope or nullopt for "shard has no replica".
  struct ReadHit {
    ShardPtr shard;
    std::optional<Envelope> envelope;
  };

  ClusterBackend(ClusterOptions options, std::size_t replication,
                 std::size_t write_quorum, std::size_t read_quorum);

  // Versions.
  std::uint64_t DrawVersion();
  void ObserveVersion(std::uint64_t version);

  // Health.
  bool ShardAvailable(Shard& shard);
  void RecordShardOutcome(Shard& shard, bool transport_ok);

  // Shard RPC wrappers: time into the "cluster.rpc" histogram, bump
  // rpc/failure counters, feed the health tracker.
  Result<Bytes> ShardGet(const ShardPtr& shard, const std::string& name);
  Status ShardPut(const ShardPtr& shard, const std::string& name,
                  ByteSpan data);
  Status ShardDelete(const ShardPtr& shard, const std::string& name);
  std::vector<Result<Bytes>> ShardMultiGet(
      const ShardPtr& shard, const std::vector<std::string>& names);
  Result<std::vector<std::string>> ShardList(const ShardPtr& shard,
                                             const std::string& prefix);
  /// Bounded-batch listing (wire v6 kListPage when the shard speaks it);
  /// the rebalancer and handoff drainer page with this so a huge shard
  /// never materializes its whole listing in one frame.
  Result<storage::StorageBackend::ListPage> ShardListPage(
      const ShardPtr& shard, const std::string& prefix,
      const std::string& start_after, std::size_t limit);

  /// Extended successor list for `name`: EVERY shard in ring-successor
  /// order (owners first, then the failover tail).
  std::vector<ShardPtr> PreferenceList(const std::string& name) const;

  /// Reads `name` until `read_quorum_` transport-ok answers (kNotFound is
  /// a valid empty answer), sliding down the preference list past dead
  /// shards. Returns the hits, or empty when quorum was unreachable.
  std::vector<ReadHit> QuorumRead(const std::string& name,
                                  bool count_failover);
  /// Best (newest) envelope among hits; nullopt when no replica exists.
  static std::optional<Envelope> BestOf(const std::vector<ReadHit>& hits);
  /// Copies `best` onto responding replicas that were missing/stale.
  /// Caller holds the name's stripe lock.
  void RepairLocked(const std::string& name, const Envelope& best,
                    const std::vector<ReadHit>& hits);
  /// Envelope quorum-write used by Put / Delete / read-repair commit.
  Status QuorumWriteLocked(const std::string& name, const Bytes& encoded);

  std::mutex& StripeFor(const std::string& name);

  void Bump(std::uint64_t ClusterCounters::* field, std::uint64_t n = 1);
  /// Monotone gauge update (instance and global mirror keep the max).
  void GaugeMax(std::uint64_t ClusterCounters::* field, std::uint64_t value);

  [[nodiscard]] std::vector<ShardPtr> SnapshotShards() const;

  /// Leaves a durable hint marker on `holder` (which holds the payload
  /// under the real name) recording that `owner` missed the write.
  void RecordHint(const ShardPtr& holder, const std::string& owner,
                  const std::string& name);

  void RebalanceLoop();
  void RebalancePass();
  /// Arc-bounded pass after a membership change: lists only the shards
  /// that held the moved arcs and converges only names hashing into them.
  void DeltaRebalancePass(const std::vector<MovedArc>& arcs);
  /// Converges one name: newest envelope onto every ring owner, then
  /// purge from non-owners once the owners provably hold it.
  void ConvergeName(const std::string& name, const std::vector<ShardPtr>& all);
  /// Runs pending revive hooks for shards reinstated since the last pass.
  void ReviveShards();
  void DrainHandoffPass();

  ClusterOptions options_;
  const std::size_t replication_;
  const std::size_t write_quorum_;
  const std::size_t read_quorum_;
  std::uint64_t writer_id_ = 0;
  std::atomic<std::uint64_t> version_clock_{0};

  mutable std::mutex membership_mu_; // guards ring_ + shards_
  HashRing ring_;
  std::map<std::string, ShardPtr> shards_;

  std::array<std::mutex, 64> stripes_;

  mutable std::mutex counters_mu_;
  ClusterCounters counters_;

  // Rebalance/maintenance thread: woken by membership changes (queued
  // ring deltas) and shard reinstatements (revive + handoff drain).
  std::mutex rebalance_mu_;
  std::condition_variable rebalance_cv_;
  bool rebalance_pending_ = false;   // full pass requested
  bool maintenance_pending_ = false; // revive hooks + handoff drain
  std::vector<std::vector<MovedArc>> pending_deltas_;
  bool shutdown_ = false;
  std::thread rebalance_thread_;
};

/// Splits "host:port,host:port" (whitespace tolerated) into endpoint
/// strings; exposed for nexus-stat's --cluster mode.
std::vector<std::string> ParseEndpointList(const std::string& endpoints);
/// Splits one "host:port". Returns false on malformed input.
bool SplitHostPort(const std::string& endpoint, std::string* host,
                   std::uint16_t* port);

} // namespace nexus::cluster
