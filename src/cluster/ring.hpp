// Consistent-hash ring with virtual nodes (DESIGN.md §11).
//
// Object names and shard vnodes hash onto one 64-bit circle; an object's
// owners are the first R DISTINCT shards clockwise from the object's
// point. Virtual nodes (default 64 per shard) smooth the load split and —
// the property everything else leans on — keep placement STABLE across
// membership change: adding or removing one shard only moves the keys in
// the arcs that shard's vnodes cover, ~1/N of the space, so rebalancing
// migrates a bounded slice instead of reshuffling the world.
//
// The ring is a value type: ClusterBackend snapshots it under its own
// lock, and the rebalancer diffs an old ring against a new one to find
// the objects whose owner set changed.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace nexus::cluster {

class HashRing {
 public:
  /// `vnodes` points per shard; more = smoother split, bigger ring map.
  explicit HashRing(std::size_t vnodes = 64) : vnodes_(vnodes) {}

  /// Adds a shard id (no-op if present).
  void AddNode(const std::string& id);
  /// Removes a shard id (no-op if absent).
  void RemoveNode(const std::string& id);

  /// The first `r` DISTINCT shards clockwise from `name`'s point, in
  /// successor order (owner first). Fewer when the ring has fewer shards.
  [[nodiscard]] std::vector<std::string> Successors(const std::string& name,
                                                    std::size_t r) const;
  /// Successors(name, 1)[0]; empty string on an empty ring.
  [[nodiscard]] std::string Owner(const std::string& name) const;

  [[nodiscard]] bool Contains(const std::string& id) const;
  [[nodiscard]] std::size_t NodeCount() const { return nodes_.size(); }
  [[nodiscard]] std::vector<std::string> Nodes() const;

  /// The first `r` DISTINCT shards clockwise from an arbitrary ring
  /// point (inclusive) — Successors without the name hash, used by the
  /// delta rebalancer to evaluate owner sets arc by arc.
  [[nodiscard]] std::vector<std::string> SuccessorsAt(std::uint64_t point,
                                                      std::size_t r) const;

  /// All vnode points, sorted ascending. The owner set of every key is
  /// constant between two adjacent points, so a ring diff only needs to
  /// probe one point per arc.
  [[nodiscard]] std::vector<std::uint64_t> Points() const;

  /// Stable 64-bit point for a key (first 8 little-endian bytes of
  /// SHA-256) — exposed so tests can pin the placement function.
  [[nodiscard]] static std::uint64_t HashPoint(const std::string& key);

 private:
  std::size_t vnodes_;
  std::map<std::uint64_t, std::string> ring_; // point -> shard id
  std::map<std::string, std::size_t> nodes_;  // id -> vnode count
};

/// One arc of the hash circle whose owner set changed between two ring
/// snapshots. The arc is (begin, end] — exclusive begin, inclusive end,
/// matching lower_bound placement: a key at a vnode point is served by
/// that vnode. begin >= end wraps through zero (begin == end is the full
/// circle). Keys hashing into the arc were owned by `from` under the old
/// ring and by `to` under the new one (the lists usually overlap — only
/// the difference needs copying).
struct MovedArc {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::vector<std::string> from; // owners under the old ring
  std::vector<std::string> to;   // owners under the new ring
};

/// Diffs two ring snapshots at replication factor `r`: returns the arcs
/// whose owner set changed, walking the union of both rings' vnode
/// points (owner sets are constant between adjacent union points).
/// Adjacent arcs with identical from/to sets are merged. Adding or
/// removing one shard of N yields arcs covering ~1/N of the circle — the
/// bound that makes delta rebalancing O(moved) instead of O(everything).
[[nodiscard]] std::vector<MovedArc> DiffRings(const HashRing& before,
                                              const HashRing& after,
                                              std::size_t r);

} // namespace nexus::cluster
