// Consistent-hash ring with virtual nodes (DESIGN.md §11).
//
// Object names and shard vnodes hash onto one 64-bit circle; an object's
// owners are the first R DISTINCT shards clockwise from the object's
// point. Virtual nodes (default 64 per shard) smooth the load split and —
// the property everything else leans on — keep placement STABLE across
// membership change: adding or removing one shard only moves the keys in
// the arcs that shard's vnodes cover, ~1/N of the space, so rebalancing
// migrates a bounded slice instead of reshuffling the world.
//
// The ring is a value type: ClusterBackend snapshots it under its own
// lock, and the rebalancer diffs an old ring against a new one to find
// the objects whose owner set changed.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace nexus::cluster {

class HashRing {
 public:
  /// `vnodes` points per shard; more = smoother split, bigger ring map.
  explicit HashRing(std::size_t vnodes = 64) : vnodes_(vnodes) {}

  /// Adds a shard id (no-op if present).
  void AddNode(const std::string& id);
  /// Removes a shard id (no-op if absent).
  void RemoveNode(const std::string& id);

  /// The first `r` DISTINCT shards clockwise from `name`'s point, in
  /// successor order (owner first). Fewer when the ring has fewer shards.
  [[nodiscard]] std::vector<std::string> Successors(const std::string& name,
                                                    std::size_t r) const;
  /// Successors(name, 1)[0]; empty string on an empty ring.
  [[nodiscard]] std::string Owner(const std::string& name) const;

  [[nodiscard]] bool Contains(const std::string& id) const;
  [[nodiscard]] std::size_t NodeCount() const { return nodes_.size(); }
  [[nodiscard]] std::vector<std::string> Nodes() const;

  /// Stable 64-bit point for a key (first 8 little-endian bytes of
  /// SHA-256) — exposed so tests can pin the placement function.
  [[nodiscard]] static std::uint64_t HashPoint(const std::string& key);

 private:
  std::size_t vnodes_;
  std::map<std::uint64_t, std::string> ring_; // point -> shard id
  std::map<std::string, std::size_t> nodes_;  // id -> vnode count
};

} // namespace nexus::cluster
