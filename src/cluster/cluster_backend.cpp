#include "cluster/cluster_backend.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <limits>
#include <random>
#include <set>
#include <unordered_map>

#include "common/serial.hpp"
#include "net/transport.hpp"
#include "trace/trace.hpp"

namespace nexus::cluster {

namespace {

// "NXE1": replica envelope, version 1.
constexpr std::uint32_t kEnvelopeMagic = 0x3145584e;
constexpr std::uint8_t kFlagTombstone = 0x01;
// Payload is "all remaining bytes" (no length prefix) — the streamed
// form, whose header goes out before the payload length is known.
constexpr std::uint8_t kFlagStreamTail = 0x02;

// Control-plane objects live under a prefix no caller name can start
// with (names come from the VFS layer as printable paths); they are
// invisible to List and never migrated by the rebalancer.
constexpr char kControlPrefix = '\x01';
// Handoff hint marker: kHandoffHintPrefix + owner_id + kHintSep +
// object_name, stored on a shard that holds the payload under the real
// name. The marker itself carries no payload.
constexpr char kHintSep = '\x1f';

bool IsControlName(const std::string& name) {
  return !name.empty() && name.front() == kControlPrefix;
}

std::string HintName(const std::string& owner, const std::string& object) {
  std::string out(kHandoffHintPrefix);
  out += owner;
  out += kHintSep;
  out += object;
  return out;
}

bool ParseHintName(const std::string& hint, std::string* owner,
                   std::string* object) {
  const std::size_t prefix = sizeof(kHandoffHintPrefix) - 1;
  if (hint.size() <= prefix || hint.compare(0, prefix, kHandoffHintPrefix) != 0) {
    return false;
  }
  // Shard ids (endpoints or test names) never contain the separator, so
  // the FIRST one splits owner from object even if the object name has
  // exotic bytes.
  const std::size_t sep = hint.find(kHintSep, prefix);
  if (sep == std::string::npos || sep + 1 >= hint.size()) return false;
  *owner = hint.substr(prefix, sep - prefix);
  *object = hint.substr(sep + 1);
  return true;
}

/// How many names one rebalance/drain listing RPC may return.
constexpr std::size_t kListBatch = 512;

std::uint64_t WallMs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

std::uint64_t MonotonicNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::size_t EnvReplication() {
  const char* env = std::getenv("NEXUS_REPLICATION");
  if (env != nullptr && *env != '\0') {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1 && parsed <= 64) return static_cast<std::size_t>(parsed);
  }
  return 2;
}

} // namespace

// ---- envelope codec ---------------------------------------------------------

Bytes EncodeEnvelope(const Envelope& env) {
  Writer w;
  w.U32(kEnvelopeMagic);
  w.U8(env.tombstone ? kFlagTombstone : 0);
  w.U64(env.version);
  w.U64(env.writer);
  w.Var(env.payload);
  return std::move(w).Take();
}

Bytes EncodeEnvelopeStreamHeader(const Envelope& env) {
  Writer w;
  w.U32(kEnvelopeMagic);
  w.U8(static_cast<std::uint8_t>((env.tombstone ? kFlagTombstone : 0) |
                                 kFlagStreamTail));
  w.U64(env.version);
  w.U64(env.writer);
  return std::move(w).Take();
}

Result<Envelope> DecodeEnvelope(ByteSpan data) {
  Reader r(data);
  NEXUS_ASSIGN_OR_RETURN(const std::uint32_t magic, r.U32());
  if (magic != kEnvelopeMagic) {
    return Error(ErrorCode::kIntegrityViolation, "bad envelope magic");
  }
  NEXUS_ASSIGN_OR_RETURN(const std::uint8_t flags, r.U8());
  if ((flags & ~(kFlagTombstone | kFlagStreamTail)) != 0) {
    return Error(ErrorCode::kIntegrityViolation, "unknown envelope flags");
  }
  Envelope env;
  env.tombstone = (flags & kFlagTombstone) != 0;
  NEXUS_ASSIGN_OR_RETURN(env.version, r.U64());
  NEXUS_ASSIGN_OR_RETURN(env.writer, r.U64());
  if ((flags & kFlagStreamTail) != 0) {
    NEXUS_ASSIGN_OR_RETURN(env.payload, r.Raw(r.Remaining()));
    return env;
  }
  NEXUS_ASSIGN_OR_RETURN(env.payload, r.Var(net::kMaxObjectBytes));
  if (!r.AtEnd()) {
    return Error(ErrorCode::kIntegrityViolation, "trailing envelope bytes");
  }
  return env;
}

bool EnvelopeNewer(const Envelope& a, const Envelope& b) {
  if (a.version != b.version) return a.version > b.version;
  return a.writer > b.writer;
}

// ---- endpoint parsing -------------------------------------------------------

std::vector<std::string> ParseEndpointList(const std::string& endpoints) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : endpoints) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else if (c != ' ' && c != '\t' && c != '\n') {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

bool SplitHostPort(const std::string& endpoint, std::string* host,
                   std::uint16_t* port) {
  const std::size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == endpoint.size()) {
    return false;
  }
  const long parsed = std::strtol(endpoint.c_str() + colon + 1, nullptr, 10);
  if (parsed < 1 || parsed > 65535) return false;
  *host = endpoint.substr(0, colon);
  *port = static_cast<std::uint16_t>(parsed);
  return true;
}

// ---- put streams ------------------------------------------------------------

// Default streamed put: buffers client-side and commits through the
// quorum Put, so the atomicity story ("readers see old or new, never a
// prefix") holds per replica exactly as it does for a plain Put — and a
// mid-stream transport blip costs nothing, the buffered bytes just go
// out on the retry. The price is O(object) client memory.
class BufferedClusterPutStream final
    : public storage::StorageBackend::PutStream {
 public:
  BufferedClusterPutStream(ClusterBackend& parent, std::string name)
      : parent_(parent), name_(std::move(name)) {}

  Status Append(ByteSpan data) override {
    if (buf_.size() + data.size() > net::kMaxObjectBytes) {
      return Error(ErrorCode::kInvalidArgument, "streamed object too large");
    }
    nexus::Append(buf_, data);
    parent_.GaugeMax(&ClusterCounters::stream_put_buffered_high_water_bytes,
                     buf_.size());
    return Status::Ok();
  }

  Status Commit() override {
    return parent_.Put(name_, ByteSpan(buf_.data(), buf_.size()));
  }

  void Abort() override { buf_.clear(); }

 private:
  ClusterBackend& parent_;
  std::string name_;
  Bytes buf_;
};

// Streaming replicated put (OpenUnbufferedPutStream): every appended
// segment fans out immediately to one pipelined wire stream per replica,
// so the client retains only the envelope header — peak memory is the
// in-flight window of the underlying mux streams, independent of object
// size — and upload overlaps whatever is producing the bytes.
//
// Placement mirrors QuorumWriteLocked's sloppy quorum at STREAM-OPEN
// time: unavailable owners are slid past onto the next successors (a
// failover is counted). A replica stream that dies mid-put is aborted
// and dropped; the put continues while at least write_quorum streams
// survive, fails fast otherwise. Quorum is evaluated at Commit, under
// the object's stripe lock; owners that missed the stream — slid past
// at open, lost mid-put, or failed at commit — get a durable handoff
// hint on a committed replica, which holds the full payload.
class StreamingClusterPutStream final
    : public storage::StorageBackend::PutStream {
 public:
  StreamingClusterPutStream(ClusterBackend& parent, std::string name)
      : parent_(parent), name_(std::move(name)) {}

  ~StreamingClusterPutStream() override {
    if (!finished_) Abort();
  }

  Status Append(ByteSpan data) override {
    if (finished_) {
      return Error(ErrorCode::kInvalidArgument,
                   "append on finished stream: " + name_);
    }
    if (!begun_) NEXUS_RETURN_IF_ERROR(Begin());
    if (header_.size() + total_bytes_ + data.size() > net::kMaxObjectBytes) {
      return Error(ErrorCode::kInvalidArgument, "streamed object too large");
    }
    total_bytes_ += data.size();
    FanOut(data);
    if (replicas_.size() < needed_) {
      finished_ = true;
      AbortReplicas();
      parent_.Bump(&ClusterCounters::quorum_failures);
      return Error(ErrorCode::kIOError,
                   "write quorum lost mid-stream: " + name_);
    }
    // The cluster layer itself holds only the header; the segment is
    // caller-owned and the wire streams retain nothing after send.
    parent_.GaugeMax(&ClusterCounters::stream_put_buffered_high_water_bytes,
                     header_.size());
    return Status::Ok();
  }

  Status Commit() override {
    if (finished_) {
      return Error(ErrorCode::kInvalidArgument,
                   "commit on finished stream: " + name_);
    }
    if (!begun_) {
      // Zero-byte object: open the replica streams now.
      const Status begun = Begin();
      if (!begun.ok()) {
        finished_ = true;
        return begun;
      }
    }
    finished_ = true;
    const std::lock_guard<std::mutex> lock(parent_.StripeFor(name_));
    std::size_t acks = 0;
    std::set<std::string> committed;
    ClusterBackend::ShardPtr first_committed;
    for (Replica& r : replicas_) {
      parent_.Bump(&ClusterCounters::shard_rpcs);
      const Status st = r.stream->Commit();
      const bool transport_ok = st.ok() || st.code() != ErrorCode::kIOError;
      if (!transport_ok) parent_.Bump(&ClusterCounters::shard_failures);
      parent_.RecordShardOutcome(*r.shard, transport_ok);
      if (!st.ok()) {
        parent_.Bump(&ClusterCounters::stream_put_replica_aborts);
        continue;
      }
      ++acks;
      committed.insert(r.shard->id);
      if (first_committed == nullptr) first_committed = r.shard;
    }
    replicas_.clear();
    if (acks < needed_) {
      parent_.Bump(&ClusterCounters::quorum_failures);
      return Error(ErrorCode::kIOError,
                   "write quorum not reached (" + std::to_string(acks) + "/" +
                       std::to_string(needed_) + " acks)");
    }
    // Sloppy-quorum debt: every true owner that did not commit gets a
    // durable hint beside a replica that did, so the handoff drainer can
    // replay the write once the owner returns — no read has to stumble
    // on the divergence first.
    for (const std::string& owner : owner_ids_) {
      if (committed.contains(owner)) continue;
      parent_.RecordHint(first_committed, owner, name_);
    }
    parent_.Bump(&ClusterCounters::stream_puts);
    return Status::Ok();
  }

  void Abort() override {
    if (finished_) return;
    finished_ = true;
    AbortReplicas();
  }

 private:
  struct Replica {
    ClusterBackend::ShardPtr shard;
    std::unique_ptr<storage::StorageBackend::PutStream> stream;
  };

  /// Draws the version, encodes the stream header and opens up to R
  /// replica streams along the preference list, sliding past unavailable
  /// shards exactly like the buffered quorum write.
  Status Begin() {
    begun_ = true;
    parent_.Bump(&ClusterCounters::quorum_writes);
    Envelope env;
    env.version = parent_.DrawVersion();
    env.writer = parent_.writer_id_;
    header_ = EncodeEnvelopeStreamHeader(env);

    const std::vector<ClusterBackend::ShardPtr> prefs =
        parent_.PreferenceList(name_);
    needed_ = std::min(parent_.write_quorum_, prefs.size());
    if (needed_ == 0) {
      parent_.Bump(&ClusterCounters::quorum_failures);
      return Error(ErrorCode::kIOError, "cluster has no shards");
    }
    const std::size_t owner_count = std::min(parent_.replication_, prefs.size());
    const std::size_t target = owner_count;
    for (std::size_t i = 0; i < prefs.size() && replicas_.size() < target;
         ++i) {
      ClusterBackend::Shard& shard = *prefs[i];
      if (i < owner_count) owner_ids_.push_back(shard.id);
      if (!parent_.ShardAvailable(shard)) continue;
      parent_.Bump(&ClusterCounters::shard_rpcs);
      auto opened = shard.backend->OpenUnbufferedPutStream(name_);
      if (!opened.ok()) {
        parent_.Bump(&ClusterCounters::shard_failures);
        parent_.RecordShardOutcome(shard, false);
        continue;
      }
      // The header append is where a remote stream actually dials, so
      // its verdict is the shard's health signal.
      const Status st = opened.value()->Append(
          ByteSpan(header_.data(), header_.size()));
      const bool transport_ok = st.ok() || st.code() != ErrorCode::kIOError;
      if (!transport_ok) parent_.Bump(&ClusterCounters::shard_failures);
      parent_.RecordShardOutcome(shard, transport_ok);
      if (!st.ok()) continue;
      if (i >= parent_.replication_) {
        parent_.Bump(&ClusterCounters::failovers);
      }
      replicas_.push_back({prefs[i], std::move(opened).value()});
    }
    if (replicas_.size() < needed_) {
      AbortReplicas();
      parent_.Bump(&ClusterCounters::quorum_failures);
      return Error(ErrorCode::kIOError,
                   "write quorum not reached at stream open: " + name_);
    }
    return Status::Ok();
  }

  /// Appends one segment to every live replica stream, dropping (and
  /// aborting) the ones that fail. Segment sends overlap via each
  /// stream's pipelined window; a slow replica only stalls the fan-out
  /// once its window fills.
  void FanOut(ByteSpan data) {
    for (auto it = replicas_.begin(); it != replicas_.end();) {
      parent_.Bump(&ClusterCounters::shard_rpcs);
      const Status st = it->stream->Append(data);
      if (st.ok()) {
        ++it;
        continue;
      }
      const bool transport_ok = st.code() != ErrorCode::kIOError;
      if (!transport_ok) parent_.Bump(&ClusterCounters::shard_failures);
      parent_.RecordShardOutcome(*it->shard, transport_ok);
      parent_.Bump(&ClusterCounters::stream_put_replica_aborts);
      it->stream->Abort();
      it = replicas_.erase(it);
    }
  }

  void AbortReplicas() {
    for (Replica& r : replicas_) r.stream->Abort();
    replicas_.clear();
  }

  ClusterBackend& parent_;
  std::string name_;
  Bytes header_;
  std::vector<Replica> replicas_;
  std::vector<std::string> owner_ids_; // true ring owners at Begin()
  std::size_t needed_ = 0;
  std::size_t total_bytes_ = 0;
  bool begun_ = false;
  bool finished_ = false;
};

// ---- construction -----------------------------------------------------------

ClusterBackend::ClusterBackend(ClusterOptions options, std::size_t replication,
                               std::size_t write_quorum,
                               std::size_t read_quorum)
    : options_(std::move(options)),
      replication_(replication),
      write_quorum_(write_quorum),
      read_quorum_(read_quorum) {
  if (!options_.now_ms) options_.now_ms = WallMs;
  if (options_.writer_id != 0) {
    writer_id_ = options_.writer_id;
  } else {
    std::random_device rd;
    writer_id_ = (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
    if (writer_id_ == 0) writer_id_ = 1;
  }
  // Hybrid logical clock seed: wall ms shifted to leave 2^20 draws per
  // tick. A client with a slow clock still orders correctly against live
  // peers because every decoded envelope advances the clock past it.
  version_clock_.store(options_.now_ms() << 20, std::memory_order_relaxed);
}

Result<std::unique_ptr<ClusterBackend>> ClusterBackend::Create(
    std::vector<ShardSpec> shards, ClusterOptions options) {
  if (shards.empty()) {
    return Error(ErrorCode::kInvalidArgument, "cluster needs at least 1 shard");
  }
  std::size_t replication =
      options.replication != 0 ? options.replication : EnvReplication();
  replication = std::min(replication, shards.size());
  const std::size_t write_quorum = options.write_quorum != 0
                                       ? options.write_quorum
                                       : replication / 2 + 1;
  const std::size_t read_quorum =
      options.read_quorum != 0 ? options.read_quorum : replication / 2 + 1;
  if (write_quorum > shards.size() || read_quorum > shards.size()) {
    return Error(ErrorCode::kInvalidArgument,
                 "quorum larger than the shard count");
  }

  auto cluster = std::unique_ptr<ClusterBackend>(new ClusterBackend(
      std::move(options), replication, write_quorum, read_quorum));
  cluster->ring_ = HashRing(cluster->options_.vnodes);
  for (ShardSpec& spec : shards) {
    if (spec.id.empty() || !spec.factory) {
      return Error(ErrorCode::kInvalidArgument, "shard needs an id + factory");
    }
    if (cluster->shards_.contains(spec.id)) {
      return Error(ErrorCode::kInvalidArgument,
                   "duplicate shard id: " + spec.id);
    }
    NEXUS_ASSIGN_OR_RETURN(auto backend, spec.factory());
    auto shard = std::make_shared<Shard>();
    shard->id = spec.id;
    shard->backend = std::move(backend);
    shard->revive = std::move(spec.revive);
    cluster->ring_.AddNode(spec.id);
    cluster->shards_.emplace(spec.id, std::move(shard));
  }
  if (cluster->options_.background_rebalance) {
    cluster->rebalance_thread_ =
        std::thread([c = cluster.get()] { c->RebalanceLoop(); });
  }
  return cluster;
}

Result<std::unique_ptr<ClusterBackend>> ClusterBackend::Connect(
    const std::string& endpoints, ClusterOptions options,
    net::RemoteBackendOptions remote) {
  std::string spec = endpoints;
  if (spec.empty()) {
    const char* env = std::getenv("NEXUS_CLUSTER");
    if (env != nullptr) spec = env;
  }
  const std::vector<std::string> list = ParseEndpointList(spec);
  if (list.empty()) {
    return Error(ErrorCode::kInvalidArgument,
                 "no cluster endpoints (NEXUS_CLUSTER empty)");
  }
  std::vector<ShardSpec> shards;
  shards.reserve(list.size());
  for (const std::string& endpoint : list) {
    std::string host;
    std::uint16_t port = 0;
    if (!SplitHostPort(endpoint, &host, &port)) {
      return Error(ErrorCode::kInvalidArgument,
                   "malformed endpoint: " + endpoint);
    }
    shards.push_back(ShardSpec{
        endpoint,
        [host, port, remote]() -> Result<std::unique_ptr<storage::StorageBackend>> {
          // Lazy construction, best-effort negotiation: a shard that is
          // down when the client starts must still JOIN the ring (it gets
          // ejected on first failed RPC and reinstated by the health
          // prober), so the eager-Ping Connect() path is wrong here. A
          // shard that misses this Ping just runs v2 lock-step until the
          // process reconnects — correct, merely unbatched.
          net::RemoteBackendOptions client = remote;
          const int connect_ms = client.connect_deadline_ms;
          const int rpc_ms = client.rpc_deadline_ms;
          auto backend = std::make_unique<net::RemoteBackend>(
              [host, port, connect_ms,
               rpc_ms]() -> Result<std::unique_ptr<net::Transport>> {
                NEXUS_ASSIGN_OR_RETURN(
                    std::unique_ptr<net::TcpTransport> t,
                    net::TcpTransport::Dial(host, port, connect_ms, rpc_ms));
                return std::unique_ptr<net::Transport>(std::move(t));
              },
              client);
          (void)backend->Ping();
          return std::unique_ptr<storage::StorageBackend>(std::move(backend));
        },
        // Reinstatement hook: a shard that missed the construction-time
        // Ping (dead at client start) would otherwise speak v2 lock-step
        // until the process restarts. Re-Ping renegotiates the protocol
        // and re-widens the connection windows.
        [](storage::StorageBackend& b) {
          return static_cast<net::RemoteBackend&>(b).Ping();
        }});
  }
  return Create(std::move(shards), std::move(options));
}

ClusterBackend::~ClusterBackend() {
  {
    const std::lock_guard<std::mutex> lock(rebalance_mu_);
    shutdown_ = true;
  }
  rebalance_cv_.notify_all();
  if (rebalance_thread_.joinable()) rebalance_thread_.join();
}

// ---- versions ---------------------------------------------------------------

std::uint64_t ClusterBackend::DrawVersion() {
  return version_clock_.fetch_add(1, std::memory_order_relaxed) + 1;
}

void ClusterBackend::ObserveVersion(std::uint64_t version) {
  std::uint64_t cur = version_clock_.load(std::memory_order_relaxed);
  while (cur < version && !version_clock_.compare_exchange_weak(
                              cur, version, std::memory_order_relaxed)) {
  }
}

// ---- health -----------------------------------------------------------------

bool ClusterBackend::ShardAvailable(Shard& shard) {
  const std::lock_guard<std::mutex> lock(shard.mu);
  if (!shard.ejected) return true;
  if (shard.probing) return false; // someone else holds the half-open slot
  if (options_.now_ms() < shard.eject_until_ms) return false;
  shard.probing = true;
  return true;
}

void ClusterBackend::RecordShardOutcome(Shard& shard, bool transport_ok) {
  bool ejected_now = false;
  bool reinstated_now = false;
  {
    const std::lock_guard<std::mutex> lock(shard.mu);
    if (transport_ok) {
      shard.consecutive_failures = 0;
      shard.backoff_level = 0;
      if (shard.ejected) {
        shard.ejected = false;
        shard.probing = false;
        shard.needs_revive = shard.revive != nullptr;
        reinstated_now = true;
      }
    } else if (shard.ejected) {
      // A half-open probe failed: back off harder before the next one.
      shard.probing = false;
      shard.backoff_level = std::min(shard.backoff_level + 1, 16);
      std::uint64_t delay =
          static_cast<std::uint64_t>(options_.reinstate_backoff_base_ms)
          << shard.backoff_level;
      delay = std::min(
          delay, static_cast<std::uint64_t>(options_.reinstate_backoff_cap_ms));
      shard.eject_until_ms = options_.now_ms() + delay;
    } else {
      ++shard.consecutive_failures;
      if (shard.consecutive_failures >= options_.eject_after) {
        shard.ejected = true;
        shard.probing = false;
        shard.backoff_level = 0;
        shard.eject_until_ms =
            options_.now_ms() +
            static_cast<std::uint64_t>(options_.reinstate_backoff_base_ms);
        ++shard.eject_episodes;
        ejected_now = true;
      }
    }
  }
  if (ejected_now) Bump(&ClusterCounters::shards_ejected);
  if (reinstated_now) {
    Bump(&ClusterCounters::shards_reinstated);
    // Hand the follow-up work (revive hook, handoff drain) to the
    // maintenance thread — this path runs inside hot RPC wrappers.
    {
      const std::lock_guard<std::mutex> lock(rebalance_mu_);
      maintenance_pending_ = true;
    }
    rebalance_cv_.notify_all();
  }
}

// ---- per-shard RPC wrappers -------------------------------------------------

Result<Bytes> ClusterBackend::ShardGet(const ShardPtr& shard,
                                       const std::string& name) {
  Bump(&ClusterCounters::shard_rpcs);
  const std::uint64_t t0 = MonotonicNs();
  Result<Bytes> res = shard->backend->Get(name);
  trace::GlobalHistogram("cluster.rpc").Record(MonotonicNs() - t0);
  const bool transport_ok = res.ok() || res.status().code() != ErrorCode::kIOError;
  if (!transport_ok) Bump(&ClusterCounters::shard_failures);
  RecordShardOutcome(*shard, transport_ok);
  return res;
}

Status ClusterBackend::ShardPut(const ShardPtr& shard, const std::string& name,
                                ByteSpan data) {
  Bump(&ClusterCounters::shard_rpcs);
  const std::uint64_t t0 = MonotonicNs();
  const Status st = shard->backend->Put(name, data);
  trace::GlobalHistogram("cluster.rpc").Record(MonotonicNs() - t0);
  const bool transport_ok = st.ok() || st.code() != ErrorCode::kIOError;
  if (!transport_ok) Bump(&ClusterCounters::shard_failures);
  RecordShardOutcome(*shard, transport_ok);
  return st;
}

Status ClusterBackend::ShardDelete(const ShardPtr& shard,
                                   const std::string& name) {
  Bump(&ClusterCounters::shard_rpcs);
  const std::uint64_t t0 = MonotonicNs();
  const Status st = shard->backend->Delete(name);
  trace::GlobalHistogram("cluster.rpc").Record(MonotonicNs() - t0);
  const bool transport_ok = st.ok() || st.code() != ErrorCode::kIOError;
  if (!transport_ok) Bump(&ClusterCounters::shard_failures);
  RecordShardOutcome(*shard, transport_ok);
  return st;
}

std::vector<Result<Bytes>> ClusterBackend::ShardMultiGet(
    const ShardPtr& shard, const std::vector<std::string>& names) {
  Bump(&ClusterCounters::shard_rpcs);
  const std::uint64_t t0 = MonotonicNs();
  std::vector<Result<Bytes>> res = shard->backend->MultiGet(names);
  trace::GlobalHistogram("cluster.rpc").Record(MonotonicNs() - t0);
  // A transport failure fails the whole batch; a healthy server answers
  // per name. Treat "every entry kIOError" as the transport case.
  bool transport_ok = names.empty();
  for (const auto& r : res) {
    if (r.ok() || r.status().code() != ErrorCode::kIOError) {
      transport_ok = true;
      break;
    }
  }
  if (!transport_ok) Bump(&ClusterCounters::shard_failures);
  RecordShardOutcome(*shard, transport_ok);
  return res;
}

Result<std::vector<std::string>> ClusterBackend::ShardList(
    const ShardPtr& shard, const std::string& prefix) {
  Bump(&ClusterCounters::shard_rpcs);
  const std::uint64_t t0 = MonotonicNs();
  // List has no error channel on the StorageBackend surface; RemoteBackend
  // returns an empty vector on transport failure. Probe liveness with
  // Exists on a name no store holds, so a dead shard is detected and an
  // empty-but-healthy shard is not misdiagnosed.
  std::vector<std::string> names = shard->backend->List(prefix);
  bool transport_ok = true;
  if (names.empty()) {
    const Result<Bytes> probe =
        shard->backend->Get("\x01nexus-cluster-liveness-probe");
    transport_ok =
        probe.ok() || probe.status().code() != ErrorCode::kIOError;
  }
  trace::GlobalHistogram("cluster.rpc").Record(MonotonicNs() - t0);
  if (!transport_ok) {
    Bump(&ClusterCounters::shard_failures);
    RecordShardOutcome(*shard, false);
    return Error(ErrorCode::kIOError, "shard unreachable during List");
  }
  RecordShardOutcome(*shard, true);
  return names;
}

Result<storage::StorageBackend::ListPage> ClusterBackend::ShardListPage(
    const ShardPtr& shard, const std::string& prefix,
    const std::string& start_after, std::size_t limit) {
  Bump(&ClusterCounters::shard_rpcs);
  const std::uint64_t t0 = MonotonicNs();
  storage::StorageBackend::ListPage page =
      shard->backend->ListSome(prefix, start_after, limit);
  // Same blind spot as ShardList: an empty final page and a dead shard
  // look alike, so disambiguate with the liveness probe.
  bool transport_ok = true;
  if (page.names.empty() && !page.more) {
    const Result<Bytes> probe =
        shard->backend->Get("\x01nexus-cluster-liveness-probe");
    transport_ok =
        probe.ok() || probe.status().code() != ErrorCode::kIOError;
  }
  trace::GlobalHistogram("cluster.rpc").Record(MonotonicNs() - t0);
  if (!transport_ok) {
    Bump(&ClusterCounters::shard_failures);
    RecordShardOutcome(*shard, false);
    return Error(ErrorCode::kIOError, "shard unreachable during ListSome");
  }
  RecordShardOutcome(*shard, true);
  return page;
}

// ---- placement --------------------------------------------------------------

std::vector<ClusterBackend::ShardPtr> ClusterBackend::PreferenceList(
    const std::string& name) const {
  const std::lock_guard<std::mutex> lock(membership_mu_);
  const std::vector<std::string> ids =
      ring_.Successors(name, shards_.size());
  std::vector<ShardPtr> out;
  out.reserve(ids.size());
  for (const std::string& id : ids) {
    const auto it = shards_.find(id);
    if (it != shards_.end()) out.push_back(it->second);
  }
  return out;
}

std::mutex& ClusterBackend::StripeFor(const std::string& name) {
  return stripes_[HashRing::HashPoint(name) % stripes_.size()];
}

// ---- quorum machinery -------------------------------------------------------

std::vector<ClusterBackend::ReadHit> ClusterBackend::QuorumRead(
    const std::string& name, bool count_failover) {
  const std::vector<ShardPtr> prefs = PreferenceList(name);
  const std::size_t needed = std::min(read_quorum_, prefs.size());
  std::vector<ReadHit> hits;
  for (std::size_t i = 0; i < prefs.size() && hits.size() < needed; ++i) {
    Shard& shard = *prefs[i];
    if (!ShardAvailable(shard)) continue;
    Result<Bytes> res = ShardGet(prefs[i], name);
    ReadHit hit;
    hit.shard = prefs[i];
    if (res.ok()) {
      Result<Envelope> env = DecodeEnvelope(
          ByteSpan(res.value().data(), res.value().size()));
      if (env.ok()) {
        ObserveVersion(env.value().version);
        hit.envelope = std::move(env).value();
      }
      // A corrupt replica stays a hit with no envelope: the shard
      // answered, and read-repair will overwrite the damage.
    } else if (res.status().code() == ErrorCode::kNotFound) {
      // Valid empty answer.
    } else {
      continue; // transport failure: slide to the next successor
    }
    if (count_failover && i >= replication_) {
      Bump(&ClusterCounters::failovers);
    }
    hits.push_back(std::move(hit));
  }
  if (hits.size() < needed) hits.clear();
  return hits;
}

std::optional<Envelope> ClusterBackend::BestOf(
    const std::vector<ReadHit>& hits) {
  std::optional<Envelope> best;
  for (const ReadHit& hit : hits) {
    if (!hit.envelope) continue;
    if (!best || EnvelopeNewer(*hit.envelope, *best)) best = hit.envelope;
  }
  return best;
}

void ClusterBackend::RepairLocked(const std::string& name,
                                  const Envelope& best,
                                  const std::vector<ReadHit>& hits) {
  Bytes encoded;
  for (const ReadHit& hit : hits) {
    const bool stale =
        !hit.envelope || EnvelopeNewer(best, *hit.envelope);
    if (!stale) continue;
    // Re-check under the stripe lock: the replica may have caught up (or
    // moved past `best`) since the unlocked quorum read sampled it.
    const Result<Bytes> cur = ShardGet(hit.shard, name);
    if (cur.ok()) {
      const Result<Envelope> cur_env = DecodeEnvelope(
          ByteSpan(cur.value().data(), cur.value().size()));
      if (cur_env.ok() && !EnvelopeNewer(best, cur_env.value())) continue;
    } else if (cur.status().code() != ErrorCode::kNotFound) {
      continue; // unreachable right now; the rebalancer will catch it
    }
    if (encoded.empty()) encoded = EncodeEnvelope(best);
    if (ShardPut(hit.shard, name, ByteSpan(encoded.data(), encoded.size()))
            .ok()) {
      Bump(&ClusterCounters::read_repairs);
    }
  }
}

Status ClusterBackend::QuorumWriteLocked(const std::string& name,
                                         const Bytes& encoded) {
  const std::vector<ShardPtr> prefs = PreferenceList(name);
  const std::size_t needed = std::min(write_quorum_, prefs.size());
  if (needed == 0) {
    return Error(ErrorCode::kIOError, "cluster has no shards");
  }
  const std::size_t owner_count = std::min(replication_, prefs.size());
  std::size_t acks = 0;
  ShardPtr first_acked;
  std::vector<std::string> missed_owners;
  for (std::size_t i = 0; i < prefs.size() && acks < needed; ++i) {
    Shard& shard = *prefs[i];
    if (!ShardAvailable(shard)) {
      if (i < owner_count) missed_owners.push_back(shard.id);
      continue;
    }
    const Status st =
        ShardPut(prefs[i], name, ByteSpan(encoded.data(), encoded.size()));
    if (!st.ok()) {
      if (i < owner_count) missed_owners.push_back(shard.id);
      continue;
    }
    ++acks;
    if (first_acked == nullptr) first_acked = prefs[i];
    if (i >= replication_) Bump(&ClusterCounters::failovers);
  }
  if (acks < needed) {
    return Error(ErrorCode::kIOError,
                 "write quorum not reached (" + std::to_string(acks) + "/" +
                     std::to_string(needed) + " acks)");
  }
  // Sloppy-quorum debt: an owner we TRIED and missed gets a durable hint
  // beside an acked replica (which holds the payload under the real
  // name), so the handoff drainer replays the write once the owner
  // returns. Owners past the early-quorum cutoff were never attempted —
  // that is ordinary under-replication, the rebalancer's job.
  if (first_acked != nullptr && !IsControlName(name)) {
    for (const std::string& owner : missed_owners) {
      RecordHint(first_acked, owner, name);
    }
  }
  return Status::Ok();
}

// ---- StorageBackend surface -------------------------------------------------

Result<Bytes> ClusterBackend::Get(const std::string& name) {
  const trace::Span span("cluster.get", "cluster");
  Bump(&ClusterCounters::quorum_reads);
  const std::vector<ReadHit> hits = QuorumRead(name, /*count_failover=*/true);
  if (hits.empty()) {
    Bump(&ClusterCounters::quorum_failures);
    return Error(ErrorCode::kIOError, "read quorum not reached: " + name);
  }
  const std::optional<Envelope> best = BestOf(hits);
  if (!best || best->tombstone) {
    return Error(ErrorCode::kNotFound, "object not found: " + name);
  }
  bool divergent = false;
  for (const ReadHit& hit : hits) {
    if (!hit.envelope || EnvelopeNewer(*best, *hit.envelope)) {
      divergent = true;
      break;
    }
  }
  if (divergent) {
    const std::lock_guard<std::mutex> lock(StripeFor(name));
    RepairLocked(name, *best, hits);
  }
  return best->payload;
}

Status ClusterBackend::Put(const std::string& name, ByteSpan data) {
  const trace::Span span("cluster.put", "cluster");
  Bump(&ClusterCounters::quorum_writes);
  Envelope env;
  env.version = DrawVersion();
  env.writer = writer_id_;
  env.payload = ToBytes(data);
  const Bytes encoded = EncodeEnvelope(env);
  const std::lock_guard<std::mutex> lock(StripeFor(name));
  const Status st = QuorumWriteLocked(name, encoded);
  if (!st.ok()) Bump(&ClusterCounters::quorum_failures);
  return st;
}

Status ClusterBackend::Delete(const std::string& name) {
  const trace::Span span("cluster.delete", "cluster");
  const std::lock_guard<std::mutex> lock(StripeFor(name));
  // Quorum-read first so a delete of a missing object reports kNotFound
  // (the StorageBackend contract) instead of silently planting a marker.
  Bump(&ClusterCounters::quorum_reads);
  const std::vector<ReadHit> hits = QuorumRead(name, /*count_failover=*/true);
  if (hits.empty()) {
    Bump(&ClusterCounters::quorum_failures);
    return Error(ErrorCode::kIOError, "read quorum not reached: " + name);
  }
  const std::optional<Envelope> best = BestOf(hits);
  if (!best || best->tombstone) {
    return Error(ErrorCode::kNotFound, "object not found: " + name);
  }
  Envelope tomb;
  tomb.tombstone = true;
  tomb.version = DrawVersion();
  tomb.writer = writer_id_;
  Bump(&ClusterCounters::quorum_writes);
  const Status st = QuorumWriteLocked(name, EncodeEnvelope(tomb));
  if (!st.ok()) {
    Bump(&ClusterCounters::quorum_failures);
    return st;
  }
  Bump(&ClusterCounters::tombstones_written);
  return Status::Ok();
}

bool ClusterBackend::Exists(const std::string& name) {
  const trace::Span span("cluster.exists", "cluster");
  Bump(&ClusterCounters::quorum_reads);
  const std::vector<ReadHit> hits = QuorumRead(name, /*count_failover=*/false);
  if (hits.empty()) {
    Bump(&ClusterCounters::quorum_failures);
    return false;
  }
  const std::optional<Envelope> best = BestOf(hits);
  return best.has_value() && !best->tombstone;
}

std::vector<std::string> ClusterBackend::List(const std::string& prefix) {
  const trace::Span span("cluster.list", "cluster");
  std::vector<ShardPtr> all;
  {
    const std::lock_guard<std::mutex> lock(membership_mu_);
    all.reserve(shards_.size());
    for (const auto& [_, shard] : shards_) all.push_back(shard);
  }
  std::set<std::string> candidates;
  for (const ShardPtr& shard : all) {
    if (!ShardAvailable(*shard)) continue;
    const Result<std::vector<std::string>> names = ShardList(shard, prefix);
    if (!names.ok()) continue;
    for (const std::string& name : names.value()) {
      // Control-plane objects (handoff hints, probes) are not data.
      if (IsControlName(name)) continue;
      candidates.insert(name);
    }
  }
  // Filter quorum-committed deletes: a name is listed only if its newest
  // envelope is not a tombstone.
  std::vector<std::string> out;
  for (const std::string& name : candidates) {
    const std::vector<ReadHit> hits =
        QuorumRead(name, /*count_failover=*/false);
    const std::optional<Envelope> best = BestOf(hits);
    if (best && !best->tombstone) out.push_back(name);
  }
  return out;
}

std::vector<Result<Bytes>> ClusterBackend::MultiGet(
    const std::vector<std::string>& names) {
  const trace::Span span("cluster.multiget", "cluster");
  // Per name: walk its preference list round by round, but BATCH all
  // names that target the same shard in one MultiGet RPC per round.
  struct PerName {
    std::vector<ShardPtr> prefs;
    std::vector<ReadHit> hits;
    std::size_t next_pref = 0;
    std::size_t needed = 0;
    bool failover_seen = false;
  };
  std::vector<PerName> state(names.size());
  std::size_t max_rounds = 0;
  for (std::size_t i = 0; i < names.size(); ++i) {
    Bump(&ClusterCounters::quorum_reads);
    state[i].prefs = PreferenceList(names[i]);
    state[i].needed = std::min(read_quorum_, state[i].prefs.size());
    max_rounds = std::max(max_rounds, state[i].prefs.size());
  }
  for (std::size_t round = 0; round < max_rounds; ++round) {
    // shard -> indices into `names` probing that shard this round.
    std::unordered_map<Shard*, std::vector<std::size_t>> batches;
    std::unordered_map<Shard*, ShardPtr> keep_alive;
    for (std::size_t i = 0; i < names.size(); ++i) {
      PerName& s = state[i];
      while (s.hits.size() < s.needed && s.next_pref < s.prefs.size()) {
        const ShardPtr& shard = s.prefs[s.next_pref];
        ++s.next_pref;
        if (!ShardAvailable(*shard)) continue;
        batches[shard.get()].push_back(i);
        keep_alive.emplace(shard.get(), shard);
        break; // one probe per name per round
      }
    }
    if (batches.empty()) break;
    for (auto& [shard_raw, indices] : batches) {
      const ShardPtr shard = keep_alive[shard_raw];
      std::vector<std::string> batch_names;
      batch_names.reserve(indices.size());
      for (const std::size_t i : indices) batch_names.push_back(names[i]);
      const std::vector<Result<Bytes>> res = ShardMultiGet(shard, batch_names);
      for (std::size_t j = 0; j < indices.size() && j < res.size(); ++j) {
        PerName& s = state[indices[j]];
        ReadHit hit;
        hit.shard = shard;
        if (res[j].ok()) {
          Result<Envelope> env = DecodeEnvelope(
              ByteSpan(res[j].value().data(), res[j].value().size()));
          if (env.ok()) {
            ObserveVersion(env.value().version);
            hit.envelope = std::move(env).value();
          }
        } else if (res[j].status().code() != ErrorCode::kNotFound) {
          continue; // transport failure: this round contributed nothing
        }
        if (s.next_pref > replication_ && !s.failover_seen) {
          s.failover_seen = true;
          Bump(&ClusterCounters::failovers);
        }
        s.hits.push_back(std::move(hit));
      }
    }
  }
  std::vector<Result<Bytes>> out;
  out.reserve(names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    PerName& s = state[i];
    if (s.hits.size() < s.needed || s.needed == 0) {
      Bump(&ClusterCounters::quorum_failures);
      out.emplace_back(
          Error(ErrorCode::kIOError, "read quorum not reached: " + names[i]));
      continue;
    }
    const std::optional<Envelope> best = BestOf(s.hits);
    if (!best || best->tombstone) {
      out.emplace_back(
          Error(ErrorCode::kNotFound, "object not found: " + names[i]));
      continue;
    }
    bool divergent = false;
    for (const ReadHit& hit : s.hits) {
      if (!hit.envelope || EnvelopeNewer(*best, *hit.envelope)) {
        divergent = true;
        break;
      }
    }
    if (divergent) {
      const std::lock_guard<std::mutex> lock(StripeFor(names[i]));
      RepairLocked(names[i], *best, s.hits);
    }
    out.emplace_back(best->payload);
  }
  return out;
}

Result<std::unique_ptr<storage::StorageBackend::PutStream>>
ClusterBackend::OpenPutStream(const std::string& name) {
  return std::unique_ptr<PutStream>(
      std::make_unique<BufferedClusterPutStream>(*this, name));
}

Result<std::unique_ptr<storage::StorageBackend::PutStream>>
ClusterBackend::OpenUnbufferedPutStream(const std::string& name) {
  return std::unique_ptr<PutStream>(
      std::make_unique<StreamingClusterPutStream>(*this, name));
}

// ---- membership -------------------------------------------------------------

Status ClusterBackend::AddShard(ShardSpec spec) {
  if (spec.id.empty() || !spec.factory) {
    return Error(ErrorCode::kInvalidArgument, "shard needs an id + factory");
  }
  auto built = spec.factory();
  if (!built.ok()) return built.status();
  auto shard = std::make_shared<Shard>();
  shard->id = spec.id;
  shard->backend = std::move(built).value();
  shard->revive = std::move(spec.revive);
  std::vector<MovedArc> delta;
  {
    const std::lock_guard<std::mutex> lock(membership_mu_);
    if (shards_.contains(spec.id)) {
      return Error(ErrorCode::kAlreadyExists, "shard exists: " + spec.id);
    }
    const HashRing before = ring_;
    ring_.AddNode(spec.id);
    // Diff the snapshots while both are in hand: the scheduled pass is
    // then bounded to the arcs this shard actually took over (~1/N of
    // the circle), not the whole keyspace.
    delta = DiffRings(before, ring_, replication_);
    shards_.emplace(spec.id, std::move(shard));
  }
  {
    const std::lock_guard<std::mutex> lock(rebalance_mu_);
    pending_deltas_.push_back(std::move(delta));
  }
  rebalance_cv_.notify_all();
  return Status::Ok();
}

Status ClusterBackend::RemoveShard(const std::string& id) {
  std::vector<MovedArc> delta;
  {
    const std::lock_guard<std::mutex> lock(membership_mu_);
    const auto it = shards_.find(id);
    if (it == shards_.end()) {
      return Error(ErrorCode::kNotFound, "no such shard: " + id);
    }
    const HashRing before = ring_;
    ring_.RemoveNode(id);
    delta = DiffRings(before, ring_, replication_);
    shards_.erase(it);
  }
  {
    const std::lock_guard<std::mutex> lock(rebalance_mu_);
    pending_deltas_.push_back(std::move(delta));
  }
  rebalance_cv_.notify_all();
  return Status::Ok();
}

// ---- rebalancing ------------------------------------------------------------

void ClusterBackend::RebalanceLoop() {
  for (;;) {
    bool full = false;
    bool maintenance = false;
    std::vector<std::vector<MovedArc>> deltas;
    {
      std::unique_lock<std::mutex> lock(rebalance_mu_);
      rebalance_cv_.wait(lock, [this] {
        return rebalance_pending_ || maintenance_pending_ ||
               !pending_deltas_.empty() || shutdown_;
      });
      if (shutdown_) return;
      full = rebalance_pending_;
      maintenance = maintenance_pending_;
      rebalance_pending_ = false;
      maintenance_pending_ = false;
      deltas.swap(pending_deltas_);
    }
    if (maintenance) {
      ReviveShards();
      DrainHandoffPass();
    }
    for (const std::vector<MovedArc>& delta : deltas) {
      DeltaRebalancePass(delta);
    }
    if (full) RebalancePass();
  }
}

void ClusterBackend::RebalanceNow() {
  ReviveShards();
  std::vector<std::vector<MovedArc>> deltas;
  {
    const std::lock_guard<std::mutex> lock(rebalance_mu_);
    deltas.swap(pending_deltas_);
  }
  if (deltas.empty()) {
    RebalancePass();
    return;
  }
  for (const std::vector<MovedArc>& delta : deltas) {
    DeltaRebalancePass(delta);
  }
}

void ClusterBackend::DrainHandoffNow() {
  ReviveShards();
  DrainHandoffPass();
}

std::vector<ClusterBackend::ShardPtr> ClusterBackend::SnapshotShards() const {
  const std::lock_guard<std::mutex> lock(membership_mu_);
  std::vector<ShardPtr> all;
  all.reserve(shards_.size());
  for (const auto& [_, shard] : shards_) all.push_back(shard);
  return all;
}

void ClusterBackend::RebalancePass() {
  const trace::Span span("cluster.rebalance", "cluster");
  Bump(&ClusterCounters::rebalance_passes);
  const std::vector<ShardPtr> all = SnapshotShards();
  // Page through each shard's listing in bounded batches — a huge shard
  // never materializes its whole listing in one frame — converging each
  // new name as it appears. The dedup set is the only O(names) state.
  std::set<std::string> done;
  for (const ShardPtr& shard : all) {
    if (!ShardAvailable(*shard)) continue;
    std::string cursor;
    for (;;) {
      const Result<storage::StorageBackend::ListPage> page =
          ShardListPage(shard, "", cursor, kListBatch);
      if (!page.ok() || page.value().names.empty()) break;
      cursor = page.value().names.back();
      for (const std::string& name : page.value().names) {
        if (IsControlName(name)) continue;
        if (!done.insert(name).second) continue;
        Bump(&ClusterCounters::rebalance_objects_scanned);
        ConvergeName(name, all);
      }
      if (!page.value().more) break;
    }
  }
}

void ClusterBackend::DeltaRebalancePass(const std::vector<MovedArc>& arcs) {
  const trace::Span span("cluster.rebalance.delta", "cluster");
  Bump(&ClusterCounters::rebalance_delta_passes);
  if (arcs.empty()) return;

  // Normalize the (begin, end] arcs into sorted inclusive [lo, hi]
  // intervals (wrap arcs split at zero) for binary-search membership.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> intervals;
  intervals.reserve(arcs.size() + 1);
  for (const MovedArc& arc : arcs) {
    if (arc.begin < arc.end) {
      intervals.emplace_back(arc.begin + 1, arc.end);
    } else {
      if (arc.begin != std::numeric_limits<std::uint64_t>::max()) {
        intervals.emplace_back(arc.begin + 1,
                               std::numeric_limits<std::uint64_t>::max());
      }
      intervals.emplace_back(0, arc.end);
    }
  }
  std::sort(intervals.begin(), intervals.end());
  const auto in_moved_arc = [&intervals](std::uint64_t point) {
    auto it = std::upper_bound(
        intervals.begin(), intervals.end(),
        std::make_pair(point, std::numeric_limits<std::uint64_t>::max()));
    if (it == intervals.begin()) return false;
    --it;
    return point <= it->second;
  };

  // Only the shards that owned or received the moved arcs can hold (or
  // need) the affected objects — list those, not the whole cluster.
  std::set<std::string> source_ids;
  for (const MovedArc& arc : arcs) {
    source_ids.insert(arc.from.begin(), arc.from.end());
    source_ids.insert(arc.to.begin(), arc.to.end());
  }
  const std::vector<ShardPtr> all = SnapshotShards();
  std::set<std::string> done;
  for (const ShardPtr& shard : all) {
    if (!source_ids.contains(shard->id)) continue;
    if (!ShardAvailable(*shard)) continue;
    std::string cursor;
    for (;;) {
      const Result<storage::StorageBackend::ListPage> page =
          ShardListPage(shard, "", cursor, kListBatch);
      if (!page.ok() || page.value().names.empty()) break;
      cursor = page.value().names.back();
      for (const std::string& name : page.value().names) {
        if (IsControlName(name)) continue;
        if (!done.insert(name).second) continue;
        Bump(&ClusterCounters::rebalance_objects_scanned);
        // The O(moved) bound: names outside the moved arcs kept their
        // owner set, so they get no copy (or even read) RPC at all.
        if (!in_moved_arc(HashRing::HashPoint(name))) continue;
        ConvergeName(name, all);
      }
      if (!page.value().more) break;
    }
  }
}

void ClusterBackend::ConvergeName(const std::string& name,
                                  const std::vector<ShardPtr>& all) {
  const std::lock_guard<std::mutex> lock(StripeFor(name));
  // Sample every shard's replica under the stripe lock.
  struct Replica {
    ShardPtr shard;
    std::optional<Envelope> envelope; // nullopt = shard has no replica
  };
  std::vector<Replica> replicas;
  std::set<std::string> unreachable;
  for (const ShardPtr& shard : all) {
    bool in_ring = false;
    {
      const std::lock_guard<std::mutex> mlock(membership_mu_);
      in_ring = shards_.contains(shard->id);
    }
    if (!in_ring) continue;
    if (!ShardAvailable(*shard)) {
      unreachable.insert(shard->id);
      continue;
    }
    const Result<Bytes> res = ShardGet(shard, name);
    if (res.ok()) {
      Result<Envelope> env = DecodeEnvelope(
          ByteSpan(res.value().data(), res.value().size()));
      if (env.ok()) {
        ObserveVersion(env.value().version);
        replicas.push_back({shard, std::move(env).value()});
      } else {
        replicas.push_back({shard, std::nullopt}); // corrupt: overwrite
      }
    } else if (res.status().code() == ErrorCode::kNotFound) {
      replicas.push_back({shard, std::nullopt});
    } else {
      unreachable.insert(shard->id);
    }
  }
  std::optional<Envelope> best;
  for (const Replica& r : replicas) {
    if (r.envelope && (!best || EnvelopeNewer(*r.envelope, *best))) {
      best = r.envelope;
    }
  }
  if (!best) return;

  std::set<std::string> owners;
  {
    const std::lock_guard<std::mutex> mlock(membership_mu_);
    const std::vector<std::string> ids =
        ring_.Successors(name, replication_);
    owners.insert(ids.begin(), ids.end());
  }
  const Bytes encoded = EncodeEnvelope(*best);
  bool owners_converged = true;
  for (const Replica& r : replicas) {
    if (!owners.contains(r.shard->id)) continue;
    const bool stale = !r.envelope || EnvelopeNewer(*best, *r.envelope);
    if (!stale) continue;
    if (ShardPut(r.shard, name, ByteSpan(encoded.data(), encoded.size()))
            .ok()) {
      Bump(&ClusterCounters::rebalance_objects_moved);
      Bump(&ClusterCounters::rebalance_bytes_moved, encoded.size());
    } else {
      owners_converged = false;
    }
  }
  for (const std::string& owner : owners) {
    if (unreachable.contains(owner)) owners_converged = false;
    bool sampled = false;
    for (const Replica& r : replicas) {
      if (r.shard->id == owner) sampled = true;
    }
    if (!sampled) owners_converged = false;
  }
  // Purge from non-owners only once every owner provably holds the
  // newest envelope — otherwise a sloppy-quorum replica might be the
  // sole survivor.
  if (!owners_converged) return;
  for (const Replica& r : replicas) {
    if (owners.contains(r.shard->id) || !r.envelope) continue;
    if (ShardDelete(r.shard, name).ok()) {
      Bump(&ClusterCounters::rebalance_objects_purged);
    }
  }
}

// ---- hinted handoff ---------------------------------------------------------

void ClusterBackend::RecordHint(const ShardPtr& holder,
                                const std::string& owner,
                                const std::string& name) {
  // The marker is empty: the payload already sits on `holder` under the
  // real name, and the drainer re-reads it at replay time anyway (it may
  // have been superseded by then).
  if (ShardPut(holder, HintName(owner, name), ByteSpan()).ok()) {
    Bump(&ClusterCounters::handoff_hints_recorded);
  }
}

void ClusterBackend::DrainHandoffPass() {
  const trace::Span span("cluster.handoff", "cluster");
  const std::vector<ShardPtr> all = SnapshotShards();
  for (const ShardPtr& holder : all) {
    if (!ShardAvailable(*holder)) continue;
    std::string cursor;
    for (;;) {
      const Result<storage::StorageBackend::ListPage> page =
          ShardListPage(holder, kHandoffHintPrefix, cursor, kListBatch);
      if (!page.ok() || page.value().names.empty()) break;
      cursor = page.value().names.back();
      for (const std::string& hint : page.value().names) {
        std::string owner_id;
        std::string object;
        if (!ParseHintName(hint, &owner_id, &object)) {
          if (ShardDelete(holder, hint).ok()) {
            Bump(&ClusterCounters::handoff_hints_dropped);
          }
          continue;
        }
        ShardPtr owner;
        {
          const std::lock_guard<std::mutex> lock(membership_mu_);
          const auto it = shards_.find(owner_id);
          if (it != shards_.end()) owner = it->second;
        }
        if (owner == nullptr) {
          // The owner left the ring; placement changed and the delta
          // rebalance for that membership change covers the object.
          if (ShardDelete(holder, hint).ok()) {
            Bump(&ClusterCounters::handoff_hints_dropped);
          }
          continue;
        }
        if (!ShardAvailable(*owner)) continue; // still down: keep the hint
        bool drained = false;
        {
          const std::lock_guard<std::mutex> lock(StripeFor(object));
          const Result<Bytes> held = ShardGet(holder, object);
          if (!held.ok()) {
            // Purged or unreachable; either way nothing to replay now.
            drained = held.status().code() == ErrorCode::kNotFound;
            if (drained) Bump(&ClusterCounters::handoff_hints_dropped);
          } else {
            const Result<Envelope> env = DecodeEnvelope(
                ByteSpan(held.value().data(), held.value().size()));
            if (!env.ok()) {
              drained = true; // corrupt stand-in replica: hint is useless
              Bump(&ClusterCounters::handoff_hints_dropped);
            } else {
              // Replay only if the owner is missing or strictly older —
              // the write may have been superseded since the hint.
              bool replay = true;
              const Result<Bytes> cur = ShardGet(owner, object);
              if (cur.ok()) {
                const Result<Envelope> cur_env = DecodeEnvelope(
                    ByteSpan(cur.value().data(), cur.value().size()));
                if (cur_env.ok() &&
                    !EnvelopeNewer(env.value(), cur_env.value())) {
                  replay = false; // owner already has this or newer
                  drained = true;
                  Bump(&ClusterCounters::handoff_hints_dropped);
                }
              } else if (cur.status().code() != ErrorCode::kNotFound) {
                replay = false; // owner flapped mid-drain: retry later
              }
              if (replay &&
                  ShardPut(owner, object,
                           ByteSpan(held.value().data(), held.value().size()))
                      .ok()) {
                drained = true;
                Bump(&ClusterCounters::handoff_hints_replayed);
              }
            }
          }
        }
        if (drained) (void)ShardDelete(holder, hint);
      }
      if (!page.value().more) break;
    }
  }
}

// ---- reinstatement revive ---------------------------------------------------

void ClusterBackend::ReviveShards() {
  for (const ShardPtr& shard : SnapshotShards()) {
    bool need = false;
    {
      const std::lock_guard<std::mutex> lock(shard->mu);
      need = shard->needs_revive && shard->revive != nullptr;
      shard->needs_revive = false;
    }
    if (!need) continue;
    const Status st = shard->revive(*shard->backend);
    // Feed the health tracker: a revive that cannot even Ping means the
    // reinstatement was premature.
    RecordShardOutcome(*shard, st.ok() || st.code() != ErrorCode::kIOError);
  }
}

// ---- observability ----------------------------------------------------------

void ClusterBackend::Bump(std::uint64_t ClusterCounters::* field,
                          std::uint64_t n) {
  {
    const std::lock_guard<std::mutex> lock(counters_mu_);
    counters_.*field += n;
  }
  ClusterCounters delta;
  delta.*field = n;
  GlobalClusterAdd(delta);
}

void ClusterBackend::GaugeMax(std::uint64_t ClusterCounters::* field,
                              std::uint64_t value) {
  {
    const std::lock_guard<std::mutex> lock(counters_mu_);
    if (counters_.*field < value) counters_.*field = value;
  }
  ClusterCounters delta;
  delta.*field = value;
  GlobalClusterAdd(delta); // the accumulator keeps the max for gauges
}

ClusterCounters ClusterBackend::counters() const {
  ClusterCounters out;
  {
    const std::lock_guard<std::mutex> lock(counters_mu_);
    out = counters_;
  }
  const trace::Histogram& latency = trace::GlobalHistogram("cluster.rpc");
  if (latency.Count() > 0) {
    out.shard_rpc_p50_ms = latency.PercentileMs(0.50);
    out.shard_rpc_p99_ms = latency.PercentileMs(0.99);
  }
  return out;
}

std::vector<std::string> ClusterBackend::ShardIds() const {
  const std::lock_guard<std::mutex> lock(membership_mu_);
  std::vector<std::string> out;
  out.reserve(shards_.size());
  for (const auto& [id, _] : shards_) out.push_back(id);
  return out;
}

std::vector<ClusterBackend::ShardHealth> ClusterBackend::Health() const {
  std::vector<ShardPtr> all;
  {
    const std::lock_guard<std::mutex> lock(membership_mu_);
    all.reserve(shards_.size());
    for (const auto& [_, shard] : shards_) all.push_back(shard);
  }
  std::vector<ShardHealth> out;
  out.reserve(all.size());
  for (const ShardPtr& shard : all) {
    const std::lock_guard<std::mutex> lock(shard->mu);
    ShardHealth h;
    h.id = shard->id;
    h.ejected = shard->ejected;
    h.consecutive_failures = shard->consecutive_failures;
    h.eject_episodes = shard->eject_episodes;
    out.push_back(std::move(h));
  }
  return out;
}

} // namespace nexus::cluster
