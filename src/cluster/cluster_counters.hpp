// Cluster-client traffic counters.
//
// Same shape as net::NetCounters / cache::CacheCounters: a plain
// aggregate with PR 4 delta semantics (counters subtract, gauges keep the
// later snapshot) plus a process-global mirror so ProfileSnapshot can
// report cluster behavior without threading a ClusterBackend pointer
// through every layer. Latency gauges are fed from the process-wide
// "cluster.rpc" trace::Histogram at snapshot time.
#pragma once

#include <cstdint>

namespace nexus::cluster {

struct ClusterCounters {
  // Quorum ops (client-visible operations, not per-shard RPCs).
  std::uint64_t quorum_reads = 0;
  std::uint64_t quorum_writes = 0;
  std::uint64_t quorum_failures = 0; // ops that could not reach quorum

  // Per-shard RPC traffic underneath the quorum ops.
  std::uint64_t shard_rpcs = 0;
  std::uint64_t shard_failures = 0; // transport-level (kIOError) only

  // Failover / repair / placement.
  std::uint64_t failovers = 0; // a non-owner successor served/absorbed
  std::uint64_t read_repairs = 0;
  std::uint64_t tombstones_written = 0;
  std::uint64_t rebalance_passes = 0;
  std::uint64_t rebalance_objects_moved = 0;
  std::uint64_t rebalance_objects_purged = 0;

  // Delta rebalancing (arc-bounded passes after a membership change).
  std::uint64_t rebalance_delta_passes = 0;
  std::uint64_t rebalance_objects_scanned = 0; // names listed/examined
  std::uint64_t rebalance_bytes_moved = 0;     // payload bytes copied

  // Hinted handoff (sloppy-quorum writes owed to an ejected owner).
  std::uint64_t handoff_hints_recorded = 0;
  std::uint64_t handoff_hints_replayed = 0;
  std::uint64_t handoff_hints_dropped = 0; // superseded or unreadable

  // Streaming replicated puts.
  std::uint64_t stream_puts = 0;
  std::uint64_t stream_put_replica_aborts = 0; // replica streams lost mid-put
  // High-water mark of bytes a single streamed put held buffered
  // client-side (gauge) — the number the O(window) memory bound pins.
  std::uint64_t stream_put_buffered_high_water_bytes = 0;

  // Health tracking.
  std::uint64_t shards_ejected = 0;
  std::uint64_t shards_reinstated = 0;

  // Shard RPC latency (gauges from the "cluster.rpc" histogram).
  double shard_rpc_p50_ms = 0;
  double shard_rpc_p99_ms = 0;

  /// Delta between two snapshots: counters subtract; latency gauges keep
  /// the later snapshot's value.
  friend ClusterCounters operator-(const ClusterCounters& a,
                                   const ClusterCounters& b) {
    ClusterCounters out;
    out.quorum_reads = a.quorum_reads - b.quorum_reads;
    out.quorum_writes = a.quorum_writes - b.quorum_writes;
    out.quorum_failures = a.quorum_failures - b.quorum_failures;
    out.shard_rpcs = a.shard_rpcs - b.shard_rpcs;
    out.shard_failures = a.shard_failures - b.shard_failures;
    out.failovers = a.failovers - b.failovers;
    out.read_repairs = a.read_repairs - b.read_repairs;
    out.tombstones_written = a.tombstones_written - b.tombstones_written;
    out.rebalance_passes = a.rebalance_passes - b.rebalance_passes;
    out.rebalance_objects_moved =
        a.rebalance_objects_moved - b.rebalance_objects_moved;
    out.rebalance_objects_purged =
        a.rebalance_objects_purged - b.rebalance_objects_purged;
    out.rebalance_delta_passes =
        a.rebalance_delta_passes - b.rebalance_delta_passes;
    out.rebalance_objects_scanned =
        a.rebalance_objects_scanned - b.rebalance_objects_scanned;
    out.rebalance_bytes_moved = a.rebalance_bytes_moved - b.rebalance_bytes_moved;
    out.handoff_hints_recorded =
        a.handoff_hints_recorded - b.handoff_hints_recorded;
    out.handoff_hints_replayed =
        a.handoff_hints_replayed - b.handoff_hints_replayed;
    out.handoff_hints_dropped =
        a.handoff_hints_dropped - b.handoff_hints_dropped;
    out.stream_puts = a.stream_puts - b.stream_puts;
    out.stream_put_replica_aborts =
        a.stream_put_replica_aborts - b.stream_put_replica_aborts;
    out.stream_put_buffered_high_water_bytes =
        a.stream_put_buffered_high_water_bytes; // gauge keeps the later
    out.shards_ejected = a.shards_ejected - b.shards_ejected;
    out.shards_reinstated = a.shards_reinstated - b.shards_reinstated;
    out.shard_rpc_p50_ms = a.shard_rpc_p50_ms; // gauges keep the later
    out.shard_rpc_p99_ms = a.shard_rpc_p99_ms;
    return out;
  }
};

/// Folds `delta` into `into`: counters accumulate, latency gauges take the
/// later (non-zero) value. Shared by instance counters and the mirror.
void AccumulateClusterCounters(ClusterCounters& into,
                               const ClusterCounters& delta);

/// Process-wide totals across every ClusterBackend instance, with the
/// latency gauges filled from the "cluster.rpc" histogram. Thread-safe.
[[nodiscard]] ClusterCounters GlobalClusterSnapshot();
void ResetGlobalClusterCounters();
void GlobalClusterAdd(const ClusterCounters& delta);

} // namespace nexus::cluster
