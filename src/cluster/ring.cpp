#include "cluster/ring.hpp"

#include <algorithm>

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"

namespace nexus::cluster {

std::uint64_t HashRing::HashPoint(const std::string& key) {
  const auto digest = crypto::Sha256::Hash(
      ByteSpan(reinterpret_cast<const std::uint8_t*>(key.data()), key.size()));
  std::uint64_t point = 0;
  for (int i = 7; i >= 0; --i) {
    point = (point << 8) | digest[static_cast<std::size_t>(i)];
  }
  return point;
}

void HashRing::AddNode(const std::string& id) {
  if (nodes_.contains(id)) return;
  nodes_.emplace(id, vnodes_);
  for (std::size_t i = 0; i < vnodes_; ++i) {
    // Vnode key: id + "#" + index. A hash collision between two vnodes is
    // resolved deterministically by map insertion order (first wins) —
    // astronomically rare and harmless either way.
    ring_.emplace(HashPoint(id + "#" + std::to_string(i)), id);
  }
}

void HashRing::RemoveNode(const std::string& id) {
  const auto it = nodes_.find(id);
  if (it == nodes_.end()) return;
  nodes_.erase(it);
  for (auto rit = ring_.begin(); rit != ring_.end();) {
    if (rit->second == id) {
      rit = ring_.erase(rit);
    } else {
      ++rit;
    }
  }
}

std::vector<std::string> HashRing::Successors(const std::string& name,
                                              std::size_t r) const {
  return SuccessorsAt(HashPoint(name), r);
}

std::vector<std::string> HashRing::SuccessorsAt(std::uint64_t point,
                                                std::size_t r) const {
  std::vector<std::string> out;
  if (ring_.empty() || r == 0) return out;
  out.reserve(std::min(r, nodes_.size()));
  // Walk clockwise from the point, wrapping once; collect the first r
  // distinct shard ids.
  auto it = ring_.lower_bound(point);
  for (std::size_t steps = 0; steps < ring_.size() && out.size() < r;
       ++steps, ++it) {
    if (it == ring_.end()) it = ring_.begin();
    if (std::find(out.begin(), out.end(), it->second) == out.end()) {
      out.push_back(it->second);
    }
  }
  return out;
}

std::vector<std::uint64_t> HashRing::Points() const {
  std::vector<std::uint64_t> out;
  out.reserve(ring_.size());
  for (const auto& [point, _] : ring_) out.push_back(point);
  return out;
}

std::string HashRing::Owner(const std::string& name) const {
  const auto owners = Successors(name, 1);
  return owners.empty() ? std::string() : owners.front();
}

bool HashRing::Contains(const std::string& id) const {
  return nodes_.contains(id);
}

std::vector<std::string> HashRing::Nodes() const {
  std::vector<std::string> out;
  out.reserve(nodes_.size());
  for (const auto& [id, _] : nodes_) out.push_back(id);
  return out;
}

namespace {

/// Owner-set equality ignoring order: a preference-list reshuffle that
/// keeps the same shards holding the data moves no bytes.
bool SameOwners(std::vector<std::string> a, std::vector<std::string> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

} // namespace

std::vector<MovedArc> DiffRings(const HashRing& before, const HashRing& after,
                                std::size_t r) {
  std::vector<MovedArc> moved;
  // Owner sets are constant between adjacent points of the UNION of both
  // rings: within one such arc neither ring has a vnode, so lower_bound
  // lands on the same successor for every key in the arc.
  std::vector<std::uint64_t> points = before.Points();
  const std::vector<std::uint64_t> after_points = after.Points();
  points.insert(points.end(), after_points.begin(), after_points.end());
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());
  if (points.empty()) return moved;
  for (std::size_t j = 0; j < points.size(); ++j) {
    const std::uint64_t begin = points[j];
    const std::uint64_t end = points[(j + 1) % points.size()];
    // Every key in (begin, end] resolves at `end` (or past it, when end
    // is only the other ring's point) — probing the single point `end`
    // gives the arc's owners under each ring.
    MovedArc arc;
    arc.begin = begin;
    arc.end = end;
    arc.from = before.SuccessorsAt(end, r);
    arc.to = after.SuccessorsAt(end, r);
    if (SameOwners(arc.from, arc.to)) continue;
    // Vnode runs owned by one shard produce long stretches of identical
    // change; merge them so callers iterate O(changed arcs), not
    // O(vnodes).
    if (!moved.empty() && moved.back().end == begin &&
        moved.back().from == arc.from && moved.back().to == arc.to) {
      moved.back().end = end;
    } else {
      moved.push_back(std::move(arc));
    }
  }
  return moved;
}

} // namespace nexus::cluster
