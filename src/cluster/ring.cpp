#include "cluster/ring.hpp"

#include <algorithm>

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"

namespace nexus::cluster {

std::uint64_t HashRing::HashPoint(const std::string& key) {
  const auto digest = crypto::Sha256::Hash(
      ByteSpan(reinterpret_cast<const std::uint8_t*>(key.data()), key.size()));
  std::uint64_t point = 0;
  for (int i = 7; i >= 0; --i) {
    point = (point << 8) | digest[static_cast<std::size_t>(i)];
  }
  return point;
}

void HashRing::AddNode(const std::string& id) {
  if (nodes_.contains(id)) return;
  nodes_.emplace(id, vnodes_);
  for (std::size_t i = 0; i < vnodes_; ++i) {
    // Vnode key: id + "#" + index. A hash collision between two vnodes is
    // resolved deterministically by map insertion order (first wins) —
    // astronomically rare and harmless either way.
    ring_.emplace(HashPoint(id + "#" + std::to_string(i)), id);
  }
}

void HashRing::RemoveNode(const std::string& id) {
  const auto it = nodes_.find(id);
  if (it == nodes_.end()) return;
  nodes_.erase(it);
  for (auto rit = ring_.begin(); rit != ring_.end();) {
    if (rit->second == id) {
      rit = ring_.erase(rit);
    } else {
      ++rit;
    }
  }
}

std::vector<std::string> HashRing::Successors(const std::string& name,
                                              std::size_t r) const {
  std::vector<std::string> out;
  if (ring_.empty() || r == 0) return out;
  out.reserve(std::min(r, nodes_.size()));
  const std::uint64_t point = HashPoint(name);
  // Walk clockwise from the object's point, wrapping once; collect the
  // first r distinct shard ids.
  auto it = ring_.lower_bound(point);
  for (std::size_t steps = 0; steps < ring_.size() && out.size() < r;
       ++steps, ++it) {
    if (it == ring_.end()) it = ring_.begin();
    if (std::find(out.begin(), out.end(), it->second) == out.end()) {
      out.push_back(it->second);
    }
  }
  return out;
}

std::string HashRing::Owner(const std::string& name) const {
  const auto owners = Successors(name, 1);
  return owners.empty() ? std::string() : owners.front();
}

bool HashRing::Contains(const std::string& id) const {
  return nodes_.contains(id);
}

std::vector<std::string> HashRing::Nodes() const {
  std::vector<std::string> out;
  out.reserve(nodes_.size());
  for (const auto& [id, _] : nodes_) out.push_back(id);
  return out;
}

} // namespace nexus::cluster
