#include "cluster/cluster_counters.hpp"

#include <mutex>

#include "trace/trace.hpp"

namespace nexus::cluster {

namespace {

struct GlobalCounters {
  std::mutex mu;
  ClusterCounters totals;
};

GlobalCounters& Globals() {
  static GlobalCounters g;
  return g;
}

} // namespace

void AccumulateClusterCounters(ClusterCounters& into,
                               const ClusterCounters& delta) {
  into.quorum_reads += delta.quorum_reads;
  into.quorum_writes += delta.quorum_writes;
  into.quorum_failures += delta.quorum_failures;
  into.shard_rpcs += delta.shard_rpcs;
  into.shard_failures += delta.shard_failures;
  into.failovers += delta.failovers;
  into.read_repairs += delta.read_repairs;
  into.tombstones_written += delta.tombstones_written;
  into.rebalance_passes += delta.rebalance_passes;
  into.rebalance_objects_moved += delta.rebalance_objects_moved;
  into.rebalance_objects_purged += delta.rebalance_objects_purged;
  into.rebalance_delta_passes += delta.rebalance_delta_passes;
  into.rebalance_objects_scanned += delta.rebalance_objects_scanned;
  into.rebalance_bytes_moved += delta.rebalance_bytes_moved;
  into.handoff_hints_recorded += delta.handoff_hints_recorded;
  into.handoff_hints_replayed += delta.handoff_hints_replayed;
  into.handoff_hints_dropped += delta.handoff_hints_dropped;
  into.stream_puts += delta.stream_puts;
  into.stream_put_replica_aborts += delta.stream_put_replica_aborts;
  if (delta.stream_put_buffered_high_water_bytes >
      into.stream_put_buffered_high_water_bytes) {
    into.stream_put_buffered_high_water_bytes =
        delta.stream_put_buffered_high_water_bytes;
  }
  into.shards_ejected += delta.shards_ejected;
  into.shards_reinstated += delta.shards_reinstated;
  if (delta.shard_rpc_p50_ms != 0) into.shard_rpc_p50_ms = delta.shard_rpc_p50_ms;
  if (delta.shard_rpc_p99_ms != 0) into.shard_rpc_p99_ms = delta.shard_rpc_p99_ms;
}

ClusterCounters GlobalClusterSnapshot() {
  GlobalCounters& g = Globals();
  ClusterCounters out;
  {
    const std::lock_guard<std::mutex> lock(g.mu);
    out = g.totals;
  }
  const trace::Histogram& latency = trace::GlobalHistogram("cluster.rpc");
  if (latency.Count() > 0) {
    out.shard_rpc_p50_ms = latency.PercentileMs(0.50);
    out.shard_rpc_p99_ms = latency.PercentileMs(0.99);
  }
  return out;
}

void ResetGlobalClusterCounters() {
  GlobalCounters& g = Globals();
  const std::lock_guard<std::mutex> lock(g.mu);
  g.totals = ClusterCounters{};
}

void GlobalClusterAdd(const ClusterCounters& delta) {
  GlobalCounters& g = Globals();
  const std::lock_guard<std::mutex> lock(g.mu);
  AccumulateClusterCounters(g.totals, delta);
}

} // namespace nexus::cluster
