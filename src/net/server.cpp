#include "net/server.hpp"

#include <algorithm>
#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <map>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/clock.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"
#include "trace/trace.hpp"

namespace nexus::net {

namespace {

Status Errno(const std::string& what) {
  return Error(ErrorCode::kIOError, what + ": " + std::strerror(errno));
}

} // namespace

NexusdServer::NexusdServer(storage::StorageBackend& backend,
                           NexusdOptions options)
    : backend_(backend), options_(std::move(options)) {}

NexusdServer::~NexusdServer() { Stop(); }

Result<std::unique_ptr<NexusdServer>> NexusdServer::Start(
    storage::StorageBackend& backend, NexusdOptions options) {
  auto server = std::unique_ptr<NexusdServer>(
      new NexusdServer(backend, std::move(options)));

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server->options_.port);
  if (::inet_pton(AF_INET, server->options_.bind_address.c_str(),
                  &addr.sin_addr) != 1) {
    ::close(fd);
    return Error(ErrorCode::kInvalidArgument,
                 "bad bind address: " + server->options_.bind_address);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status err = Errno("bind");
    ::close(fd);
    return err;
  }
  if (::listen(fd, 64) != 0) {
    const Status err = Errno("listen");
    ::close(fd);
    return err;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const Status err = Errno("getsockname");
    ::close(fd);
    return err;
  }

  server->listen_fd_ = fd;
  server->port_ = ntohs(addr.sin_port);
  server->pool_ = std::make_unique<parallel::ThreadPool>(
      std::max<std::size_t>(1, server->options_.workers));
  server->connections_ =
      std::make_unique<parallel::TaskGroup>(server->pool_.get());
  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

void NexusdServer::Stop() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    if (listen_fd_ >= 0) {
      ::shutdown(listen_fd_, SHUT_RDWR);
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    // Unblock every worker parked in a read on a live connection.
    for (const int fd : live_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (connections_) connections_->WaitAll();
}

NexusdServer::Stats NexusdServer::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  Stats out = stats_;
  out.active_connections = live_fds_.size();
  return out;
}

ServerStats NexusdServer::WireStats() const {
  ServerStats out;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    out.connections_accepted = stats_.connections_accepted;
    out.active_connections = live_fds_.size();
    out.rpcs_served = stats_.rpcs_served;
    out.protocol_errors = stats_.protocol_errors;
    out.open_streams = stats_.open_streams;
    out.streams_aborted_on_disconnect = stats_.streams_aborted_on_disconnect;
    out.bytes_received = stats_.bytes_received;
    out.bytes_sent = stats_.bytes_sent;
    for (std::size_t i = static_cast<std::size_t>(Rpc::kPing); i < kRpcSlots;
         ++i) {
      if (per_op_[i].count == 0) continue;
      RpcOpStats row;
      row.rpc = static_cast<std::uint8_t>(i);
      row.count = per_op_[i].count;
      row.bytes_in = per_op_[i].bytes_in;
      row.bytes_out = per_op_[i].bytes_out;
      out.per_op.push_back(row);
    }
  }
  // Histograms are internally synchronized; read them outside mu_.
  for (RpcOpStats& row : out.per_op) {
    const trace::Histogram& h = op_latency_ns_[row.rpc];
    row.p50_ms = h.PercentileMs(0.50);
    row.p99_ms = h.PercentileMs(0.99);
  }
  return out;
}

void NexusdServer::AcceptLoop() {
  for (;;) {
    int listen_fd;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
      listen_fd = listen_fd_;
    }
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return; // listener closed (Stop) or fatal: stop accepting
    }
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        ::close(fd);
        return;
      }
      ++stats_.connections_accepted;
      live_fds_.push_back(fd);
    }
    connections_->Submit(
        [this, fd](parallel::WorkerContext&) { ServeConnection(fd); });
  }
}

void NexusdServer::ServeConnection(int fd) {
  // Block-forever reads: Stop() shutdown()s the fd, which surfaces as a
  // clean "closed by peer" and ends the loop.
  TcpTransport transport(fd, /*io_deadline_ms=*/-1);

  // In-flight put streams, scoped to this connection. Destruction aborts
  // whatever the client never committed (DiskPutStream removes its temp
  // file), so a dropped connection leaves the store untouched.
  std::map<std::uint64_t, std::unique_ptr<storage::StorageBackend::PutStream>>
      streams;
  std::uint64_t next_stream_handle = 1;

  for (;;) {
    auto frame = transport.RecvFrame();
    if (!frame.ok()) break; // disconnect, reset, or Stop()
    const std::uint64_t service_start_ns = MonotonicNanos();

    Reader reader(frame.value());
    Writer response;
    bool close_connection = false;

    std::uint64_t corr = 0;
    auto rpc = ParseRequestHead(reader, &corr);
    if (!rpc.ok()) {
      // Malformed head: the byte stream cannot be trusted any more.
      const std::lock_guard<std::mutex> lock(mu_);
      ++stats_.protocol_errors;
      break;
    }

    // One span per served request, tagged with the client's correlation id
    // so client-side and server-side spans can be matched up.
    trace::Span span(RpcName(rpc.value()), "net.server");
    span.SetCorrelation(corr);

    switch (rpc.value()) {
      case Rpc::kPing: {
        response = BeginResponse(Status::Ok(), corr);
        break;
      }
      case Rpc::kGet: {
        auto name = reader.Str();
        if (!name.ok()) {
          close_connection = true;
          break;
        }
        auto data = backend_.Get(name.value());
        if (data.ok()) {
          response = BeginResponse(Status::Ok(), corr);
          response.Var(data.value());
        } else {
          response = BeginResponse(data.status(), corr);
        }
        break;
      }
      case Rpc::kPut: {
        auto name = reader.Str();
        if (!name.ok()) {
          close_connection = true;
          break;
        }
        auto data = reader.Var(kMaxObjectBytes);
        if (!data.ok()) {
          close_connection = true;
          break;
        }
        response =
            BeginResponse(backend_.Put(name.value(), data.value()), corr);
        break;
      }
      case Rpc::kDelete: {
        auto name = reader.Str();
        if (!name.ok()) {
          close_connection = true;
          break;
        }
        response = BeginResponse(backend_.Delete(name.value()), corr);
        break;
      }
      case Rpc::kExists: {
        auto name = reader.Str();
        if (!name.ok()) {
          close_connection = true;
          break;
        }
        response = BeginResponse(Status::Ok(), corr);
        response.U8(backend_.Exists(name.value()) ? 1 : 0);
        break;
      }
      case Rpc::kList: {
        auto prefix = reader.Str();
        if (!prefix.ok()) {
          close_connection = true;
          break;
        }
        const std::vector<std::string> names = backend_.List(prefix.value());
        std::size_t payload = 0;
        for (const auto& n : names) payload += n.size() + 4;
        if (payload > kMaxObjectBytes) {
          response = BeginResponse(
              Error(ErrorCode::kOutOfRange, "listing exceeds frame bound"),
              corr);
        } else {
          response = BeginResponse(Status::Ok(), corr);
          response.U32(static_cast<std::uint32_t>(names.size()));
          for (const auto& n : names) response.Str(n);
        }
        break;
      }
      case Rpc::kStreamBegin: {
        auto name = reader.Str();
        if (!name.ok()) {
          close_connection = true;
          break;
        }
        auto stream = backend_.OpenPutStream(name.value());
        if (stream.ok()) {
          const std::uint64_t handle = next_stream_handle++;
          streams[handle] = std::move(stream).value();
          response = BeginResponse(Status::Ok(), corr);
          response.U64(handle);
          const std::lock_guard<std::mutex> lock(mu_);
          ++stats_.open_streams;
        } else {
          response = BeginResponse(stream.status(), corr);
        }
        break;
      }
      case Rpc::kStreamAppend: {
        auto handle = reader.U64();
        if (!handle.ok()) {
          close_connection = true;
          break;
        }
        auto segment = reader.Var(kMaxObjectBytes);
        if (!segment.ok()) {
          close_connection = true;
          break;
        }
        const auto it = streams.find(handle.value());
        if (it == streams.end()) {
          response = BeginResponse(
              Error(ErrorCode::kInvalidArgument, "unknown stream handle"),
              corr);
        } else {
          response = BeginResponse(it->second->Append(segment.value()), corr);
        }
        break;
      }
      case Rpc::kStreamCommit: {
        auto handle = reader.U64();
        if (!handle.ok()) {
          close_connection = true;
          break;
        }
        const auto it = streams.find(handle.value());
        if (it == streams.end()) {
          response = BeginResponse(
              Error(ErrorCode::kInvalidArgument, "unknown stream handle"),
              corr);
        } else {
          response = BeginResponse(it->second->Commit(), corr);
          streams.erase(it);
          const std::lock_guard<std::mutex> lock(mu_);
          --stats_.open_streams;
        }
        break;
      }
      case Rpc::kStreamAbort: {
        auto handle = reader.U64();
        if (!handle.ok()) {
          close_connection = true;
          break;
        }
        const auto it = streams.find(handle.value());
        if (it == streams.end()) {
          response = BeginResponse(
              Error(ErrorCode::kInvalidArgument, "unknown stream handle"),
              corr);
        } else {
          it->second->Abort();
          streams.erase(it);
          response = BeginResponse(Status::Ok(), corr);
          const std::lock_guard<std::mutex> lock(mu_);
          --stats_.open_streams;
        }
        break;
      }
      case Rpc::kStats: {
        response = BeginResponse(Status::Ok(), corr);
        EncodeServerStats(response, WireStats());
        break;
      }
    }

    if (close_connection) {
      const std::lock_guard<std::mutex> lock(mu_);
      ++stats_.protocol_errors;
      break;
    }

    const auto op = static_cast<std::size_t>(rpc.value());
    {
      const std::lock_guard<std::mutex> lock(mu_);
      ++stats_.rpcs_served;
      stats_.bytes_received += frame.value().size() + 4;
      stats_.bytes_sent += response.bytes().size() + 4;
      ++per_op_[op].count;
      per_op_[op].bytes_in += frame.value().size();
      per_op_[op].bytes_out += response.bytes().size();
    }
    const bool sent = transport.SendFrame(response.bytes()).ok();
    op_latency_ns_[op].Record(MonotonicNanos() - service_start_ns);
    if (!sent) break;
  }

  {
    const std::lock_guard<std::mutex> lock(mu_);
    stats_.streams_aborted_on_disconnect += streams.size();
    stats_.open_streams -= streams.size();
    live_fds_.erase(std::remove(live_fds_.begin(), live_fds_.end(), fd),
                    live_fds_.end());
  }
  // `transport` closes the fd; `streams` aborts anything uncommitted.
}

} // namespace nexus::net
