#include "net/server.hpp"

#include <algorithm>
#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fcntl.h>
#include <functional>
#include <map>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include "cache/cache_counters.hpp"
#include "common/clock.hpp"
#include "net/reactor.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"
#include "trace/trace.hpp"

namespace nexus::net {

namespace {

Status Errno(const std::string& what) {
  return Error(ErrorCode::kIOError, what + ": " + std::strerror(errno));
}

/// Get/MultiGet bodies at or below this stay inline in the coalesced
/// response segment; larger bodies ride as their own scatter/gather part,
/// uncopied until the socket write.
constexpr std::size_t kInlineBodyBytes = 4096;

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::Ok();
}

} // namespace

// ---- protocol-engine types --------------------------------------------------

/// Response payload as scatter/gather segments. Small replies are one
/// Writer's bytes; large object bodies ride as their own part so framing
/// never copies them into a contiguous buffer — the transport's sendmsg
/// (legacy mode) or the reactor's send queue keeps them separate all the
/// way to the socket.
struct NexusdServer::WireReply {
  std::vector<Bytes> parts;
  std::size_t payload_bytes = 0;

  WireReply() = default;
  explicit WireReply(Writer&& w) { Add(std::move(w)); }

  void Add(Writer&& w) { Add(std::move(w).Take()); }
  void Add(Bytes&& b) {
    payload_bytes += b.size();
    parts.push_back(std::move(b));
  }

  [[nodiscard]] std::vector<ByteSpan> Spans() const {
    std::vector<ByteSpan> out;
    out.reserve(parts.size());
    for (const Bytes& p : parts) {
      if (!p.empty()) out.emplace_back(p.data(), p.size());
    }
    return out;
  }
};

/// One decoded request frame, classified for dispatch.
struct NexusdServer::Dispatch {
  enum class Kind {
    kStateless,     // runs on the rpc pool; replies may leave out of order
    kOrdered,       // per-connection FIFO, one at a time (stream ops)
    kImmediate,     // decoded AND executed in arrival order; reply attached
    kProtocolError, // malformed frame: kill the connection
  };
  Kind kind = Kind::kProtocolError;
  std::size_t op = 0;
  std::uint64_t corr = 0;
  const char* name = "";
  std::function<WireReply()> execute; // kStateless / kOrdered
  WireReply response;                 // kImmediate
  bool subscribed = false; // kImmediate: connection became a lease channel
};

/// Per-connection protocol state shared by both serve modes.
struct NexusdServer::ConnState {
  /// In-flight put streams, scoped to the connection. Destruction aborts
  /// whatever the client never committed (DiskPutStream removes its temp
  /// file), so a dropped connection leaves the store untouched. The name
  /// rides along so Commit can run the lease-break protocol.
  struct OpenStream {
    std::unique_ptr<storage::StorageBackend::PutStream> stream;
    std::string name;
  };

  std::mutex stream_mu; // ordered handlers vs. connection teardown
  std::map<std::uint64_t, OpenStream> streams; // under stream_mu
  std::uint64_t next_stream_handle = 1;        // under stream_mu

  // v4 connection state, decode-thread only: the lease session this data
  // connection belongs to (kLeaseAttach), and the session this connection
  // BECAME the invalidation channel of (kLeaseSubscribe).
  std::uint64_t attached_session = 0;
  std::shared_ptr<LeaseSession> subscription;
};

/// One reactor-mode connection.
struct NexusdServer::RConn {
  int fd = -1;

  // ---- loop thread only -----------------------------------------------------
  BufferArena::SlabPtr in;  // input slab; frames parse in place
  std::size_t in_begin = 0; // parse cursor into `in`
  Bytes big;                // oversize-frame bypass buffer (heap)
  std::size_t big_filled = 0;
  std::size_t big_need = 0; // payload bytes expected; 0 = not in big mode
  std::uint32_t interest = Reactor::kRead; // what the reactor is armed for
  bool finalized = false;
  bool migrated = false; // fd ownership moved to a lease-channel transport
  ConnState proto;

  std::mutex mu;
  std::size_t inflight = 0; // handler tasks not yet finished
  struct Ordered {
    Dispatch d;
    std::size_t frame_bytes = 0;
    std::uint64_t start_ns = 0;
  };
  std::deque<Ordered> ordered;  // stream-op FIFO, under mu
  bool ordered_running = false; // under mu: a drainer task exists
  bool paused = false;          // under mu: backpressure, stop reading
  bool maintain_posted = false; // under mu
  bool draining = false; // under mu: EOF / protocol error — finish sends
  bool migrating = false; // under mu: subscribe reply pending, then migrate
  bool dead = false;      // under mu: hard failure — drop everything

  std::mutex send_mu;
  bool send_failed = false; // under send_mu
  /// One queued chunk of outgoing bytes: either an arena slab holding any
  /// number of coalesced small frames, or the scatter/gather parts of one
  /// large frame (its length prefix is parts[0]).
  struct OutBuf {
    BufferArena::SlabPtr slab;
    std::vector<Bytes> parts;
    std::size_t size = 0; // total valid bytes
    std::size_t off = 0;  // bytes already written to the socket
  };
  std::deque<OutBuf> outq; // under send_mu
  bool arm_posted = false; // under send_mu: a maintain pass is scheduled

  ~RConn() {
    if (fd >= 0 && !migrated) ::close(fd);
  }
};

// ---- lifecycle --------------------------------------------------------------

NexusdServer::NexusdServer(storage::StorageBackend& backend,
                           NexusdOptions options)
    : backend_(backend), options_(std::move(options)) {}

NexusdServer::~NexusdServer() { Stop(); }

Result<std::unique_ptr<NexusdServer>> NexusdServer::Start(
    storage::StorageBackend& backend, NexusdOptions options) {
  auto server = std::unique_ptr<NexusdServer>(
      new NexusdServer(backend, std::move(options)));

  server->lease_break_ms_ = server->options_.lease_break_ms;
  if (server->lease_break_ms_ <= 0) {
    const char* env = std::getenv("NEXUS_LEASE_BREAK_MS");
    const int v = (env != nullptr && *env != '\0') ? std::atoi(env) : 0;
    server->lease_break_ms_ = v > 0 ? v : 1000;
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server->options_.port);
  if (::inet_pton(AF_INET, server->options_.bind_address.c_str(),
                  &addr.sin_addr) != 1) {
    ::close(fd);
    return Error(ErrorCode::kInvalidArgument,
                 "bad bind address: " + server->options_.bind_address);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status err = Errno("bind");
    ::close(fd);
    return err;
  }
  // A connection storm is the reactor's reason to exist: give the kernel
  // queue room for one before the loop gets around to accepting.
  if (::listen(fd, 1024) != 0) {
    const Status err = Errno("listen");
    ::close(fd);
    return err;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const Status err = Errno("getsockname");
    ::close(fd);
    return err;
  }

  server->listen_fd_ = fd;
  server->port_ = ntohs(addr.sin_port);
  if (server->options_.rpc_workers > 0) {
    // Handlers live on their own pool: if they shared the connection
    // pool, enough simultaneous connections would occupy every worker
    // with readers and the handlers they wait on could never run.
    server->rpc_pool_ =
        std::make_unique<parallel::ThreadPool>(server->options_.rpc_workers);
  }

  if (server->options_.serve_mode == ServeMode::kReactor) {
    auto reactor = std::make_unique<Reactor>();
    if (reactor->ok() && SetNonBlocking(fd).ok()) {
      server->reactor_ = std::move(reactor);
      NexusdServer* s = server.get();
      const Status added = server->reactor_->Add(
          fd, Reactor::kRead, [s](std::uint32_t) { s->ReactorAccept(); });
      if (!added.ok()) return added;
      server->loop_thread_ = std::thread([s] { s->reactor_->Run(); });
      return server;
    }
    // No event queue and no wake pipe (or the listener refused
    // O_NONBLOCK): serve the old way rather than not at all.
    server->options_.serve_mode = ServeMode::kThreadPerConnection;
  }

  server->pool_ = std::make_unique<parallel::ThreadPool>(
      std::max<std::size_t>(1, server->options_.workers));
  server->connections_ =
      std::make_unique<parallel::TaskGroup>(server->pool_.get());
  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

void NexusdServer::Stop() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    if (reactor_ == nullptr && listen_fd_ >= 0) {
      ::shutdown(listen_fd_, SHUT_RDWR);
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    // Unblock every thread parked in I/O on a live connection.
    for (const int fd : live_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (reactor_ != nullptr) {
    if (!loop_thread_.joinable()) {
      // Start() failed before the loop thread launched.
      const std::lock_guard<std::mutex> lock(mu_);
      if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
      }
    } else {
      reactor_->Post([this] {
        int lfd;
        {
          const std::lock_guard<std::mutex> lock(mu_);
          lfd = listen_fd_;
          listen_fd_ = -1;
        }
        if (lfd >= 0) {
          reactor_->Remove(lfd);
          ::close(lfd);
        }
        std::vector<std::shared_ptr<RConn>> conns;
        conns.reserve(rconns_.size());
        for (const auto& [cfd, conn] : rconns_) conns.push_back(conn);
        for (const auto& conn : conns) {
          ReactorTeardown(conn, /*drain=*/false);
          ReactorMaintain(conn);
        }
      });
      // Handler tasks never block on connection I/O (replies are
      // nonblocking enqueues) and lease breaks are bounded by
      // lease_break_ms_, so the drain always completes.
      {
        std::unique_lock<std::mutex> lock(mu_);
        drain_cv_.wait(lock, [this] {
          return reactor_conns_ == 0 && reactor_tasks_ == 0;
        });
      }
      reactor_->Stop();
      loop_thread_.join();
    }
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // Connections drain first: every lease thread is spawned (and recorded)
  // by a connection, so after the drain the vector is complete.
  if (connections_) connections_->WaitAll();
  std::vector<std::thread> acks;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    acks.swap(lease_threads_);
  }
  for (std::thread& t : acks) t.join();
}

// ---- stats ------------------------------------------------------------------

NexusdServer::Stats NexusdServer::stats() const {
  Stats out;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    out = stats_;
    out.active_connections = live_fds_.size();
  }
  {
    const std::lock_guard<std::mutex> lock(lease_mu_);
    out.lease_sessions = sessions_.size();
  }
  return out;
}

ServerStats NexusdServer::WireStats() const {
  ServerStats out;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    out.connections_accepted = stats_.connections_accepted;
    out.active_connections = live_fds_.size();
    out.rpcs_served = stats_.rpcs_served;
    out.protocol_errors = stats_.protocol_errors;
    out.open_streams = stats_.open_streams;
    out.streams_aborted_on_disconnect = stats_.streams_aborted_on_disconnect;
    out.bytes_received = stats_.bytes_received;
    out.bytes_sent = stats_.bytes_sent;
    out.leases_granted = stats_.leases_granted;
    out.leases_broken = stats_.leases_broken;
    out.invalidations_sent = stats_.invalidations_sent;
    out.lease_break_timeouts = stats_.lease_break_timeouts;
    // Gauge of threads this daemon is resident with: the loop (or the
    // legacy accept thread + connection workers), the rpc pool, and one
    // thread per lease channel. The c10k bench pins this flat while the
    // connection count climbs.
    out.resident_threads =
        (reactor_ != nullptr ? 1
                             : 1 + std::max<std::size_t>(1, options_.workers)) +
        options_.rpc_workers + lease_threads_.size();
    for (std::size_t i = static_cast<std::size_t>(Rpc::kPing); i < kRpcSlots;
         ++i) {
      if (per_op_[i].count == 0) continue;
      RpcOpStats row;
      row.rpc = static_cast<std::uint8_t>(i);
      row.count = per_op_[i].count;
      row.bytes_in = per_op_[i].bytes_in;
      row.bytes_out = per_op_[i].bytes_out;
      out.per_op.push_back(row);
    }
  }
  {
    const std::lock_guard<std::mutex> lock(lease_mu_);
    out.lease_sessions = sessions_.size();
  }
  if (reactor_ != nullptr) {
    const Reactor::Stats rs = reactor_->stats();
    out.epoll_wakeups = rs.wakeups;
    const BufferArena::Stats as = arena_.stats();
    out.arena_slabs_in_use = as.slabs_in_use;
    out.arena_slabs_high_water = as.slabs_high_water;
    out.arena_oversize_frames = as.oversize_frames;
    out.loop_dispatch_p50_ms = reactor_->dispatch_latency().PercentileMs(0.50);
    out.loop_dispatch_p99_ms = reactor_->dispatch_latency().PercentileMs(0.99);
  }
  // Process-wide object-cache counters: non-zero when this daemon fronts
  // its backend with cache::CachedBackend (nexusd --cache-mem).
  const cache::CacheCounters cc = cache::GlobalCacheSnapshot();
  out.cache_mem_hits = cc.mem_hits;
  out.cache_disk_hits = cc.disk_hits;
  out.cache_misses = cc.misses;
  out.cache_evictions = cc.evictions_mem + cc.evictions_disk;
  out.cache_writeback_batches = cc.writeback_batches;
  out.cache_invalidations = cc.invalidations_received;
  out.cache_dirty_high_water = cc.dirty_bytes_high_water;
  // Histograms are internally synchronized; read them outside mu_.
  for (RpcOpStats& row : out.per_op) {
    const trace::Histogram& h = op_latency_ns_[row.rpc];
    row.p50_ms = h.PercentileMs(0.50);
    row.p99_ms = h.PercentileMs(0.99);
  }
  return out;
}

void NexusdServer::CountOp(std::size_t op, std::uint64_t bytes_in,
                           std::uint64_t bytes_out) {
  // Count BEFORE sending: a client that has the response in hand (and
  // asks for Stats) must find it already reflected.
  const std::lock_guard<std::mutex> lock(mu_);
  ++stats_.rpcs_served;
  stats_.bytes_received += bytes_in + kFramePrefixBytes;
  stats_.bytes_sent += bytes_out + kFramePrefixBytes;
  ++per_op_[op].count;
  per_op_[op].bytes_in += bytes_in;
  per_op_[op].bytes_out += bytes_out;
}

// ---- legacy accept loop -----------------------------------------------------

void NexusdServer::AcceptLoop() {
  for (;;) {
    int listen_fd;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
      listen_fd = listen_fd_;
    }
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return; // listener closed (Stop) or fatal: stop accepting
    }
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        ::close(fd);
        return;
      }
      ++stats_.connections_accepted;
      live_fds_.push_back(fd);
    }
    connections_->Submit(
        [this, fd](parallel::WorkerContext&) { ServeConnection(fd); });
  }
}

// ---- lease machinery --------------------------------------------------------

std::shared_ptr<NexusdServer::LeaseSession> NexusdServer::FindSession(
    std::uint64_t sid) {
  const std::lock_guard<std::mutex> lock(lease_mu_);
  const auto it = sessions_.find(sid);
  return it == sessions_.end() ? nullptr : it->second;
}

bool NexusdServer::PreGrantLease(const std::string& name, std::uint64_t sid,
                                 std::uint64_t* version_before) {
  const std::lock_guard<std::mutex> lock(lease_mu_);
  if (!sessions_.contains(sid)) return false;
  // Register as a holder BEFORE the backend read: a mutation finishing
  // after this point collects (and invalidates) this session, so even a
  // read that returns just-overwritten bytes gets its invalidation.
  *version_before = object_version_[name];
  holders_[name].insert(sid);
  return true;
}

bool NexusdServer::PostGrantLease(const std::string& name, std::uint64_t sid,
                                  std::uint64_t version_before, bool read_ok) {
  bool granted = false;
  {
    const std::lock_guard<std::mutex> lock(lease_mu_);
    const auto h = holders_.find(name);
    const bool still_held = h != holders_.end() && h->second.contains(sid);
    if (read_ok && still_held && sessions_.contains(sid) &&
        object_version_[name] == version_before) {
      granted = true;
    } else if (still_held) {
      // Denied (version moved, read failed, or session died): withdraw
      // the registration so the holder set stays exact.
      h->second.erase(sid);
      if (h->second.empty()) holders_.erase(h);
    }
  }
  if (granted) {
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.leases_granted;
  }
  return granted;
}

std::uint64_t NexusdServer::BeginMutation(const std::string& name,
                                          std::uint64_t writer_sid,
                                          bool want_lease) {
  const std::lock_guard<std::mutex> lock(lease_mu_);
  const std::uint64_t version = ++object_version_[name];
  if (want_lease && writer_sid != 0 && sessions_.contains(writer_sid)) {
    // Register the writer as a holder BEFORE the backend write, exactly
    // like PreGrantLease does for reads: any overlapping mutation either
    // bumps the version (denying the grant) or erases this registration
    // through its own FinishMutation — a stale write lease cannot survive.
    holders_[name].insert(writer_sid);
  }
  return version;
}

bool NexusdServer::FinishMutation(const std::string& name,
                                  std::uint64_t writer_sid,
                                  std::uint64_t version_at_begin,
                                  bool want_lease, bool write_ok) {
  std::vector<std::shared_ptr<LeaseSession>> targets;
  bool granted = false;
  {
    const std::lock_guard<std::mutex> lock(lease_mu_);
    const auto h = holders_.find(name);
    if (h == holders_.end()) return false;
    const bool writer_registered =
        writer_sid != 0 && h->second.contains(writer_sid);
    granted = want_lease && write_ok && writer_registered &&
              sessions_.contains(writer_sid) &&
              object_version_[name] == version_at_begin;
    for (const std::uint64_t sid : h->second) {
      if (sid == writer_sid) continue; // the writer invalidates itself
      const auto s = sessions_.find(sid);
      if (s != sessions_.end()) targets.push_back(s->second);
    }
    if (granted) {
      // The writer keeps its registration: it now holds a write lease
      // and will be invalidated only by OTHER sessions' mutations.
      h->second.clear();
      h->second.insert(writer_sid);
    } else {
      holders_.erase(h);
    }
  }
  if (granted) {
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.leases_granted;
  }
  if (targets.empty()) return granted;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stats_.leases_broken += targets.size();
  }

  trace::Span span("cache.lease_break", "net.server");
  // Push to every holder first, then collect acks — the ack waits overlap
  // instead of serializing full round trips.
  struct Push {
    std::shared_ptr<LeaseSession> session;
    std::uint64_t corr = 0;
  };
  std::vector<Push> pushes;
  pushes.reserve(targets.size());
  std::uint64_t sent = 0;
  for (const auto& session : targets) {
    Push push{session, NextCorrelationId()};
    Writer frame = BeginRequest(Rpc::kInvalidate, push.corr, 4);
    EncodeNameList(frame, {name});
    bool delivered = false;
    {
      const std::lock_guard<std::mutex> lock(session->mu);
      if (!session->dead && session->channel != nullptr) {
        // Register the pending ack BEFORE sending: the client's ack can
        // race back faster than this thread resumes.
        session->pending_acks.insert(push.corr);
        delivered = session->channel->SendFrame(frame.bytes()).ok();
        if (!delivered) session->pending_acks.erase(push.corr);
      }
    }
    if (delivered) {
      ++sent;
      pushes.push_back(std::move(push));
    }
  }
  if (sent > 0) {
    const std::lock_guard<std::mutex> lock(mu_);
    stats_.invalidations_sent += sent;
  }

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(lease_break_ms_);
  for (const Push& push : pushes) {
    std::unique_lock<std::mutex> lock(push.session->mu);
    const bool acked = push.session->cv.wait_until(lock, deadline, [&] {
      return push.session->dead ||
             !push.session->pending_acks.contains(push.corr);
    });
    if (acked) continue;
    // The holder never answered: kill its session so the break completes
    // in bounded time. Its reader observes the shutdown, tears the
    // session down, and the client's channel-down path demotes every
    // leased entry to TTL — staleness stays bounded either way.
    push.session->dead = true;
    if (push.session->channel != nullptr) push.session->channel->Shutdown();
    lock.unlock();
    push.session->cv.notify_all();
    const std::lock_guard<std::mutex> stats_lock(mu_);
    ++stats_.lease_break_timeouts;
  }
  return granted;
}

void NexusdServer::AckLoop(TcpTransport& transport,
                           const std::shared_ptr<LeaseSession>& session) {
  // After kLeaseSubscribe the connection inverts: the server originates
  // request-format kInvalidate frames (FinishMutation) and the client
  // answers with response frames, which are all this loop ever reads.
  for (;;) {
    auto frame = transport.RecvFrame();
    if (!frame.ok()) break; // disconnect, reset, Stop(), or break timeout
    const std::uint64_t corr = ResponseCorrelation(frame.value());
    if (corr == 0) break; // not a response frame: protocol violation
    {
      const std::lock_guard<std::mutex> lock(session->mu);
      session->pending_acks.erase(corr);
    }
    session->cv.notify_all();
  }
}

void NexusdServer::CleanupSession(
    const std::shared_ptr<LeaseSession>& session) {
  {
    const std::lock_guard<std::mutex> lock(lease_mu_);
    sessions_.erase(session->id);
    for (auto it = holders_.begin(); it != holders_.end();) {
      it->second.erase(session->id);
      if (it->second.empty()) {
        it = holders_.erase(it);
      } else {
        ++it;
      }
    }
  }
  {
    const std::lock_guard<std::mutex> lock(session->mu);
    session->dead = true;
    session->channel = nullptr;
    session->pending_acks.clear();
  }
  session->cv.notify_all(); // writers waiting on acks see `dead`
}

// ---- the protocol engine ----------------------------------------------------

NexusdServer::Dispatch NexusdServer::DecodeFrame(
    ByteSpan frame, ConnState& state, TcpTransport* subscribe_channel) {
  using Kind = Dispatch::Kind;
  Dispatch d; // defaults to kProtocolError

  Reader reader(frame);
  std::uint64_t corr = 0;
  std::uint8_t version = kProtocolVersion;
  auto rpc = ParseRequestHead(reader, &corr, &version);
  if (!rpc.ok() || version > options_.max_protocol_version) {
    // Malformed head — or a version this deployment was told not to
    // speak (a max_protocol_version=2 nexusd is how interop tests stand
    // up a "legacy" server; to it, a v3 head is as alien as garbage).
    return d;
  }
  d.op = static_cast<std::size_t>(rpc.value());
  d.corr = corr;
  d.name = RpcName(rpc.value());

  // Argument decoding stays HERE, in arrival order, so a malformed frame
  // kills the connection at a deterministic point in the stream. The
  // closures own copies of their arguments — the frame bytes (an arena
  // slab in reactor mode) are dead the moment this function returns.
  // Responses always echo the request head's version: a v2 client must
  // never see a version byte it rejects.
  switch (rpc.value()) {
    case Rpc::kPing: {
      // A v3+ client appends a probe byte naming its own max version; a
      // v2 client appends nothing. Only a probed v3+ server answers with
      // a version byte, so every other pairing stays byte-identical to
      // the v2 exchange — negotiation is invisible to old peers.
      std::uint8_t probe = 0;
      if (reader.Remaining() > 0) {
        auto p = reader.U8();
        if (p.ok()) probe = p.value();
      }
      const bool advertise = probe >= 3 && options_.max_protocol_version >= 3;
      const std::uint8_t offer =
          std::min({kProtocolVersion, options_.max_protocol_version, probe});
      d.kind = Kind::kStateless;
      d.execute = [corr, version, advertise, offer] {
        Writer r = BeginResponse(Status::Ok(), corr, version);
        if (advertise) r.U8(offer);
        return WireReply(std::move(r));
      };
      break;
    }
    case Rpc::kGet: {
      auto name = reader.Str();
      if (!name.ok()) break;
      // v4 Gets carry a trailing want-lease byte (absent = 0).
      std::uint8_t want_lease = 0;
      if (version >= 4 && reader.Remaining() > 0) {
        auto w = reader.U8();
        if (w.ok()) want_lease = w.value();
      }
      const std::uint64_t sid = state.attached_session;
      d.kind = Kind::kStateless;
      d.execute = [this, corr, version, sid, want_lease,
                   name = std::move(name).value()] {
        std::uint64_t v0 = 0;
        bool granted = version >= 4 && want_lease != 0 && sid != 0 &&
                       PreGrantLease(name, sid, &v0);
        auto data = backend_.Get(name);
        if (granted) granted = PostGrantLease(name, sid, v0, data.ok());
        if (!data.ok()) {
          return WireReply(BeginResponse(data.status(), corr, version));
        }
        Bytes body = std::move(data).value();
        Writer head = BeginResponse(Status::Ok(), corr, version);
        head.U32(static_cast<std::uint32_t>(body.size())); // Var(body)...
        if (body.size() <= kInlineBodyBytes) {
          head.Raw(body); // ...small: inline
          if (version >= 4) head.U8(granted ? 1 : 0);
          return WireReply(std::move(head));
        }
        WireReply reply(std::move(head)); // ...large: own segment, no copy
        reply.Add(std::move(body));
        if (version >= 4) {
          Writer tail;
          tail.U8(granted ? 1 : 0);
          reply.Add(std::move(tail));
        }
        return reply;
      };
      break;
    }
    case Rpc::kPut: {
      auto name = reader.Str();
      if (!name.ok()) break;
      auto data = reader.Var(kMaxObjectBytes);
      if (!data.ok()) break;
      // v5 Puts carry a trailing want-write-lease byte (absent = 0).
      std::uint8_t want_lease = 0;
      if (version >= 5 && reader.Remaining() > 0) {
        auto w = reader.U8();
        if (w.ok()) want_lease = w.value();
      }
      const std::uint64_t sid = state.attached_session;
      d.kind = Kind::kStateless;
      d.execute = [this, corr, version, sid, want_lease,
                   name = std::move(name).value(),
                   data = std::move(data).value()] {
        const bool want = version >= 5 && want_lease != 0 && sid != 0;
        const std::uint64_t v0 = BeginMutation(name, sid, want);
        const Status verdict = backend_.Put(name, data);
        const bool granted =
            FinishMutation(name, sid, v0, want, verdict.ok());
        Writer r = BeginResponse(verdict, corr, version);
        if (version >= 5 && verdict.ok()) r.U8(granted ? 1 : 0);
        return WireReply(std::move(r));
      };
      break;
    }
    case Rpc::kDelete: {
      auto name = reader.Str();
      if (!name.ok()) break;
      const std::uint64_t sid = state.attached_session;
      d.kind = Kind::kStateless;
      d.execute = [this, corr, version, sid, name = std::move(name).value()] {
        BeginMutation(name);
        const Status verdict = backend_.Delete(name);
        FinishMutation(name, sid);
        return WireReply(BeginResponse(verdict, corr, version));
      };
      break;
    }
    case Rpc::kExists: {
      auto name = reader.Str();
      if (!name.ok()) break;
      d.kind = Kind::kStateless;
      d.execute = [this, corr, version, name = std::move(name).value()] {
        Writer r = BeginResponse(Status::Ok(), corr, version);
        r.U8(backend_.Exists(name) ? 1 : 0);
        return WireReply(std::move(r));
      };
      break;
    }
    case Rpc::kList: {
      auto prefix = reader.Str();
      if (!prefix.ok()) break;
      d.kind = Kind::kStateless;
      d.execute = [this, corr, version, prefix = std::move(prefix).value()] {
        const std::vector<std::string> names = backend_.List(prefix);
        std::size_t payload = 0;
        for (const auto& n : names) payload += n.size() + 4;
        if (payload > kMaxObjectBytes) {
          return WireReply(BeginResponse(
              Error(ErrorCode::kOutOfRange, "listing exceeds frame bound"),
              corr, version));
        }
        Writer r = BeginResponse(Status::Ok(), corr, version);
        r.U32(static_cast<std::uint32_t>(names.size()));
        for (const auto& n : names) r.Str(n);
        return WireReply(std::move(r));
      };
      break;
    }
    case Rpc::kListPage: {
      auto prefix = reader.Str();
      if (!prefix.ok()) break;
      auto start_after = reader.Str();
      if (!start_after.ok()) break;
      auto limit = reader.U32();
      if (!limit.ok()) break;
      if (limit.value() == 0 || limit.value() > kMaxMultiEntries) break;
      d.kind = Kind::kStateless;
      d.execute = [this, corr, version, prefix = std::move(prefix).value(),
                   start_after = std::move(start_after).value(),
                   limit = limit.value()] {
        const storage::StorageBackend::ListPage page =
            backend_.ListSome(prefix, start_after, limit);
        Writer r = BeginResponse(Status::Ok(), corr, version);
        r.U32(static_cast<std::uint32_t>(page.names.size()));
        for (const auto& n : page.names) r.Str(n);
        r.U8(page.more ? 1 : 0);
        return WireReply(std::move(r));
      };
      break;
    }
    case Rpc::kMultiGet: {
      auto names = DecodeNameList(reader);
      if (!names.ok()) break;
      // v5 MultiGets carry a trailing want-lease byte (absent = 0).
      std::uint8_t want_lease = 0;
      if (version >= 5 && reader.Remaining() > 0) {
        auto w = reader.U8();
        if (w.ok()) want_lease = w.value();
      }
      const std::uint64_t sid = state.attached_session;
      d.kind = Kind::kStateless;
      d.execute = [this, corr, version, sid, want_lease,
                   names = std::move(names).value()] {
        const bool want = version >= 5 && want_lease != 0 && sid != 0;
        std::vector<std::uint64_t> v0(names.size(), 0);
        std::vector<char> pre(names.size(), 0);
        if (want) {
          for (std::size_t i = 0; i < names.size(); ++i) {
            pre[i] = PreGrantLease(names[i], sid, &v0[i]) ? 1 : 0;
          }
        }
        std::vector<Result<Bytes>> fetched = backend_.MultiGet(names);
        // Budget the ENCODED payload at kMaxObjectBytes; from the first
        // entry that would overflow, everything becomes deferred (one
        // byte each, well inside the frame cap's slack) and the client
        // re-fetches those names in follow-up batches. The encoding below
        // is EncodeMultiGetEntries byte for byte, except that large
        // bodies become their own scatter/gather segments instead of
        // being copied into one contiguous response.
        WireReply reply;
        Writer seg = BeginResponse(Status::Ok(), corr, version);
        seg.U32(static_cast<std::uint32_t>(fetched.size()));
        std::size_t used = 4; // the entry-count u32
        bool overflowed = false;
        for (std::size_t i = 0; i < fetched.size(); ++i) {
          Result<Bytes>& result = fetched[i];
          const std::size_t lease_byte = version >= 5 ? 1 : 0;
          auto entry_state = MultiGetEntry::State::kDeferred;
          if (!overflowed) {
            const std::size_t cost =
                result.ok() ? 1 + 4 + result.value().size() + lease_byte
                            : 1 + 1 + 4 + result.status().message().size();
            if (used + cost > kMaxObjectBytes) {
              overflowed = true;
            } else {
              used += cost;
              entry_state = result.ok() ? MultiGetEntry::State::kOk
                                        : MultiGetEntry::State::kError;
            }
          }
          // Confirm the pre-granted lease only for entries the client
          // actually receives as kOk; deferred/error entries withdraw it.
          bool granted = false;
          if (want && pre[i] != 0) {
            granted = PostGrantLease(
                names[i], sid, v0[i],
                entry_state == MultiGetEntry::State::kOk);
          }
          seg.U8(static_cast<std::uint8_t>(entry_state));
          switch (entry_state) {
            case MultiGetEntry::State::kOk: {
              Bytes body = std::move(result).value();
              seg.U32(static_cast<std::uint32_t>(body.size()));
              if (body.size() <= kInlineBodyBytes) {
                seg.Raw(body);
              } else {
                reply.Add(std::move(seg)); // flush the coalesced segment
                reply.Add(std::move(body)); // the body rides uncopied
                seg = Writer();
              }
              if (version >= 5) seg.U8(granted ? 1 : 0);
              break;
            }
            case MultiGetEntry::State::kError:
              seg.U8(CodeToWire(result.status().code()));
              seg.Str(result.status().message());
              break;
            case MultiGetEntry::State::kDeferred:
              break;
          }
        }
        if (!seg.bytes().empty()) reply.Add(std::move(seg));
        return reply;
      };
      break;
    }
    case Rpc::kMultiExists: {
      auto names = DecodeNameList(reader);
      if (!names.ok()) break;
      d.kind = Kind::kStateless;
      d.execute = [this, corr, version, names = std::move(names).value()] {
        const std::vector<bool> flags = backend_.MultiExists(names);
        Writer r = BeginResponse(Status::Ok(), corr, version);
        for (const bool flag : flags) r.U8(flag ? 1 : 0);
        return WireReply(std::move(r));
      };
      break;
    }
    case Rpc::kStats: {
      d.kind = Kind::kStateless;
      d.execute = [this, corr, version] {
        Writer r = BeginResponse(Status::Ok(), corr, version);
        EncodeServerStats(r, WireStats());
        return WireReply(std::move(r));
      };
      break;
    }
    case Rpc::kLeaseSubscribe: {
      // This connection becomes the session's invalidation channel: the
      // attached response is the LAST ordinary reply on it; afterwards
      // the connection carries only server pushes and client acks.
      trace::Span span(d.name, "net.server");
      span.SetCorrelation(corr);
      if (state.subscription != nullptr) break; // double-subscribe
      auto session = std::make_shared<LeaseSession>();
      {
        const std::lock_guard<std::mutex> lock(lease_mu_);
        session->id = next_session_id_++;
        sessions_[session->id] = session;
      }
      if (subscribe_channel != nullptr) {
        // Thread-per-connection: the reader thread that decoded us owns
        // the transport for the session's whole life, so the push channel
        // binds right here. The reactor binds it at migration instead.
        const std::lock_guard<std::mutex> lock(session->mu);
        session->channel = subscribe_channel;
      }
      state.subscription = session;
      Writer r = BeginResponse(Status::Ok(), corr, version);
      r.U64(session->id);
      d.response = WireReply(std::move(r));
      d.subscribed = true;
      d.kind = Kind::kImmediate;
      break;
    }
    case Rpc::kLeaseAttach: {
      trace::Span span(d.name, "net.server");
      span.SetCorrelation(corr);
      auto sid = reader.U64();
      if (!sid.ok()) break;
      // Immediate (not pooled): attachment must order before the Gets
      // and Puts pipelined behind it on this connection.
      Writer r = FindSession(sid.value()) != nullptr
                     ? BeginResponse(Status::Ok(), corr, version)
                     : BeginResponse(
                           Error(ErrorCode::kNotFound, "unknown lease session"),
                           corr, version);
      if (FindSession(sid.value()) != nullptr) {
        state.attached_session = sid.value();
      }
      d.response = WireReply(std::move(r));
      d.kind = Kind::kImmediate;
      break;
    }
    case Rpc::kInvalidate: {
      // Server-originated only; a client sending it is desynchronized.
      break;
    }
    case Rpc::kStreamBegin: {
      auto name = reader.Str();
      if (!name.ok()) break;
      ConnState* st = &state;
      d.kind = Kind::kOrdered;
      d.execute = [this, st, corr, version, name = std::move(name).value()] {
        auto stream = backend_.OpenPutStream(name);
        if (!stream.ok()) {
          return WireReply(BeginResponse(stream.status(), corr, version));
        }
        std::uint64_t handle;
        {
          const std::lock_guard<std::mutex> lock(st->stream_mu);
          handle = st->next_stream_handle++;
          st->streams[handle] =
              ConnState::OpenStream{std::move(stream).value(), name};
        }
        {
          const std::lock_guard<std::mutex> lock(mu_);
          ++stats_.open_streams;
        }
        Writer r = BeginResponse(Status::Ok(), corr, version);
        r.U64(handle);
        return WireReply(std::move(r));
      };
      break;
    }
    case Rpc::kStreamAppend: {
      auto handle = reader.U64();
      if (!handle.ok()) break;
      auto segment = reader.Var(kMaxObjectBytes);
      if (!segment.ok()) break;
      ConnState* st = &state;
      d.kind = Kind::kOrdered;
      d.execute = [this, st, corr, version, handle = handle.value(),
                   segment = std::move(segment).value()] {
        const std::lock_guard<std::mutex> lock(st->stream_mu);
        const auto it = st->streams.find(handle);
        if (it == st->streams.end()) {
          return WireReply(BeginResponse(
              Error(ErrorCode::kInvalidArgument, "unknown stream handle"),
              corr, version));
        }
        return WireReply(
            BeginResponse(it->second.stream->Append(segment), corr, version));
      };
      break;
    }
    case Rpc::kStreamCommit: {
      auto handle = reader.U64();
      if (!handle.ok()) break;
      ConnState* st = &state;
      const std::uint64_t sid = state.attached_session;
      d.kind = Kind::kOrdered;
      d.execute = [this, st, corr, version, sid, handle = handle.value()] {
        std::unique_lock<std::mutex> lock(st->stream_mu);
        const auto it = st->streams.find(handle);
        if (it == st->streams.end()) {
          return WireReply(BeginResponse(
              Error(ErrorCode::kInvalidArgument, "unknown stream handle"),
              corr, version));
        }
        const std::string name = it->second.name;
        auto stream = std::move(it->second.stream);
        st->streams.erase(it);
        lock.unlock();
        // Commit publishes a new object atomically: same lease-break
        // protocol as Put, bracketing the backend call.
        BeginMutation(name);
        const Status verdict = stream->Commit();
        FinishMutation(name, sid);
        {
          const std::lock_guard<std::mutex> stats_lock(mu_);
          --stats_.open_streams;
        }
        return WireReply(BeginResponse(verdict, corr, version));
      };
      break;
    }
    case Rpc::kStreamAbort: {
      auto handle = reader.U64();
      if (!handle.ok()) break;
      ConnState* st = &state;
      d.kind = Kind::kOrdered;
      d.execute = [this, st, corr, version, handle = handle.value()] {
        std::unique_lock<std::mutex> lock(st->stream_mu);
        const auto it = st->streams.find(handle);
        if (it == st->streams.end()) {
          return WireReply(BeginResponse(
              Error(ErrorCode::kInvalidArgument, "unknown stream handle"),
              corr, version));
        }
        auto stream = std::move(it->second.stream);
        st->streams.erase(it);
        lock.unlock();
        stream->Abort();
        {
          const std::lock_guard<std::mutex> stats_lock(mu_);
          --stats_.open_streams;
        }
        return WireReply(BeginResponse(Status::Ok(), corr, version));
      };
      break;
    }
  }
  return d;
}

NexusdServer::WireReply NexusdServer::RunHandler(const Dispatch& d) {
  // One span per served request, tagged with the client's correlation id
  // so client and server spans can be matched up.
  trace::Span span(d.name, "net.server");
  span.SetCorrelation(d.corr);
  return d.execute();
}

// ---- the thread-per-connection serve loop -----------------------------------

void NexusdServer::ServeConnection(int fd) {
  // Block-forever reads: Stop() shutdown()s the fd, which surfaces as a
  // clean "closed by peer" and ends the loop. Heap-owned so a connection
  // that becomes a lease subscription can hand its transport to the
  // dedicated ack thread.
  auto owned = std::make_unique<TcpTransport>(fd, /*io_deadline_ms=*/-1);
  TcpTransport& transport = *owned;

  // Shared between this reader and its handler tasks on rpc_pool_.
  struct ConnCtx {
    std::mutex send_mu; // serializes whole response frames onto the fd
    bool send_failed = false; // under send_mu; reader stops pulling
    std::mutex mu;
    std::condition_variable cv;
    std::size_t inflight = 0; // handler tasks not yet finished
  };
  const auto ctx = std::make_shared<ConnCtx>();
  // With no rpc pool the group executes inline on this thread: the serial
  // and pipelined server share one code shape.
  parallel::TaskGroup handlers(rpc_pool_.get());

  ConnState state;

  for (;;) {
    auto frame = transport.RecvFrame();
    if (!frame.ok()) break; // disconnect, reset, or Stop()
    const std::uint64_t service_start_ns = MonotonicNanos();
    const std::size_t frame_bytes = frame.value().size();

    Dispatch d = DecodeFrame(frame.value(), state, &transport);

    if (d.kind == Dispatch::Kind::kProtocolError) {
      const std::lock_guard<std::mutex> lock(mu_);
      ++stats_.protocol_errors;
      break;
    }

    if (d.kind == Dispatch::Kind::kStateless) {
      // Backpressure: cap this connection's outstanding handlers so one
      // client cannot queue unbounded work (and memory) behind a slow
      // backend.
      {
        std::unique_lock<std::mutex> lock(ctx->mu);
        ctx->cv.wait(lock, [&] {
          return ctx->inflight < options_.max_inflight_per_connection;
        });
        ++ctx->inflight;
      }
      handlers.Submit([this, ctx, &transport, frame_bytes, service_start_ns,
                       d = std::move(d)](parallel::WorkerContext&) {
        WireReply reply = RunHandler(d);
        CountOp(d.op, frame_bytes, reply.payload_bytes);
        {
          const std::lock_guard<std::mutex> lock(ctx->send_mu);
          if (!ctx->send_failed &&
              !transport.SendFrameParts(reply.Spans()).ok()) {
            ctx->send_failed = true;
          }
        }
        op_latency_ns_[d.op].Record(MonotonicNanos() - service_start_ns);
        {
          const std::lock_guard<std::mutex> lock(ctx->mu);
          --ctx->inflight;
        }
        ctx->cv.notify_one();
      });
      const std::lock_guard<std::mutex> lock(ctx->send_mu);
      if (ctx->send_failed) break; // peer is gone; stop pulling frames
      continue;
    }

    // Inline path: ordered (stream) ops execute right here on the reader
    // — they are connection state the in-order byte stream defines — and
    // immediate ops already carry their reply from decode.
    WireReply reply = d.kind == Dispatch::Kind::kOrdered
                          ? RunHandler(d)
                          : std::move(d.response);
    CountOp(d.op, frame_bytes, reply.payload_bytes);
    bool sent;
    {
      const std::lock_guard<std::mutex> lock(ctx->send_mu);
      sent = !ctx->send_failed && transport.SendFrameParts(reply.Spans()).ok();
      if (!sent) ctx->send_failed = true;
    }
    op_latency_ns_[d.op].Record(MonotonicNanos() - service_start_ns);
    if (!sent) break;

    if (d.subscribed) {
      // The subscribe reply is out; from here the connection carries only
      // server pushes and client acks. Subscriptions live as long as the
      // client, so the ack loop moves to a dedicated thread: pool workers
      // (options_.workers) stay available for data connections instead of
      // being pinned by every subscriber.
      std::thread ack([this, fd, channel = std::move(owned),
                       session = state.subscription] {
        AckLoop(*channel, session);
        CleanupSession(session);
        const std::lock_guard<std::mutex> lock(mu_);
        live_fds_.erase(std::remove(live_fds_.begin(), live_fds_.end(), fd),
                        live_fds_.end());
        // `channel` closes the fd on thread exit.
      });
      handlers.WaitAll();
      std::size_t aborted;
      {
        const std::lock_guard<std::mutex> lock(state.stream_mu);
        aborted = state.streams.size();
      }
      {
        const std::lock_guard<std::mutex> lock(mu_);
        lease_threads_.push_back(std::move(ack));
        stats_.streams_aborted_on_disconnect += aborted;
        stats_.open_streams -= aborted;
      }
      return; // fd teardown now belongs to the ack thread
    }
  }

  // Drain the handlers before the transport (their send target) and the
  // stats teardown below.
  handlers.WaitAll();

  // Reachable with a live session only when the subscribe reply itself
  // failed to send (the success path detaches above).
  if (state.subscription != nullptr) CleanupSession(state.subscription);

  std::size_t aborted;
  {
    const std::lock_guard<std::mutex> lock(state.stream_mu);
    aborted = state.streams.size();
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stats_.streams_aborted_on_disconnect += aborted;
    stats_.open_streams -= aborted;
    live_fds_.erase(std::remove(live_fds_.begin(), live_fds_.end(), fd),
                    live_fds_.end());
  }
  // `transport` closes the fd; `state.streams` aborts anything uncommitted.
}

// ---- the reactor ------------------------------------------------------------

void NexusdServer::ReactorAccept() {
  for (;;) {
    int listen_fd;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      listen_fd = listen_fd_;
    }
    if (listen_fd < 0) return;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return; // EAGAIN: the backlog is drained (or the listener is dying)
    }
    if (!SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto conn = std::make_shared<RConn>();
    conn->fd = fd;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return; // conn's destructor closes the fd
      ++stats_.connections_accepted;
      live_fds_.push_back(fd);
      ++reactor_conns_;
    }
    rconns_[fd] = conn;
    const Status added = reactor_->Add(
        fd, Reactor::kRead,
        [this, conn](std::uint32_t ready) { ReactorOnEvent(conn, ready); });
    if (!added.ok()) {
      rconns_.erase(fd);
      {
        const std::lock_guard<std::mutex> lock(mu_);
        live_fds_.erase(std::remove(live_fds_.begin(), live_fds_.end(), fd),
                        live_fds_.end());
        --reactor_conns_;
      }
      drain_cv_.notify_all();
      // conn's destructor closes the fd
    }
  }
}

void NexusdServer::ReactorOnEvent(const std::shared_ptr<RConn>& conn,
                                  std::uint32_t ready) {
  if (conn->finalized) return;
  if (ready & Reactor::kError) {
    ReactorTeardown(conn, /*drain=*/false);
  } else {
    if (ready & Reactor::kWrite) {
      const std::lock_guard<std::mutex> lock(conn->send_mu);
      FlushSendQueue(*conn);
    }
    if (ready & Reactor::kRead) ReactorOnReadable(conn);
  }
  ReactorMaintain(conn);
}

void NexusdServer::ReactorOnReadable(const std::shared_ptr<RConn>& conn) {
  RConn& c = *conn;
  // Bounded reads per invocation: a firehose connection cannot starve the
  // rest of the loop. Level-triggered readiness re-reports leftovers.
  for (int budget = 8; budget > 0;) {
    {
      const std::lock_guard<std::mutex> lock(c.mu);
      if (c.dead || c.draining || c.migrating || c.paused) return;
    }

    if (c.big_need > 0) {
      // Oversize frame: its payload streams straight into the dedicated
      // heap buffer, bypassing the arena.
      const std::size_t want = c.big_need - c.big_filled;
      const ssize_t n = ::read(c.fd, c.big.data() + c.big_filled, want);
      --budget;
      if (n == 0) {
        ReactorTeardown(conn, /*drain=*/true);
        return;
      }
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        ReactorTeardown(conn, /*drain=*/false);
        return;
      }
      c.big_filled += static_cast<std::size_t>(n);
      if (c.big_filled < c.big_need) continue;
      Bytes frame = std::move(c.big);
      c.big = Bytes{};
      c.big_filled = 0;
      c.big_need = 0;
      if (!ReactorHandleFrame(conn, ByteSpan(frame.data(), frame.size()))) {
        return;
      }
      continue;
    }

    // Parse what is already buffered FIRST: resuming after backpressure
    // must re-process leftovers before asking the socket for more.
    ReactorParseBuffered(conn);
    {
      const std::lock_guard<std::mutex> lock(c.mu);
      if (c.dead || c.draining || c.migrating || c.paused) return;
    }
    if (c.big_need > 0) continue; // the parser switched to big mode

    if (c.in == nullptr) {
      c.in = arena_.Acquire();
      c.in_begin = 0;
    }
    if (c.in_begin > 0 && c.in->size == c.in->capacity()) {
      // Slide the partial frame to the slab front to regain room.
      std::memmove(c.in->data(), c.in->data() + c.in_begin,
                   c.in->size - c.in_begin);
      c.in->size -= c.in_begin;
      c.in_begin = 0;
    }
    if (c.in->size == c.in->capacity()) {
      // A full slab with no complete frame and no big-mode switch cannot
      // happen (the parser flips to big mode whenever the pending frame
      // exceeds the slab); treat it as corruption.
      ReactorTeardown(conn, /*drain=*/false);
      return;
    }
    const ssize_t n =
        ::read(c.fd, c.in->data() + c.in->size, c.in->capacity() - c.in->size);
    --budget;
    if (n == 0) {
      ReactorTeardown(conn, /*drain=*/true);
      return;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Hand an empty slab back to the arena between events.
        if (c.in != nullptr && c.in->size == c.in_begin) {
          c.in.reset();
          c.in_begin = 0;
        }
        return;
      }
      ReactorTeardown(conn, /*drain=*/false);
      return;
    }
    c.in->size += static_cast<std::size_t>(n);
    // Parse BEFORE the budget check can end the loop. Exiting with a
    // complete frame buffered in the slab would strand it: the socket may
    // now be empty, so level-triggered readiness never fires again and
    // the frame sits unserved until the peer gives up (observed as a
    // rare multi-second stall on lock-step connections whose next
    // request lands exactly on the final budgeted read).
    ReactorParseBuffered(conn);
  }
}

void NexusdServer::ReactorParseBuffered(const std::shared_ptr<RConn>& conn) {
  RConn& c = *conn;
  while (c.in != nullptr) {
    {
      const std::lock_guard<std::mutex> lock(c.mu);
      if (c.dead || c.draining || c.migrating || c.paused) return;
    }
    const std::size_t avail = c.in->size - c.in_begin;
    if (avail < kFramePrefixBytes) break;
    const std::uint32_t len = DecodeFrameLength(c.in->data() + c.in_begin);
    if (len > kMaxFrameBytes) {
      // Same bound (and same silence) as TcpTransport::RecvFrame: the
      // byte stream is garbage — kill it without a protocol_errors tick.
      ReactorTeardown(conn, /*drain=*/false);
      return;
    }
    const std::size_t total = kFramePrefixBytes + len;
    if (total > c.in->capacity()) {
      // Oversize frame: move the payload bytes gathered so far to a heap
      // buffer and stream the rest into it. Everything buffered belongs
      // to this frame (total > capacity >= buffered).
      arena_.NoteOversize();
      c.big.resize(len);
      const std::size_t have = avail - kFramePrefixBytes;
      std::memcpy(c.big.data(), c.in->data() + c.in_begin + kFramePrefixBytes,
                  have);
      c.big_filled = have;
      c.big_need = len;
      c.in.reset();
      c.in_begin = 0;
      return;
    }
    if (avail < total) break; // partial frame: wait for more bytes
    const ByteSpan frame(c.in->data() + c.in_begin + kFramePrefixBytes, len);
    c.in_begin += total;
    if (!ReactorHandleFrame(conn, frame)) return;
  }
  if (c.in != nullptr && c.in_begin == c.in->size) {
    c.in.reset(); // fully parsed: recycle the slab now
    c.in_begin = 0;
  }
}

bool NexusdServer::ReactorHandleFrame(const std::shared_ptr<RConn>& conn,
                                      ByteSpan frame) {
  RConn& c = *conn;
  const std::uint64_t start_ns = MonotonicNanos();
  const std::size_t frame_bytes = frame.size();
  Dispatch d = DecodeFrame(frame, c.proto, /*subscribe_channel=*/nullptr);

  if (d.kind == Dispatch::Kind::kProtocolError) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      ++stats_.protocol_errors;
    }
    // Soft teardown: in-flight handlers still get their replies out, as
    // they do in thread-per-connection mode.
    ReactorTeardown(conn, /*drain=*/true);
    return false;
  }

  if (d.kind == Dispatch::Kind::kImmediate) {
    CountOp(d.op, frame_bytes, d.response.payload_bytes);
    SendReply(conn, std::move(d.response));
    op_latency_ns_[d.op].Record(MonotonicNanos() - start_ns);
    if (d.subscribed) {
      const std::lock_guard<std::mutex> lock(c.mu);
      c.migrating = true; // no more reads; migrate once idle and flushed
      return false;
    }
    return true;
  }

  ReactorDispatch(conn, std::move(d), frame_bytes, start_ns);
  const std::lock_guard<std::mutex> lock(c.mu);
  return !c.paused;
}

void NexusdServer::ReactorDispatch(const std::shared_ptr<RConn>& conn,
                                   Dispatch d, std::size_t frame_bytes,
                                   std::uint64_t start_ns) {
  RConn& c = *conn;
  if (d.kind == Dispatch::Kind::kOrdered) {
    bool start_runner = false;
    {
      const std::lock_guard<std::mutex> lock(c.mu);
      ++c.inflight;
      if (c.inflight >= options_.max_inflight_per_connection) c.paused = true;
      c.ordered.push_back(RConn::Ordered{std::move(d), frame_bytes, start_ns});
      if (!c.ordered_running) {
        c.ordered_running = true;
        start_runner = true;
      }
    }
    if (start_runner) {
      {
        const std::lock_guard<std::mutex> lock(mu_);
        ++reactor_tasks_;
      }
      if (rpc_pool_ != nullptr) {
        rpc_pool_->Post([this, conn](parallel::WorkerContext&) {
          ReactorRunOrdered(conn);
          OnTaskExit();
        });
      } else {
        ReactorRunOrdered(conn);
        OnTaskExit();
      }
    }
    return;
  }

  {
    const std::lock_guard<std::mutex> lock(c.mu);
    ++c.inflight;
    // Backpressure decision rides the SAME critical section as the
    // increment: a handler finishing in between still observes `paused`
    // and schedules the resume.
    if (c.inflight >= options_.max_inflight_per_connection) c.paused = true;
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++reactor_tasks_;
  }
  auto task = [this, conn, d = std::move(d), frame_bytes, start_ns] {
    ReactorExecute(conn, d, frame_bytes, start_ns);
    OnHandlerDone(conn);
    OnTaskExit();
  };
  if (rpc_pool_ != nullptr) {
    rpc_pool_->Post([task = std::move(task)](parallel::WorkerContext&) {
      task();
    });
  } else {
    // rpc_workers=0: handlers run inline on the loop thread — strictly
    // in-order replies, the pre-v3 behavior.
    task();
  }
}

void NexusdServer::ReactorRunOrdered(const std::shared_ptr<RConn>& conn) {
  RConn& c = *conn;
  for (;;) {
    RConn::Ordered item;
    {
      const std::lock_guard<std::mutex> lock(c.mu);
      if (c.ordered.empty()) {
        c.ordered_running = false;
        return;
      }
      item = std::move(c.ordered.front());
      c.ordered.pop_front();
    }
    ReactorExecute(conn, item.d, item.frame_bytes, item.start_ns);
    OnHandlerDone(conn);
  }
}

void NexusdServer::ReactorExecute(const std::shared_ptr<RConn>& conn,
                                  const Dispatch& d, std::size_t frame_bytes,
                                  std::uint64_t start_ns) {
  WireReply reply = RunHandler(d);
  CountOp(d.op, frame_bytes, reply.payload_bytes);
  SendReply(conn, std::move(reply));
  op_latency_ns_[d.op].Record(MonotonicNanos() - start_ns);
}

void NexusdServer::OnHandlerDone(const std::shared_ptr<RConn>& conn) {
  RConn& c = *conn;
  bool post = false;
  {
    const std::lock_guard<std::mutex> lock(c.mu);
    --c.inflight;
    const bool idle = c.inflight == 0 && c.ordered.empty();
    const bool resumable = c.paused && !c.dead && !c.draining &&
                           !c.migrating &&
                           c.inflight < options_.max_inflight_per_connection;
    const bool settled = idle && (c.dead || c.draining || c.migrating);
    if ((resumable || settled) && !c.maintain_posted) {
      c.maintain_posted = true;
      post = true;
    }
  }
  if (post) PostMaintain(conn);
}

void NexusdServer::OnTaskExit() {
  const std::lock_guard<std::mutex> lock(mu_);
  --reactor_tasks_;
  if (reactor_tasks_ == 0) drain_cv_.notify_all();
}

void NexusdServer::PostMaintain(const std::shared_ptr<RConn>& conn) {
  reactor_->Post([this, conn] { ReactorMaintain(conn); });
}

bool NexusdServer::SendReply(const std::shared_ptr<RConn>& conn,
                             WireReply reply) {
  RConn& c = *conn;
  const std::size_t frame_total = kFramePrefixBytes + reply.payload_bytes;
  bool want_maintain = false;
  {
    const std::lock_guard<std::mutex> lock(c.send_mu);
    if (c.send_failed) return false;
    if (frame_total <= arena_.slab_bytes()) {
      // Small frame: coalesce into the tail slab so bursts of replies
      // leave in one sendmsg.
      BufferArena::Slab* tail = nullptr;
      if (!c.outq.empty() && c.outq.back().slab != nullptr &&
          c.outq.back().slab->size + frame_total <=
              c.outq.back().slab->capacity()) {
        tail = c.outq.back().slab.get();
      } else {
        RConn::OutBuf buf;
        buf.slab = arena_.Acquire();
        c.outq.push_back(std::move(buf));
        tail = c.outq.back().slab.get();
      }
      EncodeFrameLength(static_cast<std::uint32_t>(reply.payload_bytes),
                        tail->data() + tail->size);
      tail->size += kFramePrefixBytes;
      for (const Bytes& part : reply.parts) {
        std::memcpy(tail->data() + tail->size, part.data(), part.size());
        tail->size += part.size();
      }
      c.outq.back().size = tail->size;
    } else {
      // Large frame: the prefix and every segment ride as-is; sendmsg
      // gathers them with no coalescing copy.
      RConn::OutBuf buf;
      Bytes prefix(kFramePrefixBytes);
      EncodeFrameLength(static_cast<std::uint32_t>(reply.payload_bytes),
                        prefix.data());
      buf.parts.reserve(reply.parts.size() + 1);
      buf.parts.push_back(std::move(prefix));
      for (Bytes& part : reply.parts) {
        if (!part.empty()) buf.parts.push_back(std::move(part));
      }
      buf.size = frame_total;
      c.outq.push_back(std::move(buf));
    }
    // Opportunistic flush: most replies leave right here, on the handler
    // thread, with no loop round trip.
    FlushSendQueue(c);
    want_maintain = (!c.outq.empty() || c.send_failed) && !c.arm_posted;
    if (want_maintain) c.arm_posted = true;
  }
  if (want_maintain) PostMaintain(conn);
  return true;
}

bool NexusdServer::FlushSendQueue(RConn& c) {
  while (!c.outq.empty()) {
    if (c.send_failed) {
      c.outq.clear();
      return true;
    }
    // Gather up to 64 segments across the queued buffers.
    iovec iov[64];
    int iovcnt = 0;
    for (auto it = c.outq.begin(); it != c.outq.end() && iovcnt < 64; ++it) {
      std::size_t skip = it->off;
      if (it->slab != nullptr) {
        iov[iovcnt].iov_base = it->slab->data() + skip;
        iov[iovcnt].iov_len = it->slab->size - skip;
        ++iovcnt;
      } else {
        for (const Bytes& part : it->parts) {
          if (iovcnt >= 64) break;
          if (skip >= part.size()) {
            skip -= part.size();
            continue;
          }
          iov[iovcnt].iov_base =
              const_cast<std::uint8_t*>(part.data()) + skip;
          iov[iovcnt].iov_len = part.size() - skip;
          skip = 0;
          ++iovcnt;
        }
      }
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<std::size_t>(iovcnt);
    const ssize_t n = ::sendmsg(c.fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return false;
      c.send_failed = true; // peer is gone; the maintain pass tears down
      c.outq.clear();
      return true;
    }
    std::size_t advanced = static_cast<std::size_t>(n);
    while (advanced > 0 && !c.outq.empty()) {
      RConn::OutBuf& front = c.outq.front();
      const std::size_t remaining = front.size - front.off;
      if (advanced >= remaining) {
        advanced -= remaining;
        c.outq.pop_front(); // releases the slab back to the arena
      } else {
        front.off += advanced;
        advanced = 0;
      }
    }
  }
  return true;
}

void NexusdServer::ReactorMaintain(const std::shared_ptr<RConn>& conn) {
  RConn& c = *conn;
  // Two passes: the first may resume a paused connection (which parses
  // and reads), the second settles interest afterwards. A connection that
  // pauses again schedules its own next maintain via OnHandlerDone.
  for (int pass = 0; pass < 2; ++pass) {
    if (c.finalized) return;

    bool failed, flushed, pending;
    {
      const std::lock_guard<std::mutex> lock(c.send_mu);
      c.arm_posted = false;
      if (!c.send_failed) FlushSendQueue(c);
      failed = c.send_failed;
      pending = !c.outq.empty();
      flushed = !failed && !pending;
    }
    if (failed) ReactorTeardown(conn, /*drain=*/false);

    bool finish = false, migrate = false, resume = false, reads_off;
    {
      const std::lock_guard<std::mutex> lock(c.mu);
      c.maintain_posted = false;
      if (c.paused && !c.dead && !c.draining && !c.migrating &&
          c.inflight < options_.max_inflight_per_connection) {
        c.paused = false;
        resume = true;
      }
      reads_off = c.paused || c.dead || c.draining || c.migrating;
      const bool idle = c.inflight == 0 && c.ordered.empty();
      if (idle) {
        if (c.dead) {
          finish = true;
        } else if (c.draining && flushed) {
          finish = true;
        } else if (c.migrating && flushed) {
          migrate = true;
        }
      }
    }
    if (finish) {
      ReactorFinalize(conn);
      return;
    }
    if (migrate) {
      ReactorMigrate(conn);
      return;
    }

    std::uint32_t interest = 0;
    if (!reads_off) interest |= Reactor::kRead;
    if (pending) interest |= Reactor::kWrite;
    if (interest != c.interest) {
      c.interest = interest;
      if (!reactor_->Modify(c.fd, interest).ok()) {
        // Registry refused the update: the connection can never be woken
        // for the interest it needs, so it cannot make progress.
        ReactorTeardown(conn, /*drain=*/false);
        continue; // let the finalize check run with the new dead flag
      }
    }

    if (!resume) return;
    ReactorOnReadable(conn); // re-parse leftovers, then pull fresh bytes
  }
}

void NexusdServer::ReactorTeardown(const std::shared_ptr<RConn>& conn,
                                   bool drain) {
  RConn& c = *conn;
  if (c.finalized) return;
  {
    const std::lock_guard<std::mutex> lock(c.mu);
    if (drain) {
      c.draining = true; // stop reading; queued replies still go out
    } else {
      c.dead = true;
    }
  }
  if (!drain) {
    {
      const std::lock_guard<std::mutex> lock(c.send_mu);
      c.send_failed = true;
      c.outq.clear();
    }
    ::shutdown(c.fd, SHUT_RDWR);
  }
  // Input buffers are dead weight from here.
  c.in.reset();
  c.in_begin = 0;
  c.big = Bytes{};
  c.big_filled = 0;
  c.big_need = 0;
}

void NexusdServer::ReactorFinalize(const std::shared_ptr<RConn>& conn) {
  RConn& c = *conn;
  if (c.finalized) return;
  c.finalized = true;
  reactor_->Remove(c.fd);
  rconns_.erase(c.fd);
  ::shutdown(c.fd, SHUT_RDWR);
  std::map<std::uint64_t, ConnState::OpenStream> streams;
  {
    const std::lock_guard<std::mutex> lock(c.proto.stream_mu);
    streams.swap(c.proto.streams);
  }
  const std::size_t aborted = streams.size();
  streams.clear(); // destructors abort anything uncommitted
  if (c.proto.subscription != nullptr) {
    // Reachable only when the subscribe reply never made it out (the
    // success path migrates instead of finalizing).
    CleanupSession(c.proto.subscription);
    c.proto.subscription.reset();
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stats_.streams_aborted_on_disconnect += aborted;
    stats_.open_streams -= aborted;
    live_fds_.erase(std::remove(live_fds_.begin(), live_fds_.end(), c.fd),
                    live_fds_.end());
    --reactor_conns_;
  }
  drain_cv_.notify_all();
  // The fd closes when the last shared_ptr reference drops (RConn dtor).
}

void NexusdServer::ReactorMigrate(const std::shared_ptr<RConn>& conn) {
  RConn& c = *conn;
  if (c.finalized) return;
  c.finalized = true;
  reactor_->Remove(c.fd);
  rconns_.erase(c.fd);
  c.in.reset();
  c.in_begin = 0;

  // The invalidation channel lives on a dedicated ack thread with the
  // blocking framed transport — exactly the thread-per-connection shape,
  // so FinishMutation's push/ack protocol is one code path for both
  // modes. Restore blocking I/O before the handoff.
  const int flags = ::fcntl(c.fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(c.fd, F_SETFL, flags & ~O_NONBLOCK);
  c.migrated = true; // the transport owns the fd now
  auto channel = std::make_unique<TcpTransport>(c.fd, /*io_deadline_ms=*/-1);
  std::shared_ptr<LeaseSession> session = std::move(c.proto.subscription);
  {
    const std::lock_guard<std::mutex> lock(session->mu);
    if (!session->dead) session->channel = channel.get();
  }

  std::map<std::uint64_t, ConnState::OpenStream> streams;
  {
    const std::lock_guard<std::mutex> lock(c.proto.stream_mu);
    streams.swap(c.proto.streams);
  }
  const std::size_t aborted = streams.size();
  streams.clear();

  const int fd = c.fd; // stays in live_fds_ so Stop() unblocks the channel
  std::thread ack([this, fd, channel = std::move(channel), session] {
    AckLoop(*channel, session);
    CleanupSession(session);
    const std::lock_guard<std::mutex> lock(mu_);
    live_fds_.erase(std::remove(live_fds_.begin(), live_fds_.end(), fd),
                    live_fds_.end());
    // `channel` closes the fd on thread exit.
  });
  {
    const std::lock_guard<std::mutex> lock(mu_);
    lease_threads_.push_back(std::move(ack));
    stats_.streams_aborted_on_disconnect += aborted;
    stats_.open_streams -= aborted;
    --reactor_conns_;
  }
  drain_cv_.notify_all();
}

} // namespace nexus::net
