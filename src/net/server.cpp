#include "net/server.hpp"

#include <algorithm>
#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "cache/cache_counters.hpp"
#include "common/clock.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"
#include "trace/trace.hpp"

namespace nexus::net {

namespace {

Status Errno(const std::string& what) {
  return Error(ErrorCode::kIOError, what + ": " + std::strerror(errno));
}

} // namespace

NexusdServer::NexusdServer(storage::StorageBackend& backend,
                           NexusdOptions options)
    : backend_(backend), options_(std::move(options)) {}

NexusdServer::~NexusdServer() { Stop(); }

Result<std::unique_ptr<NexusdServer>> NexusdServer::Start(
    storage::StorageBackend& backend, NexusdOptions options) {
  auto server = std::unique_ptr<NexusdServer>(
      new NexusdServer(backend, std::move(options)));

  server->lease_break_ms_ = server->options_.lease_break_ms;
  if (server->lease_break_ms_ <= 0) {
    const char* env = std::getenv("NEXUS_LEASE_BREAK_MS");
    const int v = (env != nullptr && *env != '\0') ? std::atoi(env) : 0;
    server->lease_break_ms_ = v > 0 ? v : 1000;
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server->options_.port);
  if (::inet_pton(AF_INET, server->options_.bind_address.c_str(),
                  &addr.sin_addr) != 1) {
    ::close(fd);
    return Error(ErrorCode::kInvalidArgument,
                 "bad bind address: " + server->options_.bind_address);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status err = Errno("bind");
    ::close(fd);
    return err;
  }
  if (::listen(fd, 64) != 0) {
    const Status err = Errno("listen");
    ::close(fd);
    return err;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const Status err = Errno("getsockname");
    ::close(fd);
    return err;
  }

  server->listen_fd_ = fd;
  server->port_ = ntohs(addr.sin_port);
  server->pool_ = std::make_unique<parallel::ThreadPool>(
      std::max<std::size_t>(1, server->options_.workers));
  if (server->options_.rpc_workers > 0) {
    // Handlers live on their own pool: if they shared the connection
    // pool, enough simultaneous connections would occupy every worker
    // with readers and the handlers they wait on could never run.
    server->rpc_pool_ =
        std::make_unique<parallel::ThreadPool>(server->options_.rpc_workers);
  }
  server->connections_ =
      std::make_unique<parallel::TaskGroup>(server->pool_.get());
  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

void NexusdServer::Stop() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    if (listen_fd_ >= 0) {
      ::shutdown(listen_fd_, SHUT_RDWR);
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    // Unblock every worker parked in a read on a live connection.
    for (const int fd : live_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // Connections drain first: every lease thread is spawned (and recorded)
  // by a ServeConnection, so after WaitAll the vector is complete.
  if (connections_) connections_->WaitAll();
  std::vector<std::thread> acks;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    acks.swap(lease_threads_);
  }
  for (std::thread& t : acks) t.join();
}

NexusdServer::Stats NexusdServer::stats() const {
  Stats out;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    out = stats_;
    out.active_connections = live_fds_.size();
  }
  {
    const std::lock_guard<std::mutex> lock(lease_mu_);
    out.lease_sessions = sessions_.size();
  }
  return out;
}

ServerStats NexusdServer::WireStats() const {
  ServerStats out;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    out.connections_accepted = stats_.connections_accepted;
    out.active_connections = live_fds_.size();
    out.rpcs_served = stats_.rpcs_served;
    out.protocol_errors = stats_.protocol_errors;
    out.open_streams = stats_.open_streams;
    out.streams_aborted_on_disconnect = stats_.streams_aborted_on_disconnect;
    out.bytes_received = stats_.bytes_received;
    out.bytes_sent = stats_.bytes_sent;
    out.leases_granted = stats_.leases_granted;
    out.leases_broken = stats_.leases_broken;
    out.invalidations_sent = stats_.invalidations_sent;
    out.lease_break_timeouts = stats_.lease_break_timeouts;
    for (std::size_t i = static_cast<std::size_t>(Rpc::kPing); i < kRpcSlots;
         ++i) {
      if (per_op_[i].count == 0) continue;
      RpcOpStats row;
      row.rpc = static_cast<std::uint8_t>(i);
      row.count = per_op_[i].count;
      row.bytes_in = per_op_[i].bytes_in;
      row.bytes_out = per_op_[i].bytes_out;
      out.per_op.push_back(row);
    }
  }
  {
    const std::lock_guard<std::mutex> lock(lease_mu_);
    out.lease_sessions = sessions_.size();
  }
  // Process-wide object-cache counters: non-zero when this daemon fronts
  // its backend with cache::CachedBackend (nexusd --cache-mem).
  const cache::CacheCounters cc = cache::GlobalCacheSnapshot();
  out.cache_mem_hits = cc.mem_hits;
  out.cache_disk_hits = cc.disk_hits;
  out.cache_misses = cc.misses;
  out.cache_evictions = cc.evictions_mem + cc.evictions_disk;
  out.cache_writeback_batches = cc.writeback_batches;
  out.cache_invalidations = cc.invalidations_received;
  out.cache_dirty_high_water = cc.dirty_bytes_high_water;
  // Histograms are internally synchronized; read them outside mu_.
  for (RpcOpStats& row : out.per_op) {
    const trace::Histogram& h = op_latency_ns_[row.rpc];
    row.p50_ms = h.PercentileMs(0.50);
    row.p99_ms = h.PercentileMs(0.99);
  }
  return out;
}

void NexusdServer::AcceptLoop() {
  for (;;) {
    int listen_fd;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
      listen_fd = listen_fd_;
    }
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return; // listener closed (Stop) or fatal: stop accepting
    }
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        ::close(fd);
        return;
      }
      ++stats_.connections_accepted;
      live_fds_.push_back(fd);
    }
    connections_->Submit(
        [this, fd](parallel::WorkerContext&) { ServeConnection(fd); });
  }
}

// ---- lease machinery --------------------------------------------------------

std::shared_ptr<NexusdServer::LeaseSession> NexusdServer::FindSession(
    std::uint64_t sid) {
  const std::lock_guard<std::mutex> lock(lease_mu_);
  const auto it = sessions_.find(sid);
  return it == sessions_.end() ? nullptr : it->second;
}

bool NexusdServer::PreGrantLease(const std::string& name, std::uint64_t sid,
                                 std::uint64_t* version_before) {
  const std::lock_guard<std::mutex> lock(lease_mu_);
  if (!sessions_.contains(sid)) return false;
  // Register as a holder BEFORE the backend read: a mutation finishing
  // after this point collects (and invalidates) this session, so even a
  // read that returns just-overwritten bytes gets its invalidation.
  *version_before = object_version_[name];
  holders_[name].insert(sid);
  return true;
}

bool NexusdServer::PostGrantLease(const std::string& name, std::uint64_t sid,
                                  std::uint64_t version_before, bool read_ok) {
  bool granted = false;
  {
    const std::lock_guard<std::mutex> lock(lease_mu_);
    const auto h = holders_.find(name);
    const bool still_held = h != holders_.end() && h->second.contains(sid);
    if (read_ok && still_held && sessions_.contains(sid) &&
        object_version_[name] == version_before) {
      granted = true;
    } else if (still_held) {
      // Denied (version moved, read failed, or session died): withdraw
      // the registration so the holder set stays exact.
      h->second.erase(sid);
      if (h->second.empty()) holders_.erase(h);
    }
  }
  if (granted) {
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.leases_granted;
  }
  return granted;
}

void NexusdServer::BeginMutation(const std::string& name) {
  const std::lock_guard<std::mutex> lock(lease_mu_);
  ++object_version_[name];
}

void NexusdServer::FinishMutation(const std::string& name,
                                  std::uint64_t writer_sid) {
  std::vector<std::shared_ptr<LeaseSession>> targets;
  {
    const std::lock_guard<std::mutex> lock(lease_mu_);
    const auto h = holders_.find(name);
    if (h == holders_.end()) return;
    for (const std::uint64_t sid : h->second) {
      if (sid == writer_sid) continue; // the writer invalidates itself
      const auto s = sessions_.find(sid);
      if (s != sessions_.end()) targets.push_back(s->second);
    }
    holders_.erase(h);
  }
  if (targets.empty()) return;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stats_.leases_broken += targets.size();
  }

  trace::Span span("cache.lease_break", "net.server");
  // Push to every holder first, then collect acks — the ack waits overlap
  // instead of serializing full round trips.
  struct Push {
    std::shared_ptr<LeaseSession> session;
    std::uint64_t corr = 0;
  };
  std::vector<Push> pushes;
  pushes.reserve(targets.size());
  std::uint64_t sent = 0;
  for (const auto& session : targets) {
    Push push{session, NextCorrelationId()};
    Writer frame = BeginRequest(Rpc::kInvalidate, push.corr, 4);
    EncodeNameList(frame, {name});
    bool delivered = false;
    {
      const std::lock_guard<std::mutex> lock(session->mu);
      if (!session->dead && session->channel != nullptr) {
        // Register the pending ack BEFORE sending: the client's ack can
        // race back faster than this thread resumes.
        session->pending_acks.insert(push.corr);
        delivered = session->channel->SendFrame(frame.bytes()).ok();
        if (!delivered) session->pending_acks.erase(push.corr);
      }
    }
    if (delivered) {
      ++sent;
      pushes.push_back(std::move(push));
    }
  }
  if (sent > 0) {
    const std::lock_guard<std::mutex> lock(mu_);
    stats_.invalidations_sent += sent;
  }

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(lease_break_ms_);
  for (const Push& push : pushes) {
    std::unique_lock<std::mutex> lock(push.session->mu);
    const bool acked = push.session->cv.wait_until(lock, deadline, [&] {
      return push.session->dead ||
             !push.session->pending_acks.contains(push.corr);
    });
    if (acked) continue;
    // The holder never answered: kill its session so the break completes
    // in bounded time. Its reader observes the shutdown, tears the
    // session down, and the client's channel-down path demotes every
    // leased entry to TTL — staleness stays bounded either way.
    push.session->dead = true;
    if (push.session->channel != nullptr) push.session->channel->Shutdown();
    lock.unlock();
    push.session->cv.notify_all();
    const std::lock_guard<std::mutex> stats_lock(mu_);
    ++stats_.lease_break_timeouts;
  }
}

void NexusdServer::AckLoop(TcpTransport& transport,
                           const std::shared_ptr<LeaseSession>& session) {
  // After kLeaseSubscribe the connection inverts: the server originates
  // request-format kInvalidate frames (FinishMutation) and the client
  // answers with response frames, which are all this loop ever reads.
  for (;;) {
    auto frame = transport.RecvFrame();
    if (!frame.ok()) break; // disconnect, reset, Stop(), or break timeout
    const std::uint64_t corr = ResponseCorrelation(frame.value());
    if (corr == 0) break; // not a response frame: protocol violation
    {
      const std::lock_guard<std::mutex> lock(session->mu);
      session->pending_acks.erase(corr);
    }
    session->cv.notify_all();
  }
}

void NexusdServer::CleanupSession(
    const std::shared_ptr<LeaseSession>& session) {
  {
    const std::lock_guard<std::mutex> lock(lease_mu_);
    sessions_.erase(session->id);
    for (auto it = holders_.begin(); it != holders_.end();) {
      it->second.erase(session->id);
      if (it->second.empty()) {
        it = holders_.erase(it);
      } else {
        ++it;
      }
    }
  }
  {
    const std::lock_guard<std::mutex> lock(session->mu);
    session->dead = true;
    session->channel = nullptr;
    session->pending_acks.clear();
  }
  session->cv.notify_all(); // writers waiting on acks see `dead`
}

// ---- the serve loop ---------------------------------------------------------

void NexusdServer::ServeConnection(int fd) {
  // Block-forever reads: Stop() shutdown()s the fd, which surfaces as a
  // clean "closed by peer" and ends the loop. Heap-owned so a connection
  // that becomes a lease subscription can hand its transport to the
  // dedicated ack thread.
  auto owned = std::make_unique<TcpTransport>(fd, /*io_deadline_ms=*/-1);
  TcpTransport& transport = *owned;

  // Shared between this reader and its handler tasks on rpc_pool_.
  struct ConnCtx {
    std::mutex send_mu; // serializes whole response frames onto the fd
    bool send_failed = false; // under send_mu; reader stops pulling
    std::mutex mu;
    std::condition_variable cv;
    std::size_t inflight = 0; // handler tasks not yet finished
  };
  const auto ctx = std::make_shared<ConnCtx>();
  // With no rpc pool the group executes inline on this thread: the serial
  // and pipelined server share one code shape.
  parallel::TaskGroup handlers(rpc_pool_.get());

  // In-flight put streams, scoped to this connection. Destruction aborts
  // whatever the client never committed (DiskPutStream removes its temp
  // file), so a dropped connection leaves the store untouched. The name
  // rides along so Commit can run the lease-break protocol.
  struct OpenStream {
    std::unique_ptr<storage::StorageBackend::PutStream> stream;
    std::string name;
  };
  std::map<std::uint64_t, OpenStream> streams;
  std::uint64_t next_stream_handle = 1;

  // v4 connection state: the lease session this data connection belongs
  // to (kLeaseAttach), and the session this connection BECAME the
  // invalidation channel of (kLeaseSubscribe).
  std::uint64_t attached_session = 0;
  std::shared_ptr<LeaseSession> subscription;

  for (;;) {
    auto frame = transport.RecvFrame();
    if (!frame.ok()) break; // disconnect, reset, or Stop()
    const std::uint64_t service_start_ns = MonotonicNanos();

    Reader reader(frame.value());
    Writer response;
    bool close_connection = false;

    std::uint64_t corr = 0;
    std::uint8_t version = kProtocolVersion;
    auto rpc = ParseRequestHead(reader, &corr, &version);
    if (!rpc.ok() || version > options_.max_protocol_version) {
      // Malformed head — or a version this deployment was told not to
      // speak (a max_protocol_version=2 nexusd is how interop tests stand
      // up a "legacy" server; to it, a v3 head is as alien as garbage).
      const std::lock_guard<std::mutex> lock(mu_);
      ++stats_.protocol_errors;
      break;
    }
    const auto op = static_cast<std::size_t>(rpc.value());
    const std::size_t frame_bytes = frame.value().size();

    // Stateless ops assign `execute` (argument decoding stays HERE, in
    // arrival order, so a malformed frame kills the connection at a
    // deterministic point in the stream); stream ops run inline below and
    // fill `response` directly. Responses always echo the request's head
    // version: a v2 client must never see a version byte it rejects.
    std::function<Writer()> execute;

    switch (rpc.value()) {
      case Rpc::kPing: {
        // A v3+ client appends a probe byte naming its own max version; a
        // v2 client appends nothing. Only a probed v3+ server answers with
        // a version byte, so every other pairing stays byte-identical to
        // the v2 exchange — negotiation is invisible to old peers.
        std::uint8_t probe = 0;
        if (reader.Remaining() > 0) {
          auto p = reader.U8();
          if (p.ok()) probe = p.value();
        }
        const bool advertise =
            probe >= 3 && options_.max_protocol_version >= 3;
        const std::uint8_t offer = std::min(
            {kProtocolVersion, options_.max_protocol_version, probe});
        execute = [corr, version, advertise, offer] {
          Writer r = BeginResponse(Status::Ok(), corr, version);
          if (advertise) r.U8(offer);
          return r;
        };
        break;
      }
      case Rpc::kGet: {
        auto name = reader.Str();
        if (!name.ok()) {
          close_connection = true;
          break;
        }
        // v4 Gets carry a trailing want-lease byte (absent = 0).
        std::uint8_t want_lease = 0;
        if (version >= 4 && reader.Remaining() > 0) {
          auto w = reader.U8();
          if (w.ok()) want_lease = w.value();
        }
        const std::uint64_t sid = attached_session;
        execute = [this, corr, version, sid, want_lease,
                   name = std::move(name).value()] {
          std::uint64_t v0 = 0;
          bool granted = version >= 4 && want_lease != 0 && sid != 0 &&
                         PreGrantLease(name, sid, &v0);
          auto data = backend_.Get(name);
          if (granted) granted = PostGrantLease(name, sid, v0, data.ok());
          if (!data.ok()) return BeginResponse(data.status(), corr, version);
          Writer r = BeginResponse(Status::Ok(), corr, version);
          r.Var(data.value());
          if (version >= 4) r.U8(granted ? 1 : 0);
          return r;
        };
        break;
      }
      case Rpc::kPut: {
        auto name = reader.Str();
        if (!name.ok()) {
          close_connection = true;
          break;
        }
        auto data = reader.Var(kMaxObjectBytes);
        if (!data.ok()) {
          close_connection = true;
          break;
        }
        const std::uint64_t sid = attached_session;
        execute = [this, corr, version, sid, name = std::move(name).value(),
                   data = std::move(data).value()] {
          BeginMutation(name);
          const Status verdict = backend_.Put(name, data);
          FinishMutation(name, sid);
          return BeginResponse(verdict, corr, version);
        };
        break;
      }
      case Rpc::kDelete: {
        auto name = reader.Str();
        if (!name.ok()) {
          close_connection = true;
          break;
        }
        const std::uint64_t sid = attached_session;
        execute = [this, corr, version, sid,
                   name = std::move(name).value()] {
          BeginMutation(name);
          const Status verdict = backend_.Delete(name);
          FinishMutation(name, sid);
          return BeginResponse(verdict, corr, version);
        };
        break;
      }
      case Rpc::kExists: {
        auto name = reader.Str();
        if (!name.ok()) {
          close_connection = true;
          break;
        }
        execute = [this, corr, version, name = std::move(name).value()] {
          Writer r = BeginResponse(Status::Ok(), corr, version);
          r.U8(backend_.Exists(name) ? 1 : 0);
          return r;
        };
        break;
      }
      case Rpc::kList: {
        auto prefix = reader.Str();
        if (!prefix.ok()) {
          close_connection = true;
          break;
        }
        execute = [this, corr, version, prefix = std::move(prefix).value()] {
          const std::vector<std::string> names = backend_.List(prefix);
          std::size_t payload = 0;
          for (const auto& n : names) payload += n.size() + 4;
          if (payload > kMaxObjectBytes) {
            return BeginResponse(
                Error(ErrorCode::kOutOfRange, "listing exceeds frame bound"),
                corr, version);
          }
          Writer r = BeginResponse(Status::Ok(), corr, version);
          r.U32(static_cast<std::uint32_t>(names.size()));
          for (const auto& n : names) r.Str(n);
          return r;
        };
        break;
      }
      case Rpc::kMultiGet: {
        auto names = DecodeNameList(reader);
        if (!names.ok()) {
          close_connection = true;
          break;
        }
        execute = [this, corr, version, names = std::move(names).value()] {
          std::vector<Result<Bytes>> fetched = backend_.MultiGet(names);
          // Budget the ENCODED payload at kMaxObjectBytes; from the first
          // entry that would overflow, everything becomes deferred (one
          // byte each, well inside the frame cap's slack) and the client
          // re-fetches those names as single Gets.
          std::vector<MultiGetEntry> entries;
          entries.reserve(fetched.size());
          std::size_t used = 4; // the entry-count u32
          bool overflowed = false;
          for (Result<Bytes>& result : fetched) {
            MultiGetEntry entry; // defaults to kDeferred
            if (!overflowed) {
              const std::size_t cost =
                  result.ok() ? 1 + 4 + result.value().size()
                              : 1 + 1 + 4 + result.status().message().size();
              if (used + cost > kMaxObjectBytes) {
                overflowed = true;
              } else if (result.ok()) {
                used += cost;
                entry.state = MultiGetEntry::State::kOk;
                entry.data = std::move(result).value();
              } else {
                used += cost;
                entry.state = MultiGetEntry::State::kError;
                entry.error = result.status();
              }
            }
            entries.push_back(std::move(entry));
          }
          Writer r = BeginResponse(Status::Ok(), corr, version);
          EncodeMultiGetEntries(r, entries);
          return r;
        };
        break;
      }
      case Rpc::kMultiExists: {
        auto names = DecodeNameList(reader);
        if (!names.ok()) {
          close_connection = true;
          break;
        }
        execute = [this, corr, version, names = std::move(names).value()] {
          const std::vector<bool> flags = backend_.MultiExists(names);
          Writer r = BeginResponse(Status::Ok(), corr, version);
          for (const bool flag : flags) r.U8(flag ? 1 : 0);
          return r;
        };
        break;
      }
      case Rpc::kStats: {
        execute = [this, corr, version] {
          Writer r = BeginResponse(Status::Ok(), corr, version);
          EncodeServerStats(r, WireStats());
          return r;
        };
        break;
      }
      case Rpc::kLeaseSubscribe: {
        // This connection becomes the session's invalidation channel: the
        // response below is the LAST ordinary reply on it; afterwards the
        // reader switches to the ack loop.
        trace::Span span(RpcName(rpc.value()), "net.server");
        span.SetCorrelation(corr);
        if (subscription != nullptr) {
          close_connection = true; // double-subscribe: protocol error
          break;
        }
        auto session = std::make_shared<LeaseSession>();
        {
          const std::lock_guard<std::mutex> lock(lease_mu_);
          session->id = next_session_id_++;
          sessions_[session->id] = session;
        }
        {
          const std::lock_guard<std::mutex> lock(session->mu);
          session->channel = &transport;
        }
        subscription = session;
        response = BeginResponse(Status::Ok(), corr, version);
        response.U64(session->id);
        break;
      }
      case Rpc::kLeaseAttach: {
        trace::Span span(RpcName(rpc.value()), "net.server");
        span.SetCorrelation(corr);
        auto sid = reader.U64();
        if (!sid.ok()) {
          close_connection = true;
          break;
        }
        // Inline (not pooled): attachment must order before the Gets and
        // Puts pipelined behind it on this connection.
        if (FindSession(sid.value()) != nullptr) {
          attached_session = sid.value();
          response = BeginResponse(Status::Ok(), corr, version);
        } else {
          response = BeginResponse(
              Error(ErrorCode::kNotFound, "unknown lease session"), corr,
              version);
        }
        break;
      }
      case Rpc::kInvalidate: {
        // Server-originated only; a client sending it is desynchronized.
        close_connection = true;
        break;
      }
      case Rpc::kStreamBegin: {
        trace::Span span(RpcName(rpc.value()), "net.server");
        span.SetCorrelation(corr);
        auto name = reader.Str();
        if (!name.ok()) {
          close_connection = true;
          break;
        }
        auto stream = backend_.OpenPutStream(name.value());
        if (stream.ok()) {
          const std::uint64_t handle = next_stream_handle++;
          streams[handle] =
              OpenStream{std::move(stream).value(), std::move(name).value()};
          response = BeginResponse(Status::Ok(), corr, version);
          response.U64(handle);
          const std::lock_guard<std::mutex> lock(mu_);
          ++stats_.open_streams;
        } else {
          response = BeginResponse(stream.status(), corr, version);
        }
        break;
      }
      case Rpc::kStreamAppend: {
        trace::Span span(RpcName(rpc.value()), "net.server");
        span.SetCorrelation(corr);
        auto handle = reader.U64();
        if (!handle.ok()) {
          close_connection = true;
          break;
        }
        auto segment = reader.Var(kMaxObjectBytes);
        if (!segment.ok()) {
          close_connection = true;
          break;
        }
        const auto it = streams.find(handle.value());
        if (it == streams.end()) {
          response = BeginResponse(
              Error(ErrorCode::kInvalidArgument, "unknown stream handle"),
              corr, version);
        } else {
          response = BeginResponse(it->second.stream->Append(segment.value()),
                                   corr, version);
        }
        break;
      }
      case Rpc::kStreamCommit: {
        trace::Span span(RpcName(rpc.value()), "net.server");
        span.SetCorrelation(corr);
        auto handle = reader.U64();
        if (!handle.ok()) {
          close_connection = true;
          break;
        }
        const auto it = streams.find(handle.value());
        if (it == streams.end()) {
          response = BeginResponse(
              Error(ErrorCode::kInvalidArgument, "unknown stream handle"),
              corr, version);
        } else {
          // Commit publishes a new object atomically: same lease-break
          // protocol as Put, bracketing the backend call.
          const std::string name = it->second.name;
          BeginMutation(name);
          const Status verdict = it->second.stream->Commit();
          FinishMutation(name, attached_session);
          response = BeginResponse(verdict, corr, version);
          streams.erase(it);
          const std::lock_guard<std::mutex> lock(mu_);
          --stats_.open_streams;
        }
        break;
      }
      case Rpc::kStreamAbort: {
        trace::Span span(RpcName(rpc.value()), "net.server");
        span.SetCorrelation(corr);
        auto handle = reader.U64();
        if (!handle.ok()) {
          close_connection = true;
          break;
        }
        const auto it = streams.find(handle.value());
        if (it == streams.end()) {
          response = BeginResponse(
              Error(ErrorCode::kInvalidArgument, "unknown stream handle"),
              corr, version);
        } else {
          it->second.stream->Abort();
          streams.erase(it);
          response = BeginResponse(Status::Ok(), corr, version);
          const std::lock_guard<std::mutex> lock(mu_);
          --stats_.open_streams;
        }
        break;
      }
    }

    if (close_connection) {
      const std::lock_guard<std::mutex> lock(mu_);
      ++stats_.protocol_errors;
      break;
    }

    if (execute) {
      // Backpressure: cap this connection's outstanding handlers so one
      // client cannot queue unbounded work (and memory) behind a slow
      // backend.
      {
        std::unique_lock<std::mutex> lock(ctx->mu);
        ctx->cv.wait(lock, [&] {
          return ctx->inflight < options_.max_inflight_per_connection;
        });
        ++ctx->inflight;
      }
      handlers.Submit([this, ctx, &transport, op, frame_bytes, corr,
                       service_start_ns, name = RpcName(rpc.value()),
                       execute = std::move(execute)](parallel::WorkerContext&) {
        // One span per served request, tagged with the client's
        // correlation id so client and server spans can be matched up.
        trace::Span span(name, "net.server");
        span.SetCorrelation(corr);
        const Writer response = execute();
        // Count BEFORE sending: a client that has the response in hand
        // (and asks for Stats) must find it already reflected.
        {
          const std::lock_guard<std::mutex> lock(mu_);
          ++stats_.rpcs_served;
          stats_.bytes_received += frame_bytes + 4;
          stats_.bytes_sent += response.bytes().size() + 4;
          ++per_op_[op].count;
          per_op_[op].bytes_in += frame_bytes;
          per_op_[op].bytes_out += response.bytes().size();
        }
        {
          const std::lock_guard<std::mutex> lock(ctx->send_mu);
          if (!ctx->send_failed &&
              !transport.SendFrame(response.bytes()).ok()) {
            ctx->send_failed = true;
          }
        }
        op_latency_ns_[op].Record(MonotonicNanos() - service_start_ns);
        {
          const std::lock_guard<std::mutex> lock(ctx->mu);
          --ctx->inflight;
        }
        ctx->cv.notify_one();
      });
      const std::lock_guard<std::mutex> lock(ctx->send_mu);
      if (ctx->send_failed) break; // peer is gone; stop pulling frames
      continue;
    }

    // Inline (stream) path: same count-before-send ordering as always.
    {
      const std::lock_guard<std::mutex> lock(mu_);
      ++stats_.rpcs_served;
      stats_.bytes_received += frame_bytes + 4;
      stats_.bytes_sent += response.bytes().size() + 4;
      ++per_op_[op].count;
      per_op_[op].bytes_in += frame_bytes;
      per_op_[op].bytes_out += response.bytes().size();
    }
    bool sent;
    {
      const std::lock_guard<std::mutex> lock(ctx->send_mu);
      sent = !ctx->send_failed && transport.SendFrame(response.bytes()).ok();
      if (!sent) ctx->send_failed = true;
    }
    op_latency_ns_[op].Record(MonotonicNanos() - service_start_ns);
    if (!sent) break;

    if (subscription != nullptr) {
      // The subscribe reply is out; from here the connection carries only
      // server pushes and client acks. Subscriptions live as long as the
      // client, so the ack loop moves to a dedicated thread: pool workers
      // (options_.workers) stay available for data connections instead of
      // being pinned by every subscriber.
      std::thread ack([this, fd, channel = std::move(owned),
                       session = std::move(subscription)] {
        AckLoop(*channel, session);
        CleanupSession(session);
        const std::lock_guard<std::mutex> lock(mu_);
        live_fds_.erase(std::remove(live_fds_.begin(), live_fds_.end(), fd),
                        live_fds_.end());
        // `channel` closes the fd on thread exit.
      });
      handlers.WaitAll();
      {
        const std::lock_guard<std::mutex> lock(mu_);
        lease_threads_.push_back(std::move(ack));
        stats_.streams_aborted_on_disconnect += streams.size();
        stats_.open_streams -= streams.size();
      }
      return; // fd teardown now belongs to the ack thread
    }
  }

  // Drain the handlers before the transport (their send target) and the
  // stats teardown below.
  handlers.WaitAll();

  // Reachable with a live session only when the subscribe reply itself
  // failed to send (the success path detaches above).
  if (subscription != nullptr) CleanupSession(subscription);

  {
    const std::lock_guard<std::mutex> lock(mu_);
    stats_.streams_aborted_on_disconnect += streams.size();
    stats_.open_streams -= streams.size();
    live_fds_.erase(std::remove(live_fds_.begin(), live_fds_.end(), fd),
                    live_fds_.end());
  }
  // `transport` closes the fd; `streams` aborts anything uncommitted.
}

} // namespace nexus::net
