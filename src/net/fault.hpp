// Deterministic fault injection between RemoteBackend and nexusd.
//
// FaultyTransport wraps a live TcpTransport and, per request frame, draws
// from a seeded PRNG to decide whether the frame travels cleanly or
// suffers one of four failures an unreliable untrusted server can inflict:
//
//   drop_request   — the request never reaches the server; the client
//                    waits out its deadline (reported instantly: the
//                    deadline expiry is SIMULATED, no real sleep, which
//                    keeps the fault suite fast and flake-free),
//   drop_response  — the server RECEIVES AND APPLIES the RPC but the
//                    response is swallowed; client sees a deadline expiry
//                    with the outcome genuinely ambiguous,
//   truncate       — a torn frame then close: the server observes a
//                    mid-frame EOF (crash mid-write) and drops the
//                    connection; any server-side stream state is aborted,
//   reset          — connection reset before the request is sent.
//
// Decisions depend only on (seed, frame index), so a fixed seed replays
// the exact same fault schedule — assertions on retry counts and final
// state are deterministic.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "net/transport.hpp"

namespace nexus::net {

/// Per-frame fault probabilities in [0,1]; evaluated in the order below
/// from one uniform draw, so their sum must stay <= 1.
struct FaultSpec {
  double drop_request = 0;
  double drop_response = 0;
  double truncate = 0;
  double reset = 0;
};

/// Injection tallies, shared across reconnections of one test scenario.
/// Atomics: with the multiplexed client several pooled connections (each
/// its own FaultyTransport) may tally into one shared FaultStats at once.
struct FaultStats {
  std::atomic<std::uint64_t> clean{0};
  std::atomic<std::uint64_t> dropped_requests{0};
  std::atomic<std::uint64_t> dropped_responses{0};
  std::atomic<std::uint64_t> truncated{0};
  std::atomic<std::uint64_t> resets{0};

  [[nodiscard]] std::uint64_t injected() const noexcept {
    return dropped_requests + dropped_responses + truncated + resets;
  }
};

class FaultyTransport final : public Transport {
 public:
  /// `seed` fixes the fault schedule; mix the reconnect attempt number
  /// into it (factory side) so every fresh connection draws a distinct
  /// but reproducible schedule. `stats` may be shared across connections.
  FaultyTransport(std::unique_ptr<TcpTransport> inner, FaultSpec spec,
                  std::uint64_t seed,
                  std::shared_ptr<FaultStats> stats = nullptr);

  Status SendFrame(ByteSpan payload) override;
  Result<Bytes> RecvFrame() override;
  void Close() override;
  void Shutdown() override;

 private:
  enum class Pending { kNone, kTimeout };

  double NextUnit(); // uniform in [0,1), deterministic; callers hold mu_

  std::unique_ptr<TcpTransport> inner_;
  FaultSpec spec_;
  // The multiplexer calls SendFrame and RecvFrame from different threads;
  // mu_ guards the schedule state (PRNG, pending timeout, broken flag)
  // while the inner blocking I/O runs outside it. Determinism holds
  // because all draws happen in SendFrame, which the mux serializes.
  std::mutex mu_;
  std::uint64_t prng_state_;
  std::shared_ptr<FaultStats> stats_;
  Pending pending_ = Pending::kNone;
  bool broken_ = false;
};

} // namespace nexus::net
