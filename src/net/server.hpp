// nexusd server library: serves any StorageBackend over the wire protocol.
//
// Two serve modes share one protocol engine (DecodeFrame in server.cpp):
//
//  * kReactor (default) — event-driven. A single loop thread owns an
//    epoll/poll Reactor over the nonblocking listener and every DATA
//    connection. Request bytes land in pooled BufferArena slabs and frames
//    are parsed in place; handlers run on the shared rpc pool and stage
//    their responses into a per-connection scatter/gather send queue
//    (small replies coalesce into arena slabs, large MultiGet bodies stay
//    zero-copy), flushed with sendmsg and drained by EPOLLOUT when a
//    socket pushes back. Idle connections cost one registration, not a
//    thread, so the daemon holds thousands of clients at a flat resident
//    thread count (see BENCH_c10k.json).
//
//  * kThreadPerConnection — the original worker-per-connection layout: one
//    listener thread accepts and hands each connection to the
//    parallel::ThreadPool as a long-lived task whose worker owns the
//    connection's READER for its lifetime. The pool's worker count bounds
//    the number of SIMULTANEOUSLY SERVED connections. Kept as the
//    benchmark baseline and as a fallback where the reactor cannot start.
//
// Within one connection, requests are pipelined: frames are parsed in
// arrival order (framing errors must kill the connection
// deterministically) and the stateless RPCs dispatch onto the SEPARATE
// rpc pool, where each finished handler sends its own response — so
// responses can leave out of order, matched back by correlation id on the
// client's demux. The stream RPCs (Begin/Append/Commit/Abort) are
// connection state that the in-order byte stream defines: the legacy mode
// runs them inline on the reader thread, the reactor funnels them through
// a per-connection ordered queue (one in flight at a time, FIFO). The rpc
// pool is distinct from the connection pool so a burst of connections can
// never deadlock waiting for its own workers.
//
// Wire v4 adds lease-based cache coherence. A client turns one connection
// into its invalidation channel with kLeaseSubscribe (the response names a
// session id; from then on the SERVER originates kInvalidate frames on it
// and the client acks each with a response frame), and ties its data
// connections to the session with kLeaseAttach. A v4 Get asking for a
// lease registers the session as a holder of that object BEFORE the
// backend read and re-validates the object's version after it — a
// concurrent mutation between the two denies the lease, so a granted
// lease always covers the exact bytes returned. Mutations bump the
// version first, apply, then break every holder except the writer's own
// session: push the invalidation, wait for the ack up to lease_break_ms,
// and kill the session on timeout — an unresponsive client can delay a
// writer only briefly and can never hold stale data past its TTL.
//
// The daemon is the paper's untrusted storage service: it sees only
// ciphertext and opaque names, so it does no authentication and keeps no
// per-client state beyond in-flight put streams and lease sessions. Those
// streams are scoped to their connection and aborted when it dies — a
// client crash or mid-stream reset can never leave a partially visible
// object (the backend's PutStream publishes atomically at Commit).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/result.hpp"
#include "net/buffer_arena.hpp"
#include "net/wire.hpp"
#include "parallel/thread_pool.hpp"
#include "storage/backend.hpp"
#include "trace/histogram.hpp"

namespace nexus::net {

class TcpTransport;
class Reactor;

/// How nexusd maps connections onto threads (header comment above).
enum class ServeMode {
  kReactor,
  kThreadPerConnection,
};

struct NexusdOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 picks an ephemeral port; read the actual one from port().
  std::uint16_t port = 0;
  /// Event-driven by default; kThreadPerConnection restores the legacy
  /// worker-per-connection layout (and is the C10k bench baseline).
  ServeMode serve_mode = ServeMode::kReactor;
  /// kThreadPerConnection only: pool workers == max concurrently served
  /// DATA connections (the reactor has no such bound). Lease subscription
  /// channels (kLeaseSubscribe) migrate to their own dedicated threads and
  /// do not count against this bound.
  std::size_t workers = 4;
  /// Workers on the shared RPC-handler pool (all connections). 0 runs
  /// every handler inline on its connection's reader thread — strictly
  /// in-order replies, the pre-v3 behavior.
  std::size_t rpc_workers = 4;
  /// Most handler tasks one connection may have outstanding before its
  /// reader stops pulling frames (per-connection backpressure).
  std::size_t max_inflight_per_connection = 64;
  /// Highest wire version this server will accept or advertise — set to 2
  /// to stand up a legacy server for interop tests.
  std::uint8_t max_protocol_version = kProtocolVersion;
  /// How long a mutation waits for a lease holder's invalidation ack
  /// before killing the holder's session. 0 = NEXUS_LEASE_BREAK_MS or
  /// 1000 ms.
  int lease_break_ms = 0;
};

class NexusdServer {
 public:
  /// Binds, listens and starts serving. `backend` must outlive the server
  /// and obey the StorageBackend thread-safety contract.
  static Result<std::unique_ptr<NexusdServer>> Start(
      storage::StorageBackend& backend, NexusdOptions options = {});

  ~NexusdServer();

  NexusdServer(const NexusdServer&) = delete;
  NexusdServer& operator=(const NexusdServer&) = delete;

  /// Stops accepting, unblocks and drains every in-flight connection,
  /// joins all threads. Idempotent.
  void Stop();

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  struct Stats {
    std::uint64_t connections_accepted = 0;
    std::uint64_t rpcs_served = 0;
    std::uint64_t protocol_errors = 0; // malformed frames / bad rpc ids
    std::uint64_t streams_aborted_on_disconnect = 0;
    std::uint64_t bytes_received = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t active_connections = 0; // gauge
    std::uint64_t open_streams = 0;       // gauge
    // v4 lease coherence.
    std::uint64_t lease_sessions = 0; // gauge
    std::uint64_t leases_granted = 0;
    std::uint64_t leases_broken = 0;
    std::uint64_t invalidations_sent = 0;
    std::uint64_t lease_break_timeouts = 0;
  };
  [[nodiscard]] Stats stats() const;

  /// Snapshot served over Rpc::kStats: stats() plus one row per RPC id
  /// actually served, with p50/p99 service latency from the per-op
  /// histograms, plus the process-wide object-cache counters (non-zero
  /// when this daemon fronts its backend with cache::CachedBackend).
  [[nodiscard]] ServerStats WireStats() const;

 private:
  /// Dense per-RPC slot array; index = static_cast<std::size_t>(Rpc).
  static constexpr std::size_t kRpcSlots =
      static_cast<std::size_t>(Rpc::kListPage) + 1;

  struct PerOpCounters {
    std::uint64_t count = 0;
    std::uint64_t bytes_in = 0;
    std::uint64_t bytes_out = 0;
  };

  /// One subscribed client. `channel` points at the subscription
  /// connection's transport while its reader thread is alive (nulled at
  /// cleanup); pushes serialize on `mu` and the reader erases acked
  /// correlation ids from `pending_acks`.
  struct LeaseSession {
    std::uint64_t id = 0;
    std::mutex mu;
    std::condition_variable cv;
    TcpTransport* channel = nullptr; // under mu
    std::set<std::uint64_t> pending_acks; // under mu
    bool dead = false;                    // under mu
  };

  // Protocol-engine types shared by both serve modes; defined in
  // server.cpp (they drag in transport/reactor internals).
  struct ConnState; // per-connection protocol state (streams, session)
  struct WireReply; // response payload as scatter/gather segments
  struct Dispatch;  // one decoded request frame + its handler closure
  struct RConn;     // reactor-mode connection

  NexusdServer(storage::StorageBackend& backend, NexusdOptions options);

  void AcceptLoop();
  void ServeConnection(int fd);

  /// Decodes one request frame against `state` and classifies it for
  /// dispatch. `subscribe_channel` is non-null in thread-per-connection
  /// mode, where a kLeaseSubscribe can bind the session's push channel at
  /// decode time (the reactor binds it at migration instead).
  Dispatch DecodeFrame(ByteSpan frame, ConnState& state,
                       TcpTransport* subscribe_channel);
  /// Runs a dispatch's handler under its server span.
  WireReply RunHandler(const Dispatch& d);
  /// Counters a response must bump BEFORE it is sent (net_e2e contract).
  void CountOp(std::size_t op, std::uint64_t bytes_in,
               std::uint64_t bytes_out);

  // Reactor mode (all loop-thread-only unless noted).
  void ReactorAccept();
  void ReactorOnEvent(const std::shared_ptr<RConn>& conn, std::uint32_t ready);
  void ReactorOnReadable(const std::shared_ptr<RConn>& conn);
  void ReactorParseBuffered(const std::shared_ptr<RConn>& conn);
  bool ReactorHandleFrame(const std::shared_ptr<RConn>& conn, ByteSpan frame);
  void ReactorDispatch(const std::shared_ptr<RConn>& conn, Dispatch d,
                       std::size_t frame_bytes, std::uint64_t start_ns);
  void ReactorRunOrdered(const std::shared_ptr<RConn>& conn); // any thread
  void ReactorExecute(const std::shared_ptr<RConn>& conn, const Dispatch& d,
                      std::size_t frame_bytes,
                      std::uint64_t start_ns);               // any thread
  void OnHandlerDone(const std::shared_ptr<RConn>& conn);    // any thread
  void OnTaskExit(); // any thread: one rpc-pool task retired
  bool SendReply(const std::shared_ptr<RConn>& conn,
                 WireReply reply);  // any thread
  bool FlushSendQueue(RConn& conn); // any thread; callers hold send_mu
  void PostMaintain(const std::shared_ptr<RConn>& conn); // any thread
  void ReactorMaintain(const std::shared_ptr<RConn>& conn);
  void ReactorTeardown(const std::shared_ptr<RConn>& conn, bool drain);
  void ReactorFinalize(const std::shared_ptr<RConn>& conn);
  void ReactorMigrate(const std::shared_ptr<RConn>& conn);

  // Lease machinery (registry under lease_mu_; never hold lease_mu_
  // while touching a session's channel).
  [[nodiscard]] std::shared_ptr<LeaseSession> FindSession(std::uint64_t sid);
  /// Registers `sid` as a holder of `name` before the backend read;
  /// reports the object version the grant is conditioned on.
  bool PreGrantLease(const std::string& name, std::uint64_t sid,
                     std::uint64_t* version_before);
  /// Confirms the grant after the read: the object version must be
  /// unchanged and the holder still registered (a concurrent mutation
  /// clears both). Deregisters on denial or failed reads.
  bool PostGrantLease(const std::string& name, std::uint64_t sid,
                      std::uint64_t version_before, bool read_ok);
  /// Bumps the object's version BEFORE the backend mutation so any read
  /// racing the mutation fails its PostGrant validation. When the writer
  /// wants a WRITE lease (v5 Put), it is registered as a holder here —
  /// mirroring PreGrantLease — and the bumped version is returned so
  /// FinishMutation can confirm the grant only if no other mutation
  /// interleaved.
  std::uint64_t BeginMutation(const std::string& name,
                              std::uint64_t writer_sid = 0,
                              bool want_lease = false);
  /// Breaks every holder except the writer's own session: pushes the
  /// invalidation, waits for acks up to lease_break_ms_, kills sessions
  /// that never answer. Returns whether the writer's WRITE lease (asked
  /// for at BeginMutation) was confirmed: the write must have succeeded
  /// and the object version must still equal `version_at_begin` with the
  /// writer still registered — any overlapping mutation denies the grant.
  bool FinishMutation(const std::string& name, std::uint64_t writer_sid,
                      std::uint64_t version_at_begin = 0,
                      bool want_lease = false, bool write_ok = false);
  /// Reads invalidation acks off a subscription connection until it dies.
  void AckLoop(TcpTransport& transport,
               const std::shared_ptr<LeaseSession>& session);
  /// Tears a session out of the registry and wakes any waiting writers.
  void CleanupSession(const std::shared_ptr<LeaseSession>& session);

  storage::StorageBackend& backend_;
  NexusdOptions options_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  int lease_break_ms_ = 1000;

  std::unique_ptr<parallel::ThreadPool> pool_;
  std::unique_ptr<parallel::ThreadPool> rpc_pool_; // null: inline handlers
  std::unique_ptr<parallel::TaskGroup> connections_;
  std::thread accept_thread_;

  // Reactor mode.
  std::unique_ptr<Reactor> reactor_;
  std::thread loop_thread_;
  BufferArena arena_;
  std::map<int, std::shared_ptr<RConn>> rconns_; // loop thread only
  std::size_t reactor_conns_ = 0; // under mu_: rconns_ not yet finalized
  std::size_t reactor_tasks_ = 0; // under mu_: handler tasks in flight
  std::condition_variable drain_cv_; // with mu_; Stop() waits for zero
  /// One thread per lease subscription channel (ack loops). Subscriptions
  /// live as long as their client, so they move OFF the connection pool —
  /// otherwise every subscriber would pin a `workers` slot forever and
  /// starve data connections. Joined in Stop(), under mu_ until swapped.
  std::vector<std::thread> lease_threads_;

  mutable std::mutex mu_;
  std::vector<int> live_fds_; // shutdown() on Stop unblocks workers
  bool stopping_ = false;
  Stats stats_;                     // open_streams maintained, active derived
  PerOpCounters per_op_[kRpcSlots]; // under mu_
  trace::Histogram op_latency_ns_[kRpcSlots]; // internally synchronized

  // Lease registry. Lock order: lease_mu_ before mu_ (counter updates),
  // never after a session's mu.
  mutable std::mutex lease_mu_;
  std::uint64_t next_session_id_ = 1;
  std::map<std::uint64_t, std::shared_ptr<LeaseSession>> sessions_;
  std::map<std::string, std::set<std::uint64_t>> holders_;
  /// Monotonic per-object mutation counter; entries persist for the
  /// server's lifetime (names are few and short at this repo's scale).
  std::map<std::string, std::uint64_t> object_version_;
};

} // namespace nexus::net
