// nexusd server library: serves any StorageBackend over the wire protocol.
//
// One listener thread accepts TCP connections and hands each one to the
// parallel::ThreadPool as a long-lived task; a worker owns the
// connection's READER for its lifetime. The pool's worker count therefore
// bounds the number of SIMULTANEOUSLY SERVED connections — further
// accepted connections queue until a worker frees up.
//
// Within one connection, requests are pipelined: the reader thread parses
// each frame in arrival order (framing errors must kill the connection
// deterministically) and dispatches the stateless RPCs onto a SEPARATE
// rpc pool, where each finished handler sends its own response — so
// responses can leave out of order, matched back by correlation id on the
// client's demux. The stream RPCs (Begin/Append/Commit/Abort) stay on the
// reader thread: their handle table is connection state that the in-order
// byte stream defines. A second pool (rather than the connection pool)
// carries the handlers so a burst of connections can never deadlock
// waiting for its own workers.
//
// The daemon is the paper's untrusted storage service: it sees only
// ciphertext and opaque names, so it does no authentication and keeps no
// per-client state beyond in-flight put streams. Those streams are scoped
// to their connection and aborted when it dies — a client crash or
// mid-stream reset can never leave a partially visible object (the
// backend's PutStream publishes atomically at Commit).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/result.hpp"
#include "net/wire.hpp"
#include "parallel/thread_pool.hpp"
#include "storage/backend.hpp"
#include "trace/histogram.hpp"

namespace nexus::net {

struct NexusdOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 picks an ephemeral port; read the actual one from port().
  std::uint16_t port = 0;
  /// Thread-pool workers == max concurrently served connections.
  std::size_t workers = 4;
  /// Workers on the shared RPC-handler pool (all connections). 0 runs
  /// every handler inline on its connection's reader thread — strictly
  /// in-order replies, the pre-v3 behavior.
  std::size_t rpc_workers = 4;
  /// Most handler tasks one connection may have outstanding before its
  /// reader stops pulling frames (per-connection backpressure).
  std::size_t max_inflight_per_connection = 64;
  /// Highest wire version this server will accept or advertise — set to 2
  /// to stand up a legacy server for interop tests.
  std::uint8_t max_protocol_version = kProtocolVersion;
};

class NexusdServer {
 public:
  /// Binds, listens and starts serving. `backend` must outlive the server
  /// and obey the StorageBackend thread-safety contract.
  static Result<std::unique_ptr<NexusdServer>> Start(
      storage::StorageBackend& backend, NexusdOptions options = {});

  ~NexusdServer();

  NexusdServer(const NexusdServer&) = delete;
  NexusdServer& operator=(const NexusdServer&) = delete;

  /// Stops accepting, unblocks and drains every in-flight connection,
  /// joins all threads. Idempotent.
  void Stop();

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  struct Stats {
    std::uint64_t connections_accepted = 0;
    std::uint64_t rpcs_served = 0;
    std::uint64_t protocol_errors = 0; // malformed frames / bad rpc ids
    std::uint64_t streams_aborted_on_disconnect = 0;
    std::uint64_t bytes_received = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t active_connections = 0; // gauge
    std::uint64_t open_streams = 0;       // gauge
  };
  [[nodiscard]] Stats stats() const;

  /// Snapshot served over Rpc::kStats: stats() plus one row per RPC id
  /// actually served, with p50/p99 service latency from the per-op
  /// histograms.
  [[nodiscard]] ServerStats WireStats() const;

 private:
  /// Dense per-RPC slot array; index = static_cast<std::size_t>(Rpc).
  static constexpr std::size_t kRpcSlots =
      static_cast<std::size_t>(Rpc::kMultiExists) + 1;

  struct PerOpCounters {
    std::uint64_t count = 0;
    std::uint64_t bytes_in = 0;
    std::uint64_t bytes_out = 0;
  };

  NexusdServer(storage::StorageBackend& backend, NexusdOptions options);

  void AcceptLoop();
  void ServeConnection(int fd);

  storage::StorageBackend& backend_;
  NexusdOptions options_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;

  std::unique_ptr<parallel::ThreadPool> pool_;
  std::unique_ptr<parallel::ThreadPool> rpc_pool_; // null: inline handlers
  std::unique_ptr<parallel::TaskGroup> connections_;
  std::thread accept_thread_;

  mutable std::mutex mu_;
  std::vector<int> live_fds_; // shutdown() on Stop unblocks workers
  bool stopping_ = false;
  Stats stats_;                     // open_streams maintained, active derived
  PerOpCounters per_op_[kRpcSlots]; // under mu_
  trace::Histogram op_latency_ns_[kRpcSlots]; // internally synchronized
};

} // namespace nexus::net
