#include "net/buffer_arena.hpp"

namespace nexus::net {

struct ArenaState {
  std::mutex mu;
  std::size_t slab_bytes = 0;
  std::size_t max_free = 0;
  std::vector<std::unique_ptr<BufferArena::Slab>> free;
  BufferArena::Stats stats;
};

void BufferArena::Releaser::operator()(Slab* slab) const {
  if (slab == nullptr) return;
  if (state_ == nullptr) {
    delete slab;
    return;
  }
  std::lock_guard<std::mutex> lock(state_->mu);
  if (state_->stats.slabs_in_use > 0) --state_->stats.slabs_in_use;
  if (state_->free.size() < state_->max_free) {
    slab->size = 0;
    state_->free.emplace_back(slab);
  } else {
    delete slab;
  }
}

BufferArena::BufferArena(std::size_t slab_bytes, std::size_t max_free_slabs)
    : slab_bytes_(slab_bytes), state_(std::make_shared<ArenaState>()) {
  state_->slab_bytes = slab_bytes;
  state_->max_free = max_free_slabs;
  state_->stats.slab_bytes = slab_bytes;
}

BufferArena::SlabPtr BufferArena::Acquire() {
  std::lock_guard<std::mutex> lock(state_->mu);
  ++state_->stats.acquires;
  ++state_->stats.slabs_in_use;
  if (state_->stats.slabs_in_use > state_->stats.slabs_high_water) {
    state_->stats.slabs_high_water = state_->stats.slabs_in_use;
  }
  Slab* slab = nullptr;
  if (!state_->free.empty()) {
    slab = state_->free.back().release();
    state_->free.pop_back();
    ++state_->stats.recycled;
  } else {
    slab = new Slab();
    slab->buf.resize(slab_bytes_);
    ++state_->stats.slabs_allocated;
  }
  slab->size = 0;
  return SlabPtr(slab, Releaser(state_));
}

void BufferArena::NoteOversize() {
  std::lock_guard<std::mutex> lock(state_->mu);
  ++state_->stats.oversize_frames;
}

BufferArena::Stats BufferArena::stats() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->stats;
}

} // namespace nexus::net
