#include "net/mux.hpp"

#include <utility>
#include <vector>

#include "common/clock.hpp"
#include "net/wire.hpp"

namespace nexus::net {

Result<Bytes> MuxConnection::Slot::Wait() {
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [this] { return done; });
  if (!failure.ok()) return failure;
  return std::move(response);
}

void MuxConnection::Complete(Slot& slot, Status failure, Bytes response) {
  {
    const std::lock_guard<std::mutex> lock(slot.mu);
    slot.failure = std::move(failure);
    slot.response = std::move(response);
  }
  // Hook first, completion flag second: by the time any waiter observes
  // `done`, the hook's accounting (and any prefetch cache insert) for this
  // slot has already happened.
  if (slot.on_done) slot.on_done(slot.failure, slot.response);
  {
    const std::lock_guard<std::mutex> lock(slot.mu);
    slot.done = true;
  }
  slot.cv.notify_all();
}

MuxConnection::MuxConnection(std::unique_ptr<Transport> transport,
                             std::size_t window, DeliveryHook on_delivery)
    : transport_(std::move(transport)), on_delivery_(std::move(on_delivery)),
      window_(window == 0 ? 1 : window) {
  demux_ = std::thread([this] { DemuxLoop(); });
}

MuxConnection::~MuxConnection() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    closing_ = true;
  }
  demux_cv_.notify_all();
  window_cv_.notify_all();
  transport_->Shutdown(); // unblocks a demux thread parked in RecvFrame
  if (demux_.joinable()) demux_.join();
  Fail(Error(ErrorCode::kIOError, "connection closed"));
}

bool MuxConnection::broken() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return broken_;
}

std::size_t MuxConnection::inflight() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

std::size_t MuxConnection::window() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return window_;
}

void MuxConnection::SetWindow(std::size_t window) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    window_ = window == 0 ? 1 : window;
  }
  window_cv_.notify_all();
}

std::shared_ptr<MuxConnection::Slot> MuxConnection::Submit(
    ByteSpan request, CompletionHook on_done) {
  return DoSubmit(request, /*blocking=*/true, std::move(on_done));
}

std::shared_ptr<MuxConnection::Slot> MuxConnection::TrySubmit(
    ByteSpan request, CompletionHook on_done) {
  return DoSubmit(request, /*blocking=*/false, std::move(on_done));
}

std::shared_ptr<MuxConnection::Slot> MuxConnection::DoSubmit(
    ByteSpan request, bool blocking, CompletionHook on_done) {
  auto slot = std::make_shared<Slot>();
  slot->correlation = RequestCorrelation(request);
  slot->request_bytes = request.size();
  slot->on_done = std::move(on_done);
  if (slot->correlation == 0) return nullptr; // not a valid request frame
  // Stamped before the slot is published to the demux thread (the mutex
  // below is the only happens-before edge between the two threads).
  slot->start_ns = MonotonicNanos();

  {
    std::unique_lock<std::mutex> lock(mu_);
    if (blocking) {
      window_cv_.wait(lock, [this] {
        return broken_ || closing_ || pending_.size() < window_;
      });
    } else if (pending_.size() >= window_) {
      return nullptr;
    }
    if (broken_ || closing_) return nullptr;
    // Register BEFORE sending so a response that races back faster than
    // this thread resumes is still routable.
    pending_[slot->correlation] = slot;
  }

  Status sent;
  {
    const std::lock_guard<std::mutex> lock(send_mu_);
    sent = transport_->SendFrame(request);
  }
  if (!sent.ok()) {
    // The frame may be partially written: the stream is desynchronized,
    // so the whole connection fails. This slot is NOT ambiguous (the
    // server never saw a complete frame); siblings that were fully sent
    // are, and each retries independently.
    {
      const std::lock_guard<std::mutex> lock(mu_);
      pending_.erase(slot->correlation);
    }
    Fail(sent);
    Complete(*slot, sent, {});
    return slot;
  }

  slot->sent.store(true, std::memory_order_release);
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = pending_.find(slot->correlation);
    if (it != pending_.end() && it->second == slot) {
      // Still pending: the demux thread now owes us a wakeup. If the
      // response already arrived (or the connection already failed), the
      // slot left the map and must not count toward sent_inflight_.
      slot->counted = true;
      ++sent_inflight_;
    }
  }
  demux_cv_.notify_one();
  return slot;
}

void MuxConnection::Fail(const Status& reason) {
  std::vector<std::shared_ptr<Slot>> victims;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    broken_ = true;
    victims.reserve(pending_.size());
    for (auto& [corr, slot] : pending_) victims.push_back(std::move(slot));
    pending_.clear();
    sent_inflight_ = 0;
  }
  window_cv_.notify_all();
  demux_cv_.notify_all();
  transport_->Shutdown();
  for (const auto& slot : victims) Complete(*slot, reason, {});
}

void MuxConnection::Poison(const Status& reason) { Fail(reason); }

void MuxConnection::DemuxLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      // Park while nothing is owed: blocking in RecvFrame on an idle
      // connection would trip the I/O deadline and kill a healthy pooled
      // connection.
      demux_cv_.wait(lock, [this] {
        return closing_ || broken_ || sent_inflight_ > 0;
      });
      if (broken_) return;
      if (closing_) break;
    }

    auto frame = transport_->RecvFrame();
    if (!frame.ok()) {
      Fail(frame.status());
      return;
    }

    const std::uint64_t corr = ResponseCorrelation(frame.value());
    std::shared_ptr<Slot> slot;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      const auto it = corr != 0 ? pending_.find(corr) : pending_.end();
      if (it != pending_.end()) {
        slot = std::move(it->second);
        pending_.erase(it);
        if (slot->counted) --sent_inflight_;
      }
    }
    if (!slot) {
      // A response nobody asked for: the stream is desynchronized (or the
      // server hostile). Every sibling fails and retries independently —
      // none of them can trust this connection's framing any more.
      Fail(Error(ErrorCode::kIOError,
                 "unroutable response correlation " + std::to_string(corr)));
      return;
    }
    window_cv_.notify_one();
    if (on_delivery_) {
      on_delivery_(slot->request_bytes, frame.value().size(), slot->start_ns);
    }
    Complete(*slot, Status::Ok(), std::move(frame).value());
  }

  // Clean close: fail whatever is still pending so no waiter hangs.
  Fail(Error(ErrorCode::kIOError, "connection closed"));
}

} // namespace nexus::net
