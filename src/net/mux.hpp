// Pipelined RPC multiplexing over one transport connection.
//
// A MuxConnection owns a Transport plus one demux thread and keeps up to
// `window` RPCs in flight at once. Submitters serialize their request
// frames onto the socket; the demux thread receives response frames and
// routes each one to its waiting submitter by the correlation id already
// stamped on every frame (wire v2) — so a server that replies out of
// order (nexusd's v3 per-connection dispatch pool) is handled for free,
// and a server that replies in order just degenerates to a pipeline.
//
// Failure semantics are whole-connection: a transport error, a response
// carrying an unknown correlation id, or a malformed frame means the byte
// stream can no longer be trusted, so every in-flight request on the
// connection fails at once (each marked ambiguous iff its frame hit the
// wire). The requests are NOT orphaned — each caller holds its own slot,
// observes the failure independently, and retries on a fresh connection
// through RemoteBackend's per-request retry discipline.
//
// The demux thread only blocks in RecvFrame while at least one sent
// request is outstanding; otherwise it parks on a condition variable.
// This keeps idle pooled connections alive (no deadline expiry while
// nothing is owed) and preserves FaultyTransport's send-then-recv
// schedule under fault injection.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "net/transport.hpp"

namespace nexus::net {

class MuxConnection {
 public:
  /// One in-flight RPC. Created by Submit/TrySubmit, completed exactly
  /// once by the demux thread (delivery or connection failure) or by the
  /// submitter itself (send failure).
  struct Slot {
    std::uint64_t correlation = 0;
    std::uint64_t start_ns = 0;
    std::size_t request_bytes = 0;
    /// True once the request frame was fully written to the socket — a
    /// later failure leaves the RPC's outcome unknown (ambiguous).
    std::atomic<bool> sent{false};
    /// Invoked on the completing thread after the outcome is decided and
    /// strictly before any waiter wakes: `failure` is Ok on delivery (and
    /// `response` the delivered frame, empty on failure). Prefetch parses
    /// the frame right here so a consumer that observes the slot done also
    /// observes the object already in the cache.
    std::function<void(const Status& failure, const Bytes& response)> on_done;

    /// Blocks until the slot completes; returns the full response payload
    /// or the transport failure.
    Result<Bytes> Wait();

   private:
    friend class MuxConnection;
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    bool counted = false; // contributes to sent_inflight_; under mux mu_
    Status failure = Status::Ok();
    Bytes response;
  };

  /// Called on the demux thread for every response DELIVERED to a slot,
  /// before the slot completes. RemoteBackend counts client rpcs/bytes/
  /// latency here so delivered-but-unconsumed prefetches still mirror the
  /// server's own counters exactly.
  using DeliveryHook = std::function<void(
      std::size_t request_bytes, std::size_t response_bytes,
      std::uint64_t start_ns)>;

  /// Takes ownership of a connected transport. `window` bounds the number
  /// of simultaneously in-flight RPCs (>= 1).
  MuxConnection(std::unique_ptr<Transport> transport, std::size_t window,
                DeliveryHook on_delivery = nullptr);
  ~MuxConnection();

  MuxConnection(const MuxConnection&) = delete;
  MuxConnection& operator=(const MuxConnection&) = delete;

  using CompletionHook =
      std::function<void(const Status& failure, const Bytes& response)>;

  /// Sends `request` (a complete request frame) and returns its slot.
  /// Blocks while the window is full; returns nullptr if the connection
  /// is (or becomes) broken — the caller acquires a fresh connection.
  std::shared_ptr<Slot> Submit(ByteSpan request,
                               CompletionHook on_done = nullptr);

  /// Non-blocking Submit for speculative traffic: returns nullptr instead
  /// of waiting when the window is full or the connection is broken.
  std::shared_ptr<Slot> TrySubmit(ByteSpan request,
                                  CompletionHook on_done = nullptr);

  /// Marks the connection unusable and fails every in-flight request
  /// (used when a delivered response turns out to be malformed).
  void Poison(const Status& reason);

  [[nodiscard]] bool broken() const;
  /// In-flight request count (registered, not yet completed).
  [[nodiscard]] std::size_t inflight() const;
  [[nodiscard]] std::size_t window() const;
  /// Re-bounds the window (version negotiation widens it from the
  /// pre-negotiation lock-step 1 once the peer is known to speak v3).
  void SetWindow(std::size_t window);

 private:
  std::shared_ptr<Slot> DoSubmit(ByteSpan request, bool blocking,
                                 CompletionHook on_done);
  void DemuxLoop();
  /// Breaks the connection: fails all pending slots with `reason`.
  void Fail(const Status& reason);
  static void Complete(Slot& slot, Status failure, Bytes response);

  std::unique_ptr<Transport> transport_;
  DeliveryHook on_delivery_;

  mutable std::mutex mu_;
  std::condition_variable window_cv_; // submitters waiting for a free slot
  std::condition_variable demux_cv_;  // demux parked while nothing is owed
  std::map<std::uint64_t, std::shared_ptr<Slot>> pending_;
  std::size_t window_;
  std::size_t sent_inflight_ = 0; // pending slots whose frame hit the wire
  bool broken_ = false;
  bool closing_ = false;

  std::mutex send_mu_; // serializes whole frames onto the socket
  std::thread demux_;
};

} // namespace nexus::net
