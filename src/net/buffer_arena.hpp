// Pooled frame slabs for the event-driven nexusd data path.
//
// The reactor parses request frames and stages coalesced response bytes
// in fixed-size slabs drawn from a BufferArena instead of allocating a
// fresh std::vector per RPC. Slabs recycle through a bounded free list:
// steady-state service of thousands of connections touches the allocator
// only while the working set is still growing, and the high-water gauge
// makes the working set observable (Stats RPC -> nexus-stat).
//
// Frames larger than one slab (big Puts, MultiGet replies near the 64 MiB
// object bound) deliberately bypass the arena — they are rare, their
// buffers are short-lived, and pinning multi-megabyte slabs in a free
// list would be worse than the allocation. The arena only counts them
// (`oversize_frames`) so the bypass rate is visible.
//
// Thread model: Acquire() and slab release may happen on any thread (the
// rpc-worker pool releases response slabs it finished writing). The
// internal state is shared_ptr-owned so a slab released after the arena
// itself was destroyed simply frees instead of dangling.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/bytes.hpp"

namespace nexus::net {

struct ArenaState; // private to buffer_arena.cpp

class BufferArena {
 public:
  /// One pooled buffer. `size` tracks how many leading bytes are valid;
  /// the capacity is fixed at the arena's slab size.
  struct Slab {
    Bytes buf;
    std::size_t size = 0;

    std::uint8_t* data() noexcept { return buf.data(); }
    const std::uint8_t* data() const noexcept { return buf.data(); }
    std::size_t capacity() const noexcept { return buf.size(); }
  };

  struct Stats {
    std::uint64_t slab_bytes = 0;      // configured slab capacity
    std::uint64_t acquires = 0;        // total Acquire() calls
    std::uint64_t recycled = 0;        // ... of which served from the free list
    std::uint64_t slabs_allocated = 0; // fresh heap allocations
    std::uint64_t slabs_in_use = 0;    // gauge: currently checked out
    std::uint64_t slabs_high_water = 0;
    std::uint64_t oversize_frames = 0; // frames that bypassed the arena
  };

  class Releaser {
   public:
    Releaser() = default;
    explicit Releaser(std::shared_ptr<ArenaState> state)
        : state_(std::move(state)) {}
    void operator()(Slab* slab) const;

   private:
    std::shared_ptr<ArenaState> state_;
  };

  /// Returning a SlabPtr (destroying it) recycles the slab.
  using SlabPtr = std::unique_ptr<Slab, Releaser>;

  static constexpr std::size_t kDefaultSlabBytes = 64u << 10;
  static constexpr std::size_t kDefaultMaxFreeSlabs = 128;

  explicit BufferArena(std::size_t slab_bytes = kDefaultSlabBytes,
                       std::size_t max_free_slabs = kDefaultMaxFreeSlabs);

  /// Checks out an empty slab (size = 0), recycling a free one when
  /// available. Never fails; falls back to a fresh allocation.
  SlabPtr Acquire();

  /// Records a frame that was too large for a slab and went to the heap.
  void NoteOversize();

  std::size_t slab_bytes() const noexcept { return slab_bytes_; }
  Stats stats() const;

 private:
  std::size_t slab_bytes_;
  std::shared_ptr<ArenaState> state_;
};

} // namespace nexus::net
