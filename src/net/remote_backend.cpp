#include "net/remote_backend.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/clock.hpp"
#include "trace/trace.hpp"

namespace nexus::net {

namespace {

std::uint64_t Mix(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Replayed stream segments go out in pieces this size — the same shape
/// the enclave's pipelined writer produces, so the server's code path is
/// identical for first transmission and replay.
constexpr std::size_t kReplaySegmentBytes = 1u << 20;

} // namespace

RemoteBackend::RemoteBackend(TransportFactory factory,
                             RemoteBackendOptions options)
    : factory_(std::move(factory)), options_(options),
      jitter_state_(options.jitter_seed) {}

Result<std::unique_ptr<RemoteBackend>> RemoteBackend::Connect(
    const std::string& host, std::uint16_t port, RemoteBackendOptions options) {
  const int connect_ms = options.connect_deadline_ms;
  const int rpc_ms = options.rpc_deadline_ms;
  auto factory = [host, port, connect_ms, rpc_ms]()
      -> Result<std::unique_ptr<Transport>> {
    NEXUS_ASSIGN_OR_RETURN(std::unique_ptr<TcpTransport> t,
                           TcpTransport::Dial(host, port, connect_ms, rpc_ms));
    return std::unique_ptr<Transport>(std::move(t));
  };
  auto backend =
      std::make_unique<RemoteBackend>(std::move(factory), options);
  NEXUS_RETURN_IF_ERROR(backend->Ping());
  return backend;
}

void RemoteBackend::Backoff(int failed_attempts) {
  // Bounded exponential with jitter in [0.5, 1.0): attempt k sleeps
  // roughly base * 2^(k-1), capped, and jittered so a fleet of clients
  // hammered by the same outage does not retry in lockstep.
  int delay = options_.backoff_base_ms;
  for (int i = 1; i < failed_attempts && delay < options_.backoff_cap_ms; ++i) {
    delay *= 2;
  }
  delay = std::min(delay, options_.backoff_cap_ms);
  double jitter;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    jitter = 0.5 + 0.5 * (static_cast<double>(Mix(jitter_state_) >> 11) *
                          0x1.0p-53);
  }
  const int ms = std::max(1, static_cast<int>(delay * jitter));
  if (options_.sleep_ms) {
    options_.sleep_ms(ms);
  } else {
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  }
}

void RemoteBackend::CountRetryAndReconnect() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++counters_.retries;
  }
  GlobalNetAdd(NetCounters{0, 1, 0, 0, 0, 0, 0});
}

Result<std::unique_ptr<Transport>> RemoteBackend::Checkout(bool is_retry) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!idle_.empty()) {
      std::unique_ptr<Transport> t = std::move(idle_.back());
      idle_.pop_back();
      return t;
    }
  }
  NEXUS_ASSIGN_OR_RETURN(std::unique_ptr<Transport> fresh, factory_());
  if (is_retry) {
    const std::lock_guard<std::mutex> lock(mu_);
    ++counters_.reconnects;
    GlobalNetAdd(NetCounters{0, 0, 1, 0, 0, 0, 0});
  }
  return fresh;
}

void RemoteBackend::Checkin(std::unique_ptr<Transport> transport) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (idle_.size() < options_.max_pooled_connections) {
    idle_.push_back(std::move(transport));
  }
  // else: dropped, destructor closes the socket.
}

Result<Bytes> RemoteBackend::Call(const Writer& request, bool* ambiguous) {
  const std::uint64_t corr = RequestCorrelation(request.bytes());
  trace::Span span(RpcName(RequestRpc(request.bytes())), "net.client");
  span.SetCorrelation(corr);

  Status last = Error(ErrorCode::kIOError, "rpc never attempted");
  bool ambig = false;
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (attempt > 0) {
      CountRetryAndReconnect();
      Backoff(attempt);
    }
    auto conn = Checkout(attempt > 0);
    if (!conn.ok()) {
      last = conn.status();
      continue;
    }
    std::unique_ptr<Transport> transport = std::move(conn).value();

    const std::uint64_t start = MonotonicNanos();
    const Status sent = transport->SendFrame(request.bytes());
    if (!sent.ok()) {
      last = sent; // connection is dead; destructor closes it
      continue;
    }
    // From here the request may have reached the server: a later failure
    // leaves the RPC's outcome unknown.
    auto response = transport->RecvFrame();
    if (!response.ok()) {
      ambig = true;
      last = response.status();
      continue;
    }
    Reader reader(response.value());
    Status verdict = Status::Ok();
    std::uint64_t echoed = 0;
    const Status parsed = ParseResponseHead(reader, &verdict, &echoed);
    if (!parsed.ok()) {
      // Malformed response: protocol desync, kill the connection.
      ambig = true;
      last = parsed;
      continue;
    }
    if (echoed != corr) {
      // A well-formed response to some OTHER request: the byte stream is
      // desynchronized. Our request's fate is unknown — drop the
      // connection and retry on a fresh one.
      ambig = true;
      last = Error(ErrorCode::kIOError,
                   "correlation mismatch: sent " + std::to_string(corr) +
                       ", got " + std::to_string(echoed));
      continue;
    }

    const double ms =
        static_cast<double>(MonotonicNanos() - start) * 1e-6;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      ++counters_.rpcs;
      counters_.bytes_sent += request.bytes().size() + 4;
      counters_.bytes_received += response.value().size() + 4;
    }
    GlobalNetAdd(NetCounters{1, 0, 0, request.bytes().size() + 4,
                             response.value().size() + 4, 0, 0});
    GlobalNetRecordLatencyMs(ms);
    Checkin(std::move(transport));

    if (ambiguous != nullptr) *ambiguous = ambig;
    // The server's verdict — success or not — is authoritative.
    NEXUS_RETURN_IF_ERROR(verdict);
    return reader.Raw(reader.Remaining());
  }
  if (ambiguous != nullptr) *ambiguous = ambig;
  return last;
}

Status RemoteBackend::Ping() {
  return Call(BeginRequest(Rpc::kPing)).status();
}

Result<ServerStats> RemoteBackend::Stats() {
  NEXUS_ASSIGN_OR_RETURN(Bytes payload, Call(BeginRequest(Rpc::kStats)));
  Reader reader(payload);
  NEXUS_ASSIGN_OR_RETURN(ServerStats stats, DecodeServerStats(reader));
  if (!reader.AtEnd()) {
    return Error(ErrorCode::kInvalidArgument, "trailing bytes after stats");
  }
  return stats;
}

Result<Bytes> RemoteBackend::Get(const std::string& name) {
  Writer req = BeginRequest(Rpc::kGet);
  req.Str(name);
  NEXUS_ASSIGN_OR_RETURN(Bytes payload, Call(req));
  Reader reader(payload);
  NEXUS_ASSIGN_OR_RETURN(Bytes data, reader.Var(kMaxObjectBytes));
  return data;
}

Status RemoteBackend::Put(const std::string& name, ByteSpan data) {
  if (data.size() > kMaxObjectBytes) {
    return Error(ErrorCode::kInvalidArgument, "object too large: " + name);
  }
  Writer req = BeginRequest(Rpc::kPut);
  req.Str(name);
  req.Var(data);
  return Call(req).status();
}

Status RemoteBackend::Delete(const std::string& name) {
  Writer req = BeginRequest(Rpc::kDelete);
  req.Str(name);
  bool ambiguous = false;
  const Status verdict = Call(req, &ambiguous).status();
  if (verdict.code() == ErrorCode::kNotFound && ambiguous) {
    // An earlier attempt with unknown outcome plus "not found" now means
    // OUR delete (or a concurrent one) already won; either way the
    // object is gone, which is what the caller asked for.
    return Status::Ok();
  }
  return verdict;
}

bool RemoteBackend::Exists(const std::string& name) {
  Writer req = BeginRequest(Rpc::kExists);
  req.Str(name);
  auto payload = Call(req);
  // The StorageBackend contract cannot express transport failure here;
  // an unreachable server reports "absent", matching a store that lost
  // the object — callers treat both as a re-fetch/recreate signal.
  if (!payload.ok()) return false;
  Reader reader(payload.value());
  auto flag = reader.U8();
  return flag.ok() && flag.value() != 0;
}

std::vector<std::string> RemoteBackend::List(const std::string& prefix) {
  Writer req = BeginRequest(Rpc::kList);
  req.Str(prefix);
  auto payload = Call(req);
  std::vector<std::string> names;
  if (!payload.ok()) return names;
  Reader reader(payload.value());
  auto count = reader.U32();
  if (!count.ok()) return names;
  names.reserve(count.value());
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto name = reader.Str();
    if (!name.ok()) {
      names.clear();
      return names;
    }
    names.push_back(std::move(name).value());
  }
  return names;
}

NetCounters RemoteBackend::counters() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

// ---- streamed puts ----------------------------------------------------------

// Client half of the streaming RPC. Keeps every appended byte so a broken
// connection can restart the stream from scratch on a fresh one — the
// server publishes nothing before Commit, so a replay can never produce a
// partial object, only delay the atomic publish.
class RemotePutStream final : public storage::StorageBackend::PutStream {
 public:
  RemotePutStream(RemoteBackend& backend, std::string name)
      : backend_(backend), name_(std::move(name)) {}

  ~RemotePutStream() override {
    if (!finished_) Abort();
  }

  Status Append(ByteSpan data) override {
    if (finished_) {
      return Error(ErrorCode::kInvalidArgument,
                   "append on finished stream: " + name_);
    }
    nexus::Append(replay_, data);
    if (conn_ != nullptr) {
      Writer req = BeginRequest(Rpc::kStreamAppend);
      req.U64(handle_);
      req.Var(data);
      Status verdict = Status::Ok();
      auto ack = Exchange(req, &verdict);
      if (ack.ok() && verdict.ok()) return Status::Ok();
      DropConnection();
    }
    // First segment, or the connection just broke: (re)establish and
    // replay everything buffered so far (current segment included).
    return RestartWithRetries();
  }

  Status Commit() override {
    if (finished_) {
      return Error(ErrorCode::kInvalidArgument,
                   "commit on finished stream: " + name_);
    }
    Status last = Error(ErrorCode::kIOError, "commit never attempted");
    for (int attempt = 0; attempt < backend_.options_.max_attempts;
         ++attempt) {
      if (attempt > 0) {
        backend_.CountRetryAndReconnect();
        backend_.Backoff(attempt);
      }
      if (conn_ == nullptr) {
        const Status restarted = Restart();
        if (!restarted.ok()) {
          last = restarted;
          continue;
        }
      }
      Writer req = BeginRequest(Rpc::kStreamCommit);
      req.U64(handle_);
      Status verdict = Status::Ok();
      auto payload = Exchange(req, &verdict);
      if (payload.ok()) {
        // Well-formed server verdict: final, success or not.
        finished_ = true;
        DropConnection();
        return verdict;
      }
      // Transport failure: the commit outcome is unknown. Re-running the
      // whole stream and committing again is safe — publishing the same
      // bytes twice is idempotent (last writer wins, identical content).
      DropConnection();
      last = payload.status();
    }
    finished_ = true;
    return last;
  }

  void Abort() override {
    if (finished_) return;
    finished_ = true;
    if (conn_ != nullptr) {
      Writer req = BeginRequest(Rpc::kStreamAbort);
      req.U64(handle_);
      Status verdict = Status::Ok();
      (void)Exchange(req, &verdict); // best effort; disconnect also aborts
      DropConnection();
    }
    replay_.clear();
  }

 private:
  /// One request/response on the stream's dedicated connection. The OUTER
  /// result is transport/protocol health (error => drop the connection);
  /// on outer success `verdict` holds the server's authoritative answer
  /// and the returned bytes are the response payload after the head.
  Result<Bytes> Exchange(const Writer& request, Status* verdict) {
    const std::uint64_t corr = RequestCorrelation(request.bytes());
    trace::Span span(RpcName(RequestRpc(request.bytes())), "net.client");
    span.SetCorrelation(corr);

    const std::uint64_t start = MonotonicNanos();
    NEXUS_RETURN_IF_ERROR(conn_->SendFrame(request.bytes()));
    NEXUS_ASSIGN_OR_RETURN(Bytes response, conn_->RecvFrame());
    Reader reader(response);
    Status server = Status::Ok();
    std::uint64_t echoed = 0;
    NEXUS_RETURN_IF_ERROR(ParseResponseHead(reader, &server, &echoed));
    if (echoed != corr) {
      return Error(ErrorCode::kIOError,
                   "correlation mismatch on stream connection");
    }
    const double ms = static_cast<double>(MonotonicNanos() - start) * 1e-6;
    {
      const std::lock_guard<std::mutex> lock(backend_.mu_);
      ++backend_.counters_.rpcs;
      backend_.counters_.bytes_sent += request.bytes().size() + 4;
      backend_.counters_.bytes_received += response.size() + 4;
    }
    GlobalNetAdd(NetCounters{1, 0, 0, request.bytes().size() + 4,
                             response.size() + 4, 0, 0});
    GlobalNetRecordLatencyMs(ms);
    *verdict = std::move(server);
    return reader.Raw(reader.Remaining());
  }

  void DropConnection() {
    conn_.reset();
    handle_ = 0;
  }

  /// Fresh connection + StreamBegin + full replay of the bytes so far.
  /// Any failure (transport or server verdict) fails this attempt; the
  /// caller's retry budget decides whether to try again.
  Status Restart() {
    DropConnection();
    NEXUS_ASSIGN_OR_RETURN(conn_, backend_.factory_());

    Writer begin = BeginRequest(Rpc::kStreamBegin);
    begin.Str(name_);
    Status verdict = Status::Ok();
    auto payload = Exchange(begin, &verdict);
    if (!payload.ok() || !verdict.ok()) {
      DropConnection();
      return payload.ok() ? verdict : payload.status();
    }
    Reader reader(payload.value());
    auto handle = reader.U64();
    if (!handle.ok()) {
      DropConnection();
      return Error(ErrorCode::kIOError, "malformed stream-begin response");
    }
    handle_ = handle.value();

    for (std::size_t off = 0; off < replay_.size();
         off += kReplaySegmentBytes) {
      const std::size_t n =
          std::min(kReplaySegmentBytes, replay_.size() - off);
      Writer append = BeginRequest(Rpc::kStreamAppend);
      append.U64(handle_);
      append.Var(ByteSpan(replay_.data() + off, n));
      Status segment_verdict = Status::Ok();
      auto ack = Exchange(append, &segment_verdict);
      if (!ack.ok() || !segment_verdict.ok()) {
        DropConnection();
        return ack.ok() ? segment_verdict : ack.status();
      }
    }
    return Status::Ok();
  }

  Status RestartWithRetries() {
    Status last = Error(ErrorCode::kIOError, "stream restart never attempted");
    for (int attempt = 0; attempt < backend_.options_.max_attempts;
         ++attempt) {
      if (attempt > 0) {
        backend_.CountRetryAndReconnect();
        backend_.Backoff(attempt);
      }
      const Status restarted = Restart();
      if (restarted.ok()) return Status::Ok();
      last = restarted;
    }
    return last;
  }

  RemoteBackend& backend_;
  std::string name_;
  Bytes replay_;
  std::unique_ptr<Transport> conn_;
  std::uint64_t handle_ = 0;
  bool finished_ = false;
};

Result<std::unique_ptr<storage::StorageBackend::PutStream>>
RemoteBackend::OpenPutStream(const std::string& name) {
  return std::unique_ptr<PutStream>(new RemotePutStream(*this, name));
}

} // namespace nexus::net
