#include "net/remote_backend.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <thread>
#include <utility>

#include "cache/cache_counters.hpp"
#include "common/clock.hpp"
#include "trace/trace.hpp"

namespace nexus::net {

namespace {

std::uint64_t Mix(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Replayed stream segments go out in pieces this size — the same shape
/// the enclave's pipelined writer produces, so the server's code path is
/// identical for first transmission and replay.
constexpr std::size_t kReplaySegmentBytes = 1u << 20;

std::size_t EnvSize(const char* name, std::size_t fallback, bool* found) {
  if (found != nullptr) *found = false;
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0') return fallback;
  if (found != nullptr) *found = true;
  return static_cast<std::size_t>(v);
}

} // namespace

std::size_t DefaultRpcWindow() {
  const std::size_t w = EnvSize("NEXUS_RPC_WINDOW", 8, nullptr);
  return std::clamp<std::size_t>(w, 1, 256);
}

std::size_t DefaultReadaheadBudgetBytes() {
  bool found = false;
  const std::size_t b = EnvSize("NEXUS_READAHEAD_BUDGET", 0, &found);
  return found ? b : (32u << 20); // explicit 0 disables readahead
}

RemoteBackend::RemoteBackend(TransportFactory factory,
                             RemoteBackendOptions options)
    : factory_(std::move(factory)), options_(options),
      rpc_window_(options.rpc_window != 0
                      ? std::clamp<std::size_t>(options.rpc_window, 1, 256)
                      : DefaultRpcWindow()),
      readahead_budget_(options.readahead_budget_bytes != 0
                            ? options.readahead_budget_bytes
                            : DefaultReadaheadBudgetBytes()),
      jitter_state_(options.jitter_seed) {}

RemoteBackend::~RemoteBackend() {
  // Silence the callback channel first: after this no invalidation or
  // channel-down callback can fire against a half-dead backend.
  lease_shutdown_.store(true, std::memory_order_release);
  {
    const std::lock_guard<std::mutex> lock(lease_mu_);
    if (lease_transport_ != nullptr) lease_transport_->Shutdown();
  }
  if (lease_thread_.joinable()) lease_thread_.join();
  // Then tear down every connection: their demux threads run delivery and
  // prefetch hooks that touch this object's counters and sink.
  std::vector<std::shared_ptr<MuxConnection>> conns;
  {
    const std::lock_guard<std::mutex> lock(pool_mu_);
    conns.swap(pool_);
  }
  conns.clear(); // joins each demux thread still referencing this object
}

Result<std::unique_ptr<RemoteBackend>> RemoteBackend::Connect(
    const std::string& host, std::uint16_t port, RemoteBackendOptions options) {
  const int connect_ms = options.connect_deadline_ms;
  const int rpc_ms = options.rpc_deadline_ms;
  auto factory = [host, port, connect_ms, rpc_ms]()
      -> Result<std::unique_ptr<Transport>> {
    NEXUS_ASSIGN_OR_RETURN(std::unique_ptr<TcpTransport> t,
                           TcpTransport::Dial(host, port, connect_ms, rpc_ms));
    return std::unique_ptr<Transport>(std::move(t));
  };
  if (!options.lease_transport_factory) {
    // The callback channel sits idle in RecvFrame between pushes, so it
    // must dial WITHOUT an I/O deadline — the data-path deadline would
    // kill a perfectly healthy subscription.
    options.lease_transport_factory = [host, port, connect_ms]()
        -> Result<std::unique_ptr<Transport>> {
      NEXUS_ASSIGN_OR_RETURN(std::unique_ptr<TcpTransport> t,
                             TcpTransport::Dial(host, port, connect_ms, -1));
      return std::unique_ptr<Transport>(std::move(t));
    };
  }
  auto backend =
      std::make_unique<RemoteBackend>(std::move(factory), options);
  // The eager Ping doubles as version negotiation: after it, the pooled
  // connections run at the full window and batch RPCs are available.
  NEXUS_RETURN_IF_ERROR(backend->Ping());
  return backend;
}

// ---- retry discipline -------------------------------------------------------

void RemoteBackend::NoteFailure() {
  failure_streak_.fetch_add(1, std::memory_order_relaxed);
}

void RemoteBackend::NoteSuccess() {
  // Any delivered, well-formed response proves the path works again, so
  // the NEXT failure backs off from the base delay — one transient blip
  // must not inflate every later retry on a long-lived backend.
  failure_streak_.store(0, std::memory_order_relaxed);
}

void RemoteBackend::Backoff() {
  // Bounded exponential with jitter in [0.5, 1.0): a streak of k
  // consecutive failures sleeps roughly base * 2^(k-1), capped, and
  // jittered so a fleet of clients hammered by the same outage does not
  // retry in lockstep.
  const int streak =
      std::max(1, failure_streak_.load(std::memory_order_relaxed));
  int delay = options_.backoff_base_ms;
  for (int i = 1; i < streak && delay < options_.backoff_cap_ms; ++i) {
    delay *= 2;
  }
  delay = std::min(delay, options_.backoff_cap_ms);
  double jitter;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    jitter = 0.5 + 0.5 * (static_cast<double>(Mix(jitter_state_) >> 11) *
                          0x1.0p-53);
  }
  const int ms = std::max(1, static_cast<int>(delay * jitter));
  if (options_.sleep_ms) {
    options_.sleep_ms(ms);
  } else {
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  }
}

void RemoteBackend::CountRetry() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++counters_.retries;
  }
  NetCounters delta;
  delta.retries = 1;
  GlobalNetAdd(delta);
}

// ---- connection pool --------------------------------------------------------

std::uint8_t RemoteBackend::peer_version() const noexcept {
  return peer_version_.load(std::memory_order_acquire);
}

bool RemoteBackend::peer_speaks_v3() const noexcept {
  return options_.max_protocol_version >= 3 && peer_version() >= 3;
}

bool RemoteBackend::peer_speaks_v4() const noexcept {
  return options_.max_protocol_version >= 4 && peer_version() >= 4;
}

bool RemoteBackend::peer_speaks_v5() const noexcept {
  return options_.max_protocol_version >= 5 && peer_version() >= 5;
}

bool RemoteBackend::peer_speaks_v6() const noexcept {
  return options_.max_protocol_version >= 6 && peer_version() >= 6;
}

std::uint8_t RemoteBackend::wire_version() const noexcept {
  if (peer_speaks_v6()) return 6;
  if (peer_speaks_v5()) return 5;
  if (peer_speaks_v4()) return 4;
  return peer_speaks_v3() ? std::uint8_t{3} : std::uint8_t{2};
}

std::size_t RemoteBackend::effective_window() const noexcept {
  // Until a Ping proves the peer speaks v3, stay lock-step: a window of 1
  // over v2 heads is exactly the wire behavior every v2 server expects.
  return peer_speaks_v3() ? rpc_window_ : 1;
}

std::uint64_t RemoteBackend::lease_session() const noexcept {
  return lease_session_.load(std::memory_order_acquire);
}

Writer RemoteBackend::Req(Rpc rpc) const {
  return BeginRequest(rpc, NextCorrelationId(), wire_version());
}

std::shared_ptr<MuxConnection> RemoteBackend::NewConnection(
    std::unique_ptr<Transport> transport) {
  // Client rpcs/bytes/latency are counted at DELIVERY time on the demux
  // thread — the one place every response passes, demand and speculative
  // alike — so the client's view stays in exact agreement with the
  // server's rpcs_served even while prefetched responses sit unconsumed.
  auto hook = [this](std::size_t request_bytes, std::size_t response_bytes,
                     std::uint64_t start_ns) {
    const double ms =
        static_cast<double>(MonotonicNanos() - start_ns) * 1e-6;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      ++counters_.rpcs;
      counters_.bytes_sent += request_bytes + 4;
      counters_.bytes_received += response_bytes + 4;
    }
    NetCounters delta;
    delta.rpcs = 1;
    delta.bytes_sent = request_bytes + 4;
    delta.bytes_received = response_bytes + 4;
    GlobalNetAdd(delta);
    GlobalNetRecordLatencyMs(ms);
  };
  return std::make_shared<MuxConnection>(std::move(transport),
                                         effective_window(), std::move(hook));
}

void RemoteBackend::AttachLease(MuxConnection& conn) {
  const std::uint64_t sid = lease_session();
  if (sid == 0 || !peer_speaks_v4()) return;
  Writer req = Req(Rpc::kLeaseAttach);
  req.U64(sid);
  auto slot = conn.Submit(req.bytes());
  // Best effort: an unattached connection still works, the server just
  // cannot tell our own writes from a stranger's (we self-invalidate).
  if (slot != nullptr) (void)slot->Wait();
}

Result<std::shared_ptr<MuxConnection>> RemoteBackend::AcquireConnection(
    bool is_retry) {
  {
    const std::lock_guard<std::mutex> lock(pool_mu_);
    // Prune broken connections so their demux threads wind down and a
    // retry never lands back on the transport that just failed it.
    std::erase_if(pool_, [](const auto& conn) { return conn->broken(); });
    std::shared_ptr<MuxConnection> spare;    // least-loaded with room
    std::shared_ptr<MuxConnection> fallback; // least-loaded overall
    std::size_t spare_load = 0;
    std::size_t fallback_load = 0;
    for (const auto& conn : pool_) {
      const std::size_t load = conn->inflight();
      if (fallback == nullptr || load < fallback_load) {
        fallback = conn;
        fallback_load = load;
      }
      if (load < conn->window() && (spare == nullptr || load < spare_load)) {
        spare = conn;
        spare_load = load;
      }
    }
    if (spare != nullptr) return spare;
    if (pool_.size() >= options_.max_pooled_connections &&
        fallback != nullptr) {
      // Every window is full and the pool is at capacity: share the
      // least-loaded connection; Submit blocks until a slot frees up.
      return fallback;
    }
  }
  // Dial outside the lock — a slow handshake must not stall siblings.
  NEXUS_ASSIGN_OR_RETURN(std::unique_ptr<Transport> fresh, factory_());
  if (is_retry) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      ++counters_.reconnects;
    }
    NetCounters delta;
    delta.reconnects = 1;
    GlobalNetAdd(delta);
  }
  auto conn = NewConnection(std::move(fresh));
  // Tie the data connection to the lease session BEFORE publishing it so
  // RPCs racing onto it are already recognizable as ours.
  AttachLease(*conn);
  {
    const std::lock_guard<std::mutex> lock(pool_mu_);
    if (pool_.size() < options_.max_pooled_connections) pool_.push_back(conn);
    // max_pooled_connections == 0: never pooled — the caller's shared_ptr
    // keeps the connection alive for exactly one call (fault tests rely
    // on one fault schedule per RPC).
  }
  return conn;
}

// ---- the RPC engine ---------------------------------------------------------

Result<Bytes> RemoteBackend::Call(const Writer& request, bool* ambiguous) {
  const std::uint64_t corr = RequestCorrelation(request.bytes());
  trace::Span span(RpcName(RequestRpc(request.bytes())), "net.client");
  span.SetCorrelation(corr);

  Status last = Error(ErrorCode::kIOError, "rpc never attempted");
  bool ambig = false;
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (attempt > 0) {
      CountRetry();
      Backoff();
    }
    auto acquired = AcquireConnection(attempt > 0);
    if (!acquired.ok()) {
      NoteFailure();
      last = acquired.status();
      continue;
    }
    std::shared_ptr<MuxConnection> conn = std::move(acquired).value();

    auto slot = conn->Submit(request.bytes());
    if (slot == nullptr) {
      // The connection broke between acquisition and send; nothing of
      // ours hit the wire.
      NoteFailure();
      last = Error(ErrorCode::kIOError, "connection broke before send");
      continue;
    }
    auto response = slot->Wait();
    if (!response.ok()) {
      // Whole-connection failure. Ambiguous only if OUR frame was fully
      // sent — a sibling's failure mid-window does not put this request
      // on the server.
      ambig |= slot->sent.load(std::memory_order_acquire);
      NoteFailure();
      last = response.status();
      continue;
    }
    Reader reader(response.value());
    Status verdict = Status::Ok();
    std::uint64_t echoed = 0;
    const Status parsed = ParseResponseHead(reader, &verdict, &echoed);
    if (!parsed.ok() || echoed != corr) {
      // Delivered but untrustworthy: the demux routed it here by its
      // correlation bytes, yet the head does not hold up. Protocol
      // desync — poison the connection so the siblings re-home too.
      ambig = true;
      NoteFailure();
      last = parsed.ok() ? Error(ErrorCode::kIOError,
                                 "correlation mismatch: sent " +
                                     std::to_string(corr) + ", got " +
                                     std::to_string(echoed))
                         : parsed;
      conn->Poison(last);
      continue;
    }

    NoteSuccess();
    if (ambiguous != nullptr) *ambiguous = ambig;
    // The server's verdict — success or not — is authoritative.
    NEXUS_RETURN_IF_ERROR(verdict);
    return reader.Raw(reader.Remaining());
  }
  if (ambiguous != nullptr) *ambiguous = ambig;
  return last;
}

Status RemoteBackend::Ping() {
  // Always probes with a v2 head: a v2 server sees a normal Ping (it
  // ignores trailing bytes), while a v3+ server reads the probe byte and
  // answers with the version it will speak. No other RPC negotiates, so
  // clients that never Ping stay lock-step v2 — and their fault-injection
  // schedules stay exactly as long as before.
  Writer req = BeginRequest(Rpc::kPing, NextCorrelationId(), 2);
  req.U8(options_.max_protocol_version);
  NEXUS_ASSIGN_OR_RETURN(Bytes payload, Call(req));
  std::uint8_t negotiated = 2;
  Reader reader(payload);
  if (reader.Remaining() > 0) {
    auto offered = reader.U8();
    if (offered.ok() && offered.value() >= kMinProtocolVersion) {
      negotiated = static_cast<std::uint8_t>(std::min<unsigned>(
          offered.value(), options_.max_protocol_version));
    }
  }
  peer_version_.store(negotiated, std::memory_order_release);
  // Connections dialed before negotiation were created lock-step; widen
  // them to the window the negotiated version allows.
  std::vector<std::shared_ptr<MuxConnection>> conns;
  {
    const std::lock_guard<std::mutex> lock(pool_mu_);
    conns = pool_;
  }
  for (const auto& conn : conns) conn->SetWindow(effective_window());
  return Status::Ok();
}

Result<ServerStats> RemoteBackend::Stats() {
  NEXUS_ASSIGN_OR_RETURN(Bytes payload, Call(Req(Rpc::kStats)));
  Reader reader(payload);
  NEXUS_ASSIGN_OR_RETURN(ServerStats stats, DecodeServerStats(reader));
  if (!reader.AtEnd()) {
    return Error(ErrorCode::kInvalidArgument, "trailing bytes after stats");
  }
  return stats;
}

// ---- whole-object ops -------------------------------------------------------

Result<Bytes> RemoteBackend::Get(const std::string& name) {
  return GetLeased(name, nullptr);
}

Result<Bytes> RemoteBackend::GetLeased(const std::string& name,
                                       bool* lease_granted) {
  if (lease_granted != nullptr) *lease_granted = false;
  // A demand read for a name already being speculated JOINS the in-flight
  // prefetch RPC instead of issuing a duplicate Get: the duplicate would
  // race the prefetch delivery into the cache tier, where the second
  // insert can evict a surviving entry. The join never takes a lease
  // (speculations ask for none) — the entry stays TTL-bounded, which only
  // costs coherence freshness, never correctness.
  std::shared_ptr<PrefetchFlight> flight;
  {
    const std::lock_guard<std::mutex> lock(prefetch_mu_);
    const auto it = prefetch_inflight_.find(name);
    if (it != prefetch_inflight_.end()) flight = it->second;
  }
  if (flight != nullptr) {
    std::unique_lock<std::mutex> lock(flight->mu);
    ++flight->waiters;
    const bool done = flight->cv.wait_for(
        lock, std::chrono::milliseconds(options_.rpc_deadline_ms + 1000),
        [&] { return flight->done; });
    --flight->waiters;
    if (done && flight->verdict.ok() && flight->has_data) {
      Bytes data = flight->data; // copied: other joiners may want it too
      lock.unlock();
      {
        const std::lock_guard<std::mutex> count_lock(mu_);
        ++counters_.prefetch_joined;
      }
      cache::CacheCounters delta;
      delta.prefetch_joined = 1;
      cache::GlobalCacheAdd(delta);
      return data;
    }
    // Timed out, failed, withdrawn, or completed without retaining the
    // bytes: fall through to an ordinary demand fetch.
  }
  const bool v4 = peer_speaks_v4();
  Writer req = Req(Rpc::kGet);
  req.Str(name);
  // v4 Gets carry a want-lease byte; the server only registers a holder
  // (and pays the break protocol later) when the caller will track it.
  if (v4) req.U8(lease_granted != nullptr ? 1 : 0);
  NEXUS_ASSIGN_OR_RETURN(Bytes payload, Call(req));
  Reader reader(payload);
  NEXUS_ASSIGN_OR_RETURN(Bytes data, reader.Var(kMaxObjectBytes));
  if (v4 && reader.Remaining() > 0) {
    auto flag = reader.U8();
    if (flag.ok() && lease_granted != nullptr) {
      *lease_granted = flag.value() != 0;
    }
  }
  return data;
}

Status RemoteBackend::Put(const std::string& name, ByteSpan data) {
  return PutLeased(name, data, nullptr);
}

Status RemoteBackend::PutLeased(const std::string& name, ByteSpan data,
                                bool* lease_granted) {
  if (lease_granted != nullptr) *lease_granted = false;
  if (data.size() > kMaxObjectBytes) {
    return Error(ErrorCode::kInvalidArgument, "object too large: " + name);
  }
  const bool v5 = peer_speaks_v5();
  Writer req = Req(Rpc::kPut);
  req.Str(name);
  req.Var(data);
  // v5 Puts carry a want-write-lease byte; as with Get, the server only
  // registers a holder when the caller will track the grant.
  if (v5) req.U8(lease_granted != nullptr ? 1 : 0);
  auto payload = Call(req);
  if (!payload.ok()) return payload.status();
  if (v5 && lease_granted != nullptr) {
    Reader reader(payload.value());
    if (reader.Remaining() > 0) {
      auto flag = reader.U8();
      if (flag.ok()) *lease_granted = flag.value() != 0;
    }
  }
  return Status::Ok();
}

Status RemoteBackend::Delete(const std::string& name) {
  Writer req = Req(Rpc::kDelete);
  req.Str(name);
  bool ambiguous = false;
  const Status verdict = Call(req, &ambiguous).status();
  if (verdict.code() == ErrorCode::kNotFound && ambiguous) {
    // An earlier attempt with unknown outcome plus "not found" now means
    // OUR delete (or a concurrent one) already won; either way the
    // object is gone, which is what the caller asked for.
    return Status::Ok();
  }
  return verdict;
}

bool RemoteBackend::Exists(const std::string& name) {
  Writer req = Req(Rpc::kExists);
  req.Str(name);
  auto payload = Call(req);
  // The StorageBackend contract cannot express transport failure here;
  // an unreachable server reports "absent", matching a store that lost
  // the object — callers treat both as a re-fetch/recreate signal.
  if (!payload.ok()) return false;
  Reader reader(payload.value());
  auto flag = reader.U8();
  return flag.ok() && flag.value() != 0;
}

std::vector<std::string> RemoteBackend::List(const std::string& prefix) {
  Writer req = Req(Rpc::kList);
  req.Str(prefix);
  auto payload = Call(req);
  std::vector<std::string> names;
  if (!payload.ok()) return names;
  Reader reader(payload.value());
  auto count = reader.U32();
  if (!count.ok()) return names;
  names.reserve(count.value());
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto name = reader.Str();
    if (!name.ok()) {
      names.clear();
      return names;
    }
    names.push_back(std::move(name).value());
  }
  return names;
}

storage::StorageBackend::ListPage RemoteBackend::ListSome(
    const std::string& prefix, const std::string& start_after,
    std::size_t limit) {
  if (!peer_speaks_v6()) {
    // Pre-v6 peer: fetch the full listing and slice locally.
    return storage::StorageBackend::ListSome(prefix, start_after, limit);
  }
  ListPage page;
  if (limit == 0) return page;
  // The server treats limits above kMaxMultiEntries as a protocol error;
  // clamp here so callers can pass any bound they like.
  const std::uint32_t capped = static_cast<std::uint32_t>(
      std::min<std::size_t>(limit, kMaxMultiEntries));
  Writer req = Req(Rpc::kListPage);
  req.Str(prefix);
  req.Str(start_after);
  req.U32(capped);
  auto payload = Call(req);
  // Same degradation as List(): an unreachable server reads as an empty
  // page with no continuation.
  if (!payload.ok()) return page;
  Reader reader(payload.value());
  auto count = reader.U32();
  if (!count.ok() || count.value() > capped) return page;
  page.names.reserve(count.value());
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto name = reader.Str();
    if (!name.ok()) {
      page.names.clear();
      return page;
    }
    page.names.push_back(std::move(name).value());
  }
  auto more = reader.U8();
  page.more = more.ok() && more.value() != 0;
  return page;
}

// ---- batch ops (wire v3) ----------------------------------------------------

std::vector<Result<Bytes>> RemoteBackend::MultiGet(
    const std::vector<std::string>& names) {
  return MultiGetLeased(names, nullptr);
}

std::vector<Result<Bytes>> RemoteBackend::MultiGetLeased(
    const std::vector<std::string>& names, std::vector<bool>* leased) {
  if (leased != nullptr) leased->assign(names.size(), false);
  if (!peer_speaks_v3()) {
    // v2 peer: the base-class loop of single Gets is the whole protocol.
    return storage::StorageBackend::MultiGet(names);
  }
  // Leases on batch fills need the v5 per-entry granted flags; against a
  // v4-or-older peer the caller falls back to TTL-clean installs.
  const bool want_lease = leased != nullptr && peer_speaks_v5();
  const std::uint8_t wv = wire_version();
  std::vector<Result<Bytes>> results;
  results.reserve(names.size());
  for (std::size_t base = 0; base < names.size(); base += kMaxMultiEntries) {
    const std::size_t n = std::min(kMaxMultiEntries, names.size() - base);
    const std::vector<std::string> batch(names.begin() + base,
                                         names.begin() + base + n);
    Writer req = Req(Rpc::kMultiGet);
    EncodeNameList(req, batch);
    if (wv >= 5) req.U8(want_lease ? 1 : 0);
    auto payload = Call(req);
    if (!payload.ok()) {
      for (std::size_t i = 0; i < n; ++i) results.push_back(payload.status());
      continue;
    }
    Reader reader(payload.value());
    auto entries = DecodeMultiGetEntries(reader, wv);
    const bool shape_ok = entries.ok() && reader.AtEnd() &&
                          entries.value().size() == n;
    if (!shape_ok) {
      const Status bad =
          entries.ok() ? Error(ErrorCode::kIOError,
                               "malformed multi-get response shape")
                       : entries.status();
      for (std::size_t i = 0; i < n; ++i) results.push_back(bad);
      continue;
    }
    std::vector<std::size_t> deferred_slots; // indexes into `results`
    std::vector<std::string> deferred_names;
    for (std::size_t i = 0; i < n; ++i) {
      MultiGetEntry& entry = entries.value()[i];
      switch (entry.state) {
        case MultiGetEntry::State::kOk:
          if (want_lease) (*leased)[results.size()] = entry.leased;
          results.push_back(std::move(entry.data));
          break;
        case MultiGetEntry::State::kError:
          results.push_back(entry.error);
          break;
        case MultiGetEntry::State::kDeferred:
          // The server hit its response-size budget before this name.
          deferred_slots.push_back(results.size());
          deferred_names.push_back(batch[i]);
          results.push_back(
              Error(ErrorCode::kIOError, "multi-get entry unresolved"));
          break;
      }
    }
    // Re-fetch stragglers in follow-up BATCHES, not singles: each round
    // packs another response-budget's worth, so a deferred tail of k
    // objects costs ~(total bytes / budget) round trips instead of k.
    while (!deferred_names.empty()) {
      Writer follow = Req(Rpc::kMultiGet);
      EncodeNameList(follow, deferred_names);
      if (wv >= 5) follow.U8(want_lease ? 1 : 0);
      auto follow_payload = Call(follow);
      if (!follow_payload.ok()) {
        for (const std::size_t slot : deferred_slots) {
          results[slot] = follow_payload.status();
        }
        break;
      }
      Reader follow_reader(follow_payload.value());
      auto follow_entries = DecodeMultiGetEntries(follow_reader, wv);
      const bool follow_ok = follow_entries.ok() && follow_reader.AtEnd() &&
                             follow_entries.value().size() ==
                                 deferred_names.size();
      std::vector<std::size_t> next_slots;
      std::vector<std::string> next_names;
      if (follow_ok) {
        for (std::size_t i = 0; i < deferred_names.size(); ++i) {
          MultiGetEntry& entry = follow_entries.value()[i];
          switch (entry.state) {
            case MultiGetEntry::State::kOk:
              if (want_lease) (*leased)[deferred_slots[i]] = entry.leased;
              results[deferred_slots[i]] = std::move(entry.data);
              break;
            case MultiGetEntry::State::kError:
              results[deferred_slots[i]] = entry.error;
              break;
            case MultiGetEntry::State::kDeferred:
              next_slots.push_back(deferred_slots[i]);
              next_names.push_back(deferred_names[i]);
              break;
          }
        }
      }
      if (!follow_ok || next_names.size() == deferred_names.size()) {
        // Malformed round, or zero progress (a first entry so large its
        // encoding alone overflows the budget): single Gets have no
        // response budget and always terminate.
        const std::vector<std::size_t>& slots =
            follow_ok ? next_slots : deferred_slots;
        const std::vector<std::string>& strays =
            follow_ok ? next_names : deferred_names;
        for (std::size_t i = 0; i < strays.size(); ++i) {
          if (want_lease) {
            bool granted = false;
            results[slots[i]] = GetLeased(strays[i], &granted);
            (*leased)[slots[i]] = granted;
          } else {
            results[slots[i]] = Get(strays[i]);
          }
        }
        break;
      }
      deferred_slots = std::move(next_slots);
      deferred_names = std::move(next_names);
    }
  }
  return results;
}

std::vector<bool> RemoteBackend::MultiExists(
    const std::vector<std::string>& names) {
  if (!peer_speaks_v3()) {
    return storage::StorageBackend::MultiExists(names);
  }
  std::vector<bool> results;
  results.reserve(names.size());
  for (std::size_t base = 0; base < names.size(); base += kMaxMultiEntries) {
    const std::size_t n = std::min(kMaxMultiEntries, names.size() - base);
    const std::vector<std::string> batch(names.begin() + base,
                                         names.begin() + base + n);
    Writer req = Req(Rpc::kMultiExists);
    EncodeNameList(req, batch);
    auto payload = Call(req);
    // One u8 flag per requested name, in request order. Transport failure
    // or a malformed shape degrades to "absent", same as Exists.
    if (!payload.ok() || payload.value().size() != n) {
      for (std::size_t i = 0; i < n; ++i) results.push_back(false);
      continue;
    }
    for (std::size_t i = 0; i < n; ++i) {
      results.push_back(payload.value()[i] != 0);
    }
  }
  return results;
}

// ---- readahead --------------------------------------------------------------

void RemoteBackend::SetPrefetchSink(PrefetchSink sink) {
  const std::lock_guard<std::mutex> lock(prefetch_mu_);
  sink_ = std::move(sink);
}

void RemoteBackend::FinishFlight(const std::shared_ptr<PrefetchFlight>& flight,
                                 Status verdict, const Bytes* data) {
  {
    const std::lock_guard<std::mutex> lock(flight->mu);
    flight->done = true;
    flight->verdict = std::move(verdict);
    // The copy is paid only when a demand read is actually parked on this
    // speculation; the common case hands the bytes to the sink alone.
    if (data != nullptr && flight->waiters > 0) {
      flight->data = *data;
      flight->has_data = true;
    }
  }
  flight->cv.notify_all();
}

void RemoteBackend::Prefetch(const std::string& name) {
  if (readahead_budget_ == 0 || effective_window() <= 1) return;
  PrefetchSink sink;
  std::shared_ptr<PrefetchFlight> flight;
  {
    const std::lock_guard<std::mutex> lock(prefetch_mu_);
    if (!sink_) return; // nowhere for the bytes to land
    if (prefetch_inflight_.contains(name)) return;
    if (prefetch_inflight_.size() >= options_.max_inflight_prefetches) return;
    // Register BEFORE submitting so a duplicate hint arriving while the
    // speculation is in flight stays a no-op.
    flight = std::make_shared<PrefetchFlight>();
    prefetch_inflight_[name] = flight;
    sink = sink_;
  }

  // Speculation only rides spare capacity: an unbroken pooled connection
  // with window room. Never dials, never blocks, never retries.
  std::shared_ptr<MuxConnection> conn;
  {
    const std::lock_guard<std::mutex> lock(pool_mu_);
    for (const auto& candidate : pool_) {
      if (!candidate->broken() && candidate->inflight() < candidate->window()) {
        conn = candidate;
        break;
      }
    }
  }
  std::shared_ptr<MuxConnection::Slot> slot;
  if (conn != nullptr) {
    trace::Span span("prefetch_issue", "net.prefetch");
    Writer req = Req(Rpc::kGet);
    req.Str(name);
    if (peer_speaks_v4()) req.U8(0); // speculation never takes a lease
    const std::uint64_t corr = RequestCorrelation(req.bytes());
    slot = conn->TrySubmit(
        req.bytes(), [this, name, sink, corr](const Status& failure,
                                              const Bytes& response) {
          OnPrefetchDone(name, sink, corr, failure, response);
        });
  }
  if (slot == nullptr) {
    // Window filled up (or no connection): withdraw the registration and
    // release any demand read that latched onto it in the meantime.
    {
      const std::lock_guard<std::mutex> lock(prefetch_mu_);
      prefetch_inflight_.erase(name);
    }
    FinishFlight(flight, Error(ErrorCode::kIOError, "speculation withdrawn"),
                 nullptr);
    return;
  }
  cache::CacheCounters delta;
  delta.prefetch_issued = 1;
  cache::GlobalCacheAdd(delta);
}

void RemoteBackend::OnPrefetchDone(const std::string& name,
                                   const PrefetchSink& sink,
                                   std::uint64_t correlation,
                                   const Status& failure,
                                   const Bytes& response) {
  std::shared_ptr<PrefetchFlight> flight;
  {
    const std::lock_guard<std::mutex> lock(prefetch_mu_);
    const auto it = prefetch_inflight_.find(name);
    if (it != prefetch_inflight_.end()) {
      flight = std::move(it->second);
      prefetch_inflight_.erase(it);
    }
  }
  // Speculative traffic never retries; transport failures drop silently —
  // but a joined demand read must still be released to re-fetch.
  if (!failure.ok()) {
    if (flight != nullptr) FinishFlight(flight, failure, nullptr);
    return;
  }
  Reader reader(response);
  Status verdict = Status::Ok();
  std::uint64_t echoed = 0;
  if (!ParseResponseHead(reader, &verdict, &echoed).ok() ||
      echoed != correlation) {
    // Malformed speculation: the demand path re-fetches.
    if (flight != nullptr) {
      FinishFlight(flight, Error(ErrorCode::kIOError, "malformed speculation"),
                   nullptr);
    }
    return;
  }
  if (!verdict.ok()) {
    // A well-formed negative verdict (kNotFound) is a real answer — the
    // sink decides whether it is cacheable, and a joiner surfaces it
    // directly.
    sink(name, Result<Bytes>(verdict), false);
    if (flight != nullptr) FinishFlight(flight, verdict, nullptr);
    return;
  }
  auto data = reader.Var(kMaxObjectBytes);
  if (!data.ok()) {
    if (flight != nullptr) {
      FinishFlight(flight, Error(ErrorCode::kIOError, "malformed speculation"),
                   nullptr);
    }
    return;
  }
  Bytes body = std::move(data).value();
  // Wake joiners first (copying the bytes only if someone waits), then
  // move the bytes to the sink. If a woken joiner re-inserts before the
  // sink delivery lands, the cache tier's "demand path won the race"
  // check makes the delivery a no-op — never a double insert.
  if (flight != nullptr) FinishFlight(flight, Status::Ok(), &body);
  sink(name, Result<Bytes>(std::move(body)), false);
}

// ---- lease subscription (wire v4) -------------------------------------------

bool RemoteBackend::SubscribeInvalidations(InvalidationListener on_invalidate,
                                           ChannelDownHandler on_channel_down) {
  if (!peer_speaks_v4()) return false;
  {
    const std::lock_guard<std::mutex> lock(lease_mu_);
    if (lease_thread_.joinable()) return false; // already subscribed
    const TransportFactory& dial = options_.lease_transport_factory
                                       ? options_.lease_transport_factory
                                       : factory_;
    auto dialed = dial();
    if (!dialed.ok()) return false;
    std::unique_ptr<Transport> transport = std::move(dialed).value();

    // Lock-step subscription handshake on the dedicated connection.
    Writer req = BeginRequest(Rpc::kLeaseSubscribe, NextCorrelationId(), 4);
    const std::uint64_t corr = RequestCorrelation(req.bytes());
    if (!transport->SendFrame(req.bytes()).ok()) return false;
    auto response = transport->RecvFrame();
    if (!response.ok()) return false;
    Reader reader(response.value());
    Status verdict = Status::Ok();
    std::uint64_t echoed = 0;
    if (!ParseResponseHead(reader, &verdict, &echoed).ok() ||
        echoed != corr || !verdict.ok()) {
      return false;
    }
    auto sid = reader.U64();
    if (!sid.ok() || sid.value() == 0) return false;

    lease_session_.store(sid.value(), std::memory_order_release);
    lease_transport_ = std::move(transport);
    lease_listener_ = std::move(on_invalidate);
    lease_on_down_ = std::move(on_channel_down);
    lease_thread_ = std::thread([this] { LeaseCallbackLoop(); });
  }
  // Tie the connections dialed before the subscription (Connect's Ping
  // connection at least) to the session so their writes are already
  // recognizable as ours.
  std::vector<std::shared_ptr<MuxConnection>> conns;
  {
    const std::lock_guard<std::mutex> lock(pool_mu_);
    conns = pool_;
  }
  for (const auto& conn : conns) AttachLease(*conn);
  return true;
}

void RemoteBackend::LeaseCallbackLoop() {
  // The server originates request-format kInvalidate frames here; each is
  // acked with an ordinary response frame AFTER the listener ran, so a
  // server waiting on the ack knows the cache entry is already gone.
  for (;;) {
    auto frame = lease_transport_->RecvFrame();
    if (!frame.ok()) break;
    Reader reader(frame.value());
    std::uint64_t corr = 0;
    auto rpc = ParseRequestHead(reader, &corr);
    if (!rpc.ok() || rpc.value() != Rpc::kInvalidate) break;
    auto names = DecodeNameList(reader);
    if (!names.ok()) break;
    {
      trace::Span span("cache.invalidate_push", "net.lease");
      span.SetCorrelation(corr);
      if (lease_listener_) lease_listener_(names.value());
    }
    Writer ack = BeginResponse(Status::Ok(), corr, 4);
    if (!lease_transport_->SendFrame(ack.bytes()).ok()) break;
  }
  lease_session_.store(0, std::memory_order_release);
  if (!lease_shutdown_.load(std::memory_order_acquire)) {
    // Real channel loss (not our own destructor): leases are void now.
    if (lease_on_down_) lease_on_down_();
  }
}

NetCounters RemoteBackend::counters() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

// ---- streamed puts ----------------------------------------------------------

// Client half of the streaming RPC. Keeps every appended byte so a broken
// connection can restart the stream from scratch on a fresh one — the
// server publishes nothing before Commit, so a replay can never produce a
// partial object, only delay the atomic publish. The stream runs lock-step
// on its own dedicated transport: its RPCs are stateful (the handle lives
// on the server's connection), so it cannot share the multiplexed pool.
class RemotePutStream final : public storage::StorageBackend::PutStream {
 public:
  RemotePutStream(RemoteBackend& backend, std::string name)
      : backend_(backend), name_(std::move(name)) {}

  ~RemotePutStream() override {
    if (!finished_) Abort();
  }

  Status Append(ByteSpan data) override {
    if (finished_) {
      return Error(ErrorCode::kInvalidArgument,
                   "append on finished stream: " + name_);
    }
    nexus::Append(replay_, data);
    if (conn_ != nullptr) {
      Writer req = Req(Rpc::kStreamAppend);
      req.U64(handle_);
      req.Var(data);
      Status verdict = Status::Ok();
      auto ack = Exchange(req, &verdict);
      if (ack.ok() && verdict.ok()) return Status::Ok();
      DropConnection();
    }
    // First segment, or the connection just broke: (re)establish and
    // replay everything buffered so far (current segment included).
    return RestartWithRetries();
  }

  Status Commit() override {
    if (finished_) {
      return Error(ErrorCode::kInvalidArgument,
                   "commit on finished stream: " + name_);
    }
    Status last = Error(ErrorCode::kIOError, "commit never attempted");
    for (int attempt = 0; attempt < backend_.options_.max_attempts;
         ++attempt) {
      if (attempt > 0) {
        backend_.CountRetry();
        backend_.Backoff();
      }
      if (conn_ == nullptr) {
        const Status restarted = Restart();
        if (!restarted.ok()) {
          last = restarted;
          continue;
        }
      }
      Writer req = Req(Rpc::kStreamCommit);
      req.U64(handle_);
      Status verdict = Status::Ok();
      auto payload = Exchange(req, &verdict);
      if (payload.ok()) {
        // Well-formed server verdict: final, success or not.
        finished_ = true;
        DropConnection();
        return verdict;
      }
      // Transport failure: the commit outcome is unknown. Re-running the
      // whole stream and committing again is safe — publishing the same
      // bytes twice is idempotent (last writer wins, identical content).
      DropConnection();
      last = payload.status();
    }
    finished_ = true;
    return last;
  }

  void Abort() override {
    if (finished_) return;
    finished_ = true;
    if (conn_ != nullptr) {
      Writer req = Req(Rpc::kStreamAbort);
      req.U64(handle_);
      Status verdict = Status::Ok();
      (void)Exchange(req, &verdict); // best effort; disconnect also aborts
      DropConnection();
    }
    replay_.clear();
  }

 private:
  /// Stream requests carry the backend's negotiated head version, like
  /// every other RPC (the server accepts both on any connection).
  Writer Req(Rpc rpc) const { return backend_.Req(rpc); }

  /// One request/response on the stream's dedicated connection. The OUTER
  /// result is transport/protocol health (error => drop the connection);
  /// on outer success `verdict` holds the server's authoritative answer
  /// and the returned bytes are the response payload after the head.
  /// Feeds the backend's failure streak: a delivered well-formed response
  /// resets it, a transport failure grows it.
  Result<Bytes> Exchange(const Writer& request, Status* verdict) {
    auto exchanged = ExchangeInner(request, verdict);
    if (exchanged.ok()) {
      backend_.NoteSuccess();
    } else {
      backend_.NoteFailure();
    }
    return exchanged;
  }

  Result<Bytes> ExchangeInner(const Writer& request, Status* verdict) {
    const std::uint64_t corr = RequestCorrelation(request.bytes());
    trace::Span span(RpcName(RequestRpc(request.bytes())), "net.client");
    span.SetCorrelation(corr);

    const std::uint64_t start = MonotonicNanos();
    NEXUS_RETURN_IF_ERROR(conn_->SendFrame(request.bytes()));
    NEXUS_ASSIGN_OR_RETURN(Bytes response, conn_->RecvFrame());
    Reader reader(response);
    Status server = Status::Ok();
    std::uint64_t echoed = 0;
    NEXUS_RETURN_IF_ERROR(ParseResponseHead(reader, &server, &echoed));
    if (echoed != corr) {
      return Error(ErrorCode::kIOError,
                   "correlation mismatch on stream connection");
    }
    const double ms = static_cast<double>(MonotonicNanos() - start) * 1e-6;
    {
      const std::lock_guard<std::mutex> lock(backend_.mu_);
      ++backend_.counters_.rpcs;
      backend_.counters_.bytes_sent += request.bytes().size() + 4;
      backend_.counters_.bytes_received += response.size() + 4;
    }
    NetCounters delta;
    delta.rpcs = 1;
    delta.bytes_sent = request.bytes().size() + 4;
    delta.bytes_received = response.size() + 4;
    GlobalNetAdd(delta);
    GlobalNetRecordLatencyMs(ms);
    *verdict = std::move(server);
    return reader.Raw(reader.Remaining());
  }

  void DropConnection() {
    conn_.reset();
    handle_ = 0;
  }

  /// Fresh connection + StreamBegin + full replay of the bytes so far.
  /// Any failure (transport or server verdict) fails this attempt; the
  /// caller's retry budget decides whether to try again.
  Status Restart() {
    DropConnection();
    auto dialed = backend_.factory_();
    if (!dialed.ok()) {
      backend_.NoteFailure();
      return dialed.status();
    }
    conn_ = std::move(dialed).value();

    // Tie the stream connection to the lease session so the commit does
    // not invalidate the writer's own cache. A server verdict error
    // (stale session) is benign — the stream works unattached.
    const std::uint64_t sid = backend_.lease_session();
    if (sid != 0 && backend_.peer_speaks_v4()) {
      Writer attach = Req(Rpc::kLeaseAttach);
      attach.U64(sid);
      Status attach_verdict = Status::Ok();
      auto acked = Exchange(attach, &attach_verdict);
      if (!acked.ok()) {
        DropConnection();
        return acked.status();
      }
    }

    Writer begin = Req(Rpc::kStreamBegin);
    begin.Str(name_);
    Status verdict = Status::Ok();
    auto payload = Exchange(begin, &verdict);
    if (!payload.ok() || !verdict.ok()) {
      DropConnection();
      return payload.ok() ? verdict : payload.status();
    }
    Reader reader(payload.value());
    auto handle = reader.U64();
    if (!handle.ok()) {
      DropConnection();
      return Error(ErrorCode::kIOError, "malformed stream-begin response");
    }
    handle_ = handle.value();

    for (std::size_t off = 0; off < replay_.size();
         off += kReplaySegmentBytes) {
      const std::size_t n =
          std::min(kReplaySegmentBytes, replay_.size() - off);
      Writer append = Req(Rpc::kStreamAppend);
      append.U64(handle_);
      append.Var(ByteSpan(replay_.data() + off, n));
      Status segment_verdict = Status::Ok();
      auto ack = Exchange(append, &segment_verdict);
      if (!ack.ok() || !segment_verdict.ok()) {
        DropConnection();
        return ack.ok() ? segment_verdict : ack.status();
      }
    }
    return Status::Ok();
  }

  Status RestartWithRetries() {
    Status last = Error(ErrorCode::kIOError, "stream restart never attempted");
    for (int attempt = 0; attempt < backend_.options_.max_attempts;
         ++attempt) {
      if (attempt > 0) {
        backend_.CountRetry();
        backend_.Backoff();
      }
      const Status restarted = Restart();
      if (restarted.ok()) return Status::Ok();
      last = restarted;
    }
    return last;
  }

  RemoteBackend& backend_;
  std::string name_;
  Bytes replay_;
  std::unique_ptr<Transport> conn_;
  std::uint64_t handle_ = 0;
  bool finished_ = false;
};

// Pipelined client half of the streaming RPC for callers that cannot
// afford O(object) client memory. Runs on its own dedicated mux
// connection — stream handles are per-connection server state, so the
// pooled connections cannot carry them — and keeps only the in-flight
// window's verdict slots alive: each segment's request frame is written
// to the socket inside Submit and never retained, so peak client memory
// is one segment plus a window of small verdicts, independent of object
// size. The price of dropping the replay buffer is that a broken
// connection is FINAL: there is nothing to rebuild a fresh stream from,
// so failure is reported to the caller and redundancy is the caller's
// job (the cluster layer absorbs a lost replica through its quorum).
//
// Every append verdict is collected BEFORE the commit frame goes out.
// The server executes per-connection stream ops in FIFO order but
// leaves a failed stream open, so a commit pipelined behind an
// unverified append could publish a truncated object.
class MuxPutStream final : public storage::StorageBackend::PutStream {
 public:
  MuxPutStream(RemoteBackend& backend, std::string name)
      : backend_(backend), name_(std::move(name)) {}

  ~MuxPutStream() override {
    if (!finished_) Abort();
  }

  Status Append(ByteSpan data) override {
    if (finished_) {
      return Error(ErrorCode::kInvalidArgument,
                   "append on finished stream: " + name_);
    }
    if (broken_) {
      return Error(ErrorCode::kIOError,
                   "append on broken stream: " + name_);
    }
    if (conn_ == nullptr) NEXUS_RETURN_IF_ERROR(Begin());
    // Retire the oldest appends until the new one fits in the window —
    // this, not Submit's own blocking, is what bounds client memory and
    // surfaces a rejected segment before more bytes chase it.
    while (inflight_.size() >= conn_->window()) {
      NEXUS_RETURN_IF_ERROR(DrainOldest());
    }
    Writer req = backend_.Req(Rpc::kStreamAppend);
    req.U64(handle_);
    req.Var(data);
    auto slot = conn_->Submit(req.bytes());
    if (slot == nullptr) {
      backend_.NoteFailure();
      return FailStream(Error(ErrorCode::kIOError,
                              "stream connection broke mid-append: " + name_));
    }
    inflight_.push_back(std::move(slot));
    return Status::Ok();
  }

  Status Commit() override {
    if (finished_) {
      return Error(ErrorCode::kInvalidArgument,
                   "commit on finished stream: " + name_);
    }
    if (broken_) {
      finished_ = true;
      return Error(ErrorCode::kIOError,
                   "commit on broken stream: " + name_);
    }
    if (conn_ == nullptr) {
      // Zero-byte object: open the stream now so Commit has a handle.
      const Status begun = Begin();
      if (!begun.ok()) {
        finished_ = true;
        return begun;
      }
    }
    while (!inflight_.empty()) {
      const Status drained = DrainOldest();
      if (!drained.ok()) {
        finished_ = true;
        return drained;
      }
    }
    Writer req = backend_.Req(Rpc::kStreamCommit);
    req.U64(handle_);
    auto slot = conn_->Submit(req.bytes());
    finished_ = true;
    if (slot == nullptr) {
      backend_.NoteFailure();
      return FailStream(Error(ErrorCode::kIOError,
                              "stream connection broke on commit: " + name_));
    }
    Status verdict = Status::Ok();
    auto payload = WaitResponse(*slot, &verdict);
    conn_.reset();
    if (!payload.ok()) return payload.status();
    return verdict;
  }

  void Abort() override {
    if (finished_) return;
    finished_ = true;
    if (broken_ || conn_ == nullptr) return;
    // Collect outstanding verdicts so the abort lands last in FIFO
    // order, then fire it best effort — disconnect also aborts the
    // server-side stream, so a failure here leaks nothing.
    while (!inflight_.empty()) {
      if (!DrainOldest().ok()) return; // FailStream dropped the connection
    }
    Writer req = backend_.Req(Rpc::kStreamAbort);
    req.U64(handle_);
    auto slot = conn_->Submit(req.bytes());
    if (slot != nullptr) (void)slot->Wait();
    conn_.reset();
  }

 private:
  /// Dial + lease attach + lock-step StreamBegin. Any failure marks the
  /// stream broken — there is no retry budget, because a later retry
  /// could not replay segments already handed to a previous connection.
  Status Begin() {
    auto dialed = backend_.factory_();
    if (!dialed.ok()) {
      backend_.NoteFailure();
      broken_ = true;
      return dialed.status();
    }
    conn_ = backend_.NewConnection(std::move(dialed).value());
    // Same best-effort session tie as pooled connections: the commit
    // must not invalidate the writer's own cache.
    backend_.AttachLease(*conn_);
    Writer begin = backend_.Req(Rpc::kStreamBegin);
    begin.Str(name_);
    auto slot = conn_->Submit(begin.bytes());
    if (slot == nullptr) {
      backend_.NoteFailure();
      return FailStream(Error(ErrorCode::kIOError,
                              "stream connection broke on begin: " + name_));
    }
    Status verdict = Status::Ok();
    auto payload = WaitResponse(*slot, &verdict);
    if (!payload.ok()) return FailStream(payload.status());
    if (!verdict.ok()) return FailStream(verdict);
    Reader reader(payload.value());
    auto handle = reader.U64();
    if (!handle.ok()) {
      return FailStream(
          Error(ErrorCode::kIOError, "malformed stream-begin response"));
    }
    handle_ = handle.value();
    return Status::Ok();
  }

  /// Blocks on one slot. The OUTER result is transport/protocol health;
  /// on outer success `verdict` holds the server's authoritative answer
  /// and the bytes are the payload after the head. Delivery counters are
  /// already handled by the mux delivery hook; this only feeds the
  /// backend's failure streak.
  Result<Bytes> WaitResponse(MuxConnection::Slot& slot, Status* verdict) {
    const std::uint64_t corr = slot.correlation;
    auto delivered = slot.Wait();
    if (!delivered.ok()) {
      backend_.NoteFailure();
      return delivered.status();
    }
    Reader reader(delivered.value());
    Status server = Status::Ok();
    std::uint64_t echoed = 0;
    const Status head = ParseResponseHead(reader, &server, &echoed);
    if (!head.ok() || echoed != corr) {
      // The demux routed this frame here by its correlation id, so a
      // mismatch or unparsable head means the byte stream itself can no
      // longer be trusted for ANY request on the connection.
      conn_->Poison(Error(ErrorCode::kIOError,
                          "malformed response on stream connection"));
      backend_.NoteFailure();
      if (!head.ok()) return head;
      return Error(ErrorCode::kIOError,
                   "correlation mismatch on stream connection");
    }
    backend_.NoteSuccess();
    *verdict = std::move(server);
    return reader.Raw(reader.Remaining());
  }

  /// Retires the oldest in-flight append: waits for its verdict and
  /// fails the stream on either a transport loss or a server rejection.
  Status DrainOldest() {
    auto slot = std::move(inflight_.front());
    inflight_.pop_front();
    Status verdict = Status::Ok();
    auto payload = WaitResponse(*slot, &verdict);
    if (!payload.ok()) return FailStream(payload.status());
    if (!verdict.ok()) return FailStream(verdict);
    return Status::Ok();
  }

  /// A failed stream is final. Drop the connection (disconnect aborts
  /// the server-side stream) and report the loss to the caller.
  Status FailStream(Status reason) {
    broken_ = true;
    inflight_.clear();
    conn_.reset();
    return reason;
  }

  RemoteBackend& backend_;
  std::string name_;
  std::shared_ptr<MuxConnection> conn_;
  std::deque<std::shared_ptr<MuxConnection::Slot>> inflight_;
  std::uint64_t handle_ = 0;
  bool broken_ = false;
  bool finished_ = false;
};

Result<std::unique_ptr<storage::StorageBackend::PutStream>>
RemoteBackend::OpenPutStream(const std::string& name) {
  return std::unique_ptr<PutStream>(new RemotePutStream(*this, name));
}

Result<std::unique_ptr<storage::StorageBackend::PutStream>>
RemoteBackend::OpenUnbufferedPutStream(const std::string& name) {
  return std::unique_ptr<PutStream>(new MuxPutStream(*this, name));
}

} // namespace nexus::net
