#include "net/reactor.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include "common/clock.hpp"

namespace nexus::net {

namespace {

Status Errno(const std::string& what) {
  return Error(ErrorCode::kIOError, what + ": " + std::strerror(errno));
}

bool MakeNonblockingPipe(int fds[2]) {
  if (::pipe(fds) != 0) return false;
  for (int i = 0; i < 2; ++i) {
    const int flags = ::fcntl(fds[i], F_GETFL, 0);
    ::fcntl(fds[i], F_SETFL, flags | O_NONBLOCK);
    ::fcntl(fds[i], F_SETFD, FD_CLOEXEC);
  }
  return true;
}

} // namespace

Reactor::Reactor() {
  int pipe_fds[2] = {-1, -1};
  if (!MakeNonblockingPipe(pipe_fds)) return;
  wake_read_ = pipe_fds[0];
  wake_write_ = pipe_fds[1];
#ifdef __linux__
  // NEXUS_NO_EPOLL forces the portable poll backend (used by tests to
  // exercise the fallback on Linux CI).
  if (std::getenv("NEXUS_NO_EPOLL") == nullptr) {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  }
  if (epoll_fd_ >= 0) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = 0; // generation 0 == the wake pipe
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_read_, &ev) != 0) {
      ::close(epoll_fd_);
      epoll_fd_ = -1;
    }
  }
#endif
  ok_ = true;
}

Reactor::~Reactor() {
  Stop();
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_read_ >= 0) ::close(wake_read_);
  if (wake_write_ >= 0) ::close(wake_write_);
}

bool Reactor::EpollArm(int fd, std::uint32_t interest,
                       std::uint64_t generation, bool add) {
#ifdef __linux__
  if (epoll_fd_ < 0) return true;
  epoll_event ev{};
  if ((interest & kRead) != 0) ev.events |= EPOLLIN;
  if ((interest & kWrite) != 0) ev.events |= EPOLLOUT;
  // data carries (generation, fd) so stale events for a recycled fd
  // number are dropped by the generation check in RunEpoll.
  ev.data.u64 = (generation << 20) | static_cast<std::uint32_t>(fd & 0xfffff);
  return ::epoll_ctl(epoll_fd_, add ? EPOLL_CTL_ADD : EPOLL_CTL_MOD, fd,
                     &ev) == 0;
#else
  (void)fd;
  (void)interest;
  (void)generation;
  (void)add;
  return true;
#endif
}

Status Reactor::Add(int fd, std::uint32_t interest, EventFn fn) {
  Registration reg;
  reg.interest = interest;
  reg.generation = next_generation_++;
  reg.fn = std::make_shared<EventFn>(std::move(fn));
  if (!EpollArm(fd, interest, reg.generation, /*add=*/true)) {
    return Errno("epoll_ctl add");
  }
  registry_[fd] = std::move(reg);
  return Status::Ok();
}

Status Reactor::Modify(int fd, std::uint32_t interest) {
  auto it = registry_.find(fd);
  if (it == registry_.end()) {
    return Error(ErrorCode::kInvalidArgument, "modify of unregistered fd");
  }
  if (it->second.interest == interest) return Status::Ok();
  it->second.interest = interest;
  if (!EpollArm(fd, interest, it->second.generation, /*add=*/false)) {
    return Errno("epoll_ctl mod");
  }
  return Status::Ok();
}

void Reactor::Remove(int fd) {
  auto it = registry_.find(fd);
  if (it == registry_.end()) return;
#ifdef __linux__
  if (epoll_fd_ >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
#endif
  registry_.erase(it);
}

void Reactor::Post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    if (!accepting_posts_) return;
    posted_.push_back(std::move(fn));
  }
  const std::uint8_t byte = 1;
  // A full pipe already guarantees a pending wakeup; EAGAIN is fine.
  [[maybe_unused]] ssize_t n = ::write(wake_write_, &byte, 1);
}

void Reactor::DrainPosted() {
  std::uint8_t buf[256];
  while (::read(wake_read_, buf, sizeof(buf)) > 0) {
  }
  std::vector<std::function<void()>> tasks;
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    tasks.swap(posted_);
  }
  for (auto& t : tasks) t();
}

void Reactor::Stop() {
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    accepting_posts_ = false;
  }
  stop_.store(true, std::memory_order_release);
  const std::uint8_t byte = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_write_, &byte, 1);
}

Reactor::Stats Reactor::stats() const {
  Stats s;
  s.wakeups = wakeups_.load(std::memory_order_relaxed);
  s.dispatches = dispatches_.load(std::memory_order_relaxed);
  s.using_epoll = epoll_fd_ >= 0;
  return s;
}

void Reactor::Run() {
  if (epoll_fd_ >= 0) {
    RunEpoll();
  } else {
    RunPoll();
  }
  DrainPosted(); // tasks posted between the last wakeup and Stop()
}

void Reactor::RunEpoll() {
#ifdef __linux__
  std::vector<epoll_event> events(256);
  while (!stop_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    wakeups_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t t0 = MonotonicNanos();
    DrainPosted();
    if (stop_.load(std::memory_order_acquire)) break;
    for (int i = 0; i < n; ++i) {
      const std::uint64_t data = events[i].data.u64;
      if (data == 0) continue; // wake pipe, drained above
      const int fd = static_cast<int>(data & 0xfffff);
      const std::uint64_t generation = data >> 20;
      auto it = registry_.find(fd);
      // A callback earlier in this batch may have removed (or removed
      // and re-added) this fd; the generation mismatch drops the event.
      if (it == registry_.end() || it->second.generation != generation) {
        continue;
      }
      std::uint32_t ready = 0;
      if ((events[i].events & (EPOLLIN | EPOLLHUP)) != 0) ready |= kRead;
      if ((events[i].events & EPOLLOUT) != 0) ready |= kWrite;
      if ((events[i].events & EPOLLERR) != 0) ready |= kError;
      if (ready == 0) continue;
      // Copy the handler ref: the callback may Remove its own fd, which
      // erases the registry entry while the function is executing.
      auto fn = it->second.fn;
      dispatches_.fetch_add(1, std::memory_order_relaxed);
      (*fn)(ready);
      if (stop_.load(std::memory_order_acquire)) return;
    }
    dispatch_latency_.Record(MonotonicNanos() - t0);
    if (n == static_cast<int>(events.size()) && events.size() < 4096) {
      events.resize(events.size() * 2);
    }
  }
#endif
}

void Reactor::RunPoll() {
  while (!stop_.load(std::memory_order_acquire)) {
    std::vector<pollfd> fds;
    std::vector<std::pair<int, std::uint64_t>> order; // (fd, generation)
    fds.reserve(registry_.size() + 1);
    fds.push_back(pollfd{wake_read_, POLLIN, 0});
    order.emplace_back(wake_read_, 0);
    for (const auto& [fd, reg] : registry_) {
      short events = 0;
      if ((reg.interest & kRead) != 0) events |= POLLIN;
      if ((reg.interest & kWrite) != 0) events |= POLLOUT;
      fds.push_back(pollfd{fd, events, 0});
      order.emplace_back(fd, reg.generation);
    }
    const int n = ::poll(fds.data(), fds.size(), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    wakeups_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t t0 = MonotonicNanos();
    DrainPosted();
    if (stop_.load(std::memory_order_acquire)) break;
    for (std::size_t i = 1; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      auto it = registry_.find(order[i].first);
      if (it == registry_.end() || it->second.generation != order[i].second) {
        continue;
      }
      std::uint32_t ready = 0;
      if ((fds[i].revents & (POLLIN | POLLHUP)) != 0) ready |= kRead;
      if ((fds[i].revents & POLLOUT) != 0) ready |= kWrite;
      if ((fds[i].revents & (POLLERR | POLLNVAL)) != 0) ready |= kError;
      if (ready == 0) continue;
      auto fn = it->second.fn;
      dispatches_.fetch_add(1, std::memory_order_relaxed);
      (*fn)(ready);
      if (stop_.load(std::memory_order_acquire)) return;
    }
    dispatch_latency_.Record(MonotonicNanos() - t0);
  }
}

} // namespace nexus::net
