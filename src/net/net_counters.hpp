// Client-side network instrumentation for the remote-store data path.
//
// Every RemoteBackend feeds two sinks: its own per-instance counters and
// a process-wide aggregate. The aggregate exists because the backend sits
// several layers below NexusClient (NexusClient -> AfsClient -> AfsServer
// -> RemoteBackend) with no plumbing for instance handles through the
// simulator; ProfileSnapshot reads the global and benchmark deltas work
// the same way as every other counter group.
#pragma once

#include <cstdint>

namespace nexus::net {

struct NetCounters {
  std::uint64_t rpcs = 0;       // completed request/response exchanges
  std::uint64_t retries = 0;    // re-attempts after a transport failure
  std::uint64_t reconnects = 0; // fresh dials replacing a broken connection
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  // Latency of successful RPC attempts (send -> response decoded), from a
  // process-wide log-bucket histogram (trace::Histogram). Gauges, not
  // counters: a delta keeps the later snapshot's value, mirroring
  // peak_queue_depth.
  double rpc_p50_ms = 0;
  double rpc_p99_ms = 0;

  friend NetCounters operator-(const NetCounters& a, const NetCounters& b) {
    return NetCounters{
        a.rpcs - b.rpcs,
        a.retries - b.retries,
        a.reconnects - b.reconnects,
        a.bytes_sent - b.bytes_sent,
        a.bytes_received - b.bytes_received,
        a.rpc_p50_ms,
        a.rpc_p99_ms,
    };
  }
};

/// Process-wide aggregate across every RemoteBackend, percentiles included.
NetCounters GlobalNetSnapshot();

/// Zeroes the global aggregate (benchmark phase boundaries).
void ResetGlobalNetCounters();

// Accumulation entry points (called by RemoteBackend).
void GlobalNetAdd(const NetCounters& delta);
void GlobalNetRecordLatencyMs(double ms);

} // namespace nexus::net
