// Client-side network instrumentation for the remote-store data path.
//
// Every RemoteBackend feeds two sinks: its own per-instance counters and
// a process-wide aggregate. The aggregate exists because the backend sits
// several layers below NexusClient (NexusClient -> AfsClient -> AfsServer
// -> RemoteBackend) with no plumbing for instance handles through the
// simulator; ProfileSnapshot reads the global and benchmark deltas work
// the same way as every other counter group.
#pragma once

#include <cstdint>

namespace nexus::net {

struct NetCounters {
  std::uint64_t rpcs = 0;       // completed request/response exchanges
  std::uint64_t retries = 0;    // re-attempts after a transport failure
  std::uint64_t reconnects = 0; // fresh dials replacing a broken connection
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  // Speculative readahead traffic (counters, PR 4 delta semantics):
  // issued = Gets sent ahead of demand, hits = demand reads served from a
  // prefetched object, wasted = prefetched bytes evicted or invalidated
  // before any demand read consumed them.
  std::uint64_t prefetch_issued = 0;
  std::uint64_t prefetch_hits = 0;
  std::uint64_t prefetch_wasted_bytes = 0;
  // Demand reads that found their object already in flight as a
  // speculative readahead and waited on that RPC instead of duplicating it.
  std::uint64_t prefetch_joined = 0;
  // Latency of successful RPC attempts (send -> response decoded), from a
  // process-wide log-bucket histogram (trace::Histogram). Gauges, not
  // counters: a delta keeps the later snapshot's value, mirroring
  // peak_queue_depth.
  double rpc_p50_ms = 0;
  double rpc_p99_ms = 0;

  friend NetCounters operator-(const NetCounters& a, const NetCounters& b) {
    NetCounters out;
    out.rpcs = a.rpcs - b.rpcs;
    out.retries = a.retries - b.retries;
    out.reconnects = a.reconnects - b.reconnects;
    out.bytes_sent = a.bytes_sent - b.bytes_sent;
    out.bytes_received = a.bytes_received - b.bytes_received;
    out.prefetch_issued = a.prefetch_issued - b.prefetch_issued;
    out.prefetch_hits = a.prefetch_hits - b.prefetch_hits;
    out.prefetch_wasted_bytes = a.prefetch_wasted_bytes - b.prefetch_wasted_bytes;
    out.prefetch_joined = a.prefetch_joined - b.prefetch_joined;
    out.rpc_p50_ms = a.rpc_p50_ms; // gauges keep the later snapshot
    out.rpc_p99_ms = a.rpc_p99_ms;
    return out;
  }
};

/// Process-wide aggregate across every RemoteBackend, percentiles included.
NetCounters GlobalNetSnapshot();

/// Zeroes the global aggregate (benchmark phase boundaries).
void ResetGlobalNetCounters();

// Accumulation entry points (called by RemoteBackend).
void GlobalNetAdd(const NetCounters& delta);
void GlobalNetRecordLatencyMs(double ms);

} // namespace nexus::net
