// Single-threaded readiness loop for the event-driven nexusd.
//
// One Reactor owns one OS event queue — epoll where available, with a
// portable poll(2) backend as the fallback — and a loop thread that
// dispatches readiness callbacks for every registered descriptor. nexusd
// registers its listener plus every nonblocking DATA connection; the
// callbacks never block (handler work runs on the rpc-worker pool), so a
// single loop thread multiplexes thousands of connections.
//
// Thread model:
//   * Add/Modify/Remove mutate the registration table and are loop-thread
//     only (or before Run() starts). Cross-thread work reaches the loop
//     via Post(), which wakes the loop through a self-pipe.
//   * Post() is safe from any thread and becomes a no-op after Stop() —
//     late completions from worker threads must not resurrect the loop.
//   * Callbacks run on the loop thread, one at a time. A callback may
//     Remove (even its own fd): events already harvested for a removed
//     registration are dropped by a generation check, so a recycled fd
//     number cannot receive a stale event.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/result.hpp"
#include "trace/histogram.hpp"

namespace nexus::net {

class Reactor {
 public:
  // Interest / readiness bits. kError is reported even when not requested.
  static constexpr std::uint32_t kRead = 1u << 0;
  static constexpr std::uint32_t kWrite = 1u << 1;
  static constexpr std::uint32_t kError = 1u << 2;

  using EventFn = std::function<void(std::uint32_t ready)>;

  struct Stats {
    std::uint64_t wakeups = 0;    // poll/epoll_wait returns
    std::uint64_t dispatches = 0; // callbacks invoked
    bool using_epoll = false;
  };

  Reactor();
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// False when neither epoll nor the wake pipe could be created; the
  /// server falls back to worker-per-connection in that case.
  bool ok() const noexcept { return ok_; }

  Status Add(int fd, std::uint32_t interest, EventFn fn);
  Status Modify(int fd, std::uint32_t interest);
  void Remove(int fd);

  /// Enqueues `fn` to run on the loop thread and wakes it. Dropped
  /// silently once Stop() was called.
  void Post(std::function<void()> fn);

  /// Runs the loop on the calling thread until Stop(). Pending posted
  /// tasks are drained once more before returning.
  void Run();

  /// Signals the loop to exit; safe from any thread, idempotent.
  void Stop();

  Stats stats() const;

  /// Wall time spent dispatching one wakeup's readiness batch (the
  /// "loop stall" an unlucky connection can observe).
  const trace::Histogram& dispatch_latency() const noexcept {
    return dispatch_latency_;
  }

 private:
  struct Registration {
    std::uint32_t interest = 0;
    std::uint64_t generation = 0;
    std::shared_ptr<EventFn> fn;
  };

  void DrainPosted();
  bool EpollArm(int fd, std::uint32_t interest, std::uint64_t generation,
                bool add);
  void RunEpoll();
  void RunPoll();

  bool ok_ = false;
  int epoll_fd_ = -1;   // -1 => poll backend
  int wake_read_ = -1;  // self-pipe
  int wake_write_ = -1;
  std::uint64_t next_generation_ = 1;
  std::unordered_map<int, Registration> registry_; // loop thread only

  std::mutex post_mu_;
  std::vector<std::function<void()>> posted_; // guarded by post_mu_
  bool accepting_posts_ = true;               // guarded by post_mu_
  std::atomic<bool> stop_{false};

  std::atomic<std::uint64_t> wakeups_{0};
  std::atomic<std::uint64_t> dispatches_{0};
  trace::Histogram dispatch_latency_;
};

} // namespace nexus::net
