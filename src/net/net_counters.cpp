#include "net/net_counters.hpp"

#include <mutex>

#include "trace/histogram.hpp"

namespace nexus::net {

namespace {

// One mutex for the scalar aggregate: RPC rates here are thousands per
// second at most (each carries a network round trip), so contention is
// irrelevant next to the I/O being measured. Latency lives in a shared
// log-bucket histogram (trace::Histogram), which records lock-free and,
// unlike the old 4096-sample reservoir, never forgets early samples.
struct GlobalState {
  std::mutex mu;
  NetCounters totals;
  trace::Histogram latency;
};

GlobalState& State() {
  static GlobalState state;
  return state;
}

} // namespace

NetCounters GlobalNetSnapshot() {
  GlobalState& g = State();
  NetCounters out;
  {
    const std::lock_guard<std::mutex> lock(g.mu);
    out = g.totals;
  }
  out.rpc_p50_ms = g.latency.PercentileMs(0.50);
  out.rpc_p99_ms = g.latency.PercentileMs(0.99);
  return out;
}

void ResetGlobalNetCounters() {
  GlobalState& g = State();
  const std::lock_guard<std::mutex> lock(g.mu);
  g.totals = {};
  g.latency.Reset();
}

void GlobalNetAdd(const NetCounters& delta) {
  GlobalState& g = State();
  const std::lock_guard<std::mutex> lock(g.mu);
  g.totals.rpcs += delta.rpcs;
  g.totals.retries += delta.retries;
  g.totals.reconnects += delta.reconnects;
  g.totals.bytes_sent += delta.bytes_sent;
  g.totals.bytes_received += delta.bytes_received;
  g.totals.prefetch_issued += delta.prefetch_issued;
  g.totals.prefetch_hits += delta.prefetch_hits;
  g.totals.prefetch_wasted_bytes += delta.prefetch_wasted_bytes;
}

void GlobalNetRecordLatencyMs(double ms) { State().latency.RecordMs(ms); }

} // namespace nexus::net
