#include "net/net_counters.hpp"

#include <algorithm>
#include <mutex>
#include <vector>

namespace nexus::net {

namespace {

// One mutex for the whole aggregate: RPC rates here are thousands per
// second at most (each carries a network round trip), so contention is
// irrelevant next to the I/O being measured.
struct GlobalState {
  std::mutex mu;
  NetCounters totals;
  std::vector<double> latency_ms; // bounded reservoir, newest overwrite
  std::size_t next_slot = 0;
};

constexpr std::size_t kReservoirSize = 4096;

GlobalState& State() {
  static GlobalState state;
  return state;
}

double Percentile(std::vector<double> sorted_scratch, double p) {
  if (sorted_scratch.empty()) return 0;
  std::sort(sorted_scratch.begin(), sorted_scratch.end());
  const double rank = p * static_cast<double>(sorted_scratch.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_scratch.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_scratch[lo] * (1 - frac) + sorted_scratch[hi] * frac;
}

} // namespace

NetCounters GlobalNetSnapshot() {
  GlobalState& g = State();
  const std::lock_guard<std::mutex> lock(g.mu);
  NetCounters out = g.totals;
  out.rpc_p50_ms = Percentile(g.latency_ms, 0.50);
  out.rpc_p99_ms = Percentile(g.latency_ms, 0.99);
  return out;
}

void ResetGlobalNetCounters() {
  GlobalState& g = State();
  const std::lock_guard<std::mutex> lock(g.mu);
  g.totals = {};
  g.latency_ms.clear();
  g.next_slot = 0;
}

void GlobalNetAdd(const NetCounters& delta) {
  GlobalState& g = State();
  const std::lock_guard<std::mutex> lock(g.mu);
  g.totals.rpcs += delta.rpcs;
  g.totals.retries += delta.retries;
  g.totals.reconnects += delta.reconnects;
  g.totals.bytes_sent += delta.bytes_sent;
  g.totals.bytes_received += delta.bytes_received;
}

void GlobalNetRecordLatencyMs(double ms) {
  GlobalState& g = State();
  const std::lock_guard<std::mutex> lock(g.mu);
  if (g.latency_ms.size() < kReservoirSize) {
    g.latency_ms.push_back(ms);
  } else {
    g.latency_ms[g.next_slot] = ms;
    g.next_slot = (g.next_slot + 1) % kReservoirSize;
  }
}

} // namespace nexus::net
