// RemoteBackend: a StorageBackend whose objects live behind a nexusd
// daemon on a real socket.
//
// This is the client half of the first genuine network boundary in the
// repo: NexusClient, the journal and the streaming data path all keep
// talking to a StorageBackend, unaware that every call now crosses a wire
// to an untrusted — and unreliable — server. Reliability policy lives
// entirely here:
//
//   * connection pooling — RPCs borrow a pooled connection and return it
//     on success; broken connections are discarded and redialed,
//   * per-RPC deadlines — a stuck server surfaces as a deadline expiry,
//     never a hung client,
//   * bounded retries with exponential backoff + deterministic jitter —
//     transport-level failures (timeout, reset, refused) are retried up
//     to max_attempts on fresh connections; server VERDICTS inside a
//     well-formed response are authoritative and never retried,
//   * ambiguity resolution — all RPCs here are idempotent (Put/stream
//     commit are last-writer-wins), so blind re-execution is safe. The
//     one wrinkle is Delete: if an earlier attempt's outcome is unknown
//     and the retry says kNotFound, the delete DID happen — report Ok.
//
// Streamed puts replay: the stream keeps the bytes appended so far, and a
// transport failure at any point (including an ambiguous Commit) restarts
// the whole stream — Begin, replayed segments, Commit — on a fresh
// connection, preserving exactly-once-visible semantics because the
// server publishes nothing until a Commit it fully received.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/net_counters.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"
#include "storage/backend.hpp"

namespace nexus::net {

/// Dials one fresh connection to the server (called for the initial
/// connections and every reconnect). Tests wrap the returned transport in
/// a FaultyTransport.
using TransportFactory =
    std::function<Result<std::unique_ptr<Transport>>()>;

struct RemoteBackendOptions {
  int rpc_deadline_ms = 5000;
  int connect_deadline_ms = 5000;
  /// Total tries per RPC (1 = no retries).
  int max_attempts = 4;
  int backoff_base_ms = 5;
  int backoff_cap_ms = 100;
  /// Seed for the backoff jitter (deterministic given the call sequence).
  std::uint64_t jitter_seed = 0x6e657875736e6574ull; // "nexusnet"
  std::size_t max_pooled_connections = 4;
  /// Injectable sleep so fault tests record backoff instead of waiting.
  std::function<void(int ms)> sleep_ms; // null => real sleep
};

class RemoteBackend final : public storage::StorageBackend {
 public:
  RemoteBackend(TransportFactory factory, RemoteBackendOptions options = {});

  /// TCP convenience: dials host:port eagerly once (a Ping) so a dead
  /// server fails fast at construction instead of on the first Get.
  static Result<std::unique_ptr<RemoteBackend>> Connect(
      const std::string& host, std::uint16_t port,
      RemoteBackendOptions options = {});

  Result<Bytes> Get(const std::string& name) override;
  Status Put(const std::string& name, ByteSpan data) override;
  Status Delete(const std::string& name) override;
  bool Exists(const std::string& name) override;
  std::vector<std::string> List(const std::string& prefix) override;
  Result<std::unique_ptr<PutStream>> OpenPutStream(
      const std::string& name) override;

  /// Liveness probe through the full RPC machinery (retries included).
  Status Ping();

  /// Fetches the server's lifetime counters and per-op latency summary
  /// (Rpc::kStats), through the same retry machinery as every other RPC.
  Result<ServerStats> Stats();

  [[nodiscard]] NetCounters counters() const;

 private:
  friend class RemotePutStream;

  struct Connection {
    std::unique_ptr<Transport> transport;
  };

  /// One RPC with retry/reconnect/backoff. On a well-formed response,
  /// returns the server's verdict in `server_status` and the result
  /// payload reader position via the returned bytes (head consumed by
  /// caller). Transport failure after all attempts surfaces as the
  /// returned error. `ambiguous` (optional) reports whether any FAILED
  /// attempt may have reached the server.
  Result<Bytes> Call(const Writer& request, bool* ambiguous = nullptr);

  Result<std::unique_ptr<Transport>> Checkout(bool is_retry);
  void Checkin(std::unique_ptr<Transport> transport);
  void Backoff(int failed_attempts);
  void CountRetryAndReconnect();

  TransportFactory factory_;
  RemoteBackendOptions options_;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Transport>> idle_;
  std::uint64_t jitter_state_;
  NetCounters counters_;
};

} // namespace nexus::net
