// RemoteBackend: a StorageBackend whose objects live behind a nexusd
// daemon on a real socket.
//
// This is the client half of the first genuine network boundary in the
// repo: NexusClient, the journal and the streaming data path all keep
// talking to a StorageBackend, unaware that every call now crosses a wire
// to an untrusted — and unreliable — server. Reliability policy lives
// entirely here:
//
//   * pipelined multiplexing — every pooled connection is a MuxConnection
//     keeping up to `rpc_window` RPCs in flight, matched to their
//     responses by correlation id (mux.hpp). Callers on different threads
//     share connections instead of queueing behind each other,
//   * per-REQUEST retries with exponential backoff + deterministic jitter
//     — a transport failure fails every request on that connection at
//     once, and each affected request independently retries on a fresh
//     connection up to max_attempts. The backoff delay derives from a
//     shared consecutive-failure streak that RESETS on any success, so
//     one transient blip early in a connection's life doesn't inflate
//     every later retry. Server VERDICTS inside a well-formed response
//     are authoritative and never retried,
//   * ambiguity resolution — all RPCs here are idempotent (Put/stream
//     commit are last-writer-wins), so blind re-execution is safe. The
//     one wrinkle is Delete: if an earlier attempt's outcome is unknown
//     and the retry says kNotFound, the delete DID happen — report Ok,
//   * version negotiation — requests go out with v2 heads and a window of
//     1 until a Ping learns the peer speaks v3/v4 (wire.hpp); then the
//     window widens and MultiGet/MultiExists coalesce name fan-outs into
//     one frame each way. v2 peers keep working, lock-step, forever,
//   * chunk readahead — Prefetch(name) speculatively issues a Get through
//     any spare window slot (never blocking, never retrying, never
//     dialing) and delivers the parsed object to the registered
//     PrefetchSink on the demux thread. The cache layer (cache/
//     cached_backend.hpp) owns buffering, budgets and eviction; this
//     backend holds no prefetched bytes of its own,
//   * lease coherence (wire v4) — SubscribeInvalidations dials a
//     dedicated callback connection, registers a lease session, and
//     pumps server-pushed kInvalidate frames to the listener, acking
//     each. GetLeased asks the server for a read lease on the fetched
//     object; pooled data connections (and stream connections) attach
//     themselves to the session so the server can skip invalidating the
//     writer's own cache. Pre-v4 peers simply never grant leases.
//
// Streamed puts replay: the stream keeps the bytes appended so far, and a
// transport failure at any point (including an ambiguous Commit) restarts
// the whole stream — Begin, replayed segments, Commit — on a fresh
// dedicated connection, preserving exactly-once-visible semantics because
// the server publishes nothing until a Commit it fully received.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/mux.hpp"
#include "net/net_counters.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"
#include "storage/backend.hpp"

namespace nexus::net {

/// Dials one fresh connection to the server (called for the initial
/// connections and every reconnect). Tests wrap the returned transport in
/// a FaultyTransport.
using TransportFactory =
    std::function<Result<std::unique_ptr<Transport>>()>;

/// Window size from NEXUS_RPC_WINDOW (default 8, clamped to [1, 256]).
std::size_t DefaultRpcWindow();
/// Readahead budget from NEXUS_READAHEAD_BUDGET (bytes; default 32 MiB).
std::size_t DefaultReadaheadBudgetBytes();

struct RemoteBackendOptions {
  int rpc_deadline_ms = 5000;
  int connect_deadline_ms = 5000;
  /// Total tries per RPC (1 = no retries).
  int max_attempts = 4;
  int backoff_base_ms = 5;
  int backoff_cap_ms = 100;
  /// Seed for the backoff jitter (deterministic given the call sequence).
  std::uint64_t jitter_seed = 0x6e657875736e6574ull; // "nexusnet"
  /// Connections kept in the pool. 0 = never pool: every RPC dials its
  /// own connection (tests that need one fault schedule per RPC).
  std::size_t max_pooled_connections = 4;
  /// Injectable sleep so fault tests record backoff instead of waiting.
  std::function<void(int ms)> sleep_ms; // null => real sleep
  /// Max in-flight RPCs per connection once the peer negotiated v3.
  /// 0 = DefaultRpcWindow() (NEXUS_RPC_WINDOW).
  std::size_t rpc_window = 0;
  /// Highest wire version this client will speak — lowering it simulates
  /// a legacy client against a modern server (2 = lock-step singles,
  /// 3 = batches but no leases).
  std::uint8_t max_protocol_version = kProtocolVersion;
  /// Readahead gate: 0 = default (NEXUS_READAHEAD_BUDGET, 32 MiB) and an
  /// EXPLICIT NEXUS_READAHEAD_BUDGET=0 disables speculation entirely. The
  /// byte budget itself is enforced by the cache tier that consumes the
  /// deliveries; prefetch is also off while the negotiated window is 1
  /// (nothing to overlap with).
  std::size_t readahead_budget_bytes = 0;
  /// Most speculative Gets in flight at once.
  std::size_t max_inflight_prefetches = 8;
  /// Dials the dedicated lease-callback connection. Null uses the main
  /// factory — fine for tests; Connect() installs a deadline-free dialer
  /// here because the callback channel blocks in RecvFrame indefinitely
  /// between pushes. Fault tests substitute a dropping transport to
  /// exercise lost invalidations.
  TransportFactory lease_transport_factory;
};

class RemoteBackend final : public storage::StorageBackend {
 public:
  RemoteBackend(TransportFactory factory, RemoteBackendOptions options = {});
  ~RemoteBackend() override;

  /// TCP convenience: dials host:port eagerly once (a Ping) so a dead
  /// server fails fast at construction instead of on the first Get — and
  /// the Ping doubles as the wire-version negotiation.
  static Result<std::unique_ptr<RemoteBackend>> Connect(
      const std::string& host, std::uint16_t port,
      RemoteBackendOptions options = {});

  Result<Bytes> Get(const std::string& name) override;
  Result<Bytes> GetLeased(const std::string& name,
                          bool* lease_granted) override;
  Status Put(const std::string& name, ByteSpan data) override;
  Status PutLeased(const std::string& name, ByteSpan data,
                   bool* lease_granted) override;
  Status Delete(const std::string& name) override;
  bool Exists(const std::string& name) override;
  std::vector<std::string> List(const std::string& prefix) override;
  /// One kListPage round trip against a v6 peer; pre-v6 peers fall back
  /// to the base-class slice over List().
  ListPage ListSome(const std::string& prefix, const std::string& start_after,
                    std::size_t limit) override;
  Result<std::unique_ptr<PutStream>> OpenPutStream(
      const std::string& name) override;
  /// Pipelined multi-append stream on a dedicated mux connection: keeps up
  /// to the negotiated window of segments in flight and retains NOTHING
  /// after a segment hits the socket, so client memory is O(window), not
  /// O(object). No replay buffer means a transport failure mid-stream
  /// fails the stream permanently — callers with their own redundancy
  /// (the cluster's quorum commit) take this; everyone else keeps the
  /// replaying OpenPutStream.
  Result<std::unique_ptr<PutStream>> OpenUnbufferedPutStream(
      const std::string& name) override;
  std::vector<Result<Bytes>> MultiGet(
      const std::vector<std::string>& names) override;
  std::vector<Result<Bytes>> MultiGetLeased(
      const std::vector<std::string>& names,
      std::vector<bool>* leased) override;
  std::vector<bool> MultiExists(const std::vector<std::string>& names) override;
  void Prefetch(const std::string& name) override;
  void SetPrefetchSink(PrefetchSink sink) override;
  bool SubscribeInvalidations(InvalidationListener on_invalidate,
                              ChannelDownHandler on_channel_down) override;

  /// Liveness probe through the full RPC machinery (retries included).
  /// Also negotiates the wire version: the request carries this client's
  /// max version, and a v3+ server's reply names the version to use.
  Status Ping();

  /// Fetches the server's lifetime counters and per-op latency summary
  /// (Rpc::kStats), through the same retry machinery as every other RPC.
  Result<ServerStats> Stats();

  [[nodiscard]] NetCounters counters() const;
  /// Negotiated peer wire version (0 until the first Ping completes; a
  /// peer that never confirmed v3 is treated as v2).
  [[nodiscard]] std::uint8_t peer_version() const noexcept;
  /// Lease session id on the server (0 = not subscribed / channel down).
  [[nodiscard]] std::uint64_t lease_session() const noexcept;

 private:
  friend class RemotePutStream;
  friend class MuxPutStream;

  /// One RPC through the mux with per-request retry/reconnect/backoff.
  /// On a well-formed response returns the payload after the verified
  /// head; the server's verdict is authoritative. `ambiguous` (optional)
  /// reports whether any FAILED attempt may have reached the server.
  Result<Bytes> Call(const Writer& request, bool* ambiguous = nullptr);

  /// Starts a request with the negotiated head version.
  Writer Req(Rpc rpc) const;
  [[nodiscard]] std::uint8_t wire_version() const noexcept;
  [[nodiscard]] bool peer_speaks_v3() const noexcept;
  [[nodiscard]] bool peer_speaks_v5() const noexcept;
  [[nodiscard]] bool peer_speaks_v4() const noexcept;
  [[nodiscard]] bool peer_speaks_v6() const noexcept;
  [[nodiscard]] std::size_t effective_window() const noexcept;

  /// Returns a connection with window room, dialing a fresh one when the
  /// pool has none to give. Counts a reconnect when `is_retry` dials.
  Result<std::shared_ptr<MuxConnection>> AcquireConnection(bool is_retry);
  std::shared_ptr<MuxConnection> NewConnection(
      std::unique_ptr<Transport> transport);
  /// Best-effort kLeaseAttach on a fresh data connection (no-op when no
  /// session is live or the peer predates v4).
  void AttachLease(MuxConnection& conn);

  /// Consecutive-failure streak driving the backoff delay.
  void NoteFailure();
  void NoteSuccess();
  void Backoff();
  void CountRetry();

  /// Demux-thread landing of a speculative Get: parses the response and
  /// hands the object to the sink.
  void OnPrefetchDone(const std::string& name, const PrefetchSink& sink,
                      std::uint64_t correlation, const Status& failure,
                      const Bytes& response);
  /// Pumps server-pushed kInvalidate frames until the channel dies.
  void LeaseCallbackLoop();

  TransportFactory factory_;
  RemoteBackendOptions options_;
  std::size_t rpc_window_;
  std::size_t readahead_budget_;

  std::atomic<std::uint8_t> peer_version_{0}; // 0 = not yet negotiated
  std::atomic<int> failure_streak_{0};

  mutable std::mutex mu_;
  std::uint64_t jitter_state_;
  NetCounters counters_;

  /// One speculative Get in flight. A demand read for the same name JOINS
  /// the speculation (waits on `cv`) instead of issuing a duplicate RPC —
  /// the duplicate would race the prefetch delivery into the cache tier
  /// and could evict a surviving entry with its second insert. The result
  /// bytes are copied in only when a joiner is actually waiting.
  struct PrefetchFlight {
    std::mutex mu;
    std::condition_variable cv;
    std::size_t waiters = 0;  // under mu
    bool done = false;        // under mu
    Status verdict = Status::Ok(); // under mu, valid once done
    // A joiner that registered too late to be seen at completion finds
    // has_data false (despite an ok verdict) and falls back to a demand
    // fetch — which the sink delivery has usually made a cache hit anyway.
    bool has_data = false; // under mu
    Bytes data;            // under mu, valid when done && has_data
  };
  /// Completes a flight and wakes its joiners (never under prefetch_mu_).
  static void FinishFlight(const std::shared_ptr<PrefetchFlight>& flight,
                           Status verdict, const Bytes* data);

  mutable std::mutex prefetch_mu_;
  PrefetchSink sink_;                          // under prefetch_mu_
  std::map<std::string, std::shared_ptr<PrefetchFlight>>
      prefetch_inflight_;                      // names being speculated

  // Lease-callback channel. The listener/handler are written once under
  // lease_mu_ before the thread starts and read by it without locking.
  std::mutex lease_mu_;
  std::unique_ptr<Transport> lease_transport_;
  std::thread lease_thread_;
  InvalidationListener lease_listener_;
  ChannelDownHandler lease_on_down_;
  std::atomic<std::uint64_t> lease_session_{0};
  std::atomic<bool> lease_shutdown_{false};

  // Declared LAST: connections (and their demux threads, which may still
  // run delivery hooks touching the members above) die first.
  mutable std::mutex pool_mu_;
  std::vector<std::shared_ptr<MuxConnection>> pool_;
};

} // namespace nexus::net
