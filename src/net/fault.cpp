#include "net/fault.hpp"

namespace nexus::net {

namespace {

// splitmix64: tiny, seedable, and plenty for a fault schedule.
std::uint64_t Mix(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

} // namespace

FaultyTransport::FaultyTransport(std::unique_ptr<TcpTransport> inner,
                                 FaultSpec spec, std::uint64_t seed,
                                 std::shared_ptr<FaultStats> stats)
    : inner_(std::move(inner)), spec_(spec), prng_state_(seed),
      stats_(std::move(stats)) {
  if (!stats_) stats_ = std::make_shared<FaultStats>();
}

double FaultyTransport::NextUnit() {
  return static_cast<double>(Mix(prng_state_) >> 11) * 0x1.0p-53;
}

Status FaultyTransport::SendFrame(ByteSpan payload) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (broken_) return Error(ErrorCode::kIOError, "connection reset (injected)");

  const double u = NextUnit();
  double bound = spec_.drop_request;
  if (u < bound) {
    // Never sent. The client would block until its deadline; model the
    // expiry at the next RecvFrame without sleeping.
    ++stats_->dropped_requests;
    pending_ = Pending::kTimeout;
    return Status::Ok();
  }
  bound += spec_.drop_response;
  if (u < bound) {
    // Deliver the request — the server applies it — then swallow the
    // response at RecvFrame. The classic ambiguous failure.
    ++stats_->dropped_responses;
    NEXUS_RETURN_IF_ERROR(inner_->SendFrame(payload));
    pending_ = Pending::kTimeout;
    return Status::Ok();
  }
  bound += spec_.truncate;
  if (u < bound) {
    ++stats_->truncated;
    broken_ = true;
    // Torn frame + close: the server sees a mid-frame EOF. Report the
    // break to the caller immediately (a real torn send surfaces as a
    // reset on this or the next operation; collapsing to "this one"
    // keeps the schedule deterministic).
    const Status torn = inner_->SendTruncated(payload, payload.size() / 2);
    if (!torn.ok()) return torn;
    return Error(ErrorCode::kIOError, "connection reset mid-frame (injected)");
  }
  bound += spec_.reset;
  if (u < bound) {
    ++stats_->resets;
    broken_ = true;
    inner_->Shutdown(); // not Close: a reader may be blocked on the fd
    return Error(ErrorCode::kIOError, "connection reset (injected)");
  }

  ++stats_->clean;
  return inner_->SendFrame(payload);
}

Result<Bytes> FaultyTransport::RecvFrame() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (pending_ == Pending::kTimeout) {
      pending_ = Pending::kNone;
      // The connection's framing is now out of sync with the server (an
      // unread response may be in flight), so the transport is dead — the
      // client must reconnect, exactly as after a real deadline expiry.
      broken_ = true;
      inner_->Shutdown();
      return Error(ErrorCode::kIOError, "recv deadline exceeded (injected)");
    }
    if (broken_)
      return Error(ErrorCode::kIOError, "connection reset (injected)");
  }
  // Blocking read outside mu_: SendFrame (and Shutdown) stay callable
  // while the demux thread is parked here.
  return inner_->RecvFrame();
}

void FaultyTransport::Close() {
  const std::lock_guard<std::mutex> lock(mu_);
  broken_ = true;
  inner_->Close();
}

void FaultyTransport::Shutdown() {
  // No mu_: Shutdown must be callable while another thread blocks inside
  // SendFrame/RecvFrame. The inner transport makes it safe lock-free, and
  // the next operation observes the dead socket even without broken_.
  inner_->Shutdown();
}

} // namespace nexus::net
