// nexusd: standalone untrusted-store daemon.
//
// Serves a MemBackend or DiskBackend over the NEXUS wire protocol. This is
// the deployment shape of the paper's storage service: the daemon holds
// only ciphertext and opaque names, so it runs with no keys, no
// authentication and no SGX — all security machinery lives in the clients.
//
//   nexusd [--mem | --root DIR] [--bind ADDR] [--port N] [--workers N]
//          [--rpc-workers N] [--serve-mode reactor|threads]
//          [--cache-mem BYTES] [--cache-disk BYTES] [--cache-dir DIR]
//
// --serve-mode picks the connection/thread layout: `reactor` (default) is
// the event-driven epoll loop — thousands of idle connections cost no
// threads; `threads` restores the legacy worker-per-connection pool where
// --workers bounds the concurrently served connections.
//
// The --cache-* flags front the backend with cache::CachedBackend — useful
// when --root points at slow storage (NFS, a FUSE mount): the daemon then
// serves repeat reads from local memory/disk. The cache holds the same
// opaque ciphertext as the backend, so the security posture is unchanged.
//
// Prints "nexusd listening on ADDR:PORT" once serving (port 0 picks an
// ephemeral port; scripts parse this line), then runs until SIGINT or
// SIGTERM, shutting down cleanly: in-flight connections are unblocked and
// drained, uncommitted streams aborted.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "cache/cached_backend.hpp"
#include "net/server.hpp"
#include "storage/backend.hpp"

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--mem | --root DIR] [--bind ADDR] [--port N] "
               "[--workers N] [--rpc-workers N] "
               "[--serve-mode reactor|threads] [--cache-mem BYTES] "
               "[--cache-disk BYTES] [--cache-dir DIR]\n",
               argv0);
}

} // namespace

int main(int argc, char** argv) {
  using nexus::net::NexusdOptions;
  using nexus::net::NexusdServer;

  NexusdOptions options;
  bool use_mem = true;
  std::string root;
  bool use_cache = false;
  nexus::cache::CacheOptions cache_options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--mem") {
      use_mem = true;
    } else if (arg == "--root") {
      use_mem = false;
      root = next();
    } else if (arg == "--bind") {
      options.bind_address = next();
    } else if (arg == "--port") {
      options.port = static_cast<std::uint16_t>(std::atoi(next()));
    } else if (arg == "--workers") {
      options.workers = static_cast<std::size_t>(std::atoi(next()));
    } else if (arg == "--rpc-workers") {
      options.rpc_workers = static_cast<std::size_t>(std::atoi(next()));
    } else if (arg == "--serve-mode") {
      const std::string mode = next();
      if (mode == "reactor") {
        options.serve_mode = nexus::net::ServeMode::kReactor;
      } else if (mode == "threads") {
        options.serve_mode = nexus::net::ServeMode::kThreadPerConnection;
      } else {
        std::fprintf(stderr, "nexusd: unknown serve mode '%s'\n", mode.c_str());
        Usage(argv[0]);
        return 2;
      }
    } else if (arg == "--cache-mem") {
      use_cache = true;
      cache_options.mem_budget_bytes =
          static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--cache-disk") {
      use_cache = true;
      cache_options.disk_budget_bytes =
          static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--cache-dir") {
      use_cache = true;
      cache_options.disk_dir = next();
    } else {
      Usage(argv[0]);
      return 2;
    }
  }

  std::unique_ptr<nexus::storage::StorageBackend> backend;
  if (use_mem) {
    backend = std::make_unique<nexus::storage::MemBackend>();
  } else {
    auto disk = nexus::storage::DiskBackend::Open(root);
    if (!disk.ok()) {
      std::fprintf(stderr, "nexusd: cannot open root %s: %s\n", root.c_str(),
                   disk.status().message().c_str());
      return 1;
    }
    backend = std::make_unique<nexus::storage::DiskBackend>(
        std::move(disk).value());
  }
  if (use_cache) {
    backend = std::make_unique<nexus::cache::CachedBackend>(std::move(backend),
                                                            cache_options);
  }

  // Block the shutdown signals in every thread (workers inherit the mask),
  // then wait for one synchronously — no async-signal-safety contortions.
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGINT);
  sigaddset(&set, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &set, nullptr);

  auto server = NexusdServer::Start(*backend, options);
  if (!server.ok()) {
    std::fprintf(stderr, "nexusd: start failed: %s\n",
                 server.status().message().c_str());
    return 1;
  }

  const bool reactor_mode =
      options.serve_mode == nexus::net::ServeMode::kReactor;
  std::printf("nexusd listening on %s:%u (%s, %s, %zu rpc workers)\n",
              options.bind_address.c_str(), server.value()->port(),
              use_mem ? "mem" : root.c_str(),
              reactor_mode ? "reactor" : "thread-per-connection",
              options.rpc_workers);
  std::fflush(stdout);

  int sig = 0;
  sigwait(&set, &sig);
  std::printf("nexusd: received %s, shutting down\n", strsignal(sig));
  server.value()->Stop();

  const auto stats = server.value()->stats();
  std::printf("nexusd: served %llu rpcs on %llu connections, %llu protocol "
              "errors\n",
              static_cast<unsigned long long>(stats.rpcs_served),
              static_cast<unsigned long long>(stats.connections_accepted),
              static_cast<unsigned long long>(stats.protocol_errors));
  for (const auto& op : server.value()->WireStats().per_op) {
    std::printf("nexusd:   %-13s %8llu calls  p50 %.3f ms  p99 %.3f ms\n",
                nexus::net::RpcName(static_cast<nexus::net::Rpc>(op.rpc)),
                static_cast<unsigned long long>(op.count), op.p50_ms,
                op.p99_ms);
  }
  return 0;
}
