#include "net/transport.hpp"

#include <algorithm>
#include <arpa/inet.h>
#include <sys/uio.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "net/wire.hpp"

namespace nexus::net {

namespace {

Status Errno(const std::string& what) {
  return Error(ErrorCode::kIOError, what + ": " + std::strerror(errno));
}

} // namespace

Result<std::unique_ptr<TcpTransport>> TcpTransport::Dial(
    const std::string& host, std::uint16_t port, int connect_deadline_ms,
    int io_deadline_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Error(ErrorCode::kInvalidArgument, "bad address: " + host);
  }

  // Non-blocking connect so the connect deadline is enforceable.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    const Status err = Errno("connect to " + host);
    ::close(fd);
    return err;
  }
  if (rc != 0) {
    pollfd pfd{fd, POLLOUT, 0};
    rc = ::poll(&pfd, 1, connect_deadline_ms > 0 ? connect_deadline_ms : -1);
    if (rc == 0) {
      ::close(fd);
      return Error(ErrorCode::kIOError, "connect deadline exceeded: " + host);
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (rc < 0 ||
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
        so_error != 0) {
      ::close(fd);
      return Error(ErrorCode::kIOError,
                   "connect failed: " + host + ": " +
                       std::strerror(so_error != 0 ? so_error : errno));
    }
  }
  ::fcntl(fd, F_SETFL, flags); // back to blocking; I/O uses poll deadlines

  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::make_unique<TcpTransport>(fd, io_deadline_ms);
}

TcpTransport::TcpTransport(int fd, int io_deadline_ms)
    : fd_(fd), io_deadline_ms_(io_deadline_ms) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

TcpTransport::~TcpTransport() { Close(); }

void TcpTransport::Close() {
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) ::close(fd);
}

void TcpTransport::Shutdown() {
  // shutdown(), not close(): the fd number stays ours, so a thread
  // blocked in poll/read on it wakes with EOF instead of racing reuse.
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

Status TcpTransport::WriteAll(int fd, const std::uint8_t* data,
                              std::size_t len) {
  while (len > 0) {
    // MSG_NOSIGNAL: a peer reset yields EPIPE instead of killing the
    // process — resets are an expected, retryable event here.
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

Status TcpTransport::ReadAll(int fd, std::uint8_t* data, std::size_t len) {
  while (len > 0) {
    pollfd pfd{fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, io_deadline_ms_ > 0 ? io_deadline_ms_ : -1);
    if (rc == 0) {
      return Error(ErrorCode::kIOError, "recv deadline exceeded");
    }
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Errno("poll");
    }
    const ssize_t n = ::read(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    if (n == 0) {
      return Error(ErrorCode::kIOError, "connection closed by peer");
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

Status TcpTransport::SendFrame(ByteSpan payload) {
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0) return Error(ErrorCode::kIOError, "transport closed");
  if (payload.size() > kMaxFrameBytes) {
    return Error(ErrorCode::kInvalidArgument, "frame too large");
  }
  std::uint8_t prefix[4];
  EncodeFrameLength(static_cast<std::uint32_t>(payload.size()), prefix);
  NEXUS_RETURN_IF_ERROR(WriteAll(fd, prefix, sizeof(prefix)));
  return WriteAll(fd, payload.data(), payload.size());
}

Result<Bytes> TcpTransport::RecvFrame() {
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0) return Error(ErrorCode::kIOError, "transport closed");
  std::uint8_t prefix[4];
  NEXUS_RETURN_IF_ERROR(ReadAll(fd, prefix, sizeof(prefix)));
  const std::uint32_t len = DecodeFrameLength(prefix);
  if (len > kMaxFrameBytes) {
    // Bound BEFORE allocating: a lying length cannot OOM the client.
    return Error(ErrorCode::kIOError,
                 "oversized frame (" + std::to_string(len) + " bytes)");
  }
  Bytes payload(len);
  if (len > 0)
    NEXUS_RETURN_IF_ERROR(ReadAll(fd, payload.data(), payload.size()));
  return payload;
}

Status TcpTransport::SendFrameParts(const std::vector<ByteSpan>& parts) {
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0) return Error(ErrorCode::kIOError, "transport closed");
  std::size_t total = 0;
  for (const ByteSpan& part : parts) total += part.size();
  if (total > kMaxFrameBytes) {
    return Error(ErrorCode::kInvalidArgument, "frame too large");
  }
  std::uint8_t prefix[kFramePrefixBytes];
  EncodeFrameLength(static_cast<std::uint32_t>(total), prefix);

  std::vector<iovec> iov;
  iov.reserve(parts.size() + 1);
  iov.push_back(iovec{prefix, sizeof(prefix)});
  for (const ByteSpan& part : parts) {
    if (part.empty()) continue;
    iov.push_back(iovec{const_cast<std::uint8_t*>(part.data()), part.size()});
  }

  // Loop over partial writes, advancing through the iovec array. IOV_MAX
  // bounds one sendmsg; remaining segments go in the next call.
  std::size_t idx = 0;
  std::size_t off = 0; // bytes of iov[idx] already written
  while (idx < iov.size()) {
    msghdr msg{};
    iovec batch[64];
    std::size_t n_iov = 0;
    for (std::size_t i = idx; i < iov.size() && n_iov < 64; ++i, ++n_iov) {
      batch[n_iov] = iov[i];
      if (i == idx) {
        batch[n_iov].iov_base = static_cast<std::uint8_t*>(batch[n_iov].iov_base) + off;
        batch[n_iov].iov_len -= off;
      }
    }
    msg.msg_iov = batch;
    msg.msg_iovlen = n_iov;
    const ssize_t sent = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return Errno("sendmsg");
    }
    std::size_t advanced = static_cast<std::size_t>(sent);
    while (advanced > 0 && idx < iov.size()) {
      const std::size_t left = iov[idx].iov_len - off;
      if (advanced >= left) {
        advanced -= left;
        ++idx;
        off = 0;
      } else {
        off += advanced;
        advanced = 0;
      }
    }
  }
  return Status::Ok();
}

Status TcpTransport::SendTruncated(ByteSpan payload, std::size_t keep) {
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0) return Error(ErrorCode::kIOError, "transport closed");
  std::uint8_t prefix[4];
  EncodeFrameLength(static_cast<std::uint32_t>(payload.size()), prefix);
  NEXUS_RETURN_IF_ERROR(WriteAll(fd, prefix, sizeof(prefix)));
  const std::size_t n = std::min(keep, payload.size());
  const Status sent = WriteAll(fd, payload.data(), n);
  // Shutdown, not Close: the peer still observes torn-frame-then-FIN, but
  // the fd survives for any thread currently blocked reading it.
  Shutdown();
  return sent;
}

} // namespace nexus::net
