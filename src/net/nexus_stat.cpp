// nexus-stat: one-shot introspection client for running nexusd daemons.
//
//   nexus-stat [--host ADDR] --port N
//   nexus-stat --cluster HOST:PORT,HOST:PORT,...   (or NEXUS_CLUSTER env)
//
// Single-daemon mode issues a Stats RPC through the normal RemoteBackend
// machinery (so it exercises the same retry/deadline path as real
// clients) and prints the daemon's lifetime counters plus per-op
// count/bytes/p50/p99 rows. Cluster mode fans the same Stats RPC to
// every shard and prints one row per shard — unreachable shards are
// reported, not fatal — followed by an aggregate row summing the fleet.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cluster/cluster_backend.hpp"
#include "net/remote_backend.hpp"
#include "net/wire.hpp"

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host ADDR] --port N\n"
               "       %s --cluster HOST:PORT,... (empty list reads "
               "NEXUS_CLUSTER)\n",
               argv0, argv0);
}

int ClusterMode(const std::string& endpoints) {
  const std::vector<std::string> list =
      nexus::cluster::ParseEndpointList(endpoints);
  if (list.empty()) {
    std::fprintf(stderr,
                 "nexus-stat: no cluster endpoints (set NEXUS_CLUSTER or pass "
                 "--cluster HOST:PORT,...)\n");
    return 2;
  }
  std::printf("cluster %zu shards\n", list.size());
  std::printf("  %-22s %12s %14s %14s %8s  %s\n", "shard", "rpcs", "bytes_in",
              "bytes_out", "conns", "status");
  nexus::net::ServerStats total;
  std::size_t reachable = 0;
  unsigned long long hints_pending = 0;
  for (const std::string& endpoint : list) {
    std::string host;
    std::uint16_t port = 0;
    if (!nexus::cluster::SplitHostPort(endpoint, &host, &port)) {
      std::printf("  %-22s %12s %14s %14s %8s  malformed endpoint\n",
                  endpoint.c_str(), "-", "-", "-", "-");
      continue;
    }
    auto backend = nexus::net::RemoteBackend::Connect(host, port);
    if (!backend.ok()) {
      std::printf("  %-22s %12s %14s %14s %8s  unreachable\n", endpoint.c_str(),
                  "-", "-", "-", "-");
      continue;
    }
    auto stats = backend.value()->Stats();
    if (!stats.ok()) {
      std::printf("  %-22s %12s %14s %14s %8s  stats rpc failed\n",
                  endpoint.c_str(), "-", "-", "-", "-");
      continue;
    }
    const nexus::net::ServerStats& s = stats.value();
    std::printf("  %-22s %12llu %14llu %14llu %8llu  ok\n", endpoint.c_str(),
                static_cast<unsigned long long>(s.rpcs_served),
                static_cast<unsigned long long>(s.bytes_received),
                static_cast<unsigned long long>(s.bytes_sent),
                static_cast<unsigned long long>(s.active_connections));
    total.rpcs_served += s.rpcs_served;
    total.bytes_received += s.bytes_received;
    total.bytes_sent += s.bytes_sent;
    total.active_connections += s.active_connections;
    total.connections_accepted += s.connections_accepted;
    total.protocol_errors += s.protocol_errors;
    ++reachable;
    // Count handoff-hint markers parked on this shard (sloppy-quorum
    // writes still owed to an ejected owner). Paged so a shard holding a
    // backlog never forces a full listing into this one-shot client.
    std::string cursor;
    for (;;) {
      const nexus::storage::StorageBackend::ListPage page =
          backend.value()->ListSome(
          nexus::cluster::kHandoffHintPrefix, cursor, 256);
      hints_pending += page.names.size();
      if (!page.more || page.names.empty()) break;
      cursor = page.names.back();
    }
  }
  std::printf("  handoff hints pending: %llu\n", hints_pending);
  std::printf("  %-22s %12llu %14llu %14llu %8llu  aggregate (%zu/%zu "
              "reachable)\n",
              "TOTAL", static_cast<unsigned long long>(total.rpcs_served),
              static_cast<unsigned long long>(total.bytes_received),
              static_cast<unsigned long long>(total.bytes_sent),
              static_cast<unsigned long long>(total.active_connections),
              reachable, list.size());
  return reachable == 0 ? 1 : 0;
}

} // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  bool cluster_mode = false;
  std::string cluster_endpoints;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--host") {
      host = next();
    } else if (arg == "--port") {
      port = std::atoi(next());
    } else if (arg == "--cluster") {
      cluster_mode = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') cluster_endpoints = next();
    } else {
      Usage(argv[0]);
      return 2;
    }
  }
  if (cluster_mode) {
    if (cluster_endpoints.empty()) {
      const char* env = std::getenv("NEXUS_CLUSTER");
      if (env != nullptr) cluster_endpoints = env;
    }
    return ClusterMode(cluster_endpoints);
  }
  if (port <= 0 || port > 65535) {
    Usage(argv[0]);
    return 2;
  }

  auto backend = nexus::net::RemoteBackend::Connect(
      host, static_cast<std::uint16_t>(port));
  if (!backend.ok()) {
    std::fprintf(stderr, "nexus-stat: cannot reach %s:%d: %s\n", host.c_str(),
                 port, backend.status().message().c_str());
    return 1;
  }
  auto stats = backend.value()->Stats();
  if (!stats.ok()) {
    std::fprintf(stderr, "nexus-stat: stats rpc failed: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }

  const nexus::net::ServerStats& s = stats.value();
  std::printf("nexusd %s:%d\n", host.c_str(), port);
  std::printf("  connections   %llu accepted, %llu active\n",
              static_cast<unsigned long long>(s.connections_accepted),
              static_cast<unsigned long long>(s.active_connections));
  std::printf("  rpcs served   %llu (%llu protocol errors)\n",
              static_cast<unsigned long long>(s.rpcs_served),
              static_cast<unsigned long long>(s.protocol_errors));
  std::printf("  streams       %llu open, %llu aborted on disconnect\n",
              static_cast<unsigned long long>(s.open_streams),
              static_cast<unsigned long long>(s.streams_aborted_on_disconnect));
  std::printf("  bytes         %llu in, %llu out\n",
              static_cast<unsigned long long>(s.bytes_received),
              static_cast<unsigned long long>(s.bytes_sent));
  std::printf("  leases        %llu sessions, %llu granted, %llu broken, "
              "%llu invalidations, %llu break timeouts\n",
              static_cast<unsigned long long>(s.lease_sessions),
              static_cast<unsigned long long>(s.leases_granted),
              static_cast<unsigned long long>(s.leases_broken),
              static_cast<unsigned long long>(s.invalidations_sent),
              static_cast<unsigned long long>(s.lease_break_timeouts));
  // Object-cache effectiveness (non-zero when the daemon runs --cache-*).
  const unsigned long long mem_hits = s.cache_mem_hits;
  const unsigned long long disk_hits = s.cache_disk_hits;
  const unsigned long long misses = s.cache_misses;
  const unsigned long long lookups = mem_hits + disk_hits + misses;
  if (lookups > 0) {
    std::printf("  cache         %-10s %12s %8s\n", "tier", "hits", "rate");
    std::printf("  cache         %-10s %12llu %7.1f%%\n", "mem", mem_hits,
                100.0 * static_cast<double>(mem_hits) /
                    static_cast<double>(lookups));
    std::printf("  cache         %-10s %12llu %7.1f%%\n", "disk", disk_hits,
                100.0 * static_cast<double>(disk_hits) /
                    static_cast<double>(lookups));
    std::printf("  cache         %-10s %12llu %7.1f%%\n", "miss", misses,
                100.0 * static_cast<double>(misses) /
                    static_cast<double>(lookups));
    std::printf("  cache         %llu evictions, %llu writeback batches, "
                "%llu invalidations, dirty high-water %llu bytes\n",
                static_cast<unsigned long long>(s.cache_evictions),
                static_cast<unsigned long long>(s.cache_writeback_batches),
                static_cast<unsigned long long>(s.cache_invalidations),
                static_cast<unsigned long long>(s.cache_dirty_high_water));
  }
  // Event-loop health (zero on a worker-per-connection daemon).
  if (s.epoll_wakeups > 0 || s.arena_slabs_high_water > 0) {
    std::printf("  reactor       %llu wakeups, dispatch p50 %.3f ms, "
                "p99 %.3f ms\n",
                static_cast<unsigned long long>(s.epoll_wakeups),
                s.loop_dispatch_p50_ms, s.loop_dispatch_p99_ms);
    std::printf("  arena         %llu slabs in use, high-water %llu, "
                "%llu oversize frames\n",
                static_cast<unsigned long long>(s.arena_slabs_in_use),
                static_cast<unsigned long long>(s.arena_slabs_high_water),
                static_cast<unsigned long long>(s.arena_oversize_frames));
  }
  if (s.resident_threads > 0) {
    std::printf("  threads       %llu resident\n",
                static_cast<unsigned long long>(s.resident_threads));
  }
  std::printf("  %-13s %10s %12s %12s %10s %10s\n", "op", "count", "bytes_in",
              "bytes_out", "p50_ms", "p99_ms");
  for (const nexus::net::RpcOpStats& op : s.per_op) {
    std::printf("  %-13s %10llu %12llu %12llu %10.3f %10.3f\n",
                nexus::net::RpcName(static_cast<nexus::net::Rpc>(op.rpc)),
                static_cast<unsigned long long>(op.count),
                static_cast<unsigned long long>(op.bytes_in),
                static_cast<unsigned long long>(op.bytes_out), op.p50_ms,
                op.p99_ms);
  }
  return 0;
}
