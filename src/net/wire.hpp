// NEXUS remote-store wire protocol (nexusd <-> RemoteBackend).
//
// Every message is one length-prefixed binary frame on a byte stream:
//
//   [u32 LE payload length][payload]
//
// Request payload:   u8 version, u8 rpc id, u64 correlation id, arguments
//                    (serial.hpp format)
// Response payload:  u8 version, u64 correlation id, u8 error code,
//                    Str message, results
//
// The correlation id (protocol v2) is drawn by the client per request and
// echoed verbatim by the server. It serves two jobs: the client verifies
// the echo to detect a desynchronized byte stream (a mismatch means the
// response belongs to some other request — the connection is dropped, the
// call treated as ambiguous), and both sides stamp it on their trace spans
// so a client span can be matched to the server span that served it.
//
// Protocol v3 keeps the framing byte-identical and adds two batch RPCs
// (MultiGet / MultiExists) plus out-of-order responses: since every
// response already names its request via the correlation id, a v3 server
// may answer the requests of one connection in any order, and a v3 client
// may keep a whole window of them in flight. Version negotiation rides on
// Ping: a v3 client appends its max version byte to the Ping arguments (v2
// servers ignore trailing request bytes on Ping), and a v3 server appends
// its negotiated version byte to the Ping response payload (v2 clients
// never look at Ping results). An empty Ping payload therefore means "v2
// peer": the client falls back to lock-step singles.
//
// Protocol v4 adds client-cache coherence: the server grants per-object
// read leases on Get (a trailing flag byte on v4 Get responses) and pushes
// invalidation callbacks when another client mutates a leased object. The
// callbacks ride a dedicated subscription connection: the client sends
// kLeaseSubscribe once (response carries a u64 session id), after which the
// SERVER originates request-format kInvalidate frames on that connection
// and the client answers each with an ordinary response frame (the ack).
// Pooled data connections tie themselves to the session with kLeaseAttach
// so the server can skip invalidating the writer's own cache. v3 peers
// negotiate down exactly as before — none of the three new RPC ids is
// valid in a pre-v4 request head.
//
// Protocol v5 adds a read/write distinction to leases: a v5 Put request
// carries a trailing want-lease byte and an OK v5 Put response a trailing
// granted byte, so a writer that also caches reads can keep its own copy
// as a WRITE lease holder instead of dropping it on its own invalidation.
// v5 MultiGet requests likewise carry a trailing want-lease byte and each
// kOk entry in a v5 MultiGet response a per-entry granted byte, so batched
// miss fills install under leases exactly like single Gets. The framing,
// negotiation, and every other RPC are byte-identical to v4.
//
// Protocol v6 adds bounded-batch listing: kListPage carries a prefix, an
// exclusive start-after cursor and a page limit, and the response is one
// sorted page of names plus a truncation flag, so an enumeration of a
// million-object shard costs O(page) memory on both sides instead of one
// kList frame holding every name. kListPage requires a v6 request head;
// pre-v6 peers keep using kList and nothing else changes.
//
// The server is untrusted in the NEXUS threat model, so nothing here is
// authenticated — the protocol only moves ciphertext and opaque object
// names, and the enclave's MACs catch any tampering above this layer. What
// the framing DOES defend against is resource abuse and desync: lengths
// are bounded before allocation, every decode is bounds-checked (the
// decoder also runs client-side on attacker-controlled response bytes),
// and a malformed frame kills the connection rather than resynchronizing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "common/serial.hpp"

namespace nexus::net {

inline constexpr std::uint8_t kProtocolVersion = 6;
/// Oldest peer version both sides still speak (v2 = correlation ids +
/// Stats, lock-step only). Frames with older versions are rejected.
inline constexpr std::uint8_t kMinProtocolVersion = 2;

/// Largest object the protocol moves (bulk data chunks are ≤1 MiB today;
/// whole journal records and streamed segments stay far below this).
inline constexpr std::size_t kMaxObjectBytes = 64u << 20;
/// Frame-size sanity bound: one max object plus framing/name slack. A
/// length prefix above this is a protocol violation, not an allocation.
inline constexpr std::size_t kMaxFrameBytes = kMaxObjectBytes + (1u << 16);

/// Wire length prefix: 4 bytes, little-endian. Shared by the blocking
/// transport and the reactor's in-slab frame parser.
inline constexpr std::size_t kFramePrefixBytes = 4;

inline void EncodeFrameLength(std::uint32_t len, std::uint8_t out[4]) noexcept {
  out[0] = static_cast<std::uint8_t>(len);
  out[1] = static_cast<std::uint8_t>(len >> 8);
  out[2] = static_cast<std::uint8_t>(len >> 16);
  out[3] = static_cast<std::uint8_t>(len >> 24);
}

inline std::uint32_t DecodeFrameLength(const std::uint8_t in[4]) noexcept {
  return static_cast<std::uint32_t>(in[0]) |
         static_cast<std::uint32_t>(in[1]) << 8 |
         static_cast<std::uint32_t>(in[2]) << 16 |
         static_cast<std::uint32_t>(in[3]) << 24;
}

/// RPC surface: the StorageBackend interface verbatim, plus the segmented
/// OpenPutStream as a four-message streaming RPC, a Ping for liveness, and
/// a Stats introspection call (nexus-stat).
enum class Rpc : std::uint8_t {
  kPing = 1,
  kGet = 2,
  kPut = 3,
  kDelete = 4,
  kExists = 5,
  kList = 6,
  kStreamBegin = 7,   // name -> u64 stream handle
  kStreamAppend = 8,  // handle, segment bytes
  kStreamCommit = 9,  // handle; object becomes visible atomically
  kStreamAbort = 10,  // handle; store untouched
  kStats = 11,        // -> ServerStats (counters, per-op latency)
  // v3 batch ops: one frame each way for a whole fan-out of names.
  kMultiGet = 12,     // name list -> per-name ok/error/deferred entries
  kMultiExists = 13,  // name list -> per-name presence flags
  // v4 cache-coherence ops.
  kLeaseSubscribe = 14, // -> u64 session id; connection becomes the
                        //    server-push invalidation channel
  kLeaseAttach = 15,    // u64 session id; ties a data connection to it
  kInvalidate = 16,     // SERVER-sent on the subscription channel: name
                        //    list whose leases are revoked; client acks
  // v6 bounded-batch listing.
  kListPage = 17,       // prefix, start-after cursor, u32 limit -> one
                        //    sorted page of names + u8 truncated flag
};

/// Last RPC id a v2 peer understands; v2-version request heads carrying a
/// later id are a protocol violation (a v2 client can never have sent one).
inline constexpr Rpc kMaxV2Rpc = Rpc::kStats;
/// Same bound for v3 heads — the lease RPCs require a v4 head.
inline constexpr Rpc kMaxV3Rpc = Rpc::kMultiExists;
/// Same bound for v4/v5 heads — kListPage requires a v6 head.
inline constexpr Rpc kMaxV5Rpc = Rpc::kInvalidate;

/// Stable lowercase name for an RPC id ("get", "stream_begin", ...). Used
/// as span names and in nexus-stat output.
const char* RpcName(Rpc rpc) noexcept;

/// Offset of the correlation id within a request payload (after version
/// and rpc bytes) — lets middle layers read it from raw frame bytes.
inline constexpr std::size_t kRequestCorrelationOffset = 2;

/// Process-unique correlation ids, starting at 1 (0 means "none").
std::uint64_t NextCorrelationId() noexcept;

/// Starts a request: version + rpc id + fresh correlation id. Callers
/// append arguments and hand the bytes to Transport::SendFrame.
Writer BeginRequest(Rpc rpc);
/// Same, with an explicit correlation id (tests, retransmissions).
Writer BeginRequest(Rpc rpc, std::uint64_t correlation);
/// Same, with an explicit head version (talking down to a v2 server).
Writer BeginRequest(Rpc rpc, std::uint64_t correlation, std::uint8_t version);

/// Reads the rpc id out of raw request bytes (0 if too short / pre-v2).
Rpc RequestRpc(ByteSpan request) noexcept;
/// Reads the correlation id out of raw request bytes (0 if too short).
std::uint64_t RequestCorrelation(ByteSpan request) noexcept;
/// Reads the correlation id out of raw RESPONSE bytes without validating
/// the rest of the head (0 if too short — real ids start at 1). The demux
/// thread uses this to route a frame before anyone decodes it.
std::uint64_t ResponseCorrelation(ByteSpan response) noexcept;

/// Parses (and validates) a request head; the reader is left at the first
/// argument. When `correlation` is non-null it receives the request's
/// correlation id; when `version` is non-null, the head's version byte
/// (within [kMinProtocolVersion, kProtocolVersion], or the head is
/// rejected — as is a v2 head naming a v3-only rpc).
Result<Rpc> ParseRequestHead(Reader& reader,
                             std::uint64_t* correlation = nullptr,
                             std::uint8_t* version = nullptr);

/// Starts a response carrying `status`, echoing the request's correlation
/// id (OK responses append results). `version` must echo the REQUEST
/// head's version so v2 clients never see a version byte they reject.
Writer BeginResponse(const Status& status, std::uint64_t correlation,
                     std::uint8_t version = kProtocolVersion);

/// Parses a response head. The RETURNED Status is a protocol violation
/// (malformed frame — treat the connection as broken); on success,
/// `verdict` receives the server's verdict for the RPC, which is
/// authoritative and final (never retried), and `correlation` (when
/// non-null) the echoed correlation id for the caller to verify.
Status ParseResponseHead(Reader& reader, Status* verdict,
                         std::uint64_t* correlation = nullptr);

/// ErrorCode <-> wire byte. Unknown bytes decode to kInternal so a rogue
/// server cannot smuggle an out-of-range enum into client code.
std::uint8_t CodeToWire(ErrorCode code) noexcept;
ErrorCode CodeFromWire(std::uint8_t wire) noexcept;

// ---- Stats RPC payload ------------------------------------------------------

/// Per-RPC slice of a nexusd's lifetime counters.
struct RpcOpStats {
  std::uint8_t rpc = 0; // Rpc id this row describes
  std::uint64_t count = 0;
  std::uint64_t bytes_in = 0;  // request payload bytes
  std::uint64_t bytes_out = 0; // response payload bytes
  double p50_ms = 0;           // server-side service latency
  double p99_ms = 0;

  bool operator==(const RpcOpStats&) const = default;
};

/// Everything a nexusd reports through Rpc::kStats.
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t active_connections = 0; // gauge
  std::uint64_t rpcs_served = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t open_streams = 0; // gauge
  std::uint64_t streams_aborted_on_disconnect = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t bytes_sent = 0;
  // v4 lease/coherence counters.
  std::uint64_t lease_sessions = 0; // gauge
  std::uint64_t leases_granted = 0;
  std::uint64_t leases_broken = 0;
  std::uint64_t invalidations_sent = 0;
  std::uint64_t lease_break_timeouts = 0;
  // Object-cache counters mirrored by a cache-enabled nexusd (zero when
  // the daemon runs without --cache-mem).
  std::uint64_t cache_mem_hits = 0;
  std::uint64_t cache_disk_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_writeback_batches = 0;
  std::uint64_t cache_invalidations = 0;
  std::uint64_t cache_dirty_high_water = 0; // gauge
  // Event-loop / buffer-arena health (zero on a worker-per-connection
  // daemon: the legacy mode has no loop and no arena).
  std::uint64_t epoll_wakeups = 0;
  std::uint64_t arena_slabs_in_use = 0;    // gauge
  std::uint64_t arena_slabs_high_water = 0;
  std::uint64_t arena_oversize_frames = 0; // frames that bypassed the arena
  std::uint64_t resident_threads = 0;      // gauge: loop + pools + channels
  double loop_dispatch_p50_ms = 0; // per-wakeup dispatch latency
  double loop_dispatch_p99_ms = 0;
  std::vector<RpcOpStats> per_op; // ascending rpc id, served ops only

  bool operator==(const ServerStats&) const = default;
};

/// Upper bound on per_op rows a decoder accepts — there are only that many
/// RPC ids, so anything larger is malformed.
inline constexpr std::size_t kMaxStatsEntries =
    static_cast<std::size_t>(Rpc::kListPage);

void EncodeServerStats(Writer& writer, const ServerStats& stats);
Result<ServerStats> DecodeServerStats(Reader& reader);

// ---- Batch RPC payloads (v3) ------------------------------------------------

/// Most names one MultiGet/MultiExists frame carries. Far above any real
/// fan-out (a chunk table tops out in the hundreds) but small enough that
/// a hostile count cannot force a large allocation.
inline constexpr std::size_t kMaxMultiEntries = 4096;

/// Request body shared by kMultiGet and kMultiExists: u32 count + names.
void EncodeNameList(Writer& writer, const std::vector<std::string>& names);
Result<std::vector<std::string>> DecodeNameList(Reader& reader);

/// One per-name result inside a MultiGet response. The server fills data
/// until the response would exceed the frame bound, then defers the rest;
/// the client re-fetches deferred entries as single Gets.
struct MultiGetEntry {
  enum class State : std::uint8_t { kOk = 0, kError = 1, kDeferred = 2 };
  State state = State::kDeferred;
  Bytes data;                  // kOk only
  Status error = Status::Ok(); // kError only (the per-name verdict)
  bool leased = false;         // kOk only, v5 frames only: lease granted
};

/// `version` selects the frame dialect: v5 appends a per-entry lease
/// granted byte to kOk entries; pre-v5 encodes/decodes the v3 layout and
/// leaves `leased` false.
void EncodeMultiGetEntries(Writer& writer,
                           const std::vector<MultiGetEntry>& entries,
                           std::uint8_t version = kProtocolVersion);
Result<std::vector<MultiGetEntry>> DecodeMultiGetEntries(
    Reader& reader, std::uint8_t version = kProtocolVersion);

} // namespace nexus::net
