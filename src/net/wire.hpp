// NEXUS remote-store wire protocol (nexusd <-> RemoteBackend).
//
// Every message is one length-prefixed binary frame on a byte stream:
//
//   [u32 LE payload length][payload]
//
// Request payload:   u8 version, u8 rpc id, arguments (serial.hpp format)
// Response payload:  u8 version, u8 error code, Str message, results
//
// The server is untrusted in the NEXUS threat model, so nothing here is
// authenticated — the protocol only moves ciphertext and opaque object
// names, and the enclave's MACs catch any tampering above this layer. What
// the framing DOES defend against is resource abuse and desync: lengths
// are bounded before allocation, every decode is bounds-checked (the
// decoder also runs client-side on attacker-controlled response bytes),
// and a malformed frame kills the connection rather than resynchronizing.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "common/serial.hpp"

namespace nexus::net {

inline constexpr std::uint8_t kProtocolVersion = 1;

/// Largest object the protocol moves (bulk data chunks are ≤1 MiB today;
/// whole journal records and streamed segments stay far below this).
inline constexpr std::size_t kMaxObjectBytes = 64u << 20;
/// Frame-size sanity bound: one max object plus framing/name slack. A
/// length prefix above this is a protocol violation, not an allocation.
inline constexpr std::size_t kMaxFrameBytes = kMaxObjectBytes + (1u << 16);

/// RPC surface: the StorageBackend interface verbatim, plus the segmented
/// OpenPutStream as a four-message streaming RPC and a Ping for liveness.
enum class Rpc : std::uint8_t {
  kPing = 1,
  kGet = 2,
  kPut = 3,
  kDelete = 4,
  kExists = 5,
  kList = 6,
  kStreamBegin = 7,   // name -> u64 stream handle
  kStreamAppend = 8,  // handle, segment bytes
  kStreamCommit = 9,  // handle; object becomes visible atomically
  kStreamAbort = 10,  // handle; store untouched
};

/// Starts a request: version + rpc id. Callers append arguments and hand
/// the bytes to Transport::SendFrame.
Writer BeginRequest(Rpc rpc);

/// Parses (and validates) a request head; the reader is left at the first
/// argument.
Result<Rpc> ParseRequestHead(Reader& reader);

/// Starts a response carrying `status` (OK responses append results).
Writer BeginResponse(const Status& status);

/// Parses a response head. The RETURNED Status is a protocol violation
/// (malformed frame — treat the connection as broken); on success,
/// `verdict` receives the server's verdict for the RPC, which is
/// authoritative and final (never retried).
Status ParseResponseHead(Reader& reader, Status* verdict);

/// ErrorCode <-> wire byte. Unknown bytes decode to kInternal so a rogue
/// server cannot smuggle an out-of-range enum into client code.
std::uint8_t CodeToWire(ErrorCode code) noexcept;
ErrorCode CodeFromWire(std::uint8_t wire) noexcept;

} // namespace nexus::net
