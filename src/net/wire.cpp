#include "net/wire.hpp"

#include <atomic>

namespace nexus::net {

const char* RpcName(Rpc rpc) noexcept {
  switch (rpc) {
    case Rpc::kPing: return "ping";
    case Rpc::kGet: return "get";
    case Rpc::kPut: return "put";
    case Rpc::kDelete: return "delete";
    case Rpc::kExists: return "exists";
    case Rpc::kList: return "list";
    case Rpc::kStreamBegin: return "stream_begin";
    case Rpc::kStreamAppend: return "stream_append";
    case Rpc::kStreamCommit: return "stream_commit";
    case Rpc::kStreamAbort: return "stream_abort";
    case Rpc::kStats: return "stats";
    case Rpc::kMultiGet: return "multi_get";
    case Rpc::kMultiExists: return "multi_exists";
    case Rpc::kLeaseSubscribe: return "lease_subscribe";
    case Rpc::kLeaseAttach: return "lease_attach";
    case Rpc::kInvalidate: return "invalidate";
    case Rpc::kListPage: return "list_page";
  }
  return "unknown";
}

std::uint64_t NextCorrelationId() noexcept {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

Writer BeginRequest(Rpc rpc) { return BeginRequest(rpc, NextCorrelationId()); }

Writer BeginRequest(Rpc rpc, std::uint64_t correlation) {
  return BeginRequest(rpc, correlation, kProtocolVersion);
}

Writer BeginRequest(Rpc rpc, std::uint64_t correlation, std::uint8_t version) {
  Writer w;
  w.U8(version);
  w.U8(static_cast<std::uint8_t>(rpc));
  w.U64(correlation);
  return w;
}

Rpc RequestRpc(ByteSpan request) noexcept {
  if (request.size() < 2) return static_cast<Rpc>(0);
  return static_cast<Rpc>(request[1]);
}

std::uint64_t RequestCorrelation(ByteSpan request) noexcept {
  if (request.size() < kRequestCorrelationOffset + 8) return 0;
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) |
        request[kRequestCorrelationOffset + static_cast<std::size_t>(i)];
  }
  return v;
}

std::uint64_t ResponseCorrelation(ByteSpan response) noexcept {
  if (response.size() < 1 + 8) return 0;
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | response[1 + static_cast<std::size_t>(i)];
  }
  return v;
}

Result<Rpc> ParseRequestHead(Reader& reader, std::uint64_t* correlation,
                             std::uint8_t* version_out) {
  NEXUS_ASSIGN_OR_RETURN(const std::uint8_t version, reader.U8());
  if (version < kMinProtocolVersion || version > kProtocolVersion) {
    return Error(ErrorCode::kInvalidArgument,
                 "unsupported protocol version " + std::to_string(version));
  }
  NEXUS_ASSIGN_OR_RETURN(const std::uint8_t rpc, reader.U8());
  const auto max_rpc = version == 2   ? kMaxV2Rpc
                       : version == 3 ? kMaxV3Rpc
                       : version <= 5 ? kMaxV5Rpc
                                      : Rpc::kListPage;
  if (rpc < static_cast<std::uint8_t>(Rpc::kPing) ||
      rpc > static_cast<std::uint8_t>(max_rpc)) {
    return Error(ErrorCode::kInvalidArgument,
                 "unknown rpc id " + std::to_string(rpc) + " for version " +
                     std::to_string(version));
  }
  NEXUS_ASSIGN_OR_RETURN(const std::uint64_t corr, reader.U64());
  if (correlation != nullptr) *correlation = corr;
  if (version_out != nullptr) *version_out = version;
  return static_cast<Rpc>(rpc);
}

Writer BeginResponse(const Status& status, std::uint64_t correlation,
                     std::uint8_t version) {
  Writer w;
  w.U8(version);
  w.U64(correlation);
  w.U8(CodeToWire(status.code()));
  w.Str(status.message());
  return w;
}

Status ParseResponseHead(Reader& reader, Status* verdict,
                         std::uint64_t* correlation) {
  NEXUS_ASSIGN_OR_RETURN(const std::uint8_t version, reader.U8());
  if (version < kMinProtocolVersion || version > kProtocolVersion) {
    return Error(ErrorCode::kInvalidArgument,
                 "unsupported protocol version " + std::to_string(version));
  }
  NEXUS_ASSIGN_OR_RETURN(const std::uint64_t corr, reader.U64());
  if (correlation != nullptr) *correlation = corr;
  NEXUS_ASSIGN_OR_RETURN(const std::uint8_t code, reader.U8());
  NEXUS_ASSIGN_OR_RETURN(std::string message, reader.Str());
  const ErrorCode decoded = CodeFromWire(code);
  *verdict = decoded == ErrorCode::kOk ? Status::Ok()
                                       : Status(decoded, std::move(message));
  return Status::Ok();
}

std::uint8_t CodeToWire(ErrorCode code) noexcept {
  return static_cast<std::uint8_t>(code);
}

ErrorCode CodeFromWire(std::uint8_t wire) noexcept {
  if (wire > static_cast<std::uint8_t>(ErrorCode::kInternal)) {
    return ErrorCode::kInternal;
  }
  return static_cast<ErrorCode>(wire);
}

void EncodeServerStats(Writer& writer, const ServerStats& stats) {
  writer.U64(stats.connections_accepted);
  writer.U64(stats.active_connections);
  writer.U64(stats.rpcs_served);
  writer.U64(stats.protocol_errors);
  writer.U64(stats.open_streams);
  writer.U64(stats.streams_aborted_on_disconnect);
  writer.U64(stats.bytes_received);
  writer.U64(stats.bytes_sent);
  writer.U64(stats.lease_sessions);
  writer.U64(stats.leases_granted);
  writer.U64(stats.leases_broken);
  writer.U64(stats.invalidations_sent);
  writer.U64(stats.lease_break_timeouts);
  writer.U64(stats.cache_mem_hits);
  writer.U64(stats.cache_disk_hits);
  writer.U64(stats.cache_misses);
  writer.U64(stats.cache_evictions);
  writer.U64(stats.cache_writeback_batches);
  writer.U64(stats.cache_invalidations);
  writer.U64(stats.cache_dirty_high_water);
  writer.U64(stats.epoll_wakeups);
  writer.U64(stats.arena_slabs_in_use);
  writer.U64(stats.arena_slabs_high_water);
  writer.U64(stats.arena_oversize_frames);
  writer.U64(stats.resident_threads);
  writer.F64(stats.loop_dispatch_p50_ms);
  writer.F64(stats.loop_dispatch_p99_ms);
  writer.U32(static_cast<std::uint32_t>(stats.per_op.size()));
  for (const RpcOpStats& op : stats.per_op) {
    writer.U8(op.rpc);
    writer.U64(op.count);
    writer.U64(op.bytes_in);
    writer.U64(op.bytes_out);
    writer.F64(op.p50_ms);
    writer.F64(op.p99_ms);
  }
}

Result<ServerStats> DecodeServerStats(Reader& reader) {
  ServerStats stats;
  NEXUS_ASSIGN_OR_RETURN(stats.connections_accepted, reader.U64());
  NEXUS_ASSIGN_OR_RETURN(stats.active_connections, reader.U64());
  NEXUS_ASSIGN_OR_RETURN(stats.rpcs_served, reader.U64());
  NEXUS_ASSIGN_OR_RETURN(stats.protocol_errors, reader.U64());
  NEXUS_ASSIGN_OR_RETURN(stats.open_streams, reader.U64());
  NEXUS_ASSIGN_OR_RETURN(stats.streams_aborted_on_disconnect, reader.U64());
  NEXUS_ASSIGN_OR_RETURN(stats.bytes_received, reader.U64());
  NEXUS_ASSIGN_OR_RETURN(stats.bytes_sent, reader.U64());
  NEXUS_ASSIGN_OR_RETURN(stats.lease_sessions, reader.U64());
  NEXUS_ASSIGN_OR_RETURN(stats.leases_granted, reader.U64());
  NEXUS_ASSIGN_OR_RETURN(stats.leases_broken, reader.U64());
  NEXUS_ASSIGN_OR_RETURN(stats.invalidations_sent, reader.U64());
  NEXUS_ASSIGN_OR_RETURN(stats.lease_break_timeouts, reader.U64());
  NEXUS_ASSIGN_OR_RETURN(stats.cache_mem_hits, reader.U64());
  NEXUS_ASSIGN_OR_RETURN(stats.cache_disk_hits, reader.U64());
  NEXUS_ASSIGN_OR_RETURN(stats.cache_misses, reader.U64());
  NEXUS_ASSIGN_OR_RETURN(stats.cache_evictions, reader.U64());
  NEXUS_ASSIGN_OR_RETURN(stats.cache_writeback_batches, reader.U64());
  NEXUS_ASSIGN_OR_RETURN(stats.cache_invalidations, reader.U64());
  NEXUS_ASSIGN_OR_RETURN(stats.cache_dirty_high_water, reader.U64());
  NEXUS_ASSIGN_OR_RETURN(stats.epoll_wakeups, reader.U64());
  NEXUS_ASSIGN_OR_RETURN(stats.arena_slabs_in_use, reader.U64());
  NEXUS_ASSIGN_OR_RETURN(stats.arena_slabs_high_water, reader.U64());
  NEXUS_ASSIGN_OR_RETURN(stats.arena_oversize_frames, reader.U64());
  NEXUS_ASSIGN_OR_RETURN(stats.resident_threads, reader.U64());
  NEXUS_ASSIGN_OR_RETURN(stats.loop_dispatch_p50_ms, reader.F64());
  NEXUS_ASSIGN_OR_RETURN(stats.loop_dispatch_p99_ms, reader.F64());
  NEXUS_ASSIGN_OR_RETURN(const std::uint32_t n, reader.U32());
  if (n > kMaxStatsEntries) {
    return Error(ErrorCode::kOutOfRange,
                 "stats entry count " + std::to_string(n) + " exceeds limit");
  }
  stats.per_op.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    RpcOpStats op;
    NEXUS_ASSIGN_OR_RETURN(op.rpc, reader.U8());
    if (op.rpc < static_cast<std::uint8_t>(Rpc::kPing) ||
        op.rpc > static_cast<std::uint8_t>(Rpc::kListPage)) {
      return Error(ErrorCode::kInvalidArgument,
                   "stats entry with unknown rpc id " + std::to_string(op.rpc));
    }
    NEXUS_ASSIGN_OR_RETURN(op.count, reader.U64());
    NEXUS_ASSIGN_OR_RETURN(op.bytes_in, reader.U64());
    NEXUS_ASSIGN_OR_RETURN(op.bytes_out, reader.U64());
    NEXUS_ASSIGN_OR_RETURN(op.p50_ms, reader.F64());
    NEXUS_ASSIGN_OR_RETURN(op.p99_ms, reader.F64());
    stats.per_op.push_back(op);
  }
  return stats;
}

void EncodeNameList(Writer& writer, const std::vector<std::string>& names) {
  writer.U32(static_cast<std::uint32_t>(names.size()));
  for (const std::string& name : names) writer.Str(name);
}

Result<std::vector<std::string>> DecodeNameList(Reader& reader) {
  NEXUS_ASSIGN_OR_RETURN(const std::uint32_t n, reader.U32());
  if (n > kMaxMultiEntries) {
    return Error(ErrorCode::kOutOfRange,
                 "batch of " + std::to_string(n) + " names exceeds limit");
  }
  std::vector<std::string> names;
  names.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    NEXUS_ASSIGN_OR_RETURN(std::string name, reader.Str());
    names.push_back(std::move(name));
  }
  return names;
}

void EncodeMultiGetEntries(Writer& writer,
                           const std::vector<MultiGetEntry>& entries,
                           std::uint8_t version) {
  writer.U32(static_cast<std::uint32_t>(entries.size()));
  for (const MultiGetEntry& entry : entries) {
    writer.U8(static_cast<std::uint8_t>(entry.state));
    switch (entry.state) {
      case MultiGetEntry::State::kOk:
        writer.Var(entry.data);
        if (version >= 5) writer.U8(entry.leased ? 1 : 0);
        break;
      case MultiGetEntry::State::kError:
        writer.U8(CodeToWire(entry.error.code()));
        writer.Str(entry.error.message());
        break;
      case MultiGetEntry::State::kDeferred:
        break; // no body: the client re-fetches it as a single Get
    }
  }
}

Result<std::vector<MultiGetEntry>> DecodeMultiGetEntries(
    Reader& reader, std::uint8_t version) {
  NEXUS_ASSIGN_OR_RETURN(const std::uint32_t n, reader.U32());
  if (n > kMaxMultiEntries) {
    return Error(ErrorCode::kOutOfRange,
                 "batch of " + std::to_string(n) + " entries exceeds limit");
  }
  std::vector<MultiGetEntry> entries;
  entries.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    MultiGetEntry entry;
    NEXUS_ASSIGN_OR_RETURN(const std::uint8_t state, reader.U8());
    switch (state) {
      case static_cast<std::uint8_t>(MultiGetEntry::State::kOk): {
        entry.state = MultiGetEntry::State::kOk;
        NEXUS_ASSIGN_OR_RETURN(entry.data, reader.Var(kMaxObjectBytes));
        if (version >= 5) {
          NEXUS_ASSIGN_OR_RETURN(const std::uint8_t granted, reader.U8());
          entry.leased = granted != 0;
        }
        break;
      }
      case static_cast<std::uint8_t>(MultiGetEntry::State::kError): {
        entry.state = MultiGetEntry::State::kError;
        NEXUS_ASSIGN_OR_RETURN(const std::uint8_t code, reader.U8());
        NEXUS_ASSIGN_OR_RETURN(std::string message, reader.Str());
        const ErrorCode decoded = CodeFromWire(code);
        if (decoded == ErrorCode::kOk) {
          return Error(ErrorCode::kInvalidArgument,
                       "multi-get error entry with ok code");
        }
        entry.error = Status(decoded, std::move(message));
        break;
      }
      case static_cast<std::uint8_t>(MultiGetEntry::State::kDeferred): {
        entry.state = MultiGetEntry::State::kDeferred;
        break;
      }
      default:
        return Error(ErrorCode::kInvalidArgument,
                     "unknown multi-get entry state " + std::to_string(state));
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

} // namespace nexus::net
