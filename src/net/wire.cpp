#include "net/wire.hpp"

namespace nexus::net {

Writer BeginRequest(Rpc rpc) {
  Writer w;
  w.U8(kProtocolVersion);
  w.U8(static_cast<std::uint8_t>(rpc));
  return w;
}

Result<Rpc> ParseRequestHead(Reader& reader) {
  NEXUS_ASSIGN_OR_RETURN(const std::uint8_t version, reader.U8());
  if (version != kProtocolVersion) {
    return Error(ErrorCode::kInvalidArgument,
                 "unsupported protocol version " + std::to_string(version));
  }
  NEXUS_ASSIGN_OR_RETURN(const std::uint8_t rpc, reader.U8());
  if (rpc < static_cast<std::uint8_t>(Rpc::kPing) ||
      rpc > static_cast<std::uint8_t>(Rpc::kStreamAbort)) {
    return Error(ErrorCode::kInvalidArgument,
                 "unknown rpc id " + std::to_string(rpc));
  }
  return static_cast<Rpc>(rpc);
}

Writer BeginResponse(const Status& status) {
  Writer w;
  w.U8(kProtocolVersion);
  w.U8(CodeToWire(status.code()));
  w.Str(status.message());
  return w;
}

Status ParseResponseHead(Reader& reader, Status* verdict) {
  NEXUS_ASSIGN_OR_RETURN(const std::uint8_t version, reader.U8());
  if (version != kProtocolVersion) {
    return Error(ErrorCode::kInvalidArgument,
                 "unsupported protocol version " + std::to_string(version));
  }
  NEXUS_ASSIGN_OR_RETURN(const std::uint8_t code, reader.U8());
  NEXUS_ASSIGN_OR_RETURN(std::string message, reader.Str());
  const ErrorCode decoded = CodeFromWire(code);
  *verdict = decoded == ErrorCode::kOk ? Status::Ok()
                                       : Status(decoded, std::move(message));
  return Status::Ok();
}

std::uint8_t CodeToWire(ErrorCode code) noexcept {
  return static_cast<std::uint8_t>(code);
}

ErrorCode CodeFromWire(std::uint8_t wire) noexcept {
  if (wire > static_cast<std::uint8_t>(ErrorCode::kInternal)) {
    return ErrorCode::kInternal;
  }
  return static_cast<ErrorCode>(wire);
}

} // namespace nexus::net
