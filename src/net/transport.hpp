// Framed byte-stream transports for the nexusd wire protocol.
//
// A Transport moves whole frames (wire.hpp framing) between one client
// and one server connection. Errors are all kIOError at this layer —
// RemoteBackend treats any transport failure as "the connection is dead,
// the RPC outcome is unknown" and decides retry policy above; server
// verdicts travel inside well-formed response frames instead.
//
// TcpTransport is the real thing: a connected socket with per-frame I/O
// deadlines (poll + non-blocking reads). FaultyTransport (fault.hpp)
// wraps it for deterministic failure injection.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/bytes.hpp"
#include "common/result.hpp"

namespace nexus::net {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Sends one length-prefixed frame.
  virtual Status SendFrame(ByteSpan payload) = 0;
  /// Receives the next frame's payload, blocking up to the I/O deadline.
  virtual Result<Bytes> RecvFrame() = 0;
  /// Hard-closes the connection; subsequent calls fail.
  virtual void Close() = 0;
  /// Breaks the connection WITHOUT releasing the descriptor: any thread
  /// blocked in SendFrame/RecvFrame fails promptly, and the fd stays
  /// allocated until Close()/destruction. This is the only member safe to
  /// call concurrently with in-flight I/O — the multiplexer uses it to
  /// unblock its demux thread (a concurrent Close would race fd reuse).
  virtual void Shutdown() { Close(); }
};

class TcpTransport final : public Transport {
 public:
  /// Connects to host:port. `io_deadline_ms` bounds every subsequent
  /// frame send/receive; <= 0 means block forever (server side).
  static Result<std::unique_ptr<TcpTransport>> Dial(const std::string& host,
                                                    std::uint16_t port,
                                                    int connect_deadline_ms,
                                                    int io_deadline_ms);

  /// Adopts an already-connected socket (accepted server side).
  TcpTransport(int fd, int io_deadline_ms);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  Status SendFrame(ByteSpan payload) override;
  Result<Bytes> RecvFrame() override;
  void Close() override;
  void Shutdown() override;

  /// Sends one frame whose payload is the concatenation of `parts`,
  /// scatter/gather (sendmsg) — the length prefix and every segment leave
  /// in one syscall batch with no coalescing copy. Used for MultiGet
  /// replies, whose object bodies would otherwise be memcpy'd into one
  /// contiguous response buffer.
  Status SendFrameParts(const std::vector<ByteSpan>& parts);

  /// Fault-injection seam: writes the frame's length prefix but only the
  /// first `keep` payload bytes, then shuts the socket down — the peer
  /// observes a torn frame followed by EOF, exactly like a crash mid-write.
  Status SendTruncated(ByteSpan payload, std::size_t keep);

 private:
  Status WriteAll(int fd, const std::uint8_t* data, std::size_t len);
  Status ReadAll(int fd, std::uint8_t* data, std::size_t len);

  // Atomic so Shutdown() can read it while another thread is mid-I/O;
  // only Close() writes it (to -1), exactly once.
  std::atomic<int> fd_{-1};
  int io_deadline_ms_ = 0;
};

} // namespace nexus::net
