#include "common/result.hpp"

namespace nexus {

std::string_view ErrorCodeName(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kInvalidArgument: return "InvalidArgument";
    case ErrorCode::kNotFound: return "NotFound";
    case ErrorCode::kAlreadyExists: return "AlreadyExists";
    case ErrorCode::kPermissionDenied: return "PermissionDenied";
    case ErrorCode::kIntegrityViolation: return "IntegrityViolation";
    case ErrorCode::kCryptoFailure: return "CryptoFailure";
    case ErrorCode::kIOError: return "IOError";
    case ErrorCode::kConflict: return "Conflict";
    case ErrorCode::kOutOfRange: return "OutOfRange";
    case ErrorCode::kUnimplemented: return "Unimplemented";
    case ErrorCode::kInternal: return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(ErrorCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

} // namespace nexus
