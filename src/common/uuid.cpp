#include "common/uuid.hpp"

#include <algorithm>

#include "common/hex.hpp"

namespace nexus {

Result<Uuid> Uuid::FromBytes(ByteSpan bytes) {
  if (bytes.size() != kSize) {
    return Error(ErrorCode::kInvalidArgument, "UUID must be 16 bytes");
  }
  return Uuid(ToArray<kSize>(bytes));
}

Result<Uuid> Uuid::Parse(std::string_view hex) {
  NEXUS_ASSIGN_OR_RETURN(Bytes raw, HexDecode(hex));
  return FromBytes(raw);
}

bool Uuid::IsNil() const noexcept {
  return std::all_of(bytes_.begin(), bytes_.end(),
                     [](std::uint8_t b) { return b == 0; });
}

std::string Uuid::ToString() const { return HexEncode(bytes_); }

} // namespace nexus
