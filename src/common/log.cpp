#include "common/log.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <mutex>

namespace nexus {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_sink_mutex;

const char* LevelName(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

} // namespace

void SetLogLevel(LogLevel level) noexcept { g_level.store(level); }
LogLevel GetLogLevel() noexcept { return g_level.load(); }

void LogMessage(LogLevel level, std::string_view tag,
                std::string_view message) {
  std::lock_guard lock(g_sink_mutex);
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", LevelName(level),
               static_cast<int>(tag.size()), tag.data(),
               static_cast<int>(message.size()), message.data());
}

namespace detail {

std::string FormatV(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

} // namespace detail
} // namespace nexus
