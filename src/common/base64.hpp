// Base64 encoding/decoding (RFC 4648), used when embedding binary blobs
// (sealed keys, quotes) in text configuration or logs.
#pragma once

#include <string>
#include <string_view>

#include "common/bytes.hpp"
#include "common/result.hpp"

namespace nexus {

/// Standard-alphabet base64 with padding.
std::string Base64Encode(ByteSpan data);

/// Strict decoder: rejects bad characters, bad padding and bad lengths.
Result<Bytes> Base64Decode(std::string_view text);

} // namespace nexus
