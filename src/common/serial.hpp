// Bounds-checked binary serialization.
//
// All NEXUS metadata objects (supernode/dirnode/filenode) are serialized with
// these helpers before encryption. The format is little-endian,
// length-prefixed, and deliberately simple: the *decoder runs inside the
// enclave on attacker-controlled bytes*, so every read is bounds-checked and
// every length is validated before allocation.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "common/uuid.hpp"

namespace nexus {

/// Appends primitives to a growing byte buffer.
class Writer {
 public:
  void U8(std::uint8_t v) { buf_.push_back(v); }
  void U16(std::uint16_t v);
  void U32(std::uint32_t v);
  void U64(std::uint64_t v);
  /// IEEE-754 double as its little-endian bit pattern (round-trips exactly).
  void F64(double v);

  /// Raw bytes, no length prefix (fixed-size fields: keys, tags, UUIDs).
  void Raw(ByteSpan data) { Append(buf_, data); }

  /// u32 length prefix + bytes.
  void Var(ByteSpan data);
  void Str(std::string_view s) { Var(AsBytes(s)); }
  void Id(const Uuid& u) { Raw(u.span()); }

  [[nodiscard]] const Bytes& bytes() const noexcept { return buf_; }
  [[nodiscard]] Bytes Take() && noexcept { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// Consumes primitives from a byte span; every accessor is bounds-checked.
class Reader {
 public:
  explicit Reader(ByteSpan data) noexcept : data_(data) {}

  Result<std::uint8_t> U8();
  Result<std::uint16_t> U16();
  Result<std::uint32_t> U32();
  Result<std::uint64_t> U64();
  Result<double> F64();

  /// Read exactly n raw bytes.
  Result<Bytes> Raw(std::size_t n);

  /// Read a u32 length prefix, then that many bytes. `max_len` bounds the
  /// allocation so a corrupt length cannot OOM the enclave.
  Result<Bytes> Var(std::size_t max_len = 1 << 26);
  Result<std::string> Str(std::size_t max_len = 1 << 16);
  Result<Uuid> Id();

  /// Bytes not yet consumed.
  [[nodiscard]] std::size_t Remaining() const noexcept {
    return data_.size() - pos_;
  }
  /// True once the whole input was consumed; decoders should end with this.
  [[nodiscard]] bool AtEnd() const noexcept { return Remaining() == 0; }

 private:
  Result<ByteSpan> Take(std::size_t n);

  ByteSpan data_;
  std::size_t pos_ = 0;
};

} // namespace nexus
