// 16-byte universally-unique identifiers.
//
// NEXUS names every data and metadata object on the untrusted store by a
// UUID generated *inside the enclave* (paper §IV-A1), so the server only ever
// sees obfuscated names.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "common/bytes.hpp"
#include "common/result.hpp"

namespace nexus {

class Uuid {
 public:
  static constexpr std::size_t kSize = 16;

  /// The all-zero UUID, used as "no object".
  Uuid() noexcept : bytes_{} {}

  explicit Uuid(const ByteArray<kSize>& bytes) noexcept : bytes_(bytes) {}

  /// Construct from exactly 16 raw bytes.
  static Result<Uuid> FromBytes(ByteSpan bytes);

  /// Parse the 32-character hex form produced by ToString().
  static Result<Uuid> Parse(std::string_view hex);

  [[nodiscard]] bool IsNil() const noexcept;

  [[nodiscard]] const ByteArray<kSize>& bytes() const noexcept {
    return bytes_;
  }
  [[nodiscard]] ByteSpan span() const noexcept { return bytes_; }

  /// 32-char lowercase hex; used as the object's filename on the store.
  [[nodiscard]] std::string ToString() const;

  friend auto operator<=>(const Uuid&, const Uuid&) = default;

 private:
  ByteArray<kSize> bytes_;
};

} // namespace nexus

template <>
struct std::hash<nexus::Uuid> {
  std::size_t operator()(const nexus::Uuid& u) const noexcept {
    // The bytes are uniformly random; fold the first 8.
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | u.bytes()[i];
    return std::hash<std::uint64_t>{}(v);
  }
};
