// Byte-buffer aliases and small helpers shared by every NEXUS module.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace nexus {

using Bytes = std::vector<std::uint8_t>;
using ByteSpan = std::span<const std::uint8_t>;
using MutableByteSpan = std::span<std::uint8_t>;

/// View a string's contents as bytes (no copy).
inline ByteSpan AsBytes(std::string_view s) noexcept {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

/// Copy a byte range into an owning buffer.
inline Bytes ToBytes(ByteSpan s) { return Bytes(s.begin(), s.end()); }

/// Copy a string's contents into an owning byte buffer.
inline Bytes ToBytes(std::string_view s) { return ToBytes(AsBytes(s)); }

/// Interpret bytes as a string (copies).
inline std::string ToString(ByteSpan s) {
  return std::string(reinterpret_cast<const char*>(s.data()), s.size());
}

/// Append `src` to `dst`.
inline void Append(Bytes& dst, ByteSpan src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

/// Concatenate any number of byte ranges.
template <typename... Spans>
Bytes Concat(const Spans&... spans) {
  Bytes out;
  out.reserve((ByteSpan(spans).size() + ...));
  (Append(out, ByteSpan(spans)), ...);
  return out;
}

/// Overwrite a buffer with zeros in a way the optimizer may not elide.
/// Used for key material before release (simulated enclave hygiene).
inline void SecureZero(MutableByteSpan buf) noexcept {
  volatile std::uint8_t* p = buf.data();
  for (std::size_t i = 0; i < buf.size(); ++i) p[i] = 0;
}

/// Fixed-size key/nonce containers.
template <std::size_t N>
using ByteArray = std::array<std::uint8_t, N>;

using Key128 = ByteArray<16>;
using Key256 = ByteArray<32>;

/// Copy the first N bytes of a span into a fixed array. Caller guarantees
/// `s.size() >= N`.
template <std::size_t N>
ByteArray<N> ToArray(ByteSpan s) {
  ByteArray<N> out{};
  std::memcpy(out.data(), s.data(), N);
  return out;
}

} // namespace nexus
