#include "common/base64.hpp"

#include <array>

namespace nexus {
namespace {

constexpr char kAlphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

constexpr std::array<std::int8_t, 256> BuildReverse() {
  std::array<std::int8_t, 256> table{};
  for (auto& v : table) v = -1;
  for (int i = 0; i < 64; ++i) {
    table[static_cast<unsigned char>(kAlphabet[i])] = static_cast<std::int8_t>(i);
  }
  return table;
}

constexpr auto kReverse = BuildReverse();

} // namespace

std::string Base64Encode(ByteSpan data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  std::size_t i = 0;
  while (i + 3 <= data.size()) {
    const std::uint32_t v = (static_cast<std::uint32_t>(data[i]) << 16) |
                            (static_cast<std::uint32_t>(data[i + 1]) << 8) |
                            data[i + 2];
    out.push_back(kAlphabet[(v >> 18) & 63]);
    out.push_back(kAlphabet[(v >> 12) & 63]);
    out.push_back(kAlphabet[(v >> 6) & 63]);
    out.push_back(kAlphabet[v & 63]);
    i += 3;
  }
  const std::size_t rest = data.size() - i;
  if (rest == 1) {
    const std::uint32_t v = static_cast<std::uint32_t>(data[i]) << 16;
    out.push_back(kAlphabet[(v >> 18) & 63]);
    out.push_back(kAlphabet[(v >> 12) & 63]);
    out += "==";
  } else if (rest == 2) {
    const std::uint32_t v = (static_cast<std::uint32_t>(data[i]) << 16) |
                            (static_cast<std::uint32_t>(data[i + 1]) << 8);
    out.push_back(kAlphabet[(v >> 18) & 63]);
    out.push_back(kAlphabet[(v >> 12) & 63]);
    out.push_back(kAlphabet[(v >> 6) & 63]);
    out.push_back('=');
  }
  return out;
}

Result<Bytes> Base64Decode(std::string_view text) {
  if (text.size() % 4 != 0) {
    return Error(ErrorCode::kInvalidArgument, "base64 length not multiple of 4");
  }
  Bytes out;
  out.reserve(text.size() / 4 * 3);
  for (std::size_t i = 0; i < text.size(); i += 4) {
    int pad = 0;
    std::uint32_t v = 0;
    for (int j = 0; j < 4; ++j) {
      const char c = text[i + j];
      if (c == '=') {
        // Padding only in the last two positions of the final group.
        if (i + 4 != text.size() || j < 2) {
          return Error(ErrorCode::kInvalidArgument, "misplaced base64 padding");
        }
        ++pad;
        v <<= 6;
        continue;
      }
      if (pad > 0) {
        return Error(ErrorCode::kInvalidArgument, "data after base64 padding");
      }
      const std::int8_t d = kReverse[static_cast<unsigned char>(c)];
      if (d < 0) {
        return Error(ErrorCode::kInvalidArgument, "invalid base64 character");
      }
      v = (v << 6) | static_cast<std::uint32_t>(d);
    }
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    if (pad < 2) out.push_back(static_cast<std::uint8_t>(v >> 8));
    if (pad < 1) out.push_back(static_cast<std::uint8_t>(v));
  }
  return out;
}

} // namespace nexus
