// Time sources.
//
// NEXUS benchmarks mix two kinds of time (DESIGN.md §5.1):
//  * simulated I/O time, advanced deterministically by the storage cost
//    model (SimClock lives in src/storage), and
//  * real compute time, measured around enclave execution.
// This header provides the real-time side plus a tiny stopwatch.
#pragma once

#include <chrono>
#include <cstdint>

namespace nexus {

/// Monotonic nanoseconds since an arbitrary epoch.
inline std::uint64_t MonotonicNanos() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Accumulating stopwatch for profiling enclave compute time.
class Stopwatch {
 public:
  void Start() noexcept { start_ = MonotonicNanos(); }
  void Stop() noexcept { total_ns_ += MonotonicNanos() - start_; }

  [[nodiscard]] std::uint64_t TotalNanos() const noexcept { return total_ns_; }
  [[nodiscard]] double TotalSeconds() const noexcept {
    return static_cast<double>(total_ns_) * 1e-9;
  }
  void Reset() noexcept { total_ns_ = 0; }

 private:
  std::uint64_t start_ = 0;
  std::uint64_t total_ns_ = 0;
};

} // namespace nexus
