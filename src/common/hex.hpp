// Hex encoding/decoding for UUID filenames, logging and test vectors.
#pragma once

#include <string>
#include <string_view>

#include "common/bytes.hpp"
#include "common/result.hpp"

namespace nexus {

/// Lowercase hex encoding ("deadbeef").
std::string HexEncode(ByteSpan data);

/// Decode a hex string; rejects odd lengths and non-hex characters.
Result<Bytes> HexDecode(std::string_view hex);

} // namespace nexus
