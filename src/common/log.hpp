// Minimal leveled logger. Off by default in benchmarks; tests and examples
// raise the level to trace protocol flows.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

namespace nexus {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global minimum level; messages below it are discarded.
void SetLogLevel(LogLevel level) noexcept;
LogLevel GetLogLevel() noexcept;

/// Core sink: writes "[LEVEL] tag: message" to stderr.
void LogMessage(LogLevel level, std::string_view tag, std::string_view message);

namespace detail {
std::string FormatV(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
} // namespace detail

#define NEXUS_LOG(level, tag, ...)                                     \
  do {                                                                 \
    if (static_cast<int>(level) >=                                     \
        static_cast<int>(::nexus::GetLogLevel())) {                    \
      ::nexus::LogMessage(level, tag, ::nexus::detail::FormatV(__VA_ARGS__)); \
    }                                                                  \
  } while (0)

#define NEXUS_TRACE(tag, ...) NEXUS_LOG(::nexus::LogLevel::kTrace, tag, __VA_ARGS__)
#define NEXUS_DEBUG(tag, ...) NEXUS_LOG(::nexus::LogLevel::kDebug, tag, __VA_ARGS__)
#define NEXUS_INFO(tag, ...) NEXUS_LOG(::nexus::LogLevel::kInfo, tag, __VA_ARGS__)
#define NEXUS_WARN(tag, ...) NEXUS_LOG(::nexus::LogLevel::kWarn, tag, __VA_ARGS__)
#define NEXUS_ERROR(tag, ...) NEXUS_LOG(::nexus::LogLevel::kError, tag, __VA_ARGS__)

} // namespace nexus
