// Result/Status error handling used across NEXUS.
//
// The enclave boundary (and real SGX ecall ABIs) cannot propagate C++
// exceptions, so all fallible NEXUS APIs return Status or Result<T>.
// Exceptions are reserved for programmer errors (contract violations).
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace nexus {

/// Error category codes. Kept coarse on purpose: callers branch on these,
/// humans read the message.
enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kPermissionDenied,   // ACL / authentication failures
  kIntegrityViolation, // MAC mismatch, tampering, rollback, bad quote
  kCryptoFailure,      // primitive-level failure (bad key size, etc.)
  kIOError,            // backing-store failure
  kConflict,           // lock contention / concurrent update
  kOutOfRange,
  kUnimplemented,
  kInternal,
};

/// Human-readable name for an ErrorCode ("NotFound", ...).
std::string_view ErrorCodeName(ErrorCode code) noexcept;

/// A Status is either OK or an (ErrorCode, message) pair.
class [[nodiscard]] Status {
 public:
  Status() noexcept = default; // OK
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != ErrorCode::kOk && "use Status::Ok() for success");
  }

  static Status Ok() noexcept { return {}; }

  [[nodiscard]] bool ok() const noexcept { return code_ == ErrorCode::kOk; }
  [[nodiscard]] ErrorCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  /// "IntegrityViolation: dirnode MAC mismatch" or "OK".
  [[nodiscard]] std::string ToString() const;

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

inline Status Error(ErrorCode code, std::string message) {
  return Status(code, std::move(message));
}

/// Result<T> holds either a value or an error Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : state_(std::move(value)) {} // NOLINT: implicit by design
  Result(Status status) : state_(std::move(status)) { // NOLINT
    assert(!std::get<Status>(state_).ok() &&
           "cannot construct Result<T> from OK status without a value");
  }

  [[nodiscard]] bool ok() const noexcept {
    return std::holds_alternative<T>(state_);
  }

  [[nodiscard]] const Status& status() const noexcept {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(state_);
  }

  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<T>(state_);
  }
  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<T>(state_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::get<T>(std::move(state_));
  }

  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T* operator->() { return &value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> state_;
};

// Propagate errors up the call stack. Usage:
//   NEXUS_RETURN_IF_ERROR(DoThing());
//   NEXUS_ASSIGN_OR_RETURN(auto x, ComputeThing());
#define NEXUS_RETURN_IF_ERROR(expr)                \
  do {                                             \
    ::nexus::Status nexus_status_ = (expr);        \
    if (!nexus_status_.ok()) return nexus_status_; \
  } while (0)

#define NEXUS_CONCAT_IMPL(a, b) a##b
#define NEXUS_CONCAT(a, b) NEXUS_CONCAT_IMPL(a, b)

#define NEXUS_ASSIGN_OR_RETURN(decl, expr)                            \
  auto NEXUS_CONCAT(nexus_result_, __LINE__) = (expr);                \
  if (!NEXUS_CONCAT(nexus_result_, __LINE__).ok())                    \
    return NEXUS_CONCAT(nexus_result_, __LINE__).status();            \
  decl = std::move(NEXUS_CONCAT(nexus_result_, __LINE__)).value()

} // namespace nexus
