#include "common/serial.hpp"

#include <cstring>

namespace nexus {

void Writer::U16(std::uint16_t v) {
  U8(static_cast<std::uint8_t>(v));
  U8(static_cast<std::uint8_t>(v >> 8));
}

void Writer::U32(std::uint32_t v) {
  U16(static_cast<std::uint16_t>(v));
  U16(static_cast<std::uint16_t>(v >> 16));
}

void Writer::U64(std::uint64_t v) {
  U32(static_cast<std::uint32_t>(v));
  U32(static_cast<std::uint32_t>(v >> 32));
}

void Writer::F64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void Writer::Var(ByteSpan data) {
  U32(static_cast<std::uint32_t>(data.size()));
  Raw(data);
}

Result<ByteSpan> Reader::Take(std::size_t n) {
  if (n > Remaining()) {
    return Error(ErrorCode::kOutOfRange, "serialized data truncated");
  }
  ByteSpan out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

Result<std::uint8_t> Reader::U8() {
  NEXUS_ASSIGN_OR_RETURN(ByteSpan b, Take(1));
  return b[0];
}

Result<std::uint16_t> Reader::U16() {
  NEXUS_ASSIGN_OR_RETURN(ByteSpan b, Take(2));
  return static_cast<std::uint16_t>(b[0] | (b[1] << 8));
}

Result<std::uint32_t> Reader::U32() {
  NEXUS_ASSIGN_OR_RETURN(ByteSpan b, Take(4));
  return static_cast<std::uint32_t>(b[0]) | (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

Result<std::uint64_t> Reader::U64() {
  NEXUS_ASSIGN_OR_RETURN(std::uint32_t lo, U32());
  NEXUS_ASSIGN_OR_RETURN(std::uint32_t hi, U32());
  return static_cast<std::uint64_t>(lo) | (static_cast<std::uint64_t>(hi) << 32);
}

Result<double> Reader::F64() {
  NEXUS_ASSIGN_OR_RETURN(const std::uint64_t bits, U64());
  double v = 0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<Bytes> Reader::Raw(std::size_t n) {
  NEXUS_ASSIGN_OR_RETURN(ByteSpan b, Take(n));
  return ToBytes(b);
}

Result<Bytes> Reader::Var(std::size_t max_len) {
  NEXUS_ASSIGN_OR_RETURN(std::uint32_t len, U32());
  if (len > max_len) {
    return Error(ErrorCode::kOutOfRange, "serialized field exceeds limit");
  }
  return Raw(len);
}

Result<std::string> Reader::Str(std::size_t max_len) {
  NEXUS_ASSIGN_OR_RETURN(Bytes raw, Var(max_len));
  return ToString(raw);
}

Result<Uuid> Reader::Id() {
  NEXUS_ASSIGN_OR_RETURN(Bytes raw, Raw(Uuid::kSize));
  return Uuid::FromBytes(raw);
}

} // namespace nexus
