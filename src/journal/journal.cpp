#include "journal/journal.hpp"

#include <utility>

#include "common/serial.hpp"
#include "crypto/gcm.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"

namespace nexus::journal {
namespace {

constexpr std::uint32_t kRecordMagic = 0x4c4a584e; // "NXJL"
constexpr std::uint32_t kAnchorMagic = 0x414a584e; // "NXJA"
constexpr std::size_t kMaxOpsPerRecord = 1 << 20;

Bytes RecordAad(std::uint64_t seq, const ByteArray<32>& prev_hash,
                const Uuid& volume_uuid) {
  Writer w;
  w.U32(kRecordMagic);
  w.U64(seq);
  w.Raw(prev_hash);
  w.Id(volume_uuid);
  return std::move(w).Take();
}

Bytes AnchorAad(const Uuid& volume_uuid) {
  Writer w;
  w.U32(kAnchorMagic);
  w.Id(volume_uuid);
  return std::move(w).Take();
}

} // namespace

JournalKey DeriveJournalKey(const Key128& rootkey) {
  const Bytes key =
      crypto::Hkdf(/*salt=*/{}, rootkey, AsBytes("nexus-journal-key"),
                   sizeof(JournalKey));
  return ToArray<sizeof(JournalKey)>(key);
}

std::string ObjectName(std::uint64_t seq) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[seq & 0xf];
    seq >>= 4;
  }
  return out;
}

std::optional<std::uint64_t> ParseObjectName(const std::string& name) {
  if (name.size() != 16) return std::nullopt;
  std::uint64_t seq = 0;
  for (char c : name) {
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a') + 10;
    } else {
      return std::nullopt;
    }
    seq = (seq << 4) | digit;
  }
  return seq;
}

Result<Bytes> EncodeRecord(std::uint64_t seq, const ByteArray<32>& prev_hash,
                           const std::vector<Op>& ops, const JournalKey& key,
                           const Uuid& volume_uuid, crypto::Rng& rng) {
  if (ops.empty()) {
    return Error(ErrorCode::kInvalidArgument, "journal record with no ops");
  }
  Writer payload;
  payload.U32(static_cast<std::uint32_t>(ops.size()));
  for (const Op& op : ops) {
    payload.U8(static_cast<std::uint8_t>(op.kind));
    payload.Id(op.uuid);
    if (op.kind == OpKind::kPut) payload.Var(op.blob);
  }

  NEXUS_ASSIGN_OR_RETURN(crypto::Aes aes, crypto::Aes::Create(key));
  const Bytes iv = rng.Generate(crypto::kGcmIvSize);
  NEXUS_ASSIGN_OR_RETURN(
      Bytes sealed, crypto::GcmSeal(aes, iv, RecordAad(seq, prev_hash,
                                                       volume_uuid),
                                    payload.bytes()));

  Writer out;
  out.U32(kRecordMagic);
  out.U64(seq);
  out.Raw(iv);
  out.Raw(sealed);
  return std::move(out).Take();
}

Result<std::vector<Op>> DecodeRecord(ByteSpan blob, std::uint64_t expected_seq,
                                     const ByteArray<32>& expected_prev,
                                     const JournalKey& key,
                                     const Uuid& volume_uuid) {
  Reader r(blob);
  NEXUS_ASSIGN_OR_RETURN(const std::uint32_t magic, r.U32());
  if (magic != kRecordMagic) {
    return Error(ErrorCode::kIntegrityViolation, "bad journal record magic");
  }
  NEXUS_ASSIGN_OR_RETURN(const std::uint64_t seq, r.U64());
  if (seq != expected_seq) {
    return Error(ErrorCode::kIntegrityViolation,
                 "journal record sequence mismatch (reordered or spliced?)");
  }
  NEXUS_ASSIGN_OR_RETURN(const Bytes iv, r.Raw(crypto::kGcmIvSize));
  NEXUS_ASSIGN_OR_RETURN(const Bytes sealed, r.Raw(r.Remaining()));

  NEXUS_ASSIGN_OR_RETURN(crypto::Aes aes, crypto::Aes::Create(key));
  // The AAD binds seq + previous-record hash + volume: a record lifted from
  // elsewhere in the chain (or from another volume) fails authentication.
  NEXUS_ASSIGN_OR_RETURN(
      const Bytes payload,
      crypto::GcmOpen(aes, iv, RecordAad(expected_seq, expected_prev,
                                         volume_uuid),
                      sealed));

  Reader pr(payload);
  NEXUS_ASSIGN_OR_RETURN(const std::uint32_t count, pr.U32());
  if (count == 0 || count > kMaxOpsPerRecord) {
    return Error(ErrorCode::kIntegrityViolation, "bad journal op count");
  }
  std::vector<Op> ops;
  ops.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Op op;
    NEXUS_ASSIGN_OR_RETURN(const std::uint8_t kind, pr.U8());
    if (kind != static_cast<std::uint8_t>(OpKind::kPut) &&
        kind != static_cast<std::uint8_t>(OpKind::kRemove)) {
      return Error(ErrorCode::kIntegrityViolation, "bad journal op kind");
    }
    op.kind = static_cast<OpKind>(kind);
    NEXUS_ASSIGN_OR_RETURN(op.uuid, pr.Id());
    if (op.kind == OpKind::kPut) {
      NEXUS_ASSIGN_OR_RETURN(op.blob, pr.Var());
    }
    ops.push_back(std::move(op));
  }
  if (!pr.AtEnd()) {
    return Error(ErrorCode::kIntegrityViolation,
                 "trailing bytes in journal record");
  }
  return ops;
}

ByteArray<32> ChainHash(ByteSpan record_blob) {
  return crypto::Sha256::Hash(record_blob);
}

Result<Bytes> EncodeAnchor(const Anchor& anchor, const JournalKey& key,
                           const Uuid& volume_uuid, crypto::Rng& rng) {
  Writer payload;
  payload.U64(anchor.next_seq);
  payload.Raw(anchor.chain_hash);

  NEXUS_ASSIGN_OR_RETURN(crypto::Aes aes, crypto::Aes::Create(key));
  const Bytes iv = rng.Generate(crypto::kGcmIvSize);
  NEXUS_ASSIGN_OR_RETURN(Bytes sealed,
                         crypto::GcmSeal(aes, iv, AnchorAad(volume_uuid),
                                         payload.bytes()));

  Writer out;
  out.U32(kAnchorMagic);
  out.Raw(iv);
  out.Raw(sealed);
  return std::move(out).Take();
}

Result<Anchor> DecodeAnchor(ByteSpan blob, const JournalKey& key,
                            const Uuid& volume_uuid) {
  Reader r(blob);
  NEXUS_ASSIGN_OR_RETURN(const std::uint32_t magic, r.U32());
  if (magic != kAnchorMagic) {
    return Error(ErrorCode::kIntegrityViolation, "bad journal anchor magic");
  }
  NEXUS_ASSIGN_OR_RETURN(const Bytes iv, r.Raw(crypto::kGcmIvSize));
  NEXUS_ASSIGN_OR_RETURN(const Bytes sealed, r.Raw(r.Remaining()));

  NEXUS_ASSIGN_OR_RETURN(crypto::Aes aes, crypto::Aes::Create(key));
  NEXUS_ASSIGN_OR_RETURN(
      const Bytes payload,
      crypto::GcmOpen(aes, iv, AnchorAad(volume_uuid), sealed));

  Reader pr(payload);
  Anchor anchor;
  NEXUS_ASSIGN_OR_RETURN(anchor.next_seq, pr.U64());
  NEXUS_ASSIGN_OR_RETURN(const Bytes hash, pr.Raw(32));
  anchor.chain_hash = ToArray<32>(hash);
  if (!pr.AtEnd()) {
    return Error(ErrorCode::kIntegrityViolation,
                 "trailing bytes in journal anchor");
  }
  return anchor;
}

void TxnBuffer::Put(const Uuid& uuid, Bytes blob) {
  Apply(Op{OpKind::kPut, uuid, std::move(blob)});
}

void TxnBuffer::Remove(const Uuid& uuid) {
  Apply(Op{OpKind::kRemove, uuid, {}});
}

void TxnBuffer::Apply(Op op) {
  // Last-wins per object: ops on distinct objects are order-independent
  // (each op carries the full blob), so replacing in place is sound.
  const auto it = index_.find(op.uuid);
  if (it != index_.end()) {
    ops_[it->second] = std::move(op);
    ++deduped_;
    return;
  }
  index_.emplace(op.uuid, ops_.size());
  ops_.push_back(std::move(op));
}

const Op* TxnBuffer::Find(const Uuid& uuid) const {
  const auto it = index_.find(uuid);
  return it == index_.end() ? nullptr : &ops_[it->second];
}

std::vector<Op> TxnBuffer::TakeOps() {
  std::vector<Op> out = std::move(ops_);
  Clear();
  return out;
}

void TxnBuffer::Clear() {
  ops_.clear();
  index_.clear();
  deduped_ = 0;
}

} // namespace nexus::journal
