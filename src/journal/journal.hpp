// Write-ahead metadata commit journal (format + transaction buffering).
//
// NEXUS metadata updates become durable in two steps. First, every
// StoreMeta/RemoveMeta an operation (or an explicit batch of operations)
// performs is deferred into a pending transaction inside the enclave. On
// commit, the whole transaction is serialized into ONE journal record —
// an AES-GCM-sealed object stored on the untrusted backend under the
// "nxj/" namespace — making the batch atomic and durable in a single
// round trip. Later, a checkpoint applies the committed records to the
// main "nx/" objects and truncates the journal; mount-time recovery
// replays complete records and discards torn tails.
//
// Integrity model: each record's AAD binds its sequence number, the
// SHA-256 of the previous record (a rolling hash chain) and the volume
// UUID, all under a per-volume journal key derived from the rootkey. The
// untrusted store therefore cannot reorder, drop, splice or cross-volume
// transplant records without breaking the chain; recovery stops at the
// first record that fails to authenticate. A torn tail (crash mid-commit)
// is indistinguishable from — and handled identically to — a truncated
// chain: everything from the first bad record on is discarded.
//
// The anchor object ("nxj/anchor", same sealing) pins where the live
// chain starts after a truncation: the next expected sequence number and
// the hash of the last checkpointed record. Recovery treats records below
// the anchor as already-applied garbage.
//
// This header is enclave-side code: decoders run on attacker-controlled
// bytes and every read is bounds-checked (common/serial.hpp).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "common/uuid.hpp"
#include "crypto/rng.hpp"

namespace nexus::journal {

using JournalKey = Key128;

/// Derives the per-volume journal sealing key from the volume rootkey.
JournalKey DeriveJournalKey(const Key128& rootkey);

enum class OpKind : std::uint8_t { kPut = 1, kRemove = 2 };

/// One deferred metadata mutation. `blob` is the already-encrypted
/// metadata object (the journal never sees plaintext bodies).
struct Op {
  OpKind kind = OpKind::kPut;
  Uuid uuid;
  Bytes blob; // empty for kRemove
};

/// Truncation point of the journal chain.
struct Anchor {
  std::uint64_t next_seq = 0;   // first live sequence number
  ByteArray<32> chain_hash{};   // hash of the last checkpointed record
};

// ---- object naming ("nxj/<name>" on the store) -----------------------------

inline constexpr const char* kAnchorName = "anchor";

/// Fixed-width hex so lexicographic order == numeric order.
std::string ObjectName(std::uint64_t seq);
/// Parses a record object name; nullopt for the anchor or foreign names.
std::optional<std::uint64_t> ParseObjectName(const std::string& name);

// ---- record / anchor codec --------------------------------------------------

/// Seals one transaction's ops into a journal record object.
Result<Bytes> EncodeRecord(std::uint64_t seq, const ByteArray<32>& prev_hash,
                           const std::vector<Op>& ops, const JournalKey& key,
                           const Uuid& volume_uuid, crypto::Rng& rng);

/// Verifies and opens a record. Fails (kIntegrityViolation) if the record
/// is torn, tampered with, carries the wrong sequence number, or does not
/// extend `prev_hash` — the caller treats any failure as end-of-chain.
Result<std::vector<Op>> DecodeRecord(ByteSpan blob, std::uint64_t expected_seq,
                                     const ByteArray<32>& expected_prev,
                                     const JournalKey& key,
                                     const Uuid& volume_uuid);

/// The chain hash a successor record's AAD must bind.
ByteArray<32> ChainHash(ByteSpan record_blob);

Result<Bytes> EncodeAnchor(const Anchor& anchor, const JournalKey& key,
                           const Uuid& volume_uuid, crypto::Rng& rng);
Result<Anchor> DecodeAnchor(ByteSpan blob, const JournalKey& key,
                            const Uuid& volume_uuid);

// ---- transaction buffer -----------------------------------------------------

/// An ordered set of deferred mutations with last-wins dedup per object:
/// re-storing a metadata object that is already pending replaces the
/// buffered blob in place, so a batch touching the same dirnode N times
/// journals (and later checkpoints) it once.
class TxnBuffer {
 public:
  void Put(const Uuid& uuid, Bytes blob);
  void Remove(const Uuid& uuid);
  /// Applies an op of either kind (used when merging committed records).
  void Apply(Op op);

  /// The buffered op for `uuid`, or nullptr.
  [[nodiscard]] const Op* Find(const Uuid& uuid) const;

  [[nodiscard]] bool empty() const noexcept { return ops_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return ops_.size(); }
  [[nodiscard]] const std::vector<Op>& ops() const noexcept { return ops_; }
  /// How many buffered mutations were collapsed by dedup so far.
  [[nodiscard]] std::uint64_t deduped() const noexcept { return deduped_; }

  /// Moves the ops out and resets the buffer (dedup counter included).
  std::vector<Op> TakeOps();
  void Clear();

 private:
  std::vector<Op> ops_;
  std::unordered_map<Uuid, std::size_t> index_;
  std::uint64_t deduped_ = 0;
};

/// Commit/checkpoint/recovery counters (surfaced via ProfileSnapshot).
struct Stats {
  std::uint64_t records_committed = 0;
  std::uint64_t ops_committed = 0;
  std::uint64_t ops_deduped = 0; // mutations absorbed by in-buffer dedup
  std::uint64_t checkpoints = 0;
  std::uint64_t ops_checkpointed = 0;
  std::uint64_t records_replayed = 0;
  std::uint64_t ops_replayed = 0;
  std::uint64_t torn_records_discarded = 0;
};

} // namespace nexus::journal
