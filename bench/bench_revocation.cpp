// §VII-E: revocation cost — NEXUS vs a pure-cryptographic filesystem.
//
// Paper: revoking a user from the SFLD directory (10 MB of data) touches
// ~95 KB of NEXUS metadata; for LFSD the metadata payload is ~3.2 KB for
// 3.2 GB of data. A pure-crypto system must re-encrypt *all* file data.
#include <cstdio>

#include "baseline/pure_crypto_fs.hpp"
#include "bench_util.hpp"
#include "workloads/treegen.hpp"

namespace nexus::bench {
namespace {

struct RevocationResult {
  std::uint64_t data_bytes = 0;      // file data under the directory
  std::uint64_t bytes_reuploaded = 0; // what revocation shipped to the server
  double seconds = 0;
};

RevocationResult RunNexusRevocation(const workloads::TreeSpec& spec) {
  auto setup = Setup::Nexus();
  Abort(setup->fs().Mkdir("w"), "mkdir");
  crypto::HmacDrbg rng(AsBytes("revoke-tree"));
  auto stats = workloads::GenerateTree(setup->fs(), "w", spec, rng);
  Abort(stats.status(), "tree");

  // Add a user and grant them access to the directory.
  core::UserKey alice = core::UserKey::Generate("alice", setup->rng());
  Abort(setup->nexus()->AddUser("alice", alice.public_key()), "adduser");
  Abort(setup->nexus()->SetAcl("w", "alice",
                               enclave::kPermRead | enclave::kPermWrite),
        "acl");

  // Revoke: one ACL update — metadata only.
  const auto before = setup->afs().stats();
  PhaseTimer timer(*setup);
  Abort(setup->nexus()->SetAcl("w", "alice", enclave::kPermNone), "revoke");
  const auto sample = timer.Stop();
  const auto after = setup->afs().stats();

  RevocationResult r;
  r.data_bytes = stats->total_bytes;
  r.bytes_reuploaded = after.bytes_stored - before.bytes_stored;
  r.seconds = sample.total;
  return r;
}

RevocationResult RunPureCryptoRevocation(const workloads::TreeSpec& spec) {
  auto setup = Setup::Baseline();
  crypto::HmacDrbg rng(AsBytes("revoke-pc"));
  baseline::PureCryptoFs pcfs(setup->afs(), rng);

  const auto owner = baseline::BoxKeyPair::Generate("owner", rng);
  const auto alice = baseline::BoxKeyPair::Generate("alice", rng);
  const std::vector<baseline::Reader> readers = {
      {"owner", owner.public_key}, {"alice", alice.public_key}};

  // Same data volume and file count as the NEXUS run.
  crypto::HmacDrbg tree_rng(AsBytes("revoke-tree"));
  std::uint64_t total = 0;
  for (std::uint32_t i = 0; i < spec.file_count; ++i) {
    const std::uint64_t size =
        std::max<std::uint64_t>(1, spec.total_bytes / spec.file_count);
    const Bytes content = tree_rng.Generate(size);
    Abort(pcfs.WriteFile("w/file" + std::to_string(i), content, readers),
          "pc write");
    total += size;
  }

  const auto before = setup->afs().stats();
  const double wall0 = static_cast<double>(MonotonicNanos()) * 1e-9;
  const double io0 = setup->clock().Now();
  Abort(pcfs.Revoke("w/", "alice", owner), "pc revoke");
  const double seconds = (static_cast<double>(MonotonicNanos()) * 1e-9 - wall0) +
                         (setup->clock().Now() - io0);
  const auto after = setup->afs().stats();

  RevocationResult r;
  r.data_bytes = total;
  r.bytes_reuploaded = after.bytes_stored - before.bytes_stored;
  r.seconds = seconds;
  return r;
}

} // namespace

int Main() {
  PrintHeader("SVII-E: Revocation cost, NEXUS vs pure-cryptographic filesystem");
  std::printf("%-10s %-12s %14s %18s %10s\n", "workload", "system",
              "data under dir", "bytes re-uploaded", "latency");

  for (const auto& spec : {workloads::SfldSpec(), workloads::LfsdSpec()}) {
    const RevocationResult nexus = RunNexusRevocation(spec);
    const RevocationResult pure = RunPureCryptoRevocation(spec);
    auto print = [&](const char* system, const RevocationResult& r) {
      std::printf("%-10s %-12s %11.1f MB %15.1f KB %9.3fs\n", spec.name.c_str(),
                  system, static_cast<double>(r.data_bytes) / (1 << 20),
                  static_cast<double>(r.bytes_reuploaded) / 1024.0, r.seconds);
    };
    print("NEXUS", nexus);
    print("pure-crypto", pure);
    std::printf("%-10s re-upload ratio: %.0fx\n", "",
                static_cast<double>(pure.bytes_reuploaded) /
                    static_cast<double>(nexus.bytes_reuploaded));
  }
  return 0;
}

} // namespace nexus::bench

int main() { return nexus::bench::Main(); }
